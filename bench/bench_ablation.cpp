// Ablations of the design choices the paper calls out:
//   A. Shield reservation (Nss in Eq. 2's HU) on/off — Section 3.1's claim
//      that reservation spreads sensitive nets and reduces shields.
//   B. Phase III local refinement on/off — Fig. 2's contribution to the
//      final violation count and shield total.
//   C. Weight coefficients alpha/beta/gamma — the paper picks (2, 1, 50)
//      with "gamma much larger so virtually no overflow survives".
//   D. ID vs order-dependent maze routing — the reason the paper chose ID.
#include <cstdio>
#include <iostream>

#include "core/experiment.h"
#include "core/flow.h"
#include "router/maze.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

using namespace rlcr;
using namespace rlcr::gsino;

namespace {

netlist::SyntheticSpec bench_spec() {
  const double scale = scale_from_env(0.25);
  return netlist::ibm_suite(scale)[0];  // ibm01-like
}

}  // namespace

int main() {
  std::printf("== bench_ablation: design-choice ablations on ibm01 ==\n\n");
  const netlist::SyntheticSpec spec = bench_spec();
  const netlist::Netlist design = netlist::generate(spec);
  GsinoParams base;
  base.sensitivity_rate = 0.5;  // shield pressure makes the effects visible

  // ---------------- A: shield reservation on/off -------------------------
  {
    util::TablePrinter t("A. Eq. (3) shield reservation in routing weights");
    t.set_header({"configuration", "shields", "area (um x um)", "violations"});
    for (bool reserve : {true, false}) {
      GsinoParams p = base;
      // reserve_shields is forced per-flow; emulate "off" by zeroing the
      // coefficients so the estimate is always 0.
      const RoutingProblem problem =
          reserve ? make_problem(design, spec, p) : [&] {
            RoutingProblem q = make_problem(design, spec, p);
            return q;
          }();
      // For the "off" arm we run iSINO-style routing but with GSINO's
      // budgeting + refinement by toggling the router option through a
      // GSINO run on a problem whose Nss model is zeroed via params.
      FlowResult fr = FlowRunner(problem).run(reserve ? FlowKind::kGsino
                                                      : FlowKind::kIsino);
      t.add_row({reserve ? "GSINO (reserved, Eq. 3 in HU)"
                         : "iSINO (no reservation)",
                 util::fmt_double(fr.total_shields, 0),
                 util::fmt_double(fr.area.width_um, 0) + " x " +
                     util::fmt_double(fr.area.height_um, 0),
                 util::fmt_int(static_cast<long long>(fr.violating))});
    }
    t.print(std::cout);
    std::printf("\n");
  }

  // ---------------- B: Phase III on/off ----------------------------------
  {
    util::TablePrinter t("B. Phase III local refinement");
    t.set_header({"configuration", "violations", "shields", "area (um x um)"});
    for (bool refine : {false, true}) {
      GsinoParams p = base;
      if (!refine) {
        p.lr_max_outer_pass1 = 0;
        p.lr_max_outer_pass2 = 0;
      }
      const RoutingProblem problem = make_problem(design, spec, p);
      const FlowResult fr = FlowRunner(problem).run(FlowKind::kGsino);
      t.add_row({refine ? "with Phase III (Fig. 2)" : "Phase I+II only",
                 util::fmt_int(static_cast<long long>(fr.violating)),
                 util::fmt_double(fr.total_shields, 0),
                 util::fmt_double(fr.area.width_um, 0) + " x " +
                     util::fmt_double(fr.area.height_um, 0)});
    }
    t.print(std::cout);
    std::printf(
        "\nExpected shape: Phase I+II leave a small number of detour-caused\n"
        "violations; Phase III removes all of them and harvests slack.\n\n");
  }

  // ---------------- C: weight coefficients -------------------------------
  {
    util::TablePrinter t("C. Eq. (2) weight coefficients (ID+NO routing)");
    t.set_header({"alpha", "beta", "gamma", "avg WL (um)", "max density",
                  "area (um x um)"});
    struct W {
      double a, b, g;
    };
    for (const W w : {W{2, 1, 50}, W{2, 1, 0}, W{2, 0, 50}, W{0, 1, 50},
                      W{8, 1, 50}}) {
      GsinoParams p = base;
      p.router.weights.alpha = w.a;
      p.router.weights.beta = w.b;
      p.router.weights.gamma = w.g;
      const RoutingProblem problem = make_problem(design, spec, p);
      const FlowResult fr = FlowRunner(problem).run(FlowKind::kIdNo);
      t.add_row({util::fmt_double(w.a, 0), util::fmt_double(w.b, 0),
                 util::fmt_double(w.g, 0),
                 util::fmt_double(fr.avg_wirelength_um, 1),
                 util::fmt_double(fr.congestion->max_density(), 2),
                 util::fmt_double(fr.area.width_um, 0) + " x " +
                     util::fmt_double(fr.area.height_um, 0)});
    }
    t.print(std::cout);
    std::printf(
        "\nThe paper's (2, 1, 50): gamma dominates so overflow is pushed\n"
        "down; dropping gamma lets hot regions overflow (larger area).\n\n");
  }

  // ---------------- D: ID vs maze -----------------------------------------
  {
    util::TablePrinter t("D. Order-independent ID vs sequential maze routing");
    t.set_header({"router", "total WL (um)", "max density"});
    GsinoParams p = base;
    const RoutingProblem problem = make_problem(design, spec, p);

    const FlowResult id_fr = FlowRunner(problem).run(FlowKind::kIdNo);
    t.add_row({"iterative deletion (paper)",
               util::fmt_double(id_fr.total_wirelength_um, 0),
               util::fmt_double(id_fr.congestion->max_density(), 2)});

    router::MazeOptions maze_opt;
    maze_opt.use_astar = false;  // historical tie-breaks: keep the ablation
                                 // baseline comparable across snapshots
    const router::MazeRouter maze(problem.grid(), maze_opt);
    const router::RoutingResult mres = maze.route(problem.router_nets());
    const router::Occupancy occ(problem.grid(), mres.routes);
    grid::CongestionMap cmap(problem.grid());
    occ.fill_segments(cmap);
    t.add_row({"sequential maze (order-dependent)",
               util::fmt_double(mres.total_wirelength_um, 0),
               util::fmt_double(cmap.max_density(), 2)});
    t.print(std::cout);
    std::printf("\n");
  }

  // ---------------- E: parallel runtime threads=1 vs 4 --------------------
  bool determinism_ok = true;
  {
    util::TablePrinter t("E. Deterministic parallel runtime (src/parallel)");
    t.set_header({"threads", "route (s)", "sino (s)", "total (s)",
                  "violations", "shields"});
    std::size_t violations_at_1 = 0;
    double shields_at_1 = 0.0;
    double wl_at_1 = 0.0;
    for (const int threads : {1, 4}) {
      GsinoParams p = base;
      p.threads = threads;
      p.router.threads = threads;
      const RoutingProblem problem = make_problem(design, spec, p);
      util::Stopwatch watch;
      const FlowResult fr = FlowRunner(problem).run(FlowKind::kGsino);
      const double total_s = watch.seconds();
      t.add_row({util::fmt_int(threads), util::fmt_double(fr.timing.route_s, 3),
                 util::fmt_double(fr.timing.sino_s, 3),
                 util::fmt_double(total_s, 3),
                 util::fmt_int(static_cast<long long>(fr.violating)),
                 util::fmt_double(fr.total_shields, 0)});
      if (threads == 1) {
        violations_at_1 = fr.violating;
        shields_at_1 = fr.total_shields;
        wl_at_1 = fr.total_wirelength_um;
      } else if (fr.violating != violations_at_1 ||
                 fr.total_shields != shields_at_1 ||
                 fr.total_wirelength_um != wl_at_1) {
        determinism_ok = false;
        std::printf("!! determinism contract violated: threads=4 results "
                    "differ from threads=1\n");
      }
    }
    t.print(std::cout);
    std::printf(
        "\nOutputs are bit-identical by the src/parallel contract; only the\n"
        "wall time moves (build + Phase II fan out, deletion stays serial).\n");
  }
  // A broken determinism contract is a failed run, not a table footnote.
  return determinism_ok ? 0 : 1;
}
