// Persistent artifact-store benchmark at the ISPD98 size class (128x128
// regions, 10k clustered nets): what a fresh process pays to warm-start
// Phase I from disk versus recomputing it, and what the store costs to
// populate.
//
//   BM_Phase1Compute      — route from scratch (the cold cost a warm start
//                           avoids; Section 5's dominant runtime)
//   BM_Phase1ColdSave     — serialize + atomically publish the routing
//                           artifact into a store directory
//   BM_Phase1WarmLoad     — read + validate (checksum, golden route hash)
//                           + re-derive views through the store loader:
//                           the cross-process warm-start path
//   BM_Phase1InMemoryReuse — the in-session LRU cache hit, for scale
//
// Run with
//
//   bench_artifact_store --benchmark_out=BENCH_artifact_store.json \
//                        --benchmark_out_format=json
//
// CI merges the result into BENCH_router.json (one machine-readable perf
// trajectory per run), so the warm-start speedup is tracked across PRs.
#include <benchmark/benchmark.h>

#include "build_type_context.h"

#include <filesystem>
#include <memory>

#include "core/session.h"
#include "netlist/synthetic.h"
#include "store/artifact_store.h"
#include "store/serial.h"

using namespace rlcr;
using namespace rlcr::gsino;

namespace {

/// The ISPD98-size tier bench_router_scale's BM_IdRouter128 established:
/// 128x128 regions, 10k clustered nets. Built once and shared — the
/// routing artifact itself takes seconds to compute.
struct Fixture {
  netlist::SyntheticSpec spec;
  netlist::Netlist design;
  GsinoParams params;
  std::unique_ptr<RoutingProblem> problem;
  std::shared_ptr<const RoutingArtifact> artifact;

  Fixture() {
    spec = netlist::tiny_spec(10000, 97);
    spec.name = "store-10k";
    spec.grid_cols = 128;
    spec.grid_rows = 128;
    spec.chip_w_um = 6400.0;
    spec.chip_h_um = 6400.0;
    spec.h_capacity = 16;
    spec.v_capacity = 16;
    spec.local_sigma_regions = 2.6;
    design = netlist::generate(spec);
    params.sensitivity_rate = 0.3;
    problem = std::make_unique<RoutingProblem>(
        make_problem(design, spec, params));
    FlowSession session(*problem);
    artifact = session.route(FlowKind::kGsino);
  }

  static const Fixture& get() {
    static const Fixture fx;
    return fx;
  }
};

std::filesystem::path bench_store_dir() {
  return std::filesystem::temp_directory_path() / "rlcr_bench_artifact_store";
}

void BM_Phase1Compute(benchmark::State& state) {
  const Fixture& fx = Fixture::get();
  for (auto _ : state) {
    FlowSession session(*fx.problem);  // fresh: no cache, no store
    const auto art = session.route(FlowKind::kGsino);
    benchmark::DoNotOptimize(art->routing->total_wirelength_um);
  }
  state.counters["nets"] = static_cast<double>(fx.problem->net_count());
}
BENCHMARK(BM_Phase1Compute)->Unit(benchmark::kMillisecond);

void BM_Phase1ColdSave(benchmark::State& state) {
  const Fixture& fx = Fixture::get();
  std::filesystem::remove_all(bench_store_dir());
  store::ArtifactStore store(bench_store_dir());
  const std::uint64_t key = store::routing_key(*fx.problem, fx.artifact->options);
  store.put_routing(key, *fx.artifact);
  const std::uintmax_t record_bytes = store.bytes_on_disk();
  for (auto _ : state) {
    state.PauseTiming();  // measure only the publish itself
    std::filesystem::remove_all(bench_store_dir());
    std::filesystem::create_directories(bench_store_dir());
    state.ResumeTiming();
    store.put_routing(key, *fx.artifact);
  }
  state.counters["record_bytes"] = static_cast<double>(record_bytes);
}
BENCHMARK(BM_Phase1ColdSave)->Unit(benchmark::kMillisecond);

void BM_Phase1WarmLoad(benchmark::State& state) {
  const Fixture& fx = Fixture::get();
  std::filesystem::remove_all(bench_store_dir());
  store::ArtifactStore store(bench_store_dir());
  const std::uint64_t key = store::routing_key(*fx.problem, fx.artifact->options);
  store.put_routing(key, *fx.artifact);
  double wl = 0.0;
  for (auto _ : state) {
    const auto art = store.get_routing(key, *fx.problem);
    wl = art->routing->total_wirelength_um;
    benchmark::DoNotOptimize(art);
  }
  state.counters["wirelength_um"] = wl;
  state.counters["loads"] = static_cast<double>(store.stats().hits);
}
BENCHMARK(BM_Phase1WarmLoad)->Unit(benchmark::kMillisecond);

void BM_Phase1InMemoryReuse(benchmark::State& state) {
  const Fixture& fx = Fixture::get();
  FlowSession session(*fx.problem);
  (void)session.route(FlowKind::kGsino);  // populate
  for (auto _ : state) {
    const auto art = session.route(FlowKind::kGsino);
    benchmark::DoNotOptimize(art);
  }
  state.counters["routes_executed"] =
      static_cast<double>(session.counters().route_executed);
}
BENCHMARK(BM_Phase1InMemoryReuse)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
