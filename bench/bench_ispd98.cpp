// ISPD98-class end-to-end harness: every ibm01-ibm06 size class through
// the full staged session — route -> budget -> solve_regions -> refine —
// with wall seconds, CPU seconds, and peak RSS recorded per stage, plus a
// tiled-vs-dense per-region storage comparison on the largest class.
//
//   bench_ispd98 --benchmark_out=BENCH_ispd98.json \
//                --benchmark_out_format=json
//
// CI merges the entries into BENCH_router.json (see bench/README.md for
// the schema). Instances come from netlist::make_ispd98_instance: the
// genuine netD/.are circuits when RLCR_ISPD98_DIR holds them, the
// calibrated synthetic stand-ins otherwise — either way the harness and
// its counters are identical.
//
// Environment:
//   RLCR_ISPD98_SCALE  density-preserving shrink of every class in (0, 1]
//                      (default 1.0 = published sizes). CI's smoke tier
//                      runs the smallest class at a small scale.
//   RLCR_ISPD98_DIR    directory with the real ibmNN.netD [.are] files.
//   RLCR_TRACE_DIR     when set, each BM_Ispd98Session run also records a
//                      span trace and writes <dir>/trace_<class>.json
//                      (Chrome trace-event format — see
//                      docs/OBSERVABILITY.md).
//
// Stage peaks use Linux's per-process peak-RSS counter (VmHWM), reset
// before each stage via /proc/self/clear_refs; on kernels without that
// file the rss counters read 0. Each benchmark runs exactly one iteration
// (full flows are seconds to minutes; the per-stage counters, not the
// iteration statistics, are the recorded trajectory).
#include <benchmark/benchmark.h>

#include "build_type_context.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif
#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include <filesystem>
#include <optional>

#include "core/problem.h"
#include "core/session.h"
#include "grid/tiled.h"
#include "netlist/ispd98_synth.h"
#include "obs/trace.h"

using namespace rlcr;
using namespace rlcr::gsino;

namespace {

double ispd98_scale() {
  const char* env = std::getenv("RLCR_ISPD98_SCALE");
  if (env == nullptr) return 1.0;
  char* end = nullptr;
  const double v = std::strtod(env, &end);
  return (end != env && v > 0.0 && v <= 1.0) ? v : 1.0;
}

/// Process CPU time (user + system), seconds.
double cpu_seconds() {
#if defined(__unix__) || defined(__APPLE__)
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  auto tv = [](const timeval& t) {
    return static_cast<double>(t.tv_sec) + 1e-6 * static_cast<double>(t.tv_usec);
  };
  return tv(ru.ru_utime) + tv(ru.ru_stime);
#else
  return 0.0;
#endif
}

/// Peak RSS (VmHWM) in MiB since the last reset; 0 when unavailable.
double peak_rss_mib() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0.0;
  char line[256];
  double kib = 0.0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      kib = std::strtod(line + 6, nullptr);
      break;
    }
  }
  std::fclose(f);
  return kib / 1024.0;
}

/// Reset the kernel's peak-RSS watermark (Linux >= 4.0). Subsequent
/// peak_rss_mib() reads then report the peak of the code run since this
/// call — what makes per-stage and per-storage-mode peaks comparable
/// inside one process. The glibc trim first returns retained free heap
/// to the OS, so the watermark restarts from the live footprint rather
/// than from whatever earlier runs left cached in the allocator.
void reset_peak_rss() {
#if defined(__GLIBC__)
  malloc_trim(0);
#endif
  std::FILE* f = std::fopen("/proc/self/clear_refs", "w");
  if (f == nullptr) return;
  std::fputs("5", f);
  std::fclose(f);
}

/// One prepared class: the instance is built (and, for real files,
/// placed) once and cached — problem assembly (LSK table, sensitivity)
/// is not part of the per-stage timings.
struct ClassContext {
  netlist::Ispd98ClassSpec spec;
  std::unique_ptr<RoutingProblem> problem;
  bool real = false;
};

std::vector<netlist::Ispd98ClassSpec>& classes() {
  static std::vector<netlist::Ispd98ClassSpec> c =
      netlist::ispd98_classes(ispd98_scale());
  return c;
}

ClassContext& context_for(std::size_t idx) {
  static std::vector<std::unique_ptr<ClassContext>> cache(classes().size());
  if (cache[idx] == nullptr) {
    auto ctx = std::make_unique<ClassContext>();
    ctx->spec = classes()[idx];
    netlist::Ispd98Instance inst = netlist::make_ispd98_instance(ctx->spec);
    ctx->real = inst.real;
    GsinoParams params;
    ctx->problem = std::make_unique<RoutingProblem>(inst.design,
                                                    inst.gspec, params);
    cache[idx] = std::move(ctx);
  }
  return *cache[idx];
}

struct StageSample {
  double wall_s = 0.0, cpu_s = 0.0, rss_mib = 0.0;
};

/// Run one stage thunk with CPU and (reset) peak-RSS bracketing; the
/// caller stamps wall_s from the stage artifact's own compute seconds.
template <typename F>
StageSample run_stage(F&& f) {
  StageSample s;
  reset_peak_rss();
  const double cpu0 = cpu_seconds();
  f();
  s.cpu_s = cpu_seconds() - cpu0;
  s.rss_mib = peak_rss_mib();
  return s;
}

/// Full staged GSINO flow for one class; per-stage counters.
void BM_Ispd98Session(benchmark::State& state, std::size_t idx) {
  ClassContext& ctx = context_for(idx);
  const RoutingProblem& problem = *ctx.problem;

  // Optional per-class trace (RLCR_TRACE_DIR). The tracing-enabled
  // contract says outputs are unperturbed, so the recorded counters stay
  // comparable with untraced runs.
  const char* trace_dir = std::getenv("RLCR_TRACE_DIR");
  std::optional<obs::TraceSession> trace;
  if (trace_dir != nullptr && trace_dir[0] != '\0') trace.emplace();

  StageSample route_s, budget_s, solve_s, refine_s;
  std::size_t violating = 0, unfixable = 0;
  double wirelength = 0.0, shields = 0.0, congestion_bytes = 0.0;
  StageCounters counters{};
  for (auto _ : state) {
    FlowSession session(problem);
    std::shared_ptr<const RoutingArtifact> r;
    std::shared_ptr<const BudgetArtifact> b;
    std::shared_ptr<const RegionSolveArtifact> sv;
    std::shared_ptr<const RefineArtifact> rf;
    route_s = run_stage([&] { r = session.route(FlowKind::kGsino); });
    route_s.wall_s = r->seconds;
    budget_s = run_stage([&] {
      b = session.budget(FlowKind::kGsino, r,
                         problem.params().crosstalk_bound_v,
                         problem.params().budget_margin);
    });
    budget_s.wall_s = b->seconds;
    solve_s = run_stage([&] {
      sv = session.solve_regions(FlowKind::kGsino, r, b,
                                 problem.params().anneal_phase2);
    });
    solve_s.wall_s = sv->seconds;
    refine_s = run_stage([&] { rf = session.refine(sv); });
    refine_s.wall_s = rf->seconds;

    violating = rf->violating;
    unfixable = rf->unfixable;
    wirelength = r->routing->total_wirelength_um;
    shields = rf->congestion->total_shields();
    congestion_bytes = static_cast<double>(rf->congestion->storage_bytes());
    counters = session.counters();
    benchmark::DoNotOptimize(rf);
  }

  state.counters["nets"] = static_cast<double>(problem.net_count());
  state.counters["regions"] =
      static_cast<double>(problem.grid().region_count());
  state.counters["real_circuit"] = ctx.real ? 1.0 : 0.0;
  auto stage = [&](const char* name, const StageSample& s) {
    state.counters[std::string(name) + "_wall_s"] = s.wall_s;
    state.counters[std::string(name) + "_cpu_s"] = s.cpu_s;
    state.counters[std::string(name) + "_rss_peak_mib"] = s.rss_mib;
  };
  stage("route", route_s);
  stage("budget", budget_s);
  stage("solve", solve_s);
  stage("refine", refine_s);
  state.counters["violations"] = static_cast<double>(violating);
  state.counters["unfixable"] = static_cast<double>(unfixable);
  state.counters["wirelength_um"] = wirelength;
  state.counters["shields"] = shields;
  state.counters["congestion_bytes"] = congestion_bytes;
  // Store warm-start visibility: how many stage artifacts this run loaded
  // from a persistent store instead of computing (all zero without one —
  // the counters were previously computed but never exported, so a
  // warm-started bench run looked identical to a cold one in the JSON).
  state.counters["route_loaded"] = static_cast<double>(counters.route_loaded);
  state.counters["solve_loaded"] = static_cast<double>(counters.solve_loaded);
  state.counters["refine_loaded"] =
      static_cast<double>(counters.refine_loaded);

  if (trace) {
    const std::filesystem::path out =
        std::filesystem::path(trace_dir) / ("trace_" + ctx.spec.name + ".json");
    std::error_code ec;
    std::filesystem::create_directories(out.parent_path(), ec);
    if (trace->write_chrome_trace(out)) {
      state.counters["trace_spans"] = static_cast<double>(trace->span_count());
    } else {
      std::fprintf(stderr, "warning: failed to write %s\n", out.c_str());
    }
  }
}

/// The largest class's fabric carrying every 100th net: the ECO /
/// scenario-slice shape — an ISPD98-size grid whose traffic is genuinely
/// sparse (a clock tree, a bus, an incremental re-route) — that
/// motivates tiled per-region storage. Cells (and the fabric) stay full
/// size; only the net list thins.
const RoutingProblem& sparse_slice_problem() {
  static std::unique_ptr<RoutingProblem> problem;
  if (problem == nullptr) {
    netlist::Ispd98Instance inst =
        netlist::make_ispd98_instance(classes().back());
    netlist::Netlist slice(inst.design.name() + "-slice",
                           inst.design.width_um(), inst.design.height_um());
    for (const netlist::Cell& c : inst.design.cells()) slice.add_cell(c);
    for (std::size_t n = 0; n < inst.design.net_count(); n += 100) {
      slice.add_net(inst.design.net(static_cast<netlist::NetId>(n)));
    }
    GsinoParams params;
    problem = std::make_unique<RoutingProblem>(slice, inst.gspec, params);
  }
  return *problem;
}

/// Tiled-vs-dense per-region storage: the same staged GSINO flow with
/// the process default flipped, recording the flow peak plus the exact
/// bytes of the final congestion map. Output artifacts are bit-identical
/// across modes (grid/tiled.h contract); only memory moves. Two tiers:
/// `sparse` = true runs the ECO-shaped slice above (where dense pays the
/// whole fabric for a sliver of traffic), false the full-traffic flow
/// (where the modes converge — the honest upper bound). Each tiled
/// variant is registered (and therefore runs) before its dense partner
/// so neither inherits the other's watermark even if clear_refs is
/// unavailable.
void BM_Ispd98Storage(benchmark::State& state, grid::RegionStorage mode,
                      bool sparse) {
  const RoutingProblem& problem =
      sparse ? sparse_slice_problem()
             : *context_for(classes().size() - 1).problem;
  const grid::RegionStorage before = grid::default_region_storage();

  double rss_mib = 0.0, cpu_s = 0.0, congestion_bytes = 0.0, wall_s = 0.0;
  std::uint64_t check = 0;
  for (auto _ : state) {
    grid::set_default_region_storage(mode);
    FlowSession session(problem);
    reset_peak_rss();
    const double cpu0 = cpu_seconds();
    const FlowResult fr = session.run(FlowKind::kGsino);
    cpu_s = cpu_seconds() - cpu0;
    rss_mib = peak_rss_mib();
    wall_s = fr.timing.route_s + fr.timing.sino_s + fr.timing.refine_s;
    congestion_bytes = static_cast<double>(fr.congestion->storage_bytes());
    check = fr.violating;
    benchmark::DoNotOptimize(fr);
    grid::set_default_region_storage(before);
  }

  state.counters["nets"] = static_cast<double>(problem.net_count());
  state.counters["regions"] =
      static_cast<double>(problem.grid().region_count());
  state.counters["flow_wall_s"] = wall_s;
  state.counters["flow_cpu_s"] = cpu_s;
  state.counters["rss_peak_mib"] = rss_mib;
  state.counters["congestion_bytes"] = congestion_bytes;
  state.counters["violations"] = static_cast<double>(check);
}

}  // namespace

int main(int argc, char** argv) {
  const auto& suite = classes();
  // Storage A/B pairs first (each tiled before its dense partner — see
  // BM_Ispd98Storage), then the six size classes smallest to largest.
  struct StorageReg {
    const char* name;
    grid::RegionStorage mode;
    bool sparse;
  };
  for (const StorageReg& reg :
       {StorageReg{"BM_Ispd98SparseStorage/tiled",
                   grid::RegionStorage::kTiled, true},
        StorageReg{"BM_Ispd98SparseStorage/dense",
                   grid::RegionStorage::kDense, true},
        StorageReg{"BM_Ispd98Storage/tiled", grid::RegionStorage::kTiled,
                   false},
        StorageReg{"BM_Ispd98Storage/dense", grid::RegionStorage::kDense,
                   false}}) {
    benchmark::RegisterBenchmark(reg.name, BM_Ispd98Storage, reg.mode,
                                 reg.sparse)
        ->Unit(benchmark::kSecond)
        ->Iterations(1);
  }
  for (std::size_t i = 0; i < suite.size(); ++i) {
    benchmark::RegisterBenchmark(
        ("BM_Ispd98Session/" + suite[i].name).c_str(), BM_Ispd98Session, i)
        ->Unit(benchmark::kSecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
