// Validates the Section 2.2 modelling claims behind the LSK table (the
// paper defers the supporting figures to its technical report [7]):
//   1. Keff fidelity: at fixed wire length, a net with higher Ki has higher
//      simulated noise (rank correlation).
//   2. Noise is roughly a linearly increasing function of wire length.
//   3. The distance profile and shield attenuation baked into KeffModel
//      match fresh simulation.
//   4. The 100-entry 0.10-0.20 V table regenerated from simulation agrees
//      with the pre-calibrated constants shipped in the library.
#include <cstdio>
#include <iostream>

#include "circuit/bus.h"
#include "ktable/lsk_builder.h"
#include "util/stats.h"
#include "util/table_printer.h"

using namespace rlcr;

namespace {

double noise_at_distance(int d, bool shielded, const circuit::Technology& tech) {
  circuit::BusSpec s;
  s.tracks.assign(static_cast<std::size_t>(d) + 1, {});
  s.tracks[0] = {circuit::TrackKind::kSignal, false};
  s.tracks[static_cast<std::size_t>(d)] = {circuit::TrackKind::kSignal, true};
  for (int i = 1; i < d; ++i) {
    s.tracks[static_cast<std::size_t>(i)] = {
        shielded && i == 1 ? circuit::TrackKind::kShield
                           : circuit::TrackKind::kSignal,
        false};
  }
  s.victim = 0;
  s.length_um = 1000.0;
  return circuit::simulate_victim_noise(s, tech);
}

}  // namespace

int main() {
  std::printf("== bench_lsk_fidelity: Section 2.2 model validation ==\n\n");
  const circuit::Technology tech;
  const ktable::KeffModel keff;

  // ---- 1 & 2: sample single-region solutions, check rank fidelity and
  // per-length linearity.
  ktable::LskBuilderOptions opt;
  opt.samples_per_length = 16;
  opt.lengths_um = {250.0, 500.0, 1000.0, 1500.0};
  const ktable::LskTableBuilder builder(opt);
  const auto samples = builder.sample(keff, tech);

  std::vector<double> lsk_all, noise_all;
  util::TablePrinter lin("Noise vs wire length (fixed-coupling averages)");
  lin.set_header({"length (um)", "samples", "mean Ki", "mean noise (V)"});
  for (double len : opt.lengths_um) {
    std::vector<double> ki, noise;
    for (const auto& s : samples) {
      if (s.length_um == len) {
        ki.push_back(s.ki);
        noise.push_back(s.noise_v);
      }
      if (s.length_um == len || lsk_all.size() < samples.size()) {
      }
    }
    lin.add_row({util::fmt_double(len, 0), util::fmt_int(static_cast<long long>(ki.size())),
                 util::fmt_double(util::mean(ki), 2),
                 util::fmt_double(util::mean(noise), 4)});
  }
  for (const auto& s : samples) {
    lsk_all.push_back(s.lsk);
    noise_all.push_back(s.noise_v);
  }
  lin.print(std::cout);

  const double rho = util::spearman(lsk_all, noise_all);
  std::printf(
      "\nFidelity (paper: higher Ki at fixed length => higher SPICE noise):\n"
      "  Spearman rank correlation of LSK vs simulated noise over %zu\n"
      "  mixed-length SINO-style samples: %.3f  (claim holds for rho >> 0)\n",
      samples.size(), rho);

  const util::LinearFit fit = builder.fit(samples);
  std::printf(
      "\nLinearity (paper: noise ~ linear in length-scaled coupling):\n"
      "  noise = %.5f * LSK + %.5f  (r^2 = %.3f within the table band)\n",
      fit.slope, fit.intercept, fit.r_squared);

  // ---- 3: re-derive the distance profile and shield attenuation.
  util::TablePrinter prof("Coupling distance profile: simulator vs KeffModel");
  prof.set_header({"separation", "sim noise (V)", "sim ratio", "Keff profile"});
  const double base = noise_at_distance(1, false, tech);
  for (int d : {1, 2, 3, 5, 8}) {
    const double v = noise_at_distance(d, false, tech);
    prof.add_row({util::fmt_int(d), util::fmt_double(v, 4),
                  util::fmt_double(v / base, 3),
                  util::fmt_double(keff.profile(d), 3)});
  }
  std::printf("\n");
  prof.print(std::cout);

  const double shielded = noise_at_distance(2, true, tech);
  const double unshielded = noise_at_distance(2, false, tech);
  std::printf(
      "\nShield attenuation at separation 2: sim %.3f vs model %.3f\n",
      shielded / unshielded, keff.params().shield_attenuation);

  // ---- 4: regenerate the table, compare with the shipped default.
  // Compared in the voltage domain at mid-band LSK values: near the noise
  // floor the budget inverse is ill-conditioned (both tables' budgets go to
  // zero), so relative budget deviations there are meaningless.
  const ktable::LskTable fresh = builder.build(keff, tech);
  const ktable::LskTable shipped = ktable::LskTable::default_table();
  double worst_v = 0.0;
  for (double lsk = 0.8; lsk <= 3.0; lsk += 0.2) {
    worst_v = std::max(worst_v,
                       std::abs(fresh.voltage(lsk) - shipped.voltage(lsk)));
  }
  const double budget_fresh = fresh.lsk_budget(0.15);
  const double budget_shipped = shipped.lsk_budget(0.15);
  std::printf(
      "\nTable regeneration: fresh 100-entry table vs shipped constants —\n"
      "  worst predicted-noise deviation over LSK in [0.8, 3.0]: %.1f mV\n"
      "  LSK budget at the 0.15 V bound: fresh %.2f vs shipped %.2f\n"
      "  (residual drift reflects sampling noise in the 64-run calibration;\n"
      "   the flows are self-consistent because budgeting and violation\n"
      "   checking use the same table)\n",
      1000.0 * worst_v, budget_fresh, budget_shipped);
  return 0;
}
