// Google-benchmark microbenchmarks of the library's hot paths. The paper's
// Section 5 notes that ID-based global routing dominates GSINO's runtime;
// these benchmarks quantify the cost structure of every major kernel.
#include <benchmark/benchmark.h>

#include "circuit/bus.h"
#include "grid/region_grid.h"
#include "ktable/lsk_table.h"
#include "netlist/sensitivity.h"
#include "netlist/synthetic.h"
#include "router/id_router.h"
#include "rsmt/rmst.h"
#include "rsmt/steiner.h"
#include "sino/anneal.h"
#include "sino/greedy.h"
#include "util/rng.h"

using namespace rlcr;

namespace {

std::vector<geom::Point> random_pins(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<geom::Point> pins;
  for (std::size_t i = 0; i < n; ++i) {
    pins.push_back(geom::Point{static_cast<std::int32_t>(rng.below(64)),
                               static_cast<std::int32_t>(rng.below(64))});
  }
  return pins;
}

sino::SinoInstance random_instance(std::size_t n, double rate,
                                   std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<sino::SinoNet> nets(n);
  for (std::size_t i = 0; i < n; ++i) {
    nets[i] = sino::SinoNet{static_cast<int>(i), rate, 1.5};
  }
  sino::SinoInstance inst(std::move(nets));
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      if (rng.bernoulli(rate)) inst.set_sensitive(i, j);
  return inst;
}

void BM_RmstByDegree(benchmark::State& state) {
  const auto pins = random_pins(static_cast<std::size_t>(state.range(0)), 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rsmt::rmst_length(pins));
  }
}
BENCHMARK(BM_RmstByDegree)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(64);

void BM_SteinerByDegree(benchmark::State& state) {
  const auto pins = random_pins(static_cast<std::size_t>(state.range(0)), 13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rsmt::rsmt_length(pins));
  }
}
BENCHMARK(BM_SteinerByDegree)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

void BM_SinoGreedy(benchmark::State& state) {
  const auto inst =
      random_instance(static_cast<std::size_t>(state.range(0)), 0.4, 7);
  const ktable::KeffModel keff;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sino::solve_greedy(inst, keff));
  }
}
BENCHMARK(BM_SinoGreedy)->Arg(4)->Arg(8)->Arg(16)->Arg(24);

void BM_SinoAnneal(benchmark::State& state) {
  const auto inst = random_instance(10, 0.4, 7);
  const ktable::KeffModel keff;
  sino::AnnealOptions opt;
  opt.iterations = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sino::solve_anneal(inst, keff, opt));
  }
}
BENCHMARK(BM_SinoAnneal)->Arg(1000)->Arg(4000);

void BM_BusTransient(benchmark::State& state) {
  circuit::BusSpec spec;
  spec.tracks.assign(static_cast<std::size_t>(state.range(0)), {});
  spec.tracks[0] = {circuit::TrackKind::kSignal, false};
  for (std::size_t i = 1; i < spec.tracks.size(); ++i) {
    spec.tracks[i] = {circuit::TrackKind::kSignal, true};
  }
  spec.victim = 0;
  spec.length_um = 800.0;
  const circuit::Technology tech;
  circuit::TransientOptions opt;
  opt.dt = 0.5e-12;
  opt.t_stop = 100e-12;
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuit::simulate_victim_noise(spec, tech, opt));
  }
}
BENCHMARK(BM_BusTransient)->Arg(3)->Arg(6)->Arg(10)->Unit(benchmark::kMillisecond);

void BM_LskTableLookup(benchmark::State& state) {
  const ktable::LskTable table = ktable::LskTable::default_table();
  double x = 0.0;
  for (auto _ : state) {
    x += 0.001;
    if (x > 3.0) x = 0.0;
    benchmark::DoNotOptimize(table.voltage(x));
  }
}
BENCHMARK(BM_LskTableLookup);

void BM_SensitivityQuery(benchmark::State& state) {
  const netlist::SensitivityModel model(30000, 0.3, 5);
  std::int32_t i = 0;
  for (auto _ : state) {
    i = (i + 7919) % 30000;
    benchmark::DoNotOptimize(model.sensitive(i, (i * 31 + 1) % 30000));
  }
}
BENCHMARK(BM_SensitivityQuery);

void BM_IdRouterTiny(benchmark::State& state) {
  const auto spec = netlist::tiny_spec(static_cast<std::size_t>(state.range(0)), 3);
  const auto design = netlist::generate(spec);
  grid::RegionGridSpec gs;
  gs.cols = spec.grid_cols;
  gs.rows = spec.grid_rows;
  gs.region_w_um = spec.chip_w_um / spec.grid_cols;
  gs.region_h_um = spec.chip_h_um / spec.grid_rows;
  gs.h_capacity = spec.h_capacity;
  gs.v_capacity = spec.v_capacity;
  const grid::RegionGrid grid_obj(gs);
  std::vector<router::RouterNet> nets;
  for (std::size_t n = 0; n < design.net_count(); ++n) {
    router::RouterNet rn;
    rn.id = static_cast<std::int32_t>(n);
    rn.si = 0.3;
    for (const auto& p : design.net(static_cast<netlist::NetId>(n)).pins) {
      const geom::Point r = grid_obj.region_of(p.pos);
      if (std::find(rn.pins.begin(), rn.pins.end(), r) == rn.pins.end()) {
        rn.pins.push_back(r);
      }
    }
    nets.push_back(std::move(rn));
  }
  const sino::NssModel nss;
  const router::IdRouter router(grid_obj, nss);
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.route(nets));
  }
}
BENCHMARK(BM_IdRouterTiny)->Arg(100)->Arg(400)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
