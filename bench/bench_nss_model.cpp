// Validates Eq. (3), the shield-count estimator used by GSINO's Phase I
// weights. The paper's technical report fits coefficients a1..a6 against
// min-area SINO solutions and reports <= 10% estimation error; this bench
// reruns that procedure with the library's SINO solvers and reports the
// achieved accuracy, overall and on shield-heavy regions (where relative
// error is meaningful — a region needing 0-1 shields makes any relative
// metric explode).
#include <cstdio>
#include <algorithm>
#include <iostream>

#include "sino/anneal.h"
#include "sino/greedy.h"
#include "sino/nss.h"
#include "util/rng.h"
#include "util/table_printer.h"

using namespace rlcr;

int main() {
  std::printf("== bench_nss_model: Eq. (3) shield-count estimator ==\n\n");
  const ktable::KeffModel keff;

  sino::NssFitOptions opt;
  opt.samples = 300;
  const sino::NssFitReport report = sino::fit_nss(keff, opt);

  util::TablePrinter coef("Fitted coefficients (Eq. 3 order a1..a6)");
  coef.set_header({"a1", "a2", "a3", "a4", "a5", "a6"});
  coef.add_row({util::fmt_double(report.coefficients.a[0], 4),
                util::fmt_double(report.coefficients.a[1], 4),
                util::fmt_double(report.coefficients.a[2], 4),
                util::fmt_double(report.coefficients.a[3], 4),
                util::fmt_double(report.coefficients.a[4], 4),
                util::fmt_double(report.coefficients.a[5], 4)});
  coef.print(std::cout);

  std::printf(
      "\nFit over %d sampled regions (Nns in [%d, %d], rates in "
      "[%.2f, %.2f]):\n"
      "  mean |error| %.2f tracks, max |error| %.2f tracks\n"
      "  mean relative error %.1f%% (vs max(1, true Nss))\n",
      report.samples, opt.min_nets, opt.max_nets, opt.min_rate, opt.max_rate,
      report.mean_abs_error, report.max_abs_error,
      100.0 * report.mean_rel_error);

  // Accuracy on shield-heavy regions, evaluated on FRESH samples (not the
  // fitting set), which is where the paper's <= 10% claim matters: these
  // are the regions whose weight the router actually needs to get right.
  const sino::NssModel model(report.coefficients);
  util::Xoshiro256 rng(777);
  int heavy = 0;
  double heavy_rel = 0.0, heavy_abs = 0.0;
  for (int s = 0; s < 150; ++s) {
    const auto nns = static_cast<std::size_t>(rng.range(8, 24));
    const double rate = rng.uniform(0.3, 0.7);
    std::vector<sino::SinoNet> nets(nns);
    for (std::size_t i = 0; i < nns; ++i) {
      nets[i] = sino::SinoNet{static_cast<int>(i),
                              std::clamp(rng.uniform(rate * 0.5, rate * 1.5), 0.0, 1.0),
                              rng.uniform(0.8, 2.0)};
    }
    sino::SinoInstance inst(std::move(nets));
    for (std::size_t i = 0; i < nns; ++i)
      for (std::size_t j = i + 1; j < nns; ++j)
        if (rng.bernoulli(std::min(1.0, inst.net(i).si * inst.net(j).si / rate)))
          inst.set_sensitive(i, j);
    sino::AnnealOptions ao;
    ao.seed = rng();
    ao.iterations = 3000;
    const auto best = sino::solve_anneal(inst, keff, ao);
    const auto& sol = best.feasible ? best.slots : sino::solve_greedy(inst, keff);
    const int truth = sino::SinoEvaluator::shield_count(sol);
    if (truth < 3) continue;
    const double est = model.estimate(inst);
    ++heavy;
    heavy_abs += std::abs(est - truth);
    heavy_rel += std::abs(est - truth) / truth;
  }
  if (heavy > 0) {
    std::printf(
        "\nHeld-out shield-heavy regions (true Nss >= 3, %d samples):\n"
        "  mean |error| %.2f tracks, mean relative error %.1f%%\n"
        "  (paper's TR claims <= 10%% on its fitting range)\n",
        heavy, heavy_abs / heavy, 100.0 * heavy_rel / heavy);
  }
  return 0;
}
