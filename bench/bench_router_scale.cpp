// Scaling benchmarks over the parallel runtime: the ID-router engine at
// 64x64 and at the ISPD98-size 128x128 / 10k-net tier, the maze
// (Dijkstra/A*) baseline, the Phase II SINO batch driver, and LSK table
// sampling — each parallel stage at threads = 1 vs 4 so the pool speedup is
// part of the recorded trajectory (outputs are bit-identical across thread
// counts by the src/parallel determinism contract; only the time moves).
// Run with
//
//   bench_router_scale --benchmark_out=BENCH_router.json \
//                      --benchmark_out_format=json
//
// to make the perf trajectory machine-readable; CI uploads that file from
// every run so regressions are visible across PRs.
#include <benchmark/benchmark.h>

#include "build_type_context.h"

#include <algorithm>

#include "grid/region_grid.h"
#include "ktable/lsk_builder.h"
#include "router/id_router.h"
#include "router/maze.h"
#include "router/route_types.h"
#include "sino/batch.h"
#include "sino/nss.h"
#include "util/rng.h"

using namespace rlcr;
using namespace rlcr::router;

namespace {

grid::RegionGrid scale_grid(std::int32_t side = 64, int cap = 16) {
  grid::RegionGridSpec s;
  s.cols = side;
  s.rows = side;
  s.region_w_um = 50.0;
  s.region_h_um = 50.0;
  s.h_capacity = cap;
  s.v_capacity = cap;
  return grid::RegionGrid(s);
}

/// Clustered multi-pin nets, the same generator shape the router tests use:
/// local nets with bounded bounding boxes so they enter the deletion pool
/// (not the huge-net pre-route path).
std::vector<RouterNet> scale_nets(const grid::RegionGrid& g, std::size_t count,
                                  std::uint64_t seed, std::int32_t spread = 6) {
  util::Xoshiro256 rng(seed);
  std::vector<RouterNet> nets(count);
  for (std::size_t i = 0; i < count; ++i) {
    nets[i].id = static_cast<std::int32_t>(i);
    nets[i].si = 0.3;
    const std::int32_t cx = static_cast<std::int32_t>(rng.below(
        static_cast<std::uint64_t>(g.cols())));
    const std::int32_t cy = static_cast<std::int32_t>(rng.below(
        static_cast<std::uint64_t>(g.rows())));
    const std::size_t degree = 2 + rng.below(3);
    for (std::size_t p = 0; p < degree; ++p) {
      geom::Point pt{
          std::clamp(cx + static_cast<std::int32_t>(rng.range(-spread, spread)),
                     0, g.cols() - 1),
          std::clamp(cy + static_cast<std::int32_t>(rng.range(-spread, spread)),
                     0, g.rows() - 1)};
      if (std::find(nets[i].pins.begin(), nets[i].pins.end(), pt) ==
          nets[i].pins.end()) {
        nets[i].pins.push_back(pt);
      }
    }
    if (nets[i].pins.size() < 2) {
      nets[i].pins.push_back(
          geom::Point{(cx + 1) % g.cols(), (cy + 1) % g.rows()});
    }
  }
  return nets;
}

// Args: {nets, threads}. threads=1 is the exact serial path; the 4-thread
// variants record the pool speedup of the build phase (the deletion loop
// itself is serial, so the route-level speedup is the build share's).
void BM_IdRouter64(benchmark::State& state) {
  const grid::RegionGrid g = scale_grid();
  const auto nets = scale_nets(g, static_cast<std::size_t>(state.range(0)), 97);
  const sino::NssModel nss;
  IdRouterOptions opt;
  opt.threads = static_cast<int>(state.range(1));
  const IdRouter router(g, nss, opt);
  double wl = 0.0;
  for (auto _ : state) {
    const RoutingResult res = router.route(nets);
    wl = res.total_wirelength_um;
    benchmark::DoNotOptimize(res);
  }
  state.counters["wirelength_um"] = wl;
  state.counters["nets_per_s"] = benchmark::Counter(
      static_cast<double>(state.range(0)), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_IdRouter64)
    ->Args({200, 1})
    ->Args({800, 1})
    ->Args({3200, 1})
    ->Args({3200, 4})
    ->Unit(benchmark::kMillisecond);

// The ISPD98 size class (ROADMAP open item): 128x128 regions, 10k clustered
// nets, threads 1 vs 4.
void BM_IdRouter128(benchmark::State& state) {
  const grid::RegionGrid g = scale_grid(128);
  const auto nets = scale_nets(g, static_cast<std::size_t>(state.range(0)), 97);
  const sino::NssModel nss;
  IdRouterOptions opt;
  opt.threads = static_cast<int>(state.range(1));
  const IdRouter router(g, nss, opt);
  double wl = 0.0;
  for (auto _ : state) {
    const RoutingResult res = router.route(nets);
    wl = res.total_wirelength_um;
    benchmark::DoNotOptimize(res);
  }
  state.counters["wirelength_um"] = wl;
  state.counters["nets_per_s"] = benchmark::Counter(
      static_cast<double>(state.range(0)), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_IdRouter128)
    ->Args({10000, 1})
    ->Args({10000, 4})
    ->Unit(benchmark::kMillisecond);

void BM_Maze64(benchmark::State& state) {
  const grid::RegionGrid g = scale_grid();
  const auto nets = scale_nets(g, static_cast<std::size_t>(state.range(0)), 131);
  const MazeRouter maze(g);
  double wl = 0.0;
  for (auto _ : state) {
    const RoutingResult res = maze.route(nets);
    wl = res.total_wirelength_um;
    benchmark::DoNotOptimize(res);
  }
  state.counters["wirelength_um"] = wl;
  state.counters["nets_per_s"] = benchmark::Counter(
      static_cast<double>(state.range(0)), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_Maze64)->Arg(200)->Arg(800)->Unit(benchmark::kMillisecond);

void BM_Maze64Dijkstra(benchmark::State& state) {
  const grid::RegionGrid g = scale_grid();
  const auto nets = scale_nets(g, static_cast<std::size_t>(state.range(0)), 131);
  MazeOptions opt;
  opt.use_astar = false;  // historical tie-break order, seed-identical routes
  const MazeRouter maze(g, opt);
  double wl = 0.0;
  for (auto _ : state) {
    const RoutingResult res = maze.route(nets);
    wl = res.total_wirelength_um;
    benchmark::DoNotOptimize(res);
  }
  state.counters["wirelength_um"] = wl;
  state.counters["nets_per_s"] = benchmark::Counter(
      static_cast<double>(state.range(0)), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_Maze64Dijkstra)->Arg(200)->Arg(800)->Unit(benchmark::kMillisecond);

// Phase II batch solve across the pool. Instances mirror the per-region
// shape the flow produces (tens of nets, dense sensitivity); a share of
// near-impossible Kth bounds trips the annealing arm so both solver paths
// are timed. Args: {instances, threads}.
std::vector<sino::SinoInstance> batch_instances(std::size_t count,
                                                std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<sino::SinoInstance> out;
  out.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    std::vector<sino::SinoNet> nets(6 + rng.below(10));
    for (std::size_t i = 0; i < nets.size(); ++i) {
      nets[i].net_id = static_cast<std::int32_t>(i);
      nets[i].si = rng.uniform(0.1, 0.9);
      nets[i].kth = rng.bernoulli(0.2) ? 1e-6 : rng.uniform(0.1, 0.8);
    }
    sino::SinoInstance inst(std::move(nets));
    for (std::size_t i = 0; i < inst.net_count(); ++i) {
      for (std::size_t j = i + 1; j < inst.net_count(); ++j) {
        if (rng.bernoulli(0.4)) inst.set_sensitive(i, j);
      }
    }
    out.push_back(std::move(inst));
  }
  return out;
}

void BM_SinoBatch(benchmark::State& state) {
  const auto instances =
      batch_instances(static_cast<std::size_t>(state.range(0)), 7);
  const ktable::KeffModel keff;
  std::vector<sino::SinoBatchItem> items(instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    items[i].instance = &instances[i];
    items[i].mode = sino::SinoSolveMode::kGreedyAnneal;
    items[i].anneal_seed = sino::stream_seed(2026, i);
    items[i].anneal_iterations = 1500;
  }
  sino::SinoBatchOptions opt;
  opt.threads = static_cast<int>(state.range(1));
  for (auto _ : state) {
    const auto solved = sino::solve_batch(items, keff, opt);
    benchmark::DoNotOptimize(solved);
  }
  state.counters["instances_per_s"] = benchmark::Counter(
      static_cast<double>(state.range(0)), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_SinoBatch)
    ->Args({256, 1})
    ->Args({256, 4})
    ->Unit(benchmark::kMillisecond);

// LSK table sampling: serial assignment generation, pooled MNA transient
// simulations. Args: {threads}.
void BM_LskBuild(benchmark::State& state) {
  ktable::LskBuilderOptions opt;
  opt.tracks = 8;
  opt.samples_per_length = 8;
  opt.lengths_um = {300.0, 600.0, 1200.0};
  opt.segments = 4;
  opt.sim_dt = 0.5e-12;
  opt.sim_t_stop = 120e-12;
  opt.threads = static_cast<int>(state.range(0));
  const ktable::LskTableBuilder builder(opt);
  const ktable::KeffModel keff;
  const circuit::Technology tech;
  for (auto _ : state) {
    const auto samples = builder.sample(keff, tech);
    benchmark::DoNotOptimize(samples);
  }
}
BENCHMARK(BM_LskBuild)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
