// Phase I hot-path scaling benchmarks: the ID-router deletion engine and the
// maze (Dijkstra/A*) baseline router on a 64x64 region grid, the size class
// the ISPD98-style workloads route at. Run with
//
//   bench_router_scale --benchmark_out=BENCH_router.json \
//                      --benchmark_out_format=json
//
// to make the perf trajectory machine-readable; CI uploads that file from
// every run so regressions are visible across PRs.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "grid/region_grid.h"
#include "router/id_router.h"
#include "router/maze.h"
#include "router/route_types.h"
#include "sino/nss.h"
#include "util/rng.h"

using namespace rlcr;
using namespace rlcr::router;

namespace {

grid::RegionGrid scale_grid(std::int32_t side = 64, int cap = 16) {
  grid::RegionGridSpec s;
  s.cols = side;
  s.rows = side;
  s.region_w_um = 50.0;
  s.region_h_um = 50.0;
  s.h_capacity = cap;
  s.v_capacity = cap;
  return grid::RegionGrid(s);
}

/// Clustered multi-pin nets, the same generator shape the router tests use:
/// local nets with bounded bounding boxes so they enter the deletion pool
/// (not the huge-net pre-route path).
std::vector<RouterNet> scale_nets(const grid::RegionGrid& g, std::size_t count,
                                  std::uint64_t seed, std::int32_t spread = 6) {
  util::Xoshiro256 rng(seed);
  std::vector<RouterNet> nets(count);
  for (std::size_t i = 0; i < count; ++i) {
    nets[i].id = static_cast<std::int32_t>(i);
    nets[i].si = 0.3;
    const std::int32_t cx = static_cast<std::int32_t>(rng.below(
        static_cast<std::uint64_t>(g.cols())));
    const std::int32_t cy = static_cast<std::int32_t>(rng.below(
        static_cast<std::uint64_t>(g.rows())));
    const std::size_t degree = 2 + rng.below(3);
    for (std::size_t p = 0; p < degree; ++p) {
      geom::Point pt{
          std::clamp(cx + static_cast<std::int32_t>(rng.range(-spread, spread)),
                     0, g.cols() - 1),
          std::clamp(cy + static_cast<std::int32_t>(rng.range(-spread, spread)),
                     0, g.rows() - 1)};
      if (std::find(nets[i].pins.begin(), nets[i].pins.end(), pt) ==
          nets[i].pins.end()) {
        nets[i].pins.push_back(pt);
      }
    }
    if (nets[i].pins.size() < 2) {
      nets[i].pins.push_back(
          geom::Point{(cx + 1) % g.cols(), (cy + 1) % g.rows()});
    }
  }
  return nets;
}

void BM_IdRouter64(benchmark::State& state) {
  const grid::RegionGrid g = scale_grid();
  const auto nets = scale_nets(g, static_cast<std::size_t>(state.range(0)), 97);
  const sino::NssModel nss;
  const IdRouter router(g, nss);
  double wl = 0.0;
  for (auto _ : state) {
    const RoutingResult res = router.route(nets);
    wl = res.total_wirelength_um;
    benchmark::DoNotOptimize(res);
  }
  state.counters["wirelength_um"] = wl;
  state.counters["nets_per_s"] = benchmark::Counter(
      static_cast<double>(state.range(0)), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_IdRouter64)->Arg(200)->Arg(800)->Arg(3200)->Unit(benchmark::kMillisecond);

void BM_Maze64(benchmark::State& state) {
  const grid::RegionGrid g = scale_grid();
  const auto nets = scale_nets(g, static_cast<std::size_t>(state.range(0)), 131);
  const MazeRouter maze(g);
  double wl = 0.0;
  for (auto _ : state) {
    const RoutingResult res = maze.route(nets);
    wl = res.total_wirelength_um;
    benchmark::DoNotOptimize(res);
  }
  state.counters["wirelength_um"] = wl;
  state.counters["nets_per_s"] = benchmark::Counter(
      static_cast<double>(state.range(0)), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_Maze64)->Arg(200)->Arg(800)->Unit(benchmark::kMillisecond);

void BM_Maze64Dijkstra(benchmark::State& state) {
  const grid::RegionGrid g = scale_grid();
  const auto nets = scale_nets(g, static_cast<std::size_t>(state.range(0)), 131);
  MazeOptions opt;
  opt.use_astar = false;  // historical tie-break order, seed-identical routes
  const MazeRouter maze(g, opt);
  double wl = 0.0;
  for (auto _ : state) {
    const RoutingResult res = maze.route(nets);
    wl = res.total_wirelength_um;
    benchmark::DoNotOptimize(res);
  }
  state.counters["wirelength_um"] = wl;
  state.counters["nets_per_s"] = benchmark::Counter(
      static_cast<double>(state.range(0)), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_Maze64Dijkstra)->Arg(200)->Arg(800)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
