// Scenario-matrix campaigns over the ISPD98 classes: one benchmark per
// (class, scenario kind) cell — crosstalk-bound sweeps, multi-corner tech
// sweeps, incremental delta chains, and structured ECO slices — through
// the shared-artifact session machinery (src/scenario/matrix.h).
//
//   bench_scenarios --benchmark_out=BENCH_scenarios.json \
//                   --benchmark_out_format=json
//
// Each cell records the flow runs it produced, the work incrementality
// avoided (stage cache hits, spliced routes, reused region solves), and
// the result of its built-in differential check (`fingerprint_match` —
// the campaign's final state recomputed from scratch must match bit for
// bit). tools/check_scenarios.py gates CI on matrix completeness,
// compute_avoided > 0, and fingerprint_match == 1.
//
// Environment:
//   RLCR_ISPD98_SCALE  density-preserving shrink of every class in (0, 1]
//                      (default 1.0 = published sizes); as in bench_ispd98.
//   RLCR_ISPD98_DIR    directory with the real ibmNN.netD [.are] files.
#include <benchmark/benchmark.h>

#include "build_type_context.h"

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "netlist/ispd98_synth.h"
#include "scenario/matrix.h"

using namespace rlcr;

namespace {

double ispd98_scale() {
  const char* env = std::getenv("RLCR_ISPD98_SCALE");
  if (env == nullptr) return 1.0;
  char* end = nullptr;
  const double v = std::strtod(env, &end);
  return (end != env && v > 0.0 && v <= 1.0) ? v : 1.0;
}

std::vector<netlist::Ispd98ClassSpec>& classes() {
  static std::vector<netlist::Ispd98ClassSpec> c =
      netlist::ispd98_classes(ispd98_scale());
  return c;
}

/// One instance per class, shared by its four kind cells.
const netlist::Ispd98Instance& instance_for(std::size_t idx) {
  static std::vector<std::unique_ptr<netlist::Ispd98Instance>> cache(
      classes().size());
  if (cache[idx] == nullptr) {
    cache[idx] = std::make_unique<netlist::Ispd98Instance>(
        netlist::make_ispd98_instance(classes()[idx]));
  }
  return *cache[idx];
}

void BM_ScenarioMatrix(benchmark::State& state, std::size_t idx,
                       scenario::ScenarioKind kind) {
  const netlist::Ispd98ClassSpec& cls = classes()[idx];
  const netlist::Ispd98Instance& inst = instance_for(idx);

  scenario::ScenarioCell cell;
  for (auto _ : state) {
    cell = scenario::ScenarioMatrix::run_cell(cls.name, inst.design,
                                              inst.gspec, kind,
                                              gsino::GsinoParams{});
    benchmark::DoNotOptimize(cell);
  }

  state.counters["nets"] = static_cast<double>(cell.total_nets);
  state.counters["runs"] = static_cast<double>(cell.runs);
  state.counters["compute_avoided"] =
      static_cast<double>(cell.compute_avoided);
  state.counters["fingerprint_match"] =
      static_cast<double>(cell.fingerprint_match);
  state.counters["real_circuit"] = inst.real ? 1.0 : 0.0;
  state.counters["campaign_wall_s"] = cell.seconds;
}

}  // namespace

int main(int argc, char** argv) {
  const auto& suite = classes();
  for (std::size_t i = 0; i < suite.size(); ++i) {
    for (const scenario::ScenarioKind kind : scenario::kAllScenarioKinds) {
      const std::string name = "BM_ScenarioMatrix/" + suite[i].name + "/" +
                               scenario::kind_name(kind);
      benchmark::RegisterBenchmark(name.c_str(), BM_ScenarioMatrix, i, kind)
          ->Unit(benchmark::kSecond)
          ->Iterations(1);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
