// Service-layer load benchmark: an in-process what-if daemon
// (service/server.h) driven by N concurrent clients over its real
// Unix-domain socket, so the measured latency includes the full wire
// path — framing, checksums, dispatch, coalescing, session reuse.
//
//   BM_ServiceTinyBurst — burst of small what-if queries from 4 clients
//     against one shared tiny session: protocol + dispatch overhead, with
//     identical submits racing so coalescing fires.
//   BM_ServiceMixedIbm01 — ibm01 stand-in (RLCROUTE_SCALE, default 0.10):
//     a cold first query, then warm what-if bounds and coalescable
//     duplicates — the daemon's intended steady state.
//
// Counters per bench: p50_ms / p99_ms client-observed request latency,
// warm_hit_rate (fraction of replies served without re-routing Phase I),
// coalesced (submits that attached to an in-flight job). CI merges the
// JSON into BENCH_router.json; RLCR_SERVICE_METRICS=<path> additionally
// dumps the server's unified metrics registry for tools/check_service.py.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "build_type_context.h"

#include "core/experiment.h"
#include "service/client.h"
#include "service/server.h"
#include "util/stopwatch.h"

using namespace rlcr;

namespace {

std::string bench_socket_path() {
  return "/tmp/rlcr_bench_service_" + std::to_string(::getpid()) + ".sock";
}

struct WorkloadResult {
  std::vector<double> latencies_ms;  // one entry per completed request
  std::size_t warm = 0;
  std::size_t coalesced = 0;
  std::size_t failures = 0;
};

/// Each inner vector is one client's submit sequence, replayed over its
/// own connection on its own thread (submit -> wait, in order).
WorkloadResult run_clients(
    const std::string& socket_path,
    const std::vector<std::vector<service::WhatIfQuery>>& per_client) {
  std::vector<WorkloadResult> partial(per_client.size());
  std::vector<std::thread> threads;
  threads.reserve(per_client.size());
  for (std::size_t c = 0; c < per_client.size(); ++c) {
    threads.emplace_back([&, c] {
      WorkloadResult& out = partial[c];
      service::Client client;
      if (!client.connect(socket_path)) {
        out.failures += per_client[c].size();
        return;
      }
      for (const service::WhatIfQuery& q : per_client[c]) {
        util::Stopwatch watch;
        service::SubmitAck ack;
        service::Result res;
        if (!client.submit(q, &ack) ||
            ack.reject != service::RejectReason::kNone ||
            !client.wait(ack.ticket, &res) ||
            res.state != service::JobState::kDone) {
          ++out.failures;
          continue;
        }
        out.latencies_ms.push_back(watch.seconds() * 1e3);
        if (res.summary.warm != 0) ++out.warm;
        if (ack.coalesced != 0) ++out.coalesced;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  WorkloadResult total;
  for (const WorkloadResult& p : partial) {
    total.latencies_ms.insert(total.latencies_ms.end(),
                              p.latencies_ms.begin(), p.latencies_ms.end());
    total.warm += p.warm;
    total.coalesced += p.coalesced;
    total.failures += p.failures;
  }
  return total;
}

double percentile_ms(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double pos = p * static_cast<double>(values.size() - 1);
  return values[static_cast<std::size_t>(pos + 0.5)];
}

void set_counters(benchmark::State& state, const WorkloadResult& r,
                  const service::ServiceStats& stats) {
  state.counters["p50_ms"] = percentile_ms(r.latencies_ms, 0.50);
  state.counters["p99_ms"] = percentile_ms(r.latencies_ms, 0.99);
  state.counters["warm_hit_rate"] =
      r.latencies_ms.empty()
          ? 0.0
          : static_cast<double>(r.warm) /
                static_cast<double>(r.latencies_ms.size());
  state.counters["coalesced"] = static_cast<double>(stats.coalesce_hits);
  state.counters["requests"] = static_cast<double>(r.latencies_ms.size());
  state.counters["failures"] = static_cast<double>(r.failures);
}

void maybe_dump_metrics(const service::Server& server) {
  const char* path = std::getenv("RLCR_SERVICE_METRICS");
  if (path == nullptr || path[0] == '\0') return;
  if (!server.metrics().write_json(path)) {
    std::fprintf(stderr, "warning: cannot write service metrics to %s\n",
                 path);
  }
}

// ---------------------------------------------------------- tiny burst

void BM_ServiceTinyBurst(benchmark::State& state) {
  service::WhatIfQuery base;
  base.source = service::QuerySource::kTiny;
  base.tiny_nets = 200;
  base.seed = 7;
  base.flow = 2;  // gsino

  for (auto _ : state) {
    service::ServerOptions so;
    so.socket_path = bench_socket_path();
    so.workers = 2;
    service::Server server(std::move(so));
    std::string err;
    if (!server.start(&err)) {
      state.SkipWithError(("server start failed: " + err).c_str());
      return;
    }
    server.preload(base);

    // 4 clients x 6 requests on the one tiny session. Every client opens
    // with the identical base query (the coalescing race), then sweeps
    // client-distinct what-if bounds (all warm after the first compute).
    const int kClients = 4, kPerClient = 6;
    std::vector<std::vector<service::WhatIfQuery>> work(kClients);
    for (int c = 0; c < kClients; ++c) {
      work[c].push_back(base);
      for (int i = 1; i < kPerClient; ++i) {
        service::WhatIfQuery q = base;
        q.has_bound = true;
        q.scenario_bound_v = 0.10 + 0.01 * (c * kPerClient + i);
        work[c].push_back(q);
      }
    }
    const WorkloadResult r = run_clients(server.socket_path(), work);
    set_counters(state, r, server.stats());
    maybe_dump_metrics(server);
    server.stop();
    if (r.failures > 0) {
      state.SkipWithError("service requests failed");
      return;
    }
  }
}
BENCHMARK(BM_ServiceTinyBurst)->Unit(benchmark::kMillisecond)->Iterations(1);

// ----------------------------------------------------- ibm01 mixed load

void BM_ServiceMixedIbm01(benchmark::State& state) {
  service::WhatIfQuery base;
  base.source = service::QuerySource::kSynthetic;
  base.circuit = "ibm01";
  base.scale = gsino::scale_from_env(0.10);
  base.rate = 0.30;
  base.flow = 2;

  for (auto _ : state) {
    service::ServerOptions so;
    so.socket_path = bench_socket_path();
    so.workers = 2;
    service::Server server(std::move(so));
    std::string err;
    if (!server.start(&err)) {
      state.SkipWithError(("server start failed: " + err).c_str());
      return;
    }

    // Mixed steady-state: every client needs the cold compute exactly
    // once (whoever lands first pays it; the identical racing submits
    // coalesce onto it), then warm what-if sweeps dominate.
    const int kClients = 3;
    std::vector<std::vector<service::WhatIfQuery>> work(kClients);
    for (int c = 0; c < kClients; ++c) {
      work[c].push_back(base);  // identical -> cold once + coalesce/warm
      for (int i = 0; i < 3; ++i) {
        service::WhatIfQuery q = base;
        q.has_bound = true;
        q.scenario_bound_v = 0.12 + 0.01 * (c * 3 + i);
        work[c].push_back(q);
      }
    }
    const WorkloadResult r = run_clients(server.socket_path(), work);
    set_counters(state, r, server.stats());
    maybe_dump_metrics(server);
    server.stop();
    if (r.failures > 0) {
      state.SkipWithError("service requests failed");
      return;
    }
  }
}
BENCHMARK(BM_ServiceMixedIbm01)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
