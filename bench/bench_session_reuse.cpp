// Session-reuse benchmark: the cost of a crosstalk-bound what-if sweep
// with and without the staged session's artifact cache.
//
//   BM_BoundSweepRebuild — N bounds, a fresh FlowSession per bound: every
//     cell re-runs Phase I routing from scratch (the historical
//     FlowRunner::run cost model).
//   BM_BoundSweepReuse   — the same N bounds through one FlowSession:
//     Phase I routes once, every other bound re-solves Phase II/III off
//     the cached RoutingArtifact.
//
// Run with
//
//   bench_session_reuse --benchmark_out=BENCH_session_reuse.json \
//                       --benchmark_out_format=json
//
// CI merges the result into BENCH_router.json (one machine-readable perf
// trajectory per run), so the reuse speedup is tracked across PRs.
#include <benchmark/benchmark.h>

#include "build_type_context.h"

#include "core/session.h"
#include "netlist/synthetic.h"

using namespace rlcr;
using namespace rlcr::gsino;

namespace {

/// The circuit-suite shape (ibm01 stand-in at quarter scale): a few
/// thousand nets on a 48x48 grid, where Phase I routing carries the share
/// of the runtime the paper's Section 5 describes — the regime the
/// artifact cache is for.
struct Fixture {
  netlist::SyntheticSpec spec;
  netlist::Netlist design;
  GsinoParams params;

  Fixture() : spec(netlist::ibm_suite(0.25)[0]) {
    design = netlist::generate(spec);
    params.sensitivity_rate = 0.3;
  }

  RoutingProblem problem() const { return make_problem(design, spec, params); }
};

/// The integration-test pipeline shape: 400 clustered nets on a 12x12
/// grid — small enough that the three-flow cell benches stay cheap.
struct SmallFixture {
  netlist::SyntheticSpec spec;
  netlist::Netlist design;
  GsinoParams params;

  SmallFixture() : spec(netlist::tiny_spec(400, 12)) {
    spec.grid_cols = 12;
    spec.grid_rows = 12;
    spec.chip_w_um = 600.0;
    spec.chip_h_um = 600.0;
    spec.h_capacity = 12;
    spec.v_capacity = 12;
    spec.local_sigma_regions = 2.0;
    design = netlist::generate(spec);
    params.sensitivity_rate = 0.5;
  }

  RoutingProblem problem() const { return make_problem(design, spec, params); }
};

std::vector<double> sweep_bounds(std::size_t count) {
  std::vector<double> bounds;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(0.15 + 0.02 * static_cast<double>(i));
  }
  return bounds;
}

// Args: {bounds}.
void BM_BoundSweepRebuild(benchmark::State& state) {
  const Fixture fx;
  const RoutingProblem problem = fx.problem();
  const auto bounds = sweep_bounds(static_cast<std::size_t>(state.range(0)));
  std::size_t routes_executed = 0;
  for (auto _ : state) {
    routes_executed = 0;
    for (double bound : bounds) {
      FlowSession session(problem);  // no cache survives between bounds
      Scenario scenario;
      scenario.bound_v = bound;
      const FlowResult fr = session.run(FlowKind::kGsino, scenario);
      benchmark::DoNotOptimize(fr.total_shields);
      routes_executed += session.counters().route_executed;
    }
  }
  state.counters["phase1_routes"] = static_cast<double>(routes_executed);
  state.counters["bounds_per_s"] = benchmark::Counter(
      static_cast<double>(state.range(0)),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_BoundSweepRebuild)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_BoundSweepReuse(benchmark::State& state) {
  const Fixture fx;
  const RoutingProblem problem = fx.problem();
  const auto bounds = sweep_bounds(static_cast<std::size_t>(state.range(0)));
  std::size_t routes_executed = 0;
  for (auto _ : state) {
    FlowSession session(problem);  // one session: Phase I routes once
    for (double bound : bounds) {
      Scenario scenario;
      scenario.bound_v = bound;
      const FlowResult fr = session.run(FlowKind::kGsino, scenario);
      benchmark::DoNotOptimize(fr.total_shields);
    }
    routes_executed = session.counters().route_executed;
  }
  state.counters["phase1_routes"] = static_cast<double>(routes_executed);
  state.counters["bounds_per_s"] = benchmark::Counter(
      static_cast<double>(state.range(0)),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_BoundSweepReuse)->Arg(4)->Unit(benchmark::kMillisecond);

// The three-flow experiment cell (one (circuit, rate) point): fresh
// session per flow vs one shared session (ID+NO and iSINO share Phase I).
void BM_ThreeFlowCellRebuild(benchmark::State& state) {
  const SmallFixture fx;
  const RoutingProblem problem = fx.problem();
  for (auto _ : state) {
    for (FlowKind kind :
         {FlowKind::kIdNo, FlowKind::kIsino, FlowKind::kGsino}) {
      FlowSession session(problem);
      benchmark::DoNotOptimize(session.run(kind).total_shields);
    }
  }
}
BENCHMARK(BM_ThreeFlowCellRebuild)->Unit(benchmark::kMillisecond);

void BM_ThreeFlowCellShared(benchmark::State& state) {
  const SmallFixture fx;
  const RoutingProblem problem = fx.problem();
  std::size_t routes_executed = 0;
  for (auto _ : state) {
    FlowSession session(problem);
    for (FlowKind kind :
         {FlowKind::kIdNo, FlowKind::kIsino, FlowKind::kGsino}) {
      benchmark::DoNotOptimize(session.run(kind).total_shields);
    }
    routes_executed = session.counters().route_executed;
  }
  state.counters["phase1_routes"] = static_cast<double>(routes_executed);
}
BENCHMARK(BM_ThreeFlowCellShared)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
