// Speculative-parallelism A/B on the ISPD98 size classes: the Phase I
// deletion loop and Phase III refine pass 1 — the flow's two formerly
// serial walls — each timed serial (threads=1) vs speculative
// (threads=4, batch=8), with process CPU seconds and the speculation
// commit rate recorded per entry. Outputs are bit-identical across arms
// (parallel/speculate.h), so the wall/CPU gap and the commit rate are
// the whole story.
//
//   bench_speculate --benchmark_out=BENCH_speculate.json \
//                   --benchmark_out_format=json
//
// CI merges the entries into BENCH_router.json (tools/merge_bench.py;
// see bench/README.md). On a 1-vCPU box the speculative arm's wall time
// cannot improve — the fanout shows in `cpu_s` instead; the commit rate
// is machine-independent (snapshot selection and validation are serial,
// so the counters are deterministic for fixed knobs).
//
// Environment: RLCR_ISPD98_SCALE / RLCR_ISPD98_DIR as in bench_ispd98.
#include <benchmark/benchmark.h>

#include "build_type_context.h"

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "core/problem.h"
#include "core/refine.h"
#include "core/session.h"
#include "netlist/ispd98_synth.h"
#include "router/id_router.h"

using namespace rlcr;
using namespace rlcr::gsino;

namespace {

double ispd98_scale() {
  const char* env = std::getenv("RLCR_ISPD98_SCALE");
  if (env == nullptr) return 1.0;
  char* end = nullptr;
  const double v = std::strtod(env, &end);
  return (end != env && v > 0.0 && v <= 1.0) ? v : 1.0;
}

/// Process CPU time (user + system), seconds.
double cpu_seconds() {
#if defined(__unix__) || defined(__APPLE__)
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  auto tv = [](const timeval& t) {
    return static_cast<double>(t.tv_sec) + 1e-6 * static_cast<double>(t.tv_usec);
  };
  return tv(ru.ru_utime) + tv(ru.ru_stime);
#else
  return 0.0;
#endif
}

std::vector<netlist::Ispd98ClassSpec>& classes() {
  static std::vector<netlist::Ispd98ClassSpec> c =
      netlist::ispd98_classes(ispd98_scale());
  return c;
}

/// One prepared class, built lazily so a filtered run only pays for the
/// classes it times. The session carries the cached Phase I/II artifacts
/// the refine arm restarts from.
struct ClassContext {
  std::unique_ptr<RoutingProblem> problem;
  std::unique_ptr<FlowSession> session;
};

ClassContext& context_for(std::size_t idx) {
  static std::vector<std::unique_ptr<ClassContext>> cache(classes().size());
  if (cache[idx] == nullptr) {
    auto ctx = std::make_unique<ClassContext>();
    netlist::Ispd98Instance inst = netlist::make_ispd98_instance(classes()[idx]);
    GsinoParams params;
    ctx->problem =
        std::make_unique<RoutingProblem>(inst.design, inst.gspec, params);
    ctx->session = std::make_unique<FlowSession>(*ctx->problem);
    cache[idx] = std::move(ctx);
  }
  return *cache[idx];
}

void spec_counters(benchmark::State& state, double attempted, double committed,
                   double replayed) {
  state.counters["spec_attempted"] = attempted;
  state.counters["spec_committed"] = committed;
  state.counters["spec_replayed"] = replayed;
  state.counters["commit_rate"] = attempted > 0.0 ? committed / attempted : 0.0;
}

/// Phase I deletion loop, serial vs speculative. Args via capture:
/// (threads, batch); routes are bit-identical across arms.
void BM_SpeculativeRoute(benchmark::State& state, std::size_t idx, int threads,
                         int batch) {
  const RoutingProblem& p = *context_for(idx).problem;
  router::IdRouterOptions opt = p.params().router;
  opt.threads = threads;
  opt.speculate_batch = batch;
  const router::IdRouter router(p.grid(), p.nss(), opt);

  router::RoutingStats stats;
  double wl = 0.0, cpu_s = 0.0;
  for (auto _ : state) {
    const double cpu0 = cpu_seconds();
    const router::RoutingResult res = router.route(p.router_nets());
    cpu_s = cpu_seconds() - cpu0;
    stats = res.stats;
    wl = res.total_wirelength_um;
    benchmark::DoNotOptimize(res);
  }

  state.counters["nets"] = static_cast<double>(p.net_count());
  state.counters["cpu_s"] = cpu_s;
  state.counters["wirelength_um"] = wl;
  spec_counters(state, static_cast<double>(stats.spec_attempted),
                static_cast<double>(stats.spec_committed),
                static_cast<double>(stats.spec_replayed));
}

/// Phase III pass 1 (eliminate violations), serial vs speculative, on the
/// cached Phase II state of the class's GSINO flow. The refined states are
/// bit-identical across arms.
void BM_SpeculativeRefine(benchmark::State& state, std::size_t idx,
                          int threads, int batch) {
  ClassContext& ctx = context_for(idx);
  const LocalRefiner refiner(*ctx.problem);
  RefineOptions opt;
  opt.threads = threads;
  opt.speculate_batch = batch;

  RefineStats stats;
  double cpu_s = 0.0;
  std::size_t violations_in = 0, violations_out = 0;
  for (auto _ : state) {
    state.PauseTiming();
    FlowState fs = ctx.session->state(FlowKind::kGsino);  // cached artifacts
    violations_in = fs.violating;
    state.ResumeTiming();
    const double cpu0 = cpu_seconds();
    refiner.eliminate_violations(fs, stats, opt);
    cpu_s = cpu_seconds() - cpu0;
    fs.refresh_noise();
    violations_out = fs.violating;
    benchmark::DoNotOptimize(fs);
  }

  state.counters["nets"] = static_cast<double>(ctx.problem->net_count());
  state.counters["cpu_s"] = cpu_s;
  state.counters["violations_in"] = static_cast<double>(violations_in);
  state.counters["violations_out"] = static_cast<double>(violations_out);
  spec_counters(state, static_cast<double>(stats.spec_attempted),
                static_cast<double>(stats.spec_committed),
                static_cast<double>(stats.spec_replayed));
}

}  // namespace

int main(int argc, char** argv) {
  const auto& suite = classes();
  struct Arm {
    const char* tag;
    int threads, batch;
  };
  // serial = the exact serial path (speculation off); spec = the default
  // batch width across a 4-way pool.
  constexpr Arm kArms[] = {{"serial", 1, 1}, {"spec", 4, 8}};
  for (std::size_t i = 0; i < suite.size(); ++i) {
    for (const Arm& arm : kArms) {
      benchmark::RegisterBenchmark(
          ("BM_SpeculativeRoute/" + suite[i].name + "/" + arm.tag).c_str(),
          BM_SpeculativeRoute, i, arm.threads, arm.batch)
          ->Unit(benchmark::kSecond)
          ->Iterations(1);
      benchmark::RegisterBenchmark(
          ("BM_SpeculativeRefine/" + suite[i].name + "/" + arm.tag).c_str(),
          BM_SpeculativeRefine, i, arm.threads, arm.batch)
          ->Unit(benchmark::kSecond)
          ->Iterations(1);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
