// Steiner quality -> routing ablation: every ISPD98 size class through
// the staged GSINO flow once per tree profile (fast / balanced / best),
// recording the tree-level cost (total tree length, construction wall
// seconds, cache hit rate over the class's real pin sets) next to the
// routed consequence (wirelength, violations, shields, overflow).
//
//   bench_steiner --benchmark_out=BENCH_steiner.json \
//                 --benchmark_out_format=json
//
// CI merges the entries into BENCH_router.json (tools/merge_bench.py)
// and gates them with tools/check_steiner.py: per-class profile curves
// must be complete, tree lengths must obey best <= balanced <= fast,
// and the fast tier must be a bit-identical no-op — its route hash has
// to match a default-profile run (`fingerprint_match` below), which is
// the claim every pre-existing golden rests on.
//
// Environment: RLCR_ISPD98_SCALE / RLCR_ISPD98_DIR as in bench_ispd98.
#include <benchmark/benchmark.h>

#include "build_type_context.h"

#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/problem.h"
#include "core/session.h"
#include "netlist/ispd98_synth.h"
#include "router/route_types.h"
#include "steiner/tree_builder.h"
#include "steiner/tree_cache.h"

using namespace rlcr;
using namespace rlcr::gsino;

namespace {

double ispd98_scale() {
  const char* env = std::getenv("RLCR_ISPD98_SCALE");
  if (env == nullptr) return 1.0;
  char* end = nullptr;
  const double v = std::strtod(env, &end);
  return (end != env && v > 0.0 && v <= 1.0) ? v : 1.0;
}

std::vector<netlist::Ispd98ClassSpec>& classes() {
  static std::vector<netlist::Ispd98ClassSpec> c =
      netlist::ispd98_classes(ispd98_scale());
  return c;
}

/// One prepared class, shared across its three profile runs. The default
/// (profile-free) flow is run once and its route hash kept: the fast tier
/// must reproduce it bit for bit.
struct ClassContext {
  netlist::Ispd98ClassSpec spec;
  std::unique_ptr<RoutingProblem> problem;
  std::uint64_t default_route_hash = 0;
  bool real = false;
};

ClassContext& context_for(std::size_t idx) {
  static std::vector<std::unique_ptr<ClassContext>> cache(classes().size());
  if (cache[idx] == nullptr) {
    auto ctx = std::make_unique<ClassContext>();
    ctx->spec = classes()[idx];
    netlist::Ispd98Instance inst = netlist::make_ispd98_instance(ctx->spec);
    ctx->real = inst.real;
    GsinoParams params;
    ctx->problem =
        std::make_unique<RoutingProblem>(inst.design, inst.gspec, params);
    FlowSession session(*ctx->problem);
    ctx->default_route_hash =
        router::route_hash(*session.route(FlowKind::kGsino)->routing);
    cache[idx] = std::move(ctx);
  }
  return *cache[idx];
}

/// Tree construction over the class's real pin sets, isolated from the
/// router: total length, wall seconds, and how much of the class the
/// content-addressed cache collapses.
void BM_SteinerQuality(benchmark::State& state, std::size_t idx,
                       steiner::TreeProfile profile) {
  ClassContext& ctx = context_for(idx);
  const RoutingProblem& problem = *ctx.problem;

  double tree_len = 0.0, build_s = 0.0;
  steiner::TreeCache::Stats cache_stats;
  double wirelength = 0.0, shields = 0.0, overflow = 0.0;
  std::size_t violating = 0;
  std::uint64_t hash = 0;
  for (auto _ : state) {
    steiner::TreeCache tree_cache;
    const steiner::TreeBuilder builder({}, &tree_cache);
    std::int64_t total = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (const router::RouterNet& net : problem.router_nets()) {
      if (net.pins.size() >= 2) total += builder.length(net.pins, profile);
    }
    build_s = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
    tree_len = static_cast<double>(total);
    cache_stats = tree_cache.stats();

    FlowSession session(problem);
    Scenario scenario;
    scenario.tree_profile = profile;
    const FlowResult fr = session.run(FlowKind::kGsino, scenario);
    hash = router::route_hash(fr.routing());
    wirelength = fr.routing().total_wirelength_um;
    violating = fr.violating;
    shields = fr.total_shields;
    overflow = fr.congestion->total_overflow();
    benchmark::DoNotOptimize(fr);
  }

  state.counters["nets"] = static_cast<double>(problem.net_count());
  state.counters["real_circuit"] = ctx.real ? 1.0 : 0.0;
  state.counters["profile"] = static_cast<double>(profile);
  state.counters["tree_len_total"] = tree_len;
  state.counters["tree_build_s"] = build_s;
  const double lookups =
      static_cast<double>(cache_stats.hits + cache_stats.misses);
  state.counters["tree_cache_hit_rate"] =
      lookups > 0.0 ? static_cast<double>(cache_stats.hits) / lookups : 0.0;
  state.counters["wirelength_um"] = wirelength;
  state.counters["violations"] = static_cast<double>(violating);
  state.counters["shields"] = shields;
  state.counters["overflow"] = overflow;
  if (profile == steiner::TreeProfile::kFast) {
    state.counters["fingerprint_match"] =
        hash == ctx.default_route_hash ? 1.0 : 0.0;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto& suite = classes();
  for (std::size_t i = 0; i < suite.size(); ++i) {
    for (const steiner::TreeProfile p :
         {steiner::TreeProfile::kFast, steiner::TreeProfile::kBalanced,
          steiner::TreeProfile::kBest}) {
      benchmark::RegisterBenchmark(
          ("BM_SteinerQuality/" + suite[i].name + "/" +
           steiner::profile_name(p))
              .c_str(),
          BM_SteinerQuality, i, p)
          ->Unit(benchmark::kSecond)
          ->Iterations(1);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
