// Reproduces Table 1 of the paper: numbers of crosstalk-violating nets for
// conventional (ID+NO) routing at 3 GHz with a 0.15 V noise bound, for
// sensitivity rates 30% and 50%.
//
// Paper reference values (full-size circuits):
//   ibm01 1907 (14.60%) / 2583 (19.78%)   ibm04 5143 (16.42%) / 5928 (18.92%)
//   ibm02 3254 (16.87%) / 4275 (22.16%)   ibm05 4361 (14.71%) / 7135 (24.07%)
//   ibm03 4920 (18.85%) / 6056 (23.20%)   ibm06 4802 (13.96%) / 6573 (19.11%)
// The headline claim is the shape: double-digit violation percentages, up
// to ~24%, rising with the sensitivity rate.
#include <cstdio>
#include <iostream>

#include "suite_cache.h"

int main() {
  std::printf("== bench_table1: crosstalk-violating nets in ID+NO routing ==\n\n");
  const auto runs = rlcr::bench::suite_runs();
  rlcr::gsino::render_table1(runs).print(std::cout);
  std::printf(
      "\nPaper shape check: ID+NO leaves a double-digit percentage of nets\n"
      "violating the 0.15 V bound, growing with the sensitivity rate\n"
      "(paper: 13.96%%-18.85%% at 30%%, 18.92%%-24.07%% at 50%%).\n");
  return 0;
}
