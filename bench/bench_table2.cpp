// Reproduces Table 2 of the paper: average wire lengths (um) of ID+NO and
// GSINO solutions.
//
// Paper reference values (average increase of GSINO over ID+NO):
//   rate 30%: 6.62% - 10.82% (avg ~7%)
//   rate 50%: 10.49% - 16.38% (avg ~13%)
// iSINO is omitted by the paper because applying SINO after routing leaves
// the wire length identical to ID+NO (our flows share that property
// exactly). The shape to check: GSINO pays a small wire-length premium for
// its shield-aware routing; ID+NO/iSINO pay none.
#include <cstdio>
#include <iostream>

#include "suite_cache.h"

int main() {
  std::printf("== bench_table2: average wire lengths, ID+NO vs GSINO ==\n\n");
  const auto runs = rlcr::bench::suite_runs();
  rlcr::gsino::render_table2(runs).print(std::cout);

  // Aggregate overheads, as the paper quotes them.
  double sum30 = 0.0, sum50 = 0.0;
  int n30 = 0, n50 = 0;
  for (const auto& r : runs) {
    if (!r.has_gsino || r.idno.avg_wirelength_um <= 0.0) continue;
    const double over =
        r.gsino.avg_wirelength_um / r.idno.avg_wirelength_um - 1.0;
    if (r.rate < 0.4) {
      sum30 += over;
      ++n30;
    } else {
      sum50 += over;
      ++n50;
    }
  }
  if (n30 && n50) {
    std::printf(
        "\nAverage GSINO wire-length overhead: %.2f%% at rate 30%% "
        "(paper ~7%%), %.2f%% at rate 50%% (paper ~13%%).\n",
        100.0 * sum30 / n30, 100.0 * sum50 / n50);
  }
  std::printf(
      "iSINO wire length equals ID+NO by construction (same routing), as "
      "the paper notes.\n");
  return 0;
}
