// Reproduces Table 3 of the paper: routing areas (product of the maximum
// row and column lengths) of ID+NO, iSINO, and GSINO solutions.
//
// Paper reference shape:
//   iSINO pays a large unplanned shield-area overhead over ID+NO
//     (16.78%-19.73% at rate 30%, 22.46%-25.53% at 50%),
//   GSINO's planned shielding (Eq. 3 reservation during routing + Phase III
//   recovery) cuts that overhead substantially
//     (5.74%-8.74% at 30%, 6.51%-11.00% at 50%).
// The ordering iSINO > GSINO > ID+NO and the iSINO-vs-GSINO gap are the
// claims under test; absolute um values depend on the synthetic substrate.
#include <cstdio>
#include <iostream>

#include "suite_cache.h"

int main() {
  std::printf("== bench_table3: routing areas of ID+NO, iSINO, GSINO ==\n\n");
  const auto runs = rlcr::bench::suite_runs();
  rlcr::gsino::render_table3(runs).print(std::cout);

  double isino30 = 0.0, gsino30 = 0.0, isino50 = 0.0, gsino50 = 0.0;
  int n30 = 0, n50 = 0;
  for (const auto& r : runs) {
    if (!r.has_isino || !r.has_gsino || r.idno.area_um2() <= 0.0) continue;
    const double oi = r.isino.area_um2() / r.idno.area_um2() - 1.0;
    const double og = r.gsino.area_um2() / r.idno.area_um2() - 1.0;
    if (r.rate < 0.4) {
      isino30 += oi;
      gsino30 += og;
      ++n30;
    } else {
      isino50 += oi;
      gsino50 += og;
      ++n50;
    }
  }
  if (n30 && n50) {
    std::printf(
        "\nAverage area overhead vs ID+NO:\n"
        "  rate 30%%: iSINO %+.2f%% (paper ~18%%), GSINO %+.2f%% (paper ~7%%)\n"
        "  rate 50%%: iSINO %+.2f%% (paper ~23%%), GSINO %+.2f%% (paper ~9%%)\n",
        100.0 * isino30 / n30, 100.0 * gsino30 / n30, 100.0 * isino50 / n50,
        100.0 * gsino50 / n50);
  }
  std::printf(
      "Shape check: iSINO > GSINO > ID+NO, with GSINO recovering a chunk of\n"
      "iSINO's unplanned shield area via reservation and local refinement.\n");
  return 0;
}
