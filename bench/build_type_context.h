// Build-type provenance stamp for the JSON-producing (trajectory)
// benches. google-benchmark's own `library_build_type` context field
// records how the *benchmark library* was compiled — on boxes with a
// debug-built system/conda libbenchmark it says "debug" even when the
// code under test is a full Release build. Since what is timed is the
// rlcr library, every trajectory bench includes this header to stamp
// `app_build_type` — the NDEBUG state of this translation unit, which
// follows CMAKE_BUILD_TYPE — into the context block.
// tools/merge_bench.py keys its debug-entry rejection on this field
// (falling back to library_build_type when absent), so a Debug app
// build can never enter BENCH_router.json. See bench/README.md
// ("Build-type provenance").
#pragma once

#include <benchmark/benchmark.h>

namespace {

const struct AppBuildTypeContext {
  AppBuildTypeContext() {
#ifdef NDEBUG
    benchmark::AddCustomContext("app_build_type", "release");
#else
    benchmark::AddCustomContext("app_build_type", "debug");
#endif
  }
} app_build_type_context;

}  // namespace
