// Shared experiment-suite runner with a results cache.
//
// Tables 1-3 of the paper are different projections of the SAME experiment
// (six circuits x two sensitivity rates x three flows). Running the flows
// once and letting each table bench reuse the results keeps the combined
// bench run at one suite sweep instead of three. The cache is a CSV file in
// the working directory keyed by the benchmark scale; delete it (or change
// RLCROUTE_SCALE) to force a re-run.
#pragma once

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.h"

namespace rlcr::bench {

inline std::string cache_path(double scale) {
  std::ostringstream oss;
  oss << "rlcroute_suite_cache_" << scale << ".csv";
  return oss.str();
}

inline void save_runs(const std::string& path,
                      const std::vector<gsino::CircuitRun>& runs) {
  std::ofstream out(path);
  auto flow = [&](const gsino::FlowSummary& s) {
    out << ',' << s.violating << ',' << s.unfixable << ','
        << s.avg_wirelength_um << ',' << s.total_wirelength_um << ','
        << s.area_width_um << ',' << s.area_height_um << ','
        << s.total_shields;
  };
  for (const auto& r : runs) {
    out << r.circuit << ',' << r.rate << ',' << r.total_nets << ','
        << r.has_isino << ',' << r.has_gsino;
    flow(r.idno);
    flow(r.isino);
    flow(r.gsino);
    out << '\n';
  }
}

inline bool load_runs(const std::string& path,
                      std::vector<gsino::CircuitRun>& runs) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream iss(line);
    std::string cell;
    auto next = [&]() {
      std::getline(iss, cell, ',');
      return cell;
    };
    gsino::CircuitRun r;
    r.circuit = next();
    if (r.circuit.empty()) continue;
    r.rate = std::stod(next());
    r.total_nets = std::stoul(next());
    r.has_isino = std::stoi(next()) != 0;
    r.has_gsino = std::stoi(next()) != 0;
    auto flow = [&](gsino::FlowSummary& s, const char* name) {
      s.name = name;
      s.total_nets = r.total_nets;
      s.violating = std::stoul(next());
      s.unfixable = std::stoul(next());
      s.avg_wirelength_um = std::stod(next());
      s.total_wirelength_um = std::stod(next());
      s.area_width_um = std::stod(next());
      s.area_height_um = std::stod(next());
      s.total_shields = std::stod(next());
    };
    flow(r.idno, "ID+NO");
    flow(r.isino, "iSINO");
    flow(r.gsino, "GSINO");
    runs.push_back(std::move(r));
  }
  return !runs.empty();
}

/// Run (or load) the full suite at the environment-selected scale.
inline std::vector<gsino::CircuitRun> suite_runs() {
  const double scale = gsino::scale_from_env(0.4);
  const std::string path = cache_path(scale);
  std::vector<gsino::CircuitRun> runs;
  if (load_runs(path, runs)) {
    std::printf("[suite] loaded cached results from %s (delete to re-run)\n\n",
                path.c_str());
    return runs;
  }
  std::printf(
      "[suite] running 6 circuits x 2 rates x 3 flows at scale %.2f\n"
      "[suite] (set RLCROUTE_SCALE=1.0 for the full published sizes; the\n"
      "[suite]  generator shrinks grid and chip together, preserving the\n"
      "[suite]  density regime and hence the paper's shapes)\n\n",
      scale);
  gsino::ExperimentOptions opt;
  opt.scale = scale;
  opt.progress = [](const std::string& circuit, double rate, const std::string&,
                    double seconds) {
    std::printf("[suite] %s rate=%.0f%% done in %.1f s\n", circuit.c_str(),
                rate * 100.0, seconds);
    std::fflush(stdout);
  };
  runs = gsino::ExperimentRunner(opt).run();
  save_runs(path, runs);
  return runs;
}

}  // namespace rlcr::bench
