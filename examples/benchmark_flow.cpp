// Benchmark flow: the paper's full experiment on one circuit.
//
//   $ ./benchmark_flow [ibm01..ibm06] [scale]
//
// Runs ID+NO, iSINO, and GSINO on one of the calibrated IBM-suite stand-ins
// and prints a per-circuit version of the paper's Tables 1-3. Default scale
// is 0.25 (density-preserving shrink); pass 1.0 for the full published size.
#include <cstdio>
#include <cstring>
#include <iostream>

#include "core/experiment.h"
#include "core/session.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

using namespace rlcr;
using namespace rlcr::gsino;

int main(int argc, char** argv) {
  int circuit = 0;
  double scale = 0.25;
  if (argc > 1) {
    for (int i = 0; i < 6; ++i) {
      if (std::strcmp(argv[1], ("ibm0" + std::to_string(i + 1)).c_str()) == 0) {
        circuit = i;
      }
    }
  }
  if (argc > 2) scale = std::atof(argv[2]);

  const auto suite = netlist::ibm_suite(scale);
  const netlist::SyntheticSpec& spec = suite[static_cast<std::size_t>(circuit)];
  std::printf("circuit %s at scale %.2f: %zu nets, %d x %d regions, chip %.0f x %.0f um\n\n",
              spec.name.c_str(), scale, spec.num_nets, spec.grid_cols,
              spec.grid_rows, spec.chip_w_um, spec.chip_h_um);

  GsinoParams params;
  std::vector<CircuitRun> runs;
  for (double rate : {0.30, 0.50}) {
    std::printf("running all three flows at sensitivity rate %.0f%%...\n",
                rate * 100.0);
    std::fflush(stdout);
    runs.push_back(ExperimentRunner::run_one(spec, rate, params));
  }
  std::printf("\n");

  render_table1(runs).print(std::cout);
  std::printf("\n");
  render_table2(runs).print(std::cout);
  std::printf("\n");
  render_table3(runs).print(std::cout);

  std::printf(
      "\nShape checks (paper, Section 4):\n"
      "  - ID+NO leaves double-digit %% of nets violating; GSINO and iSINO\n"
      "    leave none.\n"
      "  - iSINO matches ID+NO wire length exactly; GSINO pays a small\n"
      "    premium.\n"
      "  - Routing area: iSINO > GSINO > ID+NO.\n");

  // What-if sweep off one session: GSINO at three crosstalk bounds. Phase
  // I routes once; every other bound re-solves Phase II/III against the
  // cached routing artifact (the stage counters prove it).
  std::printf("\nwhat-if bound sweep (one session, Phase I reused):\n");
  const netlist::Netlist design = netlist::generate(spec);
  GsinoParams p = params;
  p.sensitivity_rate = 0.30;
  const RoutingProblem problem = make_problem(design, spec, p);
  FlowSession session(problem);
  for (double bound : {0.12, 0.15, 0.20}) {
    Scenario scenario;
    scenario.bound_v = bound;
    util::Stopwatch watch;
    const FlowResult fr = session.run(FlowKind::kGsino, scenario);
    std::printf("  bound %.2f V: shields %6.0f, violations %zu, %.2fs wall\n",
                bound, fr.total_shields, fr.violating, watch.seconds());
  }
  const StageCounters& c = session.counters();
  std::printf("  Phase I executed %zu time(s) for %zu requests\n",
              c.route_executed, c.route_requests);
  return 0;
}
