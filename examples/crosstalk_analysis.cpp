// Crosstalk analysis: use the circuit-simulation substrate directly.
//
// Demonstrates the modelling layer underneath the router: build coupled
// RLC buses, measure victim noise with the MNA transient engine, rebuild
// the LSK lookup table from scratch, and read per-net noise off a routed
// design — the workflow Section 2.2 of the paper describes for calibrating
// and using the LSK model.
#include <cstdio>

#include "circuit/bus.h"
#include "core/experiment.h"
#include "core/flow.h"
#include "ktable/lsk_builder.h"
#include "util/stats.h"

using namespace rlcr;

int main() {
  const circuit::Technology tech;  // ITRS 0.10 um defaults, 3 GHz
  std::printf("technology: Vdd %.2f V, rise %.0f ps, driver %.0f ohm\n\n",
              tech.vdd, tech.rise_time_s * 1e12, tech.driver_ohms);

  // --- 1. Single aggressor-victim pair at increasing length.
  std::printf("victim noise vs coupled length (adjacent aggressor):\n");
  for (double len : {250.0, 500.0, 1000.0, 2000.0}) {
    circuit::BusSpec bus;
    bus.tracks = {{circuit::TrackKind::kSignal, true},
                  {circuit::TrackKind::kSignal, false}};
    bus.victim = 1;
    bus.length_um = len;
    std::printf("  %5.0f um -> %.4f V\n", len,
                circuit::simulate_victim_noise(bus, tech));
  }

  // --- 2. The three track treatments at fixed distance.
  std::printf("\nseparation treatments (1 mm, aggressor two tracks away):\n");
  for (const auto& [label, kind] :
       {std::pair{"empty track ", circuit::TrackKind::kEmpty},
        std::pair{"quiet signal", circuit::TrackKind::kSignal},
        std::pair{"shield      ", circuit::TrackKind::kShield}}) {
    circuit::BusSpec bus;
    bus.tracks = {{circuit::TrackKind::kSignal, false},
                  {kind, false},
                  {circuit::TrackKind::kSignal, true}};
    bus.victim = 0;
    bus.length_um = 1000.0;
    std::printf("  %s between -> %.4f V\n", label,
                circuit::simulate_victim_noise(bus, tech));
  }

  // --- 3. Rebuild the LSK table the way the paper does (Section 2.2).
  std::printf("\nrebuilding the LSK table from simulation...\n");
  ktable::LskBuilderOptions opt;
  opt.samples_per_length = 10;
  opt.lengths_um = {400.0, 800.0, 1200.0};
  const ktable::KeffModel keff;
  const ktable::LskTableBuilder builder(opt);
  const auto samples = builder.sample(keff, tech);
  const auto fit = builder.fit(samples);
  std::printf("  %zu samples; noise = %.4f * LSK + %.4f\n", samples.size(),
              fit.slope, fit.intercept);
  const ktable::LskTable table = builder.build(keff, tech);
  std::printf("  table: %zu entries, LSK %.2f..%.2f over 0.10..0.20 V\n",
              table.size(), table.entries().front().lsk,
              table.entries().back().lsk);

  // --- 4. Per-net noise report on a routed design.
  std::printf("\nper-net noise on a routed 400-net design (GSINO):\n");
  netlist::SyntheticSpec spec = netlist::tiny_spec(400, 9);
  const netlist::Netlist design = netlist::generate(spec);
  gsino::GsinoParams params;
  params.sensitivity_rate = 0.5;
  const gsino::RoutingProblem problem = gsino::make_problem(design, spec, params);
  const gsino::FlowResult fr = gsino::FlowRunner(problem).run(gsino::FlowKind::kGsino);
  std::vector<double> noise = fr.net_noise();
  std::printf("  max %.4f V, mean %.4f V, p95 %.4f V (bound %.2f V)\n",
              util::max_of(noise), util::mean(noise),
              util::percentile(noise, 95), fr.bound_v);
  std::printf("  violating nets: %zu\n", fr.violating);
  return 0;
}
