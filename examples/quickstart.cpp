// Quickstart: route a small synthetic design with the full GSINO flow and
// print the headline numbers.
//
//   $ ./quickstart
//
// Walks the public API end to end: synthesize a placed netlist, assemble a
// RoutingProblem (grid + sensitivity + LSK models), run the three-phase
// GSINO flow through a FlowSession, and inspect the result.
#include <cstdio>

#include "core/experiment.h"
#include "core/session.h"

using namespace rlcr;
using namespace rlcr::gsino;

int main() {
  // 1. A small placed design: 500 nets on an 8x8 routing grid.
  netlist::SyntheticSpec spec = netlist::tiny_spec(/*nets=*/500, /*seed=*/42);
  const netlist::Netlist design = netlist::generate(spec);
  std::printf("design: %zu nets, avg degree %.2f, chip %.0f x %.0f um\n",
              design.net_count(), design.average_degree(), design.width_um(),
              design.height_um());

  // 2. Problem assembly: routing fabric, sensitivity graph (30% rate),
  //    Keff + LSK models, paper-default parameters (0.15 V bound, 3 GHz).
  GsinoParams params;
  params.sensitivity_rate = 0.30;
  const RoutingProblem problem = make_problem(design, spec, params);
  std::printf("LSK budget at %.2f V bound: %.3f\n", params.crosstalk_bound_v,
              problem.lsk_table().lsk_budget(params.crosstalk_bound_v));

  // 3. Run GSINO (Phase I budget+route, Phase II SINO, Phase III refine)
  //    through a flow session — the staged pipeline with reusable
  //    artifacts.
  FlowSession session(problem);
  const FlowResult result = session.run(FlowKind::kGsino);

  // 4. Inspect.
  std::printf(
      "\nGSINO result:\n"
      "  crosstalk-violating nets : %zu (bound %.2f V)\n"
      "  total wire length        : %.0f um (avg %.1f um/net)\n"
      "  shields inserted         : %.0f tracks\n"
      "  routing area             : %.0f x %.0f um\n"
      "  runtime: route %.2f s, SINO %.2f s, refine %.2f s\n",
      result.violating, result.bound_v, result.total_wirelength_um,
      result.avg_wirelength_um, result.total_shields, result.area.width_um,
      result.area.height_um, result.timing.route_s, result.timing.sino_s,
      result.timing.refine_s);

  // 5. Compare with the conventional baseline (what Table 1 is about).
  const FlowResult baseline = session.run(FlowKind::kIdNo);
  std::printf(
      "\nconventional ID+NO baseline: %zu violating nets (%.1f%%) — GSINO "
      "eliminated all of them.\n",
      baseline.violating,
      100.0 * static_cast<double>(baseline.violating) /
          static_cast<double>(problem.net_count()));

  // 6. What-if re-solve: loosen the bound to 0.20 V. The session reuses
  //    the cached Phase I routing artifact — only budgeting, Phase II,
  //    and Phase III run again.
  Scenario looser;
  looser.bound_v = 0.20;
  const FlowResult relaxed = session.run(FlowKind::kGsino, looser);
  const StageCounters& c = session.counters();
  std::printf(
      "\nwhat-if at 0.20 V: %.0f shields (vs %.0f at 0.15 V); Phase I ran "
      "%zu time(s) for %zu stage requests — the routing artifact was "
      "reused.\n",
      relaxed.total_shields, result.total_shields, c.route_executed,
      c.route_requests);
  return 0;
}
