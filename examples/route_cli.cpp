// route_cli: command-line driver for the full flow on synthetic or real
// ISPD'98 inputs.
//
//   # calibrated synthetic stand-in, full GSINO flow
//   $ ./route_cli --circuit ibm01 --scale 0.25 --rate 0.3 --flow gsino
//
//   # genuine ISPD'98 files (placed by the built-in min-cut placer)
//   $ ./route_cli --net ibm01.net --are ibm01.are \
//                 --outline 1533x1824 --grid 96x96 --cap 22x20 --flow all
//
//   # what-if crosstalk-bound sweep: Phase I runs once, every subsequent
//   # bound re-solves Phase II/III off the cached routing artifact
//   $ ./route_cli --circuit ibm01 --flow gsino --sweep-bound 0.12,0.15,0.20
//
//   # persistent artifact store: the first run routes and publishes, a
//   # second identical invocation loads Phase I from disk (the printed
//   # stage counters show route 0 executed / N loaded)
//   $ ./route_cli --circuit ibm01 --flow gsino --store-dir /tmp/rlcr-store
//   $ ./route_cli --circuit ibm01 --flow gsino --store-dir /tmp/rlcr-store
//
//   # observability: span trace (Perfetto-loadable), metrics registry
//   # JSON, and an on-terminal profile table (docs/OBSERVABILITY.md)
//   $ ./route_cli --circuit ibm01 --flow gsino \
//                 --trace-out trace.json --metrics-out metrics.json --profile
//
//   # incremental ECO: apply 3 seeded netlist deltas through the session,
//   # re-running the flow after each; the final state is differentially
//   # checked against a from-scratch recompute of the whole chain
//   $ ./route_cli --circuit ibm01 --delta-demo 3
//
//   # scenario matrix: the four campaign kinds (bound sweep, tech sweep,
//   # delta chain, ECO slice) on one instance, as bench_scenarios runs them
//   $ ./route_cli --ispd98-class ibm01 --scale 0.05 --matrix
//
// Prints the flow summary (violations, wire length, shields, routing area)
// and optionally dumps per-net noise to CSV (--noise-csv out.csv).
#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include <csignal>

#include "core/experiment.h"
#include "core/session.h"
#include "netlist/ispd98.h"
#include "netlist/ispd98_synth.h"
#include "netlist/placement.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "router/route_types.h"
#include "scenario/delta.h"
#include "scenario/matrix.h"
#include "service/client.h"
#include "service/server.h"
#include "store/artifact_store.h"
#include "util/csv.h"
#include "util/table_printer.h"

using namespace rlcr;
using namespace rlcr::gsino;

namespace {

struct CliOptions {
  std::string circuit = "ibm01";
  std::string ispd98_class;
  std::string net_path;
  std::string are_path;
  std::string noise_csv;
  std::string store_dir;
  std::uintmax_t store_max_bytes = std::uintmax_t{256} << 20;
  std::string flow = "gsino";  // idno | isino | gsino | all
  std::string tree_profile;  // --tree-profile fast|balanced|best ("" = fast)
  std::vector<double> sweep_bounds;  // --sweep-bound list
  double scale = 0.25;
  double rate = 0.30;
  double bound_v = 0.15;
  std::uint64_t seed = 1;
  double outline_w = 0.0, outline_h = 0.0;
  int grid_x = 64, grid_y = 64;
  int cap_h = 20, cap_v = 18;
  int threads = 0;  // 0 = auto; results are identical at any value
  int delta_demo = 0;   // --delta-demo: incremental netlist-delta steps
  bool matrix = false;  // --matrix: run the four scenario-matrix kinds
  bool fingerprint = false;
  std::string trace_out;
  std::string metrics_out;
  bool profile = false;
  std::string serve_path;    // --serve: run the what-if daemon
  std::string connect_path;  // --connect: query a running daemon
  int serve_workers = 2;
};

[[noreturn]] void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --circuit ibm01..ibm06   synthetic stand-in (default ibm01)\n"
      "  --ispd98-class ibm01..ibm06\n"
      "                           ISPD98-class instance instead: the genuine\n"
      "                           circuit when RLCR_ISPD98_DIR holds it (at\n"
      "                           --scale 1 only — real circuits cannot\n"
      "                           shrink with the fabric), else the\n"
      "                           calibrated synthetic stand-in, on the\n"
      "                           class's own grid (--scale applies)\n"
      "  --scale S                density-preserving shrink (default 0.25)\n"
      "  --net FILE [--are FILE]  route a real ISPD'98 netD circuit instead\n"
      "  --outline WxH            chip outline in um (required with --net)\n"
      "  --grid CxR               routing regions (default 64x64)\n"
      "  --cap HxV                tracks per region (default 20x18)\n"
      "  --rate R                 sensitivity rate (default 0.30)\n"
      "  --bound V                crosstalk bound in volts (default 0.15)\n"
      "  --flow idno|isino|gsino|all (default gsino)\n"
      "  --sweep-bound B1,B2,...  what-if sweep: re-solve the flow at each\n"
      "                           bound off one cached Phase I routing\n"
      "  --tree-profile P         Steiner tree quality tier: fast (default,\n"
      "                           the historical path), balanced, or best —\n"
      "                           changes the routing profile, so Phase I\n"
      "                           reruns (or loads a per-profile artifact)\n"
      "  --seed N                 master seed (default 1)\n"
      "  --threads N              pool workers for routing + Phase II\n"
      "                           (default auto; output identical at any N)\n"
      "  --delta-demo N           incremental mode: route once, then apply\n"
      "                           N seeded netlist deltas (add/remove/re-pin)\n"
      "                           through the session, re-running the flow\n"
      "                           after each; ends with a from-scratch\n"
      "                           differential check (exits non-zero on any\n"
      "                           fingerprint mismatch)\n"
      "  --matrix                 run the four scenario-matrix campaign\n"
      "                           kinds (bound/tech sweeps, delta chain,\n"
      "                           ECO slice) on this instance and print the\n"
      "                           per-cell runs / compute-avoided /\n"
      "                           differential-check table\n"
      "  --store-dir DIR          persistent artifact store: consult before\n"
      "                           routing/budgeting, publish after — a second\n"
      "                           invocation on the same circuit skips Phase I\n"
      "  --store-max-bytes N      store LRU size budget (default 256 MiB)\n"
      "  --noise-csv FILE         dump per-net LSK/noise\n"
      "  --fingerprint            print a deterministic route/state hash per\n"
      "                           flow — identical at any --threads value\n"
      "                           (CI's multi-thread smoke asserts this)\n"
      "  --trace-out FILE         record a span trace of the run and write\n"
      "                           Chrome trace-event JSON (open in Perfetto;\n"
      "                           RLCR_TRACE=<path> is the env equivalent)\n"
      "  --metrics-out FILE       write the unified metrics registry (stage\n"
      "                           counters, store stats, resource gauges) as\n"
      "                           JSON\n"
      "  --profile                print a per-span-name profile table\n"
      "                           (count / total / mean) after the run\n"
      "  --serve SOCK             run the what-if daemon on a Unix socket\n"
      "                           instead: hot FlowSessions, coalescing,\n"
      "                           admission control (src/service/README.md).\n"
      "                           The circuit flags preload one session;\n"
      "                           --store-dir attaches the shared store\n"
      "  --serve-workers N        daemon compute threads (default 2)\n"
      "  --connect SOCK           submit the query the circuit flags\n"
      "                           describe to a running daemon and print\n"
      "                           the reply; exits non-zero on transport\n"
      "                           error or a failed/rejected job\n",
      argv0);
  std::exit(2);
}

bool parse_pair(const char* s, double& a, double& b) {
  char* end = nullptr;
  a = std::strtod(s, &end);
  if (end == s || (*end != 'x' && *end != 'X')) return false;
  b = std::strtod(end + 1, nullptr);
  return a > 0 && b > 0;
}

void report(const FlowResult& fr, const RoutingProblem& problem,
            bool fingerprint) {
  std::printf(
      "%-6s @ %.2f V | violations %5zu / %zu | avg WL %7.1f um | "
      "shields %7.0f | area %.0f x %.0f um | route %.1fs sino %.1fs "
      "refine %.1fs\n",
      fr.name.c_str(), fr.bound_v, fr.violating, problem.net_count(),
      fr.avg_wirelength_um, fr.total_shields, fr.area.width_um,
      fr.area.height_um, fr.timing.route_s, fr.timing.sino_s,
      fr.timing.refine_s);
  if (fingerprint) {
    std::printf("fingerprint %s @ %.2f: route=%016llx state=%016llx\n",
                fr.name.c_str(), fr.bound_v,
                static_cast<unsigned long long>(router::route_hash(fr.routing())),
                static_cast<unsigned long long>(state_fingerprint(fr)));
  }
}

// ---- service modes (--serve / --connect) ------------------------------

volatile std::sig_atomic_t g_stop_requested = 0;
void handle_stop_signal(int) { g_stop_requested = 1; }

/// Maps --tree-profile to the Steiner quality tier; empty leaves the
/// profile default (fast). Returns false on an unknown name.
bool tree_profile_from(const std::string& s,
                       std::optional<steiner::TreeProfile>* out) {
  if (s.empty()) return true;
  if (s == "fast") {
    *out = steiner::TreeProfile::kFast;
  } else if (s == "balanced") {
    *out = steiner::TreeProfile::kBalanced;
  } else if (s == "best") {
    *out = steiner::TreeProfile::kBest;
  } else {
    std::fprintf(stderr, "--tree-profile %s is not fast|balanced|best\n",
                 s.c_str());
    return false;
  }
  return true;
}

/// The WhatIfQuery the circuit flags describe. The service speaks problem
/// recipes, not netlist files, so --net has no service equivalent.
bool query_from(const CliOptions& opt, service::WhatIfQuery* q) {
  if (!opt.net_path.empty()) {
    std::fprintf(stderr, "--net cannot be served: the daemon assembles "
                         "problems from recipes, not files\n");
    return false;
  }
  if (!opt.ispd98_class.empty()) {
    q->source = service::QuerySource::kIspd98;
    q->circuit = opt.ispd98_class;
  } else {
    q->source = service::QuerySource::kSynthetic;
    q->circuit = opt.circuit;
  }
  q->scale = opt.scale;
  q->rate = opt.rate;
  q->bound_v = opt.bound_v;
  q->seed = opt.seed;
  if (opt.flow == "idno") {
    q->flow = 0;
  } else if (opt.flow == "isino") {
    q->flow = 1;
  } else if (opt.flow == "gsino") {
    q->flow = 2;
  } else {
    std::fprintf(stderr, "--flow %s is not a single service flow "
                         "(use idno|isino|gsino)\n", opt.flow.c_str());
    return false;
  }
  std::optional<steiner::TreeProfile> tier;
  if (!tree_profile_from(opt.tree_profile, &tier)) return false;
  if (tier) q->quality = static_cast<std::uint8_t>(*tier);
  return true;
}

int run_serve(const CliOptions& opt) {
  service::ServerOptions so;
  so.socket_path = opt.serve_path;
  so.workers = opt.serve_workers;
  so.job_threads = opt.threads;
  if (!opt.store_dir.empty()) {
    try {
      so.store = std::make_shared<store::ArtifactStore>(
          opt.store_dir, store::StoreOptions{opt.store_max_bytes});
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
  }
  service::Server server(std::move(so));
  std::string err;
  if (!server.start(&err)) {
    std::fprintf(stderr, "cannot serve: %s\n", err.c_str());
    return 1;
  }
  service::WhatIfQuery preload;
  if (query_from(opt, &preload)) {
    if (server.preload(preload, &err)) {
      std::printf("preloaded session: %s @ scale %.2f\n",
                  preload.circuit.c_str(), preload.scale);
    } else {
      std::fprintf(stderr, "warning: preload failed: %s\n", err.c_str());
    }
  }
  std::printf("serving on %s (%d workers) — SIGINT/SIGTERM to stop\n",
              server.socket_path().c_str(), opt.serve_workers);
  std::fflush(stdout);
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  while (g_stop_requested == 0) {
    const timespec tick{0, 200'000'000};
    nanosleep(&tick, nullptr);
  }
  server.stop();
  const service::ServiceStats s = server.stats();
  std::printf("served %zu submits: %zu executed, %zu coalesced, "
              "%zu rejected, %zu failed\n",
              s.submits, s.jobs_executed, s.coalesce_hits,
              s.rejected_queue_full + s.rejected_inflight_cap +
                  s.rejected_bad_query,
              s.jobs_failed);
  return 0;
}

int run_connect(const CliOptions& opt) {
  service::WhatIfQuery base;
  if (!query_from(opt, &base)) return 2;

  service::Client client;
  std::string err;
  if (!client.connect(opt.connect_path, &err)) {
    std::fprintf(stderr, "connect failed: %s\n", err.c_str());
    return 1;
  }

  // A --sweep-bound list becomes one what-if query per bound, exercising
  // the daemon's hot session exactly like a local Scenario sweep.
  std::vector<service::WhatIfQuery> queries;
  if (opt.sweep_bounds.empty()) {
    queries.push_back(base);
  } else {
    for (const double bound : opt.sweep_bounds) {
      service::WhatIfQuery q = base;
      q.has_bound = true;
      q.scenario_bound_v = bound;
      queries.push_back(q);
    }
  }

  static const char* kFlowNames[] = {"idno", "isino", "gsino"};
  for (const service::WhatIfQuery& q : queries) {
    service::SubmitAck ack;
    if (!client.submit(q, &ack, &err)) {
      std::fprintf(stderr, "submit failed: %s\n", err.c_str());
      return 1;
    }
    if (ack.reject != service::RejectReason::kNone) {
      std::fprintf(stderr, "submit rejected (reason %d)\n",
                   static_cast<int>(ack.reject));
      return 1;
    }
    service::Result res;
    if (!client.wait(ack.ticket, &res, &err)) {
      std::fprintf(stderr, "poll failed: %s\n", err.c_str());
      return 1;
    }
    if (res.state != service::JobState::kDone) {
      std::fprintf(stderr, "job %llu did not complete: %s\n",
                   static_cast<unsigned long long>(ack.ticket),
                   res.error.empty() ? "not done" : res.error.c_str());
      return 1;
    }
    const service::FlowSummary& fs = res.summary;
    std::printf(
        "%-6s @ %.2f V | violations %5llu | avg WL %7.1f um | "
        "shields %7.0f | route %.1fs sino %.1fs refine %.1fs | "
        "%.2fs on server%s%s\n",
        kFlowNames[fs.flow], fs.bound_v,
        static_cast<unsigned long long>(fs.violating), fs.avg_wirelength_um,
        fs.total_shields, fs.route_s, fs.sino_s, fs.refine_s, fs.compute_s,
        fs.warm != 0 ? " [warm]" : "", ack.coalesced != 0 ? " [coalesced]" : "");
    if (opt.fingerprint) {
      std::printf("fingerprint %s @ %.2f: route=%016llx state=%016llx\n",
                  kFlowNames[fs.flow], fs.bound_v,
                  static_cast<unsigned long long>(fs.route_hash),
                  static_cast<unsigned long long>(fs.state_hash));
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opt;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--circuit")) {
      opt.circuit = next();
    } else if (!std::strcmp(argv[i], "--ispd98-class")) {
      opt.ispd98_class = next();
    } else if (!std::strcmp(argv[i], "--scale")) {
      opt.scale = std::atof(next());
    } else if (!std::strcmp(argv[i], "--net")) {
      opt.net_path = next();
    } else if (!std::strcmp(argv[i], "--are")) {
      opt.are_path = next();
    } else if (!std::strcmp(argv[i], "--outline")) {
      if (!parse_pair(next(), opt.outline_w, opt.outline_h)) usage(argv[0]);
    } else if (!std::strcmp(argv[i], "--grid")) {
      double a, b;
      if (!parse_pair(next(), a, b)) usage(argv[0]);
      opt.grid_x = static_cast<int>(a);
      opt.grid_y = static_cast<int>(b);
    } else if (!std::strcmp(argv[i], "--cap")) {
      double a, b;
      if (!parse_pair(next(), a, b)) usage(argv[0]);
      opt.cap_h = static_cast<int>(a);
      opt.cap_v = static_cast<int>(b);
    } else if (!std::strcmp(argv[i], "--rate")) {
      opt.rate = std::atof(next());
    } else if (!std::strcmp(argv[i], "--bound")) {
      opt.bound_v = std::atof(next());
    } else if (!std::strcmp(argv[i], "--flow")) {
      opt.flow = next();
    } else if (!std::strcmp(argv[i], "--tree-profile")) {
      opt.tree_profile = next();
    } else if (!std::strcmp(argv[i], "--sweep-bound")) {
      const char* s = next();
      while (*s != '\0') {
        char* end = nullptr;
        const double v = std::strtod(s, &end);
        if (end == s || v <= 0.0) usage(argv[0]);
        opt.sweep_bounds.push_back(v);
        s = (*end == ',') ? end + 1 : end;
      }
      if (opt.sweep_bounds.empty()) usage(argv[0]);
    } else if (!std::strcmp(argv[i], "--seed")) {
      opt.seed = std::strtoull(next(), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--threads")) {
      opt.threads = std::atoi(next());
    } else if (!std::strcmp(argv[i], "--delta-demo")) {
      opt.delta_demo = std::atoi(next());
      if (opt.delta_demo <= 0) usage(argv[0]);
    } else if (!std::strcmp(argv[i], "--matrix")) {
      opt.matrix = true;
    } else if (!std::strcmp(argv[i], "--store-dir")) {
      opt.store_dir = next();
    } else if (!std::strcmp(argv[i], "--store-max-bytes")) {
      opt.store_max_bytes = std::strtoull(next(), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--noise-csv")) {
      opt.noise_csv = next();
    } else if (!std::strcmp(argv[i], "--fingerprint")) {
      opt.fingerprint = true;
    } else if (!std::strcmp(argv[i], "--trace-out")) {
      opt.trace_out = next();
    } else if (!std::strcmp(argv[i], "--metrics-out")) {
      opt.metrics_out = next();
    } else if (!std::strcmp(argv[i], "--profile")) {
      opt.profile = true;
    } else if (!std::strcmp(argv[i], "--serve")) {
      opt.serve_path = next();
    } else if (!std::strcmp(argv[i], "--serve-workers")) {
      opt.serve_workers = std::atoi(next());
    } else if (!std::strcmp(argv[i], "--connect")) {
      opt.connect_path = next();
    } else {
      usage(argv[0]);
    }
  }

  if (!opt.serve_path.empty()) return run_serve(opt);
  if (!opt.connect_path.empty()) return run_connect(opt);

  GsinoParams params;
  params.sensitivity_rate = opt.rate;
  params.crosstalk_bound_v = opt.bound_v;
  params.seed = opt.seed;
  params.threads = opt.threads;
  params.router.threads = opt.threads;

  // ---- assemble netlist + grid.
  netlist::Netlist design;
  grid::RegionGridSpec gspec;
  if (!opt.ispd98_class.empty()) {
    const auto classes = netlist::ispd98_classes(opt.scale);
    const netlist::Ispd98ClassSpec* spec =
        netlist::find_ispd98_class(classes, opt.ispd98_class);
    if (spec == nullptr) {
      std::fprintf(stderr, "unknown ISPD98 class '%s'\n",
                   opt.ispd98_class.c_str());
      return 2;
    }
    netlist::Ispd98Instance inst = netlist::make_ispd98_instance(*spec);
    std::printf("%s: %s (%zu modules, %zu nets)\n", spec->name.c_str(),
                inst.source.c_str(), inst.design.cell_count(),
                inst.design.net_count());
    if (inst.real && !inst.parse_stats.counts_match()) {
      std::fprintf(stderr, "warning: netD header/parsed mismatch — %s\n",
                   inst.parse_stats.mismatch_report().c_str());
    }
    design = std::move(inst.design);
    gspec = inst.gspec;
  } else if (!opt.net_path.empty()) {
    if (opt.outline_w <= 0.0) {
      std::fprintf(stderr, "--net requires --outline WxH\n");
      return 2;
    }
    std::printf("parsing %s ...\n", opt.net_path.c_str());
    design = netlist::Ispd98Parser().load(opt.net_path, opt.are_path);
    design.set_outline(opt.outline_w, opt.outline_h);
    std::printf("placing %zu cells (min-cut bisection) ...\n",
                design.cell_count());
    const netlist::PlacementResult pr = netlist::BisectionPlacer().place(design);
    std::printf("placement HPWL: %.0f um\n", pr.hpwl_um);
    gspec.cols = opt.grid_x;
    gspec.rows = opt.grid_y;
    gspec.region_w_um = opt.outline_w / opt.grid_x;
    gspec.region_h_um = opt.outline_h / opt.grid_y;
    gspec.h_capacity = opt.cap_h;
    gspec.v_capacity = opt.cap_v;
  } else {
    const auto suite = netlist::ibm_suite(opt.scale);
    int idx = -1;
    for (std::size_t i = 0; i < suite.size(); ++i) {
      if (suite[i].name == opt.circuit) idx = static_cast<int>(i);
    }
    if (idx < 0) {
      std::fprintf(stderr, "unknown circuit '%s'\n", opt.circuit.c_str());
      return 2;
    }
    const netlist::SyntheticSpec& spec = suite[static_cast<std::size_t>(idx)];
    design = netlist::generate(spec);
    gspec.cols = spec.grid_cols;
    gspec.rows = spec.grid_rows;
    gspec.region_w_um = spec.chip_w_um / spec.grid_cols;
    gspec.region_h_um = spec.chip_h_um / spec.grid_rows;
    gspec.h_capacity = spec.h_capacity;
    gspec.v_capacity = spec.v_capacity;
  }
  std::printf("design: %zu nets on %d x %d regions, caps %d/%d, rate %.0f%%\n\n",
              design.net_count(), gspec.cols, gspec.rows, gspec.h_capacity,
              gspec.v_capacity, opt.rate * 100.0);

  const RoutingProblem problem(design, gspec, params);
  store::StorePtr artifact_store;
  if (!opt.store_dir.empty()) {
    try {
      artifact_store = std::make_shared<store::ArtifactStore>(
          opt.store_dir, store::StoreOptions{opt.store_max_bytes});
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
  }
  // ---- scenario matrix (--matrix): the four campaign kinds over this one
  // instance, each with its built-in from-scratch differential check —
  // exactly what bench_scenarios records per (class, kind) cell.
  if (opt.matrix) {
    const std::string name =
        !opt.ispd98_class.empty() ? opt.ispd98_class : opt.circuit;
    util::TablePrinter table("scenario matrix: " + name);
    table.set_header({"kind", "runs", "avoided", "match", "nets", "seconds"});
    bool all_match = true;
    for (const scenario::ScenarioKind kind : scenario::kAllScenarioKinds) {
      const scenario::ScenarioCell cell = scenario::ScenarioMatrix::run_cell(
          name, design, gspec, kind, params, artifact_store);
      all_match = all_match && cell.fingerprint_match == 1;
      table.add_row(
          {scenario::kind_name(kind),
           util::fmt_int(static_cast<long long>(cell.runs)),
           util::fmt_int(static_cast<long long>(cell.compute_avoided)),
           cell.fingerprint_match == 1 ? "yes" : "NO",
           util::fmt_int(static_cast<long long>(cell.total_nets)),
           util::fmt_double(cell.seconds, 2)});
    }
    table.print(std::cout);
    return all_match ? 0 : 1;
  }

  SessionOptions sopt;
  sopt.store = artifact_store;
  FlowSession session(problem, std::move(sopt));

  // ---- incremental delta demo (--delta-demo N): route once, then apply N
  // seeded netlist deltas through FlowSession::apply_delta, re-running the
  // GSINO flow after each. Ends with the differential contract from
  // tests/delta_differential_test.cpp: the whole chain applied up front and
  // recomputed from scratch must match the incremental end state bit for
  // bit (route hash and state fingerprint).
  if (opt.delta_demo > 0) {
    FlowResult fr = session.run(FlowKind::kGsino);
    report(fr, session.problem(), opt.fingerprint);
    std::vector<scenario::NetlistDelta> chain;
    for (int step = 0; step < opt.delta_demo; ++step) {
      chain.push_back(scenario::random_delta(
          session.problem(), opt.seed + static_cast<std::uint64_t>(step), 6));
      const scenario::DeltaReport rep = session.apply_delta(chain.back());
      fr = session.run(FlowKind::kGsino);
      std::printf(
          "delta %d: %zu change(s) | routes %zu spliced / %zu rerouted | "
          "regions %zu reused / %zu re-solved | %.2fs\n",
          step + 1, rep.changed_nets, rep.nets_reused, rep.nets_rerouted,
          rep.regions_reused, rep.regions_solved, rep.seconds);
      report(fr, session.problem(), opt.fingerprint);
    }
    const StageCounters& c = session.counters();
    std::printf(
        "delta counters: %zu applies | nets %zu rerouted / %zu reused | "
        "regions %zu re-solved / %zu reused\n",
        c.delta_applies, c.delta_nets_rerouted, c.delta_nets_reused,
        c.delta_regions_solved, c.delta_regions_reused);
    RoutingProblem scratch = problem;
    for (const scenario::NetlistDelta& delta : chain) {
      scratch = scenario::apply_delta(scratch, delta);
    }
    FlowSession fresh(scratch);
    const FlowResult want = fresh.run(FlowKind::kGsino);
    const bool ok =
        state_fingerprint(want) == state_fingerprint(fr) &&
        router::route_hash(want.routing()) == router::route_hash(fr.routing());
    std::printf("differential check (from-scratch recompute): %s\n",
                ok ? "bit-identical" : "MISMATCH");
    return ok ? 0 : 1;
  }

  // ---- observability: RLCR_TRACE="1" just records (pairs with
  // --profile); any other non-"0" value doubles as the trace output path.
  if (opt.trace_out.empty()) {
    const char* env = std::getenv("RLCR_TRACE");
    if (env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0 &&
        std::strcmp(env, "1") != 0) {
      opt.trace_out = env;
    }
  }
  std::optional<obs::TraceSession> trace;
  if (!opt.trace_out.empty() || opt.profile || obs::trace_env_enabled()) {
    trace.emplace();
  }
  std::optional<obs::ResourceSampler> sampler;
  if (!opt.metrics_out.empty()) {
    obs::ResourceSamplerOptions ro;
    ro.store = artifact_store.get();
    sampler.emplace(ro);
  }

  // ---- run the requested flow(s): one session, so flows with matching
  // router profiles (ID+NO and iSINO) share a Phase I artifact, and a
  // bound sweep re-solves Phase II/III off the cached routing.
  std::vector<FlowKind> kinds;
  if (opt.flow == "idno") {
    kinds = {FlowKind::kIdNo};
  } else if (opt.flow == "isino") {
    kinds = {FlowKind::kIsino};
  } else if (opt.flow == "gsino") {
    kinds = {FlowKind::kGsino};
  } else if (opt.flow == "all") {
    kinds = {FlowKind::kIdNo, FlowKind::kIsino, FlowKind::kGsino};
  } else {
    usage(argv[0]);
  }

  std::optional<steiner::TreeProfile> tree_tier;
  if (!tree_profile_from(opt.tree_profile, &tree_tier)) usage(argv[0]);

  FlowResult last;
  for (FlowKind kind : kinds) {
    if (opt.sweep_bounds.empty()) {
      Scenario scenario;
      scenario.tree_profile = tree_tier;
      last = session.run(kind, scenario);
      report(last, problem, opt.fingerprint);
      continue;
    }
    for (double bound : opt.sweep_bounds) {
      Scenario scenario;
      scenario.bound_v = bound;
      scenario.tree_profile = tree_tier;
      last = session.run(kind, scenario);
      report(last, problem, opt.fingerprint);
    }
  }
  const StageCounters& c = session.counters();
  std::printf(
      "stage counters: route %zu/%zu, budget %zu/%zu, solve %zu/%zu "
      "(executed/requested — reuse is the gap)\n",
      c.route_executed, c.route_requests, c.budget_executed,
      c.budget_requests, c.solve_executed, c.solve_requests);
  if (artifact_store != nullptr) {
    const store::StoreStats s = artifact_store->stats();
    std::printf(
        "artifact store: %zu hits / %zu misses, %zu stored, %zu evicted, "
        "%.1f MiB on disk (%s)\n"
        "  warm start: route loaded %zu (executed %zu), budget loaded %zu "
        "(executed %zu)%s\n",
        s.hits, s.misses, s.stores, s.evictions,
        static_cast<double>(artifact_store->bytes_on_disk()) / (1024.0 * 1024.0),
        artifact_store->dir().c_str(), c.route_loaded, c.route_executed,
        c.budget_loaded, c.budget_executed,
        c.route_executed == 0 && c.route_loaded > 0
            ? " — Phase I skipped entirely"
            : "");
    if (s.put_failures > 0) {
      std::fprintf(stderr,
                   "warning: %zu artifact publish(es) failed — is %s "
                   "writable?\n",
                   s.put_failures, artifact_store->dir().c_str());
    }
  }

  if (!opt.noise_csv.empty() && last.phase1 != nullptr) {
    util::CsvWriter csv(opt.noise_csv);
    csv.write_row(std::vector<std::string>{"net", "lsk", "noise_v",
                                           "kth", "critical_path_um"});
    for (std::size_t n = 0; n < problem.net_count(); ++n) {
      csv.write_row(std::vector<double>{static_cast<double>(n),
                                        last.net_lsk()[n], last.net_noise()[n],
                                        last.kth()[n],
                                        last.critical_path_um()[n]});
    }
    std::printf("wrote per-net noise to %s\n", opt.noise_csv.c_str());
  }

  if (sampler) sampler->stop();
  if (!opt.metrics_out.empty()) {
    obs::MetricsSnapshot snap = session.metrics();
    if (sampler) sampler->append_gauges(snap);
    if (!snap.write_json(opt.metrics_out)) {
      std::fprintf(stderr, "failed to write metrics to %s\n",
                   opt.metrics_out.c_str());
      return 1;
    }
    std::printf("wrote metrics registry to %s\n", opt.metrics_out.c_str());
  }
  if (trace) {
    // The flow has quiesced (session.run returned, pool joined), so the
    // export contract in obs/trace.h holds.
    if (opt.profile) {
      struct Agg {
        std::size_t count = 0;
        double total_ms = 0.0;
      };
      std::map<std::string, Agg> by_name;
      for (const obs::SpanRecord& s : trace->snapshot()) {
        Agg& a = by_name[s.name];
        ++a.count;
        a.total_ms += static_cast<double>(s.dur_ns) / 1e6;
      }
      std::vector<std::pair<std::string, Agg>> rows(by_name.begin(),
                                                    by_name.end());
      std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
        return a.second.total_ms > b.second.total_ms;
      });
      util::TablePrinter table("run profile (span aggregates)");
      table.set_header({"span", "count", "total ms", "mean ms"});
      for (const auto& [name, agg] : rows) {
        table.add_row({name, util::fmt_int(static_cast<long long>(agg.count)),
                       util::fmt_double(agg.total_ms, 2),
                       util::fmt_double(agg.total_ms /
                                            static_cast<double>(agg.count),
                                        3)});
      }
      table.print(std::cout);
    }
    if (!opt.trace_out.empty()) {
      if (!trace->write_chrome_trace(opt.trace_out)) {
        std::fprintf(stderr, "failed to write trace to %s\n",
                     opt.trace_out.c_str());
        return 1;
      }
      std::printf("wrote %zu spans to %s (load in Perfetto or "
                  "chrome://tracing)\n",
                  trace->span_count(), opt.trace_out.c_str());
    }
    if (trace->dropped() > 0) {
      std::printf("(%llu spans dropped to ring wraparound — raise "
                  "TraceOptions::buffer_capacity)\n",
                  static_cast<unsigned long long>(trace->dropped()));
    }
  }
  return 0;
}
