// SINO explorer: play with a single routing region.
//
//   $ ./sino_explorer [nets] [rate] [kth]
//
// Builds one region's SINO instance, solves it with net ordering only, the
// greedy constructor, and simulated annealing, and prints the resulting
// track stacks side by side — a direct view of the shield-vs-ordering
// trade-off that drives the whole paper.
#include <cstdio>
#include <iostream>
#include <cstdlib>
#include <string>

#include "sino/anneal.h"
#include "sino/evaluator.h"
#include "sino/greedy.h"
#include "sino/net_order.h"
#include "util/rng.h"

using namespace rlcr;
using namespace rlcr::sino;

namespace {

std::string render(const ktable::SlotVec& slots) {
  std::string s;
  for (ktable::Slot v : slots) {
    if (v == ktable::kShieldSlot) {
      s += " [G]";
    } else if (v == ktable::kEmptySlot) {
      s += " [ ]";
    } else {
      s += " [" + std::to_string(v) + "]";
    }
  }
  return s;
}

void report(const char* name, const ktable::SlotVec& slots,
            const SinoEvaluator& eval) {
  const SinoCheck c = eval.check(slots);
  std::printf("%-22s area=%2d shields=%d cap_viol=%d ind_viol=%d\n  %s\n",
              name, SinoEvaluator::area(slots),
              SinoEvaluator::shield_count(slots), c.capacitive_violations,
              c.inductive_violations, render(slots).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 10;
  const double rate = argc > 2 ? std::atof(argv[2]) : 0.4;
  const double kth = argc > 3 ? std::atof(argv[3]) : 1.2;

  std::printf("single-region SINO instance: %zu nets, rate %.2f, Kth %.2f\n",
              n, rate, kth);

  util::Xoshiro256 rng(2002);
  std::vector<SinoNet> nets(n);
  for (std::size_t i = 0; i < n; ++i) {
    nets[i] = SinoNet{static_cast<int>(i), rate, kth};
  }
  SinoInstance inst(std::move(nets));
  int pairs = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.bernoulli(rate)) {
        inst.set_sensitive(i, j);
        ++pairs;
      }
    }
  }
  std::printf("sensitive pairs: %d of %zu\n\n", pairs, n * (n - 1) / 2);

  const ktable::KeffModel keff;
  const SinoEvaluator eval(inst, keff);

  // Net ordering only (the "NO" of ID+NO): no area cost, but inductive and
  // possibly capacitive violations remain.
  const NetOrderResult ordered = solve_net_order(inst, keff);
  report("net ordering only", ordered.slots, eval);

  // Greedy SINO: feasible, fast, slightly shield-happy.
  const ktable::SlotVec greedy = solve_greedy(inst, keff);
  report("greedy SINO", greedy, eval);

  // Simulated annealing: min-area SINO (the [4] objective).
  AnnealOptions opt;
  opt.iterations = 30000;
  const AnnealResult annealed = solve_anneal(inst, keff, opt);
  report("annealed SINO", annealed.slots, eval);

  std::printf(
      "\n[G] = shield tied to the P/G network; numbers are net indices.\n"
      "Greedy vs annealed area is the min-area SINO gap; ordering-only\n"
      "shows why conventional routing (Table 1) violates: no shields.\n");

  // What-if Kth sweep: the region-level version of the session API's
  // bound re-solves — the same instance re-solved under a sweep of
  // coupling bounds, showing how shield demand responds to the budget a
  // flow-level what-if (FlowSession::run with Scenario::bound_v) hands
  // each region.
  std::printf("\nwhat-if Kth sweep (same instance, re-solved greedily):\n");
  for (double f : {0.5, 0.75, 1.0, 1.5, 2.0}) {
    SinoInstance sweep = inst;
    for (std::size_t i = 0; i < sweep.net_count(); ++i) {
      sweep.net(i).kth = kth * f;
    }
    const ktable::SlotVec slots = solve_greedy(sweep, keff);
    std::printf("  Kth %.2f: area %2d, shields %d\n", kth * f,
                SinoEvaluator::area(slots), SinoEvaluator::shield_count(slots));
  }
  return 0;
}
