#include "circuit/bus.h"

#include <cmath>
#include <stdexcept>

namespace rlcr::circuit {

namespace {

struct BuiltBus {
  Circuit ckt;
  NodeId victim_probe = kGround;
};

BuiltBus build(const BusSpec& spec, const Technology& tech) {
  if (spec.victim < 0 ||
      static_cast<std::size_t>(spec.victim) >= spec.tracks.size()) {
    throw std::invalid_argument("bus: victim index out of range");
  }
  const BusTrack& vt = spec.tracks[static_cast<std::size_t>(spec.victim)];
  if (vt.kind != TrackKind::kSignal || vt.aggressor) {
    throw std::invalid_argument("bus: victim must be a quiet signal track");
  }
  if (spec.segments < 1) throw std::invalid_argument("bus: segments must be >= 1");
  if (spec.length_um <= 0.0) throw std::invalid_argument("bus: length must be > 0");

  const Extractor ex(tech);
  const auto segs = static_cast<std::size_t>(spec.segments);
  const double seg_len = spec.length_um / spec.segments;
  const double r_seg = ex.resistance(seg_len);
  const double l_seg = ex.self_inductance(seg_len);
  const double cg_seg = ex.ground_capacitance(seg_len);

  BuiltBus out;
  Circuit& ckt = out.ckt;

  const std::size_t ntracks = spec.tracks.size();
  // node[t][k] = k-th ladder node of track t; -1 for empty tracks.
  std::vector<std::vector<NodeId>> node(ntracks);
  // seg_ind[t][k] = inductor index for segment k of track t.
  std::vector<std::vector<std::size_t>> seg_ind(ntracks);

  const double t_start = 5e-12;

  for (std::size_t t = 0; t < ntracks; ++t) {
    const BusTrack& trk = spec.tracks[t];
    if (trk.kind == TrackKind::kEmpty) continue;

    node[t].resize(segs + 1);
    seg_ind[t].resize(segs);
    for (auto& n : node[t]) n = ckt.new_node();

    // Ladder: per segment a series R then L; ground cap at each new node.
    for (std::size_t k = 0; k < segs; ++k) {
      const NodeId mid = ckt.new_node();
      ckt.add_resistor(node[t][k], mid, r_seg);
      seg_ind[t][k] = ckt.add_inductor(mid, node[t][k + 1], l_seg);
      ckt.add_capacitor(node[t][k + 1], kGround, cg_seg);
    }

    if (trk.kind == TrackKind::kShield) {
      // Shields tie to the P/G network at both ends through via resistance.
      const double via_ohms = 0.2;
      ckt.add_resistor(node[t][0], kGround, via_ohms);
      ckt.add_resistor(node[t][segs], kGround, via_ohms);
    } else {
      // Signal: driver at near end, receiver load at far end.
      const NodeId drv = ckt.new_node();
      const Pwl wave = trk.aggressor
                           ? Pwl::ramp(tech.vdd, t_start, tech.rise_time_s)
                           : Pwl::flat(0.0);
      ckt.add_vsource(drv, kGround, wave);
      ckt.add_resistor(drv, node[t][0], tech.driver_ohms);
      ckt.add_capacitor(node[t][segs], kGround, tech.load_farads);
    }
  }

  // Coupling capacitance: nearest occupied neighbour on each side, per node.
  for (std::size_t t = 0; t < ntracks; ++t) {
    if (node[t].empty()) continue;
    for (std::size_t u = t + 1; u < ntracks; ++u) {
      if (node[u].empty()) continue;
      const int sep = static_cast<int>(u - t);
      const double cc_seg = ex.coupling_capacitance(seg_len, sep);
      if (cc_seg <= 0.0) break;  // falls off monotonically with distance
      for (std::size_t k = 1; k <= segs; ++k) {
        ckt.add_capacitor(node[t][k], node[u][k], cc_seg);
      }
      break;  // only the nearest occupied track couples capacitively
    }
  }

  // Mutual inductance: all occupied-track pairs, same segment index.
  for (std::size_t t = 0; t < ntracks; ++t) {
    if (node[t].empty()) continue;
    for (std::size_t u = t + 1; u < ntracks; ++u) {
      if (node[u].empty()) continue;
      const int sep = static_cast<int>(u - t);
      const double k_coef = ex.coupling_coefficient(seg_len, sep);
      if (k_coef <= 0.0) continue;
      for (std::size_t k = 0; k < segs; ++k) {
        ckt.add_mutual(seg_ind[t][k], seg_ind[u][k], k_coef);
      }
    }
  }

  out.victim_probe = node[static_cast<std::size_t>(spec.victim)][segs];
  return out;
}

}  // namespace

TransientResult simulate_bus(const BusSpec& spec, const Technology& tech,
                             const TransientOptions& options) {
  BuiltBus built = build(spec, tech);
  return simulate(built.ckt, {built.victim_probe}, options);
}

double simulate_victim_noise(const BusSpec& spec, const Technology& tech,
                             const TransientOptions& options) {
  return simulate_bus(spec, tech, options).peak_abs(0);
}

}  // namespace rlcr::circuit
