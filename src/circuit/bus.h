// Coupled-bus construction and victim-noise measurement.
//
// A "bus" is one routing region's worth of parallel tracks: each track is
// empty, a shield (grounded at both ends, as the paper's shields connect to
// the P/G network), or a signal wire with the uniform driver/receiver of
// Section 2.1. The bus is expanded into a segmented coupled-RLC ladder:
//   - per-segment series R and partial self-inductance L,
//   - per-node ground capacitance and nearest-neighbour coupling capacitance,
//   - partial mutual inductance between ALL pairs of parallel segments
//     (inductive coupling is long-range; shields participate, which is how
//     shielding's return-path benefit emerges in simulation rather than
//     being asserted).
// Aggressor drivers ramp 0 -> Vdd; the victim driver holds 0; the victim's
// far-end (receiver) peak |voltage| is the crosstalk noise the LSK table is
// calibrated against.
#pragma once

#include <vector>

#include "circuit/extract.h"
#include "circuit/transient.h"

namespace rlcr::circuit {

enum class TrackKind : std::uint8_t { kEmpty, kShield, kSignal };

struct BusTrack {
  TrackKind kind = TrackKind::kEmpty;
  bool aggressor = false;  ///< signals only: drives a rising ramp when true
};

struct BusSpec {
  std::vector<BusTrack> tracks;
  double length_um = 1000.0;
  int segments = 6;   ///< ladder segments per wire
  int victim = -1;    ///< index of the (quiet) victim track
};

/// Build the MNA circuit for a bus and return the victim's receiver-end
/// peak |noise| in volts. Throws std::invalid_argument on malformed specs
/// (victim out of range / not a quiet signal).
double simulate_victim_noise(const BusSpec& spec, const Technology& tech,
                             const TransientOptions& options = {});

/// Lower-level variant that also returns the waveform for inspection.
TransientResult simulate_bus(const BusSpec& spec, const Technology& tech,
                             const TransientOptions& options = {});

}  // namespace rlcr::circuit
