#include "circuit/circuit.h"

#include <algorithm>
#include <stdexcept>

namespace rlcr::circuit {

double Pwl::at(double t) const {
  if (points.empty()) return 0.0;
  if (t <= points.front().first) return points.front().second;
  if (t >= points.back().first) return points.back().second;
  for (std::size_t i = 1; i < points.size(); ++i) {
    if (t <= points[i].first) {
      const auto& [t0, v0] = points[i - 1];
      const auto& [t1, v1] = points[i];
      if (t1 == t0) return v1;
      const double f = (t - t0) / (t1 - t0);
      return v0 + f * (v1 - v0);
    }
  }
  return points.back().second;
}

Pwl Pwl::ramp(double v, double t0, double tr) {
  Pwl p;
  p.points = {{t0, 0.0}, {t0 + tr, v}};
  return p;
}

Pwl Pwl::flat(double v) {
  Pwl p;
  p.points = {{0.0, v}};
  return p;
}

namespace {
void check_node(NodeId n, NodeId limit, const char* what) {
  if (n < 0 || n >= limit) {
    throw std::invalid_argument(std::string("Circuit: bad node for ") + what);
  }
}
}  // namespace

void Circuit::add_resistor(NodeId n1, NodeId n2, double ohms) {
  check_node(n1, num_nodes_, "resistor");
  check_node(n2, num_nodes_, "resistor");
  if (ohms <= 0.0) throw std::invalid_argument("Circuit: resistance must be > 0");
  resistors_.push_back(Resistor{n1, n2, ohms});
}

void Circuit::add_capacitor(NodeId n1, NodeId n2, double farads) {
  check_node(n1, num_nodes_, "capacitor");
  check_node(n2, num_nodes_, "capacitor");
  if (farads < 0.0) throw std::invalid_argument("Circuit: capacitance must be >= 0");
  if (farads > 0.0) capacitors_.push_back(Capacitor{n1, n2, farads});
}

std::size_t Circuit::add_inductor(NodeId n1, NodeId n2, double henries) {
  check_node(n1, num_nodes_, "inductor");
  check_node(n2, num_nodes_, "inductor");
  if (henries <= 0.0) throw std::invalid_argument("Circuit: inductance must be > 0");
  inductors_.push_back(Inductor{n1, n2, henries});
  return inductors_.size() - 1;
}

void Circuit::add_mutual(std::size_t l1, std::size_t l2, double k) {
  if (l1 >= inductors_.size() || l2 >= inductors_.size() || l1 == l2) {
    throw std::invalid_argument("Circuit: bad inductor indices for mutual");
  }
  if (std::abs(k) >= 1.0) {
    throw std::invalid_argument("Circuit: |k| must be < 1");
  }
  if (k != 0.0) mutuals_.push_back(MutualInductance{l1, l2, k});
}

void Circuit::add_vsource(NodeId n1, NodeId n2, Pwl waveform) {
  check_node(n1, num_nodes_, "vsource");
  check_node(n2, num_nodes_, "vsource");
  vsources_.push_back(VoltageSource{n1, n2, std::move(waveform)});
}

}  // namespace rlcr::circuit
