// Circuit netlist representation for the transient simulator.
//
// This is the library's SPICE substitute: the LSK noise table (Section 2.2
// of the paper) is calibrated by simulating coupled RLC interconnect
// structures. Supported elements are exactly what those structures need:
// resistors, capacitors, (mutually coupled) inductors, and piecewise-linear
// voltage sources. Node 0 is ground.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rlcr::circuit {

using NodeId = std::int32_t;
inline constexpr NodeId kGround = 0;

/// Piecewise-linear waveform: value is linearly interpolated between
/// (time, value) breakpoints, held constant outside them.
struct Pwl {
  std::vector<std::pair<double, double>> points;  // (seconds, volts), sorted

  double at(double t) const;

  /// 0 -> `v` ramp starting at t0 with rise time tr.
  static Pwl ramp(double v, double t0, double tr);
  /// Constant 0 (quiet victim driver input).
  static Pwl flat(double v = 0.0);
};

struct Resistor {
  NodeId n1, n2;
  double ohms;
};
struct Capacitor {
  NodeId n1, n2;
  double farads;
};
struct Inductor {
  NodeId n1, n2;
  double henries;
};
/// Mutual inductance between two inductors (by index into the inductor
/// list), expressed as a coupling coefficient k in (-1, 1).
struct MutualInductance {
  std::size_t l1, l2;
  double k;
};
struct VoltageSource {
  NodeId n1, n2;  // v(n1) - v(n2) = waveform(t)
  Pwl waveform;
};

/// Builder for a circuit. Nodes are allocated through `new_node()` (ground
/// pre-exists as node 0).
class Circuit {
 public:
  NodeId new_node() { return num_nodes_++; }
  NodeId num_nodes() const { return num_nodes_; }

  void add_resistor(NodeId n1, NodeId n2, double ohms);
  void add_capacitor(NodeId n1, NodeId n2, double farads);
  /// Returns the inductor's index for use in add_mutual().
  std::size_t add_inductor(NodeId n1, NodeId n2, double henries);
  void add_mutual(std::size_t l1, std::size_t l2, double k);
  void add_vsource(NodeId n1, NodeId n2, Pwl waveform);

  const std::vector<Resistor>& resistors() const { return resistors_; }
  const std::vector<Capacitor>& capacitors() const { return capacitors_; }
  const std::vector<Inductor>& inductors() const { return inductors_; }
  const std::vector<MutualInductance>& mutuals() const { return mutuals_; }
  const std::vector<VoltageSource>& vsources() const { return vsources_; }

 private:
  NodeId num_nodes_ = 1;  // node 0 = ground
  std::vector<Resistor> resistors_;
  std::vector<Capacitor> capacitors_;
  std::vector<Inductor> inductors_;
  std::vector<MutualInductance> mutuals_;
  std::vector<VoltageSource> vsources_;
};

}  // namespace rlcr::circuit
