#include "circuit/extract.h"

#include <algorithm>
#include <cmath>

namespace rlcr::circuit {

namespace {
constexpr double kMu0 = 4.0e-7 * 3.14159265358979323846;  // H/m
constexpr double kEps0 = 8.8541878128e-12;                // F/m
constexpr double kUm = 1e-6;
}  // namespace

double Extractor::resistance(double length_um) const {
  const double area_m2 =
      tech_.wire_width_um * kUm * tech_.wire_thickness_um * kUm;
  return tech_.resistivity_ohm_m * (length_um * kUm) / area_m2;
}

double Extractor::ground_capacitance(double length_um) const {
  // Plate term w/h plus an empirical fringe term ~ 1.1 per edge pair
  // (Sakurai-Tamaru flavoured; absolute accuracy is not required, the LSK
  // table is calibrated end-to-end against this same extractor).
  const double plate = tech_.wire_width_um / tech_.dielectric_h_um;
  const double fringe = 1.1;
  return tech_.eps_r * kEps0 * (plate + fringe) * (length_um * kUm);
}

double Extractor::coupling_capacitance(double length_um,
                                       int track_separation) const {
  if (track_separation < 1) return 0.0;
  // Sidewall plate t/s for adjacent tracks; quadratic falloff beyond.
  const double edge_gap =
      tech_.wire_space_um +
      (track_separation - 1) * tech_.pitch_um();
  const double sidewall = tech_.wire_thickness_um / edge_gap;
  const double falloff = 1.0 / (track_separation * track_separation);
  return tech_.eps_r * kEps0 * sidewall * falloff * (length_um * kUm);
}

double Extractor::self_inductance(double length_um) const {
  const double l = length_um * kUm;
  const double wt = (tech_.wire_width_um + tech_.wire_thickness_um) * kUm;
  const double ln_term = std::log(2.0 * l / wt);
  return kMu0 / (2.0 * 3.14159265358979323846) * l * (ln_term + 0.5);
}

double Extractor::mutual_inductance(double length_um, double distance_um) const {
  const double l = length_um * kUm;
  const double d = distance_um * kUm;
  if (d <= 0.0 || l <= 0.0) return 0.0;
  const double term = std::log(2.0 * l / d) - 1.0 + d / l;
  return std::max(0.0, kMu0 / (2.0 * 3.14159265358979323846) * l * term);
}

double Extractor::coupling_coefficient(double length_um,
                                       int track_separation) const {
  if (track_separation < 1) return 0.0;
  const double l_self = self_inductance(length_um);
  const double m =
      mutual_inductance(length_um, track_separation * tech_.pitch_um());
  if (l_self <= 0.0) return 0.0;
  // Clamp just below 1 for numerical safety in the MNA storage matrix.
  return std::min(0.999, m / l_self);
}

}  // namespace rlcr::circuit
