// Interconnect parasitic extraction for the ITRS 0.10 um technology point
// assumed by the paper (Vdd = 1.05 V, 3 GHz clock).
//
// All wires share one width / spacing / thickness (paper Section 2.1).
// Resistance comes from the copper sheet model, capacitance from a
// plate + fringe model with nearest-neighbour coupling, and inductance from
// the closed-form partial self/mutual inductance of finite parallel bars
// (Rosa/Grover formulas, the same ones FastHenry reduces to for this
// geometry). These are the standard back-of-layout formulas used by the
// pre-routing estimation literature the paper builds on.
#pragma once

namespace rlcr::circuit {

/// Technology and circuit-environment parameters. Defaults model the
/// paper's ITRS 0.10 um global-interconnect setup.
struct Technology {
  double vdd = 1.05;              ///< supply (V)
  double clock_hz = 3e9;          ///< clock the paper evaluates at
  double rise_time_s = 18e-12;    ///< aggressor edge rate (fast global drivers)

  double wire_width_um = 0.50;    ///< drawn width
  double wire_space_um = 0.50;    ///< edge-to-edge spacing
  double wire_thickness_um = 1.10;
  double dielectric_h_um = 0.80;  ///< height above return plane
  double eps_r = 3.3;             ///< low-k dielectric
  double resistivity_ohm_m = 2.2e-8;  ///< copper with barriers

  double driver_ohms = 40.0;      ///< uniform driver resistance
  double load_farads = 30e-15;    ///< uniform receiver load

  double pitch_um() const { return wire_width_um + wire_space_um; }
};

/// Per-unit-length and per-segment parasitics for the bus geometry above.
class Extractor {
 public:
  explicit Extractor(const Technology& tech) : tech_(tech) {}

  const Technology& tech() const { return tech_; }

  /// Series resistance of a wire segment (ohms).
  double resistance(double length_um) const;

  /// Capacitance to ground of a wire segment (farads): plate + fringe.
  double ground_capacitance(double length_um) const;

  /// Coupling capacitance between adjacent wires over a segment (farads).
  /// Falls off quickly with track separation; beyond the nearest neighbour
  /// it is negligible and callers may omit it.
  double coupling_capacitance(double length_um, int track_separation) const;

  /// Partial self-inductance of a wire segment (henries):
  ///   L = (mu0 / 2pi) l [ ln(2l / (w + t)) + 0.5 ]
  double self_inductance(double length_um) const;

  /// Partial mutual inductance between parallel segments at centre-to-centre
  /// distance d (henries):
  ///   M = (mu0 / 2pi) l [ ln(2l / d) - 1 + d / l ]
  /// Clamped to be non-negative (the formula crosses zero for d ~ l).
  double mutual_inductance(double length_um, double distance_um) const;

  /// Coupling coefficient k = M / sqrt(L1 L2) between equal-length parallel
  /// segments separated by `track_separation` tracks.
  double coupling_coefficient(double length_um, int track_separation) const;

 private:
  Technology tech_;
};

}  // namespace rlcr::circuit
