#include "circuit/transient.h"

#include <cmath>
#include <stdexcept>

#include "util/matrix.h"

namespace rlcr::circuit {

double TransientResult::peak_abs(std::size_t i) const {
  double best = 0.0;
  for (double v : volts[i]) best = std::max(best, std::abs(v));
  return best;
}

double TransientResult::peak(std::size_t i) const {
  double best = 0.0;
  for (double v : volts[i]) best = std::max(best, v);
  return best;
}

TransientResult simulate(const Circuit& ckt, const std::vector<NodeId>& probes,
                         const TransientOptions& options) {
  // Unknown layout: x = [v_1 .. v_{N-1}; i_L0 ..; i_V0 ..]. Ground (node 0)
  // is eliminated: stamps referencing it are dropped.
  const std::size_t nv = static_cast<std::size_t>(ckt.num_nodes()) - 1;
  const std::size_t nl = ckt.inductors().size();
  const std::size_t ns = ckt.vsources().size();
  const std::size_t dim = nv + nl + ns;
  if (dim == 0) throw std::invalid_argument("simulate: empty circuit");

  auto vidx = [&](NodeId n) -> std::ptrdiff_t {
    return n == kGround ? -1 : static_cast<std::ptrdiff_t>(n - 1);
  };

  util::Matrix g(dim, dim);
  util::Matrix c(dim, dim);

  // Resistors: conductance stamps.
  for (const Resistor& r : ckt.resistors()) {
    const double gg = 1.0 / r.ohms;
    const auto i = vidx(r.n1);
    const auto j = vidx(r.n2);
    if (i >= 0) g(static_cast<std::size_t>(i), static_cast<std::size_t>(i)) += gg;
    if (j >= 0) g(static_cast<std::size_t>(j), static_cast<std::size_t>(j)) += gg;
    if (i >= 0 && j >= 0) {
      g(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) -= gg;
      g(static_cast<std::size_t>(j), static_cast<std::size_t>(i)) -= gg;
    }
  }
  // Capacitors: storage stamps.
  for (const Capacitor& cap : ckt.capacitors()) {
    const auto i = vidx(cap.n1);
    const auto j = vidx(cap.n2);
    if (i >= 0) c(static_cast<std::size_t>(i), static_cast<std::size_t>(i)) += cap.farads;
    if (j >= 0) c(static_cast<std::size_t>(j), static_cast<std::size_t>(j)) += cap.farads;
    if (i >= 0 && j >= 0) {
      c(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) -= cap.farads;
      c(static_cast<std::size_t>(j), static_cast<std::size_t>(i)) -= cap.farads;
    }
  }
  // Inductors: branch current unknowns. KCL rows get +-1 incidence; the
  // branch equation row is  v1 - v2 - L i' - sum_k M i_k' = 0.
  for (std::size_t li = 0; li < nl; ++li) {
    const Inductor& ind = ckt.inductors()[li];
    const std::size_t row = nv + li;
    const auto i = vidx(ind.n1);
    const auto j = vidx(ind.n2);
    if (i >= 0) {
      g(static_cast<std::size_t>(i), row) += 1.0;  // current leaves n1
      g(row, static_cast<std::size_t>(i)) += 1.0;
    }
    if (j >= 0) {
      g(static_cast<std::size_t>(j), row) -= 1.0;
      g(row, static_cast<std::size_t>(j)) -= 1.0;
    }
    c(row, row) -= ind.henries;
  }
  for (const MutualInductance& m : ckt.mutuals()) {
    const double l1 = ckt.inductors()[m.l1].henries;
    const double l2 = ckt.inductors()[m.l2].henries;
    const double mval = m.k * std::sqrt(l1 * l2);
    c(nv + m.l1, nv + m.l2) -= mval;
    c(nv + m.l2, nv + m.l1) -= mval;
  }
  // Voltage sources: branch current unknowns; branch row  v1 - v2 = V(t).
  for (std::size_t si = 0; si < ns; ++si) {
    const VoltageSource& vs = ckt.vsources()[si];
    const std::size_t row = nv + nl + si;
    const auto i = vidx(vs.n1);
    const auto j = vidx(vs.n2);
    if (i >= 0) {
      g(static_cast<std::size_t>(i), row) += 1.0;
      g(row, static_cast<std::size_t>(i)) += 1.0;
    }
    if (j >= 0) {
      g(static_cast<std::size_t>(j), row) -= 1.0;
      g(row, static_cast<std::size_t>(j)) -= 1.0;
    }
  }

  const double h = options.dt;
  if (h <= 0.0 || options.t_stop <= 0.0) {
    throw std::invalid_argument("simulate: dt and t_stop must be positive");
  }

  // Left matrix A = C + h/2 G; right operator R = C - h/2 G.
  util::Matrix a = c;
  a.add_scaled(g, h / 2.0);
  util::Matrix rmat = c;
  rmat.add_scaled(g, -h / 2.0);
  const util::LuFactor lu(std::move(a));

  auto rhs_sources = [&](double t, std::vector<double>& b) {
    std::fill(b.begin(), b.end(), 0.0);
    for (std::size_t si = 0; si < ns; ++si) {
      b[nv + nl + si] = ckt.vsources()[si].waveform.at(t);
    }
  };

  const auto steps = static_cast<std::size_t>(std::ceil(options.t_stop / h));
  std::vector<double> x(dim, 0.0);
  std::vector<double> b0(dim, 0.0), b1(dim, 0.0), rhs(dim, 0.0);
  rhs_sources(0.0, b0);

  TransientResult out;
  out.time.reserve(steps + 1);
  out.volts.assign(probes.size(), {});
  for (auto& w : out.volts) w.reserve(steps + 1);

  auto record = [&](double t) {
    out.time.push_back(t);
    for (std::size_t p = 0; p < probes.size(); ++p) {
      const auto i = vidx(probes[p]);
      out.volts[p].push_back(i < 0 ? 0.0 : x[static_cast<std::size_t>(i)]);
    }
  };
  record(0.0);

  for (std::size_t s = 1; s <= steps; ++s) {
    const double t = static_cast<double>(s) * h;
    rhs_sources(t, b1);
    // rhs = R x + h/2 (b0 + b1)
    const std::vector<double> rx = rmat * x;
    for (std::size_t i = 0; i < dim; ++i) {
      rhs[i] = rx[i] + h / 2.0 * (b0[i] + b1[i]);
    }
    lu.solve_in_place(rhs);
    x = rhs;
    b0 = b1;
    record(t);
  }
  return out;
}

}  // namespace rlcr::circuit
