// Modified nodal analysis (MNA) transient simulation with trapezoidal
// integration — the numerical core of the SPICE substitute.
//
// The system is assembled as  C x' + G x = b(t)  over the unknown vector
// x = [node voltages (1..N-1); inductor currents; source currents].
// Trapezoidal discretization with fixed step h gives
//   (C + h/2 G) x_{n+1} = (C - h/2 G) x_n + h/2 (b_n + b_{n+1}),
// so the left-hand matrix is LU-factored once and back-substituted per step.
// Trapezoidal integration is A-stable and non-dissipative, which matters
// here: RLC crosstalk waveforms are underdamped and peak noise must not be
// artificially damped away.
#pragma once

#include <vector>

#include "circuit/circuit.h"

namespace rlcr::circuit {

struct TransientOptions {
  double t_stop = 200e-12;   ///< simulation window (s)
  double dt = 0.1e-12;       ///< fixed timestep (s)
};

/// Result of a transient run: sampled waveforms for requested nodes.
struct TransientResult {
  std::vector<double> time;                 ///< sample times (s)
  std::vector<std::vector<double>> volts;   ///< [probe][sample]

  /// Largest |v| over the run for probe `i`.
  double peak_abs(std::size_t i) const;
  /// Largest v (signed maximum) over the run for probe `i`.
  double peak(std::size_t i) const;
};

/// Run a transient analysis of `ckt`, probing the given nodes.
/// All states start at zero (quiescent initial condition); sources should
/// therefore start at zero as well.
TransientResult simulate(const Circuit& ckt, const std::vector<NodeId>& probes,
                         const TransientOptions& options = {});

}  // namespace rlcr::circuit
