#include "core/budget.h"

namespace rlcr::gsino {

std::vector<double> CrosstalkBudgeter::uniform_kth(
    const RoutingProblem& problem) const {
  std::vector<double> kth;
  kth.reserve(problem.net_count());
  for (double le : problem.le_um()) {
    kth.push_back(kth_from_length(le));
  }
  return kth;
}

}  // namespace rlcr::gsino
