// Phase I crosstalk budgeting (Section 3.1).
//
// The sink voltage bound is mapped to an LSK budget through the lookup
// table, then divided among a net's routing regions: the inductive coupling
// bound of each net segment is Kth = LSK / Le, with Le the source-sink
// Manhattan distance; a segment shared by several sinks takes the minimum
// of its sinks' bounds (equivalently, Le is the largest sink distance).
#pragma once

#include <vector>

#include "core/problem.h"

namespace rlcr::gsino {

class CrosstalkBudgeter {
 public:
  CrosstalkBudgeter(const ktable::LskTable& table, double bound_v)
      : lsk_budget_(table.lsk_budget(bound_v)), bound_v_(bound_v) {}

  /// The total LSK a net may accumulate before its sink noise reaches the
  /// voltage bound.
  double lsk_budget() const { return lsk_budget_; }
  double bound_v() const { return bound_v_; }

  /// Uniform per-segment bound for a net with budgeting length le_um
  /// (Manhattan estimate): Kth = LSK_budget / Le[mm].
  double kth_from_length(double le_um) const {
    return lsk_budget_ / (le_um / 1000.0);
  }

  /// Per-net uniform bounds for a whole problem (Manhattan-estimated
  /// lengths, the paper's Phase I rule).
  std::vector<double> uniform_kth(const RoutingProblem& problem) const;

 private:
  double lsk_budget_;
  double bound_v_;
};

}  // namespace rlcr::gsino
