#include "core/experiment.h"

#include <cstdlib>
#include <string>

#include "core/session.h"
#include "netlist/ispd98_synth.h"
#include "store/artifact_store.h"
#include "util/stopwatch.h"

namespace rlcr::gsino {

double scale_from_env(double fallback) {
  const char* env = std::getenv("RLCROUTE_SCALE");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const double v = std::strtod(env, &end);
  if (end == env || v <= 0.0 || v > 1.0) return fallback;
  return v;
}

CircuitRun ExperimentRunner::run_one(const netlist::SyntheticSpec& spec,
                                     double rate, const GsinoParams& params,
                                     bool run_isino, bool run_gsino,
                                     StageObserver observer,
                                     std::shared_ptr<store::ArtifactStore> store) {
  grid::RegionGridSpec g;
  g.cols = spec.grid_cols;
  g.rows = spec.grid_rows;
  g.region_w_um = spec.chip_w_um / spec.grid_cols;
  g.region_h_um = spec.chip_h_um / spec.grid_rows;
  g.h_capacity = spec.h_capacity;
  g.v_capacity = spec.v_capacity;
  return run_one(spec.name, netlist::generate(spec), g, rate, params,
                 run_isino, run_gsino, std::move(observer), std::move(store));
}

CircuitRun ExperimentRunner::run_one(const std::string& name,
                                     const netlist::Netlist& design,
                                     const grid::RegionGridSpec& gspec,
                                     double rate, const GsinoParams& params,
                                     bool run_isino, bool run_gsino,
                                     StageObserver observer,
                                     std::shared_ptr<store::ArtifactStore> store) {
  CircuitRun run;
  run.circuit = name;
  run.rate = rate;

  GsinoParams p = params;
  p.sensitivity_rate = rate;
  const RoutingProblem problem(design, gspec, p);
  run.total_nets = problem.net_count();

  // One session per cell: ID+NO and iSINO share the Phase I artifact; a
  // store additionally shares Phase I across cells, runs, and processes.
  SessionOptions sopt;
  sopt.observer = std::move(observer);
  sopt.store = std::move(store);
  FlowSession session(problem, std::move(sopt));
  run.idno = summarize(session.run(FlowKind::kIdNo), problem);
  if (run_isino) {
    run.isino = summarize(session.run(FlowKind::kIsino), problem);
    run.has_isino = true;
  }
  if (run_gsino) {
    run.gsino = summarize(session.run(FlowKind::kGsino), problem);
    run.has_gsino = true;
  }
  return run;
}

std::vector<CircuitRun> ExperimentRunner::run() const {
  std::vector<CircuitRun> out;
  if (options_.ispd98) {
    const auto classes = netlist::ispd98_classes(options_.scale);
    for (int ci : options_.circuits) {
      if (ci < 0 || static_cast<std::size_t>(ci) >= classes.size()) continue;
      const netlist::Ispd98ClassSpec& cls =
          classes[static_cast<std::size_t>(ci)];
      // One instance per class, shared across rates (the netD parse / the
      // synthetic generation plus placement dominate setup time at
      // published sizes).
      const netlist::Ispd98Instance inst = netlist::make_ispd98_instance(cls);
      for (double rate : options_.rates) {
        util::Stopwatch watch;
        CircuitRun run =
            run_one(cls.name, inst.design, inst.gspec, rate, options_.params,
                    options_.run_isino, options_.run_gsino, options_.observer,
                    options_.store);
        if (options_.progress) {
          options_.progress(cls.name, rate, "all-flows", watch.seconds());
        }
        out.push_back(std::move(run));
      }
    }
    return out;
  }
  const auto suite = netlist::ibm_suite(options_.scale);
  for (int ci : options_.circuits) {
    if (ci < 0 || static_cast<std::size_t>(ci) >= suite.size()) continue;
    const netlist::SyntheticSpec& spec = suite[static_cast<std::size_t>(ci)];
    for (double rate : options_.rates) {
      util::Stopwatch watch;
      CircuitRun run = run_one(spec, rate, options_.params, options_.run_isino,
                               options_.run_gsino, options_.observer,
                               options_.store);
      // Deprecated adapter: the legacy callback fires once per cell, as it
      // always did; everything finer-grained now arrives via `observer`.
      if (options_.progress) {
        options_.progress(spec.name, rate, "all-flows", watch.seconds());
      }
      out.push_back(std::move(run));
    }
  }
  return out;
}

}  // namespace rlcr::gsino
