// Experiment harness: runs the paper's circuit suite through the three
// flows and produces the CircuitRun rows the table renderers consume.
// Shared by the table benches, the ablation bench, and the examples.
//
// Each (circuit, rate) cell runs through one FlowSession, so ID+NO and
// iSINO share a single Phase I routing artifact (their router profiles
// are identical under the paper's fairness rule) and only GSINO routes a
// second time — two Phase I executions per cell instead of three, with
// bit-identical table outputs.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "grid/region_grid.h"
#include "netlist/synthetic.h"

namespace rlcr::store {
class ArtifactStore;
}  // namespace rlcr::store

namespace rlcr::gsino {

struct ExperimentOptions {
  /// Uniform shrink of the published circuit sizes. 1.0 reproduces the
  /// full-size suite; smaller values give fast smoke runs with the same
  /// statistical structure.
  double scale = 1.0;
  std::vector<double> rates = {0.30, 0.50};
  /// Indices into netlist::ibm_suite() (0 = ibm01 ... 5 = ibm06).
  std::vector<int> circuits = {0, 1, 2, 3, 4, 5};
  /// Run the ISPD'98 classes (netlist/ispd98_synth.h) instead of the
  /// proxy ibm_suite: Tables 1-3 at the published circuit sizes — the
  /// genuine netD circuits when RLCR_ISPD98_DIR holds them, the
  /// calibrated synthetic stand-ins otherwise. `scale` and `circuits`
  /// apply unchanged (circuit indices select among ibm01..ibm06 either
  /// way).
  bool ispd98 = false;
  bool run_isino = true;
  bool run_gsino = true;
  GsinoParams params;
  /// Stage observer, forwarded into every cell's FlowSession. Receives a
  /// StageEvent per stage (route/budget/solve_regions/refine) with compute
  /// seconds and the cache-reuse flag.
  StageObserver observer;
  /// Optional persistent artifact store, forwarded into every cell's
  /// FlowSession: a re-run of the suite (same circuits, rates, params,
  /// seed) warm-starts Phase I and budgeting from the records a previous
  /// run — possibly in another process — published.
  std::shared_ptr<store::ArtifactStore> store;
  /// DEPRECATED legacy progress callback (circuit, rate, flow, seconds).
  /// Kept for source compatibility only: ExperimentRunner::run still fires
  /// it once per cell with flow = "all-flows" (as it always did), but it
  /// is a separate legacy path — run_one never sees it, and it is
  /// independent of `observer`. New code should use `observer`, which
  /// replaces this ad-hoc type-erased signature and additionally reports
  /// per-stage timing and artifact reuse; `progress` will be removed once
  /// callers migrate.
  std::function<void(const std::string&, double, const std::string&, double)>
      progress;
};

/// Honours the RLCROUTE_SCALE environment variable (a double); returns
/// `fallback` when unset or invalid. Lets the shipped benches run at full
/// published size by default while CI uses a smaller scale.
double scale_from_env(double fallback);

class ExperimentRunner {
 public:
  explicit ExperimentRunner(ExperimentOptions options)
      : options_(std::move(options)) {}

  /// One CircuitRun per (circuit, rate).
  std::vector<CircuitRun> run() const;

  /// Single circuit x rate, returning the table-ready summaries; used by
  /// tests and the quickstart example. The three flows run through one
  /// FlowSession (shared routing artifact); `observer` receives its stage
  /// events.
  static CircuitRun run_one(const netlist::SyntheticSpec& spec, double rate,
                            const GsinoParams& params, bool run_isino = true,
                            bool run_gsino = true, StageObserver observer = {},
                            std::shared_ptr<store::ArtifactStore> store = {});

  /// Same cell over an already-materialized design and routing fabric —
  /// the entry the ISPD'98 path and the scenario matrix drive (their
  /// designs come from make_ispd98_instance, not a SyntheticSpec).
  static CircuitRun run_one(const std::string& name,
                            const netlist::Netlist& design,
                            const grid::RegionGridSpec& gspec, double rate,
                            const GsinoParams& params, bool run_isino = true,
                            bool run_gsino = true, StageObserver observer = {},
                            std::shared_ptr<store::ArtifactStore> store = {});

 private:
  ExperimentOptions options_;
};

}  // namespace rlcr::gsino
