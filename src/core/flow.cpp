#include "core/flow.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "core/paths.h"
#include "core/refine.h"
#include "parallel/parallel_for.h"
#include "sino/anneal.h"
#include "sino/batch.h"
#include "sino/greedy.h"
#include "util/stopwatch.h"

namespace rlcr::gsino {

const char* flow_name(FlowKind kind) {
  switch (kind) {
    case FlowKind::kIdNo:
      return "ID+NO";
    case FlowKind::kIsino:
      return "iSINO";
    case FlowKind::kGsino:
      return "GSINO";
  }
  return "?";
}

namespace {

/// Key for the (net, region, dir) -> critical-path-length lookup.
std::uint64_t path_key(std::size_t net, std::size_t region, grid::Dir dir) {
  return (static_cast<std::uint64_t>(net) << 33) | (region << 1) |
         static_cast<std::uint64_t>(dir);
}

using PathLookup = std::unordered_map<std::uint64_t, double>;  // -> length um

/// Build the SINO instance for one (region, dir) from the occupancy.
RegionSolution build_region(const RoutingProblem& problem,
                            const router::Occupancy& occ, std::size_t region,
                            grid::Dir dir, const std::vector<double>& kth,
                            const PathLookup& paths) {
  RegionSolution sol;
  const auto& segs = occ.segments(region, dir);
  if (segs.empty()) return sol;

  std::vector<sino::SinoNet> nets;
  nets.reserve(segs.size());
  sol.net_index.reserve(segs.size());
  sol.len_mm.reserve(segs.size());
  sol.path_len_mm.reserve(segs.size());
  for (const router::Segment& s : segs) {
    const auto n = static_cast<std::size_t>(s.net_index);
    sino::SinoNet sn;
    sn.net_id = s.net_index;
    sn.si = problem.router_nets()[n].si;
    sn.kth = kth[n];
    nets.push_back(sn);
    sol.net_index.push_back(n);
    sol.len_mm.push_back(s.length_um / 1000.0);
    const auto it = paths.find(path_key(n, region, dir));
    sol.path_len_mm.push_back(it == paths.end() ? 0.0 : it->second / 1000.0);
  }
  sol.instance = sino::SinoInstance(std::move(nets));
  for (std::size_t i = 0; i < sol.net_index.size(); ++i) {
    for (std::size_t j = i + 1; j < sol.net_index.size(); ++j) {
      if (problem.sensitivity().sensitive(
              static_cast<netlist::NetId>(sol.net_index[i]),
              static_cast<netlist::NetId>(sol.net_index[j]))) {
        sol.instance.set_sensitive(i, j);
      }
    }
  }
  return sol;
}

}  // namespace

void resolve_region(FlowResult& fr, const RoutingProblem& problem,
                    std::size_t sol_index, bool allow_anneal) {
  RegionSolution& sol = fr.solutions[sol_index];
  if (sol.empty()) return;
  const auto& keff = problem.keff();

  // Remove old LSK contributions (critical-path lengths; Eq. 1 is per sink).
  for (std::size_t i = 0; i < sol.net_index.size(); ++i) {
    if (i < sol.ki.size()) {
      fr.net_lsk[sol.net_index[i]] -= sol.path_len_mm[i] * sol.ki[i];
    }
  }

  sol.slots = sino::solve_greedy(sol.instance, keff);
  if (allow_anneal) {
    const sino::SinoEvaluator check_eval(sol.instance, keff);
    if (!check_eval.check(sol.slots).feasible()) {
      sino::AnnealOptions ao;
      ao.seed = problem.params().seed ^ (sol_index * 131071u);
      ao.iterations = problem.params().anneal_iterations;
      const auto best = sino::solve_anneal(sol.instance, keff, ao);
      if (best.feasible) sol.slots = best.slots;
    }
  }
  const sino::SinoEvaluator eval(sol.instance, keff);
  sol.ki = eval.all_ki(sol.slots);

  // Add new contributions and refresh noise for member nets.
  for (std::size_t i = 0; i < sol.net_index.size(); ++i) {
    fr.net_lsk[sol.net_index[i]] += sol.path_len_mm[i] * sol.ki[i];
    fr.net_noise[sol.net_index[i]] =
        problem.lsk_table().voltage(fr.net_lsk[sol.net_index[i]]);
  }

  // Refresh the region's shield count.
  const std::size_t region = sol_index / 2;
  const auto dir = static_cast<grid::Dir>(sol_index % 2);
  fr.congestion->set_shields(
      region, dir,
      static_cast<double>(sino::SinoEvaluator::shield_count(sol.slots)));
}

double solution_density(const FlowResult& fr, const RoutingProblem& problem,
                        std::size_t sol_index) {
  const std::size_t region = sol_index / 2;
  const auto dir = static_cast<grid::Dir>(sol_index % 2);
  (void)problem;
  return fr.congestion->density(region, dir);
}

void refresh_noise(FlowResult& fr, const RoutingProblem& problem) {
  const auto& table = problem.lsk_table();
  fr.violating = 0;
  for (std::size_t n = 0; n < fr.net_lsk.size(); ++n) {
    fr.net_noise[n] = table.voltage(fr.net_lsk[n]);
    if (fr.net_noise[n] > fr.bound_v + 1e-9) ++fr.violating;
  }
}

void finalize_metrics(FlowResult& fr, const RoutingProblem& problem) {
  fr.total_wirelength_um = fr.routing.total_wirelength_um;
  const std::size_t nets = problem.net_count();
  fr.avg_wirelength_um =
      nets == 0 ? 0.0 : fr.total_wirelength_um / static_cast<double>(nets);
  fr.area = grid::compute_routing_area(*fr.congestion);
  fr.total_shields = fr.congestion->total_shields();
  refresh_noise(fr, problem);
}

FlowResult FlowRunner::run(FlowKind kind) const {
  const RoutingProblem& p = *problem_;
  FlowResult fr;
  fr.kind = kind;
  fr.name = flow_name(kind);
  fr.bound_v = p.params().crosstalk_bound_v;

  // ----------------------------------------------------------- Phase I
  util::Stopwatch watch;
  router::IdRouterOptions ropt = p.params().router;
  // The paper's fairness rule: only GSINO reserves shield area in Eq. (2).
  ropt.reserve_shields = (kind == FlowKind::kGsino);
  if (kind == FlowKind::kGsino) {
    // GSINO trades a little wire length for crosstalk headroom (Table 2's
    // overhead): give its shield-aware weights room to detour around
    // shield-laden regions.
    ropt.max_detour_factor = std::max(ropt.max_detour_factor, 1.5);
  }
  const router::IdRouter router(p.grid(), p.nss(), ropt);
  fr.routing = router.route(p.router_nets());
  fr.timing.route_s = watch.seconds();

  fr.occupancy = std::make_unique<router::Occupancy>(p.grid(), fr.routing.routes);
  fr.congestion = std::make_unique<grid::CongestionMap>(p.grid());
  fr.occupancy->fill_segments(*fr.congestion);

  // Critical source->sink paths (the per-sink scope of Eq. 1).
  const std::vector<CriticalPath> paths =
      critical_paths(p.grid(), p.router_nets(), fr.routing.routes);
  PathLookup path_lookup;
  fr.critical_path_um.assign(p.net_count(), 0.0);
  for (std::size_t n = 0; n < paths.size(); ++n) {
    fr.critical_path_um[n] = paths[n].length_um;
    for (const router::NetRegionRef& ref : paths[n].refs) {
      path_lookup[path_key(n, ref.region, ref.dir)] = ref.length_um;
    }
  }

  // ------------------------------------------------------- budgeting
  const CrosstalkBudgeter budgeter(p.lsk_table(), fr.bound_v);
  if (kind == FlowKind::kIsino) {
    // iSINO runs SINO after routing, so its bounds use the actual routed
    // critical-path lengths (this is what lets it meet every bound without
    // refinement — at the cost of the unplanned shield area Table 3 shows).
    fr.kth.resize(p.net_count());
    for (std::size_t n = 0; n < p.net_count(); ++n) {
      const double routed_um =
          std::max(fr.critical_path_um[n], p.le_um()[n]);
      fr.kth[n] = budgeter.kth_from_length(routed_um);
    }
  } else {
    // ID+NO (reporting only) and GSINO (Phase I rule): Manhattan estimate,
    // tightened by the budgeting safety margin for GSINO.
    fr.kth = budgeter.uniform_kth(p);
    if (kind == FlowKind::kGsino) {
      for (double& k : fr.kth) k *= p.params().budget_margin;
    }
  }

  // ----------------------------------------------------------- Phase II
  //
  // Every (region, dir) SINO instance is independent: the instances are
  // built with a parallel map, solved across the pool by the batch driver
  // (sino/batch.h, each region with its own deterministic RNG stream), and
  // the LSK/shield accumulation replays serially in the historical
  // (region, dir) order — so the phase's output is bit-identical at any
  // thread count, threads == 1 being the exact serial path.
  watch.reset();
  const std::size_t regions = p.grid().region_count();
  const std::size_t sol_count = regions * 2;
  fr.net_lsk.assign(p.net_count(), 0.0);
  fr.net_noise.assign(p.net_count(), 0.0);

  constexpr std::size_t kRegionGrain = 32;  // instances per chunk (fixed)
  fr.solutions = parallel::parallel_map<RegionSolution>(
      sol_count, kRegionGrain, p.params().threads, [&](std::size_t si) {
        return build_region(p, *fr.occupancy, si / 2,
                            static_cast<grid::Dir>(si % 2), fr.kth,
                            path_lookup);
      });

  std::vector<sino::SinoBatchItem> items(sol_count);
  for (std::size_t si = 0; si < sol_count; ++si) {
    const RegionSolution& sol = fr.solutions[si];
    if (sol.empty()) continue;
    sino::SinoBatchItem& item = items[si];
    item.instance = &sol.instance;
    if (kind == FlowKind::kIdNo) {
      item.mode = sino::SinoSolveMode::kNetOrder;
    } else if (p.params().anneal_phase2) {
      item.mode = sino::SinoSolveMode::kGreedyAnneal;
      // The historical per-region stream seed, preserved so annealed
      // Phase II results stay identical to the pre-batch flow.
      item.anneal_seed = p.params().seed ^ (sol.net_index.front() * 977u);
      item.anneal_iterations = p.params().anneal_iterations;
    } else {
      item.mode = sino::SinoSolveMode::kGreedy;
    }
  }
  sino::SinoBatchOptions bopt;
  bopt.threads = p.params().threads;
  std::vector<sino::SinoBatchResult> solved =
      sino::solve_batch(items, p.keff(), bopt);

  for (std::size_t r = 0; r < regions; ++r) {
    for (grid::Dir d : grid::kBothDirs) {
      const std::size_t si = fr.sol_index(r, d);
      RegionSolution& sol = fr.solutions[si];
      if (sol.empty()) continue;
      sol.slots = std::move(solved[si].slots);
      sol.ki = std::move(solved[si].ki);
      for (std::size_t i = 0; i < sol.net_index.size(); ++i) {
        fr.net_lsk[sol.net_index[i]] += sol.path_len_mm[i] * sol.ki[i];
      }
      fr.congestion->set_shields(
          r, d,
          static_cast<double>(sino::SinoEvaluator::shield_count(sol.slots)));
    }
  }
  fr.timing.sino_s = watch.seconds();
  refresh_noise(fr, p);

  // ---------------------------------------------------------- Phase III
  if (kind == FlowKind::kGsino) {
    watch.reset();
    LocalRefiner refiner(p);
    refiner.refine(fr);
    fr.timing.refine_s = watch.seconds();
  }

  finalize_metrics(fr, p);
  return fr;
}

}  // namespace rlcr::gsino
