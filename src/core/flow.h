// Compatibility shim over the staged flow-session API (core/session.h).
//
// Historically the three flows ran through a sealed batch call,
// FlowRunner::run(FlowKind), returning a move-only FlowResult monolith.
// The staged FlowSession replaced that: explicit route/budget/
// solve_regions/refine stages with immutable, shareable artifacts and
// cached cross-flow reuse. FlowRunner survives as a thin shim so existing
// callers keep compiling; it owns a session internally, so consecutive
// run() calls on one runner already share the routing artifact where the
// router profiles match (ID+NO and iSINO). New code should use
// FlowSession directly — it additionally exposes what-if re-solves,
// stage counters, and the progress observer.
#pragma once

#include <mutex>

#include "core/session.h"

namespace rlcr::gsino {

class FlowRunner {
 public:
  explicit FlowRunner(const RoutingProblem& problem) : session_(problem) {}

  /// Serialized internally: the historical const run() was stateless and
  /// safe to call concurrently on a shared runner, and the shim keeps
  /// that contract even though the underlying session mutates its caches
  /// (FlowSession itself is single-threaded by design — one pipeline, not
  /// a concurrent service).
  FlowResult run(FlowKind kind) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return session_.run(kind);
  }

 private:
  mutable std::mutex mutex_;
  mutable FlowSession session_;
};

}  // namespace rlcr::gsino
