// The three routing flows the paper compares (Section 4):
//   ID+NO  — ID global routing (wire length + congestion only), then net
//            ordering per region; no shields. The conventional baseline
//            whose crosstalk violations Table 1 counts.
//   iSINO  — same routing, then min-area SINO per region to meet the
//            crosstalk bounds; shields appear wherever needed, unplanned.
//   GSINO  — the paper's three-phase algorithm: budgeting + shield-aware ID
//            (Phase I), SINO per region (Phase II), local refinement
//            (Phase III).
//
// All flows share one result shape so the experiment harness can tabulate
// them uniformly.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/budget.h"
#include "core/problem.h"
#include "grid/congestion.h"
#include "router/id_router.h"
#include "router/occupancy.h"
#include "sino/evaluator.h"

namespace rlcr::gsino {

enum class FlowKind { kIdNo, kIsino, kGsino };

const char* flow_name(FlowKind kind);

/// The SINO (or ordering) state of one (region, direction).
struct RegionSolution {
  sino::SinoInstance instance;          ///< nets with S_i and current Kth
  std::vector<std::size_t> net_index;   ///< instance net -> global net index
  std::vector<double> len_mm;           ///< net's tree wire length here (tracks)
  /// Net's critical source->sink path length inside this region (mm); zero
  /// when the region only hosts a branch to another sink. LSK (Eq. 1) sums
  /// path_len_mm * Ki — noise at a sink accumulates along its path only.
  std::vector<double> path_len_mm;
  ktable::SlotVec slots;                ///< track assignment
  std::vector<double> ki;               ///< per instance net, current Ki

  bool empty() const { return net_index.empty(); }
};

struct FlowTiming {
  double route_s = 0.0;
  double sino_s = 0.0;
  double refine_s = 0.0;
};

struct FlowResult {
  FlowKind kind = FlowKind::kIdNo;
  std::string name;
  double bound_v = 0.15;

  router::RoutingResult routing;
  std::unique_ptr<router::Occupancy> occupancy;
  std::vector<RegionSolution> solutions;  ///< index = region * 2 + dir
  std::unique_ptr<grid::CongestionMap> congestion;
  std::vector<double> critical_path_um;   ///< per net, longest src->sink path

  std::vector<double> net_lsk;    ///< Eq. (1) per net
  std::vector<double> net_noise;  ///< table lookup of net_lsk (V)
  std::vector<double> kth;        ///< per-net budget at flow start

  double total_wirelength_um = 0.0;
  double avg_wirelength_um = 0.0;
  grid::RoutingArea area;
  double total_shields = 0.0;
  std::size_t violating = 0;   ///< nets with noise > bound
  std::size_t unfixable = 0;   ///< GSINO: nets Phase III gave up on
  FlowTiming timing;

  std::size_t sol_index(std::size_t region, grid::Dir d) const {
    return region * 2 + static_cast<std::size_t>(d);
  }
};

class FlowRunner {
 public:
  explicit FlowRunner(const RoutingProblem& problem) : problem_(&problem) {}

  FlowResult run(FlowKind kind) const;

 private:
  const RoutingProblem* problem_;
};

// ---- shared flow machinery (used by FlowRunner and the Phase III refiner)

/// Re-solve one region under the instance's current Kth values (greedy,
/// optionally annealing when infeasible), updating slots/ki, the region's
/// shield count in the congestion map, and every member net's LSK/noise.
void resolve_region(FlowResult& fr, const RoutingProblem& problem,
                    std::size_t sol_index, bool allow_anneal);

/// Density (utilization / capacity) of the (region, dir) behind `sol_index`
/// under the current congestion map.
double solution_density(const FlowResult& fr, const RoutingProblem& problem,
                        std::size_t sol_index);

/// Recompute noise from LSK for all nets and refresh the violation count.
void refresh_noise(FlowResult& fr, const RoutingProblem& problem);

/// Recompute area / shields / wirelength aggregates from current state.
void finalize_metrics(FlowResult& fr, const RoutingProblem& problem);

}  // namespace rlcr::gsino
