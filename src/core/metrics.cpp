#include "core/metrics.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace rlcr::gsino {

namespace {

std::string area_cell(const FlowSummary& s) {
  return util::fmt_int(static_cast<long long>(std::llround(s.area_width_um))) +
         " x " +
         util::fmt_int(static_cast<long long>(std::llround(s.area_height_um)));
}

std::string overhead_cell(double value, double base) {
  if (base <= 0.0) return "-";
  return "(" + util::fmt_percent(value / base - 1.0) + ")";
}

/// Runs grouped by circuit, rate-sorted within each group.
std::map<std::string, std::vector<const CircuitRun*>> by_circuit(
    const std::vector<CircuitRun>& runs) {
  std::map<std::string, std::vector<const CircuitRun*>> grouped;
  for (const CircuitRun& r : runs) grouped[r.circuit].push_back(&r);
  for (auto& [name, v] : grouped) {
    std::sort(v.begin(), v.end(),
              [](const CircuitRun* a, const CircuitRun* b) {
                return a->rate < b->rate;
              });
  }
  return grouped;
}

std::string rate_label(double rate) {
  return "rate=" + util::fmt_percent(rate, 0);
}

}  // namespace

FlowSummary summarize(const FlowResult& fr, const RoutingProblem& problem) {
  FlowSummary s;
  s.name = fr.name;
  s.total_nets = problem.net_count();
  s.violating = fr.violating;
  s.unfixable = fr.unfixable;
  s.avg_wirelength_um = fr.avg_wirelength_um;
  s.total_wirelength_um = fr.total_wirelength_um;
  s.area_width_um = fr.area.width_um;
  s.area_height_um = fr.area.height_um;
  s.total_shields = fr.total_shields;
  s.timing = fr.timing;
  return s;
}

util::TablePrinter render_table1(const std::vector<CircuitRun>& runs) {
  util::TablePrinter t(
      "Table 1: numbers of crosstalk-violating nets for ID+NO solutions\n"
      "(percentages are with respect to the total number of signal nets)");
  const auto grouped = by_circuit(runs);

  std::vector<std::string> header{"circuit"};
  if (!grouped.empty()) {
    for (const CircuitRun* r : grouped.begin()->second) {
      header.push_back(rate_label(r->rate));
    }
  }
  t.set_header(header);

  for (const auto& [name, group] : grouped) {
    std::vector<std::string> row{name};
    for (const CircuitRun* r : group) {
      row.push_back(util::fmt_int(static_cast<long long>(r->idno.violating)) +
                    " (" + util::fmt_percent(r->idno.violating_fraction()) +
                    ")");
    }
    t.add_row(std::move(row));
  }
  return t;
}

util::TablePrinter render_table2(const std::vector<CircuitRun>& runs) {
  util::TablePrinter t(
      "Table 2: average wire lengths (um) of ID+NO and GSINO solutions\n"
      "(percentages are the average increase on wire length vs ID+NO)");
  const auto grouped = by_circuit(runs);

  std::vector<std::string> header{"circuit"};
  if (!grouped.empty()) {
    for (const CircuitRun* r : grouped.begin()->second) {
      header.push_back("ID+NO " + rate_label(r->rate));
      header.push_back("GSINO " + rate_label(r->rate));
    }
  }
  t.set_header(header);

  for (const auto& [name, group] : grouped) {
    std::vector<std::string> row{name};
    for (const CircuitRun* r : group) {
      row.push_back(util::fmt_double(r->idno.avg_wirelength_um, 0));
      if (r->has_gsino) {
        row.push_back(util::fmt_double(r->gsino.avg_wirelength_um, 0) + " " +
                      overhead_cell(r->gsino.avg_wirelength_um,
                                    r->idno.avg_wirelength_um));
      } else {
        row.push_back("-");
      }
    }
    t.add_row(std::move(row));
  }
  return t;
}

util::TablePrinter render_table3(const std::vector<CircuitRun>& runs) {
  util::TablePrinter t(
      "Table 3: routing areas (um x um) of ID+NO, iSINO, and GSINO solutions\n"
      "(percentages are the increase on routing area vs ID+NO)");
  t.set_header({"circuit", "rate", "ID+NO", "iSINO", "GSINO"});

  const auto grouped = by_circuit(runs);
  bool first_block = true;
  for (double pass_rate : {0.30, 0.50}) {
    bool emitted = false;
    for (const auto& [name, group] : grouped) {
      for (const CircuitRun* r : group) {
        if (std::abs(r->rate - pass_rate) > 1e-9) continue;
        if (!emitted && !first_block) t.add_separator();
        emitted = true;
        std::vector<std::string> row{name, util::fmt_percent(r->rate, 0),
                                     area_cell(r->idno)};
        if (r->has_isino) {
          row.push_back(area_cell(r->isino) + " " +
                        overhead_cell(r->isino.area_um2(), r->idno.area_um2()));
        } else {
          row.push_back("-");
        }
        if (r->has_gsino) {
          row.push_back(area_cell(r->gsino) + " " +
                        overhead_cell(r->gsino.area_um2(), r->idno.area_um2()));
        } else {
          row.push_back("-");
        }
        t.add_row(std::move(row));
      }
    }
    if (emitted) first_block = false;
  }
  return t;
}

}  // namespace rlcr::gsino
