// Compact flow summaries and the paper's table formats.
#pragma once

#include <string>
#include <vector>

#include "core/flow.h"
#include "util/table_printer.h"

namespace rlcr::gsino {

/// Everything the experiment tables need, without the heavyweight per-region
/// state of a FlowResult.
struct FlowSummary {
  std::string name;
  std::size_t total_nets = 0;
  std::size_t violating = 0;
  std::size_t unfixable = 0;
  double avg_wirelength_um = 0.0;
  double total_wirelength_um = 0.0;
  double area_width_um = 0.0;
  double area_height_um = 0.0;
  double total_shields = 0.0;
  FlowTiming timing;

  double area_um2() const { return area_width_um * area_height_um; }
  double violating_fraction() const {
    return total_nets == 0
               ? 0.0
               : static_cast<double>(violating) / static_cast<double>(total_nets);
  }
};

FlowSummary summarize(const FlowResult& fr, const RoutingProblem& problem);

/// One benchmark circuit evaluated at one sensitivity rate.
struct CircuitRun {
  std::string circuit;
  double rate = 0.0;
  std::size_t total_nets = 0;
  FlowSummary idno;
  FlowSummary isino;
  FlowSummary gsino;
  bool has_isino = false;
  bool has_gsino = false;
};

/// Paper Table 1: crosstalk-violating nets of ID+NO, one column block per
/// sensitivity rate.
util::TablePrinter render_table1(const std::vector<CircuitRun>& runs);

/// Paper Table 2: average wire lengths of ID+NO vs GSINO (with overhead %).
util::TablePrinter render_table2(const std::vector<CircuitRun>& runs);

/// Paper Table 3: routing areas of ID+NO, iSINO, GSINO (with overhead %).
util::TablePrinter render_table3(const std::vector<CircuitRun>& runs);

}  // namespace rlcr::gsino
