// All tunable parameters of the GSINO flow in one place.
#pragma once

#include <cstdint>

#include "circuit/extract.h"
#include "ktable/keff.h"
#include "router/id_router.h"

namespace rlcr::gsino {

struct GsinoParams {
  /// RLC crosstalk voltage bound per sink (paper: 0.15 V ~ 15% of Vdd).
  double crosstalk_bound_v = 0.15;
  /// Global sensitivity rate (paper evaluates 0.30 and 0.50).
  double sensitivity_rate = 0.30;
  /// Master seed (sensitivity graph, solver tie-breaking).
  std::uint64_t seed = 1;
  /// Pool participants for the parallel phases (Phase II region builds and
  /// SINO batch solves; Phase I has its own knob in router.threads).
  /// 0 = auto (RLCR_THREADS env var, else hardware concurrency); 1 = exact
  /// serial path. Flow results are bit-identical at every value — see
  /// src/parallel/README.md for the determinism contract.
  int threads = 0;

  router::IdRouterOptions router;       ///< Eq. (2) weights etc.
  ktable::KeffParams keff;              ///< coupling model
  circuit::Technology tech;             ///< ITRS 0.10 um point

  /// Phase I budgeting safety margin: GSINO's per-segment bounds are
  /// Kth = margin * LSK_budget / Le. The Manhattan estimate Le understates
  /// the routed length whenever the router detours, and a net whose regions
  /// saturate Ki = Kth then exceeds its noise budget by exactly the detour
  /// ratio; the margin absorbs typical detours so Phase III only has to
  /// clean up outliers (the paper reports the same violations as "very
  /// limited" and lists better budgeting as future work).
  double budget_margin = 1.0;

  /// Phase II solver: greedy always runs; annealing refines regions whose
  /// greedy solution is infeasible or when enabled globally.
  bool anneal_phase2 = false;
  int anneal_iterations = 3000;

  /// Phase III (local refinement) limits.
  int lr_max_outer_pass1 = 8000;  ///< violating nets processed
  int lr_max_inner_pass1 = 48;    ///< shield-adding steps per net
  int lr_max_outer_pass2 = 4000;  ///< congested regions processed
  double lr_kth_shrink = 0.55;    ///< Kth multiplier per pass-1 inner step
};

}  // namespace rlcr::gsino
