#include "core/paths.h"

#include <algorithm>
#include <unordered_map>

namespace rlcr::gsino {

CriticalPath critical_path(const grid::RegionGrid& grid,
                           const router::RouterNet& net,
                           const router::NetRoute& route) {
  CriticalPath out;
  if (net.pins.size() < 2 || route.edges.empty()) return out;

  // Tree adjacency over region points.
  std::unordered_map<geom::Point, std::vector<std::size_t>> adj;  // -> edge ids
  for (std::size_t e = 0; e < route.edges.size(); ++e) {
    adj[route.edges[e].a].push_back(e);
    adj[route.edges[e].b].push_back(e);
  }
  const geom::Point src = net.pins.front();
  if (!adj.count(src)) return out;

  // BFS from the source, accumulating um distance; parent edge per point.
  std::unordered_map<geom::Point, std::pair<std::size_t, geom::Point>> parent;
  std::unordered_map<geom::Point, double> dist;
  std::vector<geom::Point> queue{src};
  dist[src] = 0.0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const geom::Point v = queue[head];
    for (std::size_t ei : adj[v]) {
      const router::GridEdge& e = route.edges[ei];
      const geom::Point other = (e.a == v) ? e.b : e.a;
      if (dist.count(other)) continue;
      dist[other] = dist[v] + grid.span_um(e.dir());
      parent[other] = {ei, v};
      queue.push_back(other);
    }
  }

  // Critical sink: the reachable sink with the largest path distance.
  geom::Point best_sink = src;
  double best_dist = -1.0;
  for (std::size_t p = 1; p < net.pins.size(); ++p) {
    const auto it = dist.find(net.pins[p]);
    if (it != dist.end() && it->second > best_dist) {
      best_dist = it->second;
      best_sink = net.pins[p];
    }
  }
  if (best_dist <= 0.0) return out;
  out.length_um = best_dist;

  // Walk back to the source collecting incident-edge counts per
  // (region, dir), then convert to half-span lengths exactly like the
  // occupancy does for whole trees.
  std::unordered_map<std::uint64_t, int> incident;
  geom::Point v = best_sink;
  while (!(v == src)) {
    const auto& [ei, up] = parent.at(v);
    const router::GridEdge& e = route.edges[ei];
    const auto d = static_cast<std::uint64_t>(e.dir());
    incident[grid.index(e.a) * 2 + d] += 1;
    incident[grid.index(e.b) * 2 + d] += 1;
    v = up;
  }
  out.refs.reserve(incident.size());
  for (const auto& [key, count] : incident) {
    const std::size_t region = key / 2;
    const auto d = static_cast<grid::Dir>(key % 2);
    out.refs.push_back(router::NetRegionRef{
        region, d, 0.5 * grid.span_um(d) * count});
  }
  std::sort(out.refs.begin(), out.refs.end(),
            [](const router::NetRegionRef& a, const router::NetRegionRef& b) {
              if (a.region != b.region) return a.region < b.region;
              return static_cast<int>(a.dir) < static_cast<int>(b.dir);
            });
  return out;
}

std::vector<CriticalPath> critical_paths(
    const grid::RegionGrid& grid, const std::vector<router::RouterNet>& nets,
    const std::vector<router::NetRoute>& routes) {
  std::vector<CriticalPath> out(nets.size());
  for (std::size_t n = 0; n < nets.size(); ++n) {
    out[n] = critical_path(grid, nets[n], routes[n]);
  }
  return out;
}

}  // namespace rlcr::gsino
