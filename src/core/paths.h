// Critical source->sink path extraction.
//
// The crosstalk constraint is per sink (Formulation 1), so the LSK sum of
// Eq. (1) runs over the regions of a source->sink path — not over the whole
// routed tree. A multi-pin net's branches to other sinks contribute nothing
// to a given sink's noise. This module extracts, for every net, the
// longest source->sink path in its routed tree (the "critical" path: with
// Ki <= Kth enforced per region, the longest path carries the largest LSK
// bound), expressed as the same per-(region, direction) length references
// the occupancy uses.
#pragma once

#include <vector>

#include "grid/region_grid.h"
#include "router/occupancy.h"
#include "router/route_types.h"

namespace rlcr::gsino {

/// The critical path of one net.
struct CriticalPath {
  std::vector<router::NetRegionRef> refs;  ///< per-(region, dir) lengths
  double length_um = 0.0;                  ///< total path wire length
};

/// Critical path of a single routed net. Returns an empty path for nets
/// with fewer than two pins or an empty route.
CriticalPath critical_path(const grid::RegionGrid& grid,
                           const router::RouterNet& net,
                           const router::NetRoute& route);

/// All nets at once (parallel vectors).
std::vector<CriticalPath> critical_paths(
    const grid::RegionGrid& grid, const std::vector<router::RouterNet>& nets,
    const std::vector<router::NetRoute>& routes);

}  // namespace rlcr::gsino
