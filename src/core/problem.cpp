#include "core/problem.h"

#include <algorithm>

namespace rlcr::gsino {

RoutingProblem::RoutingProblem(const netlist::Netlist& design,
                               const grid::RegionGridSpec& gspec,
                               const GsinoParams& params)
    : params_(params),
      grid_(gspec),
      sens_(design.net_count(), params.sensitivity_rate, params.seed),
      keff_(params.keff, params.tech),
      table_(ktable::LskTable::default_table()),
      nss_() {
  rnets_.reserve(design.net_count());
  le_um_.reserve(design.net_count());
  const double pitch =
      std::min(grid_.region_w_um(), grid_.region_h_um());

  for (std::size_t n = 0; n < design.net_count(); ++n) {
    const netlist::Net& net = design.net(static_cast<netlist::NetId>(n));
    router::RouterNet rn;
    rn.id = static_cast<std::int32_t>(n);
    rn.si = sens_.si(static_cast<netlist::NetId>(n));

    double le = 0.0;
    if (!net.pins.empty()) {
      const geom::PointF src = net.pins.front().pos;
      for (const netlist::Pin& p : net.pins) {
        const geom::Point region = grid_.region_of(p.pos);
        if (std::find(rn.pins.begin(), rn.pins.end(), region) == rn.pins.end()) {
          rn.pins.push_back(region);
        }
        le = std::max(le, geom::manhattan(src, p.pos));
      }
    }
    le_um_.push_back(std::max(le, pitch));
    rnets_.push_back(std::move(rn));
  }
}

RoutingProblem make_problem(const netlist::Netlist& design,
                            const netlist::SyntheticSpec& spec,
                            const GsinoParams& params) {
  grid::RegionGridSpec g;
  g.cols = spec.grid_cols;
  g.rows = spec.grid_rows;
  g.region_w_um = spec.chip_w_um / spec.grid_cols;
  g.region_h_um = spec.chip_h_um / spec.grid_rows;
  g.h_capacity = spec.h_capacity;
  g.v_capacity = spec.v_capacity;
  return RoutingProblem(design, g, params);
}

}  // namespace rlcr::gsino
