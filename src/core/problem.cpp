#include "core/problem.h"

#include <algorithm>

#include "util/hash.h"

namespace rlcr::gsino {

namespace {

/// See RoutingProblem::fingerprint(): everything routing/budgeting read.
std::uint64_t compute_fingerprint(const grid::RegionGrid& grid,
                                  const ktable::KeffParams& keff,
                                  const ktable::LskTable& table,
                                  const std::vector<router::RouterNet>& rnets,
                                  const std::vector<double>& le_um,
                                  const GsinoParams& params) {
  util::Fnv1a64 h;
  const grid::RegionGridSpec& g = grid.spec();
  h.i32(g.cols).i32(g.rows).f64(g.region_w_um).f64(g.region_h_um);
  h.i32(g.h_capacity).i32(g.v_capacity);
  h.u64(params.seed).f64(params.sensitivity_rate);
  h.f64(keff.decay_exponent).f64(keff.shield_attenuation);
  h.i32(keff.max_separation).f64(keff.scale);
  // The Keff profile is calibrated independently of the technology point
  // (see KeffModel), but fold the technology in anyway: over-keying on a
  // field that stops being inert only costs a cache miss, under-keying
  // would silently share artifacts across technologies.
  const circuit::Technology& t = params.tech;
  h.f64(t.vdd).f64(t.clock_hz).f64(t.rise_time_s);
  h.f64(t.wire_width_um).f64(t.wire_space_um).f64(t.wire_thickness_um);
  h.f64(t.dielectric_h_um).f64(t.eps_r).f64(t.resistivity_ohm_m);
  h.f64(t.driver_ohms).f64(t.load_farads);
  h.u64(table.size());
  for (const ktable::LskEntry& e : table.entries()) {
    h.f64(e.lsk).f64(e.voltage);
  }
  h.u64(rnets.size());
  for (const router::RouterNet& n : rnets) {
    h.i32(n.id).f64(n.si).u64(n.pins.size());
    for (const geom::Point p : n.pins) h.i32(p.x).i32(p.y);
  }
  for (const double le : le_um) h.f64(le);
  return h.value();
}

}  // namespace

RoutingProblem::RoutingProblem(const netlist::Netlist& design,
                               const grid::RegionGridSpec& gspec,
                               const GsinoParams& params)
    : params_(params),
      grid_(gspec),
      sens_(design.net_count(), params.sensitivity_rate, params.seed),
      keff_(params.keff, params.tech),
      table_(ktable::LskTable::default_table()),
      nss_() {
  rnets_.reserve(design.net_count());
  le_um_.reserve(design.net_count());
  const double pitch =
      std::min(grid_.region_w_um(), grid_.region_h_um());

  for (std::size_t n = 0; n < design.net_count(); ++n) {
    const netlist::Net& net = design.net(static_cast<netlist::NetId>(n));
    router::RouterNet rn;
    rn.id = static_cast<std::int32_t>(n);
    rn.si = sens_.si(static_cast<netlist::NetId>(n));

    double le = 0.0;
    if (!net.pins.empty()) {
      const geom::PointF src = net.pins.front().pos;
      for (const netlist::Pin& p : net.pins) {
        const geom::Point region = grid_.region_of(p.pos);
        if (std::find(rn.pins.begin(), rn.pins.end(), region) == rn.pins.end()) {
          rn.pins.push_back(region);
        }
        le = std::max(le, geom::manhattan(src, p.pos));
      }
    }
    le_um_.push_back(std::max(le, pitch));
    rnets_.push_back(std::move(rn));
  }
  fingerprint_ = compute_fingerprint(grid_, params_.keff, table_, rnets_,
                                     le_um_, params_);
}

RoutingProblem make_problem(const netlist::Netlist& design,
                            const netlist::SyntheticSpec& spec,
                            const GsinoParams& params) {
  grid::RegionGridSpec g;
  g.cols = spec.grid_cols;
  g.rows = spec.grid_rows;
  g.region_w_um = spec.chip_w_um / spec.grid_cols;
  g.region_h_um = spec.chip_h_um / spec.grid_rows;
  g.h_capacity = spec.h_capacity;
  g.v_capacity = spec.v_capacity;
  return RoutingProblem(design, g, params);
}

}  // namespace rlcr::gsino
