#include "core/problem.h"

#include <algorithm>

#include "util/hash.h"

namespace rlcr::gsino {

namespace {

/// See RoutingProblem::fingerprint(): everything routing/budgeting read.
std::uint64_t compute_fingerprint(const grid::RegionGrid& grid,
                                  const ktable::KeffParams& keff,
                                  const ktable::LskTable& table,
                                  const std::vector<router::RouterNet>& rnets,
                                  const std::vector<double>& le_um,
                                  const GsinoParams& params) {
  util::Fnv1a64 h;
  const grid::RegionGridSpec& g = grid.spec();
  h.i32(g.cols).i32(g.rows).f64(g.region_w_um).f64(g.region_h_um);
  h.i32(g.h_capacity).i32(g.v_capacity);
  h.u64(params.seed).f64(params.sensitivity_rate);
  h.f64(keff.decay_exponent).f64(keff.shield_attenuation);
  h.i32(keff.max_separation).f64(keff.scale);
  // The Keff profile is calibrated independently of the technology point
  // (see KeffModel), but fold the technology in anyway: over-keying on a
  // field that stops being inert only costs a cache miss, under-keying
  // would silently share artifacts across technologies.
  const circuit::Technology& t = params.tech;
  h.f64(t.vdd).f64(t.clock_hz).f64(t.rise_time_s);
  h.f64(t.wire_width_um).f64(t.wire_space_um).f64(t.wire_thickness_um);
  h.f64(t.dielectric_h_um).f64(t.eps_r).f64(t.resistivity_ohm_m);
  h.f64(t.driver_ohms).f64(t.load_farads);
  h.u64(table.size());
  for (const ktable::LskEntry& e : table.entries()) {
    h.f64(e.lsk).f64(e.voltage);
  }
  h.u64(rnets.size());
  for (const router::RouterNet& n : rnets) {
    h.i32(n.id).f64(n.si).u64(n.pins.size());
    for (const geom::Point p : n.pins) h.i32(p.x).i32(p.y);
  }
  for (const double le : le_um) h.f64(le);
  return h.value();
}

/// The one per-net derivation both the constructor and with_pin_updates
/// use: region pins deduplicated in encounter order, Le = the largest
/// source-to-sink Manhattan distance floored at one region pitch.
void derive_net_geometry(const grid::RegionGrid& grid, double pitch,
                         const std::vector<geom::PointF>& pins,
                         router::RouterNet& rn, double& le_um) {
  rn.pins.clear();
  double le = 0.0;
  if (!pins.empty()) {
    const geom::PointF src = pins.front();
    for (const geom::PointF& pos : pins) {
      const geom::Point region = grid.region_of(pos);
      if (std::find(rn.pins.begin(), rn.pins.end(), region) == rn.pins.end()) {
        rn.pins.push_back(region);
      }
      le = std::max(le, geom::manhattan(src, pos));
    }
  }
  le_um = std::max(le, pitch);
}

}  // namespace

RoutingProblem::RoutingProblem(const netlist::Netlist& design,
                               const grid::RegionGridSpec& gspec,
                               const GsinoParams& params)
    : params_(params),
      grid_(gspec),
      sens_(design.net_count(), params.sensitivity_rate, params.seed),
      keff_(params.keff, params.tech),
      table_(ktable::LskTable::default_table()),
      nss_() {
  rnets_.reserve(design.net_count());
  le_um_.reserve(design.net_count());
  const double pitch =
      std::min(grid_.region_w_um(), grid_.region_h_um());

  std::vector<geom::PointF> positions;
  for (std::size_t n = 0; n < design.net_count(); ++n) {
    const netlist::Net& net = design.net(static_cast<netlist::NetId>(n));
    router::RouterNet rn;
    rn.id = static_cast<std::int32_t>(n);
    rn.si = sens_.si(static_cast<netlist::NetId>(n));

    positions.clear();
    for (const netlist::Pin& p : net.pins) positions.push_back(p.pos);
    double le = 0.0;
    derive_net_geometry(grid_, pitch, positions, rn, le);
    le_um_.push_back(le);
    rnets_.push_back(std::move(rn));
  }
  fingerprint_ = compute_fingerprint(grid_, params_.keff, table_, rnets_,
                                     le_um_, params_);
}

RoutingProblem RoutingProblem::with_pin_updates(
    const std::vector<PinUpdate>& updates) const {
  RoutingProblem p = *this;
  const double pitch = std::min(p.grid_.region_w_um(), p.grid_.region_h_um());

  // Any slot index at or beyond the current count appends (kAppend is the
  // canonical spelling). Appends are counted up front so the sensitivity
  // model is rebuilt once at the final count; its per-net draws are
  // index-stable, so every existing S_i keeps its value.
  const std::size_t original = p.rnets_.size();
  std::size_t appends = 0;
  for (const PinUpdate& u : updates) {
    if (u.net >= original) ++appends;
  }
  if (appends > 0) {
    const std::size_t final_count = original + appends;
    p.sens_ = netlist::SensitivityModel(final_count, p.params_.sensitivity_rate,
                                        p.params_.seed);
    p.rnets_.reserve(final_count);
    p.le_um_.reserve(final_count);
  }

  for (const PinUpdate& u : updates) {
    std::size_t slot = u.net;
    if (slot >= original) {
      slot = p.rnets_.size();
      router::RouterNet rn;
      rn.id = static_cast<std::int32_t>(slot);
      rn.si = p.sens_.si(static_cast<netlist::NetId>(slot));
      p.rnets_.push_back(std::move(rn));
      p.le_um_.push_back(0.0);
    }
    derive_net_geometry(p.grid_, pitch, u.pins, p.rnets_[slot],
                        p.le_um_[slot]);
  }

  p.fingerprint_ = compute_fingerprint(p.grid_, p.params_.keff, p.table_,
                                       p.rnets_, p.le_um_, p.params_);
  return p;
}

RoutingProblem make_problem(const netlist::Netlist& design,
                            const netlist::SyntheticSpec& spec,
                            const GsinoParams& params) {
  grid::RegionGridSpec g;
  g.cols = spec.grid_cols;
  g.rows = spec.grid_rows;
  g.region_w_um = spec.chip_w_um / spec.grid_cols;
  g.region_h_um = spec.chip_h_um / spec.grid_rows;
  g.h_capacity = spec.h_capacity;
  g.v_capacity = spec.v_capacity;
  return RoutingProblem(design, g, params);
}

}  // namespace rlcr::gsino
