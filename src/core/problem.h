// Problem assembly: bundles a placed netlist with the routing fabric,
// sensitivity model, Keff/LSK models, and flow parameters into the single
// object the flows consume.
#pragma once

#include <memory>
#include <vector>

#include "core/params.h"
#include "grid/region_grid.h"
#include "ktable/lsk_table.h"
#include "netlist/netlist.h"
#include "netlist/sensitivity.h"
#include "netlist/synthetic.h"
#include "router/route_types.h"
#include "sino/nss.h"

namespace rlcr::gsino {

/// One slot-preserving net mutation for RoutingProblem::with_pin_updates.
/// `net < net_count()` replaces that slot's pins in place (empty `pins`
/// removes the net: the slot stays, routes nothing, and every other net
/// keeps its index); `net == kAppend` appends a new slot at the end. Slot
/// preservation is what keeps the incremental-delta machinery
/// (src/scenario) bit-identical to a from-scratch build: per-net
/// sensitivities S_i are drawn index-stably, pairwise sensitivity is a
/// pure function of (seed, i, j), and the Phase II annealing stream seeds
/// key on net indices — shifting indices would perturb every unrelated
/// net.
struct PinUpdate {
  static constexpr std::size_t kAppend = static_cast<std::size_t>(-1);
  std::size_t net = kAppend;
  std::vector<geom::PointF> pins;  ///< physical pin positions; [0] = source
};

class RoutingProblem {
 public:
  RoutingProblem(const netlist::Netlist& design, const grid::RegionGridSpec& gspec,
                 const GsinoParams& params);

  const GsinoParams& params() const { return params_; }
  const grid::RegionGrid& grid() const { return grid_; }
  const netlist::SensitivityModel& sensitivity() const { return sens_; }
  const ktable::KeffModel& keff() const { return keff_; }
  const ktable::LskTable& lsk_table() const { return table_; }
  const sino::NssModel& nss() const { return nss_; }

  /// Router-facing nets, parallel to the design's net list.
  const std::vector<router::RouterNet>& router_nets() const { return rnets_; }

  /// Per-net budgeting length Le (um): the largest source-to-sink Manhattan
  /// distance (the "min over sinks on common paths" rule of Section 3.1
  /// applied net-wide). Floored at one region pitch.
  const std::vector<double>& le_um() const { return le_um_; }

  std::size_t net_count() const { return rnets_.size(); }

  /// Stable 64-bit identity of everything Phase I routing and budgeting
  /// read from this problem: grid spec, every router net (id, pins, S_i),
  /// Le, the LSK table, the Keff parameters, the master seed, and the
  /// sensitivity rate (the pairwise sensitivity graph is a pure function
  /// of net count, rate, and seed). Two problems with equal fingerprints
  /// produce bit-identical routing and budget artifacts, which is what
  /// lets the persistent artifact store (src/store) warm-start a fresh
  /// process from another session's saved artifacts. Computed once at
  /// construction (util/hash.h folds little-endian, so the value is
  /// platform-stable and safe to use in on-disk cache keys).
  std::uint64_t fingerprint() const { return fingerprint_; }

  /// A copy of this problem with the given slot-preserving net mutations
  /// applied (see PinUpdate). Per-net derived data (region pins, Le) is
  /// recomputed through the constructor's own derivation for exactly the
  /// touched slots; the sensitivity model is rebuilt at the new net count
  /// (index-stable: existing S_i values are unchanged). The fingerprint is
  /// recomputed, so caches and the persistent store key the mutated
  /// problem as a distinct identity.
  RoutingProblem with_pin_updates(const std::vector<PinUpdate>& updates) const;

 private:
  GsinoParams params_;
  grid::RegionGrid grid_;
  netlist::SensitivityModel sens_;
  ktable::KeffModel keff_;
  ktable::LskTable table_;
  sino::NssModel nss_;
  std::vector<router::RouterNet> rnets_;
  std::vector<double> le_um_;
  std::uint64_t fingerprint_ = 0;
};

/// Convenience: build the grid spec and problem straight from a synthetic
/// benchmark spec (grid shape / capacities come with the spec).
RoutingProblem make_problem(const netlist::Netlist& design,
                            const netlist::SyntheticSpec& spec,
                            const GsinoParams& params);

}  // namespace rlcr::gsino
