#include "core/refine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "sino/evaluator.h"

namespace rlcr::gsino {

namespace {

/// Instance-net position of a global net inside a region solution, or -1.
std::ptrdiff_t find_member(const RegionSolution& sol, std::size_t net) {
  for (std::size_t i = 0; i < sol.net_index.size(); ++i) {
    if (sol.net_index[i] == net) return static_cast<std::ptrdiff_t>(i);
  }
  return -1;
}

}  // namespace

RefineStats LocalRefiner::refine(FlowResult& fr) const {
  RefineStats stats;
  eliminate_violations(fr, stats);
  reduce_congestion(fr, stats);
  refresh_noise(fr, *problem_);
  return stats;
}

void LocalRefiner::eliminate_violations(FlowResult& fr, RefineStats& stats) const {
  const RoutingProblem& p = *problem_;
  const auto& params = p.params();
  std::unordered_set<std::size_t> gave_up;

  for (int outer = 0; outer < params.lr_max_outer_pass1; ++outer) {
    // Net with the most severe violation.
    std::size_t worst = 0;
    double worst_noise = fr.bound_v + 1e-9;
    bool found = false;
    for (std::size_t n = 0; n < fr.net_noise.size(); ++n) {
      if (gave_up.count(n)) continue;
      if (fr.net_noise[n] > worst_noise) {
        worst_noise = fr.net_noise[n];
        worst = n;
        found = true;
      }
    }
    if (!found) break;

    const double lsk_budget = p.lsk_table().lsk_budget(fr.bound_v);
    bool fixed = false;
    for (int inner = 0; inner < params.lr_max_inner_pass1; ++inner) {
      // Least congested (region, dir) the net crosses where it still has
      // coupling worth removing.
      const auto& refs = fr.occupancy->net_refs(worst);
      double best_density = std::numeric_limits<double>::infinity();
      std::size_t best_sol = 0;
      std::size_t best_member = 0;
      double best_len = 0.0;
      bool have = false;
      for (const router::NetRegionRef& ref : refs) {
        const std::size_t si = fr.sol_index(ref.region, ref.dir);
        const RegionSolution& cand = fr.solutions[si];
        if (cand.empty()) continue;
        const std::ptrdiff_t m = find_member(cand, worst);
        if (m < 0) continue;
        const auto cmi = static_cast<std::size_t>(m);
        // Skip regions off the net's critical path, with negligible
        // contribution, or whose bound has bottomed out.
        const double contribution = cand.path_len_mm[cmi] * cand.ki[cmi];
        if (contribution < 1e-6 || cand.instance.net(cmi).kth <= 2e-6) continue;
        const double dens = solution_density(fr, p, si);
        if (dens < best_density) {
          best_density = dens;
          best_sol = si;
          best_member = cmi;
          best_len = cand.path_len_mm[cmi];
          have = true;
        }
      }
      if (!have) break;

      RegionSolution& sol = fr.solutions[best_sol];
      const auto mi = best_member;

      // Tighten the bound so the re-solve must add shielding (Fig. 2:
      // "decrease Kth ... by allowing one more shield"). The target removes
      // the whole remaining excess from this region when it can, otherwise
      // drives this region's contribution to (almost) nothing and the next
      // iteration moves on to another region.
      const double excess = fr.net_lsk[worst] - lsk_budget;
      const double contribution = sol.path_len_mm[mi] * sol.ki[mi];
      const double target_contribution = contribution - 1.1 * excess;
      sino::SinoNet& snet = sol.instance.net(mi);
      const double targeted =
          best_len > 0.0 ? target_contribution / best_len : 0.0;
      snet.kth = std::clamp(std::min(targeted, snet.kth * params.lr_kth_shrink),
                            1e-6, snet.kth);

      resolve_region(fr, p, best_sol, /*allow_anneal=*/true);
      ++stats.pass1_resolves;

      if (fr.net_noise[worst] <= fr.bound_v + 1e-9) {
        fixed = true;
        break;
      }
    }

    if (fixed) {
      ++stats.pass1_nets_fixed;
    } else {
      gave_up.insert(worst);
      ++stats.pass1_gave_up;
    }
  }
  fr.unfixable = gave_up.size();
  refresh_noise(fr, p);
}

void LocalRefiner::reduce_congestion(FlowResult& fr, RefineStats& stats) const {
  const RoutingProblem& p = *problem_;
  const auto& params = p.params();
  const double lsk_budget = p.lsk_table().lsk_budget(fr.bound_v);
  std::unordered_set<std::size_t> done;

  for (int outer = 0; outer < params.lr_max_outer_pass2; ++outer) {
    // Most congested solution with at least one shield.
    double worst_density = 0.0;
    std::size_t pick = 0;
    bool found = false;
    for (std::size_t si = 0; si < fr.solutions.size(); ++si) {
      if (done.count(si) || fr.solutions[si].empty()) continue;
      if (fr.congestion->shields(si / 2, static_cast<grid::Dir>(si % 2)) < 1.0) {
        continue;
      }
      const double dens = solution_density(fr, p, si);
      if (dens > worst_density) {
        worst_density = dens;
        pick = si;
        found = true;
      }
    }
    if (!found) break;

    RegionSolution& sol = fr.solutions[pick];

    // Snapshot for revert.
    const RegionSolution backup = sol;
    std::vector<double> lsk_backup, noise_backup;
    lsk_backup.reserve(sol.net_index.size());
    noise_backup.reserve(sol.net_index.size());
    for (std::size_t n : sol.net_index) {
      lsk_backup.push_back(fr.net_lsk[n]);
      noise_backup.push_back(fr.net_noise[n]);
    }
    const double shields_before =
        fr.congestion->shields(pick / 2, static_cast<grid::Dir>(pick % 2));

    // Loosen Kth of each member net by (most of) its noise-slack converted
    // to a per-mm coupling allowance (Fig. 2 pass 2 inner loop). A net
    // whose critical path does not run through this region tolerates any
    // coupling here; give it generous headroom.
    for (std::size_t i = 0; i < sol.net_index.size(); ++i) {
      const std::size_t n = sol.net_index[i];
      sino::SinoNet& snet = sol.instance.net(i);
      const double ki_now = i < sol.ki.size() ? sol.ki[i] : 0.0;
      if (sol.path_len_mm[i] <= 0.0) {
        snet.kth = std::max(snet.kth, 3.0 * (ki_now + 1.0));
        continue;
      }
      const double slack_lsk = lsk_budget - fr.net_lsk[n];
      if (slack_lsk <= 0.0) continue;
      const double dk = 0.9 * slack_lsk / sol.path_len_mm[i];
      snet.kth = std::max(snet.kth, ki_now + dk);
    }

    resolve_region(fr, p, pick, /*allow_anneal=*/false);

    const double shields_after =
        fr.congestion->shields(pick / 2, static_cast<grid::Dir>(pick % 2));
    bool ok = shields_after < shields_before;
    if (ok) {
      for (std::size_t n : sol.net_index) {
        if (fr.net_noise[n] > fr.bound_v + 1e-9) {
          ok = false;
          break;
        }
      }
    }

    if (ok) {
      stats.pass2_shields_removed +=
          static_cast<int>(shields_before - shields_after);
      ++stats.pass2_accepted;
      // Stay eligible: more slack may be harvestable here. Termination is
      // still guaranteed because every acceptance removes at least one
      // shield and the total shield count is finite.
    } else {
      // Revert.
      sol = backup;
      for (std::size_t i = 0; i < sol.net_index.size(); ++i) {
        fr.net_lsk[sol.net_index[i]] = lsk_backup[i];
        fr.net_noise[sol.net_index[i]] = noise_backup[i];
      }
      fr.congestion->set_shields(pick / 2, static_cast<grid::Dir>(pick % 2),
                                 shields_before);
      ++stats.pass2_rejected;
      done.insert(pick);
    }
  }
}

}  // namespace rlcr::gsino
