#include "core/refine.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <unordered_set>
#include <utility>
#include <vector>

#include "obs/trace.h"
#include "parallel/speculate.h"
#include "parallel/thread_pool.h"
#include "sino/anneal.h"
#include "util/stopwatch.h"
#include "sino/evaluator.h"
#include "sino/greedy.h"

namespace rlcr::gsino {

namespace {

/// Instance-net position of a global net inside a region solution, or -1.
std::ptrdiff_t find_member(const RegionSolution& sol, std::size_t net) {
  for (std::size_t i = 0; i < sol.net_index.size(); ++i) {
    if (sol.net_index[i] == net) return static_cast<std::ptrdiff_t>(i);
  }
  return -1;
}

/// Snapshot of one region's state, for accept/reject reverts.
struct RegionBackup {
  std::size_t sol_index = 0;
  RegionSolution solution;
  std::vector<double> lsk, noise;  ///< per member net
  double shields_before = 0.0;
};

RegionBackup snapshot(const FlowState& fs, std::size_t si) {
  RegionBackup b;
  b.sol_index = si;
  b.solution = fs.solutions[si];
  b.lsk.reserve(b.solution.net_index.size());
  b.noise.reserve(b.solution.net_index.size());
  for (std::size_t n : b.solution.net_index) {
    b.lsk.push_back(fs.net_lsk[n]);
    b.noise.push_back(fs.net_noise[n]);
  }
  b.shields_before = fs.congestion->shields(sol_region(si), sol_dir(si));
  return b;
}

void restore(FlowState& fs, const RegionBackup& b) {
  fs.solutions[b.sol_index] = b.solution;
  const RegionSolution& sol = fs.solutions[b.sol_index];
  for (std::size_t i = 0; i < sol.net_index.size(); ++i) {
    fs.net_lsk[sol.net_index[i]] = b.lsk[i];
    fs.net_noise[sol.net_index[i]] = b.noise[i];
  }
  fs.congestion->set_shields(sol_region(b.sol_index), sol_dir(b.sol_index),
                             b.shields_before);
}

/// Pass 2's Kth loosening: convert each member net's noise slack into a
/// per-mm coupling allowance (Fig. 2 pass 2 inner loop). A net whose
/// critical path does not run through this region tolerates any coupling
/// here; give it generous headroom.
void loosen_kth(FlowState& fs, std::size_t si, double lsk_budget) {
  RegionSolution& sol = fs.solutions[si];
  for (std::size_t i = 0; i < sol.net_index.size(); ++i) {
    const std::size_t n = sol.net_index[i];
    sino::SinoNet& snet = sol.instance.net(i);
    const double ki_now = i < sol.ki.size() ? sol.ki[i] : 0.0;
    if (sol.path_len_mm[i] <= 0.0) {
      snet.kth = std::max(snet.kth, 3.0 * (ki_now + 1.0));
      continue;
    }
    const double slack_lsk = lsk_budget - fs.net_lsk[n];
    if (slack_lsk <= 0.0) continue;
    const double dk = 0.9 * slack_lsk / sol.path_len_mm[i];
    snet.kth = std::max(snet.kth, ki_now + dk);
  }
}

/// Accept iff the re-solve removed at least one shield and no member net
/// violates the bound.
bool accepted(const FlowState& fs, const RegionBackup& b) {
  const double shields_after =
      fs.congestion->shields(sol_region(b.sol_index), sol_dir(b.sol_index));
  if (shields_after >= b.shields_before) return false;
  for (std::size_t n : fs.solutions[b.sol_index].net_index) {
    if (fs.net_noise[n] > fs.bound_v + 1e-9) return false;
  }
  return true;
}

// ------------------------------------------------------- pass-1 speculation
//
// One pass-1 "fix attempt" (the Fig. 2 inner loop for one violating net)
// reads per-region state (solutions, their Kth values, shield counts) and
// per-net state (LSK, noise), and commits re-solves of the regions it
// tightens. attempt_fix below is that inner loop verbatim, templated over a
// state view so the identical code drives both executions:
//
//   - DirectView: the serial path — accessors forward to the FlowState and
//     resolve() is FlowState::resolve_region. Byte-for-byte the historical
//     behavior.
//   - SpecView: the speculative path — reads fall through to the frozen
//     snapshot and are recorded with version stamps (parallel/speculate.h
//     ReadSet); writes land in copy-on-write overlays, and resolve()
//     replicates resolve_region + commit_region operation for operation
//     (same solver calls, same annealing stream, same floating-point op
//     order). An overlay whose read set is untouched at commit time is
//     therefore bit-identical to the serial attempt it memoized.

/// What one fix attempt concluded (mirrors the historical loop's locals).
struct FixOutcome {
  bool fixed = false;
  int resolves = 0;
};

/// Serial view: forwards to the live FlowState; `resolved` records the
/// regions re-solved so the caller can advance the version counters.
class DirectView {
 public:
  explicit DirectView(FlowState& fs) : fs_(&fs) {}

  const RegionSolution& sol(std::size_t si) { return fs_->solutions[si]; }
  RegionSolution& sol_mut(std::size_t si) { return fs_->solutions[si]; }
  double density(std::size_t si) { return fs_->solution_density(si); }
  double lsk(std::size_t n) { return fs_->net_lsk[n]; }
  double noise(std::size_t n) { return fs_->net_noise[n]; }
  void resolve(std::size_t si) {
    fs_->resolve_region(si, /*allow_anneal=*/true);
    resolved.push_back(si);
  }

  std::vector<std::size_t> resolved;

 private:
  FlowState* fs_;
};

/// Small copy-on-write overlay keyed by index. Linear scans keep lookups
/// allocation-free and the apply order deterministic (insertion order);
/// attempts touch a handful of regions/nets, far below hash-map break-even.
template <typename T>
T* find_overlay(std::vector<std::pair<std::size_t, T>>& v, std::size_t key) {
  for (auto& kv : v) {
    if (kv.first == key) return &kv.second;
  }
  return nullptr;
}

/// Speculative view over a frozen FlowState snapshot (see the header
/// comment above). Safe to evaluate concurrently with other SpecViews:
/// shared state is read-only during the evaluation phase, and every write
/// lands in this view's own overlays.
class SpecView {
 public:
  SpecView(const FlowState& fs, const std::vector<std::uint32_t>& sol_ver,
           const std::vector<std::uint32_t>& net_ver)
      : fs_(&fs), sol_ver_(&sol_ver), net_ver_(&net_ver) {}

  const RegionSolution& sol(std::size_t si) {
    record_sol(si);
    if (const RegionSolution* o = find_overlay(sols_, si)) return *o;
    return fs_->solutions[si];
  }
  RegionSolution& sol_mut(std::size_t si) {
    record_sol(si);
    if (RegionSolution* o = find_overlay(sols_, si)) return *o;
    sols_.emplace_back(si, fs_->solutions[si]);
    return sols_.back().second;
  }
  double density(std::size_t si) {
    record_sol(si);
    // Same op order as CongestionMap::density(): (segments + shields),
    // then the divide by capacity.
    const std::size_t r = sol_region(si);
    const grid::Dir d = sol_dir(si);
    const double* sh = find_overlay(shields_, si);
    const double shields =
        sh != nullptr ? *sh : fs_->congestion->shields(r, d);
    return (fs_->congestion->segments(r, d) + shields) /
           fs_->problem->grid().capacity(d);
  }
  double lsk(std::size_t n) {
    record_net(n);
    const double* o = find_overlay(lsk_, n);
    return o != nullptr ? *o : fs_->net_lsk[n];
  }
  double noise(std::size_t n) {
    record_net(n);
    const double* o = find_overlay(noise_, n);
    return o != nullptr ? *o : fs_->net_noise[n];
  }

  /// FlowState::resolve_region + commit_region, replicated on the
  /// overlays: same greedy/anneal sequence (per-region annealing stream
  /// seed included), then the exact commit arithmetic against the
  /// overlaid LSK/noise/shield values.
  void resolve(std::size_t si) {
    RegionSolution& sol = sol_mut(si);
    if (sol.empty()) return;
    const util::Stopwatch watch;
    const RoutingProblem& p = *fs_->problem;
    const auto& keff = p.keff();
    ktable::SlotVec slots = sino::solve_greedy(sol.instance, keff);
    const sino::SinoEvaluator check_eval(sol.instance, keff);
    if (!check_eval.check(slots).feasible()) {
      sino::AnnealOptions ao;
      ao.seed = region_resolve_seed(p, si);
      ao.iterations = p.params().anneal_iterations;
      auto best = sino::solve_anneal(sol.instance, keff, ao);
      if (best.feasible) slots = std::move(best.slots);
    }
    const sino::SinoEvaluator eval(sol.instance, keff);
    std::vector<double> ki = eval.all_ki(slots);

    for (std::size_t i = 0; i < sol.net_index.size(); ++i) {
      if (i < sol.ki.size()) {
        set_lsk(sol.net_index[i],
                lsk(sol.net_index[i]) - sol.path_len_mm[i] * sol.ki[i]);
      }
    }
    sol.slots = std::move(slots);
    sol.ki = std::move(ki);
    for (std::size_t i = 0; i < sol.net_index.size(); ++i) {
      const std::size_t n = sol.net_index[i];
      set_lsk(n, lsk(n) + sol.path_len_mm[i] * sol.ki[i]);
      set_noise(n, p.lsk_table().voltage(lsk(n)));
    }
    set_shields(si, static_cast<double>(
                        sino::SinoEvaluator::shield_count(sol.slots)));
    resolve_order_.push_back(si);
    resolve_seconds_.push_back(watch.seconds());
  }

  /// True iff nothing this attempt read was touched by a commit since the
  /// snapshot — the proof its overlays equal a serial recompute.
  bool valid(const std::vector<std::uint32_t>& sol_ver,
             const std::vector<std::uint32_t>& net_ver) const {
    return sol_reads_.valid([&](std::uint64_t k) {
             return sol_ver[static_cast<std::size_t>(k)];
           }) &&
           net_reads_.valid([&](std::uint64_t k) {
             return net_ver[static_cast<std::size_t>(k)];
           });
  }

  /// Install the overlays into the live state and advance the version
  /// counters, emitting the same per-region progress events the serial
  /// re-solves would have. Solver time was spent on a worker, so each
  /// event carries the duration measured there at evaluation time — the
  /// re-solve really cost that long, just off the committing thread.
  void apply(FlowState& fs, std::vector<std::uint32_t>& sol_ver,
             std::vector<std::uint32_t>& net_ver) {
    for (auto& [si, sol] : sols_) {
      fs.solutions[si] = std::move(sol);
      ++sol_ver[si];
    }
    for (const auto& [n, v] : lsk_) {
      fs.net_lsk[n] = v;
      ++net_ver[n];
    }
    for (const auto& [n, v] : noise_) fs.net_noise[n] = v;
    for (const auto& [si, v] : shields_) {
      fs.congestion->set_shields(sol_region(si), sol_dir(si), v);
    }
    if (fs.observer) {
      for (std::size_t i = 0; i < resolve_order_.size(); ++i) {
        fs.observer(StageEvent{Stage::kRefine, fs.kind, resolve_order_[i],
                               resolve_seconds_[i], false});
      }
    }
  }

 private:
  void record_sol(std::size_t si) {
    sol_reads_.record(si, (*sol_ver_)[si]);
  }
  void record_net(std::size_t n) { net_reads_.record(n, (*net_ver_)[n]); }
  void set_lsk(std::size_t n, double v) {
    if (double* o = find_overlay(lsk_, n)) {
      *o = v;
    } else {
      lsk_.emplace_back(n, v);
    }
  }
  void set_noise(std::size_t n, double v) {
    if (double* o = find_overlay(noise_, n)) {
      *o = v;
    } else {
      noise_.emplace_back(n, v);
    }
  }
  void set_shields(std::size_t si, double v) {
    if (double* o = find_overlay(shields_, si)) {
      *o = v;
    } else {
      shields_.emplace_back(si, v);
    }
  }

  const FlowState* fs_;
  const std::vector<std::uint32_t>* sol_ver_;
  const std::vector<std::uint32_t>* net_ver_;
  parallel::ReadSet sol_reads_, net_reads_;
  std::vector<std::pair<std::size_t, RegionSolution>> sols_;
  std::vector<std::pair<std::size_t, double>> lsk_, noise_, shields_;
  std::vector<std::size_t> resolve_order_;
  std::vector<double> resolve_seconds_;  ///< parallel to resolve_order_
};

/// The Fig. 2 pass-1 inner loop for one violating net, verbatim, over a
/// state view. Immutable inputs (occupancy, bound, index packing) read
/// straight off the FlowState; everything an earlier commit could change
/// goes through the view.
template <typename View>
FixOutcome attempt_fix(View& v, std::size_t worst, const FlowState& fs,
                       const GsinoParams& params, double lsk_budget) {
  FixOutcome out;
  for (int inner = 0; inner < params.lr_max_inner_pass1; ++inner) {
    // Least congested (region, dir) the net crosses where it still has
    // coupling worth removing.
    const auto& refs = fs.occupancy().net_refs(worst);
    double best_density = std::numeric_limits<double>::infinity();
    std::size_t best_sol = 0;
    std::size_t best_member = 0;
    double best_len = 0.0;
    bool have = false;
    for (const router::NetRegionRef& ref : refs) {
      const std::size_t si = fs.sol_index(ref.region, ref.dir);
      const RegionSolution& cand = v.sol(si);
      if (cand.empty()) continue;
      const std::ptrdiff_t m = find_member(cand, worst);
      if (m < 0) continue;
      const auto cmi = static_cast<std::size_t>(m);
      // Skip regions off the net's critical path, with negligible
      // contribution, or whose bound has bottomed out.
      const double contribution = cand.path_len_mm[cmi] * cand.ki[cmi];
      if (contribution < 1e-6 || cand.instance.net(cmi).kth <= 2e-6) continue;
      const double dens = v.density(si);
      if (dens < best_density) {
        best_density = dens;
        best_sol = si;
        best_member = cmi;
        best_len = cand.path_len_mm[cmi];
        have = true;
      }
    }
    if (!have) break;

    RegionSolution& sol = v.sol_mut(best_sol);
    const auto mi = best_member;

    // Tighten the bound so the re-solve must add shielding (Fig. 2:
    // "decrease Kth ... by allowing one more shield"). The target removes
    // the whole remaining excess from this region when it can, otherwise
    // drives this region's contribution to (almost) nothing and the next
    // iteration moves on to another region.
    const double excess = v.lsk(worst) - lsk_budget;
    const double contribution = sol.path_len_mm[mi] * sol.ki[mi];
    const double target_contribution = contribution - 1.1 * excess;
    sino::SinoNet& snet = sol.instance.net(mi);
    const double targeted =
        best_len > 0.0 ? target_contribution / best_len : 0.0;
    snet.kth = std::clamp(std::min(targeted, snet.kth * params.lr_kth_shrink),
                          1e-6, snet.kth);

    v.resolve(best_sol);
    ++out.resolves;

    if (v.noise(worst) <= fs.bound_v + 1e-9) {
      out.fixed = true;
      break;
    }
  }
  return out;
}

}  // namespace

RefineStats LocalRefiner::refine(FlowState& fs,
                                 const RefineOptions& options) const {
  RefineStats stats;
  eliminate_violations(fs, stats, options);
  if (options.batch_pass2) {
    reduce_congestion_batched(fs, stats, options);
  } else {
    reduce_congestion(fs, stats);
  }
  fs.refresh_noise();
  return stats;
}

void LocalRefiner::eliminate_violations(FlowState& fs, RefineStats& stats,
                                        const RefineOptions& options) const {
  RLCR_TRACE_SPAN(pass_span, "refine.pass1", "refine");
  const RoutingProblem& p = *problem_;
  const auto& params = p.params();
  const double lsk_budget = p.lsk_table().lsk_budget(fs.bound_v);
  std::unordered_set<std::size_t> gave_up;

  const int threads = parallel::resolve_threads(options.threads);
  // speculate_batch > 1 = fixed width, 0 = adaptive width, 1 or negative
  // = off (see RefineOptions::speculate_batch in core/session.h).
  const bool spec_on =
      (options.speculate_batch > 1 || options.speculate_batch == 0) &&
      threads > 1;
  const bool spec_adaptive = spec_on && options.speculate_batch == 0;
  parallel::AdaptiveBatch adaptive_batch;

  // Version counters for snapshot validation (spec only): sol_ver[si]
  // advances when region si's state (solution, Kth, shields) changes;
  // net_ver[n] when net n's LSK/noise does.
  std::vector<std::uint32_t> sol_ver, net_ver;
  if (spec_on) {
    sol_ver.assign(fs.solutions.size(), 0);
    net_ver.assign(fs.net_noise.size(), 0);
  }

  // Net with the most severe violation (strict >, so the lowest index wins
  // ties — the historical scan).
  auto pick_worst = [&](std::size_t& worst) {
    double worst_noise = fs.bound_v + 1e-9;
    bool found = false;
    for (std::size_t n = 0; n < fs.net_noise.size(); ++n) {
      if (gave_up.count(n)) continue;
      if (fs.net_noise[n] > worst_noise) {
        worst_noise = fs.net_noise[n];
        worst = n;
        found = true;
      }
    }
    return found;
  };

  // One serial fix attempt on the live state — the historical outer-step
  // body. Advances the version counters over whatever it re-solved.
  auto run_serial = [&](std::size_t worst) {
    DirectView v(fs);
    const FixOutcome out = attempt_fix(v, worst, fs, params, lsk_budget);
    stats.pass1_resolves += out.resolves;
    if (spec_on) {
      for (const std::size_t si : v.resolved) {
        ++sol_ver[si];
        for (const std::size_t n : fs.solutions[si].net_index) ++net_ver[n];
      }
    }
    return out.fixed;
  };

  auto finish = [&](std::size_t worst, bool fixed) {
    if (fixed) {
      ++stats.pass1_nets_fixed;
    } else {
      gave_up.insert(worst);
      ++stats.pass1_gave_up;
    }
  };

  int outer = 0;
  if (!spec_on) {
    for (; outer < params.lr_max_outer_pass1; ++outer) {
      std::size_t worst = 0;
      if (!pick_worst(worst)) break;
      finish(worst, run_serial(worst));
    }
    fs.unfixable = gave_up.size();
    fs.refresh_noise();
    return;
  }

  // Speculative rounds: snapshot the k worst violators, evaluate their fix
  // attempts concurrently, then run the UNCHANGED serial order — pick the
  // worst net off the live state, consume its memoized attempt if the read
  // set survived earlier commits, replay it serially otherwise. The first
  // committed step of every round is by construction the net the serial
  // pass would have picked, so progress is guaranteed regardless of how
  // much speculation invalidates.
  bool exhausted = false;
  while (!exhausted && outer < params.lr_max_outer_pass1) {
    // Candidates in the serial pick order: noise descending, index
    // ascending on ties (stable sort over the ascending-index scan).
    std::vector<std::size_t> cand;
    for (std::size_t n = 0; n < fs.net_noise.size(); ++n) {
      if (gave_up.count(n)) continue;
      if (fs.net_noise[n] > fs.bound_v + 1e-9) cand.push_back(n);
    }
    if (cand.empty()) break;
    std::stable_sort(cand.begin(), cand.end(),
                     [&](std::size_t a, std::size_t b) {
                       return fs.net_noise[a] > fs.net_noise[b];
                     });
    const std::size_t width = static_cast<std::size_t>(
        spec_adaptive ? adaptive_batch.width() : options.speculate_batch);
    const std::size_t k =
        std::min({cand.size(), width,
                  static_cast<std::size_t>(params.lr_max_outer_pass1 - outer)});
    cand.resize(k);
    const auto round_before = parallel::SpecStats{
        static_cast<std::size_t>(stats.spec_attempted),
        static_cast<std::size_t>(stats.spec_committed),
        static_cast<std::size_t>(stats.spec_replayed)};

    std::vector<SpecView> views;
    views.reserve(k);
    for (std::size_t i = 0; i < k; ++i) {
      views.emplace_back(fs, sol_ver, net_ver);
    }
    std::vector<FixOutcome> outs(k);
    stats.spec_attempted += static_cast<int>(k);
    {
      RLCR_TRACE_SPAN(spec_span, "refine.spec_round", "refine");
      spec_span.arg("batch", static_cast<double>(k));
      parallel::speculate(k, threads, [&](std::size_t i, int) {
        outs[i] = attempt_fix(views[i], cand[i], fs, params, lsk_budget);
      });
    }

    std::vector<char> used(k, 0);
    for (std::size_t step = 0;
         step < k && outer < params.lr_max_outer_pass1; ++step) {
      std::size_t worst = 0;
      if (!pick_worst(worst)) {
        exhausted = true;
        break;
      }
      std::ptrdiff_t hit = -1;
      for (std::size_t i = 0; i < k; ++i) {
        if (!used[i] && cand[i] == worst) {
          hit = static_cast<std::ptrdiff_t>(i);
          break;
        }
      }
      bool fixed;
      if (hit >= 0) {
        const auto hi = static_cast<std::size_t>(hit);
        used[hi] = 1;
        if (views[hi].valid(sol_ver, net_ver)) {
          views[hi].apply(fs, sol_ver, net_ver);
          stats.pass1_resolves += outs[hi].resolves;
          ++stats.spec_committed;
          fixed = outs[hi].fixed;
        } else {
          ++stats.spec_replayed;
          fixed = run_serial(worst);
        }
      } else {
        fixed = run_serial(worst);
      }
      finish(worst, fixed);
      ++outer;
    }
    if (spec_adaptive) {
      adaptive_batch.update(parallel::SpecStats{
          static_cast<std::size_t>(stats.spec_attempted) -
              round_before.attempted,
          static_cast<std::size_t>(stats.spec_committed) -
              round_before.committed,
          static_cast<std::size_t>(stats.spec_replayed) -
              round_before.replayed});
    }
  }
  fs.unfixable = gave_up.size();
  fs.refresh_noise();
}

void LocalRefiner::reduce_congestion(FlowState& fs, RefineStats& stats) const {
  RLCR_TRACE_SPAN(pass_span, "refine.pass2", "refine");
  const RoutingProblem& p = *problem_;
  const auto& params = p.params();
  const double lsk_budget = p.lsk_table().lsk_budget(fs.bound_v);
  std::unordered_set<std::size_t> done;

  for (int outer = 0; outer < params.lr_max_outer_pass2; ++outer) {
    // Most congested solution with at least one shield.
    double worst_density = 0.0;
    std::size_t pick = 0;
    bool found = false;
    for (std::size_t si = 0; si < fs.solutions.size(); ++si) {
      if (done.count(si) || fs.solutions[si].empty()) continue;
      if (fs.congestion->shields(sol_region(si), sol_dir(si)) < 1.0) {
        continue;
      }
      const double dens = fs.solution_density(si);
      if (dens > worst_density) {
        worst_density = dens;
        pick = si;
        found = true;
      }
    }
    if (!found) break;

    const RegionBackup backup = snapshot(fs, pick);
    loosen_kth(fs, pick, lsk_budget);
    fs.resolve_region(pick, /*allow_anneal=*/false);

    if (accepted(fs, backup)) {
      const double shields_after =
          fs.congestion->shields(sol_region(pick), sol_dir(pick));
      stats.pass2_shields_removed +=
          static_cast<int>(backup.shields_before - shields_after);
      ++stats.pass2_accepted;
      // Stay eligible: more slack may be harvestable here. Termination is
      // still guaranteed because every acceptance removes at least one
      // shield and the total shield count is finite.
    } else {
      restore(fs, backup);
      ++stats.pass2_rejected;
      done.insert(pick);
    }
  }
}

void LocalRefiner::reduce_congestion_batched(FlowState& fs, RefineStats& stats,
                                             const RefineOptions& options) const {
  RLCR_TRACE_SPAN(pass_span, "refine.pass2_batched", "refine");
  const RoutingProblem& p = *problem_;
  const auto& params = p.params();
  const double lsk_budget = p.lsk_table().lsk_budget(fs.bound_v);
  std::unordered_set<std::size_t> done;
  std::vector<char> net_claimed(p.net_count(), 0);

  int regions_processed = 0;
  while (regions_processed < params.lr_max_outer_pass2) {
    // Eligible regions by descending density (index ascending on ties —
    // selection is a pure function of the current state).
    std::vector<std::size_t> eligible;
    for (std::size_t si = 0; si < fs.solutions.size(); ++si) {
      if (done.count(si) || fs.solutions[si].empty()) continue;
      if (fs.congestion->shields(sol_region(si), sol_dir(si)) < 1.0) {
        continue;
      }
      eligible.push_back(si);
    }
    std::stable_sort(eligible.begin(), eligible.end(),
                     [&](std::size_t a, std::size_t b) {
                       return fs.solution_density(a) > fs.solution_density(b);
                     });

    // Greedy maximal net-disjoint subset: regions sharing no net, so each
    // accept/reject decision is independent of the others in the sweep.
    std::fill(net_claimed.begin(), net_claimed.end(), 0);
    std::vector<std::size_t> picked;
    for (std::size_t si : eligible) {
      if (regions_processed + static_cast<int>(picked.size()) >=
          params.lr_max_outer_pass2) {
        break;
      }
      const RegionSolution& sol = fs.solutions[si];
      bool disjoint = true;
      for (std::size_t n : sol.net_index) {
        if (net_claimed[n]) {
          disjoint = false;
          break;
        }
      }
      if (!disjoint) continue;
      for (std::size_t n : sol.net_index) net_claimed[n] = 1;
      picked.push_back(si);
    }
    if (picked.empty()) break;

    std::vector<RegionBackup> backups;
    backups.reserve(picked.size());
    for (std::size_t si : picked) {
      backups.push_back(snapshot(fs, si));
      loosen_kth(fs, si, lsk_budget);
    }

    // One batch re-solve across the pool; bit-identical to resolving the
    // picked regions one at a time in this order.
    RLCR_TRACE_SPAN(sweep_span, "refine.batch_sweep", "refine");
    sweep_span.arg("regions", static_cast<double>(picked.size()));
    fs.resolve_regions(picked, /*allow_anneal=*/false, options.threads);
    ++stats.batch_sweeps;
    stats.batch_regions_resolved += static_cast<int>(picked.size());
    regions_processed += static_cast<int>(picked.size());

    for (const RegionBackup& b : backups) {
      if (accepted(fs, b)) {
        const double shields_after =
            fs.congestion->shields(sol_region(b.sol_index), sol_dir(b.sol_index));
        stats.pass2_shields_removed +=
            static_cast<int>(b.shields_before - shields_after);
        ++stats.pass2_accepted;
      } else {
        restore(fs, b);
        ++stats.pass2_rejected;
        done.insert(b.sol_index);
      }
    }
  }
}

}  // namespace rlcr::gsino
