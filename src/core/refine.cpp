#include "core/refine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "sino/evaluator.h"

namespace rlcr::gsino {

namespace {

/// Instance-net position of a global net inside a region solution, or -1.
std::ptrdiff_t find_member(const RegionSolution& sol, std::size_t net) {
  for (std::size_t i = 0; i < sol.net_index.size(); ++i) {
    if (sol.net_index[i] == net) return static_cast<std::ptrdiff_t>(i);
  }
  return -1;
}

/// Snapshot of one region's state, for accept/reject reverts.
struct RegionBackup {
  std::size_t sol_index = 0;
  RegionSolution solution;
  std::vector<double> lsk, noise;  ///< per member net
  double shields_before = 0.0;
};

RegionBackup snapshot(const FlowState& fs, std::size_t si) {
  RegionBackup b;
  b.sol_index = si;
  b.solution = fs.solutions[si];
  b.lsk.reserve(b.solution.net_index.size());
  b.noise.reserve(b.solution.net_index.size());
  for (std::size_t n : b.solution.net_index) {
    b.lsk.push_back(fs.net_lsk[n]);
    b.noise.push_back(fs.net_noise[n]);
  }
  b.shields_before = fs.congestion->shields(sol_region(si), sol_dir(si));
  return b;
}

void restore(FlowState& fs, const RegionBackup& b) {
  fs.solutions[b.sol_index] = b.solution;
  const RegionSolution& sol = fs.solutions[b.sol_index];
  for (std::size_t i = 0; i < sol.net_index.size(); ++i) {
    fs.net_lsk[sol.net_index[i]] = b.lsk[i];
    fs.net_noise[sol.net_index[i]] = b.noise[i];
  }
  fs.congestion->set_shields(sol_region(b.sol_index), sol_dir(b.sol_index),
                             b.shields_before);
}

/// Pass 2's Kth loosening: convert each member net's noise slack into a
/// per-mm coupling allowance (Fig. 2 pass 2 inner loop). A net whose
/// critical path does not run through this region tolerates any coupling
/// here; give it generous headroom.
void loosen_kth(FlowState& fs, std::size_t si, double lsk_budget) {
  RegionSolution& sol = fs.solutions[si];
  for (std::size_t i = 0; i < sol.net_index.size(); ++i) {
    const std::size_t n = sol.net_index[i];
    sino::SinoNet& snet = sol.instance.net(i);
    const double ki_now = i < sol.ki.size() ? sol.ki[i] : 0.0;
    if (sol.path_len_mm[i] <= 0.0) {
      snet.kth = std::max(snet.kth, 3.0 * (ki_now + 1.0));
      continue;
    }
    const double slack_lsk = lsk_budget - fs.net_lsk[n];
    if (slack_lsk <= 0.0) continue;
    const double dk = 0.9 * slack_lsk / sol.path_len_mm[i];
    snet.kth = std::max(snet.kth, ki_now + dk);
  }
}

/// Accept iff the re-solve removed at least one shield and no member net
/// violates the bound.
bool accepted(const FlowState& fs, const RegionBackup& b) {
  const double shields_after =
      fs.congestion->shields(sol_region(b.sol_index), sol_dir(b.sol_index));
  if (shields_after >= b.shields_before) return false;
  for (std::size_t n : fs.solutions[b.sol_index].net_index) {
    if (fs.net_noise[n] > fs.bound_v + 1e-9) return false;
  }
  return true;
}

}  // namespace

RefineStats LocalRefiner::refine(FlowState& fs,
                                 const RefineOptions& options) const {
  RefineStats stats;
  eliminate_violations(fs, stats);
  if (options.batch_pass2) {
    reduce_congestion_batched(fs, stats, options);
  } else {
    reduce_congestion(fs, stats);
  }
  fs.refresh_noise();
  return stats;
}

void LocalRefiner::eliminate_violations(FlowState& fs,
                                        RefineStats& stats) const {
  const RoutingProblem& p = *problem_;
  const auto& params = p.params();
  std::unordered_set<std::size_t> gave_up;

  for (int outer = 0; outer < params.lr_max_outer_pass1; ++outer) {
    // Net with the most severe violation.
    std::size_t worst = 0;
    double worst_noise = fs.bound_v + 1e-9;
    bool found = false;
    for (std::size_t n = 0; n < fs.net_noise.size(); ++n) {
      if (gave_up.count(n)) continue;
      if (fs.net_noise[n] > worst_noise) {
        worst_noise = fs.net_noise[n];
        worst = n;
        found = true;
      }
    }
    if (!found) break;

    const double lsk_budget = p.lsk_table().lsk_budget(fs.bound_v);
    bool fixed = false;
    for (int inner = 0; inner < params.lr_max_inner_pass1; ++inner) {
      // Least congested (region, dir) the net crosses where it still has
      // coupling worth removing.
      const auto& refs = fs.occupancy().net_refs(worst);
      double best_density = std::numeric_limits<double>::infinity();
      std::size_t best_sol = 0;
      std::size_t best_member = 0;
      double best_len = 0.0;
      bool have = false;
      for (const router::NetRegionRef& ref : refs) {
        const std::size_t si = fs.sol_index(ref.region, ref.dir);
        const RegionSolution& cand = fs.solutions[si];
        if (cand.empty()) continue;
        const std::ptrdiff_t m = find_member(cand, worst);
        if (m < 0) continue;
        const auto cmi = static_cast<std::size_t>(m);
        // Skip regions off the net's critical path, with negligible
        // contribution, or whose bound has bottomed out.
        const double contribution = cand.path_len_mm[cmi] * cand.ki[cmi];
        if (contribution < 1e-6 || cand.instance.net(cmi).kth <= 2e-6) continue;
        const double dens = fs.solution_density(si);
        if (dens < best_density) {
          best_density = dens;
          best_sol = si;
          best_member = cmi;
          best_len = cand.path_len_mm[cmi];
          have = true;
        }
      }
      if (!have) break;

      RegionSolution& sol = fs.solutions[best_sol];
      const auto mi = best_member;

      // Tighten the bound so the re-solve must add shielding (Fig. 2:
      // "decrease Kth ... by allowing one more shield"). The target removes
      // the whole remaining excess from this region when it can, otherwise
      // drives this region's contribution to (almost) nothing and the next
      // iteration moves on to another region.
      const double excess = fs.net_lsk[worst] - lsk_budget;
      const double contribution = sol.path_len_mm[mi] * sol.ki[mi];
      const double target_contribution = contribution - 1.1 * excess;
      sino::SinoNet& snet = sol.instance.net(mi);
      const double targeted =
          best_len > 0.0 ? target_contribution / best_len : 0.0;
      snet.kth = std::clamp(std::min(targeted, snet.kth * params.lr_kth_shrink),
                            1e-6, snet.kth);

      fs.resolve_region(best_sol, /*allow_anneal=*/true);
      ++stats.pass1_resolves;

      if (fs.net_noise[worst] <= fs.bound_v + 1e-9) {
        fixed = true;
        break;
      }
    }

    if (fixed) {
      ++stats.pass1_nets_fixed;
    } else {
      gave_up.insert(worst);
      ++stats.pass1_gave_up;
    }
  }
  fs.unfixable = gave_up.size();
  fs.refresh_noise();
}

void LocalRefiner::reduce_congestion(FlowState& fs, RefineStats& stats) const {
  const RoutingProblem& p = *problem_;
  const auto& params = p.params();
  const double lsk_budget = p.lsk_table().lsk_budget(fs.bound_v);
  std::unordered_set<std::size_t> done;

  for (int outer = 0; outer < params.lr_max_outer_pass2; ++outer) {
    // Most congested solution with at least one shield.
    double worst_density = 0.0;
    std::size_t pick = 0;
    bool found = false;
    for (std::size_t si = 0; si < fs.solutions.size(); ++si) {
      if (done.count(si) || fs.solutions[si].empty()) continue;
      if (fs.congestion->shields(sol_region(si), sol_dir(si)) < 1.0) {
        continue;
      }
      const double dens = fs.solution_density(si);
      if (dens > worst_density) {
        worst_density = dens;
        pick = si;
        found = true;
      }
    }
    if (!found) break;

    const RegionBackup backup = snapshot(fs, pick);
    loosen_kth(fs, pick, lsk_budget);
    fs.resolve_region(pick, /*allow_anneal=*/false);

    if (accepted(fs, backup)) {
      const double shields_after =
          fs.congestion->shields(sol_region(pick), sol_dir(pick));
      stats.pass2_shields_removed +=
          static_cast<int>(backup.shields_before - shields_after);
      ++stats.pass2_accepted;
      // Stay eligible: more slack may be harvestable here. Termination is
      // still guaranteed because every acceptance removes at least one
      // shield and the total shield count is finite.
    } else {
      restore(fs, backup);
      ++stats.pass2_rejected;
      done.insert(pick);
    }
  }
}

void LocalRefiner::reduce_congestion_batched(FlowState& fs, RefineStats& stats,
                                             const RefineOptions& options) const {
  const RoutingProblem& p = *problem_;
  const auto& params = p.params();
  const double lsk_budget = p.lsk_table().lsk_budget(fs.bound_v);
  std::unordered_set<std::size_t> done;
  std::vector<char> net_claimed(p.net_count(), 0);

  int regions_processed = 0;
  while (regions_processed < params.lr_max_outer_pass2) {
    // Eligible regions by descending density (index ascending on ties —
    // selection is a pure function of the current state).
    std::vector<std::size_t> eligible;
    for (std::size_t si = 0; si < fs.solutions.size(); ++si) {
      if (done.count(si) || fs.solutions[si].empty()) continue;
      if (fs.congestion->shields(sol_region(si), sol_dir(si)) < 1.0) {
        continue;
      }
      eligible.push_back(si);
    }
    std::stable_sort(eligible.begin(), eligible.end(),
                     [&](std::size_t a, std::size_t b) {
                       return fs.solution_density(a) > fs.solution_density(b);
                     });

    // Greedy maximal net-disjoint subset: regions sharing no net, so each
    // accept/reject decision is independent of the others in the sweep.
    std::fill(net_claimed.begin(), net_claimed.end(), 0);
    std::vector<std::size_t> picked;
    for (std::size_t si : eligible) {
      if (regions_processed + static_cast<int>(picked.size()) >=
          params.lr_max_outer_pass2) {
        break;
      }
      const RegionSolution& sol = fs.solutions[si];
      bool disjoint = true;
      for (std::size_t n : sol.net_index) {
        if (net_claimed[n]) {
          disjoint = false;
          break;
        }
      }
      if (!disjoint) continue;
      for (std::size_t n : sol.net_index) net_claimed[n] = 1;
      picked.push_back(si);
    }
    if (picked.empty()) break;

    std::vector<RegionBackup> backups;
    backups.reserve(picked.size());
    for (std::size_t si : picked) {
      backups.push_back(snapshot(fs, si));
      loosen_kth(fs, si, lsk_budget);
    }

    // One batch re-solve across the pool; bit-identical to resolving the
    // picked regions one at a time in this order.
    fs.resolve_regions(picked, /*allow_anneal=*/false, options.threads);
    ++stats.batch_sweeps;
    stats.batch_regions_resolved += static_cast<int>(picked.size());
    regions_processed += static_cast<int>(picked.size());

    for (const RegionBackup& b : backups) {
      if (accepted(fs, b)) {
        const double shields_after =
            fs.congestion->shields(sol_region(b.sol_index), sol_dir(b.sol_index));
        stats.pass2_shields_removed +=
            static_cast<int>(b.shields_before - shields_after);
        ++stats.pass2_accepted;
      } else {
        restore(fs, b);
        ++stats.pass2_rejected;
        done.insert(b.sol_index);
      }
    }
  }
}

}  // namespace rlcr::gsino
