// Phase III: two-pass iterative local refinement (the paper's Fig. 2),
// operating on a FlowState (the mutable working state a FlowSession builds
// over a RegionSolveArtifact).
//
// Pass 1 (eliminate crosstalk violations): Phase I budgeted with Manhattan
// distances, so detoured nets can exceed their noise bound. For the net
// with the worst violation, tighten its Kth in the least congested region
// it crosses (letting that region absorb one more shield) and re-run SINO
// there; repeat until the net meets its bound, then move to the next
// violating net.
//
// Pass 2 (reduce routing congestion): in the most congested region, give
// nets with slack (noise headroom) looser Kth in proportion to that slack
// and re-run SINO; accept the new solution only if it removes at least one
// shield and causes no new violations.
//
// Batched pass 2 (RefineOptions::batch_pass2): instead of one region per
// step, each sweep picks a maximal net-disjoint set of eligible congested
// regions (descending density), loosens them all, re-solves them in one
// sino::solve_batch call across the pool, and then accepts/rejects each
// individually. Net-disjointness makes the per-region accept checks
// independent, so the sweep's outcome is deterministic and bit-identical
// at any thread count; it visits regions in a different order than the
// serial pass, so batched results differ from batch_pass2=false (the
// goldens pin the serial pass).
//
// Speculative pass 1 (RefineOptions::speculate_batch, parallel/speculate.h):
// pass 1 is inherently sequential — each outer step's worst-violator pick
// and fix attempt read the state every earlier attempt committed. With
// speculation on, up to `speculate_batch` whole fix attempts (for the k
// worst violating nets) are evaluated concurrently on copy-on-write
// overlays of a frozen snapshot, each recording the (region, LSK-entry)
// read set it touched. The unchanged serial order then applies a memoized
// attempt only when its read set is still at the snapshot versions —
// proving the overlay equals, bit for bit, what the serial attempt would
// have computed — and replays invalidated attempts serially. Unlike
// batch_pass2, this changes neither the visit order nor the output: the
// refined state is bit-identical to the serial pass at every
// (threads, speculate_batch) combination, so every golden holds.
#pragma once

#include "core/session.h"

namespace rlcr::gsino {

class LocalRefiner {
 public:
  explicit LocalRefiner(const RoutingProblem& problem) : problem_(&problem) {}

  /// Run pass 1 then pass 2 on a flow state produced by Phase II.
  RefineStats refine(FlowState& fs, const RefineOptions& options = {}) const;

  /// Individual passes (exposed for tests and the ablation bench). Pass 1
  /// speculates fix attempts across the pool when
  /// options.speculate_batch > 1 and the effective thread count is > 1;
  /// its refined state is bit-identical to the serial pass either way
  /// (parallel/speculate.h).
  void eliminate_violations(FlowState& fs, RefineStats& stats,
                            const RefineOptions& options = {}) const;
  void reduce_congestion(FlowState& fs, RefineStats& stats) const;
  void reduce_congestion_batched(FlowState& fs, RefineStats& stats,
                                 const RefineOptions& options) const;

 private:
  const RoutingProblem* problem_;
};

}  // namespace rlcr::gsino
