// Phase III: two-pass iterative local refinement (the paper's Fig. 2).
//
// Pass 1 (eliminate crosstalk violations): Phase I budgeted with Manhattan
// distances, so detoured nets can exceed their noise bound. For the net
// with the worst violation, tighten its Kth in the least congested region
// it crosses (letting that region absorb one more shield) and re-run SINO
// there; repeat until the net meets its bound, then move to the next
// violating net.
//
// Pass 2 (reduce routing congestion): in the most congested region, give
// nets with slack (noise headroom) looser Kth in proportion to that slack
// and re-run SINO; accept the new solution only if it removes at least one
// shield and causes no new violations.
#pragma once

#include "core/flow.h"

namespace rlcr::gsino {

struct RefineStats {
  int pass1_nets_fixed = 0;
  int pass1_resolves = 0;
  int pass1_gave_up = 0;
  int pass2_shields_removed = 0;
  int pass2_accepted = 0;
  int pass2_rejected = 0;
};

class LocalRefiner {
 public:
  explicit LocalRefiner(const RoutingProblem& problem) : problem_(&problem) {}

  /// Run pass 1 then pass 2 on a flow state produced by Phase II.
  RefineStats refine(FlowResult& fr) const;

  /// Individual passes (exposed for tests and the ablation bench).
  void eliminate_violations(FlowResult& fr, RefineStats& stats) const;
  void reduce_congestion(FlowResult& fr, RefineStats& stats) const;

 private:
  const RoutingProblem* problem_;
};

}  // namespace rlcr::gsino
