#include "core/session.h"

#include <algorithm>
#include <cmath>

#include "core/paths.h"
#include "core/refine.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/parallel_for.h"
#include "store/artifact_store.h"
#include "sino/anneal.h"
#include "sino/batch.h"
#include "sino/greedy.h"
#include "util/hash.h"
#include "util/stopwatch.h"

namespace rlcr::gsino {

const char* flow_name(FlowKind kind) {
  switch (kind) {
    case FlowKind::kIdNo:
      return "ID+NO";
    case FlowKind::kIsino:
      return "iSINO";
    case FlowKind::kGsino:
      return "GSINO";
  }
  return "?";
}

const char* stage_name(Stage stage) {
  switch (stage) {
    case Stage::kRoute:
      return "route";
    case Stage::kBudget:
      return "budget";
    case Stage::kSolveRegions:
      return "solve_regions";
    case Stage::kRefine:
      return "refine";
  }
  return "?";
}

std::uint64_t region_resolve_seed(const RoutingProblem& p,
                                  std::size_t sol_index) {
  return p.params().seed ^ (sol_index * 131071u);
}

BudgetRule budget_rule(FlowKind kind) {
  switch (kind) {
    case FlowKind::kIdNo:
      return BudgetRule::kManhattan;
    case FlowKind::kIsino:
      return BudgetRule::kRoutedLength;
    case FlowKind::kGsino:
      return BudgetRule::kManhattanMargin;
  }
  return BudgetRule::kManhattan;
}

RegionSolution build_region_solution(const RoutingProblem& problem,
                                     const router::Occupancy& occ,
                                     std::size_t region, grid::Dir dir,
                                     const std::vector<double>& kth,
                                     const PathIndex& paths) {
  RegionSolution sol;
  const auto& segs = occ.segments(region, dir);
  if (segs.empty()) return sol;

  std::vector<sino::SinoNet> nets;
  nets.reserve(segs.size());
  sol.net_index.reserve(segs.size());
  sol.len_mm.reserve(segs.size());
  sol.path_len_mm.reserve(segs.size());
  for (const router::Segment& s : segs) {
    const auto n = static_cast<std::size_t>(s.net_index);
    sino::SinoNet sn;
    sn.net_id = s.net_index;
    sn.si = problem.router_nets()[n].si;
    sn.kth = kth[n];
    nets.push_back(sn);
    sol.net_index.push_back(n);
    sol.len_mm.push_back(s.length_um / 1000.0);
    sol.path_len_mm.push_back(paths.length_um(n, region, dir) / 1000.0);
  }
  sol.instance = sino::SinoInstance(std::move(nets));
  for (std::size_t i = 0; i < sol.net_index.size(); ++i) {
    for (std::size_t j = i + 1; j < sol.net_index.size(); ++j) {
      if (problem.sensitivity().sensitive(
              static_cast<netlist::NetId>(sol.net_index[i]),
              static_cast<netlist::NetId>(sol.net_index[j]))) {
        sol.instance.set_sensitive(i, j);
      }
    }
  }
  return sol;
}

namespace {

// LRU bookkeeping over the per-stage cache vectors: recency order with the
// back most recent. A hit rotates its entry to the back; an insert beyond
// the entry budget evicts from the front (budget 0 = unbounded).

template <typename Entry>
void lru_touch(std::vector<Entry>& cache, std::size_t i) {
  std::rotate(cache.begin() + static_cast<std::ptrdiff_t>(i),
              cache.begin() + static_cast<std::ptrdiff_t>(i) + 1, cache.end());
}

template <typename Entry>
void lru_insert(std::vector<Entry>& cache, Entry entry, std::size_t budget) {
  if (budget > 0 && cache.size() >= budget) {
    cache.erase(cache.begin(),
                cache.begin() + static_cast<std::ptrdiff_t>(
                                    cache.size() - budget + 1));
  }
  cache.push_back(std::move(entry));
}

}  // namespace

// ---------------------------------------------------------------- FlowState

void FlowState::commit_region(std::size_t sol_idx, ktable::SlotVec&& slots,
                              std::vector<double>&& ki) {
  RegionSolution& sol = solutions[sol_idx];
  const RoutingProblem& p = *problem;

  // Remove old LSK contributions (critical-path lengths; Eq. 1 is per sink).
  for (std::size_t i = 0; i < sol.net_index.size(); ++i) {
    if (i < sol.ki.size()) {
      net_lsk[sol.net_index[i]] -= sol.path_len_mm[i] * sol.ki[i];
    }
  }

  sol.slots = std::move(slots);
  sol.ki = std::move(ki);

  // Add new contributions and refresh noise for member nets.
  for (std::size_t i = 0; i < sol.net_index.size(); ++i) {
    net_lsk[sol.net_index[i]] += sol.path_len_mm[i] * sol.ki[i];
    net_noise[sol.net_index[i]] =
        p.lsk_table().voltage(net_lsk[sol.net_index[i]]);
  }

  // Refresh the region's shield count.
  congestion->set_shields(
      sol_region(sol_idx), sol_dir(sol_idx),
      static_cast<double>(sino::SinoEvaluator::shield_count(sol.slots)));
}

void FlowState::resolve_region(std::size_t sol_idx, bool allow_anneal) {
  RegionSolution& sol = solutions[sol_idx];
  if (sol.empty()) return;
  const RoutingProblem& p = *problem;
  const auto& keff = p.keff();
  util::Stopwatch watch;

  ktable::SlotVec slots = sino::solve_greedy(sol.instance, keff);
  if (allow_anneal) {
    const sino::SinoEvaluator check_eval(sol.instance, keff);
    if (!check_eval.check(slots).feasible()) {
      sino::AnnealOptions ao;
      ao.seed = region_resolve_seed(p, sol_idx);
      ao.iterations = p.params().anneal_iterations;
      auto best = sino::solve_anneal(sol.instance, keff, ao);
      if (best.feasible) slots = std::move(best.slots);
    }
  }
  const sino::SinoEvaluator eval(sol.instance, keff);
  std::vector<double> ki = eval.all_ki(slots);
  commit_region(sol_idx, std::move(slots), std::move(ki));

  if (observer) {
    observer(StageEvent{Stage::kRefine, kind, sol_idx, watch.seconds(), false});
  }
}

void FlowState::resolve_regions(const std::vector<std::size_t>& sol_indices,
                                bool allow_anneal, int threads) {
  const RoutingProblem& p = *problem;

  // Fan the solves out: each item is self-contained (the solve reads only
  // its instance), so the batch is bit-identical to the serial loop.
  std::vector<sino::SinoBatchItem> items(sol_indices.size());
  for (std::size_t k = 0; k < sol_indices.size(); ++k) {
    const RegionSolution& sol = solutions[sol_indices[k]];
    if (sol.empty()) continue;
    items[k].instance = &sol.instance;
    items[k].mode = allow_anneal ? sino::SinoSolveMode::kGreedyAnneal
                                 : sino::SinoSolveMode::kGreedy;
    items[k].anneal_seed = region_resolve_seed(p, sol_indices[k]);
    items[k].anneal_iterations = p.params().anneal_iterations;
  }
  sino::SinoBatchOptions bopt;
  bopt.threads = threads;
  std::vector<sino::SinoBatchResult> solved =
      sino::solve_batch(items, p.keff(), bopt);

  // Serial replay in the given order: commit_region is the same sequence
  // the one-at-a-time loop runs, so the floating-point op order matches
  // exactly.
  util::Stopwatch watch;
  for (std::size_t k = 0; k < sol_indices.size(); ++k) {
    const std::size_t si = sol_indices[k];
    if (solutions[si].empty()) continue;
    commit_region(si, std::move(solved[k].slots), std::move(solved[k].ki));
    if (observer) {
      // Same per-region progress events as the serial loop; solver time is
      // fanned out across the pool, so `seconds` carries this region's
      // replay slice only.
      observer(StageEvent{Stage::kRefine, kind, si, watch.seconds(), false});
      watch.reset();
    }
  }
}

double FlowState::solution_density(std::size_t sol_idx) const {
  return congestion->density(sol_region(sol_idx), sol_dir(sol_idx));
}

void FlowState::refresh_noise() {
  const auto& table = problem->lsk_table();
  violating = 0;
  for (std::size_t n = 0; n < net_lsk.size(); ++n) {
    net_noise[n] = table.voltage(net_lsk[n]);
    if (net_noise[n] > bound_v + 1e-9) ++violating;
  }
}

// -------------------------------------------------------------- FlowSession

FlowSession::FlowSession(const RoutingProblem& problem, SessionOptions options)
    : problem_(&problem), options_(std::move(options)) {}

void FlowSession::emit(Stage stage, FlowKind flow, double seconds,
                       bool reused) const {
  if (options_.observer) {
    options_.observer(StageEvent{stage, flow, kNoRegion, seconds, reused});
  }
}

router::IdRouterOptions FlowSession::router_profile(FlowKind kind) const {
  router::IdRouterOptions ropt = problem_->params().router;
  // The paper's fairness rule: only GSINO reserves shield area in Eq. (2).
  ropt.reserve_shields = (kind == FlowKind::kGsino);
  if (kind == FlowKind::kGsino) {
    // GSINO trades a little wire length for crosstalk headroom (Table 2's
    // overhead): give its shield-aware weights room to detour around
    // shield-laden regions.
    ropt.max_detour_factor = std::max(ropt.max_detour_factor, 1.5);
  }
  return ropt;
}

std::shared_ptr<const RoutingArtifact> FlowSession::route(FlowKind kind) {
  return route(router_profile(kind), kind);
}

std::shared_ptr<RoutingArtifact> derive_routing_artifact(
    const RoutingProblem& p, const router::IdRouterOptions& options,
    std::uint64_t seed, std::shared_ptr<const router::RoutingResult> routing) {
  auto art = std::make_shared<RoutingArtifact>();
  art->options = options;
  art->seed = seed;

  auto occupancy =
      std::make_shared<router::Occupancy>(p.grid(), routing->routes);
  auto segments = std::make_shared<grid::CongestionMap>(p.grid());
  occupancy->fill_segments(*segments);

  // Critical source->sink paths (the per-sink scope of Eq. 1).
  const std::vector<CriticalPath> paths =
      critical_paths(p.grid(), p.router_nets(), routing->routes);
  auto index = std::make_shared<PathIndex>();
  auto lengths = std::make_shared<std::vector<double>>(p.net_count(), 0.0);
  for (std::size_t n = 0; n < paths.size(); ++n) {
    (*lengths)[n] = paths[n].length_um;
    for (const router::NetRegionRef& ref : paths[n].refs) {
      index->set(n, ref.region, ref.dir, ref.length_um);
    }
  }

  art->routing = std::move(routing);
  art->occupancy = std::move(occupancy);
  art->segments = std::move(segments);
  art->critical_path_um = std::move(lengths);
  art->paths = std::move(index);
  return art;
}

std::shared_ptr<const RoutingArtifact> FlowSession::route(
    const router::IdRouterOptions& options, FlowKind kind) {
  // Stage spans cover the whole request — a cache/store hit shows up as a
  // short span, a compute as the full stage — gated per session by
  // SessionOptions::trace on top of the global trace switch.
  obs::ScopedSpan span("session.route", "session", options_.trace);
  ++counters_.route_requests;
  for (std::size_t i = 0; i < route_cache_.size(); ++i) {
    if (route_cache_[i].options.same_routing_profile(options)) {
      lru_touch(route_cache_, i);
      const auto art = route_cache_.back().artifact;
      emit(Stage::kRoute, kind, art->seconds, /*reused=*/true);
      return art;
    }
  }

  const RoutingProblem& p = *problem_;

  // Consult the persistent store before computing: a hit is a warm start
  // from another session (possibly another process) that published the
  // same profile. Loaded artifacts are bit-identical to computed ones, so
  // they enter the in-memory cache like any other.
  const std::uint64_t store_key =
      options_.store ? store::routing_key(p, options) : 0;
  if (options_.store) {
    if (auto art = options_.store->get_routing(store_key, p)) {
      // Defense in depth beyond the checksum + route-hash oracle: the
      // record carries its own identity, so a record filed under the
      // wrong key (an operator shuffling store files; a key collision)
      // is treated as a miss rather than driving the flow with a foreign
      // profile's routes.
      if (art->options.same_routing_profile(options)) {
        ++counters_.route_loaded;
        lru_insert(route_cache_, RouteEntry{options, art},
                   options_.cache_entries);
        emit(Stage::kRoute, kind, art->seconds, /*reused=*/true);
        return art;
      }
    }
  }

  util::Stopwatch watch;
  const router::IdRouter router(p.grid(), p.nss(), options);
  auto routing = std::make_shared<router::RoutingResult>(
      router.route(p.router_nets()));
  auto art =
      derive_routing_artifact(p, options, p.params().seed, std::move(routing));
  art->seconds = watch.seconds();

  ++counters_.route_executed;
  counters_.route_spec_attempted += art->routing->stats.spec_attempted;
  counters_.route_spec_committed += art->routing->stats.spec_committed;
  counters_.route_spec_replayed += art->routing->stats.spec_replayed;
  lru_insert(route_cache_, RouteEntry{options, art}, options_.cache_entries);
  if (options_.store) options_.store->put_routing(store_key, *art);
  emit(Stage::kRoute, kind, art->seconds, /*reused=*/false);
  return art;
}

std::shared_ptr<const BudgetArtifact> FlowSession::budget(
    FlowKind kind, const std::shared_ptr<const RoutingArtifact>& phase1,
    double bound_v, double margin) {
  obs::ScopedSpan span("session.budget", "session", options_.trace);
  ++counters_.budget_requests;
  const BudgetRule rule = budget_rule(kind);
  // Only the margin rule applies the margin: normalize it out of the cache
  // identity for the other rules, so a margin-only what-if on ID+NO/iSINO
  // reuses the (bit-identical) budget instead of re-running Phase II.
  if (rule != BudgetRule::kManhattanMargin) margin = 1.0;
  // Only the iSINO rule reads the routing; the Manhattan rules are
  // routing-independent and shared across profiles.
  const std::shared_ptr<const RoutingArtifact> route_id =
      rule == BudgetRule::kRoutedLength ? phase1 : nullptr;
  for (std::size_t i = 0; i < budget_cache_.size(); ++i) {
    const BudgetEntry& e = budget_cache_[i];
    if (e.rule == rule && e.bound_v == bound_v && e.margin == margin &&
        e.phase1 == route_id) {
      lru_touch(budget_cache_, i);
      const auto art = budget_cache_.back().artifact;
      emit(Stage::kBudget, kind, art->seconds, /*reused=*/true);
      return art;
    }
  }

  const RoutingProblem& p = *problem_;

  // Store consult (see route()). The routed-length rule keys on the
  // routing artifact it budgets from, mirroring the in-memory cache.
  const std::uint64_t store_key =
      options_.store
          ? store::budget_key(p, rule, bound_v, margin,
                              route_id ? store::routing_key(p, route_id->options)
                                       : 0)
          : 0;
  if (options_.store) {
    if (auto art = options_.store->get_budget(store_key, p)) {
      // Same identity cross-check as route(): a mislabeled record must
      // not install foreign Kth bounds under this (rule, bound, margin).
      if (art->rule == rule && art->bound_v == bound_v &&
          art->margin == margin) {
        ++counters_.budget_loaded;
        lru_insert(budget_cache_,
                   BudgetEntry{rule, bound_v, margin, route_id, art},
                   options_.cache_entries);
        emit(Stage::kBudget, kind, art->seconds, /*reused=*/true);
        return art;
      }
    }
  }

  util::Stopwatch watch;
  auto art = std::make_shared<BudgetArtifact>();
  art->rule = rule;
  art->bound_v = bound_v;
  art->margin = margin;

  const CrosstalkBudgeter budgeter(p.lsk_table(), bound_v);
  auto kth = std::make_shared<std::vector<double>>();
  if (rule == BudgetRule::kRoutedLength) {
    // iSINO runs SINO after routing, so its bounds use the actual routed
    // critical-path lengths (this is what lets it meet every bound without
    // refinement — at the cost of the unplanned shield area Table 3 shows).
    kth->resize(p.net_count());
    for (std::size_t n = 0; n < p.net_count(); ++n) {
      const double routed_um =
          std::max((*phase1->critical_path_um)[n], p.le_um()[n]);
      (*kth)[n] = budgeter.kth_from_length(routed_um);
    }
  } else {
    // ID+NO (reporting only) and GSINO (Phase I rule): Manhattan estimate,
    // tightened by the budgeting safety margin for GSINO.
    *kth = budgeter.uniform_kth(p);
    if (rule == BudgetRule::kManhattanMargin) {
      for (double& k : *kth) k *= margin;
    }
  }
  art->kth = std::move(kth);
  art->seconds = watch.seconds();

  ++counters_.budget_executed;
  lru_insert(budget_cache_, BudgetEntry{rule, bound_v, margin, route_id, art},
             options_.cache_entries);
  if (options_.store) options_.store->put_budget(store_key, *art);
  emit(Stage::kBudget, kind, art->seconds, /*reused=*/false);
  return art;
}

std::shared_ptr<const RegionSolveArtifact> FlowSession::solve_regions(
    FlowKind kind, const std::shared_ptr<const RoutingArtifact>& phase1,
    const std::shared_ptr<const BudgetArtifact>& budget, bool anneal_phase2) {
  obs::ScopedSpan span("session.solve_regions", "session", options_.trace);
  ++counters_.solve_requests;
  const bool anneal = anneal_phase2 && kind != FlowKind::kIdNo;
  for (std::size_t i = 0; i < solve_cache_.size(); ++i) {
    const SolveEntry& e = solve_cache_[i];
    if (e.kind == kind && e.anneal == anneal && e.phase1 == phase1.get() &&
        e.budget == budget.get()) {
      lru_touch(solve_cache_, i);
      const auto art = solve_cache_.back().artifact;
      emit(Stage::kSolveRegions, kind, art->seconds, /*reused=*/true);
      return art;
    }
  }

  const RoutingProblem& p = *problem_;

  // Store consult (see route()). The solve keys on the routing + budget
  // records it was derived from, mirroring the in-memory cache's pointer
  // identity with the store's content identity.
  const BudgetRule rule = budget->rule;
  const std::uint64_t store_key =
      options_.store
          ? store::solve_key(
                p, kind, anneal, store::routing_key(p, phase1->options),
                store::budget_key(p, rule, budget->bound_v, budget->margin,
                                  rule == BudgetRule::kRoutedLength
                                      ? store::routing_key(p, phase1->options)
                                      : 0))
          : 0;
  if (options_.store) {
    if (auto art = options_.store->get_region_solve(store_key, p, phase1,
                                                    budget)) {
      // Same identity cross-check as route(): a mislabeled record must not
      // install another flow's region solutions under this (kind, anneal).
      if (art->kind == kind && art->annealed == anneal) {
        ++counters_.solve_loaded;
        lru_insert(solve_cache_,
                   SolveEntry{kind, anneal, phase1.get(), budget.get(), art},
                   options_.cache_entries);
        emit(Stage::kSolveRegions, kind, art->seconds, /*reused=*/true);
        return art;
      }
    }
  }

  util::Stopwatch watch;
  auto art = std::make_shared<RegionSolveArtifact>();
  art->kind = kind;
  art->annealed = anneal;
  art->phase1 = phase1;
  art->budget = budget;

  // Every (region, dir) SINO instance is independent: the instances are
  // built with a parallel map, solved across the pool by the batch driver
  // (sino/batch.h, each region with its own deterministic RNG stream), and
  // the LSK/shield accumulation replays serially in the historical
  // (region, dir) order — so the phase's output is bit-identical at any
  // thread count, threads == 1 being the exact serial path.
  const std::size_t regions = p.grid().region_count();
  const std::size_t sol_count = regions * 2;
  auto net_lsk = std::make_shared<std::vector<double>>(p.net_count(), 0.0);
  auto net_noise = std::make_shared<std::vector<double>>(p.net_count(), 0.0);
  const std::vector<double>& kth = *budget->kth;
  const PathIndex& paths = *phase1->paths;

  constexpr std::size_t kRegionGrain = 32;  // instances per chunk (fixed)
  auto solutions = std::make_shared<std::vector<RegionSolution>>(
      parallel::parallel_map<RegionSolution>(
          sol_count, kRegionGrain, p.params().threads, [&](std::size_t si) {
            return build_region_solution(p, *phase1->occupancy, sol_region(si),
                                         sol_dir(si), kth, paths);
          }));

  std::vector<sino::SinoBatchItem> items(sol_count);
  for (std::size_t si = 0; si < sol_count; ++si) {
    const RegionSolution& sol = (*solutions)[si];
    if (sol.empty()) continue;
    sino::SinoBatchItem& item = items[si];
    item.instance = &sol.instance;
    if (kind == FlowKind::kIdNo) {
      item.mode = sino::SinoSolveMode::kNetOrder;
    } else if (anneal) {
      item.mode = sino::SinoSolveMode::kGreedyAnneal;
      // The historical per-region stream seed, preserved so annealed
      // Phase II results stay identical to the pre-batch flow.
      item.anneal_seed = p.params().seed ^ (sol.net_index.front() * 977u);
      item.anneal_iterations = p.params().anneal_iterations;
    } else {
      item.mode = sino::SinoSolveMode::kGreedy;
    }
  }
  sino::SinoBatchOptions bopt;
  bopt.threads = p.params().threads;
  std::vector<sino::SinoBatchResult> solved =
      sino::solve_batch(items, p.keff(), bopt);

  auto congestion = std::make_shared<grid::CongestionMap>(*phase1->segments);
  for (std::size_t r = 0; r < regions; ++r) {
    for (grid::Dir d : grid::kBothDirs) {
      const std::size_t si = art->sol_index(r, d);
      RegionSolution& sol = (*solutions)[si];
      if (sol.empty()) continue;
      sol.slots = std::move(solved[si].slots);
      sol.ki = std::move(solved[si].ki);
      for (std::size_t i = 0; i < sol.net_index.size(); ++i) {
        (*net_lsk)[sol.net_index[i]] += sol.path_len_mm[i] * sol.ki[i];
      }
      congestion->set_shields(
          r, d,
          static_cast<double>(sino::SinoEvaluator::shield_count(sol.slots)));
    }
  }

  // Noise + violation count under this budget's bound.
  const auto& table = p.lsk_table();
  art->violating = 0;
  for (std::size_t n = 0; n < net_lsk->size(); ++n) {
    (*net_noise)[n] = table.voltage((*net_lsk)[n]);
    if ((*net_noise)[n] > budget->bound_v + 1e-9) ++art->violating;
  }

  art->solutions = std::move(solutions);
  art->net_lsk = std::move(net_lsk);
  art->net_noise = std::move(net_noise);
  art->congestion = std::move(congestion);
  art->seconds = watch.seconds();

  ++counters_.solve_executed;
  lru_insert(solve_cache_, SolveEntry{kind, anneal, phase1.get(), budget.get(), art},
             options_.cache_entries);
  if (options_.store) options_.store->put_region_solve(store_key, *art);
  emit(Stage::kSolveRegions, kind, art->seconds, /*reused=*/false);
  return art;
}

FlowState FlowSession::state(const RegionSolveArtifact& solve) const {
  FlowState st;
  st.problem = problem_;
  st.kind = solve.kind;
  st.bound_v = solve.budget->bound_v;
  st.phase1 = solve.phase1;
  st.budget = solve.budget;
  st.solutions = *solve.solutions;  // mutable copies of the artifact state
  st.net_lsk = *solve.net_lsk;
  st.net_noise = *solve.net_noise;
  st.congestion = std::make_unique<grid::CongestionMap>(*solve.congestion);
  st.violating = solve.violating;
  st.observer = options_.observer;
  return st;
}

std::shared_ptr<const RegionSolveArtifact> FlowSession::solve_for(
    FlowKind kind, const Scenario& scenario) {
  const GsinoParams& params = problem_->params();
  router::IdRouterOptions ropt = router_profile(kind);
  if (scenario.tree_profile) ropt.tree_profile = *scenario.tree_profile;
  auto r = route(ropt, kind);
  auto b = budget(kind, r,
                  scenario.bound_v.value_or(params.crosstalk_bound_v),
                  scenario.budget_margin.value_or(params.budget_margin));
  return solve_regions(kind, r, b,
                       scenario.anneal_phase2.value_or(params.anneal_phase2));
}

FlowState FlowSession::state(FlowKind kind, const Scenario& scenario) {
  return state(*solve_for(kind, scenario));
}

std::shared_ptr<const RefineArtifact> FlowSession::refine(
    const std::shared_ptr<const RegionSolveArtifact>& solve,
    const RefineOptions& options) {
  obs::ScopedSpan span("session.refine", "session", options_.trace);
  ++counters_.refine_requests;
  for (std::size_t i = 0; i < refine_cache_.size(); ++i) {
    const RefineEntry& e = refine_cache_[i];
    if (e.solve == solve.get() && e.batch_pass2 == options.batch_pass2) {
      lru_touch(refine_cache_, i);
      const auto art = refine_cache_.back().artifact;
      emit(Stage::kRefine, solve->kind, art->seconds, /*reused=*/true);
      return art;
    }
  }

  const RoutingProblem& p = *problem_;

  // Store consult (see route()). The refine record keys on the solve
  // record it refines plus the one Phase III knob that changes output
  // (batch_pass2; threads/speculate_batch never do), with the solve key
  // rebuilt from the artifact's own provenance fields.
  std::uint64_t store_key = 0;
  if (options_.store) {
    const std::uint64_t routing_k =
        store::routing_key(p, solve->phase1->options);
    const BudgetRule rule = solve->budget->rule;
    const std::uint64_t budget_k = store::budget_key(
        p, rule, solve->budget->bound_v, solve->budget->margin,
        rule == BudgetRule::kRoutedLength ? routing_k : 0);
    store_key = store::refine_key(
        p, store::solve_key(p, solve->kind, solve->annealed, routing_k,
                            budget_k),
        options.batch_pass2);
    // get_refine cross-checks the record's embedded batch_pass2 flag (the
    // identity check of the other stages, folded into the load).
    if (auto art = options_.store->get_refine(store_key, p, solve,
                                              options.batch_pass2)) {
      ++counters_.refine_loaded;
      lru_insert(refine_cache_,
                 RefineEntry{solve.get(), options.batch_pass2, art},
                 options_.cache_entries);
      emit(Stage::kRefine, solve->kind, art->seconds, /*reused=*/true);
      return art;
    }
  }

  util::Stopwatch watch;
  FlowState st = state(*solve);
  const LocalRefiner refiner(*problem_);
  const RefineStats stats = refiner.refine(st, options);

  auto art = std::make_shared<RefineArtifact>();
  art->base = solve;
  art->solutions = std::make_shared<const std::vector<RegionSolution>>(
      std::move(st.solutions));
  art->net_lsk =
      std::make_shared<const std::vector<double>>(std::move(st.net_lsk));
  art->net_noise =
      std::make_shared<const std::vector<double>>(std::move(st.net_noise));
  art->congestion = std::shared_ptr<const grid::CongestionMap>(
      std::move(st.congestion));
  art->violating = st.violating;
  art->unfixable = st.unfixable;
  art->stats = stats;
  art->seconds = watch.seconds();

  ++counters_.refine_executed;
  counters_.refine_spec_attempted += static_cast<std::size_t>(stats.spec_attempted);
  counters_.refine_spec_committed += static_cast<std::size_t>(stats.spec_committed);
  counters_.refine_spec_replayed += static_cast<std::size_t>(stats.spec_replayed);
  lru_insert(refine_cache_, RefineEntry{solve.get(), options.batch_pass2, art},
             options_.cache_entries);
  if (options_.store) {
    options_.store->put_refine(store_key, *art, options.batch_pass2);
  }
  emit(Stage::kRefine, solve->kind, art->seconds, /*reused=*/false);
  return art;
}

obs::MetricsSnapshot FlowSession::metrics() const {
  obs::MetricsSnapshot snap;
  obs::append_metrics(snap, counters_);
  // Per-stage stats come from the most recently touched artifacts (the
  // LRU caches keep recency order, back = most recent), so the registry
  // reads as "what this session last did".
  if (!route_cache_.empty() && route_cache_.back().artifact->routing) {
    obs::append_metrics(snap, route_cache_.back().artifact->routing->stats);
  }
  if (!refine_cache_.empty()) {
    obs::append_metrics(snap, refine_cache_.back().artifact->stats);
  }
  if (options_.store) obs::append_metrics(snap, options_.store->stats());
  return snap;
}

FlowResult FlowSession::assemble(
    FlowKind kind, std::shared_ptr<const RegionSolveArtifact> solve,
    std::shared_ptr<const RefineArtifact> refined) const {
  FlowResult fr;
  fr.kind = kind;
  fr.name = flow_name(kind);
  fr.bound_v = solve->budget->bound_v;
  fr.phase1 = solve->phase1;
  fr.budget = solve->budget;
  fr.phase2 = solve;
  fr.phase3 = refined;
  fr.occupancy = solve->phase1->occupancy;
  if (refined) {
    fr.solutions_ptr = refined->solutions;
    fr.net_lsk_ptr = refined->net_lsk;
    fr.net_noise_ptr = refined->net_noise;
    fr.congestion = refined->congestion;
    fr.violating = refined->violating;
    fr.unfixable = refined->unfixable;
  } else {
    fr.solutions_ptr = solve->solutions;
    fr.net_lsk_ptr = solve->net_lsk;
    fr.net_noise_ptr = solve->net_noise;
    fr.congestion = solve->congestion;
    fr.violating = solve->violating;
    fr.unfixable = 0;
  }

  const RoutingProblem& p = *problem_;
  fr.total_wirelength_um = fr.phase1->routing->total_wirelength_um;
  const std::size_t nets = p.net_count();
  fr.avg_wirelength_um =
      nets == 0 ? 0.0 : fr.total_wirelength_um / static_cast<double>(nets);
  fr.area = grid::compute_routing_area(*fr.congestion);
  fr.total_shields = fr.congestion->total_shields();
  fr.timing.route_s = fr.phase1->seconds;
  fr.timing.sino_s = solve->seconds;
  fr.timing.refine_s = refined ? refined->seconds : 0.0;
  return fr;
}

FlowResult FlowSession::run(FlowKind kind, const Scenario& scenario) {
  auto sv = solve_for(kind, scenario);
  std::shared_ptr<const RefineArtifact> refined;
  if (kind == FlowKind::kGsino) {
    refined = refine(sv, scenario.refine);
  }
  return assemble(kind, std::move(sv), std::move(refined));
}

std::uint64_t state_fingerprint(const FlowResult& fr) {
  util::Fnv1a64 h;
  for (const double v : fr.net_lsk()) h.f64(v);
  for (const double v : fr.net_noise()) h.f64(v);
  h.f64(fr.total_shields);
  h.u64(fr.violating);
  h.u64(fr.unfixable);
  return h.value();
}

}  // namespace rlcr::gsino
