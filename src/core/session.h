// Staged, re-entrant flow-session API.
//
// The three flows the paper compares (ID+NO, iSINO, GSINO) decompose into
// the same four stages, each producing an immutable, shareable artifact:
//
//     route()          -> RoutingArtifact      (Phase I: global routing)
//     budget()         -> BudgetArtifact       (Section 3.1: Kth bounds)
//     solve_regions()  -> RegionSolveArtifact  (Phase II: per-region SINO)
//     refine()         -> RefineArtifact       (Phase III: local refinement)
//
// A FlowSession owns the artifact caches for one RoutingProblem. Stage
// inputs are explicit, so the dependency graph — and with it the
// invalidation rules — is visible in the signatures:
//
//   - RoutingArtifact depends only on the router profile (IdRouterOptions
//     minus `threads`, which never changes output) and the problem's nets.
//     Changing `crosstalk_bound_v`, `budget_margin`, or any Phase II/III
//     knob does NOT invalidate it — that is what makes what-if re-solves
//     cheap. Changing router options or the seed produces a different
//     profile and therefore a different artifact (and everything
//     downstream of it).
//   - BudgetArtifact depends on (rule, bound_v, margin) and — for the
//     iSINO rule, which budgets from routed critical-path lengths — on the
//     routing artifact it was derived from.
//   - RegionSolveArtifact depends on its routing + budget artifacts and
//     the Phase II knobs (solve mode, annealing).
//   - RefineArtifact depends on its solve artifact and the Phase III knobs.
//
// All artifacts are held behind shared_ptr<const>: they are safe to share
// across flows, sessions, and threads, and a FlowResult is nothing but a
// thin assembled view over them. Determinism is inherited from
// src/parallel's contract (see src/core/README.md): every stage is
// bit-identical at any thread count, so a reused artifact is
// indistinguishable from a recomputed one.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/budget.h"
#include "core/problem.h"
#include "grid/congestion.h"
#include "router/id_router.h"
#include "router/occupancy.h"
#include "sino/evaluator.h"

namespace rlcr::store {
class ArtifactStore;
}  // namespace rlcr::store

namespace rlcr::obs {
class MetricsSnapshot;
}  // namespace rlcr::obs

namespace rlcr::scenario {
struct NetlistDelta;
struct DeltaReport;
class DeltaEngine;
}  // namespace rlcr::scenario

namespace rlcr::gsino {

enum class FlowKind { kIdNo, kIsino, kGsino };

const char* flow_name(FlowKind kind);

/// The historical per-region annealing stream seed of Phase III re-solves
/// (seed ^ sol_index * 131071). Exposed so the speculative refine path
/// (core/refine.cpp) replicates FlowState::resolve_region's annealing
/// stream exactly on its snapshot overlays.
std::uint64_t region_resolve_seed(const RoutingProblem& p,
                                  std::size_t sol_index);

/// The (region, dir) <-> solution-index packing used by every per-region
/// container (solutions, congestion shields, batch items): one slot per
/// direction per region.
inline std::size_t sol_index_of(std::size_t region, grid::Dir d) {
  return region * 2 + static_cast<std::size_t>(d);
}
inline std::size_t sol_region(std::size_t sol_index) { return sol_index / 2; }
inline grid::Dir sol_dir(std::size_t sol_index) {
  return static_cast<grid::Dir>(sol_index % 2);
}

/// The SINO (or ordering) state of one (region, direction).
struct RegionSolution {
  sino::SinoInstance instance;          ///< nets with S_i and current Kth
  std::vector<std::size_t> net_index;   ///< instance net -> global net index
  std::vector<double> len_mm;           ///< net's tree wire length here (tracks)
  /// Net's critical source->sink path length inside this region (mm); zero
  /// when the region only hosts a branch to another sink. LSK (Eq. 1) sums
  /// path_len_mm * Ki — noise at a sink accumulates along its path only.
  std::vector<double> path_len_mm;
  ktable::SlotVec slots;                ///< track assignment
  std::vector<double> ki;               ///< per instance net, current Ki

  bool empty() const { return net_index.empty(); }
};

struct FlowTiming {
  double route_s = 0.0;
  double sino_s = 0.0;
  double refine_s = 0.0;
};

// --------------------------------------------------------------- observer

/// Pipeline stages, in dependency order.
enum class Stage { kRoute, kBudget, kSolveRegions, kRefine };

const char* stage_name(Stage stage);

constexpr std::size_t kNoRegion = static_cast<std::size_t>(-1);

/// One stage-progress event. Region-scoped events (individual Phase III
/// re-solves) carry the (region, dir) solution index in `region`; whole-
/// stage events use kNoRegion. `reused` marks artifacts served from the
/// session cache — their `seconds` is the original compute time, not the
/// (near-zero) lookup time.
struct StageEvent {
  Stage stage = Stage::kRoute;
  FlowKind flow = FlowKind::kIdNo;
  std::size_t region = kNoRegion;
  double seconds = 0.0;
  bool reused = false;
};

/// Progress/observer callback: one type-erased signature for every
/// consumer (sessions, the experiment harness, CLIs). Replaces the ad-hoc
/// ExperimentOptions::progress signature.
///
/// DEPRECATION NOTE: for timing/profiling, prefer the span tracer
/// (obs/trace.h) — it covers sub-stage phases the observer never sees
/// (router build/deletion, speculation rounds, per-region re-solves,
/// store I/O, pool occupancy) and exports Perfetto-loadable traces; the
/// counters behind it unify into obs::MetricsSnapshot
/// (FlowSession::metrics()). StageObserver stays supported as a
/// *progress* hook (live UIs reacting to stage completion), which is the
/// one job the record-and-export tracer does not do.
using StageObserver = std::function<void(const StageEvent&)>;

// --------------------------------------------------------------- artifacts

/// Index of per-(net, region, dir) critical-path lengths (um). Immutable
/// part of the routing artifact: Eq. (1) sums path_len * Ki over the
/// regions of a source->sink path only, so every downstream stage needs
/// this lookup.
class PathIndex {
 public:
  void set(std::size_t net, std::size_t region, grid::Dir dir, double len_um) {
    map_[key(net, region, dir)] = len_um;
  }
  /// Length in um, or 0 when the region only hosts a branch.
  double length_um(std::size_t net, std::size_t region, grid::Dir dir) const {
    const auto it = map_.find(key(net, region, dir));
    return it == map_.end() ? 0.0 : it->second;
  }

 private:
  static std::uint64_t key(std::size_t net, std::size_t region, grid::Dir dir) {
    return (static_cast<std::uint64_t>(net) << 33) | (region << 1) |
           static_cast<std::uint64_t>(dir);
  }
  std::unordered_map<std::uint64_t, double> map_;
};

/// Build the SINO instance of one (region, dir) from an occupancy's
/// segment list: member nets in segment order with their S_i / Kth, wire
/// and critical-path lengths, and the pairwise sensitivity edges. This is
/// the one construction path Phase II uses for every region
/// (FlowSession::solve_regions), exposed so the incremental delta engine
/// (src/scenario) rebuilds exactly the dirty regions through it — a
/// rebuilt region is bit-identical to the same region in a from-scratch
/// solve because both run this function on identical inputs.
RegionSolution build_region_solution(const RoutingProblem& problem,
                                     const router::Occupancy& occ,
                                     std::size_t region, grid::Dir dir,
                                     const std::vector<double>& kth,
                                     const PathIndex& paths);

/// Phase I output: the routed tree of every net plus the derived,
/// flow-independent views (occupancy, segment congestion, critical paths).
/// Shared by every flow whose router profile matches — ID+NO and iSINO
/// always share one (the paper's fairness rule gives GSINO its own
/// shield-reserving profile).
struct RoutingArtifact {
  router::IdRouterOptions options;  ///< profile actually routed with
  /// Provenance: the problem seed this artifact was routed under. Not
  /// part of the cache identity — a session is pinned to one problem, so
  /// a seed change arrives as a new problem/session; the field lets
  /// consumers comparing artifacts across sessions tell them apart.
  std::uint64_t seed = 1;
  std::shared_ptr<const router::RoutingResult> routing;
  std::shared_ptr<const router::Occupancy> occupancy;
  /// Segment counts only (shield counts all zero) — the base every
  /// region-solve congestion map is copied from.
  std::shared_ptr<const grid::CongestionMap> segments;
  std::shared_ptr<const std::vector<double>> critical_path_um;  ///< per net
  std::shared_ptr<const PathIndex> paths;
  double seconds = 0.0;  ///< compute time when this artifact was built
};

/// Derive the flow-independent views of a routed result — occupancy,
/// segment congestion, critical paths/path index — and assemble the full
/// artifact (seconds left at 0 for the caller to stamp). This is the one
/// derivation path shared by FlowSession::route() and the persistent
/// store's loader (store/serial.cpp), so an artifact deserialized from
/// disk is bit-identical to a freshly computed one: the derivations are
/// deterministic functions of (problem, routes).
std::shared_ptr<RoutingArtifact> derive_routing_artifact(
    const RoutingProblem& problem, const router::IdRouterOptions& options,
    std::uint64_t seed, std::shared_ptr<const router::RoutingResult> routing);

/// How Phase I budgeting derives per-net Kth bounds.
enum class BudgetRule {
  kManhattan,        ///< LSK / Le (Manhattan estimate) — ID+NO reporting
  kRoutedLength,     ///< LSK / routed critical path — iSINO's post-route rule
  kManhattanMargin,  ///< margin * LSK / Le — GSINO's Phase I rule
};

BudgetRule budget_rule(FlowKind kind);

struct BudgetArtifact {
  BudgetRule rule = BudgetRule::kManhattan;
  double bound_v = 0.15;
  double margin = 1.0;  ///< applied under kManhattanMargin only
  std::shared_ptr<const std::vector<double>> kth;  ///< per net
  double seconds = 0.0;
};

/// Phase II output: every (region, dir) SINO solution plus the derived
/// noise state, as an immutable snapshot. Phase III copies the mutable
/// parts into a FlowState; flows without refinement view it directly.
struct RegionSolveArtifact {
  FlowKind kind = FlowKind::kIdNo;  ///< solve mode (net-order vs SINO)
  bool annealed = false;            ///< Phase II annealing was enabled
  std::shared_ptr<const RoutingArtifact> phase1;
  std::shared_ptr<const BudgetArtifact> budget;
  std::shared_ptr<const std::vector<RegionSolution>> solutions;
  std::shared_ptr<const std::vector<double>> net_lsk;
  std::shared_ptr<const std::vector<double>> net_noise;
  std::shared_ptr<const grid::CongestionMap> congestion;  ///< with shields
  std::size_t violating = 0;
  double seconds = 0.0;

  std::size_t sol_index(std::size_t region, grid::Dir d) const {
    return sol_index_of(region, d);
  }
};

struct RefineStats {
  int pass1_nets_fixed = 0;
  int pass1_resolves = 0;
  int pass1_gave_up = 0;
  int pass2_shields_removed = 0;
  int pass2_accepted = 0;
  int pass2_rejected = 0;
  int batch_sweeps = 0;          ///< batched pass-2 sweeps executed
  int batch_regions_resolved = 0;  ///< regions re-solved inside those sweeps
  /// Pass-1 speculation counters (parallel/speculate.h; see
  /// RefineOptions::speculate_batch): fix attempts fanned out, memoized
  /// attempts the serial order applied after read-set validation, and
  /// invalidated attempts replayed serially. All zero on the serial path;
  /// they vary with (threads, speculate_batch), so goldens pin the refined
  /// state, never these.
  int spec_attempted = 0;
  int spec_committed = 0;
  int spec_replayed = 0;
};

/// Phase III knobs (a refine() option on the session).
struct RefineOptions {
  /// Batch independent (net-disjoint) region re-solves between refinement
  /// sweeps through sino::solve_batch instead of one region at a time.
  /// Output is deterministic and bit-identical at any thread count, but
  /// the sweep visits regions in a different order than the serial pass 2,
  /// so results differ from batch=false (goldens pin batch=false).
  bool batch_pass2 = false;
  /// Pool participants for batched pass-2 re-solves and speculative pass-1
  /// fix attempts. 0 = auto (RLCR_THREADS env var, else hardware
  /// concurrency); 1 = exact serial path. Never changes output.
  int threads = 0;
  /// Speculative batch width of pass 1: up to this many worst-violator fix
  /// attempts are evaluated concurrently against a frozen snapshot
  /// (parallel/speculate.h); the unchanged serial order then applies each
  /// memoized attempt only after its recorded read set (regions + LSK
  /// entries) is proven untouched by earlier commits, and replays the rest
  /// serially. Refined state is bit-identical at every
  /// (threads, speculate_batch) combination; 0 selects an adaptive width
  /// (parallel::AdaptiveBatch — deterministic for a fixed thread count);
  /// 1 or negative — or an effective thread count of 1 — disables
  /// speculation (the exact serial path).
  int speculate_batch = 8;
};

/// Phase III output: the refined per-region state.
struct RefineArtifact {
  std::shared_ptr<const RegionSolveArtifact> base;
  std::shared_ptr<const std::vector<RegionSolution>> solutions;
  std::shared_ptr<const std::vector<double>> net_lsk;
  std::shared_ptr<const std::vector<double>> net_noise;
  std::shared_ptr<const grid::CongestionMap> congestion;
  std::size_t violating = 0;
  std::size_t unfixable = 0;
  RefineStats stats;
  double seconds = 0.0;
};

// -------------------------------------------------------------- FlowResult

/// A thin assembled view over the stage artifacts of one flow. Copyable
/// and cheap: the heavyweight state lives in the shared artifacts. The
/// final per-region state aliases the refine artifact's when Phase III
/// ran, else the solve artifact's.
struct FlowResult {
  FlowKind kind = FlowKind::kIdNo;
  std::string name;
  double bound_v = 0.15;

  std::shared_ptr<const RoutingArtifact> phase1;
  std::shared_ptr<const BudgetArtifact> budget;
  std::shared_ptr<const RegionSolveArtifact> phase2;
  std::shared_ptr<const RefineArtifact> phase3;  ///< null unless refined

  /// Final (possibly refined) state.
  std::shared_ptr<const std::vector<RegionSolution>> solutions_ptr;
  std::shared_ptr<const std::vector<double>> net_lsk_ptr;
  std::shared_ptr<const std::vector<double>> net_noise_ptr;
  std::shared_ptr<const grid::CongestionMap> congestion;
  std::shared_ptr<const router::Occupancy> occupancy;

  const router::RoutingResult& routing() const { return *phase1->routing; }
  const std::vector<RegionSolution>& solutions() const { return *solutions_ptr; }
  const std::vector<double>& net_lsk() const { return *net_lsk_ptr; }
  const std::vector<double>& net_noise() const { return *net_noise_ptr; }
  const std::vector<double>& kth() const { return *budget->kth; }
  const std::vector<double>& critical_path_um() const {
    return *phase1->critical_path_um;
  }

  double total_wirelength_um = 0.0;
  double avg_wirelength_um = 0.0;
  grid::RoutingArea area;
  double total_shields = 0.0;
  std::size_t violating = 0;   ///< nets with noise > bound
  std::size_t unfixable = 0;   ///< GSINO: nets Phase III gave up on
  FlowTiming timing;

  std::size_t sol_index(std::size_t region, grid::Dir d) const {
    return sol_index_of(region, d);
  }
};

/// FNV-1a over the flow's final per-net state (LSK/noise bit patterns,
/// shields, violation counts): one u64 that moves iff the output moved.
/// Deterministic across thread counts by the src/parallel and
/// parallel/speculate.h contracts — route_cli prints it, the service
/// returns it on the wire, and CI's multi-thread smoke pins it against a
/// threads=1 run.
std::uint64_t state_fingerprint(const FlowResult& fr);

// --------------------------------------------------------------- FlowState

/// Mutable Phase III working state, owned by the session (or by whoever
/// asked the session for one). The historical free functions
/// resolve_region / refresh_noise / finalize_metrics over FlowResult are
/// methods here; LocalRefiner operates on a FlowState.
struct FlowState {
  const RoutingProblem* problem = nullptr;
  FlowKind kind = FlowKind::kGsino;
  double bound_v = 0.15;
  std::shared_ptr<const RoutingArtifact> phase1;
  std::shared_ptr<const BudgetArtifact> budget;

  std::vector<RegionSolution> solutions;  ///< index = region * 2 + dir
  std::vector<double> net_lsk;            ///< Eq. (1) per net
  std::vector<double> net_noise;          ///< table lookup of net_lsk (V)
  std::unique_ptr<grid::CongestionMap> congestion;
  std::size_t violating = 0;
  std::size_t unfixable = 0;

  /// Optional progress sink for per-region re-solve events.
  StageObserver observer;

  const router::Occupancy& occupancy() const { return *phase1->occupancy; }
  std::size_t sol_index(std::size_t region, grid::Dir d) const {
    return sol_index_of(region, d);
  }

  /// Re-solve one region under the instance's current Kth values (greedy,
  /// optionally annealing when infeasible), updating slots/ki, the
  /// region's shield count, and every member net's LSK/noise.
  void resolve_region(std::size_t sol_index, bool allow_anneal);

  /// Batched variant: re-solve several regions through sino::solve_batch.
  /// Bit-identical to calling resolve_region over `sol_indices` in order,
  /// at any `threads` value (the solves are independent; LSK/shield
  /// accumulation replays serially in the given order).
  void resolve_regions(const std::vector<std::size_t>& sol_indices,
                       bool allow_anneal, int threads = 1);

  /// Density (utilization / capacity) of the (region, dir) behind
  /// `sol_index` under the current congestion map.
  double solution_density(std::size_t sol_index) const;

  /// Recompute noise from LSK for all nets and refresh `violating`.
  void refresh_noise();

 private:
  /// The one region-commit sequence both resolve paths share — subtract
  /// old LSK contributions, install slots/ki, add new contributions and
  /// member-net noise, refresh the region's shield count — so the serial
  /// and batched paths cannot drift apart in floating-point op order (the
  /// bit-identity contract of resolve_regions).
  void commit_region(std::size_t sol_index, ktable::SlotVec&& slots,
                     std::vector<double>&& ki);
};

// -------------------------------------------------------------- FlowSession

/// Stage-execution counters: `*_executed` counts actual compute,
/// `*_requests` counts stage calls, and `*_loaded` counts artifacts served
/// from the persistent store (neither a compute nor an in-memory hit). A
/// what-if re-solve at a new bound shows route_requests advancing while
/// route_executed stands still — the proof Phase I was skipped; a fresh
/// process warm-starting from a shared store shows route_executed == 0
/// with route_loaded > 0.
struct StageCounters {
  std::size_t route_requests = 0, route_executed = 0, route_loaded = 0;
  std::size_t budget_requests = 0, budget_executed = 0, budget_loaded = 0;
  std::size_t solve_requests = 0, solve_executed = 0, solve_loaded = 0;
  std::size_t refine_requests = 0, refine_executed = 0, refine_loaded = 0;
  /// Speculation totals accumulated from the stats of every artifact this
  /// session computed (parallel/speculate.h): the Phase I deletion loop
  /// and Phase III pass 1 respectively. Loaded/reused artifacts don't
  /// advance them — the counters describe work this process performed.
  std::size_t route_spec_attempted = 0, route_spec_committed = 0,
              route_spec_replayed = 0;
  std::size_t refine_spec_attempted = 0, refine_spec_committed = 0,
              refine_spec_replayed = 0;
  /// Incremental-delta economics (FlowSession::apply_delta, src/scenario):
  /// how many pool nets the delta sub-runs actually re-routed vs spliced
  /// unchanged from the previous routing artifact, and how many
  /// (region, dir) Phase II solves were recomputed vs carried over —
  /// summed across every cached artifact each apply_delta() patched. The
  /// reused counts are the compute avoided by incrementality; the patched
  /// results are bit-identical to from-scratch runs, so the split is pure
  /// economics, never behavior.
  std::size_t delta_applies = 0;
  std::size_t delta_nets_rerouted = 0, delta_nets_reused = 0;
  std::size_t delta_regions_solved = 0, delta_regions_reused = 0;
};

/// What-if overrides for a re-entrant run: every field left unset falls
/// back to the problem's GsinoParams. None of these invalidate the
/// routing artifact.
struct Scenario {
  std::optional<double> bound_v;
  std::optional<double> budget_margin;
  std::optional<bool> anneal_phase2;
  /// Steiner tree-quality tier for the router (src/steiner). Unlike the
  /// fields above — which re-solve downstream stages off a shared routing
  /// artifact — overriding the tree profile changes the routing profile
  /// itself, so Phase I reruns (or loads a per-profile artifact from the
  /// store) rather than reusing the default-profile routes.
  std::optional<steiner::TreeProfile> tree_profile;
  RefineOptions refine;
};

struct SessionOptions {
  StageObserver observer;
  /// Optional persistent artifact store (store/artifact_store.h). When
  /// set, route(), budget(), and solve_regions() consult it on an
  /// in-memory cache miss before computing — a fresh process warm-starts
  /// from artifacts a previous session published — and publish freshly
  /// computed artifacts back. Loaded artifacts are bit-identical to computed ones (the
  /// store's load path re-derives views through derive_routing_artifact
  /// and verifies the embedded route hash), so downstream stages cannot
  /// tell the difference. Safe to share one store across concurrent
  /// sessions and processes.
  std::shared_ptr<store::ArtifactStore> store;
  /// Per-stage in-memory artifact cache budget (entries, LRU eviction;
  /// 0 = unbounded). The default is generous — experiment-sized runs
  /// never evict — while a long-lived what-if service can bound its
  /// footprint; every evicted stage artifact (routing, budget, solve,
  /// refine) stays reachable through `store`.
  std::size_t cache_entries = 64;
  /// Emit this session's stage spans into an active obs::TraceSession
  /// (obs/trace.h). Off silences only this session's "session"-category
  /// spans — subsystem spans (router, store, pool...) key off the global
  /// trace switch alone.
  bool trace = true;
};

/// A staged, re-entrant pipeline over one RoutingProblem. Stages can be
/// driven individually (explicit artifact plumbing) or through run(),
/// which executes route -> budget -> solve_regions [-> refine] with
/// caching: any artifact whose inputs are unchanged is reused, so
/// re-running a flow at a new crosstalk bound skips Phase I entirely, and
/// flows with identical router profiles share one routing artifact.
class FlowSession {
 public:
  explicit FlowSession(const RoutingProblem& problem,
                       SessionOptions options = {});

  const RoutingProblem& problem() const { return *problem_; }
  const StageCounters& counters() const { return counters_; }

  /// This session's counters, the most recently touched routing/refine
  /// artifacts' stats, and the attached store's stats (when one is
  /// attached) as a flat name-keyed registry view — see obs/metrics.h
  /// for the naming convention and JSON export.
  obs::MetricsSnapshot metrics() const;

  /// Router profile a flow routes with (the paper's fairness rule: only
  /// GSINO reserves shield area and gets detour headroom).
  router::IdRouterOptions router_profile(FlowKind kind) const;

  // ---- stages ----------------------------------------------------------

  /// Phase I for a flow's router profile; cached per profile.
  std::shared_ptr<const RoutingArtifact> route(FlowKind kind);
  /// Phase I for an explicit profile (the `threads` field is ignored for
  /// cache identity — it never changes output). `kind` only labels the
  /// observer events this call emits.
  std::shared_ptr<const RoutingArtifact> route(
      const router::IdRouterOptions& options, FlowKind kind);

  /// Budgeting; cached per (rule, bound, margin, routing artifact). The
  /// margin is normalized to 1.0 for rules that never apply it, so a
  /// margin-only what-if on ID+NO/iSINO is a cache hit.
  std::shared_ptr<const BudgetArtifact> budget(
      FlowKind kind, const std::shared_ptr<const RoutingArtifact>& phase1,
      double bound_v, double margin);

  /// Phase II; cached per (kind, anneal, routing, budget).
  std::shared_ptr<const RegionSolveArtifact> solve_regions(
      FlowKind kind, const std::shared_ptr<const RoutingArtifact>& phase1,
      const std::shared_ptr<const BudgetArtifact>& budget, bool anneal_phase2);

  /// Phase III; cached per (solve artifact, batch_pass2) — refinement is
  /// deterministic (RefineOptions::threads never changes output), so a
  /// repeat request is a cache hit.
  std::shared_ptr<const RefineArtifact> refine(
      const std::shared_ptr<const RegionSolveArtifact>& solve,
      const RefineOptions& options = {});

  // ---- assembled runs --------------------------------------------------

  /// Full pipeline under the problem's params, reusing cached artifacts.
  FlowResult run(FlowKind kind) { return run(kind, Scenario{}); }

  /// What-if re-solve: same pipeline with scenario overrides. Changing
  /// bound_v / budget_margin / Phase II/III knobs reuses the routing
  /// artifact.
  FlowResult run(FlowKind kind, const Scenario& scenario);

  /// Mutable Phase III working state over the (cached) solve artifact of
  /// a flow — the entry point for custom refinement.
  FlowState state(FlowKind kind, const Scenario& scenario = {});
  /// Same, over an explicit solve artifact.
  FlowState state(const RegionSolveArtifact& solve) const;

  // ---- incremental deltas ---------------------------------------------

  /// Apply a slot-preserving netlist delta (add / remove / re-pin a set of
  /// nets) to this session in place: the session's problem becomes the
  /// mutated problem, every cached routing artifact is patched by
  /// re-routing only the nets whose routes can change (the delta's nets
  /// plus the bbox-connected closure of pool nets around them — everything
  /// else is spliced from the old artifact), cached budget and Phase II
  /// solve artifacts are patched downstream (solves recompute only dirty
  /// (region, dir) instances), and refine artifacts are invalidated
  /// (Phase III orders work by global worst-violator, which has no
  /// regional patch). Every patched artifact is bit-identical to what a
  /// from-scratch session over the mutated problem computes — the contract
  /// tests/delta_differential_test.cpp pins — and is published to the
  /// persistent store under the mutated problem's own keys, so delta
  /// chains warm-start across processes. Implemented in
  /// src/scenario/delta.cpp.
  scenario::DeltaReport apply_delta(const scenario::NetlistDelta& delta);

 private:
  friend class scenario::DeltaEngine;
  void emit(Stage stage, FlowKind flow, double seconds, bool reused) const;
  /// route -> budget -> solve_regions under scenario overrides (the shared
  /// front of run() and state()).
  std::shared_ptr<const RegionSolveArtifact> solve_for(
      FlowKind kind, const Scenario& scenario);
  FlowResult assemble(FlowKind kind,
                      std::shared_ptr<const RegionSolveArtifact> solve,
                      std::shared_ptr<const RefineArtifact> refined) const;

  const RoutingProblem* problem_;
  /// Set by apply_delta(): the mutated problem the session now serves
  /// (problem_ points here afterwards). Null until the first delta — the
  /// constructor's problem stays caller-owned, as before.
  std::shared_ptr<const RoutingProblem> owned_problem_;
  /// Problems displaced by later deltas. Artifacts hold pointers into
  /// their problem's grid (occupancy, congestion dimensions), and a caller
  /// may still hold FlowResults assembled before a delta — retiring
  /// instead of dropping keeps those views valid for the session's
  /// lifetime. One entry per applied delta; problems are small next to
  /// their artifacts.
  std::vector<std::shared_ptr<const RoutingProblem>> retired_problems_;
  SessionOptions options_;
  StageCounters counters_;

  struct RouteEntry {
    router::IdRouterOptions options;
    std::shared_ptr<const RoutingArtifact> artifact;
  };
  struct BudgetEntry {
    BudgetRule rule;
    double bound_v, margin;
    /// Cache identity for the kRoutedLength rule (null otherwise). Held
    /// as a shared_ptr so the artifact stays alive while the entry keys
    /// on it — a raw pointer could be reused by a new artifact at the
    /// same address and produce a stale false hit.
    std::shared_ptr<const RoutingArtifact> phase1;
    std::shared_ptr<const BudgetArtifact> artifact;
  };
  struct SolveEntry {
    FlowKind kind;
    bool anneal;
    const RoutingArtifact* phase1;
    const BudgetArtifact* budget;
    std::shared_ptr<const RegionSolveArtifact> artifact;
  };
  struct RefineEntry {
    /// Kept alive by artifact->base, so pointer identity is stable.
    const RegionSolveArtifact* solve;
    bool batch_pass2;
    std::shared_ptr<const RefineArtifact> artifact;
  };
  // Each cache is an LRU list in recency order (back = most recent): a hit
  // rotates the entry to the back, an insert beyond the entry budget
  // (SessionOptions::cache_entries) evicts the front. Entries hold their
  // artifacts via shared_ptr, so eviction never invalidates an artifact a
  // caller (or a downstream cache entry) still references — the raw-pointer
  // keys in SolveEntry/RefineEntry stay unambiguous because each entry's
  // artifact pins its own inputs alive (no address reuse while the entry
  // lives). Evicted routing/budget work stays reachable through the
  // persistent store when one is attached; evicted solve/refine artifacts
  // recompute.
  std::vector<RouteEntry> route_cache_;
  std::vector<BudgetEntry> budget_cache_;
  std::vector<SolveEntry> solve_cache_;
  std::vector<RefineEntry> refine_cache_;
};

}  // namespace rlcr::gsino
