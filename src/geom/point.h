// Integer grid points (routing-region coordinates) and continuous points
// (placement coordinates in micrometres), with Manhattan metrics.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <cstdlib>
#include <functional>

namespace rlcr::geom {

/// A point on the routing-region grid: x = column, y = row.
struct Point {
  std::int32_t x = 0;
  std::int32_t y = 0;

  friend constexpr auto operator<=>(const Point&, const Point&) = default;
};

/// A continuous point in micrometres (placement / pin coordinates).
struct PointF {
  double x = 0.0;
  double y = 0.0;

  friend constexpr bool operator==(const PointF&, const PointF&) = default;
};

/// Manhattan (L1) distance between grid points, in grid units.
constexpr std::int64_t manhattan(const Point& a, const Point& b) {
  const std::int64_t dx = std::int64_t{a.x} - b.x;
  const std::int64_t dy = std::int64_t{a.y} - b.y;
  return (dx < 0 ? -dx : dx) + (dy < 0 ? -dy : dy);
}

/// Manhattan (L1) distance between continuous points, in micrometres.
inline double manhattan(const PointF& a, const PointF& b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

}  // namespace rlcr::geom

template <>
struct std::hash<rlcr::geom::Point> {
  std::size_t operator()(const rlcr::geom::Point& p) const noexcept {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.x)) << 32) |
        static_cast<std::uint32_t>(p.y);
    // SplitMix64-style scramble.
    std::uint64_t z = key + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }
};
