// Axis-aligned rectangles over grid and continuous coordinates, including
// bounding-box accumulation (net bounding boxes drive connection-graph
// construction and half-perimeter wire length).
#pragma once

#include <algorithm>
#include <limits>

#include "geom/point.h"

namespace rlcr::geom {

/// Inclusive integer rectangle on the region grid: [lo.x, hi.x] x [lo.y, hi.y].
struct Rect {
  Point lo{0, 0};
  Point hi{-1, -1};  // default: empty (hi < lo)

  constexpr bool empty() const { return hi.x < lo.x || hi.y < lo.y; }
  constexpr std::int64_t width() const {
    return empty() ? 0 : std::int64_t{hi.x} - lo.x + 1;
  }
  constexpr std::int64_t height() const {
    return empty() ? 0 : std::int64_t{hi.y} - lo.y + 1;
  }
  constexpr std::int64_t cell_count() const { return width() * height(); }

  constexpr bool contains(const Point& p) const {
    return !empty() && p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }

  /// Grow to include p.
  constexpr void expand(const Point& p) {
    if (empty()) {
      lo = hi = p;
      return;
    }
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
  }

  /// Grow by `margin` cells on each side, clamped to [0, limit-1] per axis.
  constexpr Rect inflated(std::int32_t margin, std::int32_t limit_x,
                          std::int32_t limit_y) const {
    Rect r = *this;
    if (r.empty()) return r;
    r.lo.x = std::max(0, r.lo.x - margin);
    r.lo.y = std::max(0, r.lo.y - margin);
    r.hi.x = std::min(limit_x - 1, r.hi.x + margin);
    r.hi.y = std::min(limit_y - 1, r.hi.y + margin);
    return r;
  }

  /// Half-perimeter in grid units (0 for empty or single-cell boxes).
  constexpr std::int64_t half_perimeter() const {
    return empty() ? 0 : (width() - 1) + (height() - 1);
  }

  friend constexpr bool operator==(const Rect&, const Rect&) = default;
};

/// Continuous rectangle in micrometres.
struct RectF {
  double lo_x = std::numeric_limits<double>::infinity();
  double lo_y = std::numeric_limits<double>::infinity();
  double hi_x = -std::numeric_limits<double>::infinity();
  double hi_y = -std::numeric_limits<double>::infinity();

  bool empty() const { return hi_x < lo_x || hi_y < lo_y; }
  double width() const { return empty() ? 0.0 : hi_x - lo_x; }
  double height() const { return empty() ? 0.0 : hi_y - lo_y; }

  void expand(const PointF& p) {
    lo_x = std::min(lo_x, p.x);
    lo_y = std::min(lo_y, p.y);
    hi_x = std::max(hi_x, p.x);
    hi_y = std::max(hi_y, p.y);
  }

  /// Half-perimeter wire length in micrometres.
  double half_perimeter() const { return empty() ? 0.0 : width() + height(); }
};

}  // namespace rlcr::geom
