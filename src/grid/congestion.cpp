#include "grid/congestion.h"

#include <algorithm>

namespace rlcr::grid {

CongestionMap::CongestionMap(const RegionGrid& grid, RegionStorage storage)
    : grid_(&grid) {
  for (auto& v : seg_) v.reset(grid.region_count(), storage);
  for (auto& v : shield_) v.reset(grid.region_count(), storage);
}

void CongestionMap::clear() {
  for (auto& v : seg_) v.clear();
  for (auto& v : shield_) v.clear();
}

namespace {

/// Visit every region held by at least one allocated tile of the four
/// stores, in ascending region order, calling f(region). Tiles skipped
/// here hold exactly-zero utilization and shields in every direction, so
/// aggregates over the visited set match the dense full scan bit for bit
/// (the four stores share one tiling: same size, same mode).
template <typename F>
void for_each_live_region(const TiledVec<double> (&seg)[2],
                          const TiledVec<double> (&shield)[2], F&& f) {
  const std::size_t tiles = seg[0].tile_count();
  for (std::size_t t = 0; t < tiles; ++t) {
    if (!seg[0].tile_allocated(t) && !seg[1].tile_allocated(t) &&
        !shield[0].tile_allocated(t) && !shield[1].tile_allocated(t)) {
      continue;
    }
    const std::size_t end = seg[0].tile_end(t);
    for (std::size_t r = seg[0].tile_begin(t); r < end; ++r) f(r);
  }
}

}  // namespace

double CongestionMap::max_density() const {
  double best = 0.0;
  for_each_live_region(seg_, shield_, [&](std::size_t r) {
    for (Dir d : kBothDirs) best = std::max(best, density(r, d));
  });
  return best;
}

double CongestionMap::total_overflow() const {
  double acc = 0.0;
  for_each_live_region(seg_, shield_, [&](std::size_t r) {
    for (Dir d : kBothDirs) {
      const double over = utilization(r, d) - grid_->capacity(d);
      if (over > 0.0) acc += over;
    }
  });
  return acc;
}

double CongestionMap::total_shields() const {
  double acc = 0.0;
  for_each_live_region(seg_, shield_, [&](std::size_t r) {
    for (Dir d : kBothDirs) {
      const double s = shields(r, d);
      if (s != 0.0) acc += s;
    }
  });
  return acc;
}

std::size_t CongestionMap::storage_bytes() const {
  std::size_t bytes = 0;
  for (const auto& v : seg_) bytes += v.storage_bytes();
  for (const auto& v : shield_) bytes += v.storage_bytes();
  return bytes;
}

RoutingArea compute_routing_area(const CongestionMap& cmap) {
  const RegionGrid& g = cmap.grid();
  RoutingArea out;

  // A region needing more vertical tracks than VC widens by the ratio;
  // more horizontal tracks than HC make it taller.
  for (std::int32_t row = 0; row < g.rows(); ++row) {
    double row_len = 0.0;
    for (std::int32_t col = 0; col < g.cols(); ++col) {
      const std::size_t r = g.index({col, row});
      const double need = cmap.utilization(r, Dir::kVertical);
      const double ratio = std::max(1.0, need / g.capacity(Dir::kVertical));
      row_len += g.region_w_um() * ratio;
    }
    out.width_um = std::max(out.width_um, row_len);
  }
  for (std::int32_t col = 0; col < g.cols(); ++col) {
    double col_len = 0.0;
    for (std::int32_t row = 0; row < g.rows(); ++row) {
      const std::size_t r = g.index({col, row});
      const double need = cmap.utilization(r, Dir::kHorizontal);
      const double ratio = std::max(1.0, need / g.capacity(Dir::kHorizontal));
      col_len += g.region_h_um() * ratio;
    }
    out.height_um = std::max(out.height_um, col_len);
  }
  return out;
}

}  // namespace rlcr::grid
