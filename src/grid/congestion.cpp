#include "grid/congestion.h"

#include <algorithm>

namespace rlcr::grid {

CongestionMap::CongestionMap(const RegionGrid& grid) : grid_(&grid) {
  for (auto& v : seg_) v.assign(grid.region_count(), 0.0);
  for (auto& v : shield_) v.assign(grid.region_count(), 0.0);
}

void CongestionMap::clear() {
  for (auto& v : seg_) std::fill(v.begin(), v.end(), 0.0);
  for (auto& v : shield_) std::fill(v.begin(), v.end(), 0.0);
}

double CongestionMap::max_density() const {
  double best = 0.0;
  for (std::size_t r = 0; r < grid_->region_count(); ++r) {
    for (Dir d : kBothDirs) best = std::max(best, density(r, d));
  }
  return best;
}

double CongestionMap::total_overflow() const {
  double acc = 0.0;
  for (std::size_t r = 0; r < grid_->region_count(); ++r) {
    for (Dir d : kBothDirs) {
      const double over = utilization(r, d) - grid_->capacity(d);
      if (over > 0.0) acc += over;
    }
  }
  return acc;
}

double CongestionMap::total_shields() const {
  double acc = 0.0;
  for (std::size_t r = 0; r < grid_->region_count(); ++r) {
    for (Dir d : kBothDirs) acc += shields(r, d);
  }
  return acc;
}

RoutingArea compute_routing_area(const CongestionMap& cmap) {
  const RegionGrid& g = cmap.grid();
  RoutingArea out;

  // A region needing more vertical tracks than VC widens by the ratio;
  // more horizontal tracks than HC make it taller.
  for (std::int32_t row = 0; row < g.rows(); ++row) {
    double row_len = 0.0;
    for (std::int32_t col = 0; col < g.cols(); ++col) {
      const std::size_t r = g.index({col, row});
      const double need = cmap.utilization(r, Dir::kVertical);
      const double ratio = std::max(1.0, need / g.capacity(Dir::kVertical));
      row_len += g.region_w_um() * ratio;
    }
    out.width_um = std::max(out.width_um, row_len);
  }
  for (std::int32_t col = 0; col < g.cols(); ++col) {
    double col_len = 0.0;
    for (std::int32_t row = 0; row < g.rows(); ++row) {
      const std::size_t r = g.index({col, row});
      const double need = cmap.utilization(r, Dir::kHorizontal);
      const double ratio = std::max(1.0, need / g.capacity(Dir::kHorizontal));
      col_len += g.region_h_um() * ratio;
    }
    out.height_um = std::max(out.height_um, col_len);
  }
  return out;
}

}  // namespace rlcr::grid
