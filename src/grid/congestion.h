// Per-region track accounting and the routing-area model.
//
// Track utilization follows the paper's Eq. (2) terminology:
//   HU(R) = Nns + Nss   (net segments + shields on horizontal tracks)
//   HD(R) = HU(R) / HC(R)
//   HOFR(R) = max(0, HU - HC) / HC   (relative overflow)
// and symmetrically for vertical tracks.
//
// Routing area (the paper's Table 3 metric, "product of the maximum row and
// column lengths") is modeled by letting each region expand when its track
// requirement exceeds capacity: extra vertical tracks widen a region, extra
// horizontal tracks make it taller. The chip's routing width is the longest
// row of (possibly widened) regions; its height the tallest column.
#pragma once

#include <cstddef>

#include "grid/region_grid.h"
#include "grid/tiled.h"

namespace rlcr::grid {

/// Mutable track-usage state layered over an immutable RegionGrid.
/// Segment and shield counts are doubles so the router can work with the
/// fractional shield *estimates* of Eq. (3) before any SINO solution exists.
///
/// Storage is per-region tiled by default (grid/tiled.h): ISPD98-size
/// grids allocate only the tiles traffic touches, and the whole-grid
/// aggregates below skip unallocated tiles — with results bit-identical to
/// the dense scan (skipped regions contribute exactly zero). Pass
/// RegionStorage::kDense (or build with RLCR_DENSE_GRID) for the
/// historical flat arrays.
class CongestionMap {
 public:
  explicit CongestionMap(const RegionGrid& grid,
                         RegionStorage storage = default_region_storage());

  const RegionGrid& grid() const { return *grid_; }
  RegionStorage storage() const { return seg_[0].storage(); }

  double segments(std::size_t region, Dir d) const {
    return seg_[static_cast<std::size_t>(d)][region];
  }
  double shields(std::size_t region, Dir d) const {
    return shield_[static_cast<std::size_t>(d)][region];
  }
  void set_segments(std::size_t region, Dir d, double v) {
    seg_[static_cast<std::size_t>(d)].ref(region) = v;
  }
  void set_shields(std::size_t region, Dir d, double v) {
    shield_[static_cast<std::size_t>(d)].ref(region) = v;
  }
  void add_segments(std::size_t region, Dir d, double delta) {
    seg_[static_cast<std::size_t>(d)].ref(region) += delta;
  }
  void add_shields(std::size_t region, Dir d, double delta) {
    shield_[static_cast<std::size_t>(d)].ref(region) += delta;
  }

  /// HU / VU: segments + shields.
  double utilization(std::size_t region, Dir d) const {
    return segments(region, d) + shields(region, d);
  }
  /// HD / VD: utilization over capacity.
  double density(std::size_t region, Dir d) const {
    return utilization(region, d) / grid_->capacity(d);
  }
  /// HOFR / VOFR: relative overflow (0 when under capacity).
  double relative_overflow(std::size_t region, Dir d) const {
    const double over = utilization(region, d) - grid_->capacity(d);
    return over > 0.0 ? over / grid_->capacity(d) : 0.0;
  }

  void clear();

  /// Maximum density over all regions and directions.
  double max_density() const;
  /// Sum of absolute overflow (tracks beyond capacity) over all regions.
  double total_overflow() const;
  /// Total shield count over all regions.
  double total_shields() const;

  /// Heap bytes held by the four per-region stores (the dense-vs-tiled
  /// comparison surface recorded by bench_ispd98).
  std::size_t storage_bytes() const;

 private:
  const RegionGrid* grid_;
  TiledVec<double> seg_[2];
  TiledVec<double> shield_[2];
};

/// Routing-area result (Table 3 metric).
struct RoutingArea {
  double width_um = 0.0;   ///< maximum row length
  double height_um = 0.0;  ///< maximum column length
  double area_um2() const { return width_um * height_um; }
};

/// Expansion-based routing area: regions over capacity grow proportionally.
RoutingArea compute_routing_area(const CongestionMap& cmap);

}  // namespace rlcr::grid
