// Per-region track accounting and the routing-area model.
//
// Track utilization follows the paper's Eq. (2) terminology:
//   HU(R) = Nns + Nss   (net segments + shields on horizontal tracks)
//   HD(R) = HU(R) / HC(R)
//   HOFR(R) = max(0, HU - HC) / HC   (relative overflow)
// and symmetrically for vertical tracks.
//
// Routing area (the paper's Table 3 metric, "product of the maximum row and
// column lengths") is modeled by letting each region expand when its track
// requirement exceeds capacity: extra vertical tracks widen a region, extra
// horizontal tracks make it taller. The chip's routing width is the longest
// row of (possibly widened) regions; its height the tallest column.
#pragma once

#include <vector>

#include "grid/region_grid.h"

namespace rlcr::grid {

/// Mutable track-usage state layered over an immutable RegionGrid.
/// Segment and shield counts are doubles so the router can work with the
/// fractional shield *estimates* of Eq. (3) before any SINO solution exists.
class CongestionMap {
 public:
  explicit CongestionMap(const RegionGrid& grid);

  const RegionGrid& grid() const { return *grid_; }

  double segments(std::size_t region, Dir d) const {
    return seg_[static_cast<std::size_t>(d)][region];
  }
  double shields(std::size_t region, Dir d) const {
    return shield_[static_cast<std::size_t>(d)][region];
  }
  void set_segments(std::size_t region, Dir d, double v) {
    seg_[static_cast<std::size_t>(d)][region] = v;
  }
  void set_shields(std::size_t region, Dir d, double v) {
    shield_[static_cast<std::size_t>(d)][region] = v;
  }
  void add_segments(std::size_t region, Dir d, double delta) {
    seg_[static_cast<std::size_t>(d)][region] += delta;
  }
  void add_shields(std::size_t region, Dir d, double delta) {
    shield_[static_cast<std::size_t>(d)][region] += delta;
  }

  /// HU / VU: segments + shields.
  double utilization(std::size_t region, Dir d) const {
    return segments(region, d) + shields(region, d);
  }
  /// HD / VD: utilization over capacity.
  double density(std::size_t region, Dir d) const {
    return utilization(region, d) / grid_->capacity(d);
  }
  /// HOFR / VOFR: relative overflow (0 when under capacity).
  double relative_overflow(std::size_t region, Dir d) const {
    const double over = utilization(region, d) - grid_->capacity(d);
    return over > 0.0 ? over / grid_->capacity(d) : 0.0;
  }

  void clear();

  /// Maximum density over all regions and directions.
  double max_density() const;
  /// Sum of absolute overflow (tracks beyond capacity) over all regions.
  double total_overflow() const;
  /// Total shield count over all regions.
  double total_shields() const;

 private:
  const RegionGrid* grid_;
  std::vector<double> seg_[2];
  std::vector<double> shield_[2];
};

/// Routing-area result (Table 3 metric).
struct RoutingArea {
  double width_um = 0.0;   ///< maximum row length
  double height_um = 0.0;  ///< maximum column length
  double area_um2() const { return width_um * height_um; }
};

/// Expansion-based routing area: regions over capacity grow proportionally.
RoutingArea compute_routing_area(const CongestionMap& cmap);

}  // namespace rlcr::grid
