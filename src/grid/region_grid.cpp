#include "grid/region_grid.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rlcr::grid {

RegionGrid::RegionGrid(const RegionGridSpec& spec) : spec_(spec) {
  if (spec.cols < 1 || spec.rows < 1) {
    throw std::invalid_argument("RegionGrid: grid must be at least 1x1");
  }
  if (spec.region_w_um <= 0.0 || spec.region_h_um <= 0.0) {
    throw std::invalid_argument("RegionGrid: region dimensions must be positive");
  }
  if (spec.h_capacity < 1 || spec.v_capacity < 1) {
    throw std::invalid_argument("RegionGrid: capacities must be at least 1");
  }
}

geom::Point RegionGrid::region_of(geom::PointF p) const {
  const auto cx = static_cast<std::int32_t>(std::floor(p.x / spec_.region_w_um));
  const auto cy = static_cast<std::int32_t>(std::floor(p.y / spec_.region_h_um));
  return geom::Point{std::clamp(cx, 0, spec_.cols - 1),
                     std::clamp(cy, 0, spec_.rows - 1)};
}

}  // namespace rlcr::grid
