// The routing fabric of Section 2.1: two over-the-cell routing layers (one
// horizontal, one vertical) divided by pre-routed P/G wires into a grid of
// routing regions. Each region offers HC horizontal and VC vertical tracks;
// a track holds either a net segment or a shield. P/G wires are assumed wide
// enough that regions are crosstalk-isolated from each other.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"

namespace rlcr::grid {

/// Routing direction. Horizontal tracks run in x and stack in y; vertical
/// tracks run in y and stack in x.
enum class Dir : std::uint8_t { kHorizontal = 0, kVertical = 1 };

inline constexpr Dir kBothDirs[] = {Dir::kHorizontal, Dir::kVertical};

struct RegionGridSpec {
  std::int32_t cols = 1;
  std::int32_t rows = 1;
  double region_w_um = 100.0;
  double region_h_um = 100.0;
  int h_capacity = 16;  ///< horizontal tracks per region
  int v_capacity = 16;  ///< vertical tracks per region
};

/// Immutable grid geometry and capacities. Regions are addressed either by
/// (col, row) grid points or by a flat index (row-major).
class RegionGrid {
 public:
  explicit RegionGrid(const RegionGridSpec& spec);

  std::int32_t cols() const { return spec_.cols; }
  std::int32_t rows() const { return spec_.rows; }
  std::size_t region_count() const {
    return static_cast<std::size_t>(spec_.cols) * static_cast<std::size_t>(spec_.rows);
  }
  double region_w_um() const { return spec_.region_w_um; }
  double region_h_um() const { return spec_.region_h_um; }
  double chip_w_um() const { return spec_.region_w_um * spec_.cols; }
  double chip_h_um() const { return spec_.region_h_um * spec_.rows; }

  bool in_bounds(geom::Point p) const {
    return p.x >= 0 && p.x < spec_.cols && p.y >= 0 && p.y < spec_.rows;
  }

  std::size_t index(geom::Point p) const {
    return static_cast<std::size_t>(p.y) * static_cast<std::size_t>(spec_.cols) +
           static_cast<std::size_t>(p.x);
  }
  geom::Point at(std::size_t idx) const {
    return geom::Point{static_cast<std::int32_t>(idx % static_cast<std::size_t>(spec_.cols)),
                       static_cast<std::int32_t>(idx / static_cast<std::size_t>(spec_.cols))};
  }

  /// Region containing a micrometre coordinate, clamped to the grid.
  geom::Point region_of(geom::PointF p) const;

  int capacity(Dir d) const {
    return d == Dir::kHorizontal ? spec_.h_capacity : spec_.v_capacity;
  }

  /// Length of a track segment crossing the region in direction d, in um.
  double span_um(Dir d) const {
    return d == Dir::kHorizontal ? spec_.region_w_um : spec_.region_h_um;
  }

  const RegionGridSpec& spec() const { return spec_; }

 private:
  RegionGridSpec spec_;
};

}  // namespace rlcr::grid
