#include "grid/tiled.h"

namespace rlcr::grid {

namespace {

RegionStorage g_default =
#ifdef RLCR_DENSE_GRID
    RegionStorage::kDense;
#else
    RegionStorage::kTiled;
#endif

}  // namespace

RegionStorage default_region_storage() { return g_default; }

void set_default_region_storage(RegionStorage storage) { g_default = storage; }

}  // namespace rlcr::grid
