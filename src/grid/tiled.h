// Tiled per-region storage for ISPD98-size grids with sparse traffic.
//
// Every per-(region, dir) accumulator in the flow — CongestionMap's
// segment/shield counts, the ID router's RegionStats and density/overflow
// caches — was historically a dense array over the whole grid. That is the
// right shape for the 64x64 proxy tiers, but an ISPD98-class instance puts
// tens of thousands of regions under a netlist whose traffic touches only
// the placed core: dense arrays pay full-grid memory (and full-grid scans
// in the aggregate loops) for regions no net ever crosses.
//
// TiledVec<T> keeps the flat index space but backs it with fixed-size
// dense tiles allocated on first *write*:
//   - reads of an unallocated tile return a value-initialized T (exactly
//     the value a freshly assigned dense slot holds) without allocating,
//     so read paths — including the router's lock-free parallel heap-key
//     pass — never mutate shared state;
//   - writes go through ref(), which materializes the tile;
//   - aggregate loops skip whole unallocated tiles via tile_allocated()
//     while visiting allocated entries in ascending index order, so sums
//     see the same floating-point op order as the dense scan minus terms
//     that are exactly zero — bit-identical results (pinned by the router
//     and session goldens in both modes).
//
// The dense path is retained: RegionStorage::kDense backs the container
// with one flat vector (tile_allocated() is then always true, so every
// loop degenerates to the historical full scan). The process-wide default
// is tiled; configure with -DRLCR_DENSE_GRID=ON to default every container
// to dense (the small proxy tiers lose nothing, and the flag doubles as
// the A/B switch for the bench_ispd98 storage comparison, which flips the
// default at runtime via set_default_region_storage()).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rlcr::grid {

/// Backing layout of a per-region container.
enum class RegionStorage : std::uint8_t {
  kTiled,  ///< dense tiles allocated on first write
  kDense,  ///< one flat array over the whole index space (historical)
};

/// Process-wide default for containers constructed without an explicit
/// mode. Starts as kTiled (kDense when built with RLCR_DENSE_GRID).
RegionStorage default_region_storage();

/// Override the process-wide default. Not synchronized: call it from the
/// main thread while no sessions are running (benches and tests flipping
/// the A/B switch; long-lived services pick one mode at startup).
void set_default_region_storage(RegionStorage storage);

/// Flat vector of T over [0, size) backed by first-touch tiles or by one
/// dense array. T must be value-initializable to its "empty" state.
template <typename T>
class TiledVec {
 public:
  // 128 entries per tile: small enough that a tile covers a fraction of
  // one grid row even on the widest ISPD98-class fabrics (region indices
  // are row-major, so a flat tile is a row segment — fine-grained tiles
  // are what let row-sparse traffic leave gaps unallocated), large
  // enough that the per-tile bookkeeping stays negligible.
  static constexpr std::size_t kTileBits = 7;
  static constexpr std::size_t kTileSize = std::size_t{1} << kTileBits;

  TiledVec() = default;
  TiledVec(std::size_t size, RegionStorage storage) { reset(size, storage); }

  void reset(std::size_t size, RegionStorage storage) {
    size_ = size;
    storage_ = storage;
    tiles_.clear();
    dense_.clear();
    if (storage == RegionStorage::kDense) {
      dense_.assign(size, T{});
    } else {
      tiles_.resize((size + kTileSize - 1) >> kTileBits);
    }
  }

  std::size_t size() const { return size_; }
  RegionStorage storage() const { return storage_; }

  /// Read without allocating; an untouched slot is value-initialized.
  const T& operator[](std::size_t i) const {
    if (storage_ == RegionStorage::kDense) return dense_[i];
    const std::vector<T>& tile = tiles_[i >> kTileBits];
    return tile.empty() ? zero_ : tile[i & (kTileSize - 1)];
  }

  /// Mutable access; materializes the enclosing tile on first touch.
  T& ref(std::size_t i) {
    if (storage_ == RegionStorage::kDense) return dense_[i];
    std::vector<T>& tile = tiles_[i >> kTileBits];
    if (tile.empty()) tile.assign(kTileSize, T{});
    return tile[i & (kTileSize - 1)];
  }

  /// Number of tile slots covering the index space (1 in dense mode — the
  /// whole array acts as one always-allocated tile).
  std::size_t tile_count() const {
    return storage_ == RegionStorage::kDense ? (size_ > 0 ? 1 : 0)
                                             : tiles_.size();
  }
  /// First index covered by tile t.
  std::size_t tile_begin(std::size_t t) const {
    return storage_ == RegionStorage::kDense ? 0 : t << kTileBits;
  }
  /// One past the last index covered by tile t.
  std::size_t tile_end(std::size_t t) const {
    if (storage_ == RegionStorage::kDense) return size_;
    const std::size_t end = (t + 1) << kTileBits;
    return end < size_ ? end : size_;
  }
  /// True when tile t holds materialized values. Dense mode is one big
  /// always-allocated tile, so every skip-if-empty loop degenerates to
  /// the historical full scan there.
  bool tile_allocated(std::size_t t) const {
    return storage_ == RegionStorage::kDense || !tiles_[t].empty();
  }

  std::size_t allocated_tiles() const {
    if (storage_ == RegionStorage::kDense) return size_ > 0 ? 1 : 0;
    std::size_t n = 0;
    for (const auto& tile : tiles_) n += !tile.empty();
    return n;
  }

  /// Heap bytes held by the backing store (the memory the dense/tiled
  /// trade-off is about; excludes the tile-pointer table).
  std::size_t storage_bytes() const {
    if (storage_ == RegionStorage::kDense) return dense_.capacity() * sizeof(T);
    return allocated_tiles() * kTileSize * sizeof(T);
  }

  /// Drop every value back to the value-initialized state. Tiled mode
  /// releases the tiles (matching a fresh container), dense mode refills.
  void clear() {
    if (storage_ == RegionStorage::kDense) {
      dense_.assign(size_, T{});
    } else {
      for (auto& tile : tiles_) {
        tile.clear();
        tile.shrink_to_fit();
      }
    }
  }

 private:
  inline static const T zero_{};
  std::size_t size_ = 0;
  RegionStorage storage_ = RegionStorage::kTiled;
  std::vector<std::vector<T>> tiles_;  ///< empty vector = unallocated tile
  std::vector<T> dense_;
};

}  // namespace rlcr::grid
