#include "ktable/keff.h"

#include <algorithm>
#include <cmath>

namespace rlcr::ktable {

KeffModel::KeffModel(const KeffParams& params, const circuit::Technology& tech)
    : params_(params) {
  (void)tech;  // see header: the profile is simulation-calibrated
  const int maxsep = std::max(1, params_.max_separation);
  profile_.assign(static_cast<std::size_t>(maxsep) + 1, 0.0);
  for (int d = 1; d <= maxsep; ++d) {
    profile_[static_cast<std::size_t>(d)] =
        params_.scale * std::pow(static_cast<double>(d), -params_.decay_exponent);
  }
}

double KeffModel::profile(int separation) const {
  if (separation <= 0) return 0.0;
  const auto idx = static_cast<std::size_t>(
      std::min(separation, params_.max_separation));
  return profile_[idx];
}

double KeffModel::pair_coupling(const SlotVec& slots, std::size_t i,
                                std::size_t j) const {
  if (i == j || i >= slots.size() || j >= slots.size()) return 0.0;
  if (slots[i] < 0 || slots[j] < 0) return 0.0;
  const std::size_t lo = std::min(i, j);
  const std::size_t hi = std::max(i, j);
  int shields_between = 0;
  for (std::size_t k = lo + 1; k < hi; ++k) {
    if (slots[k] == kShieldSlot) ++shields_between;
  }
  const double base = profile(static_cast<int>(hi - lo));
  return base * std::pow(params_.shield_attenuation, shields_between);
}

}  // namespace rlcr::ktable
