// Keff model: formula-based inductive-coupling estimation between signal
// nets sharing a routing region (after [4]'s Keff model, Section 2.2).
//
// A routing region's tracks are a slot vector: each slot holds a signal net,
// a shield, or nothing. The model assigns a coupling coefficient K(i, j) to
// every victim/aggressor slot pair and defines the total coupling of net i,
//   Ki = sum over slots j holding nets sensitive to i of K(i, j).
// Ki is the quantity SINO bounds with Kth and the per-region factor of the
// LSK sum (Eq. 1).
//
// The paper takes the K formula from [4]/[8] without reprinting it; this
// implementation calibrates K(i, j) against the library's own MNA bus
// simulator: sweeping one aggressor across track distances (with quiet
// signal wires in between, the common case inside a routed region) shows
// the victim's peak noise decays as a power law ~ d^-0.52 — much faster
// than the bare-pair partial-mutual-inductance formula, because intervening
// quiet wires carry induced return currents that screen the coupling.
// A shield does the same but better (it is tied to the P/G network at both
// ends): measured attenuation is ~0.38x per shield relative to the quiet
// signal it replaces. The bench `bench_lsk_fidelity` re-derives both
// numbers and verifies the fidelity property the paper relies on: higher Ki
// means higher simulated noise at fixed length.
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/extract.h"

namespace rlcr::ktable {

/// Slot occupancy for one routing region's track set. Values >= 0 identify
/// a signal net (indices are caller-defined); negative values are special.
using Slot = std::int32_t;
inline constexpr Slot kShieldSlot = -1;
inline constexpr Slot kEmptySlot = -2;
using SlotVec = std::vector<Slot>;

struct KeffParams {
  /// Power-law decay of coupling with track distance, K ~ d^-decay;
  /// calibrated against the MNA simulator (quiet wires in between).
  double decay_exponent = 0.52;
  /// Multiplicative attenuation per shield strictly between the pair
  /// (simulator-calibrated).
  double shield_attenuation = 0.38;
  /// Largest track separation the profile is tabulated for; pairs farther
  /// apart are clamped to the profile tail.
  int max_separation = 128;
  /// Overall scale of K (1.0 = adjacent pair -> K = 1).
  double scale = 1.0;
};

class KeffModel {
 public:
  /// `tech` is accepted for interface stability (the profile used to be
  /// derived from the extractor's bare-pair formula; it is now calibrated
  /// directly against simulation and depends only on `params`).
  explicit KeffModel(const KeffParams& params = {},
                     const circuit::Technology& tech = {});

  const KeffParams& params() const { return params_; }

  /// Distance profile: coupling of a bare pair at `separation` tracks,
  /// normalized so separation 1 gives params.scale.
  double profile(int separation) const;

  /// Coupling coefficient between slots i and j of `slots`, accounting for
  /// shields strictly between them. Zero for i == j or non-signal slots.
  double pair_coupling(const SlotVec& slots, std::size_t i, std::size_t j) const;

  /// Total inductive coupling Ki of the signal in slot `victim`:
  /// sum of pair_coupling over all slots holding aggressors, where
  /// `is_aggressor(net_value)` says whether a slot's net attacks the victim.
  template <typename AggressorPred>
  double total_coupling(const SlotVec& slots, std::size_t victim,
                        AggressorPred&& is_aggressor) const {
    if (victim >= slots.size() || slots[victim] < 0) return 0.0;
    double acc = 0.0;
    for (std::size_t j = 0; j < slots.size(); ++j) {
      if (j == victim || slots[j] < 0) continue;
      if (!is_aggressor(slots[j])) continue;
      acc += pair_coupling(slots, victim, j);
    }
    return acc;
  }

 private:
  KeffParams params_;
  std::vector<double> profile_;  // [separation] -> normalized coupling
};

}  // namespace rlcr::ktable
