#include "ktable/lsk_builder.h"

#include <algorithm>

#include "parallel/parallel_for.h"
#include "util/rng.h"

namespace rlcr::ktable {

namespace {

/// A random single-region assignment in the SINO solution style: one quiet
/// victim, some aggressors, some shields, some empty tracks.
struct Assignment {
  SlotVec slots;            // for the Keff model
  circuit::BusSpec bus;     // for the simulator
  std::size_t victim_slot;
};

Assignment random_assignment(int tracks, double length_um, int segments,
                             util::Xoshiro256& rng) {
  Assignment a;
  a.slots.assign(static_cast<std::size_t>(tracks), kEmptySlot);
  a.bus.tracks.assign(static_cast<std::size_t>(tracks), {});
  a.bus.length_um = length_um;
  a.bus.segments = segments;

  // Victim somewhere in the middle half so both sides can host aggressors.
  const auto t = static_cast<std::size_t>(tracks);
  a.victim_slot = static_cast<std::size_t>(
      rng.range(static_cast<std::int64_t>(t / 4),
                static_cast<std::int64_t>(t - 1 - t / 4)));
  a.slots[a.victim_slot] = 0;  // net id 0 = victim
  a.bus.tracks[a.victim_slot] = {circuit::TrackKind::kSignal, false};
  a.bus.victim = static_cast<int>(a.victim_slot);

  // Fill the rest: aggressor / shield / empty with weights that sweep the
  // coupling range well.
  std::int32_t next_net = 1;
  for (std::size_t i = 0; i < t; ++i) {
    if (i == a.victim_slot) continue;
    const double u = rng.uniform();
    if (u < 0.45) {
      a.slots[i] = next_net++;
      a.bus.tracks[i] = {circuit::TrackKind::kSignal, true};
    } else if (u < 0.70) {
      a.slots[i] = kShieldSlot;
      a.bus.tracks[i] = {circuit::TrackKind::kShield, false};
    }  // else leave empty
  }
  return a;
}

}  // namespace

std::vector<LskSample> LskTableBuilder::sample(
    const KeffModel& keff, const circuit::Technology& tech) const {
  util::Xoshiro256 rng(util::SplitMix64::mix2(options_.seed, 0x15C));
  circuit::TransientOptions sim;
  sim.t_stop = options_.sim_t_stop;
  sim.dt = options_.sim_dt;

  // Sample-point generation stays serial: the assignments are cheap draws
  // off ONE sequential RNG stream, and keeping that stream untouched keeps
  // the sample set bit-identical to the historical single-threaded builder
  // at every thread count. Only the expensive part — the MNA transient
  // simulation of each kept assignment — fans out across the pool, and the
  // results are assembled back in generation order.
  struct Pending {
    Assignment a;
    double ki = 0.0;
    double length_um = 0.0;
  };
  std::vector<Pending> pending;
  pending.reserve(options_.lengths_um.size() *
                  static_cast<std::size_t>(options_.samples_per_length));
  for (double len : options_.lengths_um) {
    for (int s = 0; s < options_.samples_per_length; ++s) {
      Pending p;
      p.a = random_assignment(options_.tracks, len, options_.segments, rng);
      // Every aggressor is sensitive to the victim in the calibration set.
      p.ki = keff.total_coupling(p.a.slots, p.a.victim_slot,
                                 [](Slot net) { return net > 0; });
      if (p.ki <= 0.0) continue;  // no aggressors sampled; skip
      p.length_um = len;
      pending.push_back(std::move(p));
    }
  }

  constexpr std::size_t kSimGrain = 1;  // one simulation per chunk (fixed)
  const std::vector<double> noise = parallel::parallel_map<double>(
      pending.size(), kSimGrain, options_.threads, [&](std::size_t i) {
        return circuit::simulate_victim_noise(pending[i].a.bus, tech, sim);
      });

  std::vector<LskSample> out;
  out.reserve(pending.size());
  for (std::size_t i = 0; i < pending.size(); ++i) {
    const Pending& p = pending[i];
    out.push_back(
        LskSample{p.length_um / 1000.0 * p.ki, noise[i], p.length_um, p.ki});
  }
  return out;
}

util::LinearFit LskTableBuilder::fit(const std::vector<LskSample>& samples) const {
  std::vector<double> x, y;
  x.reserve(samples.size());
  y.reserve(samples.size());
  for (const auto& s : samples) {
    if (s.noise_v < options_.fit_v_lo || s.noise_v > options_.fit_v_hi) continue;
    x.push_back(s.lsk);
    y.push_back(s.noise_v);
  }
  // Fall back to the full sample set if the band filter starves the fit.
  if (x.size() < 8) {
    x.clear();
    y.clear();
    for (const auto& s : samples) {
      x.push_back(s.lsk);
      y.push_back(s.noise_v);
    }
  }
  return util::linear_fit(x, y);
}

LskTable LskTableBuilder::build(const KeffModel& keff,
                                const circuit::Technology& tech) const {
  const auto samples = sample(keff, tech);
  const util::LinearFit f = fit(samples);
  // A degenerate fit (no samples, flat noise) falls back to the default so
  // downstream flows keep working; callers can inspect fit() themselves.
  if (f.slope <= 0.0) return LskTable::default_table();
  return LskTable::from_linear(f.slope, f.intercept, options_.v_lo,
                               options_.v_hi, options_.table_entries);
}

}  // namespace rlcr::ktable
