// LSK table construction (Section 2.2): "we generate a number of SINO
// solutions for a single routing region, and compute the LSK values and
// corresponding crosstalk voltages via SPICE simulations for different wire
// lengths".
//
// This builder does exactly that with the library's MNA simulator standing
// in for SPICE: it samples random single-region track assignments (victim,
// aggressors, shields, empties), computes each victim's LSK = length * Ki
// under the Keff model, simulates the peak receiver noise, fits the linear
// relation noise = slope * LSK + intercept the paper observes empirically,
// and emits a 100-entry table spanning the requested voltage band.
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/bus.h"
#include "ktable/keff.h"
#include "ktable/lsk_table.h"
#include "util/stats.h"

namespace rlcr::ktable {

struct LskBuilderOptions {
  int tracks = 10;                   ///< tracks per sampled region
  int samples_per_length = 24;       ///< random assignments per wire length
  std::vector<double> lengths_um = {250.0, 500.0, 1000.0, 1500.0};
  int segments = 6;                  ///< ladder segments per wire
  double sim_t_stop = 150e-12;
  double sim_dt = 0.25e-12;
  double v_lo = 0.10;                ///< table span (paper: 0.10 V - 0.20 V)
  double v_hi = 0.20;
  std::size_t table_entries = 100;
  /// Only samples with noise inside [fit_v_lo, fit_v_hi] enter the linear
  /// fit: the table is used around the 0.10-0.20 V bound, and far outside
  /// that band the noise-vs-LSK relation saturates (very fast edges) or
  /// floors (tiny coupling), which would bias the local fit.
  double fit_v_lo = 0.04;
  double fit_v_hi = 0.32;
  std::uint64_t seed = 2002;
  /// Pool participants for sample-point evaluation (the MNA transient
  /// simulations; assignment generation stays serial so the RNG stream —
  /// and hence the sample set — is bit-identical at every value).
  /// 0 = auto (RLCR_THREADS env var, else hardware concurrency); 1 = the
  /// exact serial path.
  int threads = 0;
};

/// One calibration point: a simulated single-region solution.
struct LskSample {
  double lsk;        ///< length(mm) * Ki under the Keff model
  double noise_v;    ///< simulated peak victim noise
  double length_um;  ///< wire length of this sample
  double ki;         ///< total Keff coupling of the victim
};

class LskTableBuilder {
 public:
  explicit LskTableBuilder(const LskBuilderOptions& options = {})
      : options_(options) {}

  /// Generate calibration samples (random assignments x lengths).
  std::vector<LskSample> sample(const KeffModel& keff,
                                const circuit::Technology& tech) const;

  /// Fit noise = slope * LSK + intercept over samples.
  util::LinearFit fit(const std::vector<LskSample>& samples) const;

  /// sample() + fit() + LskTable::from_linear().
  LskTable build(const KeffModel& keff, const circuit::Technology& tech) const;

 private:
  LskBuilderOptions options_;
};

}  // namespace rlcr::ktable
