#include "ktable/lsk_table.h"

#include <algorithm>
#include <stdexcept>

namespace rlcr::ktable {

namespace {

// Default calibration constants: produced by LskTableBuilder::fit() against
// the MNA bus simulator at the default Technology (see bench_lsk_fidelity,
// which regenerates and cross-checks them).
constexpr double kDefaultSlope = 0.04021;      // V per LSK (mm)
constexpr double kDefaultIntercept = 0.09725;  // V

}  // namespace

LskTable::LskTable(std::vector<LskEntry> entries) : entries_(std::move(entries)) {
  if (entries_.size() < 2) {
    throw std::invalid_argument("LskTable: need at least two entries");
  }
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    if (entries_[i].lsk <= entries_[i - 1].lsk ||
        entries_[i].voltage <= entries_[i - 1].voltage) {
      throw std::invalid_argument("LskTable: entries must be strictly increasing");
    }
  }
}

double LskTable::voltage(double lsk) const {
  const auto& e = entries_;
  // Segment selection, with end segments reused for extrapolation.
  std::size_t hi = 1;
  if (lsk > e.front().lsk) {
    while (hi + 1 < e.size() && e[hi].lsk < lsk) ++hi;
  }
  const auto& a = e[hi - 1];
  const auto& b = e[hi];
  const double t = (lsk - a.lsk) / (b.lsk - a.lsk);
  return std::max(0.0, a.voltage + t * (b.voltage - a.voltage));
}

double LskTable::lsk_budget(double v) const {
  const auto& e = entries_;
  std::size_t hi = 1;
  if (v > e.front().voltage) {
    while (hi + 1 < e.size() && e[hi].voltage < v) ++hi;
  }
  const auto& a = e[hi - 1];
  const auto& b = e[hi];
  const double t = (v - a.voltage) / (b.voltage - a.voltage);
  return std::max(0.0, a.lsk + t * (b.lsk - a.lsk));
}

LskTable LskTable::from_linear(double slope, double intercept, double v_lo,
                               double v_hi, std::size_t entries) {
  if (slope <= 0.0) throw std::invalid_argument("LskTable: slope must be > 0");
  if (entries < 2) throw std::invalid_argument("LskTable: need >= 2 entries");
  if (v_hi <= v_lo) throw std::invalid_argument("LskTable: bad voltage range");
  std::vector<LskEntry> rows;
  rows.reserve(entries);
  for (std::size_t i = 0; i < entries; ++i) {
    const double f = static_cast<double>(i) / static_cast<double>(entries - 1);
    const double v = v_lo + f * (v_hi - v_lo);
    rows.push_back(LskEntry{(v - intercept) / slope, v});
  }
  return LskTable(std::move(rows));
}

LskTable LskTable::default_table() {
  return from_linear(kDefaultSlope, kDefaultIntercept);
}

}  // namespace rlcr::ktable
