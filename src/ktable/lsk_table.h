// The LSK -> crosstalk-voltage lookup table (Section 2.2).
//
// LSK (Eq. 1) is  sum_j  l_j * K_i^j  over the regions j a net crosses,
// with l_j the net's length in region j (millimetres here) and K_i^j its
// total Keff coupling in that region's SINO/ordering solution. The paper
// maps LSK to a noise voltage through a 100-entry table spanning
// 0.10 V - 0.20 V, built from SPICE runs of single-region SINO solutions;
// this module stores such a table, interpolates in both directions (voltage
// from LSK for checking, LSK budget from voltage for Phase I budgeting),
// and ships a default table calibrated with the MNA simulator
// (see LskTableBuilder in lsk_builder.h for regenerating it).
#pragma once

#include <cstddef>
#include <vector>

namespace rlcr::ktable {

struct LskEntry {
  double lsk;      ///< length-scaled coupling (mm * dimensionless K)
  double voltage;  ///< peak crosstalk noise (V)
};

class LskTable {
 public:
  /// Entries must be strictly increasing in both lsk and voltage.
  explicit LskTable(std::vector<LskEntry> entries);

  std::size_t size() const { return entries_.size(); }
  const std::vector<LskEntry>& entries() const { return entries_; }

  /// Noise voltage for an LSK value: piecewise-linear interpolation inside
  /// the table, linear extrapolation beyond either end (clamped at >= 0).
  double voltage(double lsk) const;

  /// Inverse lookup: the LSK budget whose mapped voltage equals `v`
  /// (clamped at >= 0). This is the first step of Phase I budgeting.
  double lsk_budget(double v) const;

  /// Build a table of `entries` rows from the linear model
  /// voltage = slope * lsk + intercept, spanning [v_lo, v_hi]. The linear
  /// form mirrors the paper's observation that noise grows roughly linearly
  /// with length-scaled coupling.
  static LskTable from_linear(double slope, double intercept,
                              double v_lo = 0.10, double v_hi = 0.20,
                              std::size_t entries = 100);

  /// The pre-calibrated default table (100 entries, 0.10 V - 0.20 V). Its
  /// slope/intercept come from an LskTableBuilder run against the MNA
  /// simulator at the default Technology; tests assert the builder
  /// reproduces it to within tolerance.
  static LskTable default_table();

 private:
  std::vector<LskEntry> entries_;
};

}  // namespace rlcr::ktable
