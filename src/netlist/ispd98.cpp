#include "netlist/ispd98.h"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace rlcr::netlist {

namespace {

// Reads the next non-empty line; returns false at EOF.
bool next_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    // Strip trailing CR from DOS-formatted benchmark files.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    bool blank = true;
    for (char c : line) {
      if (c != ' ' && c != '\t') {
        blank = false;
        break;
      }
    }
    if (!blank) return true;
  }
  return false;
}

std::size_t parse_count(const std::string& line, const char* what) {
  std::istringstream iss(line);
  long long v = -1;
  iss >> v;
  if (v < 0) {
    throw std::runtime_error(std::string("ISPD98 parser: bad ") + what +
                             " line: '" + line + "'");
  }
  return static_cast<std::size_t>(v);
}

}  // namespace

std::string Ispd98Stats::mismatch_report() const {
  std::string report;
  auto field = [&](const char* what, std::size_t declared, std::size_t parsed) {
    if (declared == parsed) return;
    if (!report.empty()) report += "; ";
    report += std::string(what) + ": header declares " +
              std::to_string(declared) + ", parsed " + std::to_string(parsed);
  };
  field("pins", declared_pins, parsed_pins);
  field("nets", declared_nets, parsed_nets);
  field("modules", declared_modules, parsed_modules);
  return report;
}

Ispd98Stats Ispd98Parser::parse_net(std::istream& in, Netlist& out) const {
  Ispd98Stats stats;
  std::string line;

  if (!next_line(in, line)) throw std::runtime_error("ISPD98 parser: empty input");
  // First header line is historically "0"; ignored.
  if (!next_line(in, line)) throw std::runtime_error("ISPD98 parser: missing pin count");
  stats.declared_pins = parse_count(line, "pin count");
  if (!next_line(in, line)) throw std::runtime_error("ISPD98 parser: missing net count");
  stats.declared_nets = parse_count(line, "net count");
  if (!next_line(in, line)) throw std::runtime_error("ISPD98 parser: missing module count");
  stats.declared_modules = parse_count(line, "module count");
  if (!next_line(in, line)) throw std::runtime_error("ISPD98 parser: missing pad offset");
  // Pad offset is informational; pad-ness is derived from the name prefix.

  std::unordered_map<std::string, CellId> by_name;
  by_name.reserve(stats.declared_modules * 2);

  auto intern_cell = [&](const std::string& name) -> CellId {
    const auto it = by_name.find(name);
    if (it != by_name.end()) return it->second;
    Cell c;
    c.name = name;
    c.is_pad = !name.empty() && name[0] == 'p';
    const CellId id = out.add_cell(std::move(c));
    by_name.emplace(name, id);
    return id;
  };

  Net current;
  bool have_net = false;
  std::size_t net_index = 0;

  auto flush = [&]() {
    if (!have_net) return;
    out.add_net(std::move(current));
    current = Net{};
    ++stats.parsed_nets;
  };

  while (next_line(in, line)) {
    std::istringstream iss(line);
    std::string module, kind;
    iss >> module >> kind;
    if (module.empty() || kind.empty()) {
      throw std::runtime_error("ISPD98 parser: malformed entry: '" + line + "'");
    }
    const CellId cell = intern_cell(module);
    if (kind == "s") {
      flush();
      have_net = true;
      current.name = "net" + std::to_string(net_index++);
      current.pins.push_back(Pin{{0.0, 0.0}, cell});
    } else if (kind == "l") {
      if (!have_net) {
        throw std::runtime_error("ISPD98 parser: 'l' entry before any 's' entry");
      }
      current.pins.push_back(Pin{{0.0, 0.0}, cell});
    } else {
      throw std::runtime_error("ISPD98 parser: unknown entry kind '" + kind + "'");
    }
    ++stats.parsed_pins;
  }
  flush();

  stats.parsed_modules = out.cell_count();
  return stats;
}

std::size_t Ispd98Parser::parse_areas(std::istream& in, Netlist& inout) const {
  std::unordered_map<std::string, CellId> by_name;
  by_name.reserve(inout.cell_count() * 2);
  for (std::size_t i = 0; i < inout.cell_count(); ++i) {
    by_name.emplace(inout.cell(static_cast<CellId>(i)).name,
                    static_cast<CellId>(i));
  }
  std::string line;
  std::size_t matched = 0;
  while (next_line(in, line)) {
    std::istringstream iss(line);
    std::string module;
    double area = 0.0;
    iss >> module >> area;
    if (module.empty()) continue;
    const auto it = by_name.find(module);
    if (it == by_name.end()) continue;  // space/filler modules are expected
    inout.cell(it->second).area_um2 = area;
    ++matched;
  }
  return matched;
}

Netlist Ispd98Parser::load(const std::string& net_path,
                           const std::string& are_path,
                           Ispd98Stats* stats) const {
  std::ifstream net_in(net_path);
  if (!net_in) throw std::runtime_error("ISPD98 parser: cannot open " + net_path);
  Netlist nl(net_path, 0.0, 0.0);
  const Ispd98Stats parsed = parse_net(net_in, nl);
  if (stats != nullptr) *stats = parsed;
  if (!are_path.empty()) {
    std::ifstream are_in(are_path);
    if (!are_in) throw std::runtime_error("ISPD98 parser: cannot open " + are_path);
    parse_areas(are_in, nl);
  }
  return nl;
}

}  // namespace rlcr::netlist
