// Parser for the ISPD'98 / IBM circuit benchmark suite ("netD" + ".are"
// format). The paper evaluates on ibm01-ibm06 from this suite; the files are
// not redistributable with this repository, but a user who has them can load
// the genuine circuits through this parser and run every flow unchanged.
//
// netD format (one entry per line after a 5-line header):
//   line 1: ignored (historically 0)
//   line 2: total number of pins
//   line 3: number of nets
//   line 4: number of modules
//   line 5: pad offset
//   then:   <module> <s|l> [I|O|B]
// where 's' starts a new net (that module is taken as the net's source) and
// 'l' continues the current net. Module names beginning with 'p' are pads.
//
// .are format: "<module> <area>" per line.
#pragma once

#include <istream>
#include <string>

#include "netlist/netlist.h"

namespace rlcr::netlist {

/// Summary of a parsed netD file, for validation against the header counts.
struct Ispd98Stats {
  std::size_t declared_pins = 0;
  std::size_t declared_nets = 0;
  std::size_t declared_modules = 0;
  std::size_t parsed_pins = 0;
  std::size_t parsed_nets = 0;
  std::size_t parsed_modules = 0;

  /// True when every parsed count equals its header declaration.
  bool counts_match() const {
    return declared_pins == parsed_pins && declared_nets == parsed_nets &&
           declared_modules == parsed_modules;
  }
  /// Human-readable description of every header/parsed discrepancy
  /// ("" when counts_match()). A mismatch is not a parse error — some
  /// suite distributions disagree with their own headers — so the parser
  /// reports it for the caller to surface instead of throwing.
  std::string mismatch_report() const;
};

class Ispd98Parser {
 public:
  /// Parse a netD stream into `out` (cells + unplaced nets).
  /// Throws std::runtime_error on malformed input.
  Ispd98Stats parse_net(std::istream& in, Netlist& out) const;

  /// Parse an .are stream, attaching areas to already-parsed cells.
  /// Unknown module names are ignored (the suite contains space modules).
  std::size_t parse_areas(std::istream& in, Netlist& inout) const;

  /// Convenience: load netD (+ optional .are) from files. When `stats` is
  /// non-null it receives the parse summary (callers typically surface
  /// stats->mismatch_report() as a warning).
  Netlist load(const std::string& net_path, const std::string& are_path = "",
               Ispd98Stats* stats = nullptr) const;
};

}  // namespace rlcr::netlist
