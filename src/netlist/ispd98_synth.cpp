#include "netlist/ispd98_synth.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>

#include "netlist/placement.h"
#include "util/hash.h"
#include "util/rng.h"

namespace rlcr::netlist {

namespace {

/// Per-purpose RNG streams split from the class seed, so adding draws to
/// one phase never perturbs another (the stream discipline of
/// synthetic.cpp, extended to named streams).
util::Xoshiro256 stream(std::uint64_t seed, std::uint64_t tag) {
  return util::Xoshiro256(util::SplitMix64::mix2(seed, tag));
}

constexpr std::uint64_t kPlaceStream = 0x504C4143;  // "PLAC"
constexpr std::uint64_t kNetStream = 0x4E455453;    // "NETS"
constexpr std::uint64_t kAreaStream = 0x41524541;   // "AREA"

/// Net degree: 2 with probability `two_frac`, else 3 plus a geometric
/// tail whose continuation odds are solved so the distribution's mean is
/// the class's published pins/nets — the suite's heavy-2-pin shape with
/// the right first moment per circuit.
std::size_t draw_degree(util::Xoshiro256& rng, double two_frac,
                        double tail_success_p) {
  if (rng.uniform() < two_frac) return 2;
  return 3 + rng.geometric(tail_success_p, 29);
}

}  // namespace

grid::RegionGridSpec Ispd98ClassSpec::grid_spec() const {
  grid::RegionGridSpec g;
  g.cols = grid_cols;
  g.rows = grid_rows;
  g.region_w_um = chip_w_um / grid_cols;
  g.region_h_um = chip_h_um / grid_rows;
  g.h_capacity = h_capacity;
  g.v_capacity = v_capacity;
  return g;
}

std::vector<Ispd98ClassSpec> ispd98_classes(double scale) {
  // Module/net/pin/pad counts are the published ISPD'98 suite statistics
  // for ibm01-ibm06; chip outlines are the paper's Table 3 ID+NO row and
  // column lengths (the same outlines the synthetic proxy suite uses).
  // Grid resolutions are finer than the proxy tiers — tens of thousands
  // of regions on the large classes — with capacities placing median
  // track density near 55% with ~2x hotspot tails (measured through the
  // ID+NO routing profile on the synthetic stand-ins), the regime a
  // routable but congested real design sits in.
  std::vector<Ispd98ClassSpec> classes(6);
  auto set = [](Ispd98ClassSpec& c, const char* name, std::size_t modules,
                std::size_t nets, std::size_t pins, std::size_t pads,
                std::int32_t cols, std::int32_t rows, double w, double h,
                int hc, int vc, std::uint64_t seed) {
    c.name = name;
    c.modules = modules;
    c.nets = nets;
    c.pins = pins;
    c.pads = pads;
    c.grid_cols = cols;
    c.grid_rows = rows;
    c.chip_w_um = w;
    c.chip_h_um = h;
    c.h_capacity = hc;
    c.v_capacity = vc;
    c.seed = seed;
  };
  set(classes[0], "ibm01", 12752, 14111, 50566, 246, 128, 128, 1533.0,
      1824.0, 20, 18, 9101);
  set(classes[1], "ibm02", 19601, 19584, 81199, 259, 160, 128, 3004.0,
      3995.0, 24, 20, 9102);
  set(classes[2], "ibm03", 23136, 27401, 93573, 283, 192, 160, 3178.0,
      3852.0, 22, 18, 9103);
  set(classes[3], "ibm04", 27507, 31970, 105859, 287, 224, 160, 3861.0,
      3910.0, 20, 17, 9104);
  set(classes[4], "ibm05", 29347, 28446, 126308, 1201, 288, 192, 9837.0,
      7286.0, 18, 16, 9105);
  set(classes[5], "ibm06", 32498, 34826, 128182, 166, 320, 224, 5002.0,
      3795.0, 16, 14, 9106);

  if (scale != 1.0) {
    // Density-preserving shrink (see netlist::ibm_suite): counts scale by
    // `scale`, the grid and chip by sqrt(scale), so per-region demand and
    // the degree distribution are unchanged.
    const double shrink = std::sqrt(scale);
    for (Ispd98ClassSpec& c : classes) {
      const double mean = c.mean_degree();
      c.scale = scale;
      c.modules = static_cast<std::size_t>(
          std::max(16.0, static_cast<double>(c.modules) * scale));
      c.nets = static_cast<std::size_t>(
          std::max(8.0, static_cast<double>(c.nets) * scale));
      c.pads = static_cast<std::size_t>(
          std::max(4.0, static_cast<double>(c.pads) * scale));
      c.pins = static_cast<std::size_t>(
          std::lround(mean * static_cast<double>(c.nets)));
      c.grid_cols = std::max(
          8, static_cast<std::int32_t>(std::lround(c.grid_cols * shrink)));
      c.grid_rows = std::max(
          8, static_cast<std::int32_t>(std::lround(c.grid_rows * shrink)));
      c.chip_w_um *= shrink;
      c.chip_h_um *= shrink;
    }
  }
  return classes;
}

const Ispd98ClassSpec* find_ispd98_class(
    const std::vector<Ispd98ClassSpec>& classes, const std::string& name) {
  for (const Ispd98ClassSpec& c : classes) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

Netlist generate_ispd98(const Ispd98ClassSpec& spec) {
  Netlist nl(spec.name, spec.chip_w_um, spec.chip_h_um);

  const std::size_t pads = std::min(spec.pads, spec.modules);
  const std::size_t core_cells = spec.modules - pads;

  // ---- pads: evenly spaced around the periphery, in suite naming order.
  // Deterministic positions (no RNG draw), so pad count changes cannot
  // shift the placement or net streams.
  const double perimeter = 2.0 * (spec.chip_w_um + spec.chip_h_um);
  for (std::size_t p = 0; p < pads; ++p) {
    double along = perimeter * static_cast<double>(p) /
                   static_cast<double>(std::max<std::size_t>(1, pads));
    geom::PointF pos;
    if (along < spec.chip_w_um) {
      pos = {along, 0.0};
    } else if ((along -= spec.chip_w_um) < spec.chip_h_um) {
      pos = {spec.chip_w_um, along};
    } else if ((along -= spec.chip_h_um) < spec.chip_w_um) {
      pos = {spec.chip_w_um - along, spec.chip_h_um};
    } else {
      pos = {0.0, spec.chip_h_um - (along - spec.chip_w_um)};
    }
    Cell c;
    c.name = "p" + std::to_string(p + 1);
    c.is_pad = true;
    c.placed = true;
    c.pos = pos;
    nl.add_cell(std::move(c));
  }

  // ---- core cells: clustered placement standing in for DRAGON locality.
  // Cells belong to small Gaussian clusters whose centres sit on a
  // jittered lattice over a 5% inset core box: coverage is near-uniform
  // (as in a real placement — no Poisson voids or pile-ups), while the
  // jitter and the overlapping spreads give the mild density texture a
  // placed design shows. The cluster member lists also drive net
  // locality below, the way min-cut placement keeps tightly connected
  // logic together.
  util::Xoshiro256 prng = stream(spec.seed, kPlaceStream);
  const std::size_t target_clusters =
      std::clamp<std::size_t>(core_cells / 24, 24, 2048);
  const double aspect = spec.chip_w_um / spec.chip_h_um;
  const std::size_t lat_cols = std::max<std::size_t>(
      2, static_cast<std::size_t>(std::lround(
             std::sqrt(static_cast<double>(target_clusters) * aspect))));
  const std::size_t lat_rows = std::max<std::size_t>(
      2, (target_clusters + lat_cols - 1) / lat_cols);
  const std::size_t clusters = lat_cols * lat_rows;
  const double inset_x = 0.05 * spec.chip_w_um;
  const double inset_y = 0.05 * spec.chip_h_um;
  const double pitch_x = (spec.chip_w_um - 2.0 * inset_x) / static_cast<double>(lat_cols);
  const double pitch_y = (spec.chip_h_um - 2.0 * inset_y) / static_cast<double>(lat_rows);
  std::vector<geom::PointF> centres(clusters);
  for (std::size_t r = 0; r < lat_rows; ++r) {
    for (std::size_t c = 0; c < lat_cols; ++c) {
      centres[r * lat_cols + c] = {
          inset_x + (static_cast<double>(c) + 0.5) * pitch_x +
              prng.uniform(-0.3, 0.3) * pitch_x,
          inset_y + (static_cast<double>(r) + 0.5) * pitch_y +
              prng.uniform(-0.3, 0.3) * pitch_y};
    }
  }
  const double sigma = 0.6 * std::min(pitch_x, pitch_y);
  std::vector<std::vector<CellId>> cluster_cells(clusters);
  std::vector<CellId> core_ids;
  core_ids.reserve(core_cells);
  for (std::size_t k = 0; k < core_cells; ++k) {
    const std::size_t cl = prng.below(clusters);
    Cell c;
    c.name = "a" + std::to_string(k);
    c.placed = true;
    c.pos = {std::clamp(prng.normal(centres[cl].x, sigma), inset_x,
                        spec.chip_w_um - inset_x),
             std::clamp(prng.normal(centres[cl].y, sigma), inset_y,
                        spec.chip_h_um - inset_y)};
    const CellId id = nl.add_cell(std::move(c));
    cluster_cells[cl].push_back(id);
    core_ids.push_back(id);
  }

  // ---- cell areas: the .are shape — mostly unit-ish standard cells with
  // a thin heavy tail of macros.
  util::Xoshiro256 arng = stream(spec.seed, kAreaStream);
  for (const CellId id : core_ids) {
    const double u = arng.uniform();
    nl.cell(id).area_um2 = arng.bernoulli(0.02) ? 16.0 + 48.0 * u
                                                : 1.0 + 3.0 * u * u;
  }

  // ---- nets: degree calibrated to the published pins/nets mean, pin
  // cells drawn with cluster locality, pad-terminated I/O nets in
  // proportion to the published pad ratio.
  util::Xoshiro256 nrng = stream(spec.seed, kNetStream);
  constexpr double kTwoFrac = 0.55;
  const double tail_mean = std::max(
      0.0, (spec.mean_degree() - 2.0 * kTwoFrac) / (1.0 - kTwoFrac) - 3.0);
  const double tail_p = 1.0 / (1.0 + tail_mean);
  const double pad_net_frac =
      pads == 0 ? 0.0
                : std::min(0.25, 3.0 * static_cast<double>(pads) /
                                     static_cast<double>(spec.nets));

  // Arc position of a point's nearest boundary projection, for nearest-pad
  // lookups (pads sit at evenly spaced arc positions, so the nearest pad
  // is an O(1) index computation). I/O nets connect to a nearby pad the
  // way a placer assigns logic near its pin ring.
  const auto nearest_pad = [&](geom::PointF pos) -> CellId {
    const double d_bottom = pos.y, d_right = spec.chip_w_um - pos.x;
    const double d_top = spec.chip_h_um - pos.y, d_left = pos.x;
    double arc;
    if (d_bottom <= d_right && d_bottom <= d_top && d_bottom <= d_left) {
      arc = pos.x;
    } else if (d_right <= d_top && d_right <= d_left) {
      arc = spec.chip_w_um + pos.y;
    } else if (d_top <= d_left) {
      arc = spec.chip_w_um + spec.chip_h_um + (spec.chip_w_um - pos.x);
    } else {
      arc = 2.0 * spec.chip_w_um + spec.chip_h_um + (spec.chip_h_um - pos.y);
    }
    const auto idx = static_cast<std::size_t>(
        std::llround(arc / perimeter * static_cast<double>(pads)));
    return static_cast<CellId>(idx % pads);
  };
  const auto nearest_cluster = [&](geom::PointF pos) -> std::size_t {
    std::size_t best = 0;
    double best_d2 = std::numeric_limits<double>::max();
    for (std::size_t c = 0; c < clusters; ++c) {
      const double dx = centres[c].x - pos.x, dy = centres[c].y - pos.y;
      const double d2 = dx * dx + dy * dy;
      if (d2 < best_d2) {
        best_d2 = d2;
        best = c;
      }
    }
    return best;
  };

  std::vector<CellId> members;
  for (std::size_t n = 0; n < spec.nets; ++n) {
    const std::size_t degree =
        core_cells == 0 ? 2 : draw_degree(nrng, kTwoFrac, tail_p);
    const bool io_net = pads > 0 && nrng.bernoulli(pad_net_frac);

    members.clear();
    auto push_unique = [&](CellId id) {
      if (std::find(members.begin(), members.end(), id) == members.end()) {
        members.push_back(id);
      }
    };

    // Source: a core cell (or, for a tenth of I/O nets, an input pad
    // driving the logic cluster nearest it).
    std::size_t home = 0;
    if (io_net && nrng.bernoulli(0.1)) {
      const auto pad = static_cast<CellId>(nrng.below(pads));
      push_unique(pad);
      home = nearest_cluster(nl.cell(pad).pos);
    } else if (!core_ids.empty()) {
      const std::size_t cl = nrng.below(clusters);
      const auto& pool =
          cluster_cells[cl].empty() ? core_ids : cluster_cells[cl];
      push_unique(pool[nrng.below(pool.size())]);
      home = cl;
    }

    // Sinks: mostly the source's cluster, sometimes anywhere (the global
    // nets that give routing its long-range structure), one pad for the
    // remaining I/O nets.
    std::size_t attempts = 0;
    while (members.size() < degree && attempts < 4 * degree + 8) {
      ++attempts;
      if (core_ids.empty()) break;
      const bool global_pick = nrng.bernoulli(0.02);
      const auto& pool = global_pick || cluster_cells[home].empty()
                             ? core_ids
                             : cluster_cells[home];
      push_unique(pool[nrng.below(pool.size())]);
    }
    if (io_net && members.size() >= 2 &&
        !(members.front() < static_cast<CellId>(pads))) {
      members.back() = nearest_pad(nl.cell(members.front()).pos);
    }
    while (members.size() < 2 && !core_ids.empty()) {
      // Degenerate fallback (tiny scaled specs): complete the 2-pin net.
      push_unique(core_ids[nrng.below(core_ids.size())]);
      if (members.size() < 2) {
        push_unique(static_cast<CellId>(nrng.below(nl.cell_count())));
      }
    }

    Net net;
    net.name = "net" + std::to_string(n);
    net.pins.reserve(members.size());
    for (const CellId id : members) net.pins.push_back(Pin{{0.0, 0.0}, id});
    nl.add_net(std::move(net));
  }

  nl.materialize_pins();
  return nl;
}

std::uint64_t netlist_fingerprint(const Netlist& nl) {
  util::Fnv1a64 h;
  h.str(nl.name());
  h.f64(nl.width_um());
  h.f64(nl.height_um());
  h.u64(nl.cell_count());
  for (const Cell& c : nl.cells()) {
    h.str(c.name);
    h.f64(c.pos.x);
    h.f64(c.pos.y);
    h.f64(c.area_um2);
    h.boolean(c.is_pad);
  }
  h.u64(nl.net_count());
  for (const Net& n : nl.nets()) {
    h.u64(n.pins.size());
    for (const Pin& p : n.pins) {
      h.i32(p.cell);
      h.f64(p.pos.x);
      h.f64(p.pos.y);
    }
  }
  return h.value();
}

std::string ispd98_netd_path(const std::string& dir, const std::string& name) {
  if (dir.empty()) return "";
  const std::string candidates[] = {
      dir + "/" + name + ".netD",
      dir + "/" + name + ".net",
      dir + "/" + name + "/" + name + ".netD",
      dir + "/" + name + "/" + name + ".net",
  };
  for (const std::string& path : candidates) {
    if (std::ifstream(path).good()) return path;
  }
  return "";
}

Ispd98Instance make_ispd98_instance(const Ispd98ClassSpec& spec) {
  Ispd98Instance out;
  out.gspec = spec.grid_spec();

  // Genuine files only substitute at full scale: the real circuit cannot
  // shrink with the fabric, so on a scaled spec it would see ~1/scale the
  // calibrated capacity and drown in overflow while claiming to be
  // representative.
  const char* env =
      spec.scale == 1.0 ? std::getenv("RLCR_ISPD98_DIR") : nullptr;
  const std::string net_path =
      env == nullptr ? "" : ispd98_netd_path(env, spec.name);
  if (!net_path.empty()) {
    std::ifstream net_in(net_path);
    Netlist nl(spec.name, spec.chip_w_um, spec.chip_h_um);
    out.parse_stats = Ispd98Parser().parse_net(net_in, nl);
    const std::string are_path =
        net_path.substr(0, net_path.find_last_of('.')) + ".are";
    if (std::ifstream are_in(are_path); are_in.good()) {
      Ispd98Parser().parse_areas(are_in, nl);
    }
    BisectionPlacer().place(nl);
    out.design = std::move(nl);
    out.real = true;
    out.source = net_path;
    return out;
  }

  out.design = generate_ispd98(spec);
  out.source = "synthetic";
  return out;
}

}  // namespace rlcr::netlist
