// ISPD'98-class instance generation and discovery.
//
// The paper evaluates on ibm01-ibm06 of the ISPD'98 suite. The genuine
// circuits are not redistributable, so this module provides the six size
// classes two ways behind one entry point (make_ispd98_instance):
//
//   1. When RLCR_ISPD98_DIR points at a directory holding the real files
//      (<dir>/ibm01.netD [+ ibm01.are], with .net/<name>/ layouts also
//      probed — see ispd98_netd_path), the netD circuit is parsed
//      (netlist/ispd98.h), given the class's chip outline, and placed by
//      the built-in min-cut bisection placer.
//
//   2. Otherwise a deterministic synthetic instance is generated whose
//      module/net/pin/pad counts are the published statistics of the real
//      circuit and whose structure follows the suite's shape: cell-backed
//      pins (every pin references a module, exactly like the parser's
//      output), a heavy-2-pin degree distribution calibrated per class to
//      the published pins/nets mean, pads on the chip periphery with
//      pad-terminated I/O nets in proportion to the published pad ratio,
//      and clustered cell placement standing in for DRAGON locality.
//      Generation is deterministic in the spec: every stochastic choice
//      draws from per-purpose Xoshiro256 streams split from the class
//      seed (the RNG-stream discipline of netlist/synthetic.cpp), and
//      tests pin a structural fingerprint so the instances cannot drift
//      across PRs.
//
// Routing-grid shapes are finer than the proxy tiers (tens of thousands
// of regions for the large classes) with per-region capacities chosen to
// land mean track demand in the 60-90% routable regime; this is the
// sparse-traffic regime the tiled per-region storage (grid/tiled.h) is
// built for.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "grid/region_grid.h"
#include "netlist/ispd98.h"
#include "netlist/netlist.h"

namespace rlcr::netlist {

/// One ibm size class: published suite statistics plus the routing fabric
/// the harness runs it on.
struct Ispd98ClassSpec {
  std::string name;      ///< "ibm01" .. "ibm06"
  std::size_t modules = 0;  ///< total modules (cells + pads)
  std::size_t nets = 0;
  std::size_t pins = 0;
  std::size_t pads = 0;
  std::int32_t grid_cols = 64;
  std::int32_t grid_rows = 64;
  double chip_w_um = 1000.0;
  double chip_h_um = 1000.0;
  int h_capacity = 12;
  int v_capacity = 10;
  std::uint64_t seed = 1;
  /// The shrink this spec was produced at (ispd98_classes' argument).
  /// Genuine-file substitution only applies at 1.0: a scaled fabric under
  /// the full-size real circuit would inflate per-region demand by
  /// ~1/scale, so scaled specs always generate the (correctly scaled)
  /// synthetic stand-in.
  double scale = 1.0;

  double mean_degree() const {
    return nets == 0 ? 0.0
                     : static_cast<double>(pins) / static_cast<double>(nets);
  }
  double pad_ratio() const {
    return modules == 0 ? 0.0
                        : static_cast<double>(pads) / static_cast<double>(modules);
  }
  /// The routing fabric for this class (region dims = chip / grid).
  grid::RegionGridSpec grid_spec() const;
};

/// The six calibrated classes. `scale` shrinks density-preservingly like
/// netlist::ibm_suite: counts scale by `scale`, grid and chip by
/// sqrt(scale), so per-region demand — and hence the routability regime —
/// stays representative (used by tests and the CI smoke tier).
std::vector<Ispd98ClassSpec> ispd98_classes(double scale = 1.0);

/// Class by name, or nullptr.
const Ispd98ClassSpec* find_ispd98_class(
    const std::vector<Ispd98ClassSpec>& classes, const std::string& name);

/// Generate the synthetic stand-in for one class. Deterministic in the
/// spec; pins are cell-backed and already materialized.
Netlist generate_ispd98(const Ispd98ClassSpec& spec);

/// Structural fingerprint of a netlist (outline, cells with positions and
/// pad flags, nets with cell references and pin positions), platform-
/// stable via util/hash.h. Tests pin generate_ispd98(ibm01) to a golden
/// value so the generator is locked across PRs.
std::uint64_t netlist_fingerprint(const Netlist& nl);

/// First existing candidate netD path for a class under `dir`
/// (<dir>/<name>.netD, .net, and <dir>/<name>/<name>.netD, .net), or ""
/// when none exists.
std::string ispd98_netd_path(const std::string& dir, const std::string& name);

/// A ready-to-route instance of one class.
struct Ispd98Instance {
  Netlist design;
  grid::RegionGridSpec gspec;
  bool real = false;      ///< parsed from RLCR_ISPD98_DIR
  std::string source;     ///< "synthetic" or the netD path loaded
  Ispd98Stats parse_stats;  ///< populated for real files only
};

/// Build an instance: the genuine circuit when RLCR_ISPD98_DIR holds it
/// (parsed, outlined, min-cut placed), the synthetic stand-in otherwise.
Ispd98Instance make_ispd98_instance(const Ispd98ClassSpec& spec);

}  // namespace rlcr::netlist
