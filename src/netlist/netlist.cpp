#include "netlist/netlist.h"

namespace rlcr::netlist {

void Netlist::materialize_pins() {
  for (Net& n : nets_) {
    for (Pin& p : n.pins) {
      if (p.cell != kNoCell) {
        p.pos = cells_[static_cast<std::size_t>(p.cell)].pos;
      }
    }
  }
}

std::size_t Netlist::routable_net_count() const {
  std::size_t n = 0;
  for (const Net& net : nets_)
    if (net.routable()) ++n;
  return n;
}

double Netlist::total_hpwl() const {
  double acc = 0.0;
  for (const Net& net : nets_)
    if (net.routable()) acc += net.hpwl();
  return acc;
}

double Netlist::average_degree() const {
  std::size_t pins = 0;
  std::size_t count = 0;
  for (const Net& net : nets_) {
    if (!net.routable()) continue;
    pins += net.pins.size();
    ++count;
  }
  return count == 0 ? 0.0 : static_cast<double>(pins) / static_cast<double>(count);
}

}  // namespace rlcr::netlist
