// Core netlist data model: cells, pins, nets, and the chip outline.
//
// Follows the paper's Section 2.1 conventions: each net Ni has pins
// (p_i0, p_i1, ...) where p_i0 is the source and the rest are sinks; all
// global interconnects share one driver/receiver configuration.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"

namespace rlcr::netlist {

using NetId = std::int32_t;
using CellId = std::int32_t;

inline constexpr CellId kNoCell = -1;

/// A placeable module (standard cell or pad). Positions are in micrometres
/// from the chip's lower-left corner.
struct Cell {
  std::string name;
  double area_um2 = 1.0;
  geom::PointF pos{0.0, 0.0};
  bool is_pad = false;
  bool placed = false;
};

/// A net terminal. `cell` is kNoCell for synthetic nets whose pins carry
/// their own coordinates; otherwise the pin tracks its cell's position.
struct Pin {
  geom::PointF pos{0.0, 0.0};
  CellId cell = kNoCell;
};

/// A signal net: pins[0] is the source (driver), pins[1..] are sinks.
struct Net {
  std::string name;
  std::vector<Pin> pins;

  bool routable() const { return pins.size() >= 2; }
  std::size_t sink_count() const { return pins.empty() ? 0 : pins.size() - 1; }

  /// Bounding box of all pin positions, in micrometres.
  geom::RectF bbox() const {
    geom::RectF r;
    for (const Pin& p : pins) r.expand(p.pos);
    return r;
  }

  /// Half-perimeter wire length in micrometres.
  double hpwl() const { return bbox().half_perimeter(); }
};

/// A placed design: cells (optional), signal nets, and the chip outline.
class Netlist {
 public:
  Netlist() = default;
  Netlist(std::string name, double width_um, double height_um)
      : name_(std::move(name)), width_um_(width_um), height_um_(height_um) {}

  const std::string& name() const { return name_; }
  double width_um() const { return width_um_; }
  double height_um() const { return height_um_; }
  void set_outline(double w_um, double h_um) {
    width_um_ = w_um;
    height_um_ = h_um;
  }

  CellId add_cell(Cell cell) {
    cells_.push_back(std::move(cell));
    return static_cast<CellId>(cells_.size() - 1);
  }
  NetId add_net(Net net) {
    nets_.push_back(std::move(net));
    return static_cast<NetId>(nets_.size() - 1);
  }

  std::size_t cell_count() const { return cells_.size(); }
  std::size_t net_count() const { return nets_.size(); }

  Cell& cell(CellId id) { return cells_[static_cast<std::size_t>(id)]; }
  const Cell& cell(CellId id) const { return cells_[static_cast<std::size_t>(id)]; }
  Net& net(NetId id) { return nets_[static_cast<std::size_t>(id)]; }
  const Net& net(NetId id) const { return nets_[static_cast<std::size_t>(id)]; }

  const std::vector<Cell>& cells() const { return cells_; }
  const std::vector<Net>& nets() const { return nets_; }

  /// Copy every placed cell's position onto the pins that reference it.
  /// Call after placement so routing sees final pin coordinates.
  void materialize_pins();

  /// Count of nets with >= 2 pins (the ones global routing must connect).
  std::size_t routable_net_count() const;

  /// Sum of HPWL over routable nets (placement quality metric).
  double total_hpwl() const;

  /// Average pins per routable net.
  double average_degree() const;

 private:
  std::string name_;
  double width_um_ = 0.0;
  double height_um_ = 0.0;
  std::vector<Cell> cells_;
  std::vector<Net> nets_;
};

}  // namespace rlcr::netlist
