#include "netlist/placement.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "util/rng.h"

namespace rlcr::netlist {

namespace {

/// Working view of the connectivity: for each cell, the nets touching it;
/// for each net, its cells (deduplicated).
struct Hypergraph {
  std::vector<std::vector<std::int32_t>> cell_nets;  // cell -> net ids
  std::vector<std::vector<CellId>> net_cells;        // net -> cell ids
};

Hypergraph build_hypergraph(const Netlist& nl) {
  Hypergraph h;
  h.cell_nets.resize(nl.cell_count());
  h.net_cells.resize(nl.net_count());
  for (std::size_t n = 0; n < nl.net_count(); ++n) {
    const Net& net = nl.net(static_cast<NetId>(n));
    std::unordered_set<CellId> seen;
    for (const Pin& p : net.pins) {
      if (p.cell == kNoCell) continue;
      if (!seen.insert(p.cell).second) continue;
      h.net_cells[n].push_back(p.cell);
      h.cell_nets[static_cast<std::size_t>(p.cell)].push_back(
          static_cast<std::int32_t>(n));
    }
  }
  return h;
}

/// One bisection task: a set of cells to spread over a rectangle.
struct Task {
  std::vector<CellId> cells;
  double lo_x, lo_y, hi_x, hi_y;
  bool cut_vertical;  // split the rectangle with a vertical line?
  std::size_t depth;
};

}  // namespace

PlacementResult BisectionPlacer::place(Netlist& nl) const {
  PlacementResult result;
  if (nl.cell_count() == 0) {
    nl.materialize_pins();
    return result;
  }

  const Hypergraph hg = build_hypergraph(nl);
  util::Xoshiro256 rng(util::SplitMix64::mix2(options_.seed, 0x9ACE));

  // Pads go on the boundary, evenly spaced; core cells are bisected inside.
  std::vector<CellId> pads, core;
  for (std::size_t i = 0; i < nl.cell_count(); ++i) {
    const auto id = static_cast<CellId>(i);
    (nl.cell(id).is_pad ? pads : core).push_back(id);
  }

  const double w = nl.width_um();
  const double h = nl.height_um();
  if (!pads.empty()) {
    const double perimeter = 2.0 * (w + h);
    const double step = perimeter / static_cast<double>(pads.size());
    double s = 0.0;
    for (CellId id : pads) {
      geom::PointF p;
      double t = std::fmod(s, perimeter);
      if (t < w) {
        p = {t, 0.0};
      } else if (t < w + h) {
        p = {w, t - w};
      } else if (t < 2.0 * w + h) {
        p = {2.0 * w + h - t, h};
      } else {
        p = {0.0, perimeter - t};
      }
      nl.cell(id).pos = p;
      nl.cell(id).placed = true;
      s += step;
    }
  }

  // `side` tracks the current partition id of every cell during one cut so
  // the FM gain computation can count cut nets quickly.
  std::vector<std::int8_t> side(nl.cell_count(), 0);

  std::vector<Task> stack;
  stack.push_back(Task{core, 0.0, 0.0, w, h, w >= h, 0});

  while (!stack.empty()) {
    Task task = std::move(stack.back());
    stack.pop_back();
    result.cut_levels = std::max(result.cut_levels, task.depth + 1);

    if (task.cells.size() <= static_cast<std::size_t>(options_.leaf_cell_limit)) {
      // Leaf: spread cells in a row-major mini-grid inside the rectangle.
      const std::size_t n = task.cells.size();
      const auto grid = static_cast<std::size_t>(
          std::ceil(std::sqrt(static_cast<double>(std::max<std::size_t>(n, 1)))));
      for (std::size_t i = 0; i < n; ++i) {
        const double fx = (static_cast<double>(i % grid) + 0.5) / static_cast<double>(grid);
        const double fy = (static_cast<double>(i / grid) + 0.5) / static_cast<double>(grid);
        Cell& c = nl.cell(task.cells[i]);
        c.pos = {task.lo_x + fx * (task.hi_x - task.lo_x),
                 task.lo_y + fy * (task.hi_y - task.lo_y)};
        c.placed = true;
      }
      continue;
    }

    // --- Initial balanced split, randomized for tie-breaking. ---
    std::vector<CellId>& cells = task.cells;
    rng.shuffle(cells);
    const std::size_t half = cells.size() / 2;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      side[static_cast<std::size_t>(cells[i])] = (i < half) ? 0 : 1;
    }

    // Membership test for nets that leave the current cell subset.
    std::unordered_set<CellId> in_task(cells.begin(), cells.end());

    // Per-net counts of cells on each side (cells outside the task are
    // ignored: they are already fixed elsewhere).
    std::unordered_map<std::int32_t, std::pair<int, int>> net_balance;
    for (CellId c : cells) {
      for (std::int32_t n : hg.cell_nets[static_cast<std::size_t>(c)]) {
        auto& b = net_balance[n];
        (side[static_cast<std::size_t>(c)] == 0 ? b.first : b.second)++;
      }
    }

    // --- FM-style passes: move a cell when it strictly reduces the cut and
    // balance allows. ---
    auto count_on_side = [&](std::size_t s0, std::size_t s1) {
      return std::pair<std::size_t, std::size_t>{s0, s1};
    };
    (void)count_on_side;
    std::size_t size0 = half;
    std::size_t size1 = cells.size() - half;
    const double max_imbalance =
        options_.balance_slack * static_cast<double>(cells.size());

    for (int pass = 0; pass < options_.fm_passes; ++pass) {
      std::size_t moved = 0;
      for (CellId c : cells) {
        const auto ci = static_cast<std::size_t>(c);
        const std::int8_t from = side[ci];
        // Balance check for moving c to the other side.
        const std::size_t from_size = (from == 0) ? size0 : size1;
        const std::size_t to_size = (from == 0) ? size1 : size0;
        if (static_cast<double>(to_size + 1) -
                static_cast<double>(from_size - 1) >
            max_imbalance) {
          continue;
        }
        // Gain: nets that become uncut minus nets that become cut.
        int gain = 0;
        for (std::int32_t n : hg.cell_nets[ci]) {
          const auto& b = net_balance[n];
          const int here = (from == 0) ? b.first : b.second;
          const int there = (from == 0) ? b.second : b.first;
          if (here == 1 && there > 0) ++gain;   // cut disappears
          if (there == 0 && here > 1) --gain;   // new cut appears
        }
        if (gain <= 0) continue;
        // Apply the move.
        side[ci] = static_cast<std::int8_t>(1 - from);
        for (std::int32_t n : hg.cell_nets[ci]) {
          auto& b = net_balance[n];
          if (from == 0) {
            --b.first;
            ++b.second;
          } else {
            ++b.first;
            --b.second;
          }
        }
        if (from == 0) {
          --size0;
          ++size1;
        } else {
          ++size0;
          --size1;
        }
        ++moved;
      }
      result.moves_applied += moved;
      if (moved == 0) break;
    }

    // --- Split geometry and recurse. ---
    std::vector<CellId> left, right;
    left.reserve(size0);
    right.reserve(size1);
    for (CellId c : cells) {
      (side[static_cast<std::size_t>(c)] == 0 ? left : right).push_back(c);
    }
    Task a, b;
    a.depth = b.depth = task.depth + 1;
    if (task.cut_vertical) {
      const double mid = 0.5 * (task.lo_x + task.hi_x);
      a = Task{std::move(left), task.lo_x, task.lo_y, mid, task.hi_y, false, task.depth + 1};
      b = Task{std::move(right), mid, task.lo_y, task.hi_x, task.hi_y, false, task.depth + 1};
    } else {
      const double mid = 0.5 * (task.lo_y + task.hi_y);
      a = Task{std::move(left), task.lo_x, task.lo_y, task.hi_x, mid, true, task.depth + 1};
      b = Task{std::move(right), task.lo_x, mid, task.hi_x, task.hi_y, true, task.depth + 1};
    }
    stack.push_back(std::move(a));
    stack.push_back(std::move(b));
  }

  nl.materialize_pins();
  result.hpwl_um = nl.total_hpwl();
  return result;
}

}  // namespace rlcr::netlist
