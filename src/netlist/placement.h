// Recursive min-cut bisection placement: the stand-in for DRAGON [11].
//
// The paper's flow starts from DRAGON placements of the IBM circuits. For
// netlists parsed from ISPD'98 files (which carry no coordinates), this
// placer assigns every cell a position by recursive bisection with a
// Fiduccia-Mattheyses-style gain pass at each cut, the same family of
// technique DRAGON's global placement stage uses. Synthetic benchmarks ship
// pre-placed and do not need it.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"

namespace rlcr::netlist {

struct PlacerOptions {
  int leaf_cell_limit = 8;   ///< stop recursing below this many cells
  int fm_passes = 2;         ///< FM-style improvement passes per cut
  double balance_slack = 0.12;  ///< allowed deviation from perfect bisection
  std::uint64_t seed = 1;
};

/// Statistics of one placement run.
struct PlacementResult {
  double hpwl_um = 0.0;       ///< total half-perimeter WL after placement
  std::size_t cut_levels = 0; ///< recursion depth reached
  std::size_t moves_applied = 0;  ///< FM moves that improved the cut
};

class BisectionPlacer {
 public:
  explicit BisectionPlacer(PlacerOptions options = {}) : options_(options) {}

  /// Place all cells of `nl` inside its outline (which must be set) and
  /// materialize pin positions. Pads are placed on the chip boundary.
  PlacementResult place(Netlist& nl) const;

 private:
  PlacerOptions options_;
};

}  // namespace rlcr::netlist
