#include "netlist/sensitivity.h"

#include <algorithm>

#include "util/rng.h"

namespace rlcr::netlist {

SensitivityModel::SensitivityModel(std::size_t num_nets, double rate,
                                   std::uint64_t seed, double heterogeneity)
    : rate_(rate), seed_(seed), si_(num_nets) {
  util::Xoshiro256 rng(util::SplitMix64::mix2(seed, 0xC0FFEE));
  const double lo = rate * (1.0 - heterogeneity);
  const double hi = rate * (1.0 + heterogeneity);
  for (auto& s : si_) s = std::clamp(rng.uniform(lo, hi), 0.0, 1.0);
}

bool SensitivityModel::sensitive(NetId i, NetId j) const {
  if (i == j || i < 0 || j < 0) return false;
  const auto ui = static_cast<std::size_t>(i);
  const auto uj = static_cast<std::size_t>(j);
  if (ui >= si_.size() || uj >= si_.size()) return false;
  if (rate_ <= 0.0) return false;
  const double p = std::min(1.0, si_[ui] * si_[uj] / rate_);
  // Symmetric deterministic draw: hash the unordered pair with the seed.
  const std::uint64_t a = static_cast<std::uint64_t>(std::min(i, j));
  const std::uint64_t b = static_cast<std::uint64_t>(std::max(i, j));
  const std::uint64_t h = util::SplitMix64::mix2(seed_ ^ (a << 32 | b), b);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < p;
}

std::size_t SensitivityModel::aggressor_count(
    NetId i, const std::vector<NetId>& candidates) const {
  std::size_t n = 0;
  for (NetId j : candidates)
    if (sensitive(i, j)) ++n;
  return n;
}

}  // namespace rlcr::netlist
