// Net-to-net sensitivity model (Section 2.1 of the paper).
//
// Two nets are "sensitive" when a switching event on one can make the other
// malfunction. The paper evaluates with random sensitivity at rates 30% and
// 50%. Storing an N x N matrix is infeasible at full-chip scale (30k+ nets),
// so sensitivity is defined by a deterministic pairwise hash: sensitive(i, j)
// is an O(1), storage-free, symmetric, seed-reproducible query.
//
// To make the paper's "spread the sensitive nets" mechanism meaningful, nets
// carry heterogeneous sensitivity weights s_i with mean equal to the global
// rate r: P(sensitive(i, j)) = min(1, s_i * s_j / r), so E[P] = r and the
// expected aggressor fraction of net i (its "sensitivity rate" S_i in the
// paper's Eq. 3) equals s_i.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"

namespace rlcr::netlist {

class SensitivityModel {
 public:
  /// `rate` is the paper's global sensitivity rate (0.30 or 0.50).
  /// `heterogeneity` in [0, 1): s_i is drawn uniformly from
  /// rate * [1 - heterogeneity, 1 + heterogeneity].
  SensitivityModel(std::size_t num_nets, double rate, std::uint64_t seed,
                   double heterogeneity = 0.5);

  double rate() const { return rate_; }
  std::size_t net_count() const { return si_.size(); }

  /// Per-net sensitivity rate S_i: the expected fraction of all signal nets
  /// that are aggressors for net i. Input to Eq. (3).
  double si(NetId i) const { return si_[static_cast<std::size_t>(i)]; }

  /// Symmetric pairwise sensitivity. A net is never sensitive to itself.
  bool sensitive(NetId i, NetId j) const;

  /// Exact realized aggressor count of net i against a candidate set
  /// (used by tests to validate the S_i ~ s_i concentration property).
  std::size_t aggressor_count(NetId i, const std::vector<NetId>& candidates) const;

 private:
  double rate_;
  std::uint64_t seed_;
  std::vector<double> si_;
};

}  // namespace rlcr::netlist
