#include "netlist/synthetic.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace rlcr::netlist {

namespace {

/// Net degree (pin count) distribution modeled on the IBM suite: dominated
/// by 2-pin nets with a geometric tail; mean ~3.5 pins.
std::size_t draw_degree(util::Xoshiro256& rng) {
  const double u = rng.uniform();
  if (u < 0.55) return 2;
  if (u < 0.73) return 3;
  if (u < 0.83) return 4;
  if (u < 0.89) return 5;
  // Geometric tail 6..24.
  std::size_t d = 6;
  while (d < 24 && rng.bernoulli(0.62)) ++d;
  return d;
}

}  // namespace

Netlist generate(const SyntheticSpec& spec) {
  Netlist nl(spec.name, spec.chip_w_um, spec.chip_h_um);
  util::Xoshiro256 rng(util::SplitMix64::mix2(spec.seed, 0x5EED));

  const double region_w = spec.chip_w_um / spec.grid_cols;
  const double region_h = spec.chip_h_um / spec.grid_rows;
  const auto cols = static_cast<double>(spec.grid_cols);
  const auto rows = static_cast<double>(spec.grid_rows);

  // Fixed hotspot centres (in region units).
  std::vector<geom::PointF> hotspots;
  hotspots.reserve(static_cast<std::size_t>(std::max(0, spec.hotspot_count)));
  for (int h = 0; h < spec.hotspot_count; ++h) {
    hotspots.push_back(geom::PointF{rng.uniform(cols * 0.15, cols * 0.85),
                                    rng.uniform(rows * 0.15, rows * 0.85)});
  }

  auto clamp_region = [&](double v, double limit) {
    return std::clamp(v, 0.0, limit - 1e-9);
  };

  const auto target =
      static_cast<std::size_t>(std::max(1.0, spec.scale * static_cast<double>(spec.num_nets)));

  for (std::size_t n = 0; n < target; ++n) {
    const std::size_t degree = draw_degree(rng);
    const bool global_net = rng.bernoulli(spec.global_net_fraction);

    // Net centre: hotspot-attracted with probability hotspot_fraction.
    geom::PointF centre;
    if (!hotspots.empty() && rng.bernoulli(spec.hotspot_fraction)) {
      const auto& hs = hotspots[rng.below(hotspots.size())];
      centre = {clamp_region(rng.normal(hs.x, spec.hotspot_sigma_regions), cols),
                clamp_region(rng.normal(hs.y, spec.hotspot_sigma_regions), rows)};
    } else {
      centre = {rng.uniform(0.0, cols), rng.uniform(0.0, rows)};
    }

    const double sigma = global_net
                             ? std::max(cols, rows) / 3.0
                             : spec.local_sigma_regions;

    Net net;
    net.name = spec.name + ".n" + std::to_string(n);
    net.pins.reserve(degree);
    for (std::size_t p = 0; p < degree; ++p) {
      const double rx = clamp_region(rng.normal(centre.x, sigma), cols);
      const double ry = clamp_region(rng.normal(centre.y, sigma), rows);
      // Place the pin at a uniformly random offset inside its region so pin
      // coordinates are generic (never exactly on region boundaries).
      const double ux = (std::floor(rx) + rng.uniform(0.1, 0.9)) * region_w;
      const double uy = (std::floor(ry) + rng.uniform(0.1, 0.9)) * region_h;
      net.pins.push_back(Pin{{ux, uy}, kNoCell});
    }
    nl.add_net(std::move(net));
  }
  return nl;
}

std::vector<SyntheticSpec> ibm_suite(double scale) {
  // Net counts are back-derived from the paper's Table 1 (violation counts
  // and percentages); chip outlines are Table 3's ID+NO row/column lengths;
  // grid shapes and capacities follow the ISPD98-derived global-routing
  // conversions of these circuits.
  // Grid resolutions are chosen so mean per-region track demand lands
  // around 60-80% of capacity with the published net counts (measured via
  // the ID+NO flow), matching the regime a routable real design sits in.
  std::vector<SyntheticSpec> suite(6);

  suite[0].name = "ibm01";
  suite[0].num_nets = 13056;
  suite[0].grid_cols = 96;
  suite[0].grid_rows = 96;
  suite[0].chip_w_um = 1533.0;
  suite[0].chip_h_um = 1824.0;
  suite[0].h_capacity = 22;
  suite[0].v_capacity = 20;
  suite[0].local_sigma_regions = 4.6;
  suite[0].seed = 101;

  suite[1].name = "ibm02";
  suite[1].num_nets = 19291;
  suite[1].grid_cols = 128;
  suite[1].grid_rows = 96;
  suite[1].chip_w_um = 3004.0;
  suite[1].chip_h_um = 3995.0;
  suite[1].h_capacity = 22;
  suite[1].v_capacity = 20;
  suite[1].local_sigma_regions = 3.2;
  suite[1].seed = 102;

  suite[2].name = "ibm03";
  suite[2].num_nets = 26104;
  suite[2].grid_cols = 160;
  suite[2].grid_rows = 128;
  suite[2].chip_w_um = 3178.0;
  suite[2].chip_h_um = 3852.0;
  suite[2].h_capacity = 24;
  suite[2].v_capacity = 20;
  suite[2].local_sigma_regions = 3.9;
  suite[2].seed = 103;

  suite[3].name = "ibm04";
  suite[3].num_nets = 31328;
  suite[3].grid_cols = 192;
  suite[3].grid_rows = 128;
  suite[3].chip_w_um = 3861.0;
  suite[3].chip_h_um = 3910.0;
  suite[3].h_capacity = 24;
  suite[3].v_capacity = 20;
  suite[3].local_sigma_regions = 3.9;
  suite[3].seed = 104;

  suite[4].name = "ibm05";
  suite[4].num_nets = 29647;
  suite[4].grid_cols = 256;
  suite[4].grid_rows = 128;
  suite[4].chip_w_um = 9837.0;
  suite[4].chip_h_um = 7286.0;
  suite[4].h_capacity = 14;
  suite[4].v_capacity = 12;
  suite[4].local_sigma_regions = 2.5;
  suite[4].seed = 105;

  suite[5].name = "ibm06";
  suite[5].num_nets = 34398;
  suite[5].grid_cols = 256;
  suite[5].grid_rows = 128;
  suite[5].chip_w_um = 5002.0;
  suite[5].chip_h_um = 3795.0;
  suite[5].h_capacity = 22;
  suite[5].v_capacity = 18;
  suite[5].local_sigma_regions = 3.9;
  suite[5].seed = 106;

  // Density-preserving scaling: the net count scales by `scale` while the
  // grid and chip shrink by sqrt(scale), so per-region track demand, net
  // lengths in um, and hence violation rates and overhead ratios all stay
  // representative of the full-size run. (spec.scale itself is left at 1:
  // the net count is folded in here.)
  if (scale != 1.0) {
    const double shrink = std::sqrt(scale);
    for (auto& s : suite) {
      s.num_nets = static_cast<std::size_t>(
          std::max(1.0, static_cast<double>(s.num_nets) * scale));
      s.grid_cols = std::max(8, static_cast<std::int32_t>(
                                    std::lround(s.grid_cols * shrink)));
      s.grid_rows = std::max(8, static_cast<std::int32_t>(
                                    std::lround(s.grid_rows * shrink)));
      s.chip_w_um *= shrink;
      s.chip_h_um *= shrink;
    }
  }
  return suite;
}

SyntheticSpec tiny_spec(std::size_t nets, std::uint64_t seed) {
  SyntheticSpec s;
  s.name = "tiny";
  s.num_nets = nets;
  s.grid_cols = 8;
  s.grid_rows = 8;
  s.chip_w_um = 400.0;
  s.chip_h_um = 400.0;
  s.h_capacity = 10;
  s.v_capacity = 10;
  s.local_sigma_regions = 1.2;
  s.hotspot_count = 1;
  s.hotspot_sigma_regions = 1.5;
  s.seed = seed;
  return s;
}

}  // namespace rlcr::netlist
