// Synthetic IBM-scale benchmark generation.
//
// The paper evaluates on ISPD'98/IBM circuits ibm01-ibm06 placed by DRAGON;
// neither the circuits nor DRAGON are redistributable here, so this module
// generates placed netlists calibrated to the published statistics of those
// circuits: signal-net counts (back-derived from the paper's Table 1), chip
// outlines (Table 3's ID+NO areas), routing-grid dimensions and per-region
// track capacities in the style of the ISPD98-derived global-routing suite.
// Net degree follows the heavy-2-pin distribution typical of the IBM suite;
// pin locations mix local (clustered) and global (chip-span) nets plus a few
// congestion hotspots, which is what gives global routing its non-uniform
// density structure.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace rlcr::netlist {

/// Parameters of one synthetic circuit. Defaults produce an ibm01-like
/// instance; `ibm_suite()` returns the six calibrated instances.
struct SyntheticSpec {
  std::string name = "synth";
  std::size_t num_nets = 13056;
  std::int32_t grid_cols = 64;  ///< routing regions per row
  std::int32_t grid_rows = 64;  ///< routing regions per column
  double chip_w_um = 1533.0;
  double chip_h_um = 1824.0;
  int h_capacity = 14;  ///< horizontal tracks per region
  int v_capacity = 12;  ///< vertical tracks per region

  double local_sigma_regions = 2.6;   ///< pin spread of local nets (region units)
  double global_net_fraction = 0.05;  ///< nets spanning a large chip fraction
  double hotspot_fraction = 0.15;     ///< nets centred on congestion hotspots
  int hotspot_count = 4;
  double hotspot_sigma_regions = 7.0;

  std::uint64_t seed = 1;

  /// Uniformly scales the net count (for fast tests: scale = 0.05 gives a
  /// few hundred nets with the same statistical structure).
  double scale = 1.0;
};

/// Generate a placed netlist from a spec. Deterministic in (spec, seed).
Netlist generate(const SyntheticSpec& spec);

/// The six calibrated ibm01-ibm06 stand-ins used by the experiment benches.
/// `scale` uniformly shrinks every circuit (1.0 = full published size).
std::vector<SyntheticSpec> ibm_suite(double scale = 1.0);

/// A small fully-deterministic instance for unit tests: `nets` nets on an
/// 8x8 grid with modest capacities.
SyntheticSpec tiny_spec(std::size_t nets = 200, std::uint64_t seed = 7);

}  // namespace rlcr::netlist
