#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "parallel/thread_pool.h"

namespace rlcr::obs {

double MetricsSnapshot::value_of(const std::string& name) const {
  const auto it = index_.find(name);
  return it == index_.end() ? 0.0 : metrics_[it->second].value;
}

void MetricsSnapshot::set(const std::string& name, MetricKind kind,
                          double value) {
  const auto it = index_.find(name);
  if (it != index_.end()) {
    metrics_[it->second].kind = kind;
    metrics_[it->second].value = value;
    return;
  }
  index_.emplace(name, metrics_.size());
  metrics_.push_back(Metric{name, kind, value});
}

std::string MetricsSnapshot::to_json() const {
  std::vector<const Metric*> sorted;
  sorted.reserve(metrics_.size());
  for (const Metric& m : metrics_) sorted.push_back(&m);
  std::sort(sorted.begin(), sorted.end(),
            [](const Metric* a, const Metric* b) { return a->name < b->name; });

  std::string out = "{\"metrics\":{";
  char num[64];
  bool first = true;
  for (const Metric* m : sorted) {
    if (!first) out += ",";
    first = false;
    out += "\n\"" + m->name + "\":{\"kind\":\"";
    out += m->kind == MetricKind::kCounter ? "counter" : "gauge";
    std::snprintf(num, sizeof(num), "%.17g", m->value);
    out += "\",\"value\":";
    out += num;
    out += "}";
  }
  out += "\n}}\n";
  return out;
}

bool MetricsSnapshot::write_json(const std::filesystem::path& path) const {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f << to_json();
  f.flush();
  return static_cast<bool>(f);
}

// ------------------------------------------------------- struct adapters

void append_metrics(MetricsSnapshot& out, const gsino::StageCounters& c) {
  static_assert(sizeof(gsino::StageCounters) == 23 * sizeof(std::size_t),
                "StageCounters changed: update this adapter and the "
                "completeness test in tests/obs_test.cpp");
  const auto n = [](std::size_t v) { return static_cast<double>(v); };
  out.set_counter("session.route_requests", n(c.route_requests));
  out.set_counter("session.route_executed", n(c.route_executed));
  out.set_counter("session.route_loaded", n(c.route_loaded));
  out.set_counter("session.budget_requests", n(c.budget_requests));
  out.set_counter("session.budget_executed", n(c.budget_executed));
  out.set_counter("session.budget_loaded", n(c.budget_loaded));
  out.set_counter("session.solve_requests", n(c.solve_requests));
  out.set_counter("session.solve_executed", n(c.solve_executed));
  out.set_counter("session.solve_loaded", n(c.solve_loaded));
  out.set_counter("session.refine_requests", n(c.refine_requests));
  out.set_counter("session.refine_executed", n(c.refine_executed));
  out.set_counter("session.refine_loaded", n(c.refine_loaded));
  out.set_counter("session.route_spec_attempted", n(c.route_spec_attempted));
  out.set_counter("session.route_spec_committed", n(c.route_spec_committed));
  out.set_counter("session.route_spec_replayed", n(c.route_spec_replayed));
  out.set_counter("session.refine_spec_attempted", n(c.refine_spec_attempted));
  out.set_counter("session.refine_spec_committed", n(c.refine_spec_committed));
  out.set_counter("session.refine_spec_replayed", n(c.refine_spec_replayed));
  out.set_counter("session.delta_applies", n(c.delta_applies));
  out.set_counter("session.delta_nets_rerouted", n(c.delta_nets_rerouted));
  out.set_counter("session.delta_nets_reused", n(c.delta_nets_reused));
  out.set_counter("session.delta_regions_solved", n(c.delta_regions_solved));
  out.set_counter("session.delta_regions_reused", n(c.delta_regions_reused));
}

void append_metrics(MetricsSnapshot& out, const router::RoutingStats& s) {
  static_assert(sizeof(router::RoutingStats) ==
                    9 * sizeof(std::size_t) + sizeof(double),
                "RoutingStats changed: update this adapter and the "
                "completeness test in tests/obs_test.cpp");
  const auto n = [](std::size_t v) { return static_cast<double>(v); };
  out.set_counter("router.edges_initial", n(s.edges_initial));
  out.set_counter("router.edges_deleted", n(s.edges_deleted));
  out.set_counter("router.edges_locked", n(s.edges_locked));
  out.set_counter("router.reinserts", n(s.reinserts));
  out.set_counter("router.prerouted_nets", n(s.prerouted_nets));
  out.set_counter("router.rsmt_fallback_nets", n(s.rsmt_fallback_nets));
  out.set_counter("router.spec_attempted", n(s.spec_attempted));
  out.set_counter("router.spec_committed", n(s.spec_committed));
  out.set_counter("router.spec_replayed", n(s.spec_replayed));
  out.set_gauge("router.runtime_s", s.runtime_s);
}

void append_metrics(MetricsSnapshot& out, const gsino::RefineStats& s) {
  static_assert(sizeof(gsino::RefineStats) == 11 * sizeof(int),
                "RefineStats changed: update this adapter and the "
                "completeness test in tests/obs_test.cpp");
  out.set_counter("refine.pass1_nets_fixed", s.pass1_nets_fixed);
  out.set_counter("refine.pass1_resolves", s.pass1_resolves);
  out.set_counter("refine.pass1_gave_up", s.pass1_gave_up);
  out.set_counter("refine.pass2_shields_removed", s.pass2_shields_removed);
  out.set_counter("refine.pass2_accepted", s.pass2_accepted);
  out.set_counter("refine.pass2_rejected", s.pass2_rejected);
  out.set_counter("refine.batch_sweeps", s.batch_sweeps);
  out.set_counter("refine.batch_regions_resolved", s.batch_regions_resolved);
  out.set_counter("refine.spec_attempted", s.spec_attempted);
  out.set_counter("refine.spec_committed", s.spec_committed);
  out.set_counter("refine.spec_replayed", s.spec_replayed);
}

void append_metrics(MetricsSnapshot& out, const store::StoreStats& s) {
  static_assert(sizeof(store::StoreStats) ==
                    7 * sizeof(std::size_t) + 2 * sizeof(std::uintmax_t),
                "StoreStats changed: update this adapter and the "
                "completeness test in tests/obs_test.cpp");
  const auto n = [](std::uintmax_t v) { return static_cast<double>(v); };
  out.set_counter("store.hits", n(s.hits));
  out.set_counter("store.misses", n(s.misses));
  out.set_counter("store.stores", n(s.stores));
  out.set_counter("store.evictions", n(s.evictions));
  out.set_counter("store.rejected", n(s.rejected));
  out.set_counter("store.put_failures", n(s.put_failures));
  out.set_counter("store.lock_waits", n(s.lock_waits));
  out.set_counter("store.bytes_written", n(s.bytes_written));
  out.set_counter("store.bytes_read", n(s.bytes_read));
}

void append_metrics(MetricsSnapshot& out, const parallel::SpecStats& s,
                    const std::string& prefix) {
  static_assert(sizeof(parallel::SpecStats) == 3 * sizeof(std::size_t),
                "SpecStats changed: update this adapter and the "
                "completeness test in tests/obs_test.cpp");
  const auto n = [](std::size_t v) { return static_cast<double>(v); };
  out.set_counter(prefix + "attempted", n(s.attempted));
  out.set_counter(prefix + "committed", n(s.committed));
  out.set_counter(prefix + "replayed", n(s.replayed));
}

// ------------------------------------------------------ resource sampler

double ResourceSampler::rss_kb_now() {
#if defined(__linux__)
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      double kb = 0.0;
      if (std::sscanf(line.c_str(), "VmRSS: %lf", &kb) == 1) return kb;
    }
  }
#endif
  return 0.0;
}

ResourceSampler::ResourceSampler(Options options)
    : options_(options), start_(std::chrono::steady_clock::now()) {
  thread_ = std::thread([this] { run(); });
}

ResourceSampler::~ResourceSampler() { stop(); }

void ResourceSampler::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

std::vector<ResourceSample> ResourceSampler::samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_;
}

void ResourceSampler::run() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    // Sample first so even a short-lived flow gets at least one point.
    ResourceSample s;
    s.t_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start_)
                .count();
    lock.unlock();  // the callees lock their own mutexes; don't hold ours
    s.rss_kb = rss_kb_now();
    if (options_.store != nullptr) {
      s.store_bytes = static_cast<double>(options_.store->bytes_on_disk());
    }
    s.pool_threads =
        static_cast<double>(parallel::ThreadPool::global().spawned());
    lock.lock();
    samples_.push_back(s);
    if (cv_.wait_for(lock, options_.period, [this] { return stop_; })) return;
  }
}

void ResourceSampler::append_gauges(MetricsSnapshot& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  double peak_rss = 0.0, last_rss = 0.0, peak_store = 0.0, peak_pool = 0.0;
  for (const ResourceSample& s : samples_) {
    peak_rss = std::max(peak_rss, s.rss_kb);
    last_rss = s.rss_kb;
    peak_store = std::max(peak_store, s.store_bytes);
    peak_pool = std::max(peak_pool, s.pool_threads);
  }
  out.set_gauge("resource.samples", static_cast<double>(samples_.size()));
  out.set_gauge("resource.rss_peak_kb", peak_rss);
  out.set_gauge("resource.rss_last_kb", last_rss);
  out.set_gauge("resource.store_peak_bytes", peak_store);
  out.set_gauge("resource.pool_peak_threads", peak_pool);
}

}  // namespace rlcr::obs
