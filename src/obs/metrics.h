// Flow-wide metrics registry (the observability layer's counters half).
//
// The five stats structs scattered across the subsystems — StageCounters
// (core/session.h), RoutingStats (router/route_types.h), RefineStats
// (core/session.h), StoreStats (store/artifact_store.h), and SpecStats
// (parallel/speculate.h) — stay the internal source of truth; this layer
// only *adapts* them into one flat, name-keyed MetricsSnapshot for export
// (JSON, `route_cli --metrics-out`, the future what-if daemon's stats
// endpoint). Each adapter carries a sizeof static_assert so adding a field
// to a source struct without teaching the adapter fails the build, and the
// completeness test (tests/obs_test.cpp) proves every field appears in the
// registry exactly once.
//
// Naming convention: "<subsystem>.<field>" — session.*, router.*,
// refine.*, store.*, spec.* — plus resource.* gauges from the sampler.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/session.h"
#include "parallel/speculate.h"
#include "router/route_types.h"
#include "store/artifact_store.h"

namespace rlcr::obs {

enum class MetricKind { kCounter, kGauge };

struct Metric {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;
};

/// A point-in-time, name-keyed view over the stats structs. Insertion
/// order is preserved in metrics(); to_json() sorts by name so the key
/// set — which tools/check_trace.py pins — is stable across refactors.
class MetricsSnapshot {
 public:
  void set_counter(const std::string& name, double value) {
    set(name, MetricKind::kCounter, value);
  }
  void set_gauge(const std::string& name, double value) {
    set(name, MetricKind::kGauge, value);
  }

  const std::vector<Metric>& metrics() const { return metrics_; }
  bool has(const std::string& name) const {
    return index_.find(name) != index_.end();
  }
  /// Value of `name`, or 0.0 when absent (check has() when it matters).
  double value_of(const std::string& name) const;

  /// {"metrics":{"<name>":{"kind":"counter|gauge","value":N}, ...}} with
  /// names sorted.
  std::string to_json() const;
  /// to_json() to a file; false on I/O failure.
  bool write_json(const std::filesystem::path& path) const;

 private:
  void set(const std::string& name, MetricKind kind, double value);

  std::vector<Metric> metrics_;
  std::unordered_map<std::string, std::size_t> index_;
};

// ------------------------------------------------------- struct adapters

/// session.* counters (requests/executed/loaded per stage + speculation
/// totals).
void append_metrics(MetricsSnapshot& out, const gsino::StageCounters& c);
/// router.* counters plus the router.runtime_s gauge.
void append_metrics(MetricsSnapshot& out, const router::RoutingStats& s);
/// refine.* counters.
void append_metrics(MetricsSnapshot& out, const gsino::RefineStats& s);
/// store.* counters.
void append_metrics(MetricsSnapshot& out, const store::StoreStats& s);
/// <prefix>attempted/committed/replayed counters for a standalone
/// speculation scope (the session already folds its own spec totals into
/// session.*).
void append_metrics(MetricsSnapshot& out, const parallel::SpecStats& s,
                    const std::string& prefix = "spec.");

// ------------------------------------------------------ resource sampler

struct ResourceSample {
  double t_s = 0.0;              ///< seconds since sampler start
  double rss_kb = 0.0;           ///< VmRSS (0 where /proc is unavailable)
  double store_bytes = 0.0;      ///< bytes on disk of the watched store
  double pool_threads = 0.0;     ///< spawned pool workers
};

struct ResourceSamplerOptions {
  std::chrono::milliseconds period{100};
  /// Optional store to watch; must outlive the sampler.
  const store::ArtifactStore* store = nullptr;
};

/// Periodically samples process RSS, artifact-store footprint, and pool
/// occupancy on a background thread. The sampled callees are internally
/// synchronized (ArtifactStore::bytes_on_disk() and ThreadPool::spawned()
/// both lock), so the sampler is safe to run alongside a flow — including
/// under TSan. stop() (or destruction) joins the thread.
class ResourceSampler {
 public:
  using Options = ResourceSamplerOptions;

  explicit ResourceSampler(Options options = {});
  ~ResourceSampler();
  ResourceSampler(const ResourceSampler&) = delete;
  ResourceSampler& operator=(const ResourceSampler&) = delete;

  void stop();
  std::vector<ResourceSample> samples() const;

  /// resource.* gauges (sample count, peak/last RSS, peak store bytes,
  /// peak pool threads) from the samples taken so far.
  void append_gauges(MetricsSnapshot& out) const;

  /// Current VmRSS in kB (0 on platforms without /proc/self/status).
  static double rss_kb_now();

 private:
  void run();

  Options options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::vector<ResourceSample> samples_;
  std::chrono::steady_clock::time_point start_;
  std::thread thread_;
};

}  // namespace rlcr::obs
