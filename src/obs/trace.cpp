#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>

namespace rlcr::obs {

namespace detail {

std::atomic<bool> g_trace_enabled{false};

namespace {

/// In-buffer span; `tid` lives on the buffer, not the span.
struct Span {
  const char* name = nullptr;
  const char* cat = nullptr;
  const char* arg_name = nullptr;
  double arg_val = 0.0;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
};

/// One writer thread's ring. Only the owning thread writes `slots`,
/// `capacity`, and `count`; the exporter reads them under the registry
/// mutex after acquiring `count` (release/acquire pairs with the owner's
/// per-span release store) — plus the external quiesce contract
/// (TraceSession docs), which is what makes the export race-free.
struct ThreadBuffer {
  std::atomic<std::uint64_t> count{0};   ///< total spans ever recorded
  std::atomic<std::uint64_t> epoch{0};   ///< session this ring belongs to
  std::uint32_t tid = 0;                 ///< registration index
  std::size_t capacity = 0;
  std::vector<Span> slots;
};

/// Process-wide tracer state. Leaked on purpose: pool worker threads may
/// outlive static destruction order, and a worker touching a destroyed
/// registry on exit would be worse than the one-allocation leak.
struct Registry {
  std::mutex mu;  ///< guards `buffers` growth and session/export state
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  std::atomic<std::uint64_t> epoch{0};     ///< current session epoch
  std::atomic<std::size_t> capacity{0};    ///< current session ring size
  std::uint64_t sessions = 0;              ///< epoch counter (under mu)
};

Registry& registry() {
  static Registry* reg = new Registry;
  return *reg;
}

thread_local ThreadBuffer* tl_buf = nullptr;

ThreadBuffer* register_thread(Registry& reg) {
  auto buf = std::make_unique<ThreadBuffer>();
  std::lock_guard<std::mutex> lock(reg.mu);
  buf->tid = static_cast<std::uint32_t>(reg.buffers.size());
  tl_buf = buf.get();
  reg.buffers.push_back(std::move(buf));
  return tl_buf;
}

}  // namespace

void record_span(const char* name, const char* cat, std::uint64_t start_ns,
                 std::uint64_t dur_ns, const char* arg_name, double arg_val) {
  Registry& reg = registry();
  ThreadBuffer* buf = tl_buf;
  if (buf == nullptr) buf = register_thread(reg);

  // Lazily (re)arm the ring for the current session: buffers from earlier
  // epochs keep their stale contents until the owning thread records
  // again, and the exporter skips them by epoch.
  const std::uint64_t epoch = reg.epoch.load(std::memory_order_acquire);
  if (buf->epoch.load(std::memory_order_relaxed) != epoch) {
    const std::size_t cap = reg.capacity.load(std::memory_order_acquire);
    if (buf->slots.size() != cap) buf->slots.assign(cap, Span{});
    buf->capacity = cap;
    buf->count.store(0, std::memory_order_relaxed);
    buf->epoch.store(epoch, std::memory_order_release);
  }
  if (buf->capacity == 0) return;  // no session active (raced the stop)

  const std::uint64_t n = buf->count.load(std::memory_order_relaxed);
  Span& s = buf->slots[n % buf->capacity];
  s.name = name;
  s.cat = cat;
  s.arg_name = arg_name;
  s.arg_val = arg_val;
  s.start_ns = start_ns;
  s.dur_ns = dur_ns;
  // Release: an exporter that acquires `count` sees the slot contents.
  buf->count.store(n + 1, std::memory_order_release);
}

}  // namespace detail

bool trace_env_enabled() {
  const char* env = std::getenv("RLCR_TRACE");
  return env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0;
}

TraceSession::TraceSession(TraceOptions options) {
  detail::Registry& reg = detail::registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  epoch_ = ++reg.sessions;
  reg.capacity.store(options.buffer_capacity, std::memory_order_release);
  reg.epoch.store(epoch_, std::memory_order_release);
  origin_ns_ = now_ns();
  detail::g_trace_enabled.store(true, std::memory_order_release);
}

TraceSession::~TraceSession() {
  detail::g_trace_enabled.store(false, std::memory_order_release);
}

std::vector<SpanRecord> TraceSession::snapshot() const {
  detail::Registry& reg = detail::registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<SpanRecord> out;
  for (const auto& bufp : reg.buffers) {
    const detail::ThreadBuffer& buf = *bufp;
    // Acquiring `epoch` orders the ring's (re)arm — slots storage and
    // capacity — before our reads; acquiring `count` orders the recorded
    // span contents.
    if (buf.epoch.load(std::memory_order_acquire) != epoch_) continue;
    const std::uint64_t n = buf.count.load(std::memory_order_acquire);
    const std::uint64_t cap = buf.capacity;
    if (cap == 0) continue;
    const std::uint64_t kept = std::min(n, cap);
    for (std::uint64_t i = n - kept; i < n; ++i) {
      const detail::Span& s = buf.slots[i % cap];
      out.push_back(SpanRecord{s.name, s.cat, buf.tid, s.start_ns, s.dur_ns,
                               s.arg_name, s.arg_val});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.dur_ns > b.dur_ns;  // parents before children
            });
  return out;
}

std::size_t TraceSession::span_count() const {
  detail::Registry& reg = detail::registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::size_t total = 0;
  for (const auto& bufp : reg.buffers) {
    if (bufp->epoch.load(std::memory_order_acquire) != epoch_) continue;
    const std::uint64_t n = bufp->count.load(std::memory_order_acquire);
    total += static_cast<std::size_t>(
        std::min<std::uint64_t>(n, bufp->capacity));
  }
  return total;
}

std::uint64_t TraceSession::dropped() const {
  detail::Registry& reg = detail::registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::uint64_t lost = 0;
  for (const auto& bufp : reg.buffers) {
    if (bufp->epoch.load(std::memory_order_acquire) != epoch_) continue;
    const std::uint64_t n = bufp->count.load(std::memory_order_acquire);
    if (n > bufp->capacity) lost += n - bufp->capacity;
  }
  return lost;
}

void TraceSession::write_chrome_trace(std::ostream& os) const {
  const std::vector<SpanRecord> spans = snapshot();

  // Which tids appear, for thread-name metadata rows.
  std::vector<std::uint32_t> tids;
  for (const SpanRecord& s : spans) tids.push_back(s.tid);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  const auto comma = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  comma();
  os << "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
        "\"args\":{\"name\":\"rlcr\"}}";
  for (const std::uint32_t tid : tids) {
    comma();
    os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
       << (tid == 0 ? "main" : "worker ") << (tid == 0 ? "" : std::to_string(tid))
       << "\"}}";
  }

  char num[64];
  const auto us = [&](std::uint64_t ns) -> const char* {
    std::snprintf(num, sizeof(num), "%.3f", static_cast<double>(ns) / 1000.0);
    return num;
  };
  for (const SpanRecord& s : spans) {
    comma();
    const std::uint64_t rel =
        s.start_ns >= origin_ns_ ? s.start_ns - origin_ns_ : 0;
    os << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << s.tid << ",\"name\":\""
       << s.name << "\",\"cat\":\"" << s.cat << "\",\"ts\":" << us(rel);
    os << ",\"dur\":" << us(s.dur_ns);
    if (s.arg_name != nullptr) {
      std::snprintf(num, sizeof(num), "%.17g", s.arg_val);
      os << ",\"args\":{\"" << s.arg_name << "\":" << num << "}";
    }
    os << "}";
  }
  os << "\n]}\n";
}

bool TraceSession::write_chrome_trace(const std::filesystem::path& path) const {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  write_chrome_trace(f);
  f.flush();
  return static_cast<bool>(f);
}

}  // namespace rlcr::obs
