// Low-overhead scoped span tracer (the observability layer's timing half;
// the metrics registry in obs/metrics.h is the counters half).
//
// Design contract:
//
//   - A span site is `RLCR_TRACE_SPAN(sp, "router.build", "router");` at
//     the top of a scope, optionally followed by `sp.arg("nets", n)`.
//     With no TraceSession active the site costs one relaxed atomic load
//     and a predicted branch — cheap enough for per-net / per-task loops
//     (the <2% contract on BM_IdRouter64 is pinned by the CI A/B; see
//     docs/OBSERVABILITY.md). Building with -DRLCR_OBS=OFF compiles the
//     macro away entirely.
//   - Spans land in per-thread ring buffers: a writer thread touches only
//     its own buffer, so recording is lock-free and never serializes
//     worker threads against each other (tracing enabled must not perturb
//     outputs; goldens are the oracle). When a buffer wraps, the oldest
//     spans are dropped and counted (TraceSession::dropped()).
//   - TraceSession is the on/off switch and the exporter: constructing one
//     starts an epoch (stale buffers from earlier sessions are ignored),
//     destroying it stops recording. snapshot()/write_chrome_trace() must
//     be called after the traced work has quiesced (pool run()/map()
//     returned) — the pool's join handshake is the happens-before edge
//     that makes the export race-free (TSan-checked at RLCR_THREADS=8).
//   - Span names and categories must be string literals (or otherwise
//     outlive the session): the tracer stores the pointers, not copies,
//     which is what keeps the record path allocation-free.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <string>
#include <vector>

namespace rlcr::obs {

namespace detail {
/// Global record switch. Writers read it relaxed: a span that straddles
/// session start/stop may be kept or dropped, but the check itself is one
/// predicted branch. Toggled only by TraceSession.
extern std::atomic<bool> g_trace_enabled;

void record_span(const char* name, const char* cat, std::uint64_t start_ns,
                 std::uint64_t dur_ns, const char* arg_name, double arg_val);
}  // namespace detail

/// Monotonic timestamp (steady_clock) in ns.
inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// The disabled-path check every span site starts with.
inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// True when the RLCR_TRACE environment variable asks for tracing (set and
/// not "0"). CLIs use this as an opt-in besides their --trace-out flag.
bool trace_env_enabled();

/// One exported span. `tid` is the tracer's own registration index (0 is
/// the first thread that ever recorded), stable within a process — not the
/// OS thread id. `arg_name` is null when the span carries no argument.
struct SpanRecord {
  const char* name = nullptr;
  const char* cat = nullptr;
  std::uint32_t tid = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  const char* arg_name = nullptr;
  double arg_val = 0.0;
};

/// RAII span: stamps start on construction (when tracing is on), records
/// on destruction. Movable-from-nowhere by design — declare it with
/// RLCR_TRACE_SPAN at the top of the scope being measured.
class ScopedSpan {
 public:
  ScopedSpan(const char* name, const char* cat)
      : ScopedSpan(name, cat, true) {}
  /// `gate` adds a caller-side condition (e.g. SessionOptions::trace)
  /// on top of the global switch.
  ScopedSpan(const char* name, const char* cat, bool gate) {
    if (gate && trace_enabled()) {
      name_ = name;
      cat_ = cat;
      start_ns_ = now_ns();
    }
  }
  ~ScopedSpan() {
    if (name_ != nullptr) {
      detail::record_span(name_, cat_, start_ns_, now_ns() - start_ns_,
                          arg_name_, arg_val_);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attach one numeric argument (exported into the trace event's args).
  /// `name` must be a string literal; the last call wins.
  void arg(const char* name, double value) {
    if (name_ != nullptr) {
      arg_name_ = name;
      arg_val_ = value;
    }
  }
  bool active() const { return name_ != nullptr; }

 private:
  const char* name_ = nullptr;  ///< null = not recording
  const char* cat_ = nullptr;
  const char* arg_name_ = nullptr;
  double arg_val_ = 0.0;
  std::uint64_t start_ns_ = 0;
};

/// What RLCR_TRACE_SPAN degrades to under -DRLCR_OBS=OFF.
struct NullSpan {
  void arg(const char*, double) {}
  bool active() const { return false; }
};

#ifdef RLCR_OBS_ENABLED
#define RLCR_TRACE_SPAN(var, name, cat) \
  ::rlcr::obs::ScopedSpan var((name), (cat))
#else
#define RLCR_TRACE_SPAN(var, name, cat) \
  ::rlcr::obs::NullSpan var;            \
  (void)var
#endif

struct TraceOptions {
  /// Ring capacity per thread, in spans (one span is 48 bytes). A full
  /// buffer wraps: newest spans win, dropped() reports the loss.
  std::size_t buffer_capacity = 16384;
};

/// Starts recording on construction, stops on destruction. One session at
/// a time per process (a second concurrent session steals the epoch; the
/// first one's snapshot comes back empty — don't nest them). Export
/// methods require the traced work to have quiesced first.
class TraceSession {
 public:
  explicit TraceSession(TraceOptions options = {});
  ~TraceSession();
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// All retained spans of this session, sorted by (start, tid).
  std::vector<SpanRecord> snapshot() const;
  /// Retained span count (cheaper than snapshot().size()).
  std::size_t span_count() const;
  /// Spans lost to ring wraparound across all threads.
  std::uint64_t dropped() const;

  /// Chrome trace-event JSON ("X" duration events + thread-name metadata),
  /// loadable in Perfetto / chrome://tracing. Timestamps are microseconds
  /// relative to session start.
  void write_chrome_trace(std::ostream& os) const;
  /// Same, to a file; false (with the trace unwritten) on I/O failure.
  bool write_chrome_trace(const std::filesystem::path& path) const;

  std::uint64_t origin_ns() const { return origin_ns_; }

 private:
  std::uint64_t epoch_ = 0;
  std::uint64_t origin_ns_ = 0;
};

}  // namespace rlcr::obs
