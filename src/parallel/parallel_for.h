// Deterministic chunked algorithms over the shared thread pool.
//
// The determinism contract (see src/parallel/README.md):
//   - Work over [0, n) is split into chunks whose boundaries are a pure
//     function of n and the caller's grain — chunk c covers
//     [c * grain, min(n, (c + 1) * grain)) — never of the thread count or
//     of runtime scheduling.
//   - Workers pull chunk indices from a shared counter, so WHICH worker
//     executes a chunk is scheduling-dependent; everything a chunk computes
//     must therefore depend only on the chunk (the worker id parameter is
//     for scratch reuse only).
//   - Whatever is combined across chunks — ordered_reduce partials,
//     exceptions — is combined on the calling thread in ascending chunk
//     order. Floating-point accumulation order is thus fixed, and results
//     are bit-identical at any thread count, including 1.
//   - threads <= 1 (after resolve_threads) executes the chunks inline on
//     the calling thread in ascending order without touching the pool: the
//     exact serial path, which makes existing single-threaded goldens the
//     determinism oracle for every other thread count.
//
// Exceptions: every chunk body is wrapped; after all chunks ran, the
// exception of the LOWEST-index throwing chunk is rethrown (deterministic).
// The serial path stops at the throwing chunk instead of running the rest —
// the rethrown exception is identical, but side effects of later chunks may
// differ between serial and pooled execution when a body throws.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <optional>
#include <utility>
#include <vector>

#include "parallel/thread_pool.h"

namespace rlcr::parallel {

/// Number of chunks a range of n items splits into at the given grain.
inline std::size_t chunk_count(std::size_t n, std::size_t grain) {
  return grain == 0 ? 0 : (n + grain - 1) / grain;
}

/// Static-chunked parallel loop. Invokes
///   body(begin, end, worker)
/// once per chunk; `worker` is in [0, resolve_threads(threads)) and
/// identifies the executing participant for scratch reuse only.
template <typename Body>
void parallel_for(std::size_t n, std::size_t grain, int threads, Body&& body) {
  const std::size_t chunks = chunk_count(n, grain);
  if (chunks == 0) return;
  const int workers = resolve_threads(threads);
  if (workers <= 1 || chunks == 1 || ThreadPool::on_worker_thread()) {
    for (std::size_t c = 0; c < chunks; ++c) {
      body(c * grain, std::min(n, (c + 1) * grain), 0);
    }
    return;
  }

  std::atomic<std::size_t> next{0};
  std::vector<std::exception_ptr> errors(chunks);
  std::atomic<bool> failed{false};
  const int helpers =
      std::min<std::size_t>(static_cast<std::size_t>(workers) - 1, chunks - 1);
  ThreadPool::global().run(helpers, [&](int worker) {
    for (;;) {
      const std::size_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) return;
      try {
        body(c * grain, std::min(n, (c + 1) * grain), worker);
      } catch (...) {
        // Every chunk still runs (skipping on failure would make the set of
        // executed chunks scheduling-dependent); the lowest chunk's
        // exception wins deterministically below.
        errors[c] = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  });
  if (failed.load(std::memory_order_relaxed)) {
    for (std::exception_ptr& e : errors) {
      if (e) std::rethrow_exception(e);
    }
  }
}

/// Elementwise map: out[i] = fn(i) for i in [0, n). T must be
/// default-constructible (slots are preallocated; each is written by exactly
/// one chunk, so the result is independent of scheduling by construction).
template <typename T, typename Fn>
std::vector<T> parallel_map(std::size_t n, std::size_t grain, int threads,
                            Fn&& fn) {
  std::vector<T> out(n);
  parallel_for(n, grain, threads, [&](std::size_t b, std::size_t e, int) {
    for (std::size_t i = b; i < e; ++i) out[i] = fn(i);
  });
  return out;
}

/// Ordered deterministic reduce: workers produce one Partial per chunk
///   produce(begin, end, worker) -> Partial
/// and the calling thread combines them in ascending chunk order
///   combine(chunk_index, Partial&&)
/// after every chunk has completed. Because the combination order is fixed,
/// any accumulation combine performs (floating-point sums included) is
/// bit-identical at every thread count. produce must not observe state
/// combine mutates; at threads <= 1 the two are interleaved
/// (produce c, combine c, produce c+1, ...) on the exact serial path.
template <typename Partial, typename Produce, typename Combine>
void ordered_reduce(std::size_t n, std::size_t grain, int threads,
                    Produce&& produce, Combine&& combine) {
  const std::size_t chunks = chunk_count(n, grain);
  if (chunks == 0) return;
  const int workers = resolve_threads(threads);
  if (workers <= 1 || chunks == 1 || ThreadPool::on_worker_thread()) {
    for (std::size_t c = 0; c < chunks; ++c) {
      combine(c, produce(c * grain, std::min(n, (c + 1) * grain), 0));
    }
    return;
  }
  std::vector<std::optional<Partial>> partials(chunks);
  parallel_for(n, grain, threads, [&](std::size_t b, std::size_t e, int w) {
    partials[b / grain].emplace(produce(b, e, w));
  });
  for (std::size_t c = 0; c < chunks; ++c) {
    combine(c, std::move(*partials[c]));
  }
}

}  // namespace rlcr::parallel
