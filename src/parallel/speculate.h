// Speculative-batch execution over the shared pool.
//
// The chunked primitives in parallel_for.h parallelize loops whose
// iterations are already independent. The two remaining serial walls of
// the flow — the Phase I deletion loop and Phase III refinement pass 1 —
// are *inherently sequential*: each step's inputs depend on every earlier
// step's commits. Speculation parallelizes them anyway without touching
// the serial semantics, by treating parallel work as *validated
// memoization*:
//
//   1. snapshot — serially pick the k candidates the serial loop is most
//      likely to process next (top-of-heap edges; worst violating nets)
//      and record a version stamp for every input each candidate reads.
//      Nothing mutates between here and the end of step 2, so workers
//      read a frozen state.
//   2. evaluate — run the k candidate evaluations concurrently
//      (speculate() below). Each worker computes a pure function of the
//      snapshot into its own result slot, using worker-local scratch;
//      shared state is read-only during the phase, so the evaluations are
//      race-free by construction.
//   3. commit / replay — the UNCHANGED serial loop runs on the calling
//      thread. Where it is about to recompute something a memo holds, it
//      first re-checks the memo's version stamps against the live
//      counters: unchanged stamps prove no earlier commit touched any
//      input, so the memo equals — bit for bit — what the serial code
//      would compute, and is consumed (committed). A stale memo is
//      discarded and the value recomputed serially (replayed).
//
// Because the serial loop itself decides every commit in its original
// order and a memo is only consumed when its inputs are provably
// untouched, the final state is bit-identical to the serial path at every
// (threads, batch) combination; batch <= 1 or threads <= 1 never builds a
// snapshot at all and IS the serial path. Mispredicted or invalidated
// speculation costs wasted worker time, never correctness.
//
// See src/parallel/README.md ("Speculative execution") for the contract
// call sites must uphold, and router/id_router.cpp / core/refine.cpp for
// the two integrations.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "parallel/parallel_for.h"

namespace rlcr::parallel {

/// Per-stage speculation counters (surfaced through RoutingStats /
/// RefineStats / StageCounters). `attempted` counts candidate evaluations
/// fanned out, `committed` the memos the serial order consumed after
/// validation, `replayed` the memos invalidated by an earlier commit and
/// recomputed serially; attempted - committed - replayed were mispredicted
/// (never requested by the serial order) and silently discarded. The
/// counters are deterministic for a fixed (threads > 1, batch) because
/// snapshot selection and validation both run serially; they change with
/// the knobs, so goldens pin outputs, never these.
struct SpecStats {
  std::size_t attempted = 0;
  std::size_t committed = 0;
  std::size_t replayed = 0;

  SpecStats& operator+=(const SpecStats& o) {
    attempted += o.attempted;
    committed += o.committed;
    replayed += o.replayed;
    return *this;
  }
};

/// Fan one speculative batch out: eval(i, worker) for i in [0, k), one
/// item per chunk so distinct candidates never serialize behind each
/// other. eval must only read snapshot state and write slot i (plus
/// worker-local scratch) — the parallel_for contract makes the worker id
/// scratch-only. threads <= 1 degenerates to the serial loop (callers gate
/// speculation off before paying for a snapshot in that case).
template <typename Eval>
void speculate(std::size_t k, int threads, Eval&& eval) {
  parallel_for(k, /*grain=*/1, threads,
               [&](std::size_t begin, std::size_t end, int worker) {
                 for (std::size_t i = begin; i < end; ++i) eval(i, worker);
               });
}

/// Read-set recorder for snapshot validation: (key, version) pairs taken
/// while the snapshot is frozen, checked against the live version counters
/// at commit time. Keys are caller-defined (a region index, a net index —
/// disambiguated by which ReadSet they live in). Duplicate keys record
/// once: versions cannot move during the evaluation phase, so the first
/// observation is THE snapshot version.
class ReadSet {
 public:
  void record(std::uint64_t key, std::uint32_t version) {
    for (const auto& kv : reads_) {
      if (kv.first == key) return;
    }
    reads_.emplace_back(key, version);
  }

  /// True iff every recorded input is still at its snapshot version —
  /// i.e. no commit since the snapshot touched anything this speculation
  /// read, so its result is bit-identical to a serial recompute.
  template <typename VersionOf>
  bool valid(VersionOf&& version_of) const {
    for (const auto& [key, version] : reads_) {
      if (version_of(key) != version) return false;
    }
    return true;
  }

  const std::vector<std::pair<std::uint64_t, std::uint32_t>>& entries() const {
    return reads_;
  }
  void clear() { reads_.clear(); }

 private:
  std::vector<std::pair<std::uint64_t, std::uint32_t>> reads_;
};

/// Deterministic controller for the speculative batch width, driven purely
/// by the per-round SpecStats deltas: grow (double) while the commit rate
/// stays high — deep batches are paying off — and shrink (halve) on a
/// replay storm, where earlier commits keep invalidating later memos and
/// most of the fan-out is wasted. Mispredictions depress the commit rate
/// without counting as replays, so a loop whose snapshot selection guesses
/// poorly simply stops growing rather than oscillating.
///
/// Determinism: the inputs (round deltas) are themselves deterministic for
/// a fixed thread count, and the update rule reads nothing else — so the
/// width trajectory, and with it every snapshot boundary, is reproducible
/// run to run. Selected by `speculate_batch = 0` at both call sites
/// (router/id_router.h, core/session.h); fixed widths >= 2 bypass the
/// controller entirely, and the defaults keep it off so goldens and the
/// existing determinism matrix are unchanged.
struct AdaptiveBatchOptions {
  int initial = 8;
  int min_batch = 2;
  int max_batch = 64;
  /// Grow when committed/attempted >= this...
  double grow_commit_rate = 0.60;
  /// ...shrink when replayed/attempted >= this; shrink wins when both hold.
  double shrink_replay_rate = 0.50;
};

class AdaptiveBatch {
 public:
  explicit AdaptiveBatch(AdaptiveBatchOptions options = {})
      : options_(options), width_(options.initial) {}

  /// The batch width the next speculative round should snapshot.
  int width() const { return width_; }
  int max_width() const { return options_.max_batch; }

  /// Folds one round's counter deltas into the width. Rounds that fanned
  /// nothing out (all candidates were satisfied without evaluation) carry
  /// no signal and leave the width unchanged.
  void update(const SpecStats& round) {
    if (round.attempted == 0) return;
    const double attempted = static_cast<double>(round.attempted);
    if (static_cast<double>(round.replayed) / attempted >=
        options_.shrink_replay_rate) {
      width_ = std::max(options_.min_batch, width_ / 2);
    } else if (static_cast<double>(round.committed) / attempted >=
               options_.grow_commit_rate) {
      width_ = std::min(options_.max_batch, width_ * 2);
    }
  }

 private:
  AdaptiveBatchOptions options_;
  int width_;
};

}  // namespace rlcr::parallel
