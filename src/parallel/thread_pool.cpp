#include "parallel/thread_pool.h"

#include <algorithm>
#include <cstdlib>

#include "obs/trace.h"

namespace rlcr::parallel {

namespace {

thread_local bool tl_on_pool_worker = false;
thread_local bool tl_inside_run = false;

int env_threads() {
  // Read once: the override is a process-level pin (CI's TSan job), not a
  // per-call knob, and getenv is not guaranteed thread-safe against setenv.
  static const int cached = [] {
    const char* s = std::getenv("RLCR_THREADS");
    if (!s) return 0;
    const long v = std::strtol(s, nullptr, 10);
    if (v <= 0) return 0;  // unset/garbage: fall back to hardware
    // Clamp oversized pins the same way explicit requests clamp, instead of
    // silently ignoring them.
    return static_cast<int>(std::min<long>(v, ThreadPool::kMaxHelpers));
  }();
  return cached;
}

}  // namespace

int hardware_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

int resolve_threads(int requested) {
  if (requested > 0) return std::min(requested, ThreadPool::kMaxHelpers + 1);
  const int env = env_threads();
  return env > 0 ? env : hardware_threads();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

bool ThreadPool::on_worker_thread() { return tl_on_pool_worker; }

int ThreadPool::spawned() const {
  std::lock_guard lock(mu_);
  return static_cast<int>(threads_.size());
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::worker_main() {
  tl_on_pool_worker = true;
  std::uint64_t seen = 0;
  std::unique_lock lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || (job_ != seen && slots_ > 0); });
    if (stop_) return;
    seen = job_;
    const int worker = slots_--;  // ids helpers..1; 0 is the caller
    ++running_;
    const std::function<void(int)>* task = task_;
    lock.unlock();
    {
      RLCR_TRACE_SPAN(sp, "pool.task", "pool");
      sp.arg("worker", worker);
      (*task)(worker);
    }
    lock.lock();
    --running_;
    if (running_ == 0 && slots_ == 0) done_cv_.notify_one();
  }
}

void ThreadPool::run(int helpers, const std::function<void(int)>& task) {
  // Nested calls — from a pool worker, or from a caller thread that is
  // already participating in a run() (its task(0) share re-entered the
  // runtime) — execute inline: serial degradation instead of deadlocking
  // on run_mu_ or corrupting the in-flight job's accounting.
  if (helpers <= 0 || tl_on_pool_worker || tl_inside_run) {
    task(0);
    return;
  }
  struct RunFlag {
    RunFlag() { tl_inside_run = true; }
    ~RunFlag() { tl_inside_run = false; }
  } run_flag;
  std::lock_guard run_lock(run_mu_);
  helpers = std::min(helpers, kMaxHelpers);
  {
    std::lock_guard lock(mu_);
    while (static_cast<int>(threads_.size()) < helpers) {
      threads_.emplace_back([this] { worker_main(); });
    }
    task_ = &task;
    slots_ = helpers;
    ++job_;
  }
  work_cv_.notify_all();
  // The caller participates as worker 0. If its share throws (only possible
  // when run() is called directly with a throwing task), drain the helpers
  // before rethrowing so `task` stays alive while they use it.
  std::exception_ptr caller_error;
  try {
    RLCR_TRACE_SPAN(sp, "pool.task", "pool");
    sp.arg("worker", 0);
    task(0);
  } catch (...) {
    caller_error = std::current_exception();
  }
  {
    std::unique_lock lock(mu_);
    done_cv_.wait(lock, [&] { return slots_ == 0 && running_ == 0; });
    task_ = nullptr;
  }
  if (caller_error) std::rethrow_exception(caller_error);
}

}  // namespace rlcr::parallel
