// Deterministic parallel runtime: a lazily-started, lazily-grown thread
// pool shared by every phase of the flow (Phase I net build, Phase II
// per-region SINO, LSK table construction).
//
// The pool itself knows nothing about determinism — that contract lives in
// the chunked algorithms of parallel_for.h, which partition work into chunks
// whose boundaries depend only on the problem size and a fixed grain, and
// combine per-chunk results in chunk-index order. The pool's only jobs are
// (a) to keep worker threads warm across calls instead of spawning per call
// site, and (b) to hand each participant a stable worker id in
// [0, participants) so callers can maintain per-worker scratch.
//
// Worker assignment of chunks IS scheduling-dependent (workers pull chunk
// indices from a shared counter), so callers must never let outputs depend
// on the worker id — only scratch reuse may.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rlcr::parallel {

/// Hardware concurrency, clamped to at least 1.
int hardware_threads();

/// Worker count for a `threads` option value: a positive request is taken
/// verbatim; zero (the "auto" default everywhere in the library) resolves to
/// the RLCR_THREADS environment variable when set to a positive integer
/// (this is how CI pins the ThreadSanitizer job at 8), otherwise to
/// hardware_threads(). Never returns less than 1.
int resolve_threads(int requested);

/// Fixed-size pool of helper threads, started on first use and grown on
/// demand up to the largest participant count ever requested (capped). One
/// process-wide instance (global()) serves every call site; standalone
/// instances exist for lifecycle tests.
class ThreadPool {
 public:
  /// Hard cap on helper threads a pool will ever spawn.
  static constexpr int kMaxHelpers = 256;

  ThreadPool() = default;
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The process-wide pool, started on first call.
  static ThreadPool& global();

  /// True when the calling thread is a pool worker. The chunked algorithms
  /// use this to run nested parallelism serially instead of deadlocking on
  /// the pool they are already occupying.
  static bool on_worker_thread();

  /// Helper threads currently spawned.
  int spawned() const;

  /// Run task(worker) on `helpers` pool threads (worker ids 1..helpers) and
  /// on the calling thread (worker id 0); returns once every participant
  /// has finished. Missing helpers are spawned first. `task` must not throw
  /// (the parallel_for.h wrappers capture exceptions per chunk); a throw
  /// from the caller-side invocation is rethrown after the helpers drain.
  /// Serializes concurrent top-level calls; calls from a pool worker run
  /// task(0) inline.
  void run(int helpers, const std::function<void(int)>& task);

 private:
  void worker_main();

  mutable std::mutex mu_;
  std::mutex run_mu_;  // serializes top-level run() calls
  std::condition_variable work_cv_, done_cv_;
  std::vector<std::thread> threads_;
  const std::function<void(int)>* task_ = nullptr;
  std::uint64_t job_ = 0;   // bumped per run(); workers latch the last seen
  int slots_ = 0;           // helper slots not yet claimed for current job
  int running_ = 0;         // helpers currently inside the task
  bool stop_ = false;
};

}  // namespace rlcr::parallel
