#include "router/id_router.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <memory>
#include <optional>

#include "grid/tiled.h"
#include "obs/trace.h"
#include "parallel/parallel_for.h"
#include "parallel/speculate.h"
#include "rsmt/steiner.h"
#include "steiner/tree_cache.h"
#include "util/indexed_heap.h"
#include "util/stopwatch.h"

namespace rlcr::router {

namespace {

constexpr std::uint8_t kActive = 0;
constexpr std::uint8_t kDeleted = 1;
constexpr std::uint8_t kLocked = 2;

// Bits of EdgeHot::meta beyond the 2-bit state.
constexpr std::uint8_t kStateMask = 0x3;
constexpr std::uint8_t kCertifiedBit = 0x4;  ///< never-deletable certificate
constexpr std::uint8_t kOnCertBit = 0x8;     ///< on the positive cert paths

/// How many deletable() BFS runs a net absorbs before its no-BFS
/// certificates (frozen flag, bridge pass, pin paths) are refreshed. Purely
/// a work-scheduling knob: certificates are sound, so the refresh cadence
/// cannot change routing output, only how many BFS calls are skipped.
constexpr int kCertifyInterval = 4;

/// Everything the deletion loop's hot paths need about a candidate edge,
/// packed into one 16-byte record (one cache line covers four edges):
/// endpoint region ids, the static f(WL) term, direction, and the
/// state/certificate bits. The per-net LocalEdge keeps graph topology only.
struct EdgeHot {
  // No default member init: records live in a bulk-allocated arena whose
  // every field is assigned during build, so zeroing it first is waste.
  std::int32_t ru, rv;  // endpoint region indices
  float fwl;            // static wire-length term of Eq. (2)
  std::uint8_t dir;     // grid::Dir as index
  std::uint8_t meta;    // state | certificate bits
};
static_assert(sizeof(EdgeHot) == 16);

struct LocalEdge {
  std::int32_t u, v;  // local vertex ids (arena-allocated, assigned in build)
  std::uint8_t state;
};

/// Per-net working graph over the pin bounding box.
/// Per-net arrays live as slices of three shared arenas (one allocation
/// each for the whole net list instead of a dozen per net); NetWork holds
/// raw pointers into them plus the counts.
struct NetWork {
  geom::Rect bbox;
  std::int32_t w = 0, h = 0;  // bbox dimensions in regions
  LocalEdge* edges = nullptr;
  std::size_t edge_count = 0;
  std::size_t gid_base = 0;  ///< global id of edges[0]
  // CSR adjacency: vertex -> [edge ids].
  std::int32_t* adj_offset = nullptr;  // vcount + 1
  std::int32_t* adj_edges = nullptr;   // 2 * edge_count
  // Active incident-edge count per vertex per direction.
  std::array<std::uint16_t, 2>* incident = nullptr;
  std::vector<std::int32_t> pin_locals;
  std::vector<std::int32_t> pin_limits;  ///< BFS distance cap per pin (guard)
  std::int32_t* pin_index = nullptr;  ///< vertex -> pin ordinal or -1
  std::int32_t max_pin_limit = 0;
  std::int32_t src_local = 0;
  double si = 0.0;
  double rsmt_len = 1.0;  ///< RSMT length estimate (>= 1 region unit)
  bool prerouted = false;
  bool trivial = false;  ///< < 2 pins or single-region bbox: nothing to route
  /// Pre-routed nets: deduplicated (region * 2 + dir) presence keys in
  /// first-touch order, recorded by the parallel build and replayed into the
  /// shared RegionStats by the ordered combiner.
  std::vector<std::uint64_t> present_keys;
  int bfs_since_certify = 0;
  int locks_since_tarjan = 1;  ///< run the first bridge pass unconditionally
  /// Positive certificate: local edge ids forming one certified
  /// source->pin path family, every pin within its detour limit. An edge
  /// off these paths is deletable without BFS — the paths survive its
  /// removal and keep certifying every pin. Edges change state only when
  /// popped, so the certificate stays valid until a pop touches it.
  std::vector<std::int32_t> cert_edges;
  std::vector<GridEdge> fixed_edges;  // for pre-routed nets
  /// Region index per bbox vertex (avoids div/mod on the hot paths).
  std::int32_t* region_idx = nullptr;

  // Expected-usage demand model: the net's final route will cross about
  // `est_regions[d]` regions in direction d; while `active_regions[d]`
  // regions still hold candidate edges, each carries fractional demand
  // weight[d] = min(1, est/active). The weights converge to binary
  // presence as deletion thins the graph, so region densities stay
  // realistic throughout instead of counting whole bounding boxes.
  double est_regions[2] = {0.0, 0.0};
  std::int32_t active_regions[2] = {0, 0};
  double weight_applied[2] = {0.0, 0.0};
  // Maintained per-direction lists of vertices with active incident edges,
  // so a rebalance touches exactly the active set instead of rescanning the
  // whole bounding box. active_pos[d][v] = index in active_vertices[d].
  std::int32_t* active_vertices[2] = {nullptr, nullptr};
  std::int32_t* active_pos[2] = {nullptr, nullptr};
  std::int32_t active_count[2] = {0, 0};

  std::int32_t local(geom::Point p) const {
    return (p.y - bbox.lo.y) * w + (p.x - bbox.lo.x);
  }
  geom::Point global(std::int32_t v) const {
    return geom::Point{bbox.lo.x + v % w, bbox.lo.y + v / w};
  }
  std::size_t vertex_count() const {
    return static_cast<std::size_t>(w) * static_cast<std::size_t>(h);
  }
  double target_weight(int d) const {
    if (active_regions[d] <= 0) return 0.0;
    return std::min(1.0, est_regions[d] / active_regions[d]);
  }
  void drop_active_vertex(int d, std::int32_t v) {
    std::int32_t* list = active_vertices[d];
    std::int32_t* pos = active_pos[d];
    const std::int32_t at = pos[static_cast<std::size_t>(v)];
    const std::int32_t last = list[static_cast<std::size_t>(active_count[d] - 1)];
    list[static_cast<std::size_t>(at)] = last;
    pos[static_cast<std::size_t>(last)] = at;
    --active_count[d];
    pos[static_cast<std::size_t>(v)] = -1;
  }
};

/// Reusable BFS / cert-path-walk scratch for deletability checks. The
/// serial loop owns one; with speculation on, each pool worker owns its
/// own (worker-local), so concurrent speculative BFS runs share nothing
/// but read-only graph state.
struct BfsScratch {
  std::vector<std::uint32_t> stamp;  ///< per-vertex visit stamp
  std::vector<std::int32_t> dist;    ///< BFS depth per vertex
  std::vector<std::int32_t> parent;  ///< BFS parent edge per vertex
  std::uint32_t epoch = 0;
  std::vector<std::int32_t> queue;
  std::vector<std::uint32_t> edge_mark;  ///< per-edge stamp (cert-path walk)
  std::uint32_t mark_epoch = 0;

  void init(std::size_t vertices, std::size_t edges) {
    stamp.assign(vertices, 0);
    dist.assign(vertices, 0);
    parent.assign(vertices, -1);
    queue.reserve(vertices);
    edge_mark.assign(edges, 0);
  }
};

/// Shared per-(region, direction) presence statistics (fractional under the
/// expected-usage model). The three accumulators of one region live in one
/// record so an update touches a single cache line.
struct RegionStat {
  double nns = 0.0, sum_si = 0.0, sum_si2 = 0.0;
};

/// Backed by first-touch tiles (grid/tiled.h) so an ISPD98-size grid pays
/// for the regions nets actually touch, not the whole fabric; storage mode
/// never changes the arithmetic, so routing output is identical in both.
struct RegionStats {
  grid::TiledVec<RegionStat> s[2];

  RegionStats(std::size_t regions, grid::RegionStorage storage) {
    for (int d = 0; d < 2; ++d) s[d].reset(regions, storage);
  }
  void add(std::size_t region, int d, double w, double si) {
    RegionStat& r = s[d].ref(region);
    r.nns += w;
    r.sum_si += w * si;
    r.sum_si2 += w * si * si;
  }
};

/// Monotone walk between two region points, L- or Z-shaped. The
/// leading-leg axis is chosen by a deterministic hash of the endpoints so
/// that pre-routed nets spread over both elbow choices instead of piling
/// onto shared x-first corridors. An L walks the leading leg to the end;
/// a Z breaks it at the midpoint, so a huge net's demand spreads over two
/// parallel corridors. Both are monotone — identical wire length.
void emit_preroute_shape(geom::Point p, geom::Point q, PrerouteShape shape,
                         std::vector<GridEdge>& out) {
  const std::uint64_t h =
      std::hash<geom::Point>{}(p) * 31 + std::hash<geom::Point>{}(q);
  const bool x_first = (h & 1) == 0;
  const bool z = shape == PrerouteShape::kZ;
  geom::Point cur = p;
  auto walk_x_to = [&](std::int32_t tx) {
    const std::int32_t step_x = (tx > cur.x) ? 1 : -1;
    while (cur.x != tx) {
      const geom::Point next{cur.x + step_x, cur.y};
      out.push_back(make_edge(cur, next));
      cur = next;
    }
  };
  auto walk_y_to = [&](std::int32_t ty) {
    const std::int32_t step_y = (ty > cur.y) ? 1 : -1;
    while (cur.y != ty) {
      const geom::Point next{cur.x, cur.y + step_y};
      out.push_back(make_edge(cur, next));
      cur = next;
    }
  };
  if (x_first) {
    walk_x_to(z ? (p.x + q.x) / 2 : q.x);
    walk_y_to(q.y);
    walk_x_to(q.x);
  } else {
    walk_y_to(z ? (p.y + q.y) / 2 : q.y);
    walk_x_to(q.x);
    walk_y_to(q.y);
  }
}

}  // namespace

IdRouter::IdRouter(const grid::RegionGrid& grid, const sino::NssModel& nss,
                   const IdRouterOptions& options)
    : grid_(&grid), nss_(&nss), options_(options) {}

RoutingResult IdRouter::route(const std::vector<RouterNet>& nets) const {
  util::Stopwatch watch;
  RoutingResult result;
  result.routes.resize(nets.size());

  const std::size_t region_count = grid_->region_count();
  const grid::RegionStorage storage = grid::default_region_storage();
  RegionStats stats(region_count, storage);
  const int threads = parallel::resolve_threads(options_.threads);

  // route() is one long function whose phases run back-to-back, so the
  // phase spans share one re-emplaced slot instead of nested scopes
  // (emplace ends the previous phase, then starts the next).
  std::optional<obs::ScopedSpan> phase_span;
  phase_span.emplace("router.build", "router");
  phase_span->arg("nets", static_cast<double>(nets.size()));

  // One tree builder + content-addressed cache per route() call: the
  // huge-net pre-route topologies and the pooled f(WL) normalization
  // lengths both draw from it, so an identical pin configuration builds
  // exactly once no matter how many nets share it, which call site asks,
  // or which worker asks first (the builder is a pure function of pin
  // content, so lookup races cannot change values). Tree construction
  // itself fans out with the chunked build pass below; its shared-stats
  // consequences commit in net order via the ordered reducer.
  steiner::TreeCache tree_cache;
  const steiner::TreeBuilder tree_builder(steiner::TreeBuilderOptions{},
                                          &tree_cache);
  const auto net_profile = [&](std::int32_t net_id) {
    const auto& ov = options_.tree_profile_overrides;
    const auto it = std::lower_bound(
        ov.begin(), ov.end(), net_id,
        [](const std::pair<std::int32_t, std::uint8_t>& e, std::int32_t id) {
          return e.first < id;
        });
    if (it != ov.end() && it->first == net_id) {
      return static_cast<steiner::TreeProfile>(
          std::min<std::uint8_t>(it->second, steiner::kTreeProfileCount - 1));
    }
    return options_.tree_profile;
  };

  // ---------------------------------------------------------------- build
  //
  // The per-net work — graph construction, CSR adjacency, f(WL) tables,
  // EdgeHot records — is independent across nets and runs as chunked jobs
  // on the shared pool (src/parallel). Everything order-sensitive stays off
  // the workers: pass A classifies and sizes nets serially, the arenas are
  // carved serially, and the shared RegionStats accumulation is replayed by
  // the ordered_reduce combiner in net order — so the per-region
  // floating-point sums (and hence every weight, deletion, and route) are
  // bit-identical at any thread count, including the serial path at 1.
  //
  // Pass A: bounding boxes and pre-route decisions, so the per-net array
  // sizes are known and the arenas can be carved in one allocation each.
  std::vector<NetWork> works(nets.size());
  std::size_t sum_v = 0, sum_e = 0;
  for (std::size_t n = 0; n < nets.size(); ++n) {
    const RouterNet& net = nets[n];
    NetWork& wk = works[n];
    wk.si = net.si;
    result.routes[n].net_id = net.id;
    for (const geom::Point& p : net.pins) wk.bbox.expand(p);
    if (net.pins.size() < 2 || wk.bbox.cell_count() <= 1) {
      wk.prerouted = true;
      wk.trivial = true;  // nothing to route
      continue;
    }
    // Topology-degradation visibility: this net's base 1-Steiner
    // construction will silently degrade to plain RMST. Counted here in the
    // serial sizing pass (from the raw pin count, mirroring the
    // rsmt::rsmt fallback predicate) so the value never depends on tree
    // cache hits, thread count, or build order.
    if (net.pins.size() > tree_builder.options().steiner.max_pins_exact) {
      ++result.stats.rsmt_fallback_nets;
    }
    if (static_cast<std::size_t>(wk.bbox.cell_count()) >
        options_.huge_net_bbox_threshold) {
      wk.prerouted = true;  // pre-routed on its RSMT below
      continue;
    }
    wk.w = static_cast<std::int32_t>(wk.bbox.width());
    wk.h = static_cast<std::int32_t>(wk.bbox.height());
    sum_v += wk.vertex_count();
    wk.edge_count = static_cast<std::size_t>(
        2 * wk.w * wk.h - wk.w - wk.h);  // grid graph over the bbox
    sum_e += wk.edge_count;
  }

  // Global candidate-edge ids: net-major, so ascending id matches the
  // historical (net, edge) tie-break of the lazy heap.
  std::vector<std::size_t> edge_base(works.size() + 1, 0);
  for (std::size_t n = 0; n < works.size(); ++n) {
    edge_base[n + 1] = edge_base[n] + works[n].edge_count;
  }
  const std::size_t total_edges = edge_base.back();

  // Arenas: int32 slots per net = (V+1) adj_offset + 2E adj_edges +
  // V pin_index + V region_idx + 2V active_pos + 2V active_vertices.
  // new T[] (not vectors): default-init leaves the trivially-typed arenas
  // uninitialized, and every slice is written before it is read. Carving is
  // serial (cursor order = net order); filling is the workers' job, and the
  // slices are disjoint so they share nothing but cache lines.
  const std::unique_ptr<LocalEdge[]> edge_arena(new LocalEdge[sum_e]);
  const std::unique_ptr<std::array<std::uint16_t, 2>[]> incident_arena(
      new std::array<std::uint16_t, 2>[sum_v]);
  const std::unique_ptr<std::int32_t[]> i32_arena(
      new std::int32_t[7 * sum_v + works.size() + 2 * sum_e]);
  const std::unique_ptr<EdgeHot[]> ehot(new EdgeHot[total_edges]);
  const std::unique_ptr<std::int32_t[]> gid_net(new std::int32_t[total_edges]);
  {
    std::size_t edge_cursor = 0, incident_cursor = 0, i32_cursor = 0;
    for (std::size_t n = 0; n < works.size(); ++n) {
      NetWork& wk = works[n];
      wk.gid_base = edge_base[n];
      if (wk.prerouted) continue;
      const std::size_t vcount = wk.vertex_count();
      wk.edges = edge_arena.get() + edge_cursor;
      edge_cursor += wk.edge_count;
      wk.incident = incident_arena.get() + incident_cursor;
      incident_cursor += vcount;
      auto carve = [&](std::size_t count) {
        std::int32_t* p = i32_arena.get() + i32_cursor;
        i32_cursor += count;
        return p;
      };
      wk.adj_offset = carve(vcount + 1);
      wk.adj_edges = carve(2 * wk.edge_count);
      wk.pin_index = carve(vcount);
      wk.region_idx = carve(vcount);
      wk.active_pos[0] = carve(vcount);
      wk.active_pos[1] = carve(vcount);
      wk.active_vertices[0] = carve(vcount);
      wk.active_vertices[1] = carve(vcount);
    }
  }

  // Per-worker build scratch: CSR cursors, f(WL) distance tables, and the
  // pre-route path's epoch-stamped dedup arrays (the stamped-commit pattern
  // of maze.cpp, replacing the historical per-net hash sets). Indexed by
  // the worker id, which is scratch-only: nothing written to shared state
  // may depend on it.
  const std::size_t h_edge_slots =
      static_cast<std::size_t>(grid_->rows()) *
      static_cast<std::size_t>(std::max(0, grid_->cols() - 1));
  const std::size_t edge_slots =
      h_edge_slots + static_cast<std::size_t>(grid_->cols()) *
                         static_cast<std::size_t>(std::max(0, grid_->rows() - 1));
  auto edge_slot = [&](const GridEdge& e) {
    return e.dir() == grid::Dir::kHorizontal
               ? static_cast<std::size_t>(e.a.y) *
                         static_cast<std::size_t>(grid_->cols() - 1) +
                     static_cast<std::size_t>(e.a.x)
               : h_edge_slots +
                     static_cast<std::size_t>(e.a.y) *
                         static_cast<std::size_t>(grid_->cols()) +
                     static_cast<std::size_t>(e.a.x);
  };
  struct BuildScratch {
    std::vector<std::int32_t> csr_cursor;
    std::vector<std::int64_t> dist_src, dist_sink;
    std::vector<GridEdge> l_shape;
    std::vector<std::uint32_t> edge_stamp;     // global-grid edge slots
    std::vector<std::uint32_t> present_stamp;  // region * 2 + dir
    std::uint32_t edge_epoch = 0, present_epoch = 0;
  };
  std::vector<BuildScratch> build_scratch(static_cast<std::size_t>(threads));

  // Pre-route on the RSMT topology with L-shapes; fixed demand. Dedup of
  // both the emitted edges and the (region, dir) presence set uses the
  // worker's epoch-stamped arrays — first-touch order, exactly the
  // insertion order the historical unordered_sets saw.
  auto build_prerouted = [&](const RouterNet& net, NetWork& wk,
                             BuildScratch& sc) {
    if (sc.edge_stamp.empty()) {
      sc.edge_stamp.assign(edge_slots, 0);
      sc.present_stamp.assign(region_count * 2, 0);
    }
    const std::shared_ptr<const rsmt::Tree> tree_ptr =
        tree_builder.build(net.pins, net_profile(net.id));
    const rsmt::Tree& tree = *tree_ptr;
    ++sc.edge_epoch;
    for (const auto& [a, b] : tree.edges) {
      sc.l_shape.clear();
      emit_preroute_shape(tree.nodes[static_cast<std::size_t>(a)],
                          tree.nodes[static_cast<std::size_t>(b)],
                          options_.preroute_shape, sc.l_shape);
      for (const GridEdge& e : sc.l_shape) {
        const std::size_t slot = edge_slot(e);
        if (sc.edge_stamp[slot] != sc.edge_epoch) {
          sc.edge_stamp[slot] = sc.edge_epoch;
          wk.fixed_edges.push_back(e);
        }
      }
    }
    // Fixed (binary) presence: each endpoint region of each edge, recorded
    // for the ordered stats replay.
    ++sc.present_epoch;
    for (const GridEdge& e : wk.fixed_edges) {
      const int d = static_cast<int>(e.dir());
      for (const geom::Point p : {e.a, e.b}) {
        const std::uint64_t key =
            grid_->index(p) * 2 + static_cast<unsigned>(d);
        if (sc.present_stamp[key] != sc.present_epoch) {
          sc.present_stamp[key] = sc.present_epoch;
          wk.present_keys.push_back(key);
        }
      }
    }
  };

  // Full connection graph over the bounding box, filled into the net's
  // pre-carved arena slices, plus the f(WL) tables and EdgeHot records.
  auto build_pooled = [&](const RouterNet& net, NetWork& wk, std::size_t n,
                          BuildScratch& sc) {
    const auto vcount = wk.vertex_count();
    std::fill_n(wk.incident, vcount, std::array<std::uint16_t, 2>{0, 0});
    {
      // Row-major incremental fill: region ids advance by 1 per column and
      // by the grid stride per row — no div/mod per vertex.
      const std::int32_t stride = grid_->cols();
      std::int32_t row_base = static_cast<std::int32_t>(
          grid_->index(geom::Point{wk.bbox.lo.x, wk.bbox.lo.y}));
      std::size_t v = 0;
      for (std::int32_t y = 0; y < wk.h; ++y, row_base += stride) {
        for (std::int32_t x = 0; x < wk.w; ++x) {
          wk.region_idx[v++] = row_base + x;
        }
      }
    }
    {
      std::size_t ec = 0;
      for (std::int32_t y = 0; y < wk.h; ++y) {
        for (std::int32_t x = 0; x < wk.w; ++x) {
          const std::int32_t v = y * wk.w + x;
          if (x + 1 < wk.w) wk.edges[ec++] = LocalEdge{v, v + 1, kActive};
          if (y + 1 < wk.h) wk.edges[ec++] = LocalEdge{v, v + wk.w, kActive};
        }
      }
    }

    // CSR adjacency.
    std::fill_n(wk.adj_offset, vcount + 1, 0);
    for (std::size_t ei = 0; ei < wk.edge_count; ++ei) {
      const LocalEdge& e = wk.edges[ei];
      ++wk.adj_offset[static_cast<std::size_t>(e.u) + 1];
      ++wk.adj_offset[static_cast<std::size_t>(e.v) + 1];
    }
    for (std::size_t i = 1; i <= vcount; ++i) {
      wk.adj_offset[i] += wk.adj_offset[i - 1];
    }
    {
      sc.csr_cursor.assign(wk.adj_offset, wk.adj_offset + vcount);
      for (std::size_t ei = 0; ei < wk.edge_count; ++ei) {
        const LocalEdge& e = wk.edges[ei];
        wk.adj_edges[static_cast<std::size_t>(
            sc.csr_cursor[static_cast<std::size_t>(e.u)]++)] =
            static_cast<std::int32_t>(ei);
        wk.adj_edges[static_cast<std::size_t>(
            sc.csr_cursor[static_cast<std::size_t>(e.v)]++)] =
            static_cast<std::int32_t>(ei);
      }
    }

    // Pins (deduplicated local ids), their detour-guard limits, and the
    // vertex -> pin ordinal map the bounded BFS certifies against.
    {
      wk.pin_locals.reserve(net.pins.size());
      for (const geom::Point& p : net.pins) wk.pin_locals.push_back(wk.local(p));
      std::sort(wk.pin_locals.begin(), wk.pin_locals.end());
      wk.pin_locals.erase(
          std::unique(wk.pin_locals.begin(), wk.pin_locals.end()),
          wk.pin_locals.end());
      wk.src_local = wk.local(net.pins.front());
      wk.pin_limits.reserve(wk.pin_locals.size());
      std::fill_n(wk.pin_index, vcount, -1);
      for (std::size_t p = 0; p < wk.pin_locals.size(); ++p) {
        const std::int32_t pl = wk.pin_locals[p];
        const auto dist = geom::manhattan(wk.global(pl), net.pins.front());
        wk.pin_limits.push_back(static_cast<std::int32_t>(std::ceil(
                                    options_.max_detour_factor *
                                    static_cast<double>(dist))) +
                                options_.detour_slack);
        wk.pin_index[static_cast<std::size_t>(pl)] =
            static_cast<std::int32_t>(p);
        wk.max_pin_limit = std::max(wk.max_pin_limit, wk.pin_limits.back());
      }
    }

    // Incident counts, expected-usage estimates, and initial presence.
    // A horizontal edge connects u and u+1; with w == 1 no horizontal
    // edges exist and u+1 aliases the vertical stride.
    for (std::size_t ei = 0; ei < wk.edge_count; ++ei) {
      const LocalEdge& e = wk.edges[ei];
      const int d = (e.v == e.u + 1 && wk.w > 1)
                        ? static_cast<int>(grid::Dir::kHorizontal)
                        : static_cast<int>(grid::Dir::kVertical);
      ++wk.incident[static_cast<std::size_t>(e.u)][d];
      ++wk.incident[static_cast<std::size_t>(e.v)][d];
    }
    // The final tree crosses roughly rsmt_len boundaries, split between
    // directions in proportion to the bbox aspect; +1 converts crossings
    // to touched regions.
    wk.rsmt_len = static_cast<double>(std::max<std::int64_t>(
        1, tree_builder.length(net.pins, net_profile(net.id))));
    {
      const double wx = std::max(1, wk.w - 1);
      const double wy = std::max(1, wk.h - 1);
      wk.est_regions[0] = wk.rsmt_len * (wx / (wx + wy)) + 1.0;
      wk.est_regions[1] = wk.rsmt_len * (wy / (wx + wy)) + 1.0;
    }
    for (int d = 0; d < 2; ++d) {
      std::fill_n(wk.active_pos[d], vcount, -1);
      for (std::size_t v = 0; v < vcount; ++v) {
        if (wk.incident[v][static_cast<std::size_t>(d)] > 0) {
          wk.active_pos[d][v] = wk.active_count[d];
          wk.active_vertices[d][static_cast<std::size_t>(wk.active_count[d]++)] =
              static_cast<std::int32_t>(v);
          ++wk.active_regions[d];
        }
      }
      // The stats.add replay for this weight happens in the ordered
      // combiner, never here on the worker.
      wk.weight_applied[d] = wk.target_weight(d);
    }

    // Static f(WL) per edge: shortest source->sink path forced through it,
    // normalized by the RSMT length estimate (>= 1 region unit). Source and
    // nearest-sink distances are precomputed per vertex, so the edge loop
    // is table lookups instead of O(pins) Manhattan scans. The heap key is
    // NOT computed here — it needs the density caches, which exist only
    // after every net's stats are combined.
    const geom::Point src = net.pins.front();
    sc.dist_src.resize(vcount);
    sc.dist_sink.resize(vcount);
    for (std::size_t v = 0; v < vcount; ++v) {
      const geom::Point p = wk.global(static_cast<std::int32_t>(v));
      sc.dist_src[v] = geom::manhattan(src, p);
      std::int64_t best = std::numeric_limits<std::int64_t>::max();
      for (std::size_t i = 1; i < net.pins.size(); ++i) {
        best = std::min(best, geom::manhattan(p, net.pins[i]));
      }
      sc.dist_sink[v] = best;
    }
    for (std::size_t ei = 0; ei < wk.edge_count; ++ei) {
      const LocalEdge& e = wk.edges[ei];
      const std::size_t gid = wk.gid_base + ei;
      EdgeHot& h = ehot[gid];
      const geom::Point pu = wk.global(e.u);
      const geom::Point pv = wk.global(e.v);
      const std::int64_t through_uv =
          sc.dist_src[static_cast<std::size_t>(e.u)] + 1 +
          sc.dist_sink[static_cast<std::size_t>(e.v)];
      const std::int64_t through_vu =
          sc.dist_src[static_cast<std::size_t>(e.v)] + 1 +
          sc.dist_sink[static_cast<std::size_t>(e.u)];
      h.fwl = static_cast<float>(
          static_cast<double>(std::min(through_uv, through_vu)) / wk.rsmt_len);
      h.dir = static_cast<std::uint8_t>(pu.y == pv.y ? grid::Dir::kHorizontal
                                                     : grid::Dir::kVertical);
      h.ru = wk.region_idx[static_cast<std::size_t>(e.u)];
      h.rv = wk.region_idx[static_cast<std::size_t>(e.v)];
      h.meta = kActive;
      gid_net[gid] = static_cast<std::int32_t>(n);
    }
  };

  // Pass B: chunked parallel build; the combiner replays each chunk's
  // shared-stats contributions in net order (ordered deterministic reduce).
  struct BuildPartial {
    std::size_t edges_initial = 0;
    std::size_t prerouted_nets = 0;
  };
  constexpr std::size_t kBuildGrain = 16;  // nets per chunk — a function of
                                           // nothing but this constant, so
                                           // chunking is thread-count-free
  parallel::ordered_reduce<BuildPartial>(
      nets.size(), kBuildGrain, threads,
      [&](std::size_t begin, std::size_t end, int worker) {
        BuildScratch& sc = build_scratch[static_cast<std::size_t>(worker)];
        BuildPartial part;
        for (std::size_t n = begin; n < end; ++n) {
          NetWork& wk = works[n];
          if (wk.trivial) continue;
          if (wk.prerouted) {
            ++part.prerouted_nets;
            build_prerouted(nets[n], wk, sc);
          } else {
            part.edges_initial += wk.edge_count;
            build_pooled(nets[n], wk, n, sc);
          }
        }
        return part;
      },
      [&](std::size_t chunk, BuildPartial&& part) {
        result.stats.prerouted_nets += part.prerouted_nets;
        result.stats.edges_initial += part.edges_initial;
        const std::size_t begin = chunk * kBuildGrain;
        const std::size_t end = std::min(nets.size(), begin + kBuildGrain);
        for (std::size_t n = begin; n < end; ++n) {
          const NetWork& wk = works[n];
          if (wk.trivial) continue;
          if (wk.prerouted) {
            for (const std::uint64_t key : wk.present_keys) {
              stats.add(key >> 1, static_cast<int>(key & 1), 1.0, wk.si);
            }
            continue;
          }
          for (int d = 0; d < 2; ++d) {
            for (std::int32_t i = 0; i < wk.active_count[d]; ++i) {
              const std::int32_t v =
                  wk.active_vertices[d][static_cast<std::size_t>(i)];
              stats.add(static_cast<std::size_t>(
                            wk.region_idx[static_cast<std::size_t>(v)]),
                        d, wk.weight_applied[d], wk.si);
            }
          }
        }
      });

  // ------------------------------------------------- incremental weights
  //
  // Eq. (2) terms are served from per-(region, dir) density/overflow caches
  // derived from the shared RegionStats (incl. the Eq. (3) shield
  // estimate). A stats change flips a stale flag; the caches refresh
  // lazily at first read, so each change costs at most one polynomial
  // evaluation per touched region — instead of the historical four full
  // density derivations on every heap pop.
  const IdWeights& wt = options_.weights;

  // Density and overflow of one (region, dir) share a record: the weight
  // combine reads both with one load each per endpoint. Tiled like the
  // stats behind them: an unallocated slot reads as {0, 0}, which is
  // exactly what refresh_region computes for an untouched region (the
  // Eq. (3) estimate is exactly 0 for an empty region), so skipping the
  // warm-up for untouched tiles is value-identical to the dense scan.
  struct DensCache {
    double dens = 0.0, over = 0.0;
  };
  grid::TiledVec<DensCache> dcache[2];
  for (int d = 0; d < 2; ++d) dcache[d].reset(region_count, storage);
  // Every touched (region, dir) is warmed eagerly right after the build
  // (so the parallel heap-key pass reads the caches without
  // synchronization); the stale flags only track changes the deletion
  // loop makes from then on.
  grid::TiledVec<std::uint8_t> region_stale(region_count * 2, storage);

  // Speculation versioning (parallel/speculate.h): a memoized verdict or
  // weight is consumed by the serial commit order only while its version
  // stamps are unchanged. net_touch[n] advances whenever a pop changes any
  // of net n's edge states (delete, lock, freeze bulk-lock) — the only
  // inputs a deletability BFS and its certified pin paths read;
  // region_epoch advances with every stats change of a (region, dir) —
  // the inputs of a cached Eq. (2) weight.
  // speculate_batch > 1 = fixed width, 0 = adaptive width (the
  // parallel::AdaptiveBatch controller below), 1 or negative = off.
  const bool spec_on =
      (options_.speculate_batch > 1 || options_.speculate_batch == 0) &&
      threads > 1;
  const bool spec_adaptive = spec_on && options_.speculate_batch == 0;
  std::vector<std::uint32_t> net_touch(works.size(), 0);
  grid::TiledVec<std::uint32_t> region_epoch;
  if (spec_on) region_epoch.reset(region_count * 2, storage);

  auto refresh_region = [&](std::size_t region, int d) {
    const RegionStat& rs = stats.s[d][region];
    double hu = rs.nns;
    if (options_.reserve_shields) {
      hu += nss_->estimate(rs.nns, rs.sum_si, rs.sum_si2);
    }
    const double dens = hu / grid_->capacity(static_cast<grid::Dir>(d));
    dcache[d].ref(region) = DensCache{dens, dens > 1.0 ? dens - 1.0 : 0.0};
  };
  auto mark_dirty = [&](std::size_t region, int d) {
    const std::size_t key = region * 2 + static_cast<std::size_t>(d);
    region_stale.ref(key) = 1;
    if (spec_on) ++region_epoch.ref(key);
  };
  auto fresh_region = [&](std::size_t region, int d) {
    const std::size_t key = region * 2 + static_cast<std::size_t>(d);
    if (region_stale[key]) {
      region_stale.ref(key) = 0;
      refresh_region(region, d);
    }
  };

  // Per-net flags mirror into flat arrays so the pop loop's fast paths
  // never touch the big NetWork records (EdgeHot itself was filled by the
  // parallel build above).
  std::vector<std::uint8_t> net_frozen(works.size(), 0);
  std::vector<std::uint8_t> net_cert_valid(works.size(), 0);

  // The Eq. (2) combine off already-fresh caches: pure and read-only, so
  // the parallel initial-key pass can share it race-free; current_weight
  // adds the lazy refresh the serial deletion loop needs.
  auto weight_from_cache = [&](const EdgeHot& h) {
    const int d = h.dir;
    const DensCache& cu = dcache[d][static_cast<std::size_t>(h.ru)];
    const DensCache& cv = dcache[d][static_cast<std::size_t>(h.rv)];
    const double hd = 0.5 * (cu.dens + cv.dens);
    const double ofr = 0.5 * (cu.over + cv.over);
    return wt.alpha * static_cast<double>(h.fwl) + wt.beta * hd + wt.gamma * ofr;
  };
  auto current_weight = [&](const EdgeHot& h) {
    const int d = h.dir;
    fresh_region(static_cast<std::size_t>(h.ru), d);
    fresh_region(static_cast<std::size_t>(h.rv), d);
    return weight_from_cache(h);
  };

  // Warm every touched (region, dir) cache once off the final build stats,
  // then compute the initial heap keys in parallel from the (now
  // read-only) caches. refresh_region is a pure function of the region's
  // stats, so eager warming yields exactly the values the historical lazy
  // first-reads produced; the keys match current_weight() double for
  // double. In tiled mode only tiles the stats touched are warmed — every
  // edge endpoint lies in a net's bounding box and therefore in a touched
  // tile, and an untouched region's cache reads as the {0, 0} its refresh
  // would compute anyway. In dense mode the loop degenerates to the
  // historical full-grid warm-up (one always-allocated tile).
  for (int d = 0; d < 2; ++d) {
    const std::size_t tiles = stats.s[d].tile_count();
    for (std::size_t t = 0; t < tiles; ++t) {
      if (!stats.s[d].tile_allocated(t)) continue;
      const std::size_t end = stats.s[d].tile_end(t);
      for (std::size_t r = stats.s[d].tile_begin(t); r < end; ++r) {
        refresh_region(r, d);
      }
    }
  }

  util::IndexedMaxHeap heap(total_edges);
  {
    std::vector<util::IndexedMaxHeap::Entry> heap_init(total_edges);
    constexpr std::size_t kWeightGrain = 4096;  // edges per chunk (fixed)
    parallel::parallel_for(
        total_edges, kWeightGrain, threads,
        [&](std::size_t begin, std::size_t end, int) {
          for (std::size_t gid = begin; gid < end; ++gid) {
            heap_init[gid] = util::IndexedMaxHeap::Entry{
                weight_from_cache(ehot[gid]), static_cast<std::int32_t>(gid)};
          }
        });
    heap.build(heap_init);
  }

  // --------------------------------------------------- shared BFS scratch
  std::size_t max_vertices = 0, max_edges = 0;
  for (const NetWork& wk : works) {
    if (wk.prerouted) continue;
    max_vertices = std::max(max_vertices, wk.vertex_count());
    max_edges = std::max(max_edges, wk.edge_count);
  }
  BfsScratch main_scratch;
  main_scratch.init(max_vertices, max_edges);

  /// Early-exit bounded BFS from the source over active edges, optionally
  /// skipping one edge. Returns the deletability verdict directly: true as
  /// soon as every pin is certified within its detour limit; false the
  /// moment a pin is first reached beyond its limit, or once the BFS depth
  /// exceeds the largest pin limit (no pin can be certified any more), or
  /// when the frontier dries up. Identical verdicts to a full-graph BFS —
  /// it just refuses to flood the rest of the bounding box. A pure
  /// function of the net's edge states, so speculative replicas on
  /// worker-local scratch compute exactly the serial verdict.
  auto deletable_bfs = [&](const NetWork& wk, std::int32_t skip_edge,
                           BfsScratch& sc) {
    ++sc.epoch;
    sc.queue.clear();
    std::size_t uncertified = wk.pin_locals.size();
    const auto src = static_cast<std::size_t>(wk.src_local);
    sc.stamp[src] = sc.epoch;
    sc.dist[src] = 0;
    if (wk.pin_index[src] >= 0) --uncertified;  // source pin, distance 0
    if (uncertified == 0) return true;
    sc.queue.push_back(wk.src_local);
    for (std::size_t head = 0; head < sc.queue.size(); ++head) {
      const std::int32_t v = sc.queue[head];
      const std::int32_t dnext = sc.dist[static_cast<std::size_t>(v)] + 1;
      if (dnext > wk.max_pin_limit) return false;  // nothing certifiable left
      for (std::int32_t i = wk.adj_offset[static_cast<std::size_t>(v)];
           i < wk.adj_offset[static_cast<std::size_t>(v) + 1]; ++i) {
        const std::int32_t ei = wk.adj_edges[static_cast<std::size_t>(i)];
        if (ei == skip_edge) continue;
        const LocalEdge& e = wk.edges[static_cast<std::size_t>(ei)];
        if (e.state != kActive) continue;
        const std::int32_t other = (e.u == v) ? e.v : e.u;
        if (sc.stamp[static_cast<std::size_t>(other)] == sc.epoch) continue;
        sc.stamp[static_cast<std::size_t>(other)] = sc.epoch;
        sc.dist[static_cast<std::size_t>(other)] = dnext;
        sc.parent[static_cast<std::size_t>(other)] = ei;
        const std::int32_t pi = wk.pin_index[static_cast<std::size_t>(other)];
        if (pi >= 0) {
          if (dnext > wk.pin_limits[static_cast<std::size_t>(pi)]) return false;
          if (--uncertified == 0) return true;
        }
        sc.queue.push_back(other);
      }
    }
    return false;  // some pin is unreachable
  };

  /// Walk the source->pin parent paths of the BFS that just certified
  /// every pin (still in `sc`) into one path-family edge list. Dedup of
  /// path joins uses the scratch's stamped edge marks, which reproduces
  /// exactly the set (and push order) the historical kOnCertBit-based walk
  /// recorded — the bit and the cert_edges list were kept in lockstep, and
  /// old bits were cleared before the walk, so "bit already set" meant
  /// "added by this very walk". Shared-state-free, so speculative workers
  /// run it on their own scratch.
  auto collect_cert_paths = [&](const NetWork& wk, BfsScratch& sc,
                                std::vector<std::int32_t>& out) {
    out.clear();
    ++sc.mark_epoch;
    for (const std::int32_t pl : wk.pin_locals) {
      std::int32_t v = pl;
      while (v != wk.src_local) {
        const std::int32_t ei = sc.parent[static_cast<std::size_t>(v)];
        if (sc.edge_mark[static_cast<std::size_t>(ei)] == sc.mark_epoch) {
          break;  // joined a path already collected by this walk
        }
        sc.edge_mark[static_cast<std::size_t>(ei)] = sc.mark_epoch;
        out.push_back(ei);
        const LocalEdge& e = wk.edges[static_cast<std::size_t>(ei)];
        v = (e.u == v) ? e.v : e.u;
      }
    }
  };

  /// Install a collected path family as the net's positive certificate:
  /// clear the old family's bits, adopt the new list, set its bits.
  auto apply_cert = [&](NetWork& wk, std::size_t n,
                        const std::vector<std::int32_t>& path_edges) {
    for (const std::int32_t ei : wk.cert_edges) {
      ehot[wk.gid_base + static_cast<std::size_t>(ei)].meta &=
          static_cast<std::uint8_t>(~kOnCertBit);
    }
    wk.cert_edges.assign(path_edges.begin(), path_edges.end());
    for (const std::int32_t ei : wk.cert_edges) {
      ehot[wk.gid_base + static_cast<std::size_t>(ei)].meta |= kOnCertBit;
    }
    net_cert_valid[n] = 1;
  };

  /// Adopt the source->pin parent paths of the BFS that just certified
  /// every pin (still in scratch) as the net's positive certificate.
  std::vector<std::int32_t> cert_path_tmp;
  auto adopt_cert_paths = [&](NetWork& wk, std::size_t n, BfsScratch& sc) {
    collect_cert_paths(wk, sc, cert_path_tmp);
    apply_cert(wk, n, cert_path_tmp);
  };

  // Iterative-DFS scratch for the bridge pass.
  std::vector<std::int32_t> dfs_tin(max_vertices, 0), dfs_low(max_vertices, 0),
      dfs_pins(max_vertices, 0), dfs_parent(max_vertices, -1),
      dfs_cursor(max_vertices, 0);
  std::vector<std::int32_t> dfs_stack;
  dfs_stack.reserve(max_vertices);

  /// Certificate refresh: one no-skip BFS to detect a frozen net (some pin
  /// already unreachable or over-limit — then nothing is ever deletable
  /// again) and to adopt fresh positive pin paths, then one DFS (Tarjan
  /// lowlink) marking every bridge with a pin strictly behind it as
  /// never-deletable. All three certificates are monotone under edge
  /// removal, so they stay valid as deletion proceeds.
  auto certify = [&](NetWork& wk, std::size_t n) {
    wk.bfs_since_certify = 0;
    if (!deletable_bfs(wk, -1, main_scratch)) {
      // Frozen: some pin is already unreachable or over-limit with no edge
      // skipped, so every remaining deletability verdict of this net is
      // false regardless of how its graph shrinks further. Lock the whole
      // remainder now — locking has no effect on shared statistics or on
      // other nets — and erase the entries so the pop loop never touches
      // them again.
      net_frozen[n] = 1;
      net_cert_valid[n] = 0;
      ++net_touch[n];  // the bulk-lock flips edge states a memo may have read
      for (std::size_t ei = 0; ei < wk.edge_count; ++ei) {
        LocalEdge& e = wk.edges[ei];
        if (e.state != kActive) continue;
        e.state = kLocked;
        std::uint8_t& meta = ehot[wk.gid_base + ei].meta;
        meta = static_cast<std::uint8_t>((meta & ~kStateMask) | kLocked);
        ++result.stats.edges_locked;
        // Remove the heap entry in place: a mid-heap erase sifts only a
        // level or two, where draining it later through the top would pay
        // the full tree depth.
        const auto gid = static_cast<std::int32_t>(wk.gid_base + ei);
        if (heap.contains(gid)) heap.erase(gid);
      }
      return;
    }
    adopt_cert_paths(wk, n, main_scratch);
    // The bridge pass only pays off where locks happen (bridges are what
    // refuses deletion); skip it while the net is still deleting freely.
    if (wk.locks_since_tarjan == 0) return;
    wk.locks_since_tarjan = 0;
    ++main_scratch.epoch;
    std::int32_t timer = 0;
    dfs_stack.clear();
    const std::int32_t src = wk.src_local;
    main_scratch.stamp[static_cast<std::size_t>(src)] = main_scratch.epoch;
    dfs_tin[static_cast<std::size_t>(src)] = timer++;
    dfs_low[static_cast<std::size_t>(src)] = dfs_tin[static_cast<std::size_t>(src)];
    dfs_pins[static_cast<std::size_t>(src)] =
        wk.pin_index[static_cast<std::size_t>(src)] >= 0 ? 1 : 0;
    dfs_parent[static_cast<std::size_t>(src)] = -1;
    dfs_cursor[static_cast<std::size_t>(src)] =
        wk.adj_offset[static_cast<std::size_t>(src)];
    dfs_stack.push_back(src);
    while (!dfs_stack.empty()) {
      const std::int32_t v = dfs_stack.back();
      const auto uv = static_cast<std::size_t>(v);
      if (dfs_cursor[uv] < wk.adj_offset[uv + 1]) {
        const std::int32_t ei =
            wk.adj_edges[static_cast<std::size_t>(dfs_cursor[uv]++)];
        if (ei == dfs_parent[uv]) continue;
        const LocalEdge& e = wk.edges[static_cast<std::size_t>(ei)];
        if (e.state != kActive) continue;
        const std::int32_t other = (e.u == v) ? e.v : e.u;
        const auto uo = static_cast<std::size_t>(other);
        if (main_scratch.stamp[uo] == main_scratch.epoch) {
          dfs_low[uv] = std::min(dfs_low[uv], dfs_tin[uo]);
        } else {
          main_scratch.stamp[uo] = main_scratch.epoch;
          dfs_tin[uo] = timer++;
          dfs_low[uo] = dfs_tin[uo];
          dfs_pins[uo] = wk.pin_index[uo] >= 0 ? 1 : 0;
          dfs_parent[uo] = ei;
          dfs_cursor[uo] = wk.adj_offset[uo];
          dfs_stack.push_back(other);
        }
      } else {
        dfs_stack.pop_back();
        const std::int32_t pei = dfs_parent[uv];
        if (pei >= 0) {
          const LocalEdge& e = wk.edges[static_cast<std::size_t>(pei)];
          const std::int32_t parent = (e.u == v) ? e.v : e.u;
          const auto up = static_cast<std::size_t>(parent);
          dfs_low[up] = std::min(dfs_low[up], dfs_low[uv]);
          dfs_pins[up] += dfs_pins[uv];
          if (dfs_low[uv] > dfs_tin[up] && dfs_pins[uv] > 0) {
            ehot[wk.gid_base + static_cast<std::size_t>(pei)].meta |=
                kCertifiedBit;
          }
        }
      }
    }
  };

  // Seed every net's certificates once: degenerate (1-wide) bounding boxes
  // are all bridges and never pay a single deletability BFS, and the
  // initial pin paths let off-path edges delete without one either.
  for (std::size_t n = 0; n < works.size(); ++n) {
    if (!works[n].prerouted) certify(works[n], n);
  }

  // ----------------------------------------------------------- speculation
  //
  // One memo per likely-next candidate (parallel/speculate.h). The fanned
  // work is the two per-pop hot spots: the Eq. (2) weight combine (guarded
  // by the endpoint region epochs) and the deletability BFS + certified pin
  // paths (guarded by the net's touch counter — edge states are the only
  // inputs a BFS reads). All other pop work (certificate checks, state
  // flips, stats) stays on the committing thread, untouched.
  struct SpecMemo {
    std::int32_t gid = -1;
    std::uint32_t net_ver = 0;  ///< net_touch at snapshot
    std::uint32_t eu = 0, ev = 0;  ///< endpoint region epochs at snapshot
    double weight = 0.0;
    bool do_bfs = false;  ///< no certificate applied at snapshot time
    bool ok = false;      ///< BFS verdict (valid only when do_bfs)
    std::vector<std::int32_t> cert_path;  ///< pin paths when ok
  };
  parallel::AdaptiveBatch adaptive_batch;
  int spec_batch = !spec_on             ? 1
                   : spec_adaptive      ? adaptive_batch.width()
                                        : options_.speculate_batch;
  std::vector<SpecMemo> memos;
  std::vector<BfsScratch> spec_scratch;
  if (spec_on) {
    // Memo slots sized for the widest batch the controller can reach, so
    // adaptive growth never reallocates mid-loop.
    memos.resize(static_cast<std::size_t>(
        spec_adaptive ? adaptive_batch.max_width() : spec_batch));
    spec_scratch.resize(static_cast<std::size_t>(threads));
    for (BfsScratch& sc : spec_scratch) sc.init(max_vertices, max_edges);
  }
  std::size_t memo_count = 0;
  auto find_memo = [&](std::int32_t gid) -> const SpecMemo* {
    for (std::size_t i = 0; i < memo_count; ++i) {
      if (memos[i].gid == gid) return &memos[i];
    }
    return nullptr;
  };
  // Snapshot + evaluate one batch. The serial snapshot pass freshens both
  // endpoint caches of every candidate first — a pure derivation off the
  // live stats, exactly what the serial pop's own current_weight() would
  // run first, so doing it early is invisible — then records the version
  // stamps of everything each evaluation reads. Workers then only touch
  // read-only shared state plus their own memo slot and scratch.
  auto speculate_round = [&]() {
    RLCR_TRACE_SPAN(spec_span, "router.spec_round", "router");
    const auto top = heap.top_k(static_cast<std::size_t>(spec_batch));
    memo_count = top.size();
    spec_span.arg("batch", static_cast<double>(memo_count));
    for (std::size_t i = 0; i < memo_count; ++i) {
      SpecMemo& m = memos[i];
      m.gid = top[i].id;
      const EdgeHot& h = ehot[static_cast<std::size_t>(m.gid)];
      const int d = h.dir;
      fresh_region(static_cast<std::size_t>(h.ru), d);
      fresh_region(static_cast<std::size_t>(h.rv), d);
      m.eu = region_epoch[static_cast<std::size_t>(h.ru) * 2 +
                          static_cast<std::size_t>(d)];
      m.ev = region_epoch[static_cast<std::size_t>(h.rv) * 2 +
                          static_cast<std::size_t>(d)];
      const auto n = static_cast<std::size_t>(
          gid_net[static_cast<std::size_t>(m.gid)]);
      m.net_ver = net_touch[n];
      m.do_bfs = !(net_frozen[n] || (h.meta & kCertifiedBit)) &&
                 !(net_cert_valid[n] && !(h.meta & kOnCertBit));
      m.ok = false;
      if (m.do_bfs) ++result.stats.spec_attempted;
    }
    parallel::speculate(memo_count, threads, [&](std::size_t i, int worker) {
      SpecMemo& m = memos[i];
      const EdgeHot& h = ehot[static_cast<std::size_t>(m.gid)];
      m.weight = weight_from_cache(h);  // caches freshened at snapshot
      if (!m.do_bfs) return;
      const auto n = static_cast<std::size_t>(
          gid_net[static_cast<std::size_t>(m.gid)]);
      const NetWork& wk = works[n];
      BfsScratch& sc = spec_scratch[static_cast<std::size_t>(worker)];
      m.ok = deletable_bfs(
          wk,
          static_cast<std::int32_t>(static_cast<std::size_t>(m.gid) -
                                    wk.gid_base),
          sc);
      if (m.ok) collect_cert_paths(wk, sc, m.cert_path);
    });
  };

  // ------------------------------------------------------------- deletion
  //
  // Pop semantics replicate the historical lazy-revalidation heap exactly:
  // the heap key is the weight at the edge's last touch, and a popped-to-top
  // entry whose *current* weight dropped by more than 1e-9 is re-keyed in
  // place instead of processed. Because the old scheme kept exactly one
  // live entry per active edge, the processing order here is identical —
  // minus the duplicate-entry churn and the per-pop Eq. (2)/(3)
  // recomputation, and without the old `max_reinserts_per_edge` safety cap
  // (termination is structural: a re-key needs a strict weight drop, which
  // needs an intervening deletion, and deletions are finite).
  //
  // With speculation on, every spec_batch steps a fresh batch is snapshot
  // and evaluated; the commit loop below is the serial loop verbatim — it
  // re-reads top() for every pop, so memos only short-circuit recomputation
  // (weight / BFS) after their version stamps prove the inputs untouched,
  // never the processing order.
  phase_span.emplace("router.deletion", "router");
  phase_span->arg("candidates", static_cast<double>(heap.size()));
  while (!heap.empty()) {
    parallel::SpecStats round_before;
    if (spec_on) {
      if (spec_adaptive) {
        spec_batch = adaptive_batch.width();
        round_before = parallel::SpecStats{result.stats.spec_attempted,
                                           result.stats.spec_committed,
                                           result.stats.spec_replayed};
      }
      speculate_round();
    }
    for (int step = 0; !heap.empty() && (!spec_on || step < spec_batch);
         ++step) {
    const auto [gid, stored] = heap.top();
    const auto ugid = static_cast<std::size_t>(gid);
    EdgeHot& h = ehot[ugid];

    const SpecMemo* sp = spec_on ? find_memo(gid) : nullptr;
    double now;
    if (sp != nullptr &&
        region_epoch[static_cast<std::size_t>(h.ru) * 2 +
                     static_cast<std::size_t>(h.dir)] == sp->eu &&
        region_epoch[static_cast<std::size_t>(h.rv) * 2 +
                     static_cast<std::size_t>(h.dir)] == sp->ev) {
      // Unchanged epochs ⇒ no commit dirtied either endpoint since the
      // snapshot freshened them ⇒ the memoized combine IS current_weight().
      now = sp->weight;
    } else {
      now = current_weight(h);
    }
    if (now < stored - 1e-9) {
      ++result.stats.reinserts;
      heap.update(gid, now);
      continue;
    }
    heap.pop();

    const std::size_t n = static_cast<std::size_t>(gid_net[ugid]);
    // Certificate verdict: 0 = lock (negative certificate, no BFS),
    // 1 = delete (positive certificate: the certified pin paths survive
    // this edge's removal), -1 = no certificate applies.
    auto cert_verdict = [&]() -> int {
      if (net_frozen[n] || (h.meta & kCertifiedBit)) {
        // Locking removes this edge from the active pool; a positive
        // certificate whose paths ran through it is no longer sound.
        if (h.meta & kOnCertBit) net_cert_valid[n] = 0;
        return 0;
      }
      if (net_cert_valid[n] && !(h.meta & kOnCertBit)) return 1;
      return -1;
    };
    int verdict = cert_verdict();
    if (verdict < 0) {
      NetWork& wk = works[n];
      if (wk.bfs_since_certify >= kCertifyInterval) {
        certify(wk, n);
        verdict = cert_verdict();  // the refresh may have decided it
      }
      if (verdict < 0) {
        ++wk.bfs_since_certify;
        bool bfs_ok;
        if (sp != nullptr && sp->do_bfs && sp->net_ver == net_touch[n]) {
          // Untouched net ⇒ identical edge states ⇒ the memoized verdict
          // and parent paths are exactly what the serial BFS would find.
          bfs_ok = sp->ok;
          if (bfs_ok) apply_cert(wk, n, sp->cert_path);
          ++result.stats.spec_committed;
        } else {
          if (sp != nullptr && sp->do_bfs) ++result.stats.spec_replayed;
          bfs_ok = deletable_bfs(
              wk, static_cast<std::int32_t>(ugid - wk.gid_base), main_scratch);
          if (bfs_ok) {
            adopt_cert_paths(wk, n, main_scratch);  // excludes this edge
          }
        }
        if (!bfs_ok && (h.meta & kOnCertBit)) {
          net_cert_valid[n] = 0;  // locking breaks the certified paths
        }
        verdict = bfs_ok ? 1 : 0;
      }
    }
    const bool ok = verdict == 1;

    NetWork& wk = works[n];
    LocalEdge& e = wk.edges[ugid - wk.gid_base];
    if (!ok) {
      if (e.state == kActive) {  // may already be bulk-locked by a freeze
        e.state = kLocked;  // a pin-bridge (or guard-essential edge) stays
        h.meta = static_cast<std::uint8_t>((h.meta & ~kStateMask) | kLocked);
        ++result.stats.edges_locked;
        ++wk.locks_since_tarjan;
        ++net_touch[n];
      }
      continue;
    }

    // Delete the edge and update presence statistics incrementally.
    e.state = kDeleted;
    h.meta = static_cast<std::uint8_t>((h.meta & ~kStateMask) | kDeleted);
    ++result.stats.edges_deleted;
    ++net_touch[n];
    const int d = h.dir;
    bool lost_region = false;
    for (const std::int32_t v : {e.u, e.v}) {
      auto& cnt = wk.incident[static_cast<std::size_t>(v)][d];
      --cnt;
      if (cnt == 0) {
        const auto region = static_cast<std::size_t>(
            wk.region_idx[static_cast<std::size_t>(v)]);
        stats.add(region, d, -wk.weight_applied[d], wk.si);
        mark_dirty(region, d);
        wk.drop_active_vertex(d, v);
        --wk.active_regions[d];
        lost_region = true;
      }
    }
    if (lost_region) {
      // Rebalance this net's fractional demand over its maintained
      // active-vertex list (the per-region weight moves toward 1).
      const double target = wk.target_weight(d);
      const double delta = target - wk.weight_applied[d];
      if (std::abs(delta) >= 1e-12) {
        for (std::int32_t i = 0; i < wk.active_count[d]; ++i) {
          const std::int32_t v =
              wk.active_vertices[d][static_cast<std::size_t>(i)];
          const auto region = static_cast<std::size_t>(
              wk.region_idx[static_cast<std::size_t>(v)]);
          stats.add(region, d, delta, wk.si);
          mark_dirty(region, d);
        }
        wk.weight_applied[d] = target;
      }
    }
    }
    if (spec_adaptive) {
      adaptive_batch.update(parallel::SpecStats{
          result.stats.spec_attempted - round_before.attempted,
          result.stats.spec_committed - round_before.committed,
          result.stats.spec_replayed - round_before.replayed});
    }
  }

  phase_span.emplace("router.collect", "router");

  // ------------------------------------------------------------- collect
  // The surviving graph can still hold cycles or stubs the detour guard
  // refused to delete; extract the BFS shortest-path tree from the source
  // and keep only the edges on some source->pin path. This preserves the
  // guard's path-length certificates while dropping redundant edges.
  std::vector<std::int32_t> parent_edge(max_vertices, -1);
  std::vector<std::uint32_t> edge_seen(max_edges, 0);
  std::uint32_t seen_epoch = 0;
  std::vector<std::int32_t> kept;
  for (std::size_t n = 0; n < works.size(); ++n) {
    NetWork& wk = works[n];
    NetRoute& route = result.routes[n];
    if (wk.prerouted) {
      route.edges = std::move(wk.fixed_edges);
      result.total_wirelength_um += route.wirelength_um(*grid_);
      continue;
    }

    // BFS with parent pointers over non-deleted edges.
    ++main_scratch.epoch;
    main_scratch.queue.clear();
    main_scratch.queue.push_back(wk.src_local);
    main_scratch.stamp[static_cast<std::size_t>(wk.src_local)] =
        main_scratch.epoch;
    parent_edge[static_cast<std::size_t>(wk.src_local)] = -1;
    for (std::size_t head = 0; head < main_scratch.queue.size(); ++head) {
      const std::int32_t v = main_scratch.queue[head];
      for (std::int32_t i = wk.adj_offset[static_cast<std::size_t>(v)];
           i < wk.adj_offset[static_cast<std::size_t>(v) + 1]; ++i) {
        const std::int32_t ei = wk.adj_edges[static_cast<std::size_t>(i)];
        const LocalEdge& e = wk.edges[static_cast<std::size_t>(ei)];
        if (e.state == kDeleted) continue;
        const std::int32_t other = (e.u == v) ? e.v : e.u;
        if (main_scratch.stamp[static_cast<std::size_t>(other)] ==
            main_scratch.epoch) {
          continue;
        }
        main_scratch.stamp[static_cast<std::size_t>(other)] =
            main_scratch.epoch;
        parent_edge[static_cast<std::size_t>(other)] = ei;
        main_scratch.queue.push_back(other);
      }
    }

    // Union of source->pin parent paths (stamped edge set, no hashing).
    ++seen_epoch;
    kept.clear();
    for (const std::int32_t pl : wk.pin_locals) {
      std::int32_t v = pl;
      while (v != wk.src_local &&
             main_scratch.stamp[static_cast<std::size_t>(v)] ==
                 main_scratch.epoch) {
        const std::int32_t ei = parent_edge[static_cast<std::size_t>(v)];
        if (ei < 0 || edge_seen[static_cast<std::size_t>(ei)] == seen_epoch) {
          break;  // joined an existing path
        }
        edge_seen[static_cast<std::size_t>(ei)] = seen_epoch;
        kept.push_back(ei);
        const LocalEdge& e = wk.edges[static_cast<std::size_t>(ei)];
        v = (e.u == v) ? e.v : e.u;
      }
    }
    route.edges.reserve(kept.size());
    for (const std::int32_t ei : kept) {
      const LocalEdge& e = wk.edges[static_cast<std::size_t>(ei)];
      route.edges.push_back(make_edge(wk.global(e.u), wk.global(e.v)));
    }
    std::sort(route.edges.begin(), route.edges.end(),
              [](const GridEdge& x, const GridEdge& y) {
                if (x.a != y.a) return x.a < y.a;
                return x.b < y.b;
              });
    result.total_wirelength_um += route.wirelength_um(*grid_);
  }
  phase_span.reset();
  result.stats.runtime_s = watch.seconds();
  return result;
}

}  // namespace rlcr::router
