#include "router/id_router.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <queue>
#include <unordered_set>

#include "rsmt/steiner.h"
#include "util/stopwatch.h"

namespace rlcr::router {

namespace {

constexpr std::uint8_t kActive = 0;
constexpr std::uint8_t kDeleted = 1;
constexpr std::uint8_t kLocked = 2;

struct LocalEdge {
  std::int32_t u = 0, v = 0;   // local vertex ids
  float fwl = 0.0f;            // static wire-length term
  std::uint8_t dir = 0;        // grid::Dir as index
  std::uint8_t state = kActive;
  std::uint8_t reinserts = 0;
};

/// Per-net working graph over the pin bounding box.
struct NetWork {
  geom::Rect bbox;
  std::int32_t w = 0, h = 0;  // bbox dimensions in regions
  std::vector<LocalEdge> edges;
  // CSR adjacency: vertex -> [edge ids].
  std::vector<std::int32_t> adj_offset;
  std::vector<std::int32_t> adj_edges;
  // Active incident-edge count per vertex per direction.
  std::vector<std::array<std::uint16_t, 2>> incident;
  std::vector<std::int32_t> pin_locals;
  std::vector<std::int32_t> pin_limits;  ///< BFS distance cap per pin (guard)
  std::int32_t src_local = 0;
  double si = 0.0;
  bool prerouted = false;
  std::vector<GridEdge> fixed_edges;  // for pre-routed nets

  // Expected-usage demand model: the net's final route will cross about
  // `est_regions[d]` regions in direction d; while `active_regions[d]`
  // regions still hold candidate edges, each carries fractional demand
  // weight[d] = min(1, est/active). The weights converge to binary
  // presence as deletion thins the graph, so region densities stay
  // realistic throughout instead of counting whole bounding boxes.
  double est_regions[2] = {0.0, 0.0};
  std::int32_t active_regions[2] = {0, 0};
  double weight_applied[2] = {0.0, 0.0};

  std::int32_t local(geom::Point p) const {
    return (p.y - bbox.lo.y) * w + (p.x - bbox.lo.x);
  }
  geom::Point global(std::int32_t v) const {
    return geom::Point{bbox.lo.x + v % w, bbox.lo.y + v / w};
  }
  std::size_t vertex_count() const {
    return static_cast<std::size_t>(w) * static_cast<std::size_t>(h);
  }
  double target_weight(int d) const {
    if (active_regions[d] <= 0) return 0.0;
    return std::min(1.0, est_regions[d] / active_regions[d]);
  }
};

struct HeapEntry {
  double weight;
  std::int32_t net;
  std::int32_t edge;

  bool operator<(const HeapEntry& o) const {
    // Max-heap on weight; deterministic tie-break on (net, edge).
    if (weight != o.weight) return weight < o.weight;
    if (net != o.net) return net < o.net;
    return edge < o.edge;
  }
};

/// Shared per-(region, direction) presence statistics (fractional under the
/// expected-usage model).
struct RegionStats {
  std::vector<double> nns[2];
  std::vector<double> sum_si[2];
  std::vector<double> sum_si2[2];

  explicit RegionStats(std::size_t regions) {
    for (int d = 0; d < 2; ++d) {
      nns[d].assign(regions, 0.0);
      sum_si[d].assign(regions, 0.0);
      sum_si2[d].assign(regions, 0.0);
    }
  }
  void add(std::size_t region, int d, double w, double si) {
    nns[d][region] += w;
    sum_si[d][region] += w * si;
    sum_si2[d][region] += w * si * si;
  }
};

/// L-shaped walk between two region points. The leg order is chosen by a
/// deterministic hash of the endpoints so that pre-routed nets spread over
/// both elbow choices instead of piling onto shared x-first corridors.
void emit_l_shape(geom::Point p, geom::Point q, std::vector<GridEdge>& out) {
  const std::uint64_t h = std::hash<geom::Point>{}(p) * 31 + std::hash<geom::Point>{}(q);
  const bool x_first = (h & 1) == 0;
  geom::Point cur = p;
  auto walk_x = [&]() {
    const std::int32_t step_x = (q.x > cur.x) ? 1 : -1;
    while (cur.x != q.x) {
      const geom::Point next{cur.x + step_x, cur.y};
      out.push_back(make_edge(cur, next));
      cur = next;
    }
  };
  auto walk_y = [&]() {
    const std::int32_t step_y = (q.y > cur.y) ? 1 : -1;
    while (cur.y != q.y) {
      const geom::Point next{cur.x, cur.y + step_y};
      out.push_back(make_edge(cur, next));
      cur = next;
    }
  };
  if (x_first) {
    walk_x();
    walk_y();
  } else {
    walk_y();
    walk_x();
  }
}

struct GridEdgeHash {
  std::size_t operator()(const GridEdge& e) const noexcept {
    const std::hash<geom::Point> h;
    return h(e.a) * 1000003u ^ h(e.b);
  }
};

}  // namespace

IdRouter::IdRouter(const grid::RegionGrid& grid, const sino::NssModel& nss,
                   const IdRouterOptions& options)
    : grid_(&grid), nss_(&nss), options_(options) {}

RoutingResult IdRouter::route(const std::vector<RouterNet>& nets) const {
  util::Stopwatch watch;
  RoutingResult result;
  result.routes.resize(nets.size());

  const std::size_t region_count = grid_->region_count();
  RegionStats stats(region_count);

  // ---------------------------------------------------------------- build
  std::vector<NetWork> works(nets.size());
  for (std::size_t n = 0; n < nets.size(); ++n) {
    const RouterNet& net = nets[n];
    NetWork& wk = works[n];
    wk.si = net.si;
    result.routes[n].net_id = net.id;
    for (const geom::Point& p : net.pins) wk.bbox.expand(p);
    if (net.pins.size() < 2 || wk.bbox.cell_count() <= 1) {
      wk.prerouted = true;  // nothing to route
      continue;
    }
    wk.w = static_cast<std::int32_t>(wk.bbox.width());
    wk.h = static_cast<std::int32_t>(wk.bbox.height());

    if (static_cast<std::size_t>(wk.bbox.cell_count()) >
        options_.huge_net_bbox_threshold) {
      // Pre-route on the RSMT topology with L-shapes; fixed demand.
      wk.prerouted = true;
      ++result.stats.prerouted_nets;
      const rsmt::Tree tree = rsmt::rsmt(net.pins);
      std::unordered_set<GridEdge, GridEdgeHash> seen;
      std::vector<GridEdge> scratch;
      for (const auto& [a, b] : tree.edges) {
        scratch.clear();
        emit_l_shape(tree.nodes[static_cast<std::size_t>(a)],
                     tree.nodes[static_cast<std::size_t>(b)], scratch);
        for (const GridEdge& e : scratch) {
          if (seen.insert(e).second) wk.fixed_edges.push_back(e);
        }
      }
      // Fixed (binary) presence: each endpoint region of each edge.
      std::unordered_set<std::uint64_t> present;  // region * 2 + dir
      for (const GridEdge& e : wk.fixed_edges) {
        const int d = static_cast<int>(e.dir());
        for (const geom::Point p : {e.a, e.b}) {
          const std::uint64_t key = grid_->index(p) * 2 + static_cast<unsigned>(d);
          if (present.insert(key).second) {
            stats.add(grid_->index(p), d, 1.0, wk.si);
          }
        }
      }
      continue;
    }

    // Full connection graph over the bounding box.
    const auto vcount = wk.vertex_count();
    wk.incident.assign(vcount, {0, 0});
    for (std::int32_t y = 0; y < wk.h; ++y) {
      for (std::int32_t x = 0; x < wk.w; ++x) {
        const std::int32_t v = y * wk.w + x;
        if (x + 1 < wk.w) {
          wk.edges.push_back(LocalEdge{
              v, v + 1, 0.0f,
              static_cast<std::uint8_t>(grid::Dir::kHorizontal), kActive, 0});
        }
        if (y + 1 < wk.h) {
          wk.edges.push_back(LocalEdge{
              v, v + wk.w, 0.0f,
              static_cast<std::uint8_t>(grid::Dir::kVertical), kActive, 0});
        }
      }
    }

    // CSR adjacency.
    wk.adj_offset.assign(vcount + 1, 0);
    for (const LocalEdge& e : wk.edges) {
      ++wk.adj_offset[static_cast<std::size_t>(e.u) + 1];
      ++wk.adj_offset[static_cast<std::size_t>(e.v) + 1];
    }
    for (std::size_t i = 1; i < wk.adj_offset.size(); ++i) {
      wk.adj_offset[i] += wk.adj_offset[i - 1];
    }
    wk.adj_edges.assign(static_cast<std::size_t>(wk.adj_offset.back()), 0);
    {
      std::vector<std::int32_t> cursor(wk.adj_offset.begin(),
                                       wk.adj_offset.end() - 1);
      for (std::size_t ei = 0; ei < wk.edges.size(); ++ei) {
        const LocalEdge& e = wk.edges[ei];
        wk.adj_edges[static_cast<std::size_t>(
            cursor[static_cast<std::size_t>(e.u)]++)] =
            static_cast<std::int32_t>(ei);
        wk.adj_edges[static_cast<std::size_t>(
            cursor[static_cast<std::size_t>(e.v)]++)] =
            static_cast<std::int32_t>(ei);
      }
    }

    // Pins (deduplicated local ids) and their detour-guard limits.
    {
      std::unordered_set<std::int32_t> pin_set;
      for (const geom::Point& p : net.pins) pin_set.insert(wk.local(p));
      wk.pin_locals.assign(pin_set.begin(), pin_set.end());
      std::sort(wk.pin_locals.begin(), wk.pin_locals.end());
      wk.src_local = wk.local(net.pins.front());
      wk.pin_limits.reserve(wk.pin_locals.size());
      for (std::int32_t pl : wk.pin_locals) {
        const auto dist = geom::manhattan(wk.global(pl), net.pins.front());
        wk.pin_limits.push_back(static_cast<std::int32_t>(std::ceil(
                                    options_.max_detour_factor *
                                    static_cast<double>(dist))) +
                                options_.detour_slack);
      }
    }

    // Static f(WL) per edge: shortest source->sink path forced through it,
    // normalized by the RSMT length estimate (>= 1 region unit).
    const double rsmt_len =
        static_cast<double>(std::max<std::int64_t>(1, rsmt::rsmt_length(net.pins)));
    const geom::Point src = net.pins.front();
    auto min_sink_dist = [&](geom::Point p) {
      std::int64_t best = std::numeric_limits<std::int64_t>::max();
      for (std::size_t i = 1; i < net.pins.size(); ++i) {
        best = std::min(best, geom::manhattan(p, net.pins[i]));
      }
      return best;
    };
    for (LocalEdge& e : wk.edges) {
      const geom::Point pu = wk.global(e.u);
      const geom::Point pv = wk.global(e.v);
      const std::int64_t through_uv =
          geom::manhattan(src, pu) + 1 + min_sink_dist(pv);
      const std::int64_t through_vu =
          geom::manhattan(src, pv) + 1 + min_sink_dist(pu);
      e.fwl = static_cast<float>(
          static_cast<double>(std::min(through_uv, through_vu)) / rsmt_len);
    }

    // Incident counts, expected-usage estimates, and initial presence.
    for (const LocalEdge& e : wk.edges) {
      ++wk.incident[static_cast<std::size_t>(e.u)][e.dir];
      ++wk.incident[static_cast<std::size_t>(e.v)][e.dir];
    }
    // The final tree crosses roughly rsmt_len boundaries, split between
    // directions in proportion to the bbox aspect; +1 converts crossings
    // to touched regions.
    {
      const double wx = std::max(1, wk.w - 1);
      const double wy = std::max(1, wk.h - 1);
      wk.est_regions[0] = rsmt_len * (wx / (wx + wy)) + 1.0;
      wk.est_regions[1] = rsmt_len * (wy / (wx + wy)) + 1.0;
    }
    for (int d = 0; d < 2; ++d) {
      for (std::size_t v = 0; v < vcount; ++v) {
        if (wk.incident[v][static_cast<std::size_t>(d)] > 0) {
          ++wk.active_regions[d];
        }
      }
      wk.weight_applied[d] = wk.target_weight(d);
      for (std::size_t v = 0; v < vcount; ++v) {
        if (wk.incident[v][static_cast<std::size_t>(d)] > 0) {
          stats.add(grid_->index(wk.global(static_cast<std::int32_t>(v))), d,
                    wk.weight_applied[d], wk.si);
        }
      }
    }
    result.stats.edges_initial += wk.edges.size();
  }

  // --------------------------------------------------------------- weights
  const IdWeights& wt = options_.weights;
  auto density = [&](std::size_t region, int d) {
    double hu = stats.nns[d][region];
    if (options_.reserve_shields) {
      hu += nss_->estimate(stats.nns[d][region], stats.sum_si[d][region],
                           stats.sum_si2[d][region]);
    }
    return hu / grid_->capacity(static_cast<grid::Dir>(d));
  };
  auto overflow = [&](std::size_t region, int d) {
    const double dens = density(region, d);
    return dens > 1.0 ? dens - 1.0 : 0.0;
  };
  auto edge_weight = [&](const NetWork& wk, const LocalEdge& e) {
    const std::size_t ru = grid_->index(wk.global(e.u));
    const std::size_t rv = grid_->index(wk.global(e.v));
    const int d = e.dir;
    const double hd = 0.5 * (density(ru, d) + density(rv, d));
    const double ofr = 0.5 * (overflow(ru, d) + overflow(rv, d));
    return wt.alpha * static_cast<double>(e.fwl) + wt.beta * hd + wt.gamma * ofr;
  };

  /// Rebalance one net's fractional demand after its active-region count
  /// in direction d changed (the per-region weight moves toward 1).
  auto rebalance = [&](NetWork& wk, int d) {
    const double target = wk.target_weight(d);
    const double delta = target - wk.weight_applied[d];
    if (std::abs(delta) < 1e-12) return;
    const std::size_t vcount = wk.vertex_count();
    for (std::size_t v = 0; v < vcount; ++v) {
      if (wk.incident[v][static_cast<std::size_t>(d)] > 0) {
        stats.add(grid_->index(wk.global(static_cast<std::int32_t>(v))), d,
                  delta, wk.si);
      }
    }
    wk.weight_applied[d] = target;
  };

  // ------------------------------------------------------------------ heap
  std::priority_queue<HeapEntry> heap;
  for (std::size_t n = 0; n < works.size(); ++n) {
    const NetWork& wk = works[n];
    if (wk.prerouted) continue;
    for (std::size_t ei = 0; ei < wk.edges.size(); ++ei) {
      heap.push(HeapEntry{edge_weight(wk, wk.edges[ei]),
                          static_cast<std::int32_t>(n),
                          static_cast<std::int32_t>(ei)});
    }
  }

  // Scratch for BFS connectivity checks (sized to the largest net).
  std::size_t max_vertices = 0;
  for (const NetWork& wk : works) {
    if (!wk.prerouted) max_vertices = std::max(max_vertices, wk.vertex_count());
  }
  std::vector<std::uint32_t> visit_stamp(max_vertices, 0);
  std::vector<std::int32_t> visit_dist(max_vertices, 0);
  std::uint32_t stamp = 0;
  std::vector<std::int32_t> bfs_queue;
  bfs_queue.reserve(max_vertices);

  /// BFS from the source over active edges, optionally skipping one edge;
  /// distances land in visit_dist (stamped).
  auto bfs_from_source = [&](const NetWork& wk, std::int32_t skip_edge) {
    ++stamp;
    bfs_queue.clear();
    bfs_queue.push_back(wk.src_local);
    visit_stamp[static_cast<std::size_t>(wk.src_local)] = stamp;
    visit_dist[static_cast<std::size_t>(wk.src_local)] = 0;
    for (std::size_t head = 0; head < bfs_queue.size(); ++head) {
      const std::int32_t v = bfs_queue[head];
      for (std::int32_t i = wk.adj_offset[static_cast<std::size_t>(v)];
           i < wk.adj_offset[static_cast<std::size_t>(v) + 1]; ++i) {
        const std::int32_t ei = wk.adj_edges[static_cast<std::size_t>(i)];
        if (ei == skip_edge) continue;
        const LocalEdge& e = wk.edges[static_cast<std::size_t>(ei)];
        if (e.state != kActive) continue;
        const std::int32_t other = (e.u == v) ? e.v : e.u;
        if (visit_stamp[static_cast<std::size_t>(other)] == stamp) continue;
        visit_stamp[static_cast<std::size_t>(other)] = stamp;
        visit_dist[static_cast<std::size_t>(other)] =
            visit_dist[static_cast<std::size_t>(v)] + 1;
        bfs_queue.push_back(other);
      }
    }
  };

  /// May `skip_edge` be deleted? Requires every pin to stay reachable from
  /// the source within its detour-guard distance limit.
  auto deletable = [&](const NetWork& wk, std::int32_t skip_edge) {
    bfs_from_source(wk, skip_edge);
    for (std::size_t p = 0; p < wk.pin_locals.size(); ++p) {
      const auto v = static_cast<std::size_t>(wk.pin_locals[p]);
      if (visit_stamp[v] != stamp) return false;
      if (visit_dist[v] > wk.pin_limits[p]) return false;
    }
    return true;
  };

  // ------------------------------------------------------------- deletion
  while (!heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    NetWork& wk = works[static_cast<std::size_t>(top.net)];
    LocalEdge& e = wk.edges[static_cast<std::size_t>(top.edge)];
    if (e.state != kActive) continue;

    // Lazy revalidation: weights only decrease, so a stale (too-high) entry
    // is reinserted at its current weight instead of being processed.
    const double now = edge_weight(wk, e);
    if (now < top.weight - 1e-9 &&
        e.reinserts < options_.max_reinserts_per_edge) {
      ++e.reinserts;
      ++result.stats.reinserts;
      heap.push(HeapEntry{now, top.net, top.edge});
      continue;
    }

    if (!deletable(wk, top.edge)) {
      e.state = kLocked;  // a pin-bridge (or guard-essential edge) stays
      ++result.stats.edges_locked;
      continue;
    }

    // Delete the edge and update presence statistics.
    e.state = kDeleted;
    ++result.stats.edges_deleted;
    bool lost_region = false;
    for (const std::int32_t v : {e.u, e.v}) {
      auto& cnt = wk.incident[static_cast<std::size_t>(v)][e.dir];
      --cnt;
      if (cnt == 0) {
        stats.add(grid_->index(wk.global(v)), e.dir, -wk.weight_applied[e.dir],
                  wk.si);
        --wk.active_regions[e.dir];
        lost_region = true;
      }
    }
    if (lost_region) rebalance(wk, e.dir);
  }

  // ------------------------------------------------------------- collect
  // The surviving graph can still hold cycles or stubs the detour guard
  // refused to delete; extract the BFS shortest-path tree from the source
  // and keep only the edges on some source->pin path. This preserves the
  // guard's path-length certificates while dropping redundant edges.
  std::vector<std::int32_t> parent_edge(max_vertices, -1);
  for (std::size_t n = 0; n < works.size(); ++n) {
    NetWork& wk = works[n];
    NetRoute& route = result.routes[n];
    if (wk.prerouted) {
      route.edges = std::move(wk.fixed_edges);
      result.total_wirelength_um += route.wirelength_um(*grid_);
      continue;
    }

    // BFS with parent pointers over non-deleted edges.
    ++stamp;
    bfs_queue.clear();
    bfs_queue.push_back(wk.src_local);
    visit_stamp[static_cast<std::size_t>(wk.src_local)] = stamp;
    parent_edge[static_cast<std::size_t>(wk.src_local)] = -1;
    for (std::size_t head = 0; head < bfs_queue.size(); ++head) {
      const std::int32_t v = bfs_queue[head];
      for (std::int32_t i = wk.adj_offset[static_cast<std::size_t>(v)];
           i < wk.adj_offset[static_cast<std::size_t>(v) + 1]; ++i) {
        const std::int32_t ei = wk.adj_edges[static_cast<std::size_t>(i)];
        const LocalEdge& e = wk.edges[static_cast<std::size_t>(ei)];
        if (e.state == kDeleted) continue;
        const std::int32_t other = (e.u == v) ? e.v : e.u;
        if (visit_stamp[static_cast<std::size_t>(other)] == stamp) continue;
        visit_stamp[static_cast<std::size_t>(other)] = stamp;
        parent_edge[static_cast<std::size_t>(other)] = ei;
        bfs_queue.push_back(other);
      }
    }

    // Union of source->pin parent paths.
    std::unordered_set<std::int32_t> kept;
    for (const std::int32_t pl : wk.pin_locals) {
      std::int32_t v = pl;
      while (v != wk.src_local &&
             visit_stamp[static_cast<std::size_t>(v)] == stamp) {
        const std::int32_t ei = parent_edge[static_cast<std::size_t>(v)];
        if (ei < 0 || !kept.insert(ei).second) break;  // joined existing path
        const LocalEdge& e = wk.edges[static_cast<std::size_t>(ei)];
        v = (e.u == v) ? e.v : e.u;
      }
    }
    route.edges.reserve(kept.size());
    for (const std::int32_t ei : kept) {
      const LocalEdge& e = wk.edges[static_cast<std::size_t>(ei)];
      route.edges.push_back(make_edge(wk.global(e.u), wk.global(e.v)));
    }
    std::sort(route.edges.begin(), route.edges.end(),
              [](const GridEdge& x, const GridEdge& y) {
                if (x.a != y.a) return x.a < y.a;
                return x.b < y.b;
              });
    result.total_wirelength_um += route.wirelength_um(*grid_);
  }
  result.stats.runtime_s = watch.seconds();
  return result;
}

}  // namespace rlcr::router
