// Iterative-deletion (ID) global router (Cong & Preas [10], as adapted by
// the paper's Phase I).
//
// Every net starts with its full connection graph Gi — all region-adjacency
// edges inside its pin bounding box. The router repeatedly deletes the
// largest-weight edge over all nets (Fig. 1 of the paper) until each net's
// graph is reduced to a Steiner tree over its pins. Because all nets'
// candidate edges compete in one pool, the outcome does not depend on a net
// ordering — the property the paper chooses ID for.
//
// Edge weight (Eq. 2):  w(e) = alpha * f(WL) + beta * HD(R) + gamma * HOFR(R)
//   - f(WL): length of the shortest source->sink path forced through e,
//     normalized by the net's estimated RSMT length (detour edges weigh more
//     and are deleted first);
//   - HD:   track density (Nns + Nss) / capacity, where Nss is the Eq. (3)
//     shield estimate updated incrementally from the region's running
//     (Nns, sum Si, sum Si^2) — this is what reserves and minimizes
//     shielding area during routing and spreads sensitive nets;
//   - HOFR: relative overflow.
//
// The paper's Section 5 observation that ID dominates GSINO's runtime makes
// this file the Phase I hot path, so the deletion loop runs as an
// incremental engine:
//   - one indexed d-ary max-heap entry per candidate edge
//     (util/indexed_heap.h) with in-place update-key. The key is the weight
//     at the edge's last touch and a popped-to-top entry whose current
//     weight dropped is re-keyed instead of processed — the exact
//     processing order of the historical lazy-revalidation
//     std::priority_queue (which held one live entry per edge), without
//     duplicate-entry churn or a reinsert cap;
//   - per-(region, dir) density/overflow caches with stale flags: a stats
//     change marks the touched regions, the Eq. (2)/(3) derivation reruns
//     once per touched region at its next read, and a pop re-weighs its
//     edge from two cached records instead of four from-scratch density
//     derivations. (An eager region->edge inverted re-weigh index was
//     measured first and lost: rebalances touch O(net) regions each, so
//     propagating every change to every touching edge costs far more than
//     re-weighing the one popped edge on demand.) The shared RegionStats
//     and these caches live in first-touch tiled storage (grid/tiled.h):
//     ISPD98-size grids allocate and warm only the tiles traffic touches,
//     with output bit-identical to the dense layout (which remains
//     selectable via grid::set_default_region_storage / RLCR_DENSE_GRID);
//   - deletability checks are early-exit bounded BFS (stop once every pin
//     is certified within its detour limit, or as soon as certification is
//     impossible), and most pops skip BFS entirely via three monotone
//     certificates: an edge off the last certified source->pin path family
//     is deletable (the paths survive its removal); a bridge with a pin
//     behind it is never deletable; and a net whose pins already fail with
//     no edge skipped is frozen — its whole remainder bulk-locks at once.
//     Edge removal can only shrink the graph, so certificates stay valid
//     until a pop touches them;
//   - demand rebalancing walks maintained per-direction active-vertex
//     lists instead of rescanning the whole bounding box, and per-net
//     arrays are carved from shared arenas (three allocations total);
//   - the build phase (per-net graph + CSR + f(WL) + initial heap keys) is
//     chunk-parallel on the shared pool (src/parallel): workers fill
//     disjoint arena slices, the shared RegionStats accumulation is
//     replayed serially in net order by the ordered reducer, and the
//     pre-route dedup uses per-worker epoch-stamped scratch. Results are
//     bit-identical at any `threads` value (see IdRouterOptions::threads).
//
// Nets whose bounding box exceeds a size threshold would contribute
// enormous connection graphs (the classic ID scalability problem the paper
// acknowledges in Section 5); they are pre-routed on their RSMT topology
// with L-shaped segments and contribute fixed track demand instead.
#pragma once

#include <cstdint>
#include <tuple>
#include <utility>
#include <vector>

#include "grid/congestion.h"
#include "grid/region_grid.h"
#include "router/route_types.h"
#include "sino/nss.h"
#include "steiner/tree_builder.h"

namespace rlcr::router {

struct IdWeights {
  double alpha = 2.0;  ///< wire-length coefficient (paper's value)
  double beta = 1.0;   ///< density coefficient (paper's value)
  double gamma = 50.0; ///< overflow coefficient (paper's value)
};

/// Segment shape used when pre-routing huge nets on their RSMT topology.
enum class PrerouteShape {
  kL,  ///< single-elbow L (historical default; elbow choice hashed)
  kZ,  ///< two-elbow Z through the midpoint — splits each leg's demand
       ///< across two parallel corridors instead of one
};

struct IdRouterOptions {
  IdWeights weights;
  /// Include the Eq. (3) shield estimate in HU. True for GSINO Phase I;
  /// false for the ID+NO / iSINO baselines (the paper's fairness rule).
  bool reserve_shields = true;
  /// Pin bounding boxes with more regions than this are pre-routed on
  /// their RSMT instead of entering the deletion pool.
  std::size_t huge_net_bbox_threshold = 600;
  /// Shape of huge-net pre-route segments. Both shapes are monotone
  /// (identical wire length); kL keeps every historical golden, kZ has
  /// its own golden pinned at introduction.
  PrerouteShape preroute_shape = PrerouteShape::kL;
  /// Detour guard: a deletion is refused when it would leave some sink's
  /// shortest path from the source longer than
  ///   max_detour_factor * manhattan(source, sink) + detour_slack.
  /// This enforces the very assumption Phase I budgeting makes (actual path
  /// length ~ Manhattan estimate); without it, pure weight-driven deletion
  /// can leave arbitrarily long snakes through quiet regions.
  double max_detour_factor = 1.3;
  std::int32_t detour_slack = 1;
  /// Workers for the build phase (per-net graphs, f(WL) tables, CSR, heap
  /// keys) on the shared pool (src/parallel). 0 = auto (RLCR_THREADS env
  /// var, else hardware concurrency); 1 = the exact serial path. Output is
  /// bit-identical at every value: chunking is a pure function of the net
  /// count, and shared-stats accumulation is replayed in net order by the
  /// ordered reducer. The deletion loop commits serially; with
  /// `speculate_batch` > 1 its BFS verdicts and weights are precomputed
  /// speculatively across the pool (parallel/speculate.h).
  int threads = 0;
  /// Speculative batch width of the deletion loop: up to this many
  /// top-of-heap candidates have their deletability BFS (+ certified pin
  /// paths) and Eq. (2) weight evaluated concurrently against a frozen
  /// snapshot; the unchanged serial commit order then consumes each memo
  /// only after version counters prove no earlier commit touched its
  /// inputs, and recomputes the rest serially. Routes are therefore
  /// bit-identical at every (threads, speculate_batch) combination;
  /// 0 selects an adaptive width (parallel::AdaptiveBatch grows the batch
  /// while the commit rate stays high and halves it on replay storms —
  /// still deterministic for a fixed thread count); 1 or negative — or
  /// threads == 1 — disables speculation entirely (the exact serial
  /// path). Like `threads`, never part of the routing profile.
  int speculate_batch = 8;
  /// Quality tier for every net topology the router builds (huge-net
  /// pre-routes and the f(WL) normalization trees): src/steiner profiles.
  /// kFast is the historical rsmt::rsmt path, bit-identical to the
  /// pre-profile router. Part of the routing profile — a different tier is
  /// a different routing answer.
  steiner::TreeProfile tree_profile = steiner::TreeProfile::kFast;
  /// Per-net tier overrides for critical nets: (net id, TreeProfile value)
  /// pairs, kept sorted by net id. A listed net is built at its own tier;
  /// all others use `tree_profile`. Also part of the routing profile.
  std::vector<std::pair<std::int32_t, std::uint8_t>> tree_profile_overrides;

 private:
  /// The single enumeration behind both profile_tie() overloads below.
  /// (Lexically first: auto return deduction needs the body before use.)
  template <typename Self>
  static auto profile_tie_of(Self& self) {
    return std::tie(self.weights.alpha, self.weights.beta, self.weights.gamma,
                    self.reserve_shields, self.huge_net_bbox_threshold,
                    self.preroute_shape, self.max_detour_factor,
                    self.detour_slack, self.tree_profile,
                    self.tree_profile_overrides);
  }

 public:
  /// THE routing-profile field list: every field that can change the
  /// routing output, as one ordered tuple of references; `threads` is
  /// excluded (output is thread-count-invariant). Equality comparison
  /// (session cache identity), the store key hash, and the on-disk
  /// serialization of a profile all iterate this one list (via
  /// profile_tie_of above), so adding an output-affecting option there
  /// extends all three consistently — never enumerate the fields
  /// anywhere else.
  auto profile_tie() { return profile_tie_of(*this); }
  auto profile_tie() const { return profile_tie_of(*this); }

  /// True when `other` routes identically — the cache identity of a
  /// session's RoutingArtifact.
  bool same_routing_profile(const IdRouterOptions& other) const {
    return profile_tie() == other.profile_tie();
  }
};

class IdRouter {
 public:
  IdRouter(const grid::RegionGrid& grid, const sino::NssModel& nss,
           const IdRouterOptions& options = {});

  /// Route all nets. The result's routes are parallel to `nets`.
  RoutingResult route(const std::vector<RouterNet>& nets) const;

 private:
  const grid::RegionGrid* grid_;
  const sino::NssModel* nss_;
  IdRouterOptions options_;
};

}  // namespace rlcr::router
