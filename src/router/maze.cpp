#include "router/maze.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <unordered_set>

#include "rsmt/steiner.h"
#include "util/stopwatch.h"

namespace rlcr::router {

namespace {

struct GridEdgeHash {
  std::size_t operator()(const GridEdge& e) const noexcept {
    const std::hash<geom::Point> h;
    return h(e.a) * 1000003u ^ h(e.b);
  }
};

}  // namespace

MazeRouter::MazeRouter(const grid::RegionGrid& grid, const MazeOptions& options)
    : grid_(&grid), options_(options) {}

RoutingResult MazeRouter::route(const std::vector<RouterNet>& nets) const {
  util::Stopwatch watch;
  RoutingResult result;
  result.routes.resize(nets.size());

  // Shared usage per (region, dir): tracks consumed so far.
  std::vector<double> usage[2];
  for (auto& u : usage) u.assign(grid_->region_count(), 0.0);

  auto edge_cost = [&](geom::Point a, geom::Point b) {
    const grid::Dir d = (a.y == b.y) ? grid::Dir::kHorizontal : grid::Dir::kVertical;
    const int di = static_cast<int>(d);
    const double cap = grid_->capacity(d);
    const double u =
        0.5 * (usage[di][grid_->index(a)] + usage[di][grid_->index(b)]);
    const double over = std::max(0.0, (u + 1.0 - cap) / cap);
    return 1.0 + options_.congestion_penalty * over;
  };

  for (std::size_t n = 0; n < nets.size(); ++n) {
    const RouterNet& net = nets[n];
    NetRoute& route = result.routes[n];
    route.net_id = net.id;
    if (net.pins.size() < 2) continue;

    geom::Rect window;
    for (const geom::Point& p : net.pins) window.expand(p);
    window = window.inflated(options_.bbox_margin, grid_->cols(), grid_->rows());
    const std::int32_t w = static_cast<std::int32_t>(window.width());
    const std::int32_t h = static_cast<std::int32_t>(window.height());
    auto local = [&](geom::Point p) { return (p.y - window.lo.y) * w + (p.x - window.lo.x); };
    auto global = [&](std::int32_t v) {
      return geom::Point{window.lo.x + v % w, window.lo.y + v / w};
    };
    const std::size_t vcount = static_cast<std::size_t>(w) * static_cast<std::size_t>(h);

    std::unordered_set<GridEdge, GridEdgeHash> tree_edges;

    // Route 2-pin connections along the RSMT topology, connecting each new
    // terminal to the set of already-reached vertices.
    const rsmt::Tree topo = rsmt::rsmt(net.pins);
    std::vector<char> reached(vcount, 0);
    reached[static_cast<std::size_t>(local(net.pins[0]))] = 1;

    for (const auto& [ta, tb] : topo.edges) {
      const geom::Point target_a = topo.nodes[static_cast<std::size_t>(ta)];
      const geom::Point target_b = topo.nodes[static_cast<std::size_t>(tb)];
      // Pick whichever endpoint is not yet reached as the goal; if both are
      // unreached, route between them directly.
      geom::Point goal = target_b;
      if (reached[static_cast<std::size_t>(local(target_b))] &&
          !reached[static_cast<std::size_t>(local(target_a))]) {
        goal = target_a;
      } else if (reached[static_cast<std::size_t>(local(target_b))] &&
                 reached[static_cast<std::size_t>(local(target_a))]) {
        continue;  // both endpoints already in the tree
      }

      // Dijkstra from all reached vertices to `goal`.
      constexpr double kInf = std::numeric_limits<double>::infinity();
      std::vector<double> dist(vcount, kInf);
      std::vector<std::int32_t> prev(vcount, -1);
      using QE = std::pair<double, std::int32_t>;
      std::priority_queue<QE, std::vector<QE>, std::greater<>> pq;
      for (std::size_t v = 0; v < vcount; ++v) {
        if (reached[v]) {
          dist[v] = 0.0;
          pq.push({0.0, static_cast<std::int32_t>(v)});
        }
      }
      const std::int32_t goal_v = local(goal);
      while (!pq.empty()) {
        const auto [dv, v] = pq.top();
        pq.pop();
        if (dv > dist[static_cast<std::size_t>(v)]) continue;
        if (v == goal_v) break;
        const geom::Point pv = global(v);
        const geom::Point nbrs[4] = {{pv.x - 1, pv.y}, {pv.x + 1, pv.y},
                                     {pv.x, pv.y - 1}, {pv.x, pv.y + 1}};
        for (const geom::Point& pn : nbrs) {
          if (!window.contains(pn)) continue;
          const std::int32_t u = local(pn);
          const double cost = dv + edge_cost(pv, pn);
          if (cost < dist[static_cast<std::size_t>(u)]) {
            dist[static_cast<std::size_t>(u)] = cost;
            prev[static_cast<std::size_t>(u)] = v;
            pq.push({cost, u});
          }
        }
      }
      // Backtrack, marking the path reached and collecting edges.
      std::int32_t v = goal_v;
      while (prev[static_cast<std::size_t>(v)] >= 0 &&
             !reached[static_cast<std::size_t>(v)]) {
        const std::int32_t p = prev[static_cast<std::size_t>(v)];
        tree_edges.insert(make_edge(global(v), global(p)));
        reached[static_cast<std::size_t>(v)] = 1;
        v = p;
      }
      reached[static_cast<std::size_t>(goal_v)] = 1;
    }

    route.edges.assign(tree_edges.begin(), tree_edges.end());
    // Deterministic order for downstream consumers.
    std::sort(route.edges.begin(), route.edges.end(),
              [](const GridEdge& x, const GridEdge& y) {
                if (x.a != y.a) return x.a < y.a;
                return x.b < y.b;
              });

    // Commit usage: one track per (region, dir) the net is present in.
    std::unordered_set<std::uint64_t> present;
    for (const GridEdge& e : route.edges) {
      const int d = static_cast<int>(e.dir());
      for (const geom::Point p : {e.a, e.b}) {
        const std::uint64_t key = grid_->index(p) * 2 + static_cast<unsigned>(d);
        if (present.insert(key).second) usage[d][grid_->index(p)] += 1.0;
      }
    }
    result.total_wirelength_um += route.wirelength_um(*grid_);
  }
  result.stats.runtime_s = watch.seconds();
  return result;
}

}  // namespace rlcr::router
