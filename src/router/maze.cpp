#include "router/maze.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <vector>

#include "obs/trace.h"
#include "rsmt/steiner.h"
#include "steiner/tree_cache.h"
#include "util/stopwatch.h"

namespace rlcr::router {

namespace {

/// Priority-queue entry: (key, vertex). Ordered lexicographically, so equal
/// keys deterministically pop the smaller global vertex id — row-major
/// (y, x), the same order the historical window-local ids gave.
using QE = std::pair<double, std::int32_t>;

}  // namespace

MazeRouter::MazeRouter(const grid::RegionGrid& grid, const MazeOptions& options)
    : grid_(&grid), options_(options) {}

RoutingResult MazeRouter::route(const std::vector<RouterNet>& nets) const {
  util::Stopwatch watch;
  RoutingResult result;
  result.routes.resize(nets.size());

  const std::size_t vcount = grid_->region_count();

  // Shared usage per (region, dir): tracks consumed so far.
  std::vector<double> usage[2];
  for (auto& u : usage) u.assign(vcount, 0.0);

  // Persistent search scratch, allocated once and reused across every 2-pin
  // connection of every net. Validity is tracked by epoch stamps instead of
  // O(window) clears: dist/prev are live only where dist_mark matches the
  // current search epoch, membership in the net's routed tree only where
  // reached_mark matches the net epoch. Vertices are global region indices
  // (row-major), so no per-net local remapping is needed.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(vcount, kInf);
  std::vector<std::int32_t> prev(vcount, -1);
  std::vector<std::uint32_t> dist_mark(vcount, 0);
  std::vector<std::uint32_t> reached_mark(vcount, 0);
  std::vector<std::uint32_t> present_mark(vcount * 2, 0);
  std::uint32_t search_epoch = 0, net_epoch = 0, present_epoch = 0;
  std::vector<std::int32_t> reached_list;
  std::vector<QE> pq;  // min-heap via std::push_heap/pop_heap + greater<>

  // Decomposition topologies come from the tiered tree builder; the cache
  // collapses identical pin configurations across nets. kFast (the default)
  // reproduces the historical rsmt::rsmt trees bit-for-bit.
  steiner::TreeCache tree_cache;
  const steiner::TreeBuilder tree_builder(steiner::TreeBuilderOptions{},
                                          &tree_cache);

  auto edge_cost = [&](geom::Point a, geom::Point b) {
    const grid::Dir d = (a.y == b.y) ? grid::Dir::kHorizontal : grid::Dir::kVertical;
    const int di = static_cast<int>(d);
    const double cap = grid_->capacity(d);
    const double u =
        0.5 * (usage[di][grid_->index(a)] + usage[di][grid_->index(b)]);
    const double over = std::max(0.0, (u + 1.0 - cap) / cap);
    return 1.0 + options_.congestion_penalty * over;
  };

  for (std::size_t n = 0; n < nets.size(); ++n) {
    const RouterNet& net = nets[n];
    NetRoute& route = result.routes[n];
    route.net_id = net.id;
    if (net.pins.size() < 2) continue;
    RLCR_TRACE_SPAN(net_span, "maze.net", "router");
    net_span.arg("pins", static_cast<double>(net.pins.size()));

    geom::Rect window;
    for (const geom::Point& p : net.pins) window.expand(p);
    window = window.inflated(options_.bbox_margin, grid_->cols(), grid_->rows());

    ++net_epoch;
    reached_list.clear();
    auto reach = [&](std::int32_t v) {
      reached_mark[static_cast<std::size_t>(v)] = net_epoch;
      reached_list.push_back(v);
    };
    auto is_reached = [&](std::int32_t v) {
      return reached_mark[static_cast<std::size_t>(v)] == net_epoch;
    };
    reach(static_cast<std::int32_t>(grid_->index(net.pins[0])));

    std::vector<GridEdge>& tree_edges = route.edges;  // built in place

    // Route 2-pin connections along the RSMT topology, connecting each new
    // terminal to the set of already-reached vertices.
    const std::shared_ptr<const rsmt::Tree> topo_ptr =
        tree_builder.build(net.pins, options_.tree_profile);
    const rsmt::Tree& topo = *topo_ptr;
    for (const auto& [ta, tb] : topo.edges) {
      const geom::Point target_a = topo.nodes[static_cast<std::size_t>(ta)];
      const geom::Point target_b = topo.nodes[static_cast<std::size_t>(tb)];
      // Pick whichever endpoint is not yet reached as the goal; if both are
      // unreached, route between them directly.
      geom::Point goal = target_b;
      if (is_reached(static_cast<std::int32_t>(grid_->index(target_b))) &&
          !is_reached(static_cast<std::int32_t>(grid_->index(target_a)))) {
        goal = target_a;
      } else if (is_reached(static_cast<std::int32_t>(grid_->index(target_b))) &&
                 is_reached(static_cast<std::int32_t>(grid_->index(target_a)))) {
        continue;  // both endpoints already in the tree
      }
      const std::int32_t goal_v = static_cast<std::int32_t>(grid_->index(goal));

      // A* heuristic: Manhattan distance to the goal. Every region crossing
      // costs at least 1, so it is admissible and consistent; with the
      // penalty-free cost floor of exactly 1 it is also tight in quiet
      // fabric. Disabled (h = 0) in Dijkstra mode.
      auto heuristic = [&](geom::Point p) {
        return options_.use_astar
                   ? static_cast<double>(geom::manhattan(p, goal))
                   : 0.0;
      };

      // Multi-source shortest path from the routed tree to `goal`, seeded
      // frontier-only: interior tree vertices (all four neighbours already
      // reached) can never start an improving path, so only boundary
      // vertices enter the queue. All reached vertices still get dist 0 so
      // relaxations into the tree are rejected.
      ++search_epoch;
      pq.clear();
      for (const std::int32_t v : reached_list) {
        dist[static_cast<std::size_t>(v)] = 0.0;
        prev[static_cast<std::size_t>(v)] = -1;
        dist_mark[static_cast<std::size_t>(v)] = search_epoch;
      }
      for (const std::int32_t v : reached_list) {
        const geom::Point pv = grid_->at(static_cast<std::size_t>(v));
        const geom::Point nbrs[4] = {{pv.x - 1, pv.y}, {pv.x + 1, pv.y},
                                     {pv.x, pv.y - 1}, {pv.x, pv.y + 1}};
        for (const geom::Point& pn : nbrs) {
          if (!window.contains(pn)) continue;
          if (!is_reached(static_cast<std::int32_t>(grid_->index(pn)))) {
            pq.emplace_back(heuristic(pv), v);
            break;
          }
        }
      }
      std::make_heap(pq.begin(), pq.end(), std::greater<>{});

      while (!pq.empty()) {
        const auto [kv, v] = pq.front();
        std::pop_heap(pq.begin(), pq.end(), std::greater<>{});
        pq.pop_back();
        const geom::Point pv = grid_->at(static_cast<std::size_t>(v));
        if (kv > dist[static_cast<std::size_t>(v)] + heuristic(pv)) continue;
        if (v == goal_v) break;
        const geom::Point nbrs[4] = {{pv.x - 1, pv.y}, {pv.x + 1, pv.y},
                                     {pv.x, pv.y - 1}, {pv.x, pv.y + 1}};
        const double dv = dist[static_cast<std::size_t>(v)];
        for (const geom::Point& pn : nbrs) {
          if (!window.contains(pn)) continue;
          const auto u = static_cast<std::size_t>(grid_->index(pn));
          const double cost = dv + edge_cost(pv, pn);
          if (dist_mark[u] != search_epoch) {
            dist_mark[u] = search_epoch;
            dist[u] = kInf;
          }
          if (cost < dist[u]) {
            dist[u] = cost;
            prev[u] = v;
            pq.emplace_back(cost + heuristic(pn), static_cast<std::int32_t>(u));
            std::push_heap(pq.begin(), pq.end(), std::greater<>{});
          }
        }
      }
      // Backtrack, marking the path reached and collecting edges. Each
      // backtracked vertex joins the tree exactly once, so the edges are
      // unique without any hash-set dedup.
      std::int32_t v = goal_v;
      while (prev[static_cast<std::size_t>(v)] >= 0 && !is_reached(v)) {
        const std::int32_t p = prev[static_cast<std::size_t>(v)];
        tree_edges.push_back(make_edge(grid_->at(static_cast<std::size_t>(v)),
                                       grid_->at(static_cast<std::size_t>(p))));
        reach(v);
        v = p;
      }
      if (!is_reached(goal_v)) reach(goal_v);
    }

    // Deterministic order for downstream consumers.
    std::sort(route.edges.begin(), route.edges.end(),
              [](const GridEdge& x, const GridEdge& y) {
                if (x.a != y.a) return x.a < y.a;
                return x.b < y.b;
              });

    // Commit usage: one track per (region, dir) the net is present in
    // (stamped first-touch instead of a per-net hash set).
    ++present_epoch;
    for (const GridEdge& e : route.edges) {
      const int d = static_cast<int>(e.dir());
      for (const geom::Point p : {e.a, e.b}) {
        const std::size_t key = grid_->index(p) * 2 + static_cast<unsigned>(d);
        if (present_mark[key] != present_epoch) {
          present_mark[key] = present_epoch;
          usage[d][grid_->index(p)] += 1.0;
        }
      }
    }
    result.total_wirelength_um += route.wirelength_um(*grid_);
  }
  result.stats.runtime_s = watch.seconds();
  return result;
}

}  // namespace rlcr::router
