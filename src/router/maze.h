// Sequential maze (Dijkstra/A*) router: the order-dependent baseline.
//
// The paper motivates ID by its independence from net ordering (Section
// 3.1); this router is the contrast case for the ablation bench. Each net
// is decomposed into 2-pin connections along its RSMT topology and routed
// one net at a time with congestion-aware edge costs; earlier nets grab
// cheap resources and later nets pay for it.
//
// The searches share epoch-stamped persistent scratch (dist/prev/visited
// valid only under the current stamp), seed the multi-source wavefront from
// the routed tree's frontier vertices only, and commit track usage through
// stamped first-touch vectors — no per-connection allocation, no per-net
// hash sets. `use_astar` adds a Manhattan goal heuristic: admissible and
// consistent (every region crossing costs >= 1), it explores a fraction of
// the window, but its different pop order may pick a different — equally
// cheap — path among cost ties than the default Dijkstra order does, so it
// is opt-in for callers that pin exact routes.
#pragma once

#include <cstdint>

#include "grid/region_grid.h"
#include "router/route_types.h"
#include "steiner/tree_builder.h"

namespace rlcr::router {

struct MazeOptions {
  double congestion_penalty = 4.0;  ///< cost multiplier per unit overflow
  std::int32_t bbox_margin = 8;     ///< search window inflation (regions)
  /// Goal-directed A* search (default). Same path costs, but equal-cost
  /// ties may resolve to different route shapes than Dijkstra order; set
  /// false for the historical Dijkstra tie-breaks (pinned by the golden
  /// regression tests against the pre-incremental implementation).
  bool use_astar = true;
  /// Quality tier for the per-net RSMT decomposition topology
  /// (src/steiner). kFast keeps the historical rsmt::rsmt trees and every
  /// golden route shape.
  steiner::TreeProfile tree_profile = steiner::TreeProfile::kFast;
};

class MazeRouter {
 public:
  MazeRouter(const grid::RegionGrid& grid, const MazeOptions& options = {});

  /// Route nets in input order (the order-dependence is the point).
  RoutingResult route(const std::vector<RouterNet>& nets) const;

 private:
  const grid::RegionGrid* grid_;
  MazeOptions options_;
};

}  // namespace rlcr::router
