// Sequential maze (Dijkstra) router: the order-dependent baseline.
//
// The paper motivates ID by its independence from net ordering (Section
// 3.1); this router is the contrast case for the ablation bench. Each net
// is decomposed into 2-pin connections along its RSMT topology and routed
// one net at a time with congestion-aware edge costs; earlier nets grab
// cheap resources and later nets pay for it.
#pragma once

#include <cstdint>

#include "grid/region_grid.h"
#include "router/route_types.h"

namespace rlcr::router {

struct MazeOptions {
  double congestion_penalty = 4.0;  ///< cost multiplier per unit overflow
  std::int32_t bbox_margin = 8;     ///< search window inflation (regions)
};

class MazeRouter {
 public:
  MazeRouter(const grid::RegionGrid& grid, const MazeOptions& options = {});

  /// Route nets in input order (the order-dependence is the point).
  RoutingResult route(const std::vector<RouterNet>& nets) const;

 private:
  const grid::RegionGrid* grid_;
  MazeOptions options_;
};

}  // namespace rlcr::router
