#include "router/occupancy.h"

#include <unordered_map>

namespace rlcr::router {

Occupancy::Occupancy(const grid::RegionGrid& grid,
                     const std::vector<NetRoute>& routes)
    : grid_(&grid) {
  for (auto& v : by_region_) {
    v.reset(grid.region_count(), grid::default_region_storage());
  }
  by_net_.resize(routes.size());

  // Count incident edges per (region, dir) for each net, then convert to
  // presence + length.
  std::unordered_map<std::uint64_t, int> incident;  // region*2+dir -> count
  for (std::size_t n = 0; n < routes.size(); ++n) {
    incident.clear();
    for (const GridEdge& e : routes[n].edges) {
      const auto d = static_cast<std::uint64_t>(e.dir());
      incident[grid.index(e.a) * 2 + d] += 1;
      incident[grid.index(e.b) * 2 + d] += 1;
    }
    for (const auto& [key, count] : incident) {
      const std::size_t region = key / 2;
      const auto d = static_cast<grid::Dir>(key % 2);
      const double len = 0.5 * grid.span_um(d) * count;
      by_region_[key % 2].ref(region).push_back(
          Segment{static_cast<std::int32_t>(n), len});
      by_net_[n].push_back(NetRegionRef{region, d, len});
    }
  }
}

double Occupancy::net_length_um(std::size_t net_index) const {
  double acc = 0.0;
  for (const NetRegionRef& r : by_net_[net_index]) acc += r.length_um;
  return acc;
}

void Occupancy::fill_segments(grid::CongestionMap& cmap) const {
  // Unoccupied regions keep the map's value-initialized 0.0 — writing the
  // zero explicitly would force tiled maps to materialize every tile.
  for (int d = 0; d < 2; ++d) {
    for (std::size_t r = 0; r < grid_->region_count(); ++r) {
      const auto& segs = by_region_[static_cast<std::size_t>(d)][r];
      if (segs.empty()) continue;
      cmap.set_segments(r, static_cast<grid::Dir>(d),
                        static_cast<double>(segs.size()));
    }
  }
}

}  // namespace rlcr::router
