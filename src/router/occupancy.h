// Region occupancy: which nets cross which regions in which direction, and
// how much wire each contributes. This is the bridge from global routing to
// the per-region SINO problems of Phase II and to LSK evaluation (Eq. 1).
//
// Conventions (consistent across the whole library):
//   - A net is "present" in (region, direction) when its route has at least
//     one boundary edge of that direction incident to the region; it then
//     occupies one track of that direction there.
//   - Its wire length inside the region is half the region span per
//     incident edge: a through-crossing (2 edges) spans the whole region, a
//     terminating segment (1 edge) half of it.
#pragma once

#include <cstdint>
#include <vector>

#include "grid/congestion.h"
#include "grid/region_grid.h"
#include "grid/tiled.h"
#include "router/route_types.h"

namespace rlcr::router {

/// One net's presence in one (region, direction).
struct Segment {
  std::int32_t net_index = -1;  ///< index into the RouterNet/NetRoute vectors
  double length_um = 0.0;
};

/// A (region, direction, length) reference from the net's point of view.
struct NetRegionRef {
  std::size_t region = 0;
  grid::Dir dir = grid::Dir::kHorizontal;
  double length_um = 0.0;
};

class Occupancy {
 public:
  Occupancy(const grid::RegionGrid& grid, const std::vector<NetRoute>& routes);

  const grid::RegionGrid& grid() const { return *grid_; }

  /// Nets occupying tracks of direction d in a region (empty for regions
  /// no route touches — unoccupied slots are never materialized; the
  /// per-region lists live in first-touch tiled storage, grid/tiled.h).
  const std::vector<Segment>& segments(std::size_t region, grid::Dir d) const {
    return by_region_[static_cast<std::size_t>(d)][region];
  }

  /// All (region, dir, length) entries of one net.
  const std::vector<NetRegionRef>& net_refs(std::size_t net_index) const {
    return by_net_[net_index];
  }

  std::size_t net_count() const { return by_net_.size(); }

  /// Total routed length of a net (sum over its refs).
  double net_length_um(std::size_t net_index) const;

  /// Write segment counts into a freshly constructed (all-zero) congestion
  /// map; shield counts are untouched, and unoccupied regions are left at
  /// the map's zero default rather than written (so tiled maps never
  /// materialize traffic-free tiles). Not a reset: reusing a map across
  /// routings would keep stale counts in regions the new routing misses.
  void fill_segments(grid::CongestionMap& cmap) const;

 private:
  const grid::RegionGrid* grid_;
  grid::TiledVec<std::vector<Segment>> by_region_[2];
  std::vector<std::vector<NetRegionRef>> by_net_;
};

}  // namespace rlcr::router
