#include "router/route_types.h"

#include <unordered_map>

#include "util/hash.h"

namespace rlcr::router {

std::uint64_t route_hash(const RoutingResult& res) {
  util::Fnv1a64 h;
  for (const NetRoute& r : res.routes) {
    h.i64(r.net_id);
    h.i64(static_cast<std::int64_t>(r.edges.size()));
    for (const GridEdge& e : r.edges) {
      h.i64(e.a.x);
      h.i64(e.a.y);
      h.i64(e.b.x);
      h.i64(e.b.y);
    }
  }
  return h.value();
}

double NetRoute::wirelength_um(const grid::RegionGrid& grid) const {
  double acc = 0.0;
  for (const GridEdge& e : edges) {
    acc += grid.span_um(e.dir());
  }
  return acc;
}

bool NetRoute::connects(const std::vector<geom::Point>& pins) const {
  if (pins.size() <= 1) return true;

  // Union-find over every point appearing in the route or the pin list.
  std::unordered_map<geom::Point, std::size_t> id;
  auto intern = [&](geom::Point p) {
    return id.emplace(p, id.size()).first->second;
  };
  for (const GridEdge& e : edges) {
    intern(e.a);
    intern(e.b);
  }
  for (const geom::Point& p : pins) intern(p);

  std::vector<std::size_t> parent(id.size());
  for (std::size_t i = 0; i < parent.size(); ++i) parent[i] = i;
  auto find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const GridEdge& e : edges) {
    const std::size_t a = find(id.at(e.a));
    const std::size_t b = find(id.at(e.b));
    if (a != b) parent[a] = b;
  }
  const std::size_t root = find(id.at(pins[0]));
  for (const geom::Point& p : pins) {
    if (find(id.at(p)) != root) return false;
  }
  return true;
}

}  // namespace rlcr::router
