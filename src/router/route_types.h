// Global-routing input/output types shared by the ID and maze routers.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"
#include "grid/region_grid.h"

namespace rlcr::router {

/// A net as the global router sees it: pins mapped to routing regions
/// (deduplicated), plus the sensitivity rate used for shield estimation.
struct RouterNet {
  std::int32_t id = -1;            ///< caller's net identifier
  std::vector<geom::Point> pins;   ///< distinct region coordinates; [0]=source
  double si = 0.0;                 ///< sensitivity rate S_i
};

/// An edge between two adjacent regions; canonical form has a <= b.
struct GridEdge {
  geom::Point a, b;

  grid::Dir dir() const {
    return a.y == b.y ? grid::Dir::kHorizontal : grid::Dir::kVertical;
  }
  friend constexpr bool operator==(const GridEdge&, const GridEdge&) = default;
};

/// Canonicalize so that a <= b (lexicographic).
inline GridEdge make_edge(geom::Point p, geom::Point q) {
  return (q < p) ? GridEdge{q, p} : GridEdge{p, q};
}

/// Hash for canonical grid edges. The combiner is order-sensitive and runs
/// the mix through a SplitMix64 finalizer, unlike the earlier
/// `h(a)*1000003 ^ h(b)` local helpers, whose XOR made symmetric pairs and
/// axis-translated edges collide systematically.
struct GridEdgeHash {
  std::size_t operator()(const GridEdge& e) const noexcept {
    const std::hash<geom::Point> h;
    std::uint64_t z = static_cast<std::uint64_t>(h(e.a));
    z ^= static_cast<std::uint64_t>(h(e.b)) + 0x9e3779b97f4a7c15ULL + (z << 6) +
         (z >> 2);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }
};

/// The routed tree of one net over the region graph.
struct NetRoute {
  std::int32_t net_id = -1;
  std::vector<GridEdge> edges;

  /// Wire length: each region-boundary crossing spans half of each adjacent
  /// region, i.e. one full region pitch in its direction.
  double wirelength_um(const grid::RegionGrid& grid) const;

  /// True if `edges` connect all of `pins` (single component); used by
  /// tests and by the flow's internal sanity checks.
  bool connects(const std::vector<geom::Point>& pins) const;
};

struct RoutingStats {
  std::size_t edges_initial = 0;
  std::size_t edges_deleted = 0;
  std::size_t edges_locked = 0;
  std::size_t reinserts = 0;
  std::size_t prerouted_nets = 0;
  /// Nets whose base topology silently degraded from iterated 1-Steiner to
  /// plain RMST because their pin count exceeds
  /// rsmt::SteinerOptions::max_pins_exact. Counted once per non-trivial net
  /// during the serial sizing pass, so the value is deterministic and
  /// independent of tree-cache hits or thread count. High values mean the
  /// kBalanced/kBest profiles (which keep improving such nets) have the
  /// most headroom.
  std::size_t rsmt_fallback_nets = 0;
  /// Deletion-loop speculation counters (parallel/speculate.h; see
  /// IdRouterOptions::speculate_batch): BFS-bound candidates fanned out,
  /// memoized verdicts the serial commit order consumed after validation,
  /// and invalidated memos recomputed serially. All zero on the serial
  /// path; like runtime_s they vary with the run configuration and are
  /// never part of route_hash().
  std::size_t spec_attempted = 0;
  std::size_t spec_committed = 0;
  std::size_t spec_replayed = 0;
  double runtime_s = 0.0;
};

struct RoutingResult {
  std::vector<NetRoute> routes;  ///< parallel to the input net vector
  double total_wirelength_um = 0.0;
  RoutingStats stats;
};

/// FNV-1a over every net's (id, edge count, edge list): the golden-seed
/// regression hash pinned by the router/integration/session tests, and the
/// fidelity oracle of the persistent artifact store (store/serial.cpp
/// embeds it at save time and re-verifies it after load). Hash values are
/// platform-stable (util/hash.h folds little-endian).
std::uint64_t route_hash(const RoutingResult& res);

}  // namespace rlcr::router
