#include "rsmt/rmst.h"

#include <limits>
#include <vector>

namespace rlcr::rsmt {

Tree rmst(std::span<const geom::Point> pins) {
  Tree t;
  t.nodes.assign(pins.begin(), pins.end());
  t.pin_count = pins.size();
  const std::size_t n = pins.size();
  if (n < 2) return t;

  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max();
  std::vector<std::int64_t> best(n, kInf);
  std::vector<std::int32_t> parent(n, -1);
  std::vector<char> in_tree(n, 0);

  best[0] = 0;
  for (std::size_t iter = 0; iter < n; ++iter) {
    // Pick the cheapest unattached node.
    std::size_t u = n;
    std::int64_t u_cost = kInf;
    for (std::size_t i = 0; i < n; ++i) {
      if (!in_tree[i] && best[i] < u_cost) {
        u = i;
        u_cost = best[i];
      }
    }
    in_tree[u] = 1;
    if (parent[u] >= 0) {
      t.edges.emplace_back(parent[u], static_cast<std::int32_t>(u));
    }
    for (std::size_t v = 0; v < n; ++v) {
      if (in_tree[v]) continue;
      const std::int64_t d = geom::manhattan(t.nodes[u], t.nodes[v]);
      if (d < best[v]) {
        best[v] = d;
        parent[v] = static_cast<std::int32_t>(u);
      }
    }
  }
  return t;
}

std::int64_t rmst_length(std::span<const geom::Point> pins) {
  return rmst(pins).length();
}

}  // namespace rlcr::rsmt
