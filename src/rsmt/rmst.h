// Rectilinear minimum spanning tree (Prim's algorithm under the L1 metric).
#pragma once

#include <span>

#include "rsmt/tree.h"

namespace rlcr::rsmt {

/// Build the rectilinear MST over `pins`. Duplicate points are allowed
/// (they connect at zero cost). O(n^2), adequate for net degrees <= ~100.
Tree rmst(std::span<const geom::Point> pins);

/// MST length without materializing the tree.
std::int64_t rmst_length(std::span<const geom::Point> pins);

}  // namespace rlcr::rsmt
