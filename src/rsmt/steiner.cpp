#include "rsmt/steiner.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "rsmt/rmst.h"

namespace rlcr::rsmt {

namespace {

/// MST length over an explicit point set (Prim, O(n^2)).
std::int64_t mst_length(const std::vector<geom::Point>& pts) {
  const std::size_t n = pts.size();
  if (n < 2) return 0;
  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max();
  std::vector<std::int64_t> best(n, kInf);
  std::vector<char> used(n, 0);
  best[0] = 0;
  std::int64_t total = 0;
  for (std::size_t iter = 0; iter < n; ++iter) {
    std::size_t u = n;
    std::int64_t u_cost = kInf;
    for (std::size_t i = 0; i < n; ++i) {
      if (!used[i] && best[i] < u_cost) {
        u = i;
        u_cost = best[i];
      }
    }
    used[u] = 1;
    total += (u_cost == kInf ? 0 : u_cost);
    for (std::size_t v = 0; v < n; ++v) {
      if (used[v]) continue;
      best[v] = std::min(best[v], geom::manhattan(pts[u], pts[v]));
    }
  }
  return total;
}

}  // namespace

Tree rsmt(std::span<const geom::Point> pins, const SteinerOptions& options) {
  if (pins.size() <= 2 || pins.size() > options.max_pins_exact) {
    return rmst(pins);
  }

  std::vector<geom::Point> pts(pins.begin(), pins.end());
  const std::size_t pin_count = pts.size();
  std::int64_t current = mst_length(pts);

  for (std::size_t round = 0; round < options.max_steiner_points; ++round) {
    // Hanan candidates: cross products of existing x and y coordinates.
    std::vector<std::int32_t> xs, ys;
    xs.reserve(pts.size());
    ys.reserve(pts.size());
    for (const auto& p : pts) {
      xs.push_back(p.x);
      ys.push_back(p.y);
    }
    std::sort(xs.begin(), xs.end());
    xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
    std::sort(ys.begin(), ys.end());
    ys.erase(std::unique(ys.begin(), ys.end()), ys.end());

    std::int64_t best_len = current;
    geom::Point best_pt{};
    bool found = false;

    std::vector<geom::Point> trial = pts;
    trial.push_back({});
    for (std::int32_t x : xs) {
      for (std::int32_t y : ys) {
        const geom::Point cand{x, y};
        bool duplicate = false;
        for (const auto& p : pts) {
          if (p == cand) {
            duplicate = true;
            break;
          }
        }
        if (duplicate) continue;
        trial.back() = cand;
        const std::int64_t len = mst_length(trial);
        if (len < best_len) {
          best_len = len;
          best_pt = cand;
          found = true;
        }
      }
    }
    if (!found) break;
    pts.push_back(best_pt);
    current = best_len;
  }

  // Materialize the MST over pins + chosen Steiner points, then prune
  // Steiner leaves (they only add length).
  Tree t = rmst(pts);
  t.pin_count = pin_count;

  bool pruned = true;
  while (pruned) {
    pruned = false;
    std::vector<int> degree(t.nodes.size(), 0);
    for (const auto& [a, b] : t.edges) {
      ++degree[static_cast<std::size_t>(a)];
      ++degree[static_cast<std::size_t>(b)];
    }
    for (std::size_t v = pin_count; v < t.nodes.size(); ++v) {
      if (degree[v] == 1) {
        // Remove the single incident edge; the node stays but is harmless.
        auto it = std::find_if(t.edges.begin(), t.edges.end(), [&](const auto& e) {
          return static_cast<std::size_t>(e.first) == v ||
                 static_cast<std::size_t>(e.second) == v;
        });
        if (it != t.edges.end()) {
          t.edges.erase(it);
          pruned = true;
        }
      }
    }
  }

  // Drop now-isolated Steiner nodes and reindex.
  std::vector<int> degree(t.nodes.size(), 0);
  for (const auto& [a, b] : t.edges) {
    ++degree[static_cast<std::size_t>(a)];
    ++degree[static_cast<std::size_t>(b)];
  }
  std::vector<std::int32_t> remap(t.nodes.size(), -1);
  Tree out;
  out.pin_count = pin_count;
  for (std::size_t v = 0; v < t.nodes.size(); ++v) {
    if (v < pin_count || degree[v] > 0) {
      remap[v] = static_cast<std::int32_t>(out.nodes.size());
      out.nodes.push_back(t.nodes[v]);
    }
  }
  for (const auto& [a, b] : t.edges) {
    out.edges.emplace_back(remap[static_cast<std::size_t>(a)],
                           remap[static_cast<std::size_t>(b)]);
  }
  return out;
}

std::int64_t rsmt_length(std::span<const geom::Point> pins,
                         const SteinerOptions& options) {
  return rsmt(pins, options).length();
}

}  // namespace rlcr::rsmt
