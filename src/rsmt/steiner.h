// Rectilinear Steiner minimum tree heuristic: iterated 1-Steiner
// (Kahng-Robins). Repeatedly adds the Hanan-grid point that most reduces
// the MST length until no candidate helps. Produces trees within a few
// percent of optimal for the small-degree nets that dominate real netlists.
#pragma once

#include <span>

#include "rsmt/tree.h"

namespace rlcr::rsmt {

struct SteinerOptions {
  /// Nets with more pins than this skip the 1-Steiner iteration and return
  /// the plain RMST (the iteration is O(n^4) in the worst case).
  std::size_t max_pins_exact = 16;
  /// Upper bound on Steiner points added (defensive; rarely reached).
  std::size_t max_steiner_points = 32;
};

/// Heuristic RSMT over `pins`.
Tree rsmt(std::span<const geom::Point> pins, const SteinerOptions& options = {});

/// Length-only convenience used by the router's f(WL) normalization.
std::int64_t rsmt_length(std::span<const geom::Point> pins,
                         const SteinerOptions& options = {});

}  // namespace rlcr::rsmt
