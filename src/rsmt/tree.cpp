#include "rsmt/tree.h"

#include <vector>

namespace rlcr::rsmt {

std::int64_t Tree::length() const {
  std::int64_t acc = 0;
  for (const auto& [a, b] : edges) {
    acc += geom::manhattan(nodes[static_cast<std::size_t>(a)],
                           nodes[static_cast<std::size_t>(b)]);
  }
  return acc;
}

bool Tree::connected() const {
  if (nodes.empty()) return true;
  std::vector<std::vector<std::int32_t>> adj(nodes.size());
  for (const auto& [a, b] : edges) {
    adj[static_cast<std::size_t>(a)].push_back(b);
    adj[static_cast<std::size_t>(b)].push_back(a);
  }
  std::vector<char> seen(nodes.size(), 0);
  std::vector<std::int32_t> stack{0};
  seen[0] = 1;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const std::int32_t v = stack.back();
    stack.pop_back();
    for (std::int32_t w : adj[static_cast<std::size_t>(v)]) {
      if (!seen[static_cast<std::size_t>(w)]) {
        seen[static_cast<std::size_t>(w)] = 1;
        ++visited;
        stack.push_back(w);
      }
    }
  }
  return visited == nodes.size();
}

bool Tree::is_tree() const {
  if (nodes.empty()) return true;
  return edges.size() == nodes.size() - 1 && connected();
}

}  // namespace rlcr::rsmt
