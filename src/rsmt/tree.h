// Rectilinear spanning/Steiner tree representation.
//
// The router uses these trees twice: the estimated RSMT length normalizes
// the wire-length term f(WL) of the ID weight function (paper Eq. 2), and
// the crosstalk budgeter of Phase I divides each sink's LSK budget by the
// source-sink Manhattan distance.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "geom/point.h"

namespace rlcr::rsmt {

/// A tree over grid points. The first `pin_count` nodes are the original
/// pins (in input order); any further nodes are Steiner points.
struct Tree {
  std::vector<geom::Point> nodes;
  std::vector<std::pair<std::int32_t, std::int32_t>> edges;  // node indices
  std::size_t pin_count = 0;

  /// Total Manhattan length of all edges.
  std::int64_t length() const;

  /// True when the edges connect all nodes into a single component.
  bool connected() const;

  /// True when |edges| == |nodes| - 1 and connected (i.e., a tree).
  bool is_tree() const;
};

}  // namespace rlcr::rsmt
