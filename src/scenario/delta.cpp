// Incremental netlist-delta engine (see delta.h for the contract). The
// FlowSession::apply_delta member is defined here — the session header
// only forward-declares the scenario types — which keeps the delta
// machinery out of core/ while the DeltaEngine friend retains access to
// the session's caches.
//
// Why each patched artifact is bit-identical to a from-scratch run:
//
//   routing — the router's information flow is regional: a pool net reads
//   and writes only (region, dir) statistics inside its own pin bounding
//   box, pre-routed nets write fixed presence derived from their own pins
//   alone, and the deletion heap's (key, id) tie-break makes each
//   bbox-connected component's deletion sequence invariant under the
//   presence of other components. So re-routing the changed nets plus the
//   bbox-connected closure of pool nets around them (seeded by the
//   changed nets' old and new bboxes), with every pre-routed net kept and
//   every unaffected pool net emptied to a no-op, reproduces the affected
//   nets' routes exactly; unaffected pool nets splice their old routes.
//   The artifact then rebuilds through derive_routing_artifact — the same
//   derivation path a fresh route() uses — on routes identical to a full
//   run's, so occupancy, segment congestion, and critical paths match bit
//   for bit.
//
//   budget — per-net Kth is a pure per-net function (O(nets) table
//   lookups); it recomputes through the stage's own code path.
//
//   solve — a (region, dir) SINO solution is a pure function of the
//   region's segment list, its members' Kth / critical-path lengths / S_i,
//   and the pairwise sensitivity draws, all of which slot preservation
//   keeps index-stable. Regions whose inputs are bitwise unchanged reuse
//   their old solution verbatim; dirty regions rebuild through
//   build_region_solution and re-solve with the historical per-region
//   modes and annealing seeds. The LSK/shield/noise accumulation then
//   replays over every region in the historical (region, dir) order, so
//   the floating-point sums match a from-scratch solve exactly.
//
//   refine — Phase III orders its work by global worst-violator, which a
//   regional patch cannot reproduce; refine artifacts are invalidated and
//   recompute from the (bit-identical) patched solve.
#include "scenario/delta.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "core/budget.h"
#include "core/session.h"
#include "geom/rect.h"
#include "router/id_router.h"
#include "router/occupancy.h"
#include "sino/batch.h"
#include "sino/evaluator.h"
#include "store/artifact_store.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace rlcr::scenario {

namespace {

std::vector<gsino::PinUpdate> to_updates(const NetlistDelta& delta) {
  std::vector<gsino::PinUpdate> ups;
  ups.reserve(delta.changes.size());
  for (const NetChange& c : delta.changes) {
    gsino::PinUpdate u;
    u.net =
        c.kind == NetChange::Kind::kAdd ? gsino::PinUpdate::kAppend : c.net;
    if (c.kind != NetChange::Kind::kRemove) u.pins = c.pins;
    ups.push_back(std::move(u));
  }
  return ups;
}

}  // namespace

void apply_delta(netlist::Netlist& design, const NetlistDelta& delta) {
  for (const NetChange& c : delta.changes) {
    switch (c.kind) {
      case NetChange::Kind::kAdd: {
        netlist::Net net;
        net.name = c.name;
        for (const geom::PointF& p : c.pins) {
          net.pins.push_back(netlist::Pin{p, netlist::kNoCell});
        }
        design.add_net(std::move(net));
        break;
      }
      case NetChange::Kind::kRemove:
        design.net(static_cast<netlist::NetId>(c.net)).pins.clear();
        break;
      case NetChange::Kind::kRepin: {
        netlist::Net& net = design.net(static_cast<netlist::NetId>(c.net));
        net.pins.clear();
        for (const geom::PointF& p : c.pins) {
          net.pins.push_back(netlist::Pin{p, netlist::kNoCell});
        }
        break;
      }
    }
  }
}

gsino::RoutingProblem apply_delta(const gsino::RoutingProblem& problem,
                                  const NetlistDelta& delta) {
  return problem.with_pin_updates(to_updates(delta));
}

NetlistDelta random_delta(const gsino::RoutingProblem& problem,
                          std::uint64_t seed, std::size_t changes) {
  NetlistDelta delta;
  util::Xoshiro256 rng(util::SplitMix64::mix2(seed, 0xD317A));
  const grid::RegionGrid& g = problem.grid();
  const double w = g.chip_w_um(), h = g.chip_h_um();
  const std::size_t count = problem.net_count();

  // Clustered, ECO-like pin sets: a window center uniform in the outline,
  // pins uniform inside the (clamped) window. Chip-spanning nets would
  // make every delta's bbox closure percolate across the whole pool —
  // real ECOs are local, and locality is what gives incrementality its
  // compute-avoided headroom.
  auto random_pins = [&rng, w, h](std::size_t n_pins) {
    const double half_w = 0.15 * w, half_h = 0.15 * h;
    const double cx = rng.uniform(0.0, w), cy = rng.uniform(0.0, h);
    const double x0 = std::max(0.0, cx - half_w);
    const double x1 = std::min(w, cx + half_w);
    const double y0 = std::max(0.0, cy - half_h);
    const double y1 = std::min(h, cy + half_h);
    std::vector<geom::PointF> pins;
    pins.reserve(n_pins);
    for (std::size_t i = 0; i < n_pins; ++i) {
      pins.push_back(geom::PointF{rng.uniform(x0, x1), rng.uniform(y0, y1)});
    }
    return pins;
  };
  auto random_slot = [&rng, count] {
    return std::min(count - 1,
                    static_cast<std::size_t>(rng.uniform() *
                                             static_cast<double>(count)));
  };

  for (std::size_t i = 0; i < changes; ++i) {
    NetChange c;
    const double kind = rng.uniform();
    const std::size_t n_pins = 2 + static_cast<std::size_t>(rng.uniform() * 4.0);
    if (kind < 0.25 || count == 0) {
      c.kind = NetChange::Kind::kAdd;
      c.name = "delta_add_" + std::to_string(i);
      c.pins = random_pins(n_pins);
    } else if (kind < 0.45) {
      c.kind = NetChange::Kind::kRemove;
      c.net = random_slot();
    } else {
      c.kind = NetChange::Kind::kRepin;
      c.net = random_slot();
      c.pins = random_pins(n_pins);
    }
    delta.changes.push_back(std::move(c));
  }
  return delta;
}

// ---------------------------------------------------------------- engine

namespace {

/// Path-compressed union-find over {pool nets} ∪ {the seed node}.
struct UnionFind {
  std::vector<std::size_t> parent;
  explicit UnionFind(std::size_t n) : parent(n) {
    for (std::size_t i = 0; i < n; ++i) parent[i] = i;
  }
  std::size_t find(std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent[find(a)] = find(b); }
};

/// The router's pass-A classification, replicated exactly: trivial nets
/// route nothing, huge-bbox nets are pre-routed on their RSMT, the rest
/// go through the deletion loop ("pool").
struct NetClass {
  geom::Rect bbox;
  bool trivial = false;
  bool pool = false;
};

NetClass classify(const router::RouterNet& net, std::size_t huge_threshold) {
  NetClass c;
  for (const geom::Point& p : net.pins) c.bbox.expand(p);
  if (net.pins.size() < 2 || c.bbox.cell_count() <= 1) {
    c.trivial = true;
    return c;
  }
  if (static_cast<std::size_t>(c.bbox.cell_count()) > huge_threshold) {
    return c;  // pre-routed
  }
  c.pool = true;
  return c;
}

constexpr std::size_t kUnowned = static_cast<std::size_t>(-1);

/// Union `node` with every prior claimant of the rect's cells. Two rects
/// intersect iff they share at least one cell, so this yields exactly the
/// rect-intersection connectivity the closure needs.
void claim_rect(UnionFind& uf, std::vector<std::size_t>& owner,
                const grid::RegionGrid& g, const geom::Rect& r,
                std::size_t node) {
  if (r.empty()) return;
  for (std::int32_t y = r.lo.y; y <= r.hi.y; ++y) {
    for (std::int32_t x = r.lo.x; x <= r.hi.x; ++x) {
      std::size_t& o = owner[g.index(geom::Point{x, y})];
      if (o == kUnowned) {
        o = node;
      } else {
        uf.unite(node, o);
      }
    }
  }
}

struct RoutePatch {
  std::shared_ptr<gsino::RoutingArtifact> artifact;
  std::size_t rerouted = 0;  ///< pool nets the sub-run re-routed
  std::size_t reused = 0;    ///< pool nets spliced from the old artifact
};

RoutePatch patch_routing(const gsino::RoutingProblem& oldp,
                         const gsino::RoutingProblem& newp,
                         const gsino::RoutingArtifact& oldart,
                         const std::vector<std::size_t>& changed) {
  const router::IdRouterOptions& opt = oldart.options;
  const grid::RegionGrid& g = newp.grid();
  const std::vector<router::RouterNet>& nets = newp.router_nets();
  const std::size_t count = nets.size();

  std::vector<NetClass> cls(count);
  for (std::size_t n = 0; n < count; ++n) {
    cls[n] = classify(nets[n], opt.huge_net_bbox_threshold);
  }

  // Affected closure: pool nets bbox-connected (transitively) to any
  // changed net's old or new bbox. Old bboxes matter because a net that
  // interacted with a changed net's *previous* shape can re-route even
  // when the new shape moved away; unchanged pre-routed/trivial nets are
  // not connectivity carriers — their contribution to the region
  // statistics is independent of every pool route.
  UnionFind uf(count + 1);
  const std::size_t kSeedNode = count;
  std::vector<std::size_t> owner(g.region_count(), kUnowned);
  for (const std::size_t c : changed) {
    if (c < count) claim_rect(uf, owner, g, cls[c].bbox, kSeedNode);
    if (c < oldp.net_count()) {
      const NetClass oc =
          classify(oldp.router_nets()[c], opt.huge_net_bbox_threshold);
      claim_rect(uf, owner, g, oc.bbox, kSeedNode);
    }
  }
  for (std::size_t n = 0; n < count; ++n) {
    if (cls[n].pool) claim_rect(uf, owner, g, cls[n].bbox, n);
  }

  // Sub-run nets: every pre-routed net stays (cheap, deterministic, and
  // its fixed presence is read by affected pool nets); unaffected pool
  // nets empty to trivial no-ops so the deletion loop only ever sees the
  // affected components — whose projected sequence the tie-break contract
  // keeps identical to the full run's.
  RoutePatch out;
  std::vector<router::RouterNet> subnets = nets;
  std::vector<char> affected(count, 0);
  const std::size_t seed_root = uf.find(kSeedNode);
  for (std::size_t n = 0; n < count; ++n) {
    if (!cls[n].pool) continue;
    if (uf.find(n) == seed_root) {
      affected[n] = 1;
      ++out.rerouted;
    } else {
      subnets[n].pins.clear();
      ++out.reused;
    }
  }

  const router::IdRouter router(g, newp.nss(), opt);
  router::RoutingResult sub = router.route(subnets);

  // Splice, then recompute the wirelength sum in net order — the same
  // accumulation order as a full run's collect phase.
  auto routing = std::make_shared<router::RoutingResult>();
  routing->routes.resize(count);
  routing->stats = sub.stats;  // the work actually performed; never hashed
  double total = 0.0;
  for (std::size_t n = 0; n < count; ++n) {
    if (cls[n].pool && !affected[n]) {
      routing->routes[n] = oldart.routing->routes[n];
    } else {
      routing->routes[n] = std::move(sub.routes[n]);
    }
    total += routing->routes[n].wirelength_um(g);
  }
  routing->total_wirelength_um = total;

  out.artifact = gsino::derive_routing_artifact(newp, opt, newp.params().seed,
                                                std::move(routing));
  return out;
}

/// Budget through the stage's own compute path (see
/// FlowSession::budget): O(nets) table lookups, trivially bit-identical.
std::shared_ptr<gsino::BudgetArtifact> recompute_budget(
    const gsino::RoutingProblem& p, gsino::BudgetRule rule, double bound_v,
    double margin, const gsino::RoutingArtifact* phase1) {
  auto art = std::make_shared<gsino::BudgetArtifact>();
  art->rule = rule;
  art->bound_v = bound_v;
  art->margin = margin;
  const gsino::CrosstalkBudgeter budgeter(p.lsk_table(), bound_v);
  auto kth = std::make_shared<std::vector<double>>();
  if (rule == gsino::BudgetRule::kRoutedLength) {
    kth->resize(p.net_count());
    for (std::size_t n = 0; n < p.net_count(); ++n) {
      const double routed_um =
          std::max((*phase1->critical_path_um)[n], p.le_um()[n]);
      (*kth)[n] = budgeter.kth_from_length(routed_um);
    }
  } else {
    *kth = budgeter.uniform_kth(p);
    if (rule == gsino::BudgetRule::kManhattanMargin) {
      for (double& k : *kth) k *= margin;
    }
  }
  art->kth = std::move(kth);
  return art;
}

struct SolvePatch {
  std::shared_ptr<gsino::RegionSolveArtifact> artifact;
  std::size_t solved = 0;  ///< dirty non-empty (region, dir) recomputed
  std::size_t reused = 0;  ///< clean non-empty (region, dir) carried over
};

bool same_bits(double a, double b) {
  std::uint64_t ua, ub;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  return ua == ub;
}

SolvePatch patch_solve(
    const gsino::RoutingProblem& p, const gsino::RegionSolveArtifact& oldart,
    const std::shared_ptr<const gsino::RoutingArtifact>& phase1,
    const std::shared_ptr<const gsino::BudgetArtifact>& budget) {
  SolvePatch out;
  auto art = std::make_shared<gsino::RegionSolveArtifact>();
  art->kind = oldart.kind;
  art->annealed = oldart.annealed;
  art->phase1 = phase1;
  art->budget = budget;

  const router::Occupancy& old_occ = *oldart.phase1->occupancy;
  const router::Occupancy& new_occ = *phase1->occupancy;
  const gsino::PathIndex& old_paths = *oldart.phase1->paths;
  const gsino::PathIndex& new_paths = *phase1->paths;
  const std::vector<double>& old_kth = *oldart.budget->kth;
  const std::vector<double>& new_kth = *budget->kth;

  // A (region, dir) is clean iff everything build_region_solution reads
  // there is bitwise unchanged: the segment list (members and lengths),
  // every member's Kth and critical-path length. Member S_i and the
  // pairwise sensitivity draws are index-stable under slot preservation,
  // so an unchanged member list implies unchanged values for both. Clean
  // regions reuse their solved solution verbatim (the solvers are pure
  // per instance, with per-region seeds keyed on the member list); dirty
  // regions rebuild and re-solve below.
  const std::size_t regions = p.grid().region_count();
  const std::size_t sol_count = regions * 2;
  auto solutions =
      std::make_shared<std::vector<gsino::RegionSolution>>(sol_count);
  std::vector<std::size_t> dirty;
  for (std::size_t si = 0; si < sol_count; ++si) {
    const std::size_t r = gsino::sol_region(si);
    const grid::Dir d = gsino::sol_dir(si);
    const auto& olds = old_occ.segments(r, d);
    const auto& news = new_occ.segments(r, d);
    bool clean = olds.size() == news.size();
    for (std::size_t i = 0; clean && i < news.size(); ++i) {
      const auto n = static_cast<std::size_t>(news[i].net_index);
      clean = olds[i].net_index == news[i].net_index &&
              same_bits(olds[i].length_um, news[i].length_um) &&
              n < old_kth.size() && same_bits(old_kth[n], new_kth[n]) &&
              same_bits(old_paths.length_um(n, r, d),
                        new_paths.length_um(n, r, d));
    }
    if (clean) {
      (*solutions)[si] = (*oldart.solutions)[si];
      if (!news.empty()) ++out.reused;
    } else {
      (*solutions)[si] =
          gsino::build_region_solution(p, new_occ, r, d, new_kth, new_paths);
      dirty.push_back(si);
      if (!news.empty()) ++out.solved;
    }
  }

  // Solve the dirty instances exactly as solve_regions does: same modes,
  // same historical per-region annealing seeds, through the same batch
  // driver (each solve is a pure function of its instance).
  std::vector<sino::SinoBatchItem> items(dirty.size());
  for (std::size_t k = 0; k < dirty.size(); ++k) {
    const gsino::RegionSolution& sol = (*solutions)[dirty[k]];
    if (sol.empty()) continue;
    sino::SinoBatchItem& item = items[k];
    item.instance = &sol.instance;
    if (art->kind == gsino::FlowKind::kIdNo) {
      item.mode = sino::SinoSolveMode::kNetOrder;
    } else if (art->annealed) {
      item.mode = sino::SinoSolveMode::kGreedyAnneal;
      item.anneal_seed = p.params().seed ^ (sol.net_index.front() * 977u);
      item.anneal_iterations = p.params().anneal_iterations;
    } else {
      item.mode = sino::SinoSolveMode::kGreedy;
    }
  }
  sino::SinoBatchOptions bopt;
  bopt.threads = p.params().threads;
  std::vector<sino::SinoBatchResult> solved =
      sino::solve_batch(items, p.keff(), bopt);
  for (std::size_t k = 0; k < dirty.size(); ++k) {
    gsino::RegionSolution& sol = (*solutions)[dirty[k]];
    if (sol.empty()) continue;
    sol.slots = std::move(solved[k].slots);
    sol.ki = std::move(solved[k].ki);
  }

  // Replay the LSK/shield accumulation and the noise pass over every
  // region in the historical (region, then dir) order: identical values
  // in identical order means identical floating-point sums.
  auto net_lsk = std::make_shared<std::vector<double>>(p.net_count(), 0.0);
  auto net_noise = std::make_shared<std::vector<double>>(p.net_count(), 0.0);
  auto congestion = std::make_shared<grid::CongestionMap>(*phase1->segments);
  for (std::size_t r = 0; r < regions; ++r) {
    for (grid::Dir d : grid::kBothDirs) {
      const std::size_t si = gsino::sol_index_of(r, d);
      const gsino::RegionSolution& sol = (*solutions)[si];
      if (sol.empty()) continue;
      for (std::size_t i = 0; i < sol.net_index.size(); ++i) {
        (*net_lsk)[sol.net_index[i]] += sol.path_len_mm[i] * sol.ki[i];
      }
      congestion->set_shields(
          r, d,
          static_cast<double>(sino::SinoEvaluator::shield_count(sol.slots)));
    }
  }
  const auto& table = p.lsk_table();
  art->violating = 0;
  for (std::size_t n = 0; n < net_lsk->size(); ++n) {
    (*net_noise)[n] = table.voltage((*net_lsk)[n]);
    if ((*net_noise)[n] > budget->bound_v + 1e-9) ++art->violating;
  }

  art->solutions = std::move(solutions);
  art->net_lsk = std::move(net_lsk);
  art->net_noise = std::move(net_noise);
  art->congestion = std::move(congestion);
  out.artifact = std::move(art);
  return out;
}

}  // namespace

/// Friend of FlowSession (core/session.h): patches the session's caches
/// in place and swaps it onto the mutated problem.
class DeltaEngine {
 public:
  static DeltaReport apply(gsino::FlowSession& s, const NetlistDelta& delta);
};

DeltaReport DeltaEngine::apply(gsino::FlowSession& s,
                               const NetlistDelta& delta) {
  util::Stopwatch watch;
  DeltaReport report;
  report.changed_nets = delta.changes.size();

  const gsino::RoutingProblem& oldp = *s.problem_;
  auto newp =
      std::make_shared<const gsino::RoutingProblem>(apply_delta(oldp, delta));
  report.problem = newp;

  // Changed slots in the new slot space (kAdd slots number in change
  // order, matching with_pin_updates' append order).
  std::vector<std::size_t> changed;
  changed.reserve(delta.changes.size());
  std::size_t next_append = oldp.net_count();
  for (const NetChange& c : delta.changes) {
    changed.push_back(c.kind == NetChange::Kind::kAdd ? next_append++ : c.net);
  }

  // Patch every cached routing artifact (one per router profile), keeping
  // an old->new map so downstream entries re-key onto the patched inputs.
  // Every old artifact whose address is used as a map key stays alive
  // until its last lookup: budget entries pin their phase1, solve entries'
  // artifacts pin both their inputs.
  std::unordered_map<const gsino::RoutingArtifact*,
                     std::shared_ptr<const gsino::RoutingArtifact>>
      routes;
  for (auto& e : s.route_cache_) {
    util::Stopwatch stage_watch;
    RoutePatch rp = patch_routing(oldp, *newp, *e.artifact, changed);
    rp.artifact->seconds = stage_watch.seconds();
    report.nets_rerouted += rp.rerouted;
    report.nets_reused += rp.reused;
    ++report.routes_patched;
    if (s.options_.store) {
      s.options_.store->put_routing(store::routing_key(*newp, e.options),
                                    *rp.artifact);
    }
    routes.emplace(e.artifact.get(), rp.artifact);
    e.artifact = std::move(rp.artifact);
  }

  // Budgets recompute through the stage path (cheap); entries whose
  // routing input is no longer cached drop and recompute on demand.
  std::unordered_map<const gsino::BudgetArtifact*,
                     std::shared_ptr<const gsino::BudgetArtifact>>
      budgets;
  for (auto it = s.budget_cache_.begin(); it != s.budget_cache_.end();) {
    auto& e = *it;
    std::shared_ptr<const gsino::RoutingArtifact> new_phase1;
    if (e.phase1) {
      const auto f = routes.find(e.phase1.get());
      if (f == routes.end()) {
        it = s.budget_cache_.erase(it);
        continue;
      }
      new_phase1 = f->second;
    }
    util::Stopwatch stage_watch;
    auto art = recompute_budget(*newp, e.rule, e.bound_v, e.margin,
                                new_phase1.get());
    art->seconds = stage_watch.seconds();
    if (s.options_.store) {
      const std::uint64_t rk =
          new_phase1 ? store::routing_key(*newp, new_phase1->options) : 0;
      s.options_.store->put_budget(
          store::budget_key(*newp, e.rule, e.bound_v, e.margin, rk), *art);
    }
    budgets.emplace(e.artifact.get(), art);
    e.phase1 = std::move(new_phase1);
    e.artifact = std::move(art);
    ++it;
  }

  // Phase II solves patch per dirty (region, dir); entries whose inputs
  // are no longer cached drop and recompute on demand.
  for (auto it = s.solve_cache_.begin(); it != s.solve_cache_.end();) {
    auto& e = *it;
    const auto fr = routes.find(e.phase1);
    const auto fb = budgets.find(e.budget);
    if (fr == routes.end() || fb == budgets.end()) {
      it = s.solve_cache_.erase(it);
      continue;
    }
    util::Stopwatch stage_watch;
    SolvePatch sp = patch_solve(*newp, *e.artifact, fr->second, fb->second);
    sp.artifact->seconds = stage_watch.seconds();
    report.regions_solved += sp.solved;
    report.regions_reused += sp.reused;
    if (s.options_.store) {
      const std::uint64_t routing_k =
          store::routing_key(*newp, sp.artifact->phase1->options);
      const gsino::BudgetRule rule = sp.artifact->budget->rule;
      const std::uint64_t budget_k = store::budget_key(
          *newp, rule, sp.artifact->budget->bound_v,
          sp.artifact->budget->margin,
          rule == gsino::BudgetRule::kRoutedLength ? routing_k : 0);
      s.options_.store->put_region_solve(
          store::solve_key(*newp, sp.artifact->kind, sp.artifact->annealed,
                           routing_k, budget_k),
          *sp.artifact);
    }
    e.phase1 = fr->second.get();
    e.budget = fb->second.get();
    e.artifact = std::move(sp.artifact);
    ++it;
  }

  // Phase III has no regional patch (global worst-violator ordering):
  // invalidate; the next refine() recomputes from the patched solve.
  s.refine_cache_.clear();

  s.counters_.delta_applies += 1;
  s.counters_.delta_nets_rerouted += report.nets_rerouted;
  s.counters_.delta_nets_reused += report.nets_reused;
  s.counters_.delta_regions_solved += report.regions_solved;
  s.counters_.delta_regions_reused += report.regions_reused;

  // Swap the session onto the mutated problem; retire the previous owned
  // problem (artifacts hold pointers into their problem's grid).
  if (s.owned_problem_) {
    s.retired_problems_.push_back(std::move(s.owned_problem_));
  }
  s.owned_problem_ = newp;
  s.problem_ = s.owned_problem_.get();

  report.seconds = watch.seconds();
  return report;
}

}  // namespace rlcr::scenario

namespace rlcr::gsino {

scenario::DeltaReport FlowSession::apply_delta(
    const scenario::NetlistDelta& delta) {
  return scenario::DeltaEngine::apply(*this, delta);
}

}  // namespace rlcr::gsino
