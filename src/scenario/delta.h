// Incremental netlist deltas: mutate a handful of nets and re-route only
// what can change, instead of recomputing Phase I.
//
// A NetlistDelta is a batch of slot-preserving net mutations — add,
// remove, re-pin — applied two ways that must agree bit for bit:
//
//   - apply_delta(Netlist&, delta) mutates a design in place; building a
//     fresh RoutingProblem from it is the from-scratch arm of the
//     differential contract.
//   - apply_delta(const RoutingProblem&, delta) produces the mutated
//     problem directly (RoutingProblem::with_pin_updates); it shares the
//     constructor's per-net derivation, so the two arms yield equal
//     fingerprints.
//
// FlowSession::apply_delta(delta) (declared in core/session.h, defined in
// delta.cpp through the DeltaEngine friend) is the incremental arm: it
// swaps the session onto the mutated problem and patches every cached
// artifact — re-routing only the delta's nets plus the bbox-connected
// closure of pool nets around them, rebuilding only dirty Phase II
// regions — so that each patched artifact is bit-identical to what a
// from-scratch session computes. Slot preservation is what makes that
// possible: removal empties a slot instead of shifting indices, so
// per-net sensitivities, pairwise-sensitivity draws, and the annealing
// stream seeds of every untouched net keep their values.
//
// tests/delta_differential_test.cpp pins the contract: over seeded random
// delta chains, at threads {1, 8}, with and without the persistent store,
// under tiled and dense region storage, every incremental state matches
// the from-scratch run's route hash and state fingerprint exactly.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/problem.h"
#include "geom/point.h"
#include "netlist/netlist.h"

namespace rlcr::scenario {

/// One net mutation. Slots are design net indices; `kAdd` ignores `net`
/// and appends (in change order, so the netlist and problem arms number
/// new slots identically).
struct NetChange {
  enum class Kind { kAdd, kRemove, kRepin };
  Kind kind = Kind::kRepin;
  std::size_t net = 0;             ///< target slot (kRemove / kRepin)
  std::vector<geom::PointF> pins;  ///< new physical pins, [0] = source
  std::string name;                ///< netlist name for kAdd
};

struct NetlistDelta {
  std::vector<NetChange> changes;
  bool empty() const { return changes.empty(); }
};

/// Mutate a design in place: kRemove clears the slot's pins (the slot
/// stays — see the file comment), kRepin replaces them, kAdd appends.
void apply_delta(netlist::Netlist& design, const NetlistDelta& delta);

/// The slot-preserving problem mutation both the incremental engine and
/// the from-scratch differential arm share.
gsino::RoutingProblem apply_delta(const gsino::RoutingProblem& problem,
                                  const NetlistDelta& delta);

/// What one FlowSession::apply_delta() call did. The reuse counts are the
/// compute avoided by incrementality; results are bit-identical either
/// way.
struct DeltaReport {
  /// The mutated problem the session now serves (owned by the session).
  std::shared_ptr<const gsino::RoutingProblem> problem;
  std::size_t changed_nets = 0;    ///< slots the delta touched
  std::size_t routes_patched = 0;  ///< cached routing artifacts patched
  std::size_t nets_rerouted = 0;   ///< pool nets the delta sub-runs re-routed
  std::size_t nets_reused = 0;     ///< pool nets spliced from old artifacts
  std::size_t regions_solved = 0;  ///< dirty (region, dir) solves recomputed
  std::size_t regions_reused = 0;  ///< clean (region, dir) solves carried over
  double seconds = 0.0;
};

/// Seeded random delta over a problem's current net set: `changes`
/// mutations drawn among re-pin / remove / add. Pin sets are ECO-like —
/// 2-5 pins clustered in a random window of the chip outline, so a
/// delta's affected closure stays local instead of percolating across
/// the pool. Pure in (problem net count, outline, seed), so a test or
/// bench regenerates the identical corpus from the seed.
NetlistDelta random_delta(const gsino::RoutingProblem& problem,
                          std::uint64_t seed, std::size_t changes);

}  // namespace rlcr::scenario
