#include "scenario/matrix.h"

#include <algorithm>
#include <utility>

#include "core/session.h"
#include "netlist/ispd98_synth.h"
#include "scenario/delta.h"
#include "store/artifact_store.h"
#include "util/hash.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace rlcr::scenario {

const char* kind_name(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::kBoundSweep: return "bound_sweep";
    case ScenarioKind::kTechSweep: return "tech_sweep";
    case ScenarioKind::kDeltaChain: return "delta_chain";
    case ScenarioKind::kEcoSlice: return "eco_slice";
  }
  return "unknown";
}

namespace {

/// The crosstalk-bound ladder a bound-sweep cell re-solves at. The first
/// rung routes; every later rung reuses the Phase I artifact.
constexpr double kBounds[] = {0.10, 0.15, 0.20, 0.25};

/// Multi-corner `params.tech` points: edge rate and driver strength move
/// together (slow silicon drives slower edges through weaker drivers).
struct TechCorner {
  const char* name;
  double rise_scale;
  double driver_scale;
};
constexpr TechCorner kCorners[] = {
    {"typ", 1.0, 1.0}, {"slow", 1.5, 1.25}, {"fast", 0.8, 0.85}};

constexpr std::uint64_t kDeltaChainSeed = 0xEC0;
constexpr std::size_t kDeltaChainSteps = 2;
constexpr std::size_t kDeltaChainChanges = 4;

gsino::GsinoParams corner_params(const gsino::GsinoParams& base,
                                 const TechCorner& corner) {
  gsino::GsinoParams p = base;
  p.tech.rise_time_s *= corner.rise_scale;
  p.tech.driver_ohms *= corner.driver_scale;
  return p;
}

/// Stage requests served from the in-memory caches (neither executed nor
/// loaded from the persistent store) — the sweep campaigns' avoided work.
std::size_t stage_hits(const gsino::StageCounters& c) {
  return (c.route_requests - c.route_executed - c.route_loaded) +
         (c.budget_requests - c.budget_executed - c.budget_loaded) +
         (c.solve_requests - c.solve_executed - c.solve_loaded) +
         (c.refine_requests - c.refine_executed - c.refine_loaded);
}

/// The structured ECO of an eco-slice cell: a deterministic slice of
/// existing nets re-pinned into the chip's lower-left quarter window.
NetlistDelta eco_slice_delta(const gsino::RoutingProblem& p,
                             std::uint64_t seed) {
  NetlistDelta delta;
  const std::size_t count = p.net_count();
  if (count == 0) return delta;
  const std::size_t slice =
      std::min<std::size_t>(40, std::max<std::size_t>(4, count / 64));
  const std::size_t stride = std::max<std::size_t>(1, count / slice);
  util::Xoshiro256 rng(util::SplitMix64::mix2(seed, 0x51C3));
  const double w = p.grid().chip_w_um(), h = p.grid().chip_h_um();
  for (std::size_t n = 0; n < count && delta.changes.size() < slice;
       n += stride) {
    NetChange c;
    c.kind = NetChange::Kind::kRepin;
    c.net = n;
    const std::size_t pins = 2 + delta.changes.size() % 3;
    for (std::size_t j = 0; j < pins; ++j) {
      c.pins.push_back(geom::PointF{rng.uniform(0.0, 0.25 * w),
                                    rng.uniform(0.0, 0.25 * h)});
    }
    delta.changes.push_back(std::move(c));
  }
  return delta;
}

void run_bound_sweep(const gsino::RoutingProblem& problem,
                     const gsino::SessionOptions& opts, util::Fnv1a64& h,
                     ScenarioCell& cell) {
  gsino::FlowSession session(problem, opts);
  std::uint64_t last = 0;
  for (const double bound : kBounds) {
    gsino::Scenario sc;
    sc.bound_v = bound;
    last = gsino::state_fingerprint(session.run(gsino::FlowKind::kGsino, sc));
    h.u64(last);
    ++cell.runs;
  }
  cell.compute_avoided = stage_hits(session.counters());

  // Differential check: the last rung recomputed from scratch, no store.
  gsino::FlowSession fresh(problem);
  gsino::Scenario sc;
  sc.bound_v = kBounds[std::size(kBounds) - 1];
  cell.fingerprint_match =
      gsino::state_fingerprint(fresh.run(gsino::FlowKind::kGsino, sc)) == last
          ? 1
          : 0;
}

void run_tech_sweep(const netlist::Netlist& design,
                    const grid::RegionGridSpec& gspec,
                    const gsino::GsinoParams& params,
                    const gsino::SessionOptions& opts, util::Fnv1a64& h,
                    ScenarioCell& cell) {
  std::uint64_t last = 0;
  for (const TechCorner& corner : kCorners) {
    const gsino::RoutingProblem problem(design, gspec,
                                        corner_params(params, corner));
    gsino::FlowSession session(problem, opts);
    for (const gsino::FlowKind kind :
         {gsino::FlowKind::kIdNo, gsino::FlowKind::kIsino,
          gsino::FlowKind::kGsino}) {
      last = gsino::state_fingerprint(session.run(kind));
      h.u64(last);
      ++cell.runs;
    }
    // ID+NO and iSINO share one routing artifact per corner (the fairness
    // rule), so every corner avoids at least one Phase I.
    cell.compute_avoided += stage_hits(session.counters());
  }

  const gsino::RoutingProblem problem(
      design, gspec, corner_params(params, kCorners[std::size(kCorners) - 1]));
  gsino::FlowSession fresh(problem);
  cell.fingerprint_match =
      gsino::state_fingerprint(fresh.run(gsino::FlowKind::kGsino)) == last ? 1
                                                                           : 0;
}

void run_delta_campaign(const gsino::RoutingProblem& problem,
                        const std::vector<NetlistDelta>& chain,
                        const gsino::SessionOptions& opts, util::Fnv1a64& h,
                        ScenarioCell& cell) {
  gsino::FlowSession session(problem, opts);
  gsino::FlowResult fr = session.run(gsino::FlowKind::kGsino);
  h.u64(gsino::state_fingerprint(fr));
  ++cell.runs;
  for (const NetlistDelta& delta : chain) {
    session.apply_delta(delta);
    fr = session.run(gsino::FlowKind::kGsino);
    h.u64(gsino::state_fingerprint(fr));
    ++cell.runs;
  }
  const gsino::StageCounters& c = session.counters();
  cell.compute_avoided =
      c.delta_nets_reused + c.delta_regions_reused + stage_hits(c);

  // Differential check: the whole chain applied to the problem up front,
  // then one from-scratch run — route hash and state fingerprint must
  // both match the incremental end state.
  gsino::RoutingProblem scratch = problem;
  for (const NetlistDelta& delta : chain) {
    scratch = apply_delta(scratch, delta);
  }
  gsino::FlowSession fresh(scratch);
  const gsino::FlowResult want = fresh.run(gsino::FlowKind::kGsino);
  cell.fingerprint_match =
      (gsino::state_fingerprint(want) == gsino::state_fingerprint(fr) &&
       router::route_hash(want.routing()) == router::route_hash(fr.routing()))
          ? 1
          : 0;
}

}  // namespace

ScenarioCell ScenarioMatrix::run_cell(
    const std::string& circuit, const netlist::Netlist& design,
    const grid::RegionGridSpec& gspec, ScenarioKind kind,
    const gsino::GsinoParams& params,
    std::shared_ptr<store::ArtifactStore> store) {
  util::Stopwatch watch;
  ScenarioCell cell;
  cell.circuit = circuit;
  cell.kind = kind;

  gsino::SessionOptions opts;
  opts.store = std::move(store);
  util::Fnv1a64 h;

  const gsino::RoutingProblem problem(design, gspec, params);
  cell.total_nets = problem.net_count();

  switch (kind) {
    case ScenarioKind::kBoundSweep:
      run_bound_sweep(problem, opts, h, cell);
      break;
    case ScenarioKind::kTechSweep:
      run_tech_sweep(design, gspec, params, opts, h, cell);
      break;
    case ScenarioKind::kDeltaChain: {
      // Each step's corpus is drawn against the evolving problem; the
      // from-scratch arm inside run_delta_campaign replays the same
      // seeds, so both arms see the identical chain.
      std::vector<NetlistDelta> chain;
      gsino::RoutingProblem evolving = problem;
      for (std::size_t i = 0; i < kDeltaChainSteps; ++i) {
        chain.push_back(
            random_delta(evolving, kDeltaChainSeed + i, kDeltaChainChanges));
        evolving = apply_delta(evolving, chain.back());
      }
      run_delta_campaign(problem, chain, opts, h, cell);
      break;
    }
    case ScenarioKind::kEcoSlice: {
      const std::vector<NetlistDelta> chain = {
          eco_slice_delta(problem, params.seed)};
      run_delta_campaign(problem, chain, opts, h, cell);
      break;
    }
  }

  cell.fingerprint = h.value();
  cell.seconds = watch.seconds();
  return cell;
}

std::vector<ScenarioCell> ScenarioMatrix::run() const {
  std::vector<ScenarioCell> out;
  const auto classes = netlist::ispd98_classes(options_.scale);
  for (const int ci : options_.circuits) {
    if (ci < 0 || static_cast<std::size_t>(ci) >= classes.size()) continue;
    const netlist::Ispd98ClassSpec& cls = classes[static_cast<std::size_t>(ci)];
    const netlist::Ispd98Instance inst = netlist::make_ispd98_instance(cls);
    for (const ScenarioKind kind : options_.kinds) {
      out.push_back(run_cell(cls.name, inst.design, inst.gspec, kind,
                             options_.params, options_.store));
    }
  }
  return out;
}

}  // namespace rlcr::scenario
