// Scenario-matrix driver: campaigns of (circuit class x scenario kind)
// cells over shared routing artifacts.
//
// A cell is one what-if campaign on one ISPD'98 class:
//
//   kBoundSweep  — GSINO re-solved at a ladder of crosstalk bounds
//                  through one FlowSession; every re-solve past the first
//                  reuses the Phase I artifact (budget/solve/refine only).
//   kTechSweep   — the three flows at multi-corner `params.tech` points
//                  (typical / slow / fast); within each corner ID+NO and
//                  iSINO share one routing artifact under the fairness
//                  rule.
//   kDeltaChain  — a seeded random-ECO chain driven through
//                  FlowSession::apply_delta (src/scenario/delta.h): each
//                  step re-routes only the affected closure and re-solves
//                  only dirty regions.
//   kEcoSlice    — a structured ECO: a slice of existing nets re-pinned
//                  into one window of the chip, applied as a single
//                  delta.
//
// Every cell reports the work it avoided (cache hits, spliced routes,
// reused region solves) and carries its own differential check: the
// final state is recomputed from scratch in a fresh session and must
// match bit for bit (`fingerprint_match`). tools/check_scenarios.py
// gates CI on matrix completeness, compute_avoided > 0 for the kinds
// that claim reuse, and fingerprint_match == 1 everywhere.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/params.h"
#include "grid/region_grid.h"
#include "netlist/netlist.h"

namespace rlcr::store {
class ArtifactStore;
}  // namespace rlcr::store

namespace rlcr::scenario {

enum class ScenarioKind { kBoundSweep, kTechSweep, kDeltaChain, kEcoSlice };

/// Stable snake_case name ("bound_sweep", ...) used in bench counters,
/// CLI output, and check_scenarios.py.
const char* kind_name(ScenarioKind kind);

constexpr ScenarioKind kAllScenarioKinds[] = {
    ScenarioKind::kBoundSweep, ScenarioKind::kTechSweep,
    ScenarioKind::kDeltaChain, ScenarioKind::kEcoSlice};

/// One (class, kind) campaign result.
struct ScenarioCell {
  std::string circuit;
  ScenarioKind kind = ScenarioKind::kBoundSweep;
  std::size_t runs = 0;  ///< flow results produced across the campaign
  /// FNV-1a over every run's state fingerprint, in campaign order — one
  /// number pinning the whole cell bit for bit.
  std::uint64_t fingerprint = 0;
  /// Work incrementality avoided: stage cache hits (sweeps) or spliced
  /// routes + reused region solves (deltas). Zero means the campaign
  /// recomputed everything.
  std::size_t compute_avoided = 0;
  /// 1 iff the campaign's final state matched a from-scratch recompute in
  /// a fresh session (the cell-internal differential check).
  std::size_t fingerprint_match = 0;
  std::size_t total_nets = 0;
  double seconds = 0.0;
};

struct MatrixOptions {
  /// Density-preserving shrink of the ISPD'98 classes (1.0 = published
  /// sizes), as in netlist::ispd98_classes.
  double scale = 1.0;
  /// Indices into ispd98_classes() (0 = ibm01 ... 5 = ibm06).
  std::vector<int> circuits = {0, 1, 2, 3, 4, 5};
  std::vector<ScenarioKind> kinds = {
      ScenarioKind::kBoundSweep, ScenarioKind::kTechSweep,
      ScenarioKind::kDeltaChain, ScenarioKind::kEcoSlice};
  gsino::GsinoParams params;
  /// Optional persistent store, forwarded into every cell's sessions.
  std::shared_ptr<store::ArtifactStore> store;
};

class ScenarioMatrix {
 public:
  explicit ScenarioMatrix(MatrixOptions options)
      : options_(std::move(options)) {}

  /// One cell per (circuit, kind), in circuit-major order. Each class's
  /// instance is materialized once and shared by its kinds.
  std::vector<ScenarioCell> run() const;

  /// One campaign over an already-materialized design and fabric.
  static ScenarioCell run_cell(
      const std::string& circuit, const netlist::Netlist& design,
      const grid::RegionGridSpec& gspec, ScenarioKind kind,
      const gsino::GsinoParams& params,
      std::shared_ptr<store::ArtifactStore> store = {});

 private:
  MatrixOptions options_;
};

}  // namespace rlcr::scenario
