#include "service/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>

namespace rlcr::service {

namespace {

void set_error(std::string* error, const std::string& why) {
  if (error != nullptr) *error = why;
}

}  // namespace

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  reader_.reset();
  client_id_ = 0;
}

template <typename Req, typename Resp>
bool Client::roundtrip(const Req& request, Resp* response,
                       std::string* error) {
  if (fd_ < 0) {
    set_error(error, "not connected");
    return false;
  }
  if (!send_frame(fd_, encode(request))) {
    set_error(error, "send failed: " + std::string(strerror(errno)));
    close();
    return false;
  }
  Frame frame;
  switch (reader_->next(&frame)) {
    case FrameReader::Status::kFrame:
      break;
    case FrameReader::Status::kClosed:
      set_error(error, "server closed the connection");
      close();
      return false;
    case FrameReader::Status::kBad:
      set_error(error, "malformed frame from server");
      close();
      return false;
    case FrameReader::Status::kError:
      set_error(error, "recv failed: " + std::string(strerror(errno)));
      close();
      return false;
  }
  if (frame.type == PduType::kError) {
    const std::optional<Error> err = decode<Error>(frame);
    set_error(error, err ? "server error: " + err->message
                         : "undecodable server error");
    close();
    return false;
  }
  const std::optional<Resp> decoded = decode<Resp>(frame);
  if (!decoded) {
    set_error(error, "unexpected or undecodable response PDU");
    close();
    return false;
  }
  *response = *decoded;
  return true;
}

bool Client::connect(const std::string& socket_path, std::string* error) {
  close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof addr.sun_path) {
    set_error(error, "socket path empty or too long for sockaddr_un");
    return false;
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    set_error(error, "socket(): " + std::string(strerror(errno)));
    return false;
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    set_error(error,
              "connect(" + socket_path + "): " + std::string(strerror(errno)));
    close();
    return false;
  }
  reader_ = std::make_unique<FrameReader>(fd_);

  Hello hello;
  hello.client_name = "rlcr-client";
  HelloAck ack;
  if (!roundtrip(hello, &ack, error)) return false;
  if (ack.protocol_version != kProtocolVersion) {
    set_error(error, "server speaks protocol version " +
                         std::to_string(ack.protocol_version));
    close();
    return false;
  }
  client_id_ = ack.client_id;
  return true;
}

bool Client::submit(const WhatIfQuery& query, SubmitAck* ack,
                    std::string* error) {
  Submit req;
  req.query = query;
  return roundtrip(req, ack, error);
}

bool Client::poll(std::uint64_t ticket, std::uint32_t wait_ms, Result* result,
                  std::string* error) {
  Poll req;
  req.ticket = ticket;
  req.wait_ms = wait_ms;
  return roundtrip(req, result, error);
}

bool Client::wait(std::uint64_t ticket, Result* result, std::string* error) {
  for (;;) {
    if (!poll(ticket, /*wait_ms=*/1000, result, error)) return false;
    if (result->state != JobState::kQueued &&
        result->state != JobState::kRunning) {
      return true;
    }
  }
}

bool Client::cancel(std::uint64_t ticket, CancelAck* ack,
                    std::string* error) {
  Cancel req;
  req.ticket = ticket;
  return roundtrip(req, ack, error);
}

bool Client::stats(StatsReply* reply, std::string* error) {
  return roundtrip(Stats{}, reply, error);
}

}  // namespace rlcr::service
