// Blocking client for the what-if daemon (service/server.h): connects to
// the Unix-domain socket, performs the Hello handshake, then exchanges
// request/response PDUs. One Client is one connection and is NOT
// thread-safe — concurrency is modelled as many clients (as in
// bench/bench_service.cpp), matching the server's one-reader-per-
// connection execution model.
//
// Every call reports transport or protocol failures through its bool
// return plus an *error string; a server-sent Error PDU is surfaced the
// same way (the server closes the connection after sending one).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "service/protocol.h"

namespace rlcr::service {

class Client {
 public:
  Client() = default;
  ~Client();  ///< close()s

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects and completes the Hello handshake (version-gated by the
  /// server). False on socket, transport, or handshake failure.
  bool connect(const std::string& socket_path, std::string* error = nullptr);
  bool connected() const { return fd_ >= 0; }
  std::uint64_t client_id() const { return client_id_; }
  void close();

  /// Submits a query; *ack carries the ticket or the rejection reason.
  /// Returns false only on transport failure — a rejected Submit is a
  /// successful exchange.
  bool submit(const WhatIfQuery& query, SubmitAck* ack,
              std::string* error = nullptr);

  /// One Poll exchange; the server blocks up to wait_ms before answering.
  bool poll(std::uint64_t ticket, std::uint32_t wait_ms, Result* result,
            std::string* error = nullptr);

  /// Polls until the job is terminal (done/failed/cancelled).
  bool wait(std::uint64_t ticket, Result* result,
            std::string* error = nullptr);

  bool cancel(std::uint64_t ticket, CancelAck* ack,
              std::string* error = nullptr);

  bool stats(StatsReply* reply, std::string* error = nullptr);

 private:
  /// Sends `request`, reads one frame, decodes it as Resp. A kError frame
  /// becomes a false return with the server's message in *error.
  template <typename Req, typename Resp>
  bool roundtrip(const Req& request, Resp* response, std::string* error);

  int fd_ = -1;
  std::uint64_t client_id_ = 0;
  std::unique_ptr<FrameReader> reader_;
};

}  // namespace rlcr::service
