#include "service/protocol.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/hash.h"

namespace rlcr::service {

namespace {

constexpr std::uint8_t kMagic[8] = {'R', 'L', 'C', 'R', 'S', 'V', 'C', '\0'};
constexpr std::size_t kNameCap = 256;  ///< wire cap for every string field

std::uint64_t payload_checksum(const std::uint8_t* data, std::size_t size) {
  util::Fnv1a64 h;
  for (std::size_t i = 0; i < size; ++i) h.u8(data[i]);
  return h.value();
}

bool valid_type(std::uint32_t t) {
  return t >= static_cast<std::uint32_t>(PduType::kHello) &&
         t <= static_cast<std::uint32_t>(PduType::kError);
}

}  // namespace

// ------------------------------------------------------------ the query

void WhatIfQuery::encode(util::BinaryWriter& w) const {
  w.u8(static_cast<std::uint8_t>(source));
  w.str(circuit);
  w.f64(scale);
  w.u64(tiny_nets);
  w.f64(rate);
  w.f64(bound_v);
  w.u64(seed);
  w.u8(flow);
  w.u8(has_bound ? 1 : 0);
  w.f64(scenario_bound_v);
  w.u8(has_margin ? 1 : 0);
  w.f64(scenario_margin);
  w.u8(has_anneal ? 1 : 0);
  w.u8(scenario_anneal ? 1 : 0);
  w.u8(quality);
}

bool WhatIfQuery::decode(util::BinaryReader& r) {
  const std::uint8_t src = r.u8();
  if (src > static_cast<std::uint8_t>(QuerySource::kTiny)) return false;
  source = static_cast<QuerySource>(src);
  if (!r.str(circuit, kNameCap)) return false;
  scale = r.f64();
  tiny_nets = r.u64();
  rate = r.f64();
  bound_v = r.f64();
  seed = r.u64();
  flow = r.u8();
  if (flow > 2) return false;
  has_bound = r.u8() != 0;
  scenario_bound_v = r.f64();
  has_margin = r.u8() != 0;
  scenario_margin = r.f64();
  has_anneal = r.u8() != 0;
  scenario_anneal = r.u8() != 0;
  quality = r.u8();
  if (quality > 2) return false;  // steiner::TreeProfile range
  return r.ok();
}

std::uint64_t query_session_key(const WhatIfQuery& q) {
  util::Fnv1a64 h;
  h.u8(static_cast<std::uint8_t>(q.source))
      .str(q.circuit)
      .f64(q.scale)
      .u64(q.tiny_nets)
      .f64(q.rate)
      .f64(q.bound_v)
      .u64(q.seed);
  return h.value();
}

std::uint64_t query_coalesce_key(const WhatIfQuery& q) {
  util::Fnv1a64 h;
  h.u64(query_session_key(q))
      .u8(q.flow)
      .boolean(q.has_bound)
      .f64(q.has_bound ? q.scenario_bound_v : 0.0)
      .boolean(q.has_margin)
      .f64(q.has_margin ? q.scenario_margin : 0.0)
      .boolean(q.has_anneal)
      .boolean(q.has_anneal ? q.scenario_anneal : false)
      .u8(q.quality);
  return h.value();
}

// ------------------------------------------------------------- the PDUs

void Hello::encode_payload(util::BinaryWriter& w) const {
  w.u32(protocol_version);
  w.str(client_name);
}
bool Hello::decode_payload(util::BinaryReader& r) {
  protocol_version = r.u32();
  return r.str(client_name, kNameCap) && r.ok();
}

void HelloAck::encode_payload(util::BinaryWriter& w) const {
  w.u64(client_id);
  w.u32(protocol_version);
  w.str(server_name);
}
bool HelloAck::decode_payload(util::BinaryReader& r) {
  client_id = r.u64();
  protocol_version = r.u32();
  return r.str(server_name, kNameCap) && r.ok();
}

void Submit::encode_payload(util::BinaryWriter& w) const { query.encode(w); }
bool Submit::decode_payload(util::BinaryReader& r) { return query.decode(r); }

void SubmitAck::encode_payload(util::BinaryWriter& w) const {
  w.u64(ticket);
  w.u8(static_cast<std::uint8_t>(reject));
  w.u8(coalesced);
}
bool SubmitAck::decode_payload(util::BinaryReader& r) {
  ticket = r.u64();
  const std::uint8_t rej = r.u8();
  if (rej > static_cast<std::uint8_t>(RejectReason::kShuttingDown)) {
    return false;
  }
  reject = static_cast<RejectReason>(rej);
  coalesced = r.u8();
  return r.ok();
}

void Poll::encode_payload(util::BinaryWriter& w) const {
  w.u64(ticket);
  w.u32(wait_ms);
}
bool Poll::decode_payload(util::BinaryReader& r) {
  ticket = r.u64();
  wait_ms = r.u32();
  return r.ok();
}

void FlowSummary::encode(util::BinaryWriter& w) const {
  w.u8(flow);
  w.f64(bound_v);
  w.u64(route_hash);
  w.u64(state_hash);
  w.u64(violating);
  w.u64(unfixable);
  w.f64(total_wirelength_um);
  w.f64(avg_wirelength_um);
  w.f64(total_shields);
  w.f64(route_s);
  w.f64(sino_s);
  w.f64(refine_s);
  w.f64(compute_s);
  w.u8(warm);
}
bool FlowSummary::decode(util::BinaryReader& r) {
  flow = r.u8();
  if (flow > 2) return false;
  bound_v = r.f64();
  route_hash = r.u64();
  state_hash = r.u64();
  violating = r.u64();
  unfixable = r.u64();
  total_wirelength_um = r.f64();
  avg_wirelength_um = r.f64();
  total_shields = r.f64();
  route_s = r.f64();
  sino_s = r.f64();
  refine_s = r.f64();
  compute_s = r.f64();
  warm = r.u8();
  return r.ok();
}

void Result::encode_payload(util::BinaryWriter& w) const {
  w.u64(ticket);
  w.u8(static_cast<std::uint8_t>(state));
  if (state == JobState::kDone) summary.encode(w);
  w.str(error);
}
bool Result::decode_payload(util::BinaryReader& r) {
  ticket = r.u64();
  const std::uint8_t st = r.u8();
  if (st > static_cast<std::uint8_t>(JobState::kCancelled)) return false;
  state = static_cast<JobState>(st);
  if (state == JobState::kDone && !summary.decode(r)) return false;
  return r.str(error, kNameCap) && r.ok();
}

void Cancel::encode_payload(util::BinaryWriter& w) const { w.u64(ticket); }
bool Cancel::decode_payload(util::BinaryReader& r) {
  ticket = r.u64();
  return r.ok();
}

void CancelAck::encode_payload(util::BinaryWriter& w) const {
  w.u64(ticket);
  w.u8(cancelled);
}
bool CancelAck::decode_payload(util::BinaryReader& r) {
  ticket = r.u64();
  cancelled = r.u8();
  return r.ok();
}

void Stats::encode_payload(util::BinaryWriter&) const {}
bool Stats::decode_payload(util::BinaryReader& r) { return r.ok(); }

void StatsReply::encode_payload(util::BinaryWriter& w) const {
  w.u64(metrics.size());
  for (const Metric& m : metrics) {
    w.str(m.name);
    w.u8(m.kind);
    w.f64(m.value);
  }
}
bool StatsReply::decode_payload(util::BinaryReader& r) {
  const std::uint64_t n = r.seq_size(/*elem_bytes=*/13);
  if (!r.ok()) return false;
  metrics.resize(static_cast<std::size_t>(n));
  for (Metric& m : metrics) {
    if (!r.str(m.name, kNameCap)) return false;
    m.kind = r.u8();
    if (m.kind > 1) return false;
    m.value = r.f64();
  }
  return r.ok();
}

void Error::encode_payload(util::BinaryWriter& w) const {
  w.u32(static_cast<std::uint32_t>(code));
  w.str(message);
}
bool Error::decode_payload(util::BinaryReader& r) {
  const std::uint32_t c = r.u32();
  if (c < static_cast<std::uint32_t>(ErrorCode::kMalformed) ||
      c > static_cast<std::uint32_t>(ErrorCode::kInternal)) {
    return false;
  }
  code = static_cast<ErrorCode>(c);
  return r.str(message, kNameCap) && r.ok();
}

// ------------------------------------------------------------- framing

std::vector<std::uint8_t> encode_frame(PduType type,
                                       std::vector<std::uint8_t> payload) {
  util::BinaryWriter w;
  for (const std::uint8_t b : kMagic) w.u8(b);
  w.u32(kProtocolVersion);
  w.u32(static_cast<std::uint32_t>(type));
  w.u64(payload.size());
  std::vector<std::uint8_t> out = w.take();
  out.insert(out.end(), payload.begin(), payload.end());
  util::BinaryWriter tail;
  tail.u64(payload_checksum(payload.data(), payload.size()));
  const std::vector<std::uint8_t> t = tail.take();
  out.insert(out.end(), t.begin(), t.end());
  return out;
}

ParseStatus try_parse(const std::uint8_t* data, std::size_t size,
                      std::size_t* consumed, Frame* out) {
  *consumed = 0;
  // Validate what we can of the header as soon as the bytes exist: a bad
  // magic or version is kBad at 12 bytes, not after a full frame arrives.
  const std::size_t magic_have = std::min(size, sizeof kMagic);
  if (std::memcmp(data, kMagic, magic_have) != 0) return ParseStatus::kBad;
  if (size < kFrameHeaderBytes) return ParseStatus::kNeedMore;

  util::BinaryReader h(data, kFrameHeaderBytes);
  for (std::size_t i = 0; i < sizeof kMagic; ++i) h.u8();
  if (h.u32() != kProtocolVersion) return ParseStatus::kBad;
  const std::uint32_t type = h.u32();
  if (!valid_type(type)) return ParseStatus::kBad;
  const std::uint64_t payload_size = h.u64();
  if (payload_size > kMaxPayloadBytes) return ParseStatus::kBad;

  const std::size_t total = kFrameHeaderBytes +
                            static_cast<std::size_t>(payload_size) +
                            kFrameChecksumBytes;
  if (size < total) return ParseStatus::kNeedMore;

  const std::uint8_t* payload = data + kFrameHeaderBytes;
  util::BinaryReader tail(payload + payload_size, kFrameChecksumBytes);
  if (tail.u64() !=
      payload_checksum(payload, static_cast<std::size_t>(payload_size))) {
    return ParseStatus::kBad;
  }

  out->type = static_cast<PduType>(type);
  out->payload.assign(payload, payload + payload_size);
  *consumed = total;
  return ParseStatus::kFrame;
}

// --------------------------------------------- blocking socket helpers

bool send_frame(int fd, const std::vector<std::uint8_t>& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

FrameReader::Status FrameReader::next(Frame* out) {
  for (;;) {
    if (!buf_.empty()) {
      std::size_t consumed = 0;
      const ParseStatus st =
          try_parse(buf_.data(), buf_.size(), &consumed, out);
      if (st == ParseStatus::kFrame) {
        buf_.erase(buf_.begin(),
                   buf_.begin() + static_cast<std::ptrdiff_t>(consumed));
        return Status::kFrame;
      }
      if (st == ParseStatus::kBad) return Status::kBad;
    }
    std::uint8_t chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::kError;
    }
    if (n == 0) {
      // EOF between frames is a clean close; mid-frame it is truncation.
      return buf_.empty() ? Status::kClosed : Status::kBad;
    }
    buf_.insert(buf_.end(), chunk, chunk + n);
  }
}

}  // namespace rlcr::service
