// Wire protocol of the what-if daemon (service/server.h): typed PDUs over
// a versioned, length-prefixed binary frame on a Unix-domain socket.
//
// The frame reuses the artifact-store conventions (store/serial.h) —
// little-endian throughout, magic + format version + type + payload size
// header, FNV-1a payload checksum trailer — with its own magic and version
// so a service stream can never be confused with an artifact record:
//
//   offset  size  field
//   0       8     magic "RLCRSVC\0"
//   8       4     protocol version (kProtocolVersion)
//   12      4     PDU type (PduType)
//   16      8     payload size in bytes
//   24      n     payload (per-PDU layout; BinaryWriter primitives)
//   24+n    8     FNV-1a-64 checksum of the payload bytes
//
// Rejection discipline mirrors store/serial.cpp: decode returns nullopt on
// ANY validation failure — bad magic, version or type mismatch, size or
// checksum mismatch, short/overlong payload, out-of-range enum — and the
// server drops the connection rather than guessing. try_parse() is
// incremental so a reader can accumulate bytes from the socket and peel
// complete frames off the front; it distinguishes "need more bytes" from
// "this stream is garbage" so a malformed prefix never blocks forever.
//
// Conversation shape (client drives, server replies 1:1):
//   Hello -> HelloAck          handshake, assigns the client id
//   Submit -> SubmitAck        enqueue a what-if query (or a rejection)
//   Poll -> Result             job state; optional bounded blocking wait
//   Cancel -> CancelAck        best-effort dequeue of a queued job
//   Stats -> StatsReply        server metrics pull (service.* + session.*)
//   (anything invalid) -> Error, then the server closes the connection
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/binio.h"

namespace rlcr::service {

/// v2: WhatIfQuery gained the `quality` tier byte (steiner::TreeProfile).
/// The version travels in every frame header and try_parse rejects a
/// mismatch as soon as the 12 header bytes exist, so a v1 peer gets a clean
/// kBad instead of a misdecoded query (pinned by service_test).
inline constexpr std::uint32_t kProtocolVersion = 2;
/// Frames advertising a payload larger than this are rejected outright —
/// every legal PDU is tiny; a huge size prefix is corruption or abuse.
inline constexpr std::uint64_t kMaxPayloadBytes = std::uint64_t{1} << 20;
inline constexpr std::size_t kFrameHeaderBytes = 8 + 4 + 4 + 8;
inline constexpr std::size_t kFrameChecksumBytes = 8;

enum class PduType : std::uint32_t {
  kHello = 1,
  kHelloAck = 2,
  kSubmit = 3,
  kSubmitAck = 4,
  kPoll = 5,
  kResult = 6,
  kCancel = 7,
  kCancelAck = 8,
  kStats = 9,
  kStatsReply = 10,
  kError = 11,
};

// ------------------------------------------------------------ the query

/// How a query names its routing problem. The service deliberately ships
/// problem *recipes*, not problem data: both ends assemble the identical
/// RoutingProblem from the same deterministic generators, so a query is a
/// few dozen bytes and the session key is a pure function of the recipe.
enum class QuerySource : std::uint8_t {
  kSynthetic = 0,  ///< calibrated stand-in from netlist::ibm_suite(scale)
  kIspd98 = 1,     ///< ISPD98 class (real circuit when RLCR_ISPD98_DIR)
  kTiny = 2,       ///< netlist::tiny_spec unit-test fixture
};

/// One what-if request: a problem recipe plus the flow to run and the
/// Scenario overrides to apply. Field-for-field this is the wire image of
/// what route_cli assembles from its flags (service/server.cpp
/// assemble_problem is the shared interpretation).
struct WhatIfQuery {
  QuerySource source = QuerySource::kSynthetic;
  std::string circuit = "ibm01";  ///< class name; ignored for kTiny
  double scale = 0.25;
  std::uint64_t tiny_nets = 200;  ///< kTiny only: net count
  double rate = 0.30;             ///< sensitivity rate
  double bound_v = 0.15;          ///< base crosstalk bound (params)
  std::uint64_t seed = 1;
  std::uint8_t flow = 2;  ///< gsino::FlowKind as u8 (0 idno, 1 isino, 2 gsino)

  // Scenario overrides (each optional<...> flattened to a flag + value).
  bool has_bound = false;
  double scenario_bound_v = 0.15;
  bool has_margin = false;
  double scenario_margin = 1.0;
  bool has_anneal = false;
  bool scenario_anneal = false;
  /// Quality tier: steiner::TreeProfile as u8 (0 fast, 1 balanced, 2 best).
  /// Maps to Scenario::tree_profile server-side; part of the coalesce key
  /// (a different tier is a different answer) but not the session key (all
  /// tiers share one FlowSession per problem).
  std::uint8_t quality = 0;

  void encode(util::BinaryWriter& w) const;
  bool decode(util::BinaryReader& r);
};

/// Identity of the problem a query assembles — the session-LRU key. Flow
/// and scenario excluded: every what-if over one problem shares one
/// FlowSession (that sharing is the whole point of the daemon).
std::uint64_t query_session_key(const WhatIfQuery& q);

/// Identity of the full question — the request-coalescing key: two
/// submits with equal coalesce keys are the same computation and share one
/// ticket.
std::uint64_t query_coalesce_key(const WhatIfQuery& q);

// ------------------------------------------------------------- the PDUs

struct Hello {
  static constexpr PduType kType = PduType::kHello;
  std::uint32_t protocol_version = kProtocolVersion;
  std::string client_name;

  void encode_payload(util::BinaryWriter& w) const;
  bool decode_payload(util::BinaryReader& r);
};

struct HelloAck {
  static constexpr PduType kType = PduType::kHelloAck;
  std::uint64_t client_id = 0;
  std::uint32_t protocol_version = kProtocolVersion;
  std::string server_name;

  void encode_payload(util::BinaryWriter& w) const;
  bool decode_payload(util::BinaryReader& r);
};

struct Submit {
  static constexpr PduType kType = PduType::kSubmit;
  WhatIfQuery query;

  void encode_payload(util::BinaryWriter& w) const;
  bool decode_payload(util::BinaryReader& r);
};

enum class RejectReason : std::uint8_t {
  kNone = 0,
  kQueueFull = 1,     ///< bounded pending queue at capacity
  kInflightCap = 2,   ///< this client's unfinished-job cap reached
  kBadQuery = 3,      ///< query failed validation (range/enum checks)
  kShuttingDown = 4,
};

struct SubmitAck {
  static constexpr PduType kType = PduType::kSubmitAck;
  std::uint64_t ticket = 0;  ///< 0 iff rejected
  RejectReason reject = RejectReason::kNone;
  std::uint8_t coalesced = 0;  ///< attached to an already-live computation

  void encode_payload(util::BinaryWriter& w) const;
  bool decode_payload(util::BinaryReader& r);
};

struct Poll {
  static constexpr PduType kType = PduType::kPoll;
  std::uint64_t ticket = 0;
  /// Bounded blocking: the server holds the reply up to this long waiting
  /// for the job to reach a terminal state (0 = answer immediately).
  std::uint32_t wait_ms = 0;

  void encode_payload(util::BinaryWriter& w) const;
  bool decode_payload(util::BinaryReader& r);
};

enum class JobState : std::uint8_t {
  kQueued = 0,
  kRunning = 1,
  kDone = 2,
  kFailed = 3,
  kCancelled = 4,
};

/// The answer to a what-if: the flow's identity hashes plus the summary
/// scalars route_cli prints. Hashes are the bit-identity oracle — a
/// service answer must carry exactly the route_hash/state_fingerprint a
/// direct in-process FlowSession run produces.
struct FlowSummary {
  std::uint8_t flow = 2;
  double bound_v = 0.0;
  std::uint64_t route_hash = 0;   ///< router::route_hash(fr.routing())
  std::uint64_t state_hash = 0;   ///< gsino::state_fingerprint(fr)
  std::uint64_t violating = 0;
  std::uint64_t unfixable = 0;
  double total_wirelength_um = 0.0;
  double avg_wirelength_um = 0.0;
  double total_shields = 0.0;
  double route_s = 0.0;
  double sino_s = 0.0;
  double refine_s = 0.0;
  double compute_s = 0.0;  ///< server-side wall clock for this job
  std::uint8_t warm = 0;   ///< Phase I reused (session cache or store)

  void encode(util::BinaryWriter& w) const;
  bool decode(util::BinaryReader& r);
};

struct Result {
  static constexpr PduType kType = PduType::kResult;
  std::uint64_t ticket = 0;
  JobState state = JobState::kQueued;
  /// Valid iff state == kDone.
  FlowSummary summary;
  /// Human-readable failure reason iff state == kFailed; also carries
  /// "unknown ticket" when the ticket was never issued (state kFailed).
  std::string error;

  void encode_payload(util::BinaryWriter& w) const;
  bool decode_payload(util::BinaryReader& r);
};

struct Cancel {
  static constexpr PduType kType = PduType::kCancel;
  std::uint64_t ticket = 0;

  void encode_payload(util::BinaryWriter& w) const;
  bool decode_payload(util::BinaryReader& r);
};

struct CancelAck {
  static constexpr PduType kType = PduType::kCancelAck;
  std::uint64_t ticket = 0;
  std::uint8_t cancelled = 0;  ///< false when already running or terminal

  void encode_payload(util::BinaryWriter& w) const;
  bool decode_payload(util::BinaryReader& r);
};

struct Stats {
  static constexpr PduType kType = PduType::kStats;

  void encode_payload(util::BinaryWriter& w) const;
  bool decode_payload(util::BinaryReader& r);
};

struct StatsReply {
  static constexpr PduType kType = PduType::kStatsReply;
  struct Metric {
    std::string name;
    std::uint8_t kind = 0;  ///< 0 counter, 1 gauge (obs::MetricKind order)
    double value = 0.0;
  };
  std::vector<Metric> metrics;

  void encode_payload(util::BinaryWriter& w) const;
  bool decode_payload(util::BinaryReader& r);
};

enum class ErrorCode : std::uint32_t {
  kMalformed = 1,    ///< frame failed validation; connection closes
  kNeedHello = 2,    ///< first PDU was not Hello
  kUnsupported = 3,  ///< valid frame, but no handler for the type
  kInternal = 4,
};

struct Error {
  static constexpr PduType kType = PduType::kError;
  ErrorCode code = ErrorCode::kInternal;
  std::string message;

  void encode_payload(util::BinaryWriter& w) const;
  bool decode_payload(util::BinaryReader& r);
};

// ------------------------------------------------------------- framing

struct Frame {
  PduType type = PduType::kError;
  std::vector<std::uint8_t> payload;
};

/// Wraps a payload in the magic/version/type/size header and checksum
/// trailer described in the file comment.
std::vector<std::uint8_t> encode_frame(PduType type,
                                       std::vector<std::uint8_t> payload);

/// Encodes one typed PDU into a complete frame.
template <typename Pdu>
std::vector<std::uint8_t> encode(const Pdu& pdu) {
  util::BinaryWriter w;
  pdu.encode_payload(w);
  return encode_frame(Pdu::kType, w.take());
}

enum class ParseStatus {
  kNeedMore,  ///< prefix is a valid partial frame; read more bytes
  kFrame,     ///< one complete, checksum-valid frame peeled into `out`
  kBad,       ///< the prefix can never become a valid frame
};

/// Incremental frame parser over a byte stream. On kFrame, `*consumed`
/// bytes (header + payload + checksum) have been used and `out` holds the
/// validated type + payload; on kNeedMore/kBad, *consumed is 0.
ParseStatus try_parse(const std::uint8_t* data, std::size_t size,
                      std::size_t* consumed, Frame* out);

/// Decodes a validated frame into the typed PDU; nullopt on type mismatch
/// or any payload-level validation failure (short, overlong, bad enum).
template <typename Pdu>
std::optional<Pdu> decode(const Frame& frame) {
  if (frame.type != Pdu::kType) return std::nullopt;
  util::BinaryReader r(frame.payload.data(), frame.payload.size());
  Pdu pdu;
  if (!pdu.decode_payload(r) || !r.at_end()) return std::nullopt;
  return pdu;
}

// --------------------------------------------- blocking socket helpers
//
// Shared by server connections and the client: frames are written with a
// full-write loop (EINTR-safe, SIGPIPE suppressed) and read through a
// small buffered reader that peels frames off the stream with try_parse.

bool send_frame(int fd, const std::vector<std::uint8_t>& bytes);

class FrameReader {
 public:
  enum class Status { kFrame, kClosed, kBad, kError };

  explicit FrameReader(int fd) : fd_(fd) {}

  /// Blocks until one complete frame arrives (kFrame), the peer closes
  /// cleanly between frames (kClosed), the stream turns malformed (kBad),
  /// or the socket errors (kError).
  Status next(Frame* out);

 private:
  int fd_;
  std::vector<std::uint8_t> buf_;
};

}  // namespace rlcr::service
