#include "service/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/problem.h"
#include "core/session.h"
#include "netlist/ispd98_synth.h"
#include "netlist/synthetic.h"
#include "obs/trace.h"
#include "router/route_types.h"
#include "store/artifact_store.h"
#include "util/stopwatch.h"

namespace rlcr::service {

namespace {

constexpr const char* kServerName = "rlcr-whatif";
constexpr std::uint32_t kMaxPollWaitMs = 60'000;

bool validate_query(const WhatIfQuery& q) {
  if (q.flow > 2) return false;
  if (!(q.scale > 0.0) || !(q.rate >= 0.0 && q.rate <= 1.0)) return false;
  if (!(q.bound_v > 0.0)) return false;
  if (q.source == QuerySource::kTiny) {
    if (q.tiny_nets == 0 || q.tiny_nets > 1'000'000) return false;
  } else if (q.circuit.empty()) {
    return false;
  }
  if (q.has_bound && !(q.scenario_bound_v > 0.0)) return false;
  if (q.has_margin && !(q.scenario_margin > 0.0)) return false;
  if (q.quality >= steiner::kTreeProfileCount) return false;
  return true;
}

/// a += (after - before), field by field — the per-job delta fold that
/// keeps the server's aggregate immune to session eviction.
void fold_delta(gsino::StageCounters& a, const gsino::StageCounters& before,
                const gsino::StageCounters& after) {
  const auto add = [](std::size_t& acc, std::size_t b, std::size_t c) {
    acc += c - b;
  };
  add(a.route_requests, before.route_requests, after.route_requests);
  add(a.route_executed, before.route_executed, after.route_executed);
  add(a.route_loaded, before.route_loaded, after.route_loaded);
  add(a.budget_requests, before.budget_requests, after.budget_requests);
  add(a.budget_executed, before.budget_executed, after.budget_executed);
  add(a.budget_loaded, before.budget_loaded, after.budget_loaded);
  add(a.solve_requests, before.solve_requests, after.solve_requests);
  add(a.solve_executed, before.solve_executed, after.solve_executed);
  add(a.solve_loaded, before.solve_loaded, after.solve_loaded);
  add(a.refine_requests, before.refine_requests, after.refine_requests);
  add(a.refine_executed, before.refine_executed, after.refine_executed);
  add(a.refine_loaded, before.refine_loaded, after.refine_loaded);
  add(a.route_spec_attempted, before.route_spec_attempted,
      after.route_spec_attempted);
  add(a.route_spec_committed, before.route_spec_committed,
      after.route_spec_committed);
  add(a.route_spec_replayed, before.route_spec_replayed,
      after.route_spec_replayed);
  add(a.refine_spec_attempted, before.refine_spec_attempted,
      after.refine_spec_attempted);
  add(a.refine_spec_committed, before.refine_spec_committed,
      after.refine_spec_committed);
  add(a.refine_spec_replayed, before.refine_spec_replayed,
      after.refine_spec_replayed);
}

}  // namespace

// ------------------------------------------- shared query interpretation

std::unique_ptr<gsino::RoutingProblem> assemble_problem(
    const WhatIfQuery& q, int job_threads, std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return nullptr;
  };
  if (!validate_query(q)) return fail("query failed validation");

  gsino::GsinoParams params;
  params.sensitivity_rate = q.rate;
  params.crosstalk_bound_v = q.bound_v;
  params.seed = q.seed;
  params.threads = job_threads;
  params.router.threads = job_threads;

  netlist::Netlist design;
  grid::RegionGridSpec gspec;
  const auto gspec_from = [&gspec](const netlist::SyntheticSpec& spec) {
    gspec.cols = spec.grid_cols;
    gspec.rows = spec.grid_rows;
    gspec.region_w_um = spec.chip_w_um / spec.grid_cols;
    gspec.region_h_um = spec.chip_h_um / spec.grid_rows;
    gspec.h_capacity = spec.h_capacity;
    gspec.v_capacity = spec.v_capacity;
  };
  switch (q.source) {
    case QuerySource::kTiny: {
      const netlist::SyntheticSpec spec =
          netlist::tiny_spec(static_cast<std::size_t>(q.tiny_nets), q.seed);
      design = netlist::generate(spec);
      gspec_from(spec);
      break;
    }
    case QuerySource::kSynthetic: {
      const auto suite = netlist::ibm_suite(q.scale);
      const netlist::SyntheticSpec* spec = nullptr;
      for (const netlist::SyntheticSpec& s : suite) {
        if (s.name == q.circuit) spec = &s;
      }
      if (spec == nullptr) return fail("unknown circuit '" + q.circuit + "'");
      design = netlist::generate(*spec);
      gspec_from(*spec);
      break;
    }
    case QuerySource::kIspd98: {
      const auto classes = netlist::ispd98_classes(q.scale);
      const netlist::Ispd98ClassSpec* spec =
          netlist::find_ispd98_class(classes, q.circuit);
      if (spec == nullptr) {
        return fail("unknown ISPD98 class '" + q.circuit + "'");
      }
      netlist::Ispd98Instance inst = netlist::make_ispd98_instance(*spec);
      design = std::move(inst.design);
      gspec = inst.gspec;
      break;
    }
  }
  return std::make_unique<gsino::RoutingProblem>(design, gspec, params);
}

gsino::Scenario scenario_of(const WhatIfQuery& q) {
  gsino::Scenario s;
  if (q.has_bound) s.bound_v = q.scenario_bound_v;
  if (q.has_margin) s.budget_margin = q.scenario_margin;
  if (q.has_anneal) s.anneal_phase2 = q.scenario_anneal;
  // quality 0 (kFast) stays unset: it is the flows' default profile, so the
  // default-tier query shares its routing artifact with no-tier queries.
  if (q.quality != 0) {
    s.tree_profile = static_cast<steiner::TreeProfile>(q.quality);
  }
  return s;
}

FlowSummary summarize(const gsino::FlowResult& fr) {
  FlowSummary s;
  s.flow = static_cast<std::uint8_t>(fr.kind);
  s.bound_v = fr.bound_v;
  s.route_hash = router::route_hash(fr.routing());
  s.state_hash = gsino::state_fingerprint(fr);
  s.violating = fr.violating;
  s.unfixable = fr.unfixable;
  s.total_wirelength_um = fr.total_wirelength_um;
  s.avg_wirelength_um = fr.avg_wirelength_um;
  s.total_shields = fr.total_shields;
  s.route_s = fr.timing.route_s;
  s.sino_s = fr.timing.sino_s;
  s.refine_s = fr.timing.refine_s;
  return s;
}

// ----------------------------------------------------------------- Impl

struct Server::Impl {
  explicit Impl(const ServerOptions& o) : options(o) {}

  struct Job {
    std::uint64_t ticket = 0;
    std::uint64_t coalesce_key = 0;
    std::uint64_t session_key = 0;
    WhatIfQuery query;
    JobState state = JobState::kQueued;
    FlowSummary summary;
    std::string error;
    /// Every client id attached to this ticket (duplicates allowed: the
    /// same client may submit the identical query twice); each attach is
    /// one in-flight unit released at the terminal transition.
    std::vector<std::uint64_t> clients;
  };

  struct ClientRec {
    std::deque<std::uint64_t> fifo;  ///< queued tickets, submit order
    std::size_t inflight = 0;
  };

  /// One hot problem + session. FlowSession is not internally locked;
  /// run_mu serializes both lazy construction and every run() on it.
  struct SessionEntry {
    std::uint64_t key = 0;
    std::mutex run_mu;
    std::unique_ptr<gsino::RoutingProblem> problem;
    std::unique_ptr<gsino::FlowSession> session;
    std::uint64_t last_used = 0;  ///< recency stamp (guarded by Impl::mu)
  };

  ServerOptions options;

  mutable std::mutex mu;
  std::condition_variable job_cv;   ///< workers: work available / stop
  std::condition_variable done_cv;  ///< pollers: some job went terminal
  bool started = false;
  bool stopping = false;
  int listen_fd = -1;
  std::thread accept_thread;
  std::vector<std::thread> worker_threads;
  std::vector<std::thread> conn_threads;
  std::vector<int> conn_fds;

  ServiceStats stats;
  gsino::StageCounters agg;  ///< session counter deltas of completed jobs
  std::uint64_t next_client = 0;
  std::uint64_t next_ticket = 0;
  std::uint64_t use_counter = 0;
  std::size_t queued = 0;

  std::unordered_map<std::uint64_t, std::shared_ptr<Job>> jobs;
  /// coalesce key -> ticket, for queued/running jobs only (retired at the
  /// terminal transition — a finished answer is served by the session
  /// cache, not by this table).
  std::unordered_map<std::uint64_t, std::uint64_t> live_by_key;
  std::unordered_map<std::uint64_t, ClientRec> clients;
  std::vector<std::uint64_t> rr_order;  ///< round-robin client cursor order
  std::size_t rr_next = 0;
  std::unordered_map<std::uint64_t, std::shared_ptr<SessionEntry>> sessions;

  // ---- lifecycle -------------------------------------------------------

  bool start(std::string* error);
  void stop();
  void accept_loop();
  void serve_conn(int fd);
  void worker_loop();

  // ---- request handling (conn threads) ---------------------------------

  SubmitAck handle_submit(std::uint64_t client_id, const WhatIfQuery& query);
  Result handle_poll(const Poll& poll);
  CancelAck handle_cancel(const Cancel& cancel);

  // ---- execution (worker threads) --------------------------------------

  std::shared_ptr<Job> next_job_locked();
  void execute(const std::shared_ptr<Job>& job);
  std::shared_ptr<SessionEntry> session_for_locked(std::uint64_t key);
  void evict_sessions_locked();
  void finish(const std::shared_ptr<Job>& job, JobState state);

  obs::MetricsSnapshot metrics() const;
};

bool Server::Impl::start(std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    if (listen_fd >= 0) {
      ::close(listen_fd);
      listen_fd = -1;
    }
    return false;
  };
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options.socket_path.empty() ||
      options.socket_path.size() >= sizeof addr.sun_path) {
    return fail("socket path empty or too long for sockaddr_un");
  }
  std::memcpy(addr.sun_path, options.socket_path.c_str(),
              options.socket_path.size() + 1);
  listen_fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd < 0) return fail("socket(): " + std::string(strerror(errno)));
  ::unlink(options.socket_path.c_str());  // stale socket from a dead server
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    return fail("bind(" + options.socket_path +
                "): " + std::string(strerror(errno)));
  }
  if (::listen(listen_fd, 64) != 0) {
    return fail("listen(): " + std::string(strerror(errno)));
  }

  started = true;
  stopping = false;
  accept_thread = std::thread([this] { accept_loop(); });
  const int workers = std::max(1, options.workers);
  worker_threads.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    worker_threads.emplace_back([this] { worker_loop(); });
  }
  return true;
}

void Server::Impl::stop() {
  {
    std::lock_guard<std::mutex> lock(mu);
    if (!started || stopping) return;
    stopping = true;
    // Fail everything still queued so pollers get a terminal answer and
    // workers have nothing left to pick up.
    for (auto& [ticket, job] : jobs) {
      if (job->state == JobState::kQueued) {
        job->state = JobState::kFailed;
        job->error = "server stopped";
        live_by_key.erase(job->coalesce_key);
        for (const std::uint64_t cid : job->clients) {
          auto it = clients.find(cid);
          if (it != clients.end() && it->second.inflight > 0) {
            --it->second.inflight;
          }
        }
      }
    }
    queued = 0;
    stats.queue_depth = 0;
    // Wake blocked readers: shutdown() forces recv() to return 0.
    for (const int fd : conn_fds) ::shutdown(fd, SHUT_RDWR);
  }
  job_cv.notify_all();
  done_cv.notify_all();

  if (accept_thread.joinable()) accept_thread.join();
  for (std::thread& t : worker_threads) {
    if (t.joinable()) t.join();
  }
  // Conn threads exit once their peer closes or the shutdown() above lands.
  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> lock(mu);
    conns.swap(conn_threads);
  }
  for (std::thread& t : conns) {
    if (t.joinable()) t.join();
  }
  if (listen_fd >= 0) {
    ::close(listen_fd);
    listen_fd = -1;
  }
  ::unlink(options.socket_path.c_str());
  {
    std::lock_guard<std::mutex> lock(mu);
    started = false;
  }
}

void Server::Impl::accept_loop() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (stopping) return;
    }
    pollfd p{listen_fd, POLLIN, 0};
    const int rc = ::poll(&p, 1, /*timeout_ms=*/200);
    if (rc <= 0) continue;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    std::lock_guard<std::mutex> lock(mu);
    if (stopping) {
      ::close(fd);
      return;
    }
    conn_fds.push_back(fd);
    ++stats.connections_opened;
    ++stats.connections_open;
    conn_threads.emplace_back([this, fd] { serve_conn(fd); });
  }
}

void Server::Impl::serve_conn(int fd) {
  FrameReader reader(fd);
  bool hello_done = false;
  std::uint64_t client_id = 0;
  const auto bail = [fd](ErrorCode code, const std::string& message) {
    Error err;
    err.code = code;
    err.message = message;
    send_frame(fd, encode(err));
  };

  for (;;) {
    Frame frame;
    const FrameReader::Status st = reader.next(&frame);
    if (st == FrameReader::Status::kClosed ||
        st == FrameReader::Status::kError) {
      break;
    }
    if (st == FrameReader::Status::kBad) {
      {
        std::lock_guard<std::mutex> lock(mu);
        ++stats.malformed_frames;
      }
      bail(ErrorCode::kMalformed, "malformed frame");
      break;
    }

    if (!hello_done) {
      const std::optional<Hello> hello = decode<Hello>(frame);
      if (!hello) {
        std::lock_guard<std::mutex> lock(mu);
        ++stats.malformed_frames;
      }
      if (!hello || frame.type != PduType::kHello) {
        bail(frame.type == PduType::kHello ? ErrorCode::kMalformed
                                           : ErrorCode::kNeedHello,
             "expected Hello");
        break;
      }
      if (hello->protocol_version != kProtocolVersion) {
        bail(ErrorCode::kMalformed, "protocol version mismatch");
        break;
      }
      HelloAck ack;
      ack.server_name = kServerName;
      {
        std::lock_guard<std::mutex> lock(mu);
        client_id = ++next_client;
        clients.emplace(client_id, ClientRec{});
        rr_order.push_back(client_id);
      }
      ack.client_id = client_id;
      if (!send_frame(fd, encode(ack))) break;
      hello_done = true;
      continue;
    }

    bool sent = true;
    if (const auto submit = decode<Submit>(frame)) {
      sent = send_frame(fd, encode(handle_submit(client_id, submit->query)));
    } else if (const auto poll_pdu = decode<Poll>(frame)) {
      sent = send_frame(fd, encode(handle_poll(*poll_pdu)));
    } else if (const auto cancel = decode<Cancel>(frame)) {
      sent = send_frame(fd, encode(handle_cancel(*cancel)));
    } else if (decode<Stats>(frame)) {
      const obs::MetricsSnapshot snap = metrics();
      StatsReply reply;
      reply.metrics.reserve(snap.metrics().size());
      for (const obs::Metric& m : snap.metrics()) {
        reply.metrics.push_back(StatsReply::Metric{
            m.name, m.kind == obs::MetricKind::kGauge ? std::uint8_t{1}
                                                      : std::uint8_t{0},
            m.value});
      }
      sent = send_frame(fd, encode(reply));
    } else {
      // Valid frame, but either a server-to-client type or a payload that
      // failed decode — per the protocol contract, reject and close.
      {
        std::lock_guard<std::mutex> lock(mu);
        ++stats.malformed_frames;
      }
      bail(ErrorCode::kUnsupported, "unhandled PDU");
      break;
    }
    if (!sent) break;
  }

  ::close(fd);
  std::lock_guard<std::mutex> lock(mu);
  --stats.connections_open;
  conn_fds.erase(std::remove(conn_fds.begin(), conn_fds.end(), fd),
                 conn_fds.end());
}

SubmitAck Server::Impl::handle_submit(std::uint64_t client_id,
                                      const WhatIfQuery& query) {
  SubmitAck ack;
  std::lock_guard<std::mutex> lock(mu);
  ++stats.submits;
  if (stopping) {
    ack.reject = RejectReason::kShuttingDown;
    return ack;
  }
  if (!validate_query(query)) {
    ++stats.rejected_bad_query;
    ack.reject = RejectReason::kBadQuery;
    return ack;
  }
  ClientRec& rec = clients[client_id];
  if (rec.inflight >= options.max_inflight_per_client) {
    ++stats.rejected_inflight_cap;
    ack.reject = RejectReason::kInflightCap;
    return ack;
  }

  const std::uint64_t ckey = query_coalesce_key(query);
  if (const auto live = live_by_key.find(ckey); live != live_by_key.end()) {
    // Same (problem, flow, scenario) already queued or running: attach.
    const std::shared_ptr<Job>& job = jobs.at(live->second);
    job->clients.push_back(client_id);
    ++rec.inflight;
    ++stats.coalesce_hits;
    ++stats.accepted;
    ack.ticket = job->ticket;
    ack.coalesced = 1;
    return ack;
  }

  if (queued >= options.max_queue) {
    ++stats.rejected_queue_full;
    ack.reject = RejectReason::kQueueFull;
    return ack;
  }

  auto job = std::make_shared<Job>();
  job->ticket = ++next_ticket;
  job->coalesce_key = ckey;
  job->session_key = query_session_key(query);
  job->query = query;
  job->clients.push_back(client_id);
  jobs.emplace(job->ticket, job);
  live_by_key.emplace(ckey, job->ticket);
  rec.fifo.push_back(job->ticket);
  ++rec.inflight;
  ++queued;
  stats.queue_depth = queued;
  stats.queue_peak = std::max(stats.queue_peak, queued);
  ++stats.accepted;
  ack.ticket = job->ticket;
  job_cv.notify_one();
  return ack;
}

Result Server::Impl::handle_poll(const Poll& poll) {
  Result res;
  res.ticket = poll.ticket;
  std::unique_lock<std::mutex> lock(mu);
  const auto it = jobs.find(poll.ticket);
  if (it == jobs.end()) {
    res.state = JobState::kFailed;
    res.error = "unknown ticket";
    return res;
  }
  const std::shared_ptr<Job> job = it->second;
  const auto terminal = [&] {
    return stopping || job->state == JobState::kDone ||
           job->state == JobState::kFailed ||
           job->state == JobState::kCancelled;
  };
  if (poll.wait_ms > 0 && !terminal()) {
    done_cv.wait_for(lock,
                     std::chrono::milliseconds(
                         std::min(poll.wait_ms, kMaxPollWaitMs)),
                     terminal);
  }
  res.state = job->state;
  if (job->state == JobState::kDone) res.summary = job->summary;
  if (job->state == JobState::kFailed) res.error = job->error;
  return res;
}

CancelAck Server::Impl::handle_cancel(const Cancel& cancel) {
  CancelAck ack;
  ack.ticket = cancel.ticket;
  std::lock_guard<std::mutex> lock(mu);
  const auto it = jobs.find(cancel.ticket);
  // Only a still-queued job can be cancelled; running compute is never
  // interrupted (it may be coalesced with other clients, and a FlowSession
  // mid-run has no safe preemption point).
  if (it == jobs.end() || it->second->state != JobState::kQueued) {
    return ack;
  }
  const std::shared_ptr<Job>& job = it->second;
  job->state = JobState::kCancelled;
  live_by_key.erase(job->coalesce_key);
  for (const std::uint64_t cid : job->clients) {
    auto cit = clients.find(cid);
    if (cit != clients.end() && cit->second.inflight > 0) {
      --cit->second.inflight;
    }
  }
  // The fifo entry stays as a tombstone; dispatch skips non-queued jobs.
  --queued;
  stats.queue_depth = queued;
  ++stats.cancelled;
  ack.cancelled = 1;
  done_cv.notify_all();
  return ack;
}

std::shared_ptr<Server::Impl::Job> Server::Impl::next_job_locked() {
  // Fair FIFO: resume the round-robin cursor where it left off, take the
  // oldest queued job of the first client that has one.
  for (std::size_t i = 0; i < rr_order.size(); ++i) {
    const std::size_t at = (rr_next + i) % rr_order.size();
    ClientRec& rec = clients[rr_order[at]];
    while (!rec.fifo.empty()) {
      const auto it = jobs.find(rec.fifo.front());
      if (it == jobs.end() || it->second->state != JobState::kQueued) {
        rec.fifo.pop_front();  // cancelled/failed tombstone
        continue;
      }
      rec.fifo.pop_front();
      rr_next = (at + 1) % rr_order.size();
      return it->second;
    }
  }
  return nullptr;
}

void Server::Impl::worker_loop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu);
      job_cv.wait(lock, [&] { return stopping || queued > 0; });
      if (stopping) return;
      job = next_job_locked();
      if (job == nullptr) continue;  // raced another worker
      --queued;
      stats.queue_depth = queued;
      job->state = JobState::kRunning;
    }
    execute(job);
  }
}

std::shared_ptr<Server::Impl::SessionEntry> Server::Impl::session_for_locked(
    std::uint64_t key) {
  auto it = sessions.find(key);
  std::shared_ptr<SessionEntry> entry;
  if (it != sessions.end()) {
    entry = it->second;
    ++stats.session_warm_hits;
    entry->last_used = ++use_counter;
  } else {
    entry = std::make_shared<SessionEntry>();
    entry->key = key;
    entry->last_used = ++use_counter;  // stamp before eviction scans
    sessions.emplace(key, entry);
    evict_sessions_locked();
  }
  return entry;
}

void Server::Impl::evict_sessions_locked() {
  while (sessions.size() > options.max_sessions) {
    auto victim = sessions.end();
    for (auto it = sessions.begin(); it != sessions.end(); ++it) {
      if (victim == sessions.end() ||
          it->second->last_used < victim->second->last_used) {
        victim = it;
      }
    }
    if (victim == sessions.end()) return;
    // Dropping the map reference is all eviction means: a worker mid-run
    // keeps its shared_ptr alive, and the next query on this key rebuilds
    // (warm-starting from the shared store when one is attached).
    sessions.erase(victim);
    ++stats.sessions_evicted;
  }
}

void Server::Impl::execute(const std::shared_ptr<Job>& job) {
  RLCR_TRACE_SPAN(span, "service.job", "service");
  span.arg("ticket", static_cast<double>(job->ticket));
  span.arg("flow", static_cast<double>(job->query.flow));
  util::Stopwatch watch;

  std::shared_ptr<SessionEntry> entry;
  {
    std::lock_guard<std::mutex> lock(mu);
    entry = session_for_locked(job->session_key);
  }

  try {
    std::lock_guard<std::mutex> run_lock(entry->run_mu);
    if (entry->problem == nullptr) {
      RLCR_TRACE_SPAN(assemble_span, "service.assemble", "service");
      std::string why;
      entry->problem =
          assemble_problem(job->query, options.job_threads, &why);
      if (entry->problem == nullptr) {
        std::lock_guard<std::mutex> lock(mu);
        sessions.erase(entry->key);
        job->error = why;
        finish(job, JobState::kFailed);
        return;
      }
      gsino::SessionOptions sopt;
      sopt.store = options.store;
      entry->session = std::make_unique<gsino::FlowSession>(*entry->problem,
                                                            std::move(sopt));
      std::lock_guard<std::mutex> lock(mu);
      ++stats.sessions_created;
    }

    const gsino::StageCounters before = entry->session->counters();
    const gsino::FlowResult fr = entry->session->run(
        static_cast<gsino::FlowKind>(job->query.flow),
        scenario_of(job->query));
    const gsino::StageCounters after = entry->session->counters();

    job->summary = summarize(fr);
    job->summary.compute_s = watch.seconds();
    job->summary.warm = after.route_executed == before.route_executed ? 1 : 0;
    {
      std::lock_guard<std::mutex> lock(mu);
      fold_delta(agg, before, after);
      finish(job, JobState::kDone);
    }
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lock(mu);
    job->error = e.what();
    finish(job, JobState::kFailed);
  }
}

/// Terminal transition; callers hold `mu`.
void Server::Impl::finish(const std::shared_ptr<Job>& job, JobState state) {
  job->state = state;
  live_by_key.erase(job->coalesce_key);
  for (const std::uint64_t cid : job->clients) {
    auto it = clients.find(cid);
    if (it != clients.end() && it->second.inflight > 0) --it->second.inflight;
  }
  if (state == JobState::kDone) {
    ++stats.jobs_executed;
  } else if (state == JobState::kFailed) {
    ++stats.jobs_failed;
  }
  done_cv.notify_all();
}

obs::MetricsSnapshot Server::Impl::metrics() const {
  obs::MetricsSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(mu);
    const ServiceStats& s = stats;
    snap.set_counter("service.connections_opened",
                     static_cast<double>(s.connections_opened));
    snap.set_gauge("service.connections_open",
                   static_cast<double>(s.connections_open));
    snap.set_counter("service.submits", static_cast<double>(s.submits));
    snap.set_counter("service.accepted", static_cast<double>(s.accepted));
    snap.set_counter("service.rejected_queue_full",
                     static_cast<double>(s.rejected_queue_full));
    snap.set_counter("service.rejected_inflight_cap",
                     static_cast<double>(s.rejected_inflight_cap));
    snap.set_counter("service.rejected_bad_query",
                     static_cast<double>(s.rejected_bad_query));
    snap.set_counter("service.coalesce_hits",
                     static_cast<double>(s.coalesce_hits));
    snap.set_counter("service.jobs_executed",
                     static_cast<double>(s.jobs_executed));
    snap.set_counter("service.jobs_failed",
                     static_cast<double>(s.jobs_failed));
    snap.set_counter("service.cancelled", static_cast<double>(s.cancelled));
    snap.set_counter("service.sessions_created",
                     static_cast<double>(s.sessions_created));
    snap.set_counter("service.sessions_evicted",
                     static_cast<double>(s.sessions_evicted));
    snap.set_counter("service.session_warm_hits",
                     static_cast<double>(s.session_warm_hits));
    snap.set_gauge("service.queue_depth",
                   static_cast<double>(s.queue_depth));
    snap.set_counter("service.queue_peak",
                     static_cast<double>(s.queue_peak));
    snap.set_counter("service.malformed_frames",
                     static_cast<double>(s.malformed_frames));
    snap.set_gauge("service.sessions_open",
                   static_cast<double>(sessions.size()));
    obs::append_metrics(snap, agg);
  }
  if (options.store != nullptr) {
    obs::append_metrics(snap, options.store->stats());
  }
  return snap;
}

// --------------------------------------------------------------- Server

Server::Server(ServerOptions options)
    : options_(std::move(options)), impl_(std::make_unique<Impl>(options_)) {}

Server::~Server() { stop(); }

bool Server::start(std::string* error) { return impl_->start(error); }

void Server::stop() { impl_->stop(); }

bool Server::running() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->started && !impl_->stopping;
}

bool Server::preload(const WhatIfQuery& query, std::string* error) {
  std::string why;
  std::unique_ptr<gsino::RoutingProblem> problem =
      assemble_problem(query, options_.job_threads, &why);
  if (problem == nullptr) {
    if (error != nullptr) *error = why;
    return false;
  }
  auto entry = std::make_shared<Impl::SessionEntry>();
  entry->key = query_session_key(query);
  entry->problem = std::move(problem);
  gsino::SessionOptions sopt;
  sopt.store = options_.store;
  entry->session = std::make_unique<gsino::FlowSession>(*entry->problem,
                                                        std::move(sopt));
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (impl_->sessions.count(entry->key) != 0) return true;  // already hot
  entry->last_used = ++impl_->use_counter;
  impl_->sessions.emplace(entry->key, std::move(entry));
  ++impl_->stats.sessions_created;
  impl_->evict_sessions_locked();
  return true;
}

ServiceStats Server::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->stats;
}

obs::MetricsSnapshot Server::metrics() const { return impl_->metrics(); }

}  // namespace rlcr::service
