// The what-if daemon: a long-lived server owning hot FlowSessions plus one
// shared ArtifactStore, answering concurrent what-if queries from many
// clients over the typed wire protocol (service/protocol.h) on a
// Unix-domain socket.
//
// Execution model
//   - one accept loop thread; one reader thread per connection (requests
//     on a connection are handled in arrival order; Submit returns
//     immediately with a ticket, Poll can block-wait server-side);
//   - `workers` dedicated compute threads drain the job queue. Dispatch is
//     fair FIFO across clients: a round-robin cursor walks the per-client
//     queues, so one chatty client cannot starve the rest;
//   - admission control: a bounded pending queue (kQueueFull) and a
//     per-client unfinished-job cap (kInflightCap) reject at Submit time —
//     the client sees the rejection reason instead of unbounded latency.
//
// Request coalescing: jobs are keyed by query_coalesce_key (problem recipe
// + flow + scenario). A Submit whose key matches a queued or running job
// attaches to that job's ticket instead of enqueueing a second compute —
// both clients receive the identical FlowSummary. Once a job completes its
// key is retired: a later identical Submit is a fresh job that re-runs
// through the session's in-memory artifact cache (cheap, and metrics then
// show the reuse as session.* requests without executes).
//
// Session LRU: sessions are keyed by query_session_key (the problem
// recipe, flow/scenario excluded), each entry owning its RoutingProblem +
// FlowSession. All sessions share the server's one ArtifactStore, so an
// evicted-and-recreated session warm-starts from disk. FlowSession is not
// internally synchronized; each entry carries a run mutex serializing the
// jobs that land on it (jobs on different sessions run concurrently).
//
// Determinism: a job executes exactly the calls a direct in-process run
// makes — assemble_problem() + FlowSession::run(flow, scenario) — so every
// response is bit-identical to a local run of the same query (the service
// integration test pins this against the session goldens).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "obs/metrics.h"
#include "service/protocol.h"

namespace rlcr::gsino {
class RoutingProblem;
struct Scenario;
struct FlowResult;
}  // namespace rlcr::gsino

namespace rlcr::store {
class ArtifactStore;
}

namespace rlcr::service {

struct ServerOptions {
  /// Unix-domain socket path the server binds (unlinked on stop). Paths
  /// must fit sockaddr_un (~100 bytes) — start() fails loudly otherwise.
  std::string socket_path;
  /// Dedicated compute threads draining the job queue.
  int workers = 2;
  /// Threads knob forwarded into each session's stages (GsinoParams
  /// threads / router.threads). Output-invariant by the parallel
  /// contracts; 0 = auto.
  int job_threads = 0;
  /// Hot-session LRU capacity (distinct problem recipes held in memory).
  std::size_t max_sessions = 4;
  /// Bounded pending queue across all clients (admission control).
  std::size_t max_queue = 64;
  /// Per-client unfinished-job cap (admission control).
  std::size_t max_inflight_per_client = 8;
  /// Optional shared artifact store attached to every session.
  std::shared_ptr<store::ArtifactStore> store;
};

/// Server-internal counters, surfaced as service.* metrics and through the
/// Stats PDU.
struct ServiceStats {
  std::size_t connections_opened = 0;
  std::size_t connections_open = 0;  ///< gauge
  std::size_t submits = 0;
  std::size_t accepted = 0;
  std::size_t rejected_queue_full = 0;
  std::size_t rejected_inflight_cap = 0;
  std::size_t rejected_bad_query = 0;
  std::size_t coalesce_hits = 0;
  std::size_t jobs_executed = 0;
  std::size_t jobs_failed = 0;
  std::size_t cancelled = 0;
  std::size_t sessions_created = 0;
  std::size_t sessions_evicted = 0;
  std::size_t session_warm_hits = 0;  ///< job landed on an existing session
  std::size_t queue_depth = 0;        ///< gauge: currently queued jobs
  std::size_t queue_peak = 0;
  std::size_t malformed_frames = 0;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();  ///< stop()s if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the socket and starts the accept loop + workers. False (with a
  /// reason in *error) on bind/listen failure; the server is then inert.
  bool start(std::string* error = nullptr);

  /// Stops accepting, fails queued jobs, joins every thread, unlinks the
  /// socket. Idempotent. Running jobs complete before their worker joins.
  void stop();

  bool running() const;
  const std::string& socket_path() const { return options_.socket_path; }

  /// Pre-assembles the session for `query` so the first real request
  /// finds it hot (and pinned most-recent in the LRU). False when the
  /// query's problem cannot be assembled.
  bool preload(const WhatIfQuery& query, std::string* error = nullptr);

  ServiceStats stats() const;
  /// service.* counters/gauges plus the aggregated session.* stage
  /// counters and the attached store's store.* stats.
  obs::MetricsSnapshot metrics() const;

 private:
  struct Impl;
  ServerOptions options_;
  std::unique_ptr<Impl> impl_;
};

// ------------------------------------------- shared query interpretation
//
// The one place a WhatIfQuery becomes flow inputs — used by the server's
// workers, route_cli --connect's direct-run fallback messaging, and the
// bit-identity tests. Keeping it here (not in the server internals) is
// what makes "service response == direct run" checkable by construction.

/// Assembles the RoutingProblem a query names; null (with a reason in
/// *error) for unknown circuits or degenerate parameters.
std::unique_ptr<gsino::RoutingProblem> assemble_problem(
    const WhatIfQuery& query, int job_threads = 0,
    std::string* error = nullptr);

/// The Scenario a query's override flags describe.
gsino::Scenario scenario_of(const WhatIfQuery& query);

/// Flattens a FlowResult into the wire summary (hashes + scalars). `warm`
/// and `compute_s` are server-side execution facts, not flow outputs —
/// the caller fills them.
FlowSummary summarize(const gsino::FlowResult& result);

}  // namespace rlcr::service
