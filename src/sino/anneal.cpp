#include "sino/anneal.h"

#include <algorithm>
#include <cmath>

#include "sino/greedy.h"
#include "util/rng.h"

namespace rlcr::sino {

namespace {

/// Remove trailing empty slots (canonical form keeps area honest).
void trim(SlotVec& slots) {
  while (!slots.empty() && slots.back() == kEmptySlot) slots.pop_back();
}

}  // namespace

AnnealResult solve_anneal(const SinoInstance& instance,
                          const ktable::KeffModel& keff,
                          const AnnealOptions& options) {
  const SinoEvaluator eval(instance, keff);
  util::Xoshiro256 rng(util::SplitMix64::mix2(options.seed, 0xA22EA1));

  SlotVec current = solve_greedy(instance, keff);
  trim(current);
  double current_cost = eval.cost(current, options.violation_penalty);

  AnnealResult best;
  best.slots = current;
  best.cost = current_cost;
  best.feasible = eval.check(current).feasible();

  if (instance.net_count() == 0) return best;

  const double cool =
      std::pow(options.t_end / options.t_start,
               1.0 / std::max(1, options.iterations - 1));
  double temp = options.t_start;

  for (int it = 0; it < options.iterations; ++it, temp *= cool) {
    SlotVec trial = current;
    const double move = rng.uniform();

    if (move < 0.40 && trial.size() >= 2) {
      // Swap two slots (any occupancy kinds).
      const auto a = static_cast<std::size_t>(rng.below(trial.size()));
      const auto b = static_cast<std::size_t>(rng.below(trial.size()));
      std::swap(trial[a], trial[b]);
    } else if (move < 0.65 && trial.size() >= 2) {
      // Relocate one slot's occupant to a random position (rotate range).
      const auto a = static_cast<std::size_t>(rng.below(trial.size()));
      const auto b = static_cast<std::size_t>(rng.below(trial.size()));
      if (a != b) {
        const ktable::Slot v = trial[a];
        trial.erase(trial.begin() + static_cast<std::ptrdiff_t>(a));
        trial.insert(trial.begin() + static_cast<std::ptrdiff_t>(
                                         std::min(b, trial.size())),
                     v);
      }
    } else if (move < 0.85) {
      // Insert a shield at a random position.
      const auto pos = static_cast<std::size_t>(rng.below(trial.size() + 1));
      trial.insert(trial.begin() + static_cast<std::ptrdiff_t>(pos), kShieldSlot);
    } else {
      // Remove a random shield (if there is one).
      std::vector<std::size_t> shields;
      for (std::size_t s = 0; s < trial.size(); ++s) {
        if (trial[s] == kShieldSlot) shields.push_back(s);
      }
      if (shields.empty()) continue;
      const std::size_t pick = shields[rng.below(shields.size())];
      trial.erase(trial.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    trim(trial);

    const double trial_cost = eval.cost(trial, options.violation_penalty);
    const double delta = trial_cost - current_cost;
    if (delta <= 0.0 || rng.uniform() < std::exp(-delta / temp)) {
      current = std::move(trial);
      current_cost = trial_cost;
      ++best.moves_accepted;
      const bool feasible = eval.check(current).feasible();
      if ((feasible && !best.feasible) ||
          (feasible == best.feasible && current_cost < best.cost)) {
        best.slots = current;
        best.cost = current_cost;
        best.feasible = feasible;
      }
    }
  }

  // Final polish: drop any shield the best solution does not need.
  compact_shields(best.slots, eval);
  best.cost = eval.cost(best.slots, options.violation_penalty);
  best.feasible = eval.check(best.slots).feasible();
  return best;
}

}  // namespace rlcr::sino
