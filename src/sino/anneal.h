// Simulated-annealing SINO solver for min-area solutions.
//
// SINO is NP-hard [4]; the greedy constructor is fast but conservative with
// shields. The annealer starts from the greedy solution and explores
// net swaps, net moves, and shield insertion/removal under a geometric
// cooling schedule, tracking the best feasible solution seen. It is used
// where solution quality matters more than speed: fitting the Nss
// coefficients of Eq. (3) and the `sino_explorer` example.
#pragma once

#include <cstdint>

#include "sino/evaluator.h"

namespace rlcr::sino {

struct AnnealOptions {
  std::uint64_t seed = 1;
  int iterations = 20000;
  double t_start = 4.0;
  double t_end = 0.05;
  double violation_penalty = 50.0;
};

struct AnnealResult {
  SlotVec slots;
  bool feasible = false;
  double cost = 0.0;
  int moves_accepted = 0;
};

AnnealResult solve_anneal(const SinoInstance& instance,
                          const ktable::KeffModel& keff,
                          const AnnealOptions& options = {});

}  // namespace rlcr::sino
