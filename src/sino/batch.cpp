#include "sino/batch.h"

#include "obs/trace.h"
#include "parallel/parallel_for.h"
#include "sino/anneal.h"
#include "sino/evaluator.h"
#include "sino/greedy.h"
#include "sino/net_order.h"

namespace rlcr::sino {

namespace {

SinoBatchResult solve_one(const SinoBatchItem& item,
                          const ktable::KeffModel& keff) {
  SinoBatchResult out;
  if (item.instance == nullptr || item.instance->net_count() == 0) return out;
  const SinoInstance& inst = *item.instance;
  RLCR_TRACE_SPAN(span, "sino.solve", "sino");
  span.arg("nets", static_cast<double>(inst.net_count()));

  if (item.mode == SinoSolveMode::kNetOrder) {
    out.slots = solve_net_order(inst, keff).slots;
  } else {
    out.slots = solve_greedy(inst, keff);
    if (item.mode == SinoSolveMode::kGreedyAnneal) {
      const SinoEvaluator eval(inst, keff);
      if (!eval.check(out.slots).feasible()) {
        AnnealOptions ao;
        ao.seed = item.anneal_seed;
        ao.iterations = item.anneal_iterations;
        const AnnealResult best = solve_anneal(inst, keff, ao);
        out.annealed = true;
        if (best.feasible) out.slots = best.slots;
      }
    }
  }
  const SinoEvaluator eval(inst, keff);
  out.ki = eval.all_ki(out.slots);
  out.feasible = eval.check(out.slots).feasible();
  return out;
}

}  // namespace

std::vector<SinoBatchResult> solve_batch(const std::vector<SinoBatchItem>& items,
                                         const ktable::KeffModel& keff,
                                         const SinoBatchOptions& options) {
  return parallel::parallel_map<SinoBatchResult>(
      items.size(), options.grain, options.threads,
      [&](std::size_t i) { return solve_one(items[i], keff); });
}

}  // namespace rlcr::sino
