// Deterministic batch driver for per-region SINO solves.
//
// Phase II of the flow is embarrassingly parallel: every (region, dir)
// instance is self-contained (SinoInstance carries its own nets and
// sensitivity matrix), so the batch driver fans the solves out across the
// shared pool (src/parallel) and returns results slot-indexed — one result
// per item, written by exactly one chunk, so the output is independent of
// scheduling by construction. Annealing randomness is per-item: each item
// carries its own seed, from which the solver derives an independent
// deterministic RNG stream (util/rng.h), so no generator state is shared
// across items and results are bit-identical at any thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "ktable/keff.h"
#include "sino/instance.h"
#include "util/rng.h"

namespace rlcr::sino {

/// How one batch item is solved; mirrors the flow kinds of core/flow.h.
enum class SinoSolveMode {
  kNetOrder,      ///< ordering only, no shields (the ID+NO baseline)
  kGreedy,        ///< greedy constructive solve
  kGreedyAnneal,  ///< greedy, then annealing when the greedy result is
                  ///< infeasible (GSINO/iSINO with anneal_phase2)
};

struct SinoBatchItem {
  /// Instance to solve; null or empty instances yield an empty result.
  const SinoInstance* instance = nullptr;
  SinoSolveMode mode = SinoSolveMode::kGreedy;
  /// Seed of this item's private annealing RNG stream. Callers with no
  /// seeding convention of their own should derive it as
  /// stream_seed(base_seed, item_index).
  std::uint64_t anneal_seed = 1;
  int anneal_iterations = 3000;
};

struct SinoBatchResult {
  ktable::SlotVec slots;
  std::vector<double> ki;  ///< per instance net, Ki under `slots`
  bool feasible = false;
  bool annealed = false;  ///< annealing ran (mode kGreedyAnneal, greedy infeasible)
};

struct SinoBatchOptions {
  /// Pool participants. 0 = auto (RLCR_THREADS env var, else hardware
  /// concurrency); 1 = exact serial path. Results are identical at any
  /// value — solves are independent and results are slot-indexed.
  int threads = 0;
  /// Items per chunk; a function of nothing but the call site, never of the
  /// thread count (the determinism contract of src/parallel).
  std::size_t grain = 8;
};

/// An independent per-item RNG stream seed: SplitMix64-mixed so neighbouring
/// item indices land in uncorrelated parts of the stream space.
inline std::uint64_t stream_seed(std::uint64_t base, std::uint64_t item) {
  return util::SplitMix64::mix2(base, item);
}

/// Solve every item across the pool. Results are parallel to `items`.
std::vector<SinoBatchResult> solve_batch(const std::vector<SinoBatchItem>& items,
                                         const ktable::KeffModel& keff,
                                         const SinoBatchOptions& options = {});

}  // namespace rlcr::sino
