#include "sino/evaluator.h"

#include <algorithm>

namespace rlcr::sino {

bool SinoEvaluator::capacitively_adjacent(const SlotVec& slots, std::size_t i,
                                          std::size_t j) const {
  if (i == j || i >= slots.size() || j >= slots.size()) return false;
  const std::size_t lo = std::min(i, j);
  const std::size_t hi = std::max(i, j);
  for (std::size_t k = lo + 1; k < hi; ++k) {
    if (slots[k] != kEmptySlot) return false;
  }
  return true;
}

double SinoEvaluator::ki(const SlotVec& slots, std::size_t slot_index) const {
  const auto victim_net = slots[slot_index];
  if (victim_net < 0) return 0.0;
  const auto v = static_cast<std::size_t>(victim_net);
  return keff_->total_coupling(slots, slot_index, [&](ktable::Slot other) {
    return instance_->sensitive(v, static_cast<std::size_t>(other));
  });
}

std::vector<double> SinoEvaluator::all_ki(const SlotVec& slots) const {
  std::vector<double> out(instance_->net_count(), 0.0);
  for (std::size_t s = 0; s < slots.size(); ++s) {
    if (slots[s] >= 0) {
      out[static_cast<std::size_t>(slots[s])] = ki(slots, s);
    }
  }
  return out;
}

SinoCheck SinoEvaluator::check(const SlotVec& slots) const {
  SinoCheck result;

  // Placement completeness: every net exactly once.
  std::vector<int> seen(instance_->net_count(), 0);
  bool ok = true;
  for (ktable::Slot s : slots) {
    if (s >= 0) {
      const auto i = static_cast<std::size_t>(s);
      if (i >= seen.size() || seen[i]++) ok = false;
    }
  }
  for (int c : seen) {
    if (c != 1) ok = false;
  }
  result.placed_all = ok;

  // Capacitive: scan each occupied slot's next occupied slot to the right;
  // that single pair is the only capacitively-adjacent pair across the gap.
  std::ptrdiff_t prev = -1;
  for (std::size_t s = 0; s < slots.size(); ++s) {
    if (slots[s] == kEmptySlot) continue;
    if (prev >= 0) {
      const ktable::Slot a = slots[static_cast<std::size_t>(prev)];
      const ktable::Slot b = slots[s];
      if (a >= 0 && b >= 0 &&
          instance_->sensitive(static_cast<std::size_t>(a),
                               static_cast<std::size_t>(b))) {
        ++result.capacitive_violations;
      }
    }
    prev = static_cast<std::ptrdiff_t>(s);
  }

  // Inductive: Ki vs Kth per net.
  for (std::size_t s = 0; s < slots.size(); ++s) {
    if (slots[s] < 0) continue;
    const auto net_idx = static_cast<std::size_t>(slots[s]);
    const double k = ki(slots, s);
    const double bound = instance_->net(net_idx).kth;
    if (k > bound) {
      ++result.inductive_violations;
      result.inductive_excess += k - bound;
    }
  }
  return result;
}

int SinoEvaluator::area(const SlotVec& slots) {
  int n = 0;
  for (ktable::Slot s : slots) {
    if (s != kEmptySlot) ++n;
  }
  return n;
}

int SinoEvaluator::shield_count(const SlotVec& slots) {
  int n = 0;
  for (ktable::Slot s : slots) {
    if (s == kShieldSlot) ++n;
  }
  return n;
}

double SinoEvaluator::cost(const SlotVec& slots, double violation_penalty) const {
  const SinoCheck c = check(slots);
  double penalty = violation_penalty *
                   (c.capacitive_violations + c.inductive_violations);
  penalty += violation_penalty * c.inductive_excess;
  if (!c.placed_all) penalty += 1e6;
  return static_cast<double>(area(slots)) + penalty;
}

}  // namespace rlcr::sino
