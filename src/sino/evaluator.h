// Feasibility and cost evaluation of SINO solutions.
//
// A solution is a slot vector (ktable::SlotVec) whose non-negative entries
// are indices into the instance's net list. The evaluator answers the two
// constraint questions of [4] — capacitive freeness and inductive bounds —
// plus the area and violation measures the solvers optimize.
#pragma once

#include <vector>

#include "ktable/keff.h"
#include "sino/instance.h"

namespace rlcr::sino {

using ktable::kEmptySlot;
using ktable::kShieldSlot;
using ktable::SlotVec;

/// Violation summary of one solution.
struct SinoCheck {
  int capacitive_violations = 0;  ///< sensitive pairs on adjacent tracks
  double inductive_excess = 0.0;  ///< sum of max(0, Ki - Kth) over nets
  int inductive_violations = 0;   ///< nets with Ki > Kth
  bool placed_all = false;        ///< every net appears exactly once

  bool feasible() const {
    return placed_all && capacitive_violations == 0 && inductive_violations == 0;
  }
};

class SinoEvaluator {
 public:
  SinoEvaluator(const SinoInstance& instance, const ktable::KeffModel& keff)
      : instance_(&instance), keff_(&keff) {}

  const SinoInstance& instance() const { return *instance_; }
  const ktable::KeffModel& keff() const { return *keff_; }

  /// Two slots are capacitively adjacent when every slot strictly between
  /// them is empty (shields and other nets block capacitive coupling).
  bool capacitively_adjacent(const SlotVec& slots, std::size_t i,
                             std::size_t j) const;

  /// Total inductive coupling Ki of the net in slot `slot_index`, counting
  /// only aggressors the instance marks as sensitive to it.
  double ki(const SlotVec& slots, std::size_t slot_index) const;

  /// Ki for every net, indexed by net index (not slot).
  std::vector<double> all_ki(const SlotVec& slots) const;

  SinoCheck check(const SlotVec& slots) const;

  /// Occupied tracks (nets + shields); the SINO area objective.
  static int area(const SlotVec& slots);
  static int shield_count(const SlotVec& slots);

  /// Scalar objective for the annealer: area + penalty * violations.
  double cost(const SlotVec& slots, double violation_penalty = 50.0) const;

 private:
  const SinoInstance* instance_;
  const ktable::KeffModel* keff_;
};

}  // namespace rlcr::sino
