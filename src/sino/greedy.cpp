#include "sino/greedy.h"

#include <algorithm>
#include <numeric>

namespace rlcr::sino {

namespace {

/// Does the partial solution satisfy both SINO constraints?
bool partial_feasible(const SlotVec& slots, const SinoEvaluator& eval) {
  const SinoCheck c = eval.check(slots);
  // placed_all is false for partial solutions by design; ignore it here.
  return c.capacitive_violations == 0 && c.inductive_violations == 0;
}

}  // namespace

SlotVec solve_greedy(const SinoInstance& instance, const ktable::KeffModel& keff,
                     const GreedyOptions& options) {
  const SinoEvaluator eval(instance, keff);
  const std::size_t n = instance.net_count();

  // Most-sensitive-first placement: high-S_i nets constrain the layout the
  // most, so they go in while the stack is still flexible.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return instance.net(a).si > instance.net(b).si;
  });

  SlotVec slots;
  slots.reserve(n * 2);

  for (std::size_t net : order) {
    // Ordering first, shields last: try every insertion position without a
    // shield (append first — it is free when it works), and only spend a
    // shield when no arrangement accommodates the net. This is what keeps
    // the solution near the min-area ideal: a well-chosen ordering absorbs
    // most capacitive conflicts for free.
    bool placed = false;
    const auto positions = slots.size() + 1;
    for (std::size_t k = 0; k < positions; ++k) {
      const std::size_t pos = slots.size() - k;  // append, then walk left
      slots.insert(slots.begin() + static_cast<std::ptrdiff_t>(pos),
                   static_cast<ktable::Slot>(net));
      if (partial_feasible(slots, eval)) {
        placed = true;
        break;
      }
      slots.erase(slots.begin() + static_cast<std::ptrdiff_t>(pos));
    }
    if (placed) continue;

    // Shield + net at the end.
    slots.push_back(kShieldSlot);
    slots.push_back(static_cast<ktable::Slot>(net));
    if (partial_feasible(slots, eval)) continue;

    // Rare fallback: an inductive bound is still violated (capacitive
    // cannot be, the shield blocks the only adjacency). Interleave further
    // shields through the stack — every inserted shield attenuates all
    // couplings crossing it — until feasible, up to a small budget.
    for (int extra = 0; extra < 6 && !partial_feasible(slots, eval); ++extra) {
      // Alternate: left of the new net, then progressively deeper between
      // the earlier nets (covering aggressors on the far side too).
      const std::size_t pos =
          (extra % 2 == 0)
              ? slots.size() - 1
              : slots.size() / 2 - static_cast<std::size_t>(extra / 2) % (slots.size() / 2 + 1);
      slots.insert(slots.begin() + static_cast<std::ptrdiff_t>(
                                       std::min(pos, slots.size())),
                   kShieldSlot);
    }
  }

  int removed = compact_shields(slots, eval);
  (void)removed;

  if (options.max_tracks > 0 &&
      static_cast<int>(slots.size()) > options.max_tracks) {
    // Caller imposed a width cap; we keep the (infeasible-by-width) best
    // attempt — SINO area beyond capacity is exactly what the routing-area
    // model charges for.
  }
  return slots;
}

int compact_shields(SlotVec& slots, const SinoEvaluator& eval) {
  int removed = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t s = 0; s < slots.size(); ++s) {
      if (slots[s] != kShieldSlot) continue;
      SlotVec trial = slots;
      trial.erase(trial.begin() + static_cast<std::ptrdiff_t>(s));
      const SinoCheck c = eval.check(trial);
      if (c.capacitive_violations == 0 && c.inductive_violations == 0) {
        slots = std::move(trial);
        ++removed;
        changed = true;
        break;
      }
    }
  }
  // Drop trailing empties if any crept in.
  while (!slots.empty() && slots.back() == kEmptySlot) slots.pop_back();
  return removed;
}

}  // namespace rlcr::sino
