// Greedy constructive SINO solver.
//
// Nets are placed in decreasing sensitivity order; each net is appended to
// the current track stack, with a shield inserted first whenever appending
// directly would violate capacitive freeness against the previous occupant
// or push any net's Ki beyond its Kth. A final compaction pass removes
// shields that turn out to be unnecessary. Fast enough to run in every
// routing region of a full chip, and the seed for the annealing solver.
#pragma once

#include "sino/evaluator.h"

namespace rlcr::sino {

struct GreedyOptions {
  /// Hard cap on solution width (tracks). 0 = unlimited. When the cap binds
  /// the solver still returns its best attempt; callers check feasibility.
  int max_tracks = 0;
};

/// Build a SINO solution for `instance`. The result uses exactly the slots
/// it needs (no trailing empties).
SlotVec solve_greedy(const SinoInstance& instance, const ktable::KeffModel& keff,
                     const GreedyOptions& options = {});

/// Shield-compaction pass shared with the annealer: removes each shield
/// whose removal keeps the solution feasible. Returns the number removed.
int compact_shields(SlotVec& slots, const SinoEvaluator& eval);

}  // namespace rlcr::sino
