// A single-region SINO problem instance (after He & Lepak [4]).
//
// Given the nets that cross one routing region in one direction, SINO picks
// a track ordering and inserts shields so that
//   (1) no two mutually sensitive nets sit on capacitively adjacent tracks,
//   (2) every net's total inductive coupling Ki stays within its bound Kth,
// while using as few tracks (area) as possible.
//
// The instance is self-contained: pairwise sensitivities are stored as a
// dense matrix (regions hold tens of nets, so this is cheap), decoupling the
// solver from the full-chip sensitivity model.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace rlcr::sino {

/// One net crossing the region.
struct SinoNet {
  std::int32_t net_id = -1;  ///< caller's identifier (global NetId)
  double si = 0.0;           ///< sensitivity rate S_i (input to Eq. 3)
  double kth = 1.0;          ///< inductive coupling bound for this segment
};

class SinoInstance {
 public:
  SinoInstance() = default;
  explicit SinoInstance(std::vector<SinoNet> nets)
      : nets_(std::move(nets)),
        sensitive_(nets_.size() * nets_.size(), 0) {}

  std::size_t net_count() const { return nets_.size(); }
  const SinoNet& net(std::size_t i) const { return nets_[i]; }
  SinoNet& net(std::size_t i) { return nets_[i]; }
  const std::vector<SinoNet>& nets() const { return nets_; }

  /// Mark nets i and j (indices into nets()) as mutually sensitive.
  void set_sensitive(std::size_t i, std::size_t j, bool v = true) {
    if (i >= nets_.size() || j >= nets_.size()) {
      throw std::out_of_range("SinoInstance::set_sensitive");
    }
    sensitive_[i * nets_.size() + j] = v ? 1 : 0;
    sensitive_[j * nets_.size() + i] = v ? 1 : 0;
  }

  bool sensitive(std::size_t i, std::size_t j) const {
    if (i == j) return false;
    return sensitive_[i * nets_.size() + j] != 0;
  }

  /// Sum of S_i over all nets (Eq. 3 input).
  double sum_si() const {
    double acc = 0.0;
    for (const auto& n : nets_) acc += n.si;
    return acc;
  }
  /// Sum of S_i^2 over all nets (Eq. 3 input).
  double sum_si2() const {
    double acc = 0.0;
    for (const auto& n : nets_) acc += n.si * n.si;
    return acc;
  }

 private:
  std::vector<SinoNet> nets_;
  std::vector<char> sensitive_;  // dense symmetric matrix
};

}  // namespace rlcr::sino
