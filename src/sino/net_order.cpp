#include "sino/net_order.h"

#include <algorithm>
#include <numeric>

namespace rlcr::sino {

namespace {

int count_adjacent_sensitive(const SlotVec& slots, const SinoInstance& inst) {
  int count = 0;
  for (std::size_t s = 1; s < slots.size(); ++s) {
    const ktable::Slot a = slots[s - 1];
    const ktable::Slot b = slots[s];
    if (a >= 0 && b >= 0 &&
        inst.sensitive(static_cast<std::size_t>(a), static_cast<std::size_t>(b))) {
      ++count;
    }
  }
  return count;
}

}  // namespace

NetOrderResult solve_net_order(const SinoInstance& instance,
                               const ktable::KeffModel& keff) {
  (void)keff;  // ordering optimizes the capacitive objective only
  NetOrderResult out;
  const std::size_t n = instance.net_count();
  if (n == 0) return out;

  // Greedy chain: start from the net with the most sensitive partners (hard
  // to place later), then repeatedly append the unplaced net that is NOT
  // sensitive to the chain's tail, preferring the one with most remaining
  // sensitive partners (most constrained first).
  std::vector<int> partners(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (instance.sensitive(i, j)) ++partners[i];
    }
  }
  std::vector<char> placed(n, 0);
  std::size_t start = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (partners[i] > partners[start]) start = i;
  }
  out.slots.push_back(static_cast<ktable::Slot>(start));
  placed[start] = 1;

  for (std::size_t step = 1; step < n; ++step) {
    const auto tail = static_cast<std::size_t>(out.slots.back());
    std::ptrdiff_t best = -1;
    bool best_ok = false;
    for (std::size_t cand = 0; cand < n; ++cand) {
      if (placed[cand]) continue;
      const bool ok = !instance.sensitive(tail, cand);
      if (best < 0 || (ok && !best_ok) ||
          (ok == best_ok &&
           partners[cand] > partners[static_cast<std::size_t>(best)])) {
        best = static_cast<std::ptrdiff_t>(cand);
        best_ok = ok;
      }
    }
    out.slots.push_back(static_cast<ktable::Slot>(best));
    placed[static_cast<std::size_t>(best)] = 1;
  }

  // Pairwise swap improvement until no swap reduces the adjacency count.
  int current = count_adjacent_sensitive(out.slots, instance);
  bool improved = current > 0;
  while (improved) {
    improved = false;
    for (std::size_t a = 0; a < n && current > 0; ++a) {
      for (std::size_t b = a + 1; b < n; ++b) {
        std::swap(out.slots[a], out.slots[b]);
        const int trial = count_adjacent_sensitive(out.slots, instance);
        if (trial < current) {
          current = trial;
          improved = true;
        } else {
          std::swap(out.slots[a], out.slots[b]);
        }
      }
    }
  }
  out.adjacent_sensitive_pairs = current;
  return out;
}

}  // namespace rlcr::sino
