// Net ordering without shields (the "NO" in the ID+NO baseline).
//
// Orders the region's nets on consecutive tracks to minimize the number of
// capacitively adjacent sensitive pairs — all a router can do against
// crosstalk without spending shield area. Greedy chain construction plus a
// pairwise-swap improvement pass.
#pragma once

#include "sino/evaluator.h"

namespace rlcr::sino {

struct NetOrderResult {
  SlotVec slots;                  ///< a permutation of net indices, no shields
  int adjacent_sensitive_pairs = 0;
};

NetOrderResult solve_net_order(const SinoInstance& instance,
                               const ktable::KeffModel& keff);

}  // namespace rlcr::sino
