// Shield-count estimation: the paper's Eq. (3).
//
// During Phase I routing no SINO solutions exist yet, but the ID weight
// function must already account for the shield area each region will need.
// Eq. (3) estimates the min-area SINO shield count Nss of a region from
// aggregate statistics of the nets in it:
//
//   Nss = a1 * sum(Si^2) + a2 * (1/Nns) * sum(Si^2)
//       + a3 * sum(Si)   + a4 * (1/Nns) * sum(Si)
//       + a5 * Nns       + a6
//
// The coefficients live in the paper's technical report; here they are fit
// by least squares against min-area SINO solutions sampled over a range of
// net counts and sensitivity rates (the same procedure the TR describes),
// and the default coefficients ship from such a run. `bench_nss_model`
// validates the paper's <=10% accuracy claim against fresh solutions.
#pragma once

#include <array>
#include <cstdint>

#include "ktable/keff.h"
#include "sino/instance.h"

namespace rlcr::sino {

struct NssCoefficients {
  // a1..a6 in the order of Eq. (3).
  std::array<double, 6> a{0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
};

class NssModel {
 public:
  NssModel() : NssModel(default_coefficients()) {}
  explicit NssModel(const NssCoefficients& c) : c_(c) {}

  const NssCoefficients& coefficients() const { return c_; }

  /// Eq. (3) from aggregate statistics; clamped at >= 0, and exactly 0 for
  /// an empty region.
  double estimate(double nns, double sum_si, double sum_si2) const;

  /// Convenience over an instance.
  double estimate(const SinoInstance& instance) const;

  /// Coefficients from the shipped calibration run.
  static NssCoefficients default_coefficients();

 private:
  NssCoefficients c_;
};

/// Options for re-fitting the coefficients against min-area SINO solutions.
struct NssFitOptions {
  int samples = 300;
  int min_nets = 2;
  int max_nets = 22;
  double min_rate = 0.10;
  double max_rate = 0.70;
  double min_kth = 0.8;
  double max_kth = 4.0;
  int anneal_iterations = 4000;
  std::uint64_t seed = 42;
};

struct NssFitReport {
  NssCoefficients coefficients;
  double mean_abs_error = 0.0;   ///< tracks
  double max_abs_error = 0.0;    ///< tracks
  double mean_rel_error = 0.0;   ///< vs max(1, true Nss)
  double max_rel_error = 0.0;
  int samples = 0;
};

/// Sample random instances, solve min-area SINO (greedy + annealing), and
/// fit Eq. (3) by least squares. Deterministic in options.seed.
NssFitReport fit_nss(const ktable::KeffModel& keff,
                     const NssFitOptions& options = {});

}  // namespace rlcr::sino
