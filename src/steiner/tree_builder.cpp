#include "steiner/tree_builder.h"

#include <algorithm>
#include <limits>
#include <tuple>
#include <utility>

#include "rsmt/rmst.h"
#include "steiner/tree_cache.h"
#include "util/hash.h"
#include "util/rng.h"

namespace rlcr::steiner {
namespace {

using geom::Point;
using rsmt::Tree;

std::int64_t dist(const Point& a, const Point& b) {
  return geom::manhattan(a, b);
}

// ------------------------------------------------ local-search scratch

/// Mutable adjacency-list view of a tree. Pins (ids 0..pin_count) are never
/// removed; Steiner nodes may end with degree 0 and are dropped when the
/// mesh is converted back to a Tree. Every sweep iterates ids ascending and
/// neighbor lists in insertion order, so the whole search is deterministic.
struct Mesh {
  std::vector<Point> nodes;
  std::vector<std::vector<std::int32_t>> adj;
  std::size_t pin_count = 0;

  explicit Mesh(const Tree& t)
      : nodes(t.nodes), adj(t.nodes.size()), pin_count(t.pin_count) {
    for (const auto& [a, b] : t.edges) {
      adj[static_cast<std::size_t>(a)].push_back(b);
      adj[static_cast<std::size_t>(b)].push_back(a);
    }
  }

  std::int64_t d(std::int32_t a, std::int32_t b) const {
    return dist(nodes[static_cast<std::size_t>(a)],
                nodes[static_cast<std::size_t>(b)]);
  }

  void drop_half(std::int32_t from, std::int32_t to) {
    auto& list = adj[static_cast<std::size_t>(from)];
    list.erase(std::find(list.begin(), list.end(), to));
  }
  void unlink(std::int32_t a, std::int32_t b) {
    drop_half(a, b);
    drop_half(b, a);
  }
  void link(std::int32_t a, std::int32_t b) {
    adj[static_cast<std::size_t>(a)].push_back(b);
    adj[static_cast<std::size_t>(b)].push_back(a);
  }
  std::int32_t add_node(const Point& p) {
    nodes.push_back(p);
    adj.emplace_back();
    return static_cast<std::int32_t>(nodes.size() - 1);
  }
};

/// Convert the mesh back to a Tree: pins keep ids 0..pin_count in order,
/// surviving Steiner nodes are renumbered ascending, and the edge list is
/// emitted sorted by (a, b) — a canonical order independent of the move
/// sequence that produced the mesh.
Tree finalize(const Mesh& m) {
  Tree t;
  t.pin_count = m.pin_count;
  std::vector<std::int32_t> remap(m.nodes.size(), -1);
  for (std::size_t v = 0; v < m.nodes.size(); ++v) {
    if (v < m.pin_count || !m.adj[v].empty()) {
      remap[v] = static_cast<std::int32_t>(t.nodes.size());
      t.nodes.push_back(m.nodes[v]);
    }
  }
  for (std::size_t v = 0; v < m.nodes.size(); ++v) {
    for (const std::int32_t w : m.adj[v]) {
      const std::int32_t a = remap[v];
      const std::int32_t b = remap[static_cast<std::size_t>(w)];
      if (a < b) t.edges.emplace_back(a, b);
    }
  }
  std::sort(t.edges.begin(), t.edges.end());
  return t;
}

/// The L1 Fermat point of three points is their componentwise median;
/// connecting all three through it never costs more than any two direct
/// edges, and strictly less whenever their bounding boxes overlap.
Point median3(const Point& a, const Point& b, const Point& c) {
  const auto med = [](std::int32_t x, std::int32_t y, std::int32_t z) {
    return std::max(std::min(x, y), std::min(std::max(x, y), z));
  };
  return Point{med(a.x, b.x, c.x), med(a.y, b.y, c.y)};
}

/// Edge-overlap merging: for each vertex, find the neighbor pair whose
/// shared trunk toward the vertex is longest (the median Steiner point with
/// the best strict gain) and reroute both edges through it. One move per
/// vertex per sweep; nodes added this sweep are not rescanned until the
/// next one.
bool steinerize_sweep(Mesh& m) {
  bool improved = false;
  const std::size_t scan = m.nodes.size();
  for (std::size_t v = 0; v < scan; ++v) {
    const auto& nb = m.adj[v];
    if (nb.size() < 2) continue;
    std::int64_t best_gain = 0;
    std::int32_t best_a = -1;
    std::int32_t best_b = -1;
    Point best_s{};
    const std::int32_t vi = static_cast<std::int32_t>(v);
    for (std::size_t i = 0; i + 1 < nb.size(); ++i) {
      for (std::size_t j = i + 1; j < nb.size(); ++j) {
        const std::int32_t a = nb[i];
        const std::int32_t b = nb[j];
        const Point s = median3(m.nodes[v], m.nodes[static_cast<std::size_t>(a)],
                                m.nodes[static_cast<std::size_t>(b)]);
        const std::int64_t gain =
            m.d(vi, a) + m.d(vi, b) -
            (dist(m.nodes[v], s) + dist(s, m.nodes[static_cast<std::size_t>(a)]) +
             dist(s, m.nodes[static_cast<std::size_t>(b)]));
        if (gain > best_gain) {
          best_gain = gain;
          best_a = a;
          best_b = b;
          best_s = s;
        }
      }
    }
    if (best_gain <= 0) continue;
    // gain > 0 rules out s == nodes[v]; s coinciding with a neighbor means
    // "reroute the other edge through that neighbor" without a new node.
    if (best_s == m.nodes[static_cast<std::size_t>(best_a)]) {
      m.unlink(vi, best_b);
      m.link(best_a, best_b);
    } else if (best_s == m.nodes[static_cast<std::size_t>(best_b)]) {
      m.unlink(vi, best_a);
      m.link(best_b, best_a);
    } else {
      const std::int32_t s_id = m.add_node(best_s);
      m.unlink(vi, best_a);
      m.unlink(vi, best_b);
      m.link(vi, s_id);
      m.link(s_id, best_a);
      m.link(s_id, best_b);
    }
    improved = true;
  }
  return improved;
}

/// Ascend-and-prune cleanup: strip degree-1 Steiner leaves until none are
/// exposed, then splice out degree-2 Steiner pass-throughs (the direct edge
/// never costs more under L1). Both moves are length-non-increasing.
bool prune_splice_sweep(Mesh& m) {
  bool changed = false;
  bool stripping = true;
  while (stripping) {
    stripping = false;
    for (std::size_t v = m.pin_count; v < m.nodes.size(); ++v) {
      if (m.adj[v].size() == 1) {
        m.unlink(static_cast<std::int32_t>(v), m.adj[v][0]);
        changed = stripping = true;
      }
    }
  }
  for (std::size_t v = m.pin_count; v < m.nodes.size(); ++v) {
    if (m.adj[v].size() == 2) {
      const std::int32_t a = m.adj[v][0];
      const std::int32_t b = m.adj[v][1];
      m.unlink(static_cast<std::int32_t>(v), a);
      m.unlink(static_cast<std::int32_t>(v), b);
      m.link(a, b);
      changed = true;
    }
  }
  return changed;
}

/// Bounded alternation of the two sweeps. Total length is monotone
/// non-increasing and every steinerize move shaves at least one unit, so
/// the loop terminates even without the pass cap.
void local_search(Mesh& m, std::size_t max_passes) {
  for (std::size_t pass = 0; pass < max_passes; ++pass) {
    bool any = steinerize_sweep(m);
    any = prune_splice_sweep(m) || any;
    if (!any) break;
  }
}

// ---------------------------------------------------------- the profiles

Tree balanced_tree(std::span<const Point> pins,
                   const TreeBuilderOptions& options) {
  Tree t = rsmt::rsmt(pins, options.steiner);
  if (pins.size() <= 2) return t;
  Mesh m(t);
  local_search(m, options.local_passes);
  return finalize(m);
}

/// Randomized Prim over the pins with symmetric multiplicative jitter (up
/// to ~25% per edge), then the same local search. Different salts explore
/// different topology basins; everything downstream of `seed` is pure.
Tree perturbed_tree(std::span<const Point> pins, std::uint64_t seed,
                    const TreeBuilderOptions& options) {
  const std::size_t n = pins.size();
  std::vector<std::uint64_t> salt(n);
  util::Xoshiro256 rng(seed);
  for (auto& s : salt) s = rng();
  const auto weight = [&](std::size_t a, std::size_t b) {
    const std::int64_t base = dist(pins[a], pins[b]);
    const std::int64_t jitter = static_cast<std::int64_t>(
        util::SplitMix64::mix(salt[a] ^ salt[b]) & 63);
    return base * (256 + jitter);
  };

  Tree t;
  t.nodes.assign(pins.begin(), pins.end());
  t.pin_count = n;
  std::vector<char> in(n, 0);
  std::vector<std::int64_t> best(n, std::numeric_limits<std::int64_t>::max());
  std::vector<std::int32_t> parent(n, 0);
  in[0] = 1;
  for (std::size_t j = 1; j < n; ++j) best[j] = weight(0, j);
  for (std::size_t step = 1; step < n; ++step) {
    std::size_t u = 0;
    std::int64_t u_cost = std::numeric_limits<std::int64_t>::max();
    for (std::size_t j = 1; j < n; ++j) {
      if (!in[j] && best[j] < u_cost) {
        u_cost = best[j];
        u = j;
      }
    }
    in[u] = 1;
    t.edges.emplace_back(parent[u], static_cast<std::int32_t>(u));
    for (std::size_t j = 1; j < n; ++j) {
      if (!in[j]) {
        const std::int64_t w = weight(u, j);
        if (w < best[j]) {
          best[j] = w;
          parent[j] = static_cast<std::int32_t>(u);
        }
      }
    }
  }
  Mesh m(t);
  local_search(m, options.local_passes);
  return finalize(m);
}

struct Dsu {
  std::vector<std::int32_t> parent;
  explicit Dsu(std::size_t n) : parent(n) {
    for (std::size_t i = 0; i < n; ++i) {
      parent[i] = static_cast<std::int32_t>(i);
    }
  }
  std::int32_t find(std::int32_t x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      x = parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(
              parent[static_cast<std::size_t>(x)])];
    }
    return x;
  }
  bool unite(std::int32_t a, std::int32_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent[static_cast<std::size_t>(b)] = a;
    return true;
  }
};

/// Solution recombination: union the candidates' edge sets over the union
/// of their node sets, re-solve with Kruskal restricted to that graph, then
/// prune and polish. Each candidate spans the pins, so the union graph is
/// connected and the restricted MST exists.
Tree recombine(std::span<const Point> pins, const std::vector<Tree>& cands,
               std::size_t local_passes) {
  const std::size_t np = pins.size();
  std::vector<Point> nodes(pins.begin(), pins.end());
  std::vector<std::pair<Point, std::int32_t>> by_coord;
  by_coord.reserve(np);
  for (std::size_t i = 0; i < np; ++i) {
    by_coord.emplace_back(pins[i], static_cast<std::int32_t>(i));
  }
  std::sort(by_coord.begin(), by_coord.end());
  // First id wins for duplicate coordinates (pins before Steiner points).
  const auto coord_id = [&](const Point& p) -> std::int32_t {
    const auto it = std::lower_bound(
        by_coord.begin(), by_coord.end(), std::make_pair(p, std::int32_t{-1}),
        [](const auto& lhs, const auto& rhs) { return lhs.first < rhs.first; });
    if (it != by_coord.end() && it->first == p) return it->second;
    return -1;
  };
  std::vector<Point> extras;
  for (const Tree& c : cands) {
    for (std::size_t v = c.pin_count; v < c.nodes.size(); ++v) {
      extras.push_back(c.nodes[v]);
    }
  }
  std::sort(extras.begin(), extras.end());
  extras.erase(std::unique(extras.begin(), extras.end()), extras.end());
  {
    std::vector<std::pair<Point, std::int32_t>> merged = by_coord;
    for (const Point& p : extras) {
      if (coord_id(p) >= 0) continue;  // coincides with a pin
      merged.emplace_back(p, static_cast<std::int32_t>(nodes.size()));
      nodes.push_back(p);
    }
    std::sort(merged.begin(), merged.end());
    by_coord = std::move(merged);
  }

  std::vector<std::tuple<std::int64_t, std::int32_t, std::int32_t>> pool;
  for (const Tree& c : cands) {
    for (const auto& [a, b] : c.edges) {
      const auto merged_of = [&](std::int32_t v) {
        return v < static_cast<std::int32_t>(c.pin_count)
                   ? v
                   : coord_id(c.nodes[static_cast<std::size_t>(v)]);
      };
      std::int32_t ma = merged_of(a);
      std::int32_t mb = merged_of(b);
      if (ma == mb) continue;  // collapsed onto one merged node
      if (ma > mb) std::swap(ma, mb);
      pool.emplace_back(dist(nodes[static_cast<std::size_t>(ma)],
                             nodes[static_cast<std::size_t>(mb)]),
                        ma, mb);
    }
  }
  std::sort(pool.begin(), pool.end());
  pool.erase(std::unique(pool.begin(), pool.end()), pool.end());

  Tree merged;
  merged.nodes = nodes;
  merged.pin_count = np;
  Dsu dsu(nodes.size());
  for (const auto& [len, a, b] : pool) {
    if (dsu.unite(a, b)) merged.edges.emplace_back(a, b);
  }
  Mesh m(merged);
  prune_splice_sweep(m);
  local_search(m, local_passes);
  return finalize(m);
}

Tree best_tree(std::span<const Point> pins, const TreeBuilderOptions& options) {
  std::vector<Tree> cands;
  cands.push_back(balanced_tree(pins, options));
  if (pins.size() <= 2 || options.best_candidates <= 1) {
    return std::move(cands.front());
  }
  // The stream salt is the canonical (translated) pin fingerprint, so the
  // randomness is a function of net shape — not net id, grid position, or
  // build order — and the tree cache stays transparent under kBest.
  const std::uint64_t stream =
      util::SplitMix64::mix2(options.seed, canonicalize(pins).fingerprint);
  for (std::size_t i = 1; i < options.best_candidates; ++i) {
    cands.push_back(
        perturbed_tree(pins, util::SplitMix64::mix2(stream, i), options));
  }
  cands.push_back(recombine(pins, cands, options.local_passes));
  std::size_t best_i = 0;
  std::int64_t best_len = cands[0].length();
  for (std::size_t i = 1; i < cands.size(); ++i) {
    const std::int64_t len = cands[i].length();
    if (len < best_len) {
      best_len = len;
      best_i = i;
    }
  }
  return std::move(cands[best_i]);
}

std::uint64_t options_key(const TreeBuilderOptions& o, TreeProfile profile) {
  util::Fnv1a64 h;
  h.u8(static_cast<std::uint8_t>(profile))
      .u64(o.steiner.max_pins_exact)
      .u64(o.steiner.max_steiner_points)
      .u64(o.seed)
      .u64(o.best_candidates)
      .u64(o.local_passes);
  return h.value();
}

}  // namespace

const char* profile_name(TreeProfile profile) {
  switch (profile) {
    case TreeProfile::kFast:
      return "fast";
    case TreeProfile::kBalanced:
      return "balanced";
    case TreeProfile::kBest:
      return "best";
  }
  return "?";
}

Tree build_tree(std::span<const Point> pins, TreeProfile profile,
                const TreeBuilderOptions& options) {
  switch (profile) {
    case TreeProfile::kFast:
      return rsmt::rsmt(pins, options.steiner);
    case TreeProfile::kBalanced:
      return balanced_tree(pins, options);
    case TreeProfile::kBest:
      return best_tree(pins, options);
  }
  return rsmt::rsmt(pins, options.steiner);
}

std::shared_ptr<const Tree> TreeBuilder::build(std::span<const Point> pins,
                                               TreeProfile profile) const {
  if (cache_ == nullptr) {
    return std::make_shared<const Tree>(build_tree(pins, profile, options_));
  }
  const CanonicalPins canon = canonicalize(pins);
  const std::uint64_t key =
      util::SplitMix64::mix2(canon.fingerprint, options_key(options_, profile));
  std::shared_ptr<const Tree> canonical = cache_->find(key);
  if (canonical == nullptr) {
    canonical =
        std::make_shared<const Tree>(build_tree(canon.pins, profile, options_));
    cache_->insert(key, canonical);
  }
  if (canon.dx == 0 && canon.dy == 0) return canonical;
  auto out = std::make_shared<Tree>(*canonical);
  for (Point& p : out->nodes) {
    p.x += canon.dx;
    p.y += canon.dy;
  }
  return out;
}

std::int64_t TreeBuilder::length(std::span<const Point> pins,
                                 TreeProfile profile) const {
  return build(pins, profile)->length();
}

}  // namespace rlcr::steiner
