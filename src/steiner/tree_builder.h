// Quality-tiered Steiner-tree construction behind one TreeBuilder facade.
//
// Three deterministic profiles trade construction time for topology quality:
//
//   kFast      — the historical path: delegate to rsmt::rsmt() unchanged, so
//                every existing route-hash golden holds bit-for-bit.
//   kBalanced  — start from the kFast tree and apply only length-non-
//                increasing local moves (edge-overlap steinerization plus an
//                ascend-and-prune cleanup of Steiner chains), bounded passes.
//   kBest      — iterated perturb-and-reconstruct with recombination: build k
//                randomized candidates, merge their edge sets, re-solve the
//                problem restricted to that union, keep the shortest tree.
//
// Every profile is a pure function of (pins, options): no global state, no
// wall-clock, no thread-id — which is what makes the parallel fan-out in the
// router and the content-addressed TreeCache transparent by construction.
// kBest randomness is split per pin set from options.seed via the SplitMix64
// stream-seed discipline, so results are seed-deterministic and invariant to
// thread count and net enumeration order.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "geom/point.h"
#include "rsmt/steiner.h"
#include "rsmt/tree.h"

namespace rlcr::steiner {

class TreeCache;

/// Quality tier for tree construction. Wire/profile stable: the numeric
/// values travel through the artifact store and the service protocol.
enum class TreeProfile : std::uint8_t {
  kFast = 0,
  kBalanced = 1,
  kBest = 2,
};

inline constexpr std::uint8_t kTreeProfileCount = 3;

const char* profile_name(TreeProfile profile);

struct TreeBuilderOptions {
  /// Base 1-Steiner knobs (kFast fidelity requires the defaults).
  rsmt::SteinerOptions steiner;
  /// Master seed for kBest perturbation streams. Mixed with a content hash
  /// of the pin set, never with a net id, so identical pin sets always get
  /// identical trees regardless of which net (or thread) asks first.
  std::uint64_t seed = 1;
  /// Candidate trees built per net under kBest (the first is the kBalanced
  /// tree, so kBest can never be longer than kBalanced).
  std::size_t best_candidates = 4;
  /// Upper bound on steinerize/prune sweeps per local-search invocation.
  std::size_t local_passes = 4;
};

/// Builds one tree at an explicit profile. Pure function; the returned tree
/// keeps the rsmt::Tree contract (nodes[0..pins.size()) are the pins in
/// input order, Steiner points follow).
rsmt::Tree build_tree(std::span<const geom::Point> pins,
                      TreeProfile profile, const TreeBuilderOptions& options);

/// Facade bundling options with an optional shared cache. Copies of the
/// returned trees are immutable and safe to share across threads.
class TreeBuilder {
 public:
  explicit TreeBuilder(TreeBuilderOptions options = {},
                       TreeCache* cache = nullptr)
      : options_(options), cache_(cache) {}

  /// Build (or fetch from the cache) the tree for `pins` at `profile`.
  std::shared_ptr<const rsmt::Tree> build(std::span<const geom::Point> pins,
                                          TreeProfile profile) const;

  /// Tree length at `profile` (one cached build serves later calls that
  /// need the full topology for the same pin set).
  std::int64_t length(std::span<const geom::Point> pins,
                      TreeProfile profile) const;

  const TreeBuilderOptions& options() const { return options_; }

 private:
  TreeBuilderOptions options_;
  TreeCache* cache_ = nullptr;
};

}  // namespace rlcr::steiner
