#include "steiner/tree_cache.h"

#include <algorithm>

#include "util/hash.h"

namespace rlcr::steiner {

CanonicalPins canonicalize(std::span<const geom::Point> pins) {
  CanonicalPins c;
  c.pins.assign(pins.begin(), pins.end());
  if (!c.pins.empty()) {
    std::int32_t min_x = c.pins[0].x;
    std::int32_t min_y = c.pins[0].y;
    for (const geom::Point& p : c.pins) {
      min_x = std::min(min_x, p.x);
      min_y = std::min(min_y, p.y);
    }
    c.dx = min_x;
    c.dy = min_y;
    for (geom::Point& p : c.pins) {
      p.x -= min_x;
      p.y -= min_y;
    }
  }
  util::Fnv1a64 h;
  h.u64(c.pins.size());
  for (const geom::Point& p : c.pins) h.i32(p.x).i32(p.y);
  c.fingerprint = h.value();
  return c;
}

std::shared_ptr<const rsmt::Tree> TreeCache::find(std::uint64_t key) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return it->second;
}

void TreeCache::insert(std::uint64_t key,
                       std::shared_ptr<const rsmt::Tree> tree) {
  const std::lock_guard<std::mutex> lock(mu_);
  // First writer wins; a racing second build produced the identical value.
  map_.emplace(key, std::move(tree));
}

TreeCache::Stats TreeCache::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return Stats{hits_, misses_, map_.size()};
}

}  // namespace rlcr::steiner
