// Content-addressed in-memory cache of built trees.
//
// Keying: pin sets are canonicalized by translating the bounding box to the
// origin while preserving input order, then fingerprinted (FNV-1a over the
// translated coordinate sequence). Order is deliberately part of the key —
// the rsmt::Tree contract puts the pins at nodes[0..pin_count) in input
// order, and the kFast profile must stay bit-identical to the historical
// rsmt::rsmt() call, whose output depends on pin order. Sorting the key
// would alias pin sequences that build different (equally valid) trees.
//
// Values are stored in canonical (translated) coordinates; the builder
// translates them back on a hit. This is sound because every profile is
// translation-equivariant: build(pins + t) == build(pins) + t, a contract
// pinned by steiner_test. Identical small-net configurations — the common
// case in real netlists — therefore collapse to one construction no matter
// where they sit on the grid or which thread asks first.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "geom/point.h"
#include "rsmt/tree.h"

namespace rlcr::steiner {

/// A pin set translated so min x == min y == 0, plus the offset back and a
/// fingerprint of the translated sequence. The fingerprint doubles as the
/// kBest per-net RNG stream salt, which is what makes the cache transparent
/// under kBest: the stream depends on content, never on net id.
struct CanonicalPins {
  std::vector<geom::Point> pins;
  std::int32_t dx = 0;  ///< original = canonical + (dx, dy)
  std::int32_t dy = 0;
  std::uint64_t fingerprint = 0;
};

CanonicalPins canonicalize(std::span<const geom::Point> pins);

/// Thread-safe map from (canonical pin fingerprint, profile/options hash)
/// to an immutable canonical tree. Lookup order across threads does not
/// affect results: the builder is a pure function of the key's content, so
/// whichever thread populates an entry stores the same value any other
/// thread would have.
class TreeCache {
 public:
  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t entries = 0;
  };

  std::shared_ptr<const rsmt::Tree> find(std::uint64_t key) const;
  void insert(std::uint64_t key, std::shared_ptr<const rsmt::Tree> tree);
  Stats stats() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, std::shared_ptr<const rsmt::Tree>> map_;
  mutable std::size_t hits_ = 0;
  mutable std::size_t misses_ = 0;
};

}  // namespace rlcr::steiner
