#include "store/artifact_store.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string>

#include "obs/trace.h"
#include "util/file_lock.h"
#include "util/hash.h"

namespace rlcr::store {

namespace fs = std::filesystem;

namespace {

constexpr const char* kRecordPrefix = "art-";
constexpr const char* kRecordSuffix = ".bin";

const char* type_tag(ArtifactType type) {
  switch (type) {
    case ArtifactType::kRouting:
      return "r";
    case ArtifactType::kBudget:
      return "b";
    case ArtifactType::kRegionSolve:
      return "s";
    case ArtifactType::kRefine:
      return "f";
  }
  return "x";
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf);
}

bool is_record(const fs::directory_entry& entry) {
  if (!entry.is_regular_file()) return false;
  const std::string name = entry.path().filename().string();
  return name.starts_with(kRecordPrefix) && name.ends_with(kRecordSuffix);
}

}  // namespace

ArtifactStore::ArtifactStore(fs::path dir, StoreOptions options)
    : dir_(std::move(dir)), options_(options) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (!fs::is_directory(dir_, ec)) {
    throw std::runtime_error("ArtifactStore: cannot create store directory " +
                             dir_.string());
  }
  // Sweep temp files orphaned by crashed writers (killed between write and
  // rename). They are invisible to is_record() and so to the LRU budget;
  // without this they accumulate forever. The age guard keeps us off a
  // live writer's in-flight temp file.
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    std::error_code fec;
    if (!entry.is_regular_file(fec)) continue;
    if (entry.path().filename().string().find(".tmp.") == std::string::npos) {
      continue;
    }
    const auto age = fs::file_time_type::clock::now() - entry.last_write_time(fec);
    if (!fec && age > std::chrono::minutes(10)) fs::remove(entry.path(), fec);
  }
  dir_lock_ = std::make_unique<util::FileLock>(dir_ / ".lock");
  if (!dir_lock_->valid()) dir_lock_.reset();
  bytes_estimate_ = scan_bytes_locked();
}

ArtifactStore::~ArtifactStore() = default;

std::uintmax_t ArtifactStore::scan_bytes_locked() const {
  std::uintmax_t total = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (!is_record(entry)) continue;
    std::error_code sec;
    const std::uintmax_t size = entry.file_size(sec);
    if (!sec) total += size;
  }
  return total;
}

fs::path ArtifactStore::path_of(ArtifactType type, std::uint64_t key) const {
  return dir_ / (std::string(kRecordPrefix) + type_tag(type) + "-" +
                 hex16(key) + kRecordSuffix);
}

StoreStats ArtifactStore::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::uintmax_t ArtifactStore::bytes_on_disk() const {
  const std::lock_guard<std::mutex> lock(mu_);
  bytes_estimate_ = scan_bytes_locked();
  return bytes_estimate_;
}

bool ArtifactStore::put(ArtifactType type, std::uint64_t key,
                        const std::vector<std::uint8_t>& bytes) {
  RLCR_TRACE_SPAN(span, "store.put", "store");
  span.arg("bytes", static_cast<double>(bytes.size()));
  const fs::path final_path = path_of(type, key);
  std::error_code ec;
  if (fs::exists(final_path, ec)) {
    // Content-addressed: an existing record for this key holds identical
    // bytes (or a concurrent writer's identical bytes). Refresh recency
    // instead of rewriting — unless the record vanished under a
    // concurrent evictor between the check and the touch, in which case
    // fall through and publish fresh bytes.
    std::error_code touch_ec;
    fs::last_write_time(final_path, fs::file_time_type::clock::now(),
                        touch_ec);
    if (!touch_ec) return true;
  }

  // The multi-megabyte record write runs OUTSIDE the lock — only the
  // publish (rename) and the bookkeeping need it, so concurrent sessions'
  // gets never stall behind a writer. The temp name is unique per
  // (process, call), so concurrent writers never share a temp file, and
  // concurrent publishes of one key resolve to one winner with identical
  // content either way.
  const fs::path tmp_path =
      dir_ / (final_path.filename().string() + ".tmp." +
              std::to_string(static_cast<long>(::getpid())) + "." +
              std::to_string(tmp_serial_.fetch_add(1, std::memory_order_relaxed)));
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      const std::lock_guard<std::mutex> lock(mu_);
      ++stats_.put_failures;
      return false;
    }
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      out.close();
      fs::remove(tmp_path, ec);
      const std::lock_guard<std::mutex> lock(mu_);
      ++stats_.put_failures;
      return false;
    }
  }

  const std::lock_guard<std::mutex> lock(mu_);
  if (fs::exists(final_path, ec)) {
    // Lost the publish race to a concurrent writer of the same key.
    fs::remove(tmp_path, ec);
    fs::last_write_time(final_path, fs::file_time_type::clock::now(), ec);
    return true;
  }
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    fs::remove(tmp_path, ec);
    ++stats_.put_failures;
    return false;
  }
  ++stats_.stores;
  stats_.bytes_written += bytes.size();
  bytes_estimate_ += bytes.size();
  // The estimate makes the common under-budget put O(1); only a put that
  // crosses the budget pays for a directory scan (which re-syncs it).
  if (options_.max_bytes != 0 && bytes_estimate_ > options_.max_bytes) {
    evict_over_budget_locked(final_path);
  }
  return true;
}

std::optional<std::vector<std::uint8_t>> ArtifactStore::get(
    ArtifactType type, std::uint64_t key) {
  RLCR_TRACE_SPAN(span, "store.get", "store");
  // Like put(), the multi-megabyte record read runs OUTSIDE the lock —
  // concurrent readers never queue on one another. A record vanishing
  // mid-read (a concurrent evictor) just reads short and counts a miss;
  // the open fd keeps partially read bytes consistent on POSIX, and frame
  // validation in the typed loaders rejects anything torn.
  const fs::path path = path_of(type, key);
  bool read_ok = false;
  std::vector<std::uint8_t> bytes;
  {
    std::ifstream in(path, std::ios::binary);
    if (in) {
      in.seekg(0, std::ios::end);
      const std::streamoff size = in.tellg();
      if (size >= 0) {
        bytes.resize(static_cast<std::size_t>(size));
        in.seekg(0, std::ios::beg);
        in.read(reinterpret_cast<char*>(bytes.data()),
                static_cast<std::streamsize>(bytes.size()));
        read_ok = static_cast<bool>(in);
      }
    }
  }

  const std::lock_guard<std::mutex> lock(mu_);
  if (!read_ok) {
    ++stats_.misses;
    return std::nullopt;
  }
  // Touch for LRU recency; frame validation happens in the typed loaders.
  std::error_code ec;
  fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
  ++stats_.hits;
  stats_.bytes_read += bytes.size();
  span.arg("bytes", static_cast<double>(bytes.size()));
  return bytes;
}

void ArtifactStore::reject_locked(const fs::path& path,
                                  const std::vector<std::uint8_t>& bad_bytes) {
  // A record that failed validation will never load; drop it so the slot
  // is republished with fresh bytes. The earlier raw hit is compensated.
  // Validation ran outside the lock, so the file may have been replaced
  // since we read it (another thread rejected first and already
  // republished a valid record at this path) — delete only if the bytes
  // on disk are still the bytes that failed.
  std::ifstream in(path, std::ios::binary);
  if (in) {
    std::vector<std::uint8_t> current(
        (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    if (current == bad_bytes) {
      std::error_code ec;
      if (fs::remove(path, ec)) {
        bytes_estimate_ -= std::min<std::uintmax_t>(bytes_estimate_,
                                                    bad_bytes.size());
      }
    }
  }
  ++stats_.rejected;
  ++stats_.misses;
  --stats_.hits;
}

void ArtifactStore::evict_over_budget_locked(const fs::path& keep) {
  if (options_.max_bytes == 0) return;
  RLCR_TRACE_SPAN(span, "store.evict", "store");
  // One evictor per directory at a time: another process (or another
  // ArtifactStore on the same directory) mid-sweep would race this scan
  // into double-counted deletions and a drifted estimate. In-process
  // callers are already serialized by mu_, so the flock only ever waits
  // on a *different* store instance.
  const bool locked = dir_lock_ != nullptr;
  if (locked && !dir_lock_->try_lock()) {
    ++stats_.lock_waits;
    dir_lock_->lock();
  }
  struct Record {
    fs::path path;
    fs::file_time_type mtime;
    std::uintmax_t size;
  };
  std::vector<Record> records;
  std::uintmax_t total = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (!is_record(entry)) continue;
    std::error_code sec, tec;
    const std::uintmax_t size = entry.file_size(sec);
    const fs::file_time_type mtime = entry.last_write_time(tec);
    if (sec || tec) continue;  // vanished under a concurrent evictor
    records.push_back(Record{entry.path(), mtime, size});
    total += size;
  }
  if (total <= options_.max_bytes) {
    bytes_estimate_ = total;  // re-sync: the estimate had drifted high
    if (locked) dir_lock_->unlock();
    return;
  }
  std::sort(records.begin(), records.end(),
            [](const Record& a, const Record& b) { return a.mtime < b.mtime; });
  for (const Record& rec : records) {
    if (total <= options_.max_bytes) break;
    if (rec.path == keep) continue;  // never evict the record just written
    std::error_code rec_ec;
    if (fs::remove(rec.path, rec_ec)) {
      total -= rec.size;
      ++stats_.evictions;
    }
  }
  bytes_estimate_ = total;
  if (locked) dir_lock_->unlock();
}

// --------------------------------------------------------------- typed IO

bool ArtifactStore::touch_existing(ArtifactType type, std::uint64_t key) {
  // Content-addressed fast path for the typed puts: when the record is
  // already on disk (a concurrent session won the publish race), skip the
  // multi-megabyte serialization entirely and just refresh recency. A
  // record vanishing between the check and the touch falls back to a full
  // publish.
  const fs::path path = path_of(type, key);
  std::error_code ec;
  if (!fs::exists(path, ec)) return false;
  std::error_code touch_ec;
  fs::last_write_time(path, fs::file_time_type::clock::now(), touch_ec);
  return !touch_ec;
}

void ArtifactStore::put_routing(std::uint64_t key,
                                const gsino::RoutingArtifact& art) {
  if (touch_existing(ArtifactType::kRouting, key)) return;
  put(ArtifactType::kRouting, key, save(art));
}

std::shared_ptr<const gsino::RoutingArtifact> ArtifactStore::get_routing(
    std::uint64_t key, const gsino::RoutingProblem& problem) {
  auto bytes = get(ArtifactType::kRouting, key);
  if (!bytes) return nullptr;
  auto art = load_routing(*bytes, problem);
  if (art == nullptr) {
    const std::lock_guard<std::mutex> lock(mu_);
    reject_locked(path_of(ArtifactType::kRouting, key), *bytes);
  }
  return art;
}

void ArtifactStore::put_budget(std::uint64_t key,
                               const gsino::BudgetArtifact& art) {
  if (touch_existing(ArtifactType::kBudget, key)) return;
  put(ArtifactType::kBudget, key, save(art));
}

std::shared_ptr<const gsino::BudgetArtifact> ArtifactStore::get_budget(
    std::uint64_t key, const gsino::RoutingProblem& problem) {
  auto bytes = get(ArtifactType::kBudget, key);
  if (!bytes) return nullptr;
  auto art = load_budget(*bytes, problem);
  if (art == nullptr) {
    const std::lock_guard<std::mutex> lock(mu_);
    reject_locked(path_of(ArtifactType::kBudget, key), *bytes);
  }
  return art;
}

void ArtifactStore::put_region_solve(std::uint64_t key,
                                     const gsino::RegionSolveArtifact& art) {
  if (touch_existing(ArtifactType::kRegionSolve, key)) return;
  put(ArtifactType::kRegionSolve, key, save(art));
}

std::shared_ptr<const gsino::RegionSolveArtifact>
ArtifactStore::get_region_solve(
    std::uint64_t key, const gsino::RoutingProblem& problem,
    std::shared_ptr<const gsino::RoutingArtifact> phase1,
    std::shared_ptr<const gsino::BudgetArtifact> budget) {
  auto bytes = get(ArtifactType::kRegionSolve, key);
  if (!bytes) return nullptr;
  auto art = load_region_solve(*bytes, problem, std::move(phase1),
                               std::move(budget));
  if (art == nullptr) {
    const std::lock_guard<std::mutex> lock(mu_);
    reject_locked(path_of(ArtifactType::kRegionSolve, key), *bytes);
  }
  return art;
}

void ArtifactStore::put_refine(std::uint64_t key,
                               const gsino::RefineArtifact& art,
                               bool batch_pass2) {
  if (touch_existing(ArtifactType::kRefine, key)) return;
  put(ArtifactType::kRefine, key, save(art, batch_pass2));
}

std::shared_ptr<const gsino::RefineArtifact> ArtifactStore::get_refine(
    std::uint64_t key, const gsino::RoutingProblem& problem,
    std::shared_ptr<const gsino::RegionSolveArtifact> base, bool batch_pass2) {
  auto bytes = get(ArtifactType::kRefine, key);
  if (!bytes) return nullptr;
  auto art = load_refine(*bytes, problem, std::move(base), batch_pass2);
  if (art == nullptr) {
    const std::lock_guard<std::mutex> lock(mu_);
    reject_locked(path_of(ArtifactType::kRefine, key), *bytes);
  }
  return art;
}

// ------------------------------------------------------------ identities

namespace {

// Per-type key mixers for IdRouterOptions::profile_tie() — like the
// serial.cpp codecs, the field list lives in id_router.h only.
void hash_field(util::Fnv1a64& h, double v) { h.f64(v); }
void hash_field(util::Fnv1a64& h, bool v) { h.boolean(v); }
void hash_field(util::Fnv1a64& h, std::size_t v) { h.u64(v); }
void hash_field(util::Fnv1a64& h, std::int32_t v) { h.i32(v); }
void hash_field(util::Fnv1a64& h, router::PrerouteShape v) {
  h.u8(static_cast<std::uint8_t>(v));
}
void hash_field(util::Fnv1a64& h, steiner::TreeProfile v) {
  h.u8(static_cast<std::uint8_t>(v));
}
void hash_field(util::Fnv1a64& h,
                const std::vector<std::pair<std::int32_t, std::uint8_t>>& v) {
  h.u64(v.size());
  for (const auto& [id, profile] : v) h.i32(id).u8(profile);
}

}  // namespace

std::uint64_t routing_key(const gsino::RoutingProblem& problem,
                          const router::IdRouterOptions& options) {
  util::Fnv1a64 h;
  h.str("routing/v1");
  h.u64(problem.fingerprint());
  // The profile identity is profile_tie() — the same field list the
  // session's in-memory cache compares; `threads` is excluded there.
  std::apply([&](const auto&... field) { (hash_field(h, field), ...); },
             options.profile_tie());
  return h.value();
}

std::uint64_t budget_key(const gsino::RoutingProblem& problem,
                         gsino::BudgetRule rule, double bound_v, double margin,
                         std::uint64_t routing) {
  util::Fnv1a64 h;
  h.str("budget/v1");
  h.u64(problem.fingerprint());
  h.u8(static_cast<std::uint8_t>(rule));
  h.f64(bound_v).f64(margin);
  h.u64(routing);
  return h.value();
}

std::uint64_t solve_key(const gsino::RoutingProblem& problem,
                        gsino::FlowKind kind, bool annealed,
                        std::uint64_t routing, std::uint64_t budget) {
  util::Fnv1a64 h;
  h.str("solve/v1");
  h.u64(problem.fingerprint());
  h.u8(static_cast<std::uint8_t>(kind));
  h.boolean(annealed);
  h.i32(problem.params().anneal_iterations);  // anneal stream length
  h.u64(routing);
  h.u64(budget);
  return h.value();
}

std::uint64_t refine_key(const gsino::RoutingProblem& problem,
                         std::uint64_t solve, bool batch_pass2) {
  util::Fnv1a64 h;
  h.str("refine/v1");
  h.u64(problem.fingerprint());
  h.u64(solve);
  // The one Phase III knob that changes output; threads/speculate_batch
  // never do (the session cache applies the same identity).
  h.boolean(batch_pass2);
  return h.value();
}

}  // namespace rlcr::store
