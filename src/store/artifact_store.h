// Content-addressed, size-budgeted on-disk artifact cache.
//
// An ArtifactStore maps (artifact type, 64-bit identity key) to a
// serialized artifact record (store/serial.h) in one flat directory. Keys
// are the session's profile identity, not hashes of the output: a routing
// key digests the problem fingerprint (circuit/netlist + grid + seed —
// RoutingProblem::fingerprint()) plus the router options profile with
// `threads` excluded, so any process that assembles the same problem
// derives the same key and warm-starts from artifacts another process
// published. Determinism makes this sound: equal inputs produce
// bit-identical artifacts, so a stored record is interchangeable with a
// fresh compute.
//
// Durability/concurrency contract:
//   - writes are atomic: records land in a temp file in the store
//     directory and are renamed into place (POSIX rename atomicity), so
//     readers never observe a partial record;
//   - any number of threads may share one ArtifactStore (all methods are
//     internally locked) and any number of processes may share one
//     directory — cross-process races resolve to one winner per key, and
//     a vanished or half-evicted file is just a miss;
//   - a record that fails validation on load (truncation, checksum,
//     version or problem mismatch) counts as `rejected`, is deleted, and
//     reads as a miss — the caller recomputes and republishes.
//
// Eviction: when the directory's record bytes exceed StoreOptions::
// max_bytes after a put, least-recently-used records are deleted until the
// budget holds (the record just written is exempt). Recency is the file
// mtime; loads touch it, so warm entries survive. The delete-side sweep is
// additionally serialized across processes by an advisory flock on
// `<dir>/.lock` (util/file_lock.h) so a daemon and external CLI runs
// sharing one directory never run concurrent sweeps over the same scan —
// contended acquisitions are counted in StoreStats::lock_waits.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "store/serial.h"

namespace rlcr::util {
class FileLock;
}

namespace rlcr::store {

struct StoreOptions {
  /// LRU size budget for the store directory's records; 0 = unbounded.
  std::uintmax_t max_bytes = std::uintmax_t{256} << 20;
};

/// Counter surface (snapshot via ArtifactStore::stats()).
struct StoreStats {
  std::size_t hits = 0;        ///< get() found a valid record
  std::size_t misses = 0;      ///< get() found nothing usable
  std::size_t stores = 0;      ///< put() wrote a new record
  std::size_t evictions = 0;   ///< records deleted by the LRU budget
  std::size_t rejected = 0;    ///< records that failed load validation
  std::size_t put_failures = 0;  ///< publishes that could not be written
  std::size_t lock_waits = 0;  ///< eviction sweeps that waited on the flock
  std::uintmax_t bytes_written = 0;
  std::uintmax_t bytes_read = 0;
};

class ArtifactStore {
 public:
  /// Creates `dir` (and parents) if missing. Throws std::runtime_error
  /// when the directory cannot be created or is not a directory — a
  /// misconfigured store path should fail loudly at construction, not
  /// degrade every run into a silent cold start. Later per-record I/O
  /// failures are non-fatal: the put is dropped and counted
  /// (StoreStats::put_failures), the session just recomputes.
  explicit ArtifactStore(std::filesystem::path dir, StoreOptions options = {});
  ~ArtifactStore();

  const std::filesystem::path& dir() const { return dir_; }
  StoreStats stats() const;
  /// Total size of the records currently on disk.
  std::uintmax_t bytes_on_disk() const;

  // ---- raw record layer -----------------------------------------------
  bool put(ArtifactType type, std::uint64_t key,
           const std::vector<std::uint8_t>& bytes);
  std::optional<std::vector<std::uint8_t>> get(ArtifactType type,
                                               std::uint64_t key);

  // ---- typed layer (serial.h encode/decode + validation stats) --------
  void put_routing(std::uint64_t key, const gsino::RoutingArtifact& art);
  std::shared_ptr<const gsino::RoutingArtifact> get_routing(
      std::uint64_t key, const gsino::RoutingProblem& problem);

  void put_budget(std::uint64_t key, const gsino::BudgetArtifact& art);
  std::shared_ptr<const gsino::BudgetArtifact> get_budget(
      std::uint64_t key, const gsino::RoutingProblem& problem);

  void put_region_solve(std::uint64_t key,
                        const gsino::RegionSolveArtifact& art);
  std::shared_ptr<const gsino::RegionSolveArtifact> get_region_solve(
      std::uint64_t key, const gsino::RoutingProblem& problem,
      std::shared_ptr<const gsino::RoutingArtifact> phase1,
      std::shared_ptr<const gsino::BudgetArtifact> budget);

  /// `batch_pass2` is the record's identity cross-check (serial.h): a get
  /// under the other Phase III configuration is a miss, and the caller
  /// re-attaches `base` like get_region_solve re-attaches its inputs.
  void put_refine(std::uint64_t key, const gsino::RefineArtifact& art,
                  bool batch_pass2);
  std::shared_ptr<const gsino::RefineArtifact> get_refine(
      std::uint64_t key, const gsino::RoutingProblem& problem,
      std::shared_ptr<const gsino::RegionSolveArtifact> base,
      bool batch_pass2);

 private:
  std::filesystem::path path_of(ArtifactType type, std::uint64_t key) const;
  bool touch_existing(ArtifactType type, std::uint64_t key);
  std::uintmax_t scan_bytes_locked() const;
  void evict_over_budget_locked(const std::filesystem::path& keep);
  void reject_locked(const std::filesystem::path& path,
                     const std::vector<std::uint8_t>& bad_bytes);

  std::filesystem::path dir_;
  StoreOptions options_;
  /// Advisory cross-process lock serializing the eviction sweep (see the
  /// file comment); created after the directory exists, null only when the
  /// lock file cannot be opened (sweeps then run unlocked, as before).
  std::unique_ptr<util::FileLock> dir_lock_;
  mutable std::mutex mu_;
  StoreStats stats_;
  /// Running estimate of the directory's record bytes (guarded by mu_):
  /// seeded by one scan at construction, advanced on every put, re-synced
  /// to the exact total whenever an eviction pass scans. Keeps put() from
  /// stat-ing the whole directory under the lock while below budget; it
  /// may lag other processes' writes, but each writer enforces the budget
  /// on its own puts, so the directory still converges under it.
  mutable std::uintmax_t bytes_estimate_ = 0;
  /// Uniquifies temp names across this store's concurrent writers (record
  /// writes run outside mu_; pid alone only separates processes).
  std::atomic<std::uint64_t> tmp_serial_{0};
};

using StorePtr = std::shared_ptr<ArtifactStore>;

// ------------------------------------------------------------ identities

/// Key of the routing artifact a session computes for `options` over
/// `problem`: problem fingerprint + routing profile, `threads` excluded
/// (it never changes output — the same exclusion FlowSession's in-memory
/// cache applies via same_routing_profile).
std::uint64_t routing_key(const gsino::RoutingProblem& problem,
                          const router::IdRouterOptions& options);

/// Key of a budget artifact. `routing` is the routing_key() of the
/// artifact budgeted from for the routed-length (iSINO) rule, 0 for the
/// routing-independent Manhattan rules — mirroring the session cache.
std::uint64_t budget_key(const gsino::RoutingProblem& problem,
                         gsino::BudgetRule rule, double bound_v, double margin,
                         std::uint64_t routing);

/// Key of a Phase II region-solve artifact over its input identities.
std::uint64_t solve_key(const gsino::RoutingProblem& problem,
                        gsino::FlowKind kind, bool annealed,
                        std::uint64_t routing, std::uint64_t budget);

/// Key of a Phase III refine artifact over the solve_key() it refines and
/// the one output-changing Phase III knob (RefineOptions::batch_pass2).
std::uint64_t refine_key(const gsino::RoutingProblem& problem,
                         std::uint64_t solve, bool batch_pass2);

}  // namespace rlcr::store
