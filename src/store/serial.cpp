#include "store/serial.h"

#include <bit>
#include <cstring>

#include "util/binio.h"
#include "util/hash.h"

namespace rlcr::store {

namespace {

using util::BinaryReader;
using util::BinaryWriter;

// ------------------------------------------------------------- the frame

constexpr std::uint8_t kMagic[8] = {'R', 'L', 'C', 'R', 'A', 'R', 'T', '\0'};
constexpr std::size_t kHeaderBytes = 8 + 4 + 4 + 8;
constexpr std::size_t kChecksumBytes = 8;

std::uint64_t payload_checksum(const std::uint8_t* data, std::size_t size) {
  util::Fnv1a64 h;
  for (std::size_t i = 0; i < size; ++i) h.u8(data[i]);
  return h.value();
}

std::vector<std::uint8_t> frame(ArtifactType type,
                                std::vector<std::uint8_t> payload) {
  BinaryWriter w;
  for (const std::uint8_t b : kMagic) w.u8(b);
  w.u32(kFormatVersion);
  w.u32(static_cast<std::uint32_t>(type));
  w.u64(payload.size());
  std::vector<std::uint8_t> out = w.take();
  out.insert(out.end(), payload.begin(), payload.end());
  BinaryWriter tail;
  tail.u64(payload_checksum(payload.data(), payload.size()));
  const std::vector<std::uint8_t> t = tail.take();
  out.insert(out.end(), t.begin(), t.end());
  return out;
}

/// Validates magic/version/type/size/checksum; returns the payload span
/// (into `bytes`) or {nullptr, 0}.
std::pair<const std::uint8_t*, std::size_t> unframe(
    const std::vector<std::uint8_t>& bytes, ArtifactType expected) {
  if (bytes.size() < kHeaderBytes + kChecksumBytes) return {nullptr, 0};
  BinaryReader h(bytes.data(), kHeaderBytes);
  for (const std::uint8_t b : kMagic) {
    if (h.u8() != b) return {nullptr, 0};
  }
  if (h.u32() != kFormatVersion) return {nullptr, 0};
  if (h.u32() != static_cast<std::uint32_t>(expected)) return {nullptr, 0};
  const std::uint64_t payload_size = h.u64();
  if (payload_size != bytes.size() - kHeaderBytes - kChecksumBytes) {
    return {nullptr, 0};
  }
  const std::uint8_t* payload = bytes.data() + kHeaderBytes;
  BinaryReader tail(bytes.data() + kHeaderBytes + payload_size, kChecksumBytes);
  if (tail.u64() !=
      payload_checksum(payload, static_cast<std::size_t>(payload_size))) {
    return {nullptr, 0};
  }
  return {payload, static_cast<std::size_t>(payload_size)};
}

// Per-type field codecs for IdRouterOptions::profile_tie(): the encoding
// of every profile field follows from its type, and the field list itself
// lives in one place (id_router.h) — extending the profile extends the
// serialization automatically.
void put_field(BinaryWriter& w, double v) { w.f64(v); }
void put_field(BinaryWriter& w, bool v) { w.u8(v ? 1 : 0); }
void put_field(BinaryWriter& w, std::size_t v) { w.u64(v); }
void put_field(BinaryWriter& w, std::int32_t v) { w.i32(v); }
void put_field(BinaryWriter& w, router::PrerouteShape v) {
  w.u32(static_cast<std::uint32_t>(v));
}
void put_field(BinaryWriter& w, steiner::TreeProfile v) {
  w.u8(static_cast<std::uint8_t>(v));
}
void put_field(BinaryWriter& w,
               const std::vector<std::pair<std::int32_t, std::uint8_t>>& v) {
  w.u64(v.size());
  for (const auto& [id, profile] : v) {
    w.i32(id);
    w.u8(profile);
  }
}

void get_field(BinaryReader& r, double& v) { v = r.f64(); }
void get_field(BinaryReader& r, bool& v) { v = r.u8() != 0; }
void get_field(BinaryReader& r, std::size_t& v) {
  v = static_cast<std::size_t>(r.u64());
}
void get_field(BinaryReader& r, std::int32_t& v) { v = r.i32(); }
void get_field(BinaryReader& r, router::PrerouteShape& v) {
  v = static_cast<router::PrerouteShape>(r.u32());
}
void get_field(BinaryReader& r, steiner::TreeProfile& v) {
  v = static_cast<steiner::TreeProfile>(r.u8());
}
void get_field(BinaryReader& r,
               std::vector<std::pair<std::int32_t, std::uint8_t>>& v) {
  const std::uint64_t n = r.seq_size(/*elem_bytes=*/5);
  if (!r.ok()) return;
  v.resize(static_cast<std::size_t>(n));
  for (auto& [id, profile] : v) {
    id = r.i32();
    profile = r.u8();
  }
}

void write_options(BinaryWriter& w, const router::IdRouterOptions& o) {
  std::apply([&](const auto&... field) { (put_field(w, field), ...); },
             o.profile_tie());
}

router::IdRouterOptions read_options(BinaryReader& r) {
  router::IdRouterOptions o;
  std::apply([&](auto&... field) { (get_field(r, field), ...); },
             o.profile_tie());
  // `threads` is not part of the routing profile (output-invariant) and is
  // deliberately not serialized; the default 0 = auto applies on load.
  return o;
}

// ------------------------- shared region-state codec (solve and refine)
//
// The Phase II and Phase III payload tails are the same shape — the
// per-(region, dir) solution vector, the per-net LSK/noise vectors, and
// the congestion map — so one codec serves both (byte-identical to the
// historical kRegionSolve layout).

void write_region_state(BinaryWriter& w,
                        const std::vector<gsino::RegionSolution>& solutions,
                        const std::vector<double>& net_lsk,
                        const std::vector<double>& net_noise,
                        const grid::CongestionMap& cmap) {
  w.u64(solutions.size());
  for (const gsino::RegionSolution& sol : solutions) {
    const std::size_t n = sol.net_index.size();
    w.u64(n);
    for (std::size_t i = 0; i < n; ++i) {
      const sino::SinoNet& sn = sol.instance.net(i);
      w.i32(sn.net_id);
      w.f64(sn.si);
      w.f64(sn.kth);
    }
    // Strict upper triangle only: the matrix is symmetric with an empty
    // diagonal, and set_sensitive mirrors on load.
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        w.u8(sol.instance.sensitive(i, j) ? 1 : 0);
      }
    }
    for (const std::size_t g : sol.net_index) w.u64(g);
    w.f64_vec(sol.len_mm);
    w.f64_vec(sol.path_len_mm);
    w.u64(sol.slots.size());
    for (const ktable::Slot s : sol.slots) w.i32(s);
    w.f64_vec(sol.ki);
  }

  w.f64_vec(net_lsk);
  w.f64_vec(net_noise);

  const std::size_t regions = cmap.grid().region_count();
  w.u64(regions);
  for (const grid::Dir d : grid::kBothDirs) {
    for (std::size_t r = 0; r < regions; ++r) w.f64(cmap.segments(r, d));
    for (std::size_t r = 0; r < regions; ++r) w.f64(cmap.shields(r, d));
  }
}

struct RegionState {
  std::shared_ptr<std::vector<gsino::RegionSolution>> solutions;
  std::shared_ptr<std::vector<double>> net_lsk;
  std::shared_ptr<std::vector<double>> net_noise;
  std::shared_ptr<grid::CongestionMap> congestion;
};

bool read_region_state(BinaryReader& r, const gsino::RoutingProblem& problem,
                       RegionState& out) {
  const std::uint64_t sol_count = r.seq_size(/*elem_bytes=*/8);
  if (!r.ok() || sol_count != problem.grid().region_count() * 2) return false;
  out.solutions = std::make_shared<std::vector<gsino::RegionSolution>>(
      static_cast<std::size_t>(sol_count));
  for (gsino::RegionSolution& sol : *out.solutions) {
    const std::uint64_t n = r.seq_size(/*elem_bytes=*/20);
    if (!r.ok()) return false;
    std::vector<sino::SinoNet> nets(static_cast<std::size_t>(n));
    for (sino::SinoNet& sn : nets) {
      sn.net_id = r.i32();
      sn.si = r.f64();
      sn.kth = r.f64();
    }
    sol.instance = sino::SinoInstance(std::move(nets));
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (r.u8() != 0 && r.ok()) sol.instance.set_sensitive(i, j);
      }
    }
    sol.net_index.resize(static_cast<std::size_t>(n));
    for (std::size_t& g : sol.net_index) {
      g = static_cast<std::size_t>(r.u64());
      if (r.ok() && g >= problem.net_count()) return false;
    }
    if (!r.f64_vec(sol.len_mm) || !r.f64_vec(sol.path_len_mm)) return false;
    const std::uint64_t slot_count = r.seq_size(/*elem_bytes=*/4);
    if (!r.ok()) return false;
    sol.slots.resize(static_cast<std::size_t>(slot_count));
    for (ktable::Slot& s : sol.slots) s = r.i32();
    if (!r.f64_vec(sol.ki)) return false;
    if (sol.len_mm.size() != n || sol.path_len_mm.size() != n ||
        sol.ki.size() != n) {
      return false;
    }
  }

  out.net_lsk = std::make_shared<std::vector<double>>();
  out.net_noise = std::make_shared<std::vector<double>>();
  if (!r.f64_vec(*out.net_lsk) || !r.f64_vec(*out.net_noise)) return false;
  if (out.net_lsk->size() != problem.net_count() ||
      out.net_noise->size() != problem.net_count()) {
    return false;
  }

  const std::uint64_t regions = r.seq_size(/*elem_bytes=*/16);
  if (!r.ok() || regions != problem.grid().region_count()) return false;
  out.congestion = std::make_shared<grid::CongestionMap>(problem.grid());
  // The record stores every region (format unchanged); only non-zero
  // values are written back so a tiled map materializes exactly the tiles
  // the saved map had live values in.
  for (const grid::Dir d : grid::kBothDirs) {
    for (std::size_t reg = 0; reg < regions; ++reg) {
      const double v = r.f64();
      if (v != 0.0) out.congestion->set_segments(reg, d, v);
    }
    for (std::size_t reg = 0; reg < regions; ++reg) {
      const double v = r.f64();
      if (v != 0.0) out.congestion->set_shields(reg, d, v);
    }
  }
  return r.ok();
}

}  // namespace

// ------------------------------------------------------------------- save

std::vector<std::uint8_t> save(const gsino::RoutingArtifact& art) {
  BinaryWriter w;
  write_options(w, art.options);
  w.u64(art.seed);
  const auto& routing = *art.routing;
  w.u64(routing.routes.size());
  for (const router::NetRoute& r : routing.routes) {
    w.i32(r.net_id);
    w.u64(r.edges.size());
    for (const router::GridEdge& e : r.edges) {
      w.i32(e.a.x);
      w.i32(e.a.y);
      w.i32(e.b.x);
      w.i32(e.b.y);
    }
  }
  w.f64(routing.total_wirelength_um);
  w.u64(routing.stats.edges_initial);
  w.u64(routing.stats.edges_deleted);
  w.u64(routing.stats.edges_locked);
  w.u64(routing.stats.reinserts);
  w.u64(routing.stats.prerouted_nets);
  w.u64(routing.stats.rsmt_fallback_nets);
  w.u64(routing.stats.spec_attempted);
  w.u64(routing.stats.spec_committed);
  w.u64(routing.stats.spec_replayed);
  w.f64(routing.stats.runtime_s);
  w.f64(art.seconds);
  w.u64(router::route_hash(routing));  // the load-fidelity oracle
  return frame(ArtifactType::kRouting, w.take());
}

std::vector<std::uint8_t> save(const gsino::BudgetArtifact& art) {
  BinaryWriter w;
  w.u32(static_cast<std::uint32_t>(art.rule));
  w.f64(art.bound_v);
  w.f64(art.margin);
  w.f64_vec(*art.kth);
  w.f64(art.seconds);
  return frame(ArtifactType::kBudget, w.take());
}

std::vector<std::uint8_t> save(const gsino::RegionSolveArtifact& art) {
  BinaryWriter w;
  w.u32(static_cast<std::uint32_t>(art.kind));
  w.u8(art.annealed ? 1 : 0);
  w.u64(art.violating);
  w.f64(art.seconds);
  write_region_state(w, *art.solutions, *art.net_lsk, *art.net_noise,
                     *art.congestion);
  return frame(ArtifactType::kRegionSolve, w.take());
}

std::vector<std::uint8_t> save(const gsino::RefineArtifact& art,
                               bool batch_pass2) {
  BinaryWriter w;
  w.u8(batch_pass2 ? 1 : 0);
  w.u64(art.violating);
  w.u64(art.unfixable);
  const gsino::RefineStats& s = art.stats;
  w.i32(s.pass1_nets_fixed);
  w.i32(s.pass1_resolves);
  w.i32(s.pass1_gave_up);
  w.i32(s.pass2_shields_removed);
  w.i32(s.pass2_accepted);
  w.i32(s.pass2_rejected);
  w.i32(s.batch_sweeps);
  w.i32(s.batch_regions_resolved);
  w.i32(s.spec_attempted);
  w.i32(s.spec_committed);
  w.i32(s.spec_replayed);
  w.f64(art.seconds);
  write_region_state(w, *art.solutions, *art.net_lsk, *art.net_noise,
                     *art.congestion);
  return frame(ArtifactType::kRefine, w.take());
}

// ------------------------------------------------------------------- load

std::shared_ptr<const gsino::RoutingArtifact> load_routing(
    const std::vector<std::uint8_t>& bytes,
    const gsino::RoutingProblem& problem) {
  const auto [payload, size] = unframe(bytes, ArtifactType::kRouting);
  if (payload == nullptr) return nullptr;
  BinaryReader r(payload, size);

  const router::IdRouterOptions options = read_options(r);
  const std::uint64_t seed = r.u64();
  auto routing = std::make_shared<router::RoutingResult>();
  const std::uint64_t nets = r.seq_size(/*elem_bytes=*/12);
  if (!r.ok() || nets != problem.net_count()) return nullptr;
  const grid::RegionGrid& grid = problem.grid();
  routing->routes.resize(nets);
  for (router::NetRoute& route : routing->routes) {
    route.net_id = r.i32();
    const std::uint64_t edges = r.seq_size(/*elem_bytes=*/16);
    if (!r.ok()) return nullptr;
    route.edges.resize(edges);
    for (router::GridEdge& e : route.edges) {
      e.a.x = r.i32();
      e.a.y = r.i32();
      e.b.x = r.i32();
      e.b.y = r.i32();
      if (r.ok() && (!grid.in_bounds(e.a) || !grid.in_bounds(e.b))) {
        return nullptr;  // routed for a different grid
      }
    }
  }
  routing->total_wirelength_um = r.f64();
  routing->stats.edges_initial = static_cast<std::size_t>(r.u64());
  routing->stats.edges_deleted = static_cast<std::size_t>(r.u64());
  routing->stats.edges_locked = static_cast<std::size_t>(r.u64());
  routing->stats.reinserts = static_cast<std::size_t>(r.u64());
  routing->stats.prerouted_nets = static_cast<std::size_t>(r.u64());
  routing->stats.rsmt_fallback_nets = static_cast<std::size_t>(r.u64());
  routing->stats.spec_attempted = static_cast<std::size_t>(r.u64());
  routing->stats.spec_committed = static_cast<std::size_t>(r.u64());
  routing->stats.spec_replayed = static_cast<std::size_t>(r.u64());
  routing->stats.runtime_s = r.f64();
  const double seconds = r.f64();
  const std::uint64_t saved_hash = r.u64();
  if (!r.at_end()) return nullptr;

  // The fidelity oracle: the decoded routes must reproduce the exact
  // golden hash computed at save time.
  if (router::route_hash(*routing) != saved_hash) return nullptr;

  auto art = gsino::derive_routing_artifact(problem, options, seed,
                                            std::move(routing));
  art->seconds = seconds;
  return art;
}

std::shared_ptr<const gsino::BudgetArtifact> load_budget(
    const std::vector<std::uint8_t>& bytes,
    const gsino::RoutingProblem& problem) {
  const auto [payload, size] = unframe(bytes, ArtifactType::kBudget);
  if (payload == nullptr) return nullptr;
  BinaryReader r(payload, size);

  auto art = std::make_shared<gsino::BudgetArtifact>();
  art->rule = static_cast<gsino::BudgetRule>(r.u32());
  art->bound_v = r.f64();
  art->margin = r.f64();
  auto kth = std::make_shared<std::vector<double>>();
  if (!r.f64_vec(*kth)) return nullptr;
  art->kth = std::move(kth);
  art->seconds = r.f64();
  if (!r.at_end() || art->kth->size() != problem.net_count()) return nullptr;
  return art;
}

std::shared_ptr<const gsino::RegionSolveArtifact> load_region_solve(
    const std::vector<std::uint8_t>& bytes,
    const gsino::RoutingProblem& problem,
    std::shared_ptr<const gsino::RoutingArtifact> phase1,
    std::shared_ptr<const gsino::BudgetArtifact> budget) {
  const auto [payload, size] = unframe(bytes, ArtifactType::kRegionSolve);
  if (payload == nullptr) return nullptr;
  BinaryReader r(payload, size);

  auto art = std::make_shared<gsino::RegionSolveArtifact>();
  art->kind = static_cast<gsino::FlowKind>(r.u32());
  art->annealed = r.u8() != 0;
  art->violating = static_cast<std::size_t>(r.u64());
  art->seconds = r.f64();

  RegionState state;
  if (!read_region_state(r, problem, state) || !r.at_end()) return nullptr;

  art->phase1 = std::move(phase1);
  art->budget = std::move(budget);
  art->solutions = std::move(state.solutions);
  art->net_lsk = std::move(state.net_lsk);
  art->net_noise = std::move(state.net_noise);
  art->congestion = std::move(state.congestion);
  return art;
}

std::shared_ptr<const gsino::RefineArtifact> load_refine(
    const std::vector<std::uint8_t>& bytes,
    const gsino::RoutingProblem& problem,
    std::shared_ptr<const gsino::RegionSolveArtifact> base, bool batch_pass2) {
  const auto [payload, size] = unframe(bytes, ArtifactType::kRefine);
  if (payload == nullptr) return nullptr;
  BinaryReader r(payload, size);

  // Identity cross-check: a record refined under the other batch_pass2
  // configuration is a different output — treat it as a miss.
  if ((r.u8() != 0) != batch_pass2) return nullptr;

  auto art = std::make_shared<gsino::RefineArtifact>();
  art->violating = static_cast<std::size_t>(r.u64());
  art->unfixable = static_cast<std::size_t>(r.u64());
  gsino::RefineStats& s = art->stats;
  s.pass1_nets_fixed = r.i32();
  s.pass1_resolves = r.i32();
  s.pass1_gave_up = r.i32();
  s.pass2_shields_removed = r.i32();
  s.pass2_accepted = r.i32();
  s.pass2_rejected = r.i32();
  s.batch_sweeps = r.i32();
  s.batch_regions_resolved = r.i32();
  s.spec_attempted = r.i32();
  s.spec_committed = r.i32();
  s.spec_replayed = r.i32();
  art->seconds = r.f64();

  RegionState state;
  if (!read_region_state(r, problem, state) || !r.at_end()) return nullptr;

  art->base = std::move(base);
  art->solutions = std::move(state.solutions);
  art->net_lsk = std::move(state.net_lsk);
  art->net_noise = std::move(state.net_noise);
  art->congestion = std::move(state.congestion);
  return art;
}

}  // namespace rlcr::store
