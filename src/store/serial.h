// Versioned binary serialization for the session's stage artifacts.
//
// Every record is a self-describing frame:
//
//   offset  size  field
//        0     8  magic "RLCRART\0"
//        8     4  format version (u32, little-endian; kFormatVersion)
//       12     4  artifact type tag (u32; ArtifactType)
//       16     8  payload size in bytes (u64)
//       24     N  payload (type-specific, primitives little-endian)
//     24+N     8  FNV-1a checksum of the payload (u64)
//
// All multi-byte integers are little-endian regardless of host order, and
// doubles travel as their IEEE-754 bit patterns — a record written on one
// machine loads on any other. load_*() returns null on ANY validation
// failure: wrong magic or type, version mismatch, truncation, checksum
// mismatch, payload that does not parse, or contents inconsistent with the
// problem it is being loaded into (net/region counts, out-of-grid edges).
//
// Fidelity contract: a loaded artifact is bit-identical to the artifact
// that was saved. For RoutingArtifact this is enforced, not assumed — the
// payload embeds the golden route hash (router/route_types.h, the same
// function the golden-seed regression tests pin) and load_routing()
// recomputes and compares it, then rebuilds every derived view (occupancy,
// segment congestion, critical paths) through the session's own
// derive_routing_artifact(), the exact code path a fresh compute takes.
// Budget and region-solve payloads carry their full numeric state
// verbatim (bit patterns), so equality is structural.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/session.h"

namespace rlcr::store {

/// v2: RoutingStats gained the deletion-loop speculation counters
/// (spec_attempted/committed/replayed). A version bump — not an optional
/// tail — keeps the "any validation failure loads as null" rule simple:
/// v1 records are treated as misses and recompute.
/// v3: the routing profile gained tree_profile + tree_profile_overrides
/// (steiner quality tiers) and RoutingStats gained rsmt_fallback_nets;
/// same rule — v2 records load as misses and recompute.
inline constexpr std::uint32_t kFormatVersion = 3;

enum class ArtifactType : std::uint32_t {
  kRouting = 1,
  kBudget = 2,
  kRegionSolve = 3,
  /// Added alongside refine auto-publish. No version bump: the other
  /// payloads are unchanged, and pre-refine stores simply miss on the new
  /// tag.
  kRefine = 4,
};

// ------------------------------------------------------------------- save

std::vector<std::uint8_t> save(const gsino::RoutingArtifact& art);
std::vector<std::uint8_t> save(const gsino::BudgetArtifact& art);
std::vector<std::uint8_t> save(const gsino::RegionSolveArtifact& art);
/// `batch_pass2` is the one Phase III knob that changes refined output
/// (RefineOptions; threads/speculate_batch never do). It rides in the
/// payload as the record's identity cross-check — RefineArtifact itself
/// does not carry it.
std::vector<std::uint8_t> save(const gsino::RefineArtifact& art,
                               bool batch_pass2);

// ------------------------------------------------------------------- load

/// Decode a routing artifact and re-derive its views against `problem`.
/// Null on any validation failure (see file header).
std::shared_ptr<const gsino::RoutingArtifact> load_routing(
    const std::vector<std::uint8_t>& bytes, const gsino::RoutingProblem& problem);

std::shared_ptr<const gsino::BudgetArtifact> load_budget(
    const std::vector<std::uint8_t>& bytes, const gsino::RoutingProblem& problem);

/// The solve artifact's phase1/budget inputs are identity, not payload:
/// the caller supplies the (already loaded or computed) artifacts it was
/// derived from, and the loader re-attaches them.
std::shared_ptr<const gsino::RegionSolveArtifact> load_region_solve(
    const std::vector<std::uint8_t>& bytes, const gsino::RoutingProblem& problem,
    std::shared_ptr<const gsino::RoutingArtifact> phase1,
    std::shared_ptr<const gsino::BudgetArtifact> budget);

/// Like load_region_solve, the refine artifact's base (solve) input is
/// identity: the caller re-attaches it. A record whose embedded
/// batch_pass2 flag differs from `batch_pass2` loads as null — it belongs
/// to the other Phase III configuration.
std::shared_ptr<const gsino::RefineArtifact> load_refine(
    const std::vector<std::uint8_t>& bytes, const gsino::RoutingProblem& problem,
    std::shared_ptr<const gsino::RegionSolveArtifact> base, bool batch_pass2);

}  // namespace rlcr::store
