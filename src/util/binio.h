// Little-endian binary IO primitives shared by every on-wire and on-disk
// codec in the repo: the artifact-store frames (store/serial.cpp) and the
// service wire protocol (service/protocol.cpp) encode with the same
// writer/reader so the two formats cannot drift in byte order or bounds
// discipline. All multi-byte values are little-endian regardless of host
// endianness; doubles travel as their IEEE-754 bit pattern.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rlcr::util {

/// Appends little-endian primitives to a byte buffer.
class BinaryWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void f64_vec(const std::vector<double>& v) {
    u64(v.size());
    for (const double x : v) f64(x);
  }
  /// Length-prefixed string (u32 count + raw bytes, no terminator).
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    for (const char c : s) u8(static_cast<std::uint8_t>(c));
  }

  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian reads over a byte span. Any underrun sets
/// the fail flag and makes every subsequent read return zero; callers
/// check ok() once at the end instead of after every field.
class BinaryReader {
 public:
  BinaryReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t u8() {
    if (pos_ >= size_) {
      ok_ = false;
      return 0;
    }
    return data_[pos_++];
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(u8()) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(u8()) << (8 * i);
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  double f64() { return std::bit_cast<double>(u64()); }

  /// Size prefix for a sequence of elements at least `elem_bytes` wide;
  /// fails fast when the prefix alone exceeds the remaining bytes (a
  /// corrupted length would otherwise drive a multi-gigabyte reserve).
  std::uint64_t seq_size(std::size_t elem_bytes) {
    const std::uint64_t n = u64();
    if (elem_bytes != 0 && n > (size_ - std::min(pos_, size_)) / elem_bytes) {
      ok_ = false;
      return 0;
    }
    return n;
  }
  bool f64_vec(std::vector<double>& out) {
    const std::uint64_t n = seq_size(8);
    if (!ok_) return false;
    out.resize(n);
    for (auto& x : out) x = f64();
    return ok_;
  }
  /// Length-prefixed string; rejects prefixes that overrun the buffer or
  /// exceed `max_len` (a wire-side sanity cap, not a format limit).
  bool str(std::string& out, std::size_t max_len = 4096) {
    const std::uint32_t n = u32();
    if (!ok_ || n > max_len || n > size_ - std::min(pos_, size_)) {
      ok_ = false;
      return false;
    }
    out.assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return true;
  }

  bool ok() const { return ok_; }
  bool at_end() const { return ok_ && pos_ == size_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace rlcr::util
