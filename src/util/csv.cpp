#include "util/csv.h"

#include <sstream>
#include <stdexcept>

namespace rlcr::util {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    const bool needs_quote = cells[i].find_first_of(",\"\n") != std::string::npos;
    if (needs_quote) {
      out_ << '"';
      for (char ch : cells[i]) {
        if (ch == '"') out_ << '"';
        out_ << ch;
      }
      out_ << '"';
    } else {
      out_ << cells[i];
    }
  }
  out_ << '\n';
}

void CsvWriter::write_row(const std::vector<double>& cells) {
  std::ostringstream oss;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) oss << ',';
    oss << cells[i];
  }
  out_ << oss.str() << '\n';
}

}  // namespace rlcr::util
