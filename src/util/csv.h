// Minimal CSV writer: experiments optionally dump their raw series so that
// plots can be regenerated outside the harness.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace rlcr::util {

/// Writes rows of cells to a CSV file; quotes cells containing commas.
class CsvWriter {
 public:
  /// Opens `path` for writing; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  void write_row(const std::vector<std::string>& cells);
  void write_row(const std::vector<double>& cells);

 private:
  std::ofstream out_;
};

}  // namespace rlcr::util
