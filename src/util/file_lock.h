// RAII-owned advisory file lock (POSIX flock) used to coordinate mutually
// destructive maintenance across *processes* sharing a directory — the
// artifact-store eviction sweep is the one client today (a daemon plus
// external route_cli runs may share one store directory). flock locks are
// per open file description, so two FileLock instances contend even inside
// one process, which is what makes the behaviour testable deterministically.
//
// Advisory means cooperating writers only: readers never take the lock, and
// a process that skips it is not blocked — the store's atomic tmp+rename
// publication keeps readers safe regardless; the lock only serializes the
// delete-side sweep.
#pragma once

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cerrno>
#include <filesystem>

namespace rlcr::util {

class FileLock {
 public:
  /// Opens (creating if absent) the lock file; never throws. A failed open
  /// leaves the lock in the invalid state where every operation is a no-op
  /// that reports success — lock-averse degradation, matching the store's
  /// policy that cache-layer failures must not fail the computation.
  explicit FileLock(const std::filesystem::path& path) {
    fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  }

  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;

  ~FileLock() {
    if (fd_ >= 0) {
      if (held_) ::flock(fd_, LOCK_UN);
      ::close(fd_);
    }
  }

  bool valid() const { return fd_ >= 0; }
  bool held() const { return held_; }

  /// Non-blocking acquire; true when the lock is held on return (including
  /// the invalid-fd no-op case).
  bool try_lock() {
    if (fd_ < 0) return true;
    if (held_) return true;
    int rc;
    do {
      rc = ::flock(fd_, LOCK_EX | LOCK_NB);
    } while (rc != 0 && errno == EINTR);
    held_ = rc == 0;
    return held_;
  }

  /// Blocking acquire.
  void lock() {
    if (fd_ < 0 || held_) return;
    int rc;
    do {
      rc = ::flock(fd_, LOCK_EX);
    } while (rc != 0 && errno == EINTR);
    held_ = rc == 0;
  }

  void unlock() {
    if (fd_ < 0 || !held_) return;
    ::flock(fd_, LOCK_UN);
    held_ = false;
  }

 private:
  int fd_ = -1;
  bool held_ = false;
};

}  // namespace rlcr::util
