// Streaming FNV-1a 64-bit hasher over primitive fields: the one identity
// mix shared by the golden route hash (router/route_types.h), the problem
// fingerprint (core/problem.h), and the artifact-store keys (src/store).
// Byte order is fixed (values are folded in little-endian), so a hash is
// stable across platforms — a requirement for on-disk cache keys.
#pragma once

#include <bit>
#include <cstdint>
#include <string_view>

namespace rlcr::util {

class Fnv1a64 {
 public:
  Fnv1a64& u8(std::uint8_t v) {
    h_ ^= v;
    h_ *= kPrime;
    return *this;
  }
  Fnv1a64& u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
    return *this;
  }
  Fnv1a64& i64(std::int64_t v) { return u64(static_cast<std::uint64_t>(v)); }
  Fnv1a64& i32(std::int32_t v) { return i64(v); }
  Fnv1a64& f64(double v) { return u64(std::bit_cast<std::uint64_t>(v)); }
  Fnv1a64& boolean(bool v) { return u8(v ? 1 : 0); }
  Fnv1a64& str(std::string_view s) {
    u64(s.size());
    for (const char c : s) u8(static_cast<std::uint8_t>(c));
    return *this;
  }

  std::uint64_t value() const { return h_; }

 private:
  static constexpr std::uint64_t kPrime = 1099511628211ULL;
  std::uint64_t h_ = 1469598103934665603ULL;  // FNV-1a offset basis
};

}  // namespace rlcr::util
