// Indexed d-ary max-heap with in-place update-key.
//
// Items are dense integer ids in [0, capacity); each live id carries one
// double key. Ordering is (key, id) lexicographic-max, which gives callers a
// deterministic tie-break for equal keys (the ID router relies on this to
// reproduce the deletion order of the historical lazy-revalidation heap,
// whose entries compared (weight, net, edge) and popped the largest).
//
// Compared with a std::priority_queue of (key, id) pairs under lazy
// revalidation, the indexed heap holds exactly one entry per live item, so a
// key change is a sift instead of a duplicate push whose stale twin must be
// popped and discarded later. Keys are stored inline in the heap slots —
// sift comparisons stay on contiguous memory instead of chasing a per-id
// side table — and the 4-ary layout trades a few sibling comparisons for
// half the tree depth, which is what matters on the wide, shallow heaps the
// router builds (one entry per candidate edge).
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

namespace rlcr::util {

class IndexedMaxHeap {
 public:
  static constexpr std::int32_t kArity = 4;

  struct Entry {
    double key;
    std::int32_t id;
  };

  explicit IndexedMaxHeap(std::size_t capacity) : pos_(capacity, -1) {
    heap_.reserve(capacity);
  }

  std::size_t size() const { return heap_.size(); }
  bool empty() const { return heap_.empty(); }
  bool contains(std::int32_t id) const {
    return pos_[static_cast<std::size_t>(id)] >= 0;
  }

  /// Insert a new id (must not be contained).
  void push(std::int32_t id, double key) {
    pos_[static_cast<std::size_t>(id)] = static_cast<std::int32_t>(heap_.size());
    heap_.push_back(Entry{key, id});
    sift_up(static_cast<std::int32_t>(heap_.size()) - 1);
  }

  /// O(n) bulk construction (Floyd heapify) from unordered (id, key) pairs.
  /// Must be called on an empty heap.
  void build(const std::vector<Entry>& entries) {
    heap_ = entries;
    for (std::size_t i = 0; i < heap_.size(); ++i) {
      pos_[static_cast<std::size_t>(heap_[i].id)] = static_cast<std::int32_t>(i);
    }
    const std::int32_t n = static_cast<std::int32_t>(heap_.size());
    if (n < 2) return;  // (n - 2) / kArity truncates toward zero for n == 0
    for (std::int32_t i = (n - 2) / kArity; i >= 0; --i) sift_down(i);
  }

  /// The (id, key) pair with the largest (key, id).
  std::pair<std::int32_t, double> top() const {
    return {heap_[0].id, heap_[0].key};
  }

  /// Remove and return the max element.
  std::pair<std::int32_t, double> pop() {
    const Entry e = heap_[0];
    remove_at(0);
    return {e.id, e.key};
  }

  /// Change the key of a contained id (either direction).
  void update(std::int32_t id, double key) {
    const std::int32_t at = pos_[static_cast<std::size_t>(id)];
    const double old = heap_[static_cast<std::size_t>(at)].key;
    heap_[static_cast<std::size_t>(at)].key = key;
    if (key > old) {
      sift_up(at);
    } else if (key < old) {
      sift_down(at);
    }
  }

  /// Remove a contained id without processing it.
  void erase(std::int32_t id) { remove_at(pos_[static_cast<std::size_t>(id)]); }

  /// The k largest entries in descending (key, id) order WITHOUT mutating
  /// the heap: best-first expansion over heap positions (popping a position
  /// makes its children candidates), inspecting O(k * arity) slots. Used by
  /// the router's speculative deletion batches to snapshot the candidates
  /// the serial pop order will most likely process next; since the serial
  /// loop re-reads top() for every actual pop, this prediction affects only
  /// speculation efficiency, never processing order.
  std::vector<Entry> top_k(std::size_t k) const {
    std::vector<Entry> out;
    if (k == 0 || heap_.empty()) return out;
    out.reserve(std::min(k, heap_.size()));
    // Candidate frontier of heap positions, max-ordered by their entries.
    std::vector<std::int32_t> frontier{0};
    const auto pos_less = [this](std::int32_t a, std::int32_t b) {
      // std::push_heap keeps the MAX at front under operator<-style order.
      return greater(heap_[static_cast<std::size_t>(b)],
                     heap_[static_cast<std::size_t>(a)]);
    };
    const auto n = static_cast<std::int32_t>(heap_.size());
    while (!frontier.empty() && out.size() < k) {
      std::pop_heap(frontier.begin(), frontier.end(), pos_less);
      const std::int32_t at = frontier.back();
      frontier.pop_back();
      out.push_back(heap_[static_cast<std::size_t>(at)]);
      const std::int32_t first = at * kArity + 1;
      const std::int32_t last = std::min(first + kArity, n);
      for (std::int32_t c = first; c < last && c >= 0; ++c) {
        frontier.push_back(c);
        std::push_heap(frontier.begin(), frontier.end(), pos_less);
      }
    }
    return out;
  }

 private:
  // (key, id) lexicographic: is entry a strictly greater than entry b?
  static bool greater(const Entry& a, const Entry& b) {
    if (a.key != b.key) return a.key > b.key;
    return a.id > b.id;
  }

  void place(std::int32_t i, const Entry& e) {
    heap_[static_cast<std::size_t>(i)] = e;
    pos_[static_cast<std::size_t>(e.id)] = i;
  }

  void sift_up(std::int32_t i) {
    const Entry e = heap_[static_cast<std::size_t>(i)];
    while (i > 0) {
      const std::int32_t parent = (i - 1) / kArity;
      if (!greater(e, heap_[static_cast<std::size_t>(parent)])) break;
      place(i, heap_[static_cast<std::size_t>(parent)]);
      i = parent;
    }
    place(i, e);
  }

  void sift_down(std::int32_t i) {
    const std::int32_t n = static_cast<std::int32_t>(heap_.size());
    const Entry e = heap_[static_cast<std::size_t>(i)];
    for (;;) {
      const std::int32_t first = i * kArity + 1;
      if (first >= n) break;
      std::int32_t best = first;
      const std::int32_t last = std::min(first + kArity, n);
      for (std::int32_t c = first + 1; c < last; ++c) {
        if (greater(heap_[static_cast<std::size_t>(c)],
                    heap_[static_cast<std::size_t>(best)])) {
          best = c;
        }
      }
      if (!greater(heap_[static_cast<std::size_t>(best)], e)) break;
      place(i, heap_[static_cast<std::size_t>(best)]);
      i = best;
    }
    place(i, e);
  }

  void remove_at(std::int32_t i) {
    pos_[static_cast<std::size_t>(heap_[static_cast<std::size_t>(i)].id)] = -1;
    const Entry last = heap_.back();
    heap_.pop_back();
    if (static_cast<std::size_t>(i) < heap_.size()) {
      place(i, last);
      sift_up(i);
      sift_down(pos_[static_cast<std::size_t>(last.id)]);
    }
  }

  std::vector<Entry> heap_;        ///< heap order -> (key, id)
  std::vector<std::int32_t> pos_;  ///< id -> heap index (-1 when absent)
};

}  // namespace rlcr::util
