#include "util/matrix.h"

#include <cmath>
#include <stdexcept>

namespace rlcr::util {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

void Matrix::add_scaled(const Matrix& other, double a) {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("Matrix::add_scaled: shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += a * other.data_[i];
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  if (cols_ != rhs.rows_) {
    throw std::invalid_argument("Matrix::operator*: shape mismatch");
  }
  Matrix out(rows_, rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < rhs.cols_; ++c) out(r, c) += a * rhs(k, c);
    }
  }
  return out;
}

std::vector<double> Matrix::operator*(const std::vector<double>& v) const {
  if (cols_ != v.size()) {
    throw std::invalid_argument("Matrix::operator*: vector size mismatch");
  }
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += (*this)(r, c) * v[c];
    out[r] = acc;
  }
  return out;
}

LuFactor::LuFactor(Matrix a, double pivot_rtol) : lu_(std::move(a)) {
  if (lu_.rows() != lu_.cols()) {
    throw std::invalid_argument("LuFactor: matrix must be square");
  }
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  double max_entry = 0.0;
  for (double v : lu_.data()) max_entry = std::max(max_entry, std::abs(v));
  const double pivot_tol = std::max(pivot_rtol * max_entry, 1e-300);

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: pick the largest magnitude entry in column k.
    std::size_t pivot = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double mag = std::abs(lu_(r, k));
      if (mag > best) {
        best = mag;
        pivot = r;
      }
    }
    if (best < pivot_tol) {
      throw std::runtime_error("LuFactor: matrix is singular to tolerance");
    }
    if (pivot != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(lu_(k, c), lu_(pivot, c));
      std::swap(perm_[k], perm_[pivot]);
    }
    const double inv = 1.0 / lu_(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double factor = lu_(r, k) * inv;
      lu_(r, k) = factor;
      if (factor == 0.0) continue;
      for (std::size_t c = k + 1; c < n; ++c) lu_(r, c) -= factor * lu_(k, c);
    }
  }
}

std::vector<double> LuFactor::solve(const std::vector<double>& b) const {
  std::vector<double> x(b);
  solve_in_place(x);
  return x;
}

void LuFactor::solve_in_place(std::vector<double>& b) const {
  const std::size_t n = dim();
  if (b.size() != n) {
    throw std::invalid_argument("LuFactor::solve: size mismatch");
  }
  // Apply permutation.
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) y[i] = b[perm_[i]];
  // Forward substitution (L has unit diagonal).
  for (std::size_t i = 1; i < n; ++i) {
    double acc = y[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * y[j];
    y[i] = acc;
  }
  // Back substitution.
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(ii, j) * y[j];
    y[ii] = acc / lu_(ii, ii);
  }
  b = std::move(y);
}

std::vector<double> least_squares(const Matrix& a, const std::vector<double>& b,
                                  double ridge) {
  if (a.rows() != b.size()) {
    throw std::invalid_argument("least_squares: row/vector mismatch");
  }
  const Matrix at = a.transposed();
  Matrix ata = at * a;
  for (std::size_t i = 0; i < ata.rows(); ++i) ata(i, i) += ridge;
  const std::vector<double> atb = at * b;
  return LuFactor(std::move(ata)).solve(atb);
}

}  // namespace rlcr::util
