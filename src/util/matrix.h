// Dense linear algebra: matrices, LU factorization, linear solves, and
// least-squares fitting. Sized for the needs of this library (MNA systems of
// a few hundred unknowns, regression designs of a few columns); no attempt
// at cache blocking or SIMD is made.
#pragma once

#include <cstddef>
#include <vector>

namespace rlcr::util {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix identity(std::size_t n);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  /// In-place add `a * other` (same shape required).
  void add_scaled(const Matrix& other, double a);

  Matrix transposed() const;
  Matrix operator*(const Matrix& rhs) const;
  std::vector<double> operator*(const std::vector<double>& v) const;

  const std::vector<double>& data() const noexcept { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// LU factorization with partial pivoting, reusable across many right-hand
/// sides (the transient simulator factors once per timestep size and
/// back-substitutes thousands of times).
class LuFactor {
 public:
  /// Factor a square matrix. Throws std::runtime_error if singular: a pivot
  /// column's best magnitude falls below `pivot_rtol` times the largest
  /// magnitude entry of the input matrix (relative test — MNA matrices mix
  /// femtofarad and kilo-ohm scales, so an absolute test would misfire).
  explicit LuFactor(Matrix a, double pivot_rtol = 1e-16);

  std::size_t dim() const noexcept { return lu_.rows(); }

  /// Solve A x = b; returns x.
  std::vector<double> solve(const std::vector<double>& b) const;

  /// Solve in place to avoid allocation in hot loops.
  void solve_in_place(std::vector<double>& b) const;

 private:
  Matrix lu_;
  std::vector<std::size_t> perm_;
};

/// Ordinary least squares: minimize ||A x - b||_2 via normal equations with
/// a small ridge term for numerical safety. A has shape (m, n), m >= n.
std::vector<double> least_squares(const Matrix& a, const std::vector<double>& b,
                                  double ridge = 1e-9);

}  // namespace rlcr::util
