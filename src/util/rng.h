// Deterministic random number generation for reproducible experiments.
//
// Every stochastic component of the library (benchmark synthesis, sensitivity
// graphs, simulated annealing, table building) draws randomness through these
// generators so that a single seed reproduces an entire experiment.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <cstddef>
#include <limits>

namespace rlcr::util {

/// SplitMix64: a tiny, high-quality 64-bit mixer. Used both as a standalone
/// generator for seeding and as a stateless hash for pairwise decisions
/// (e.g. "is net i sensitive to net j?") that must be queryable in O(1)
/// without storing an N x N matrix.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Stateless mix of a single value; suitable as a hash.
  static constexpr std::uint64_t mix(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  /// Stateless mix of two values (order-sensitive).
  static constexpr std::uint64_t mix2(std::uint64_t a, std::uint64_t b) noexcept {
    return mix(mix(a) ^ (b + 0x9e3779b97f4a7c15ULL));
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** by Blackman & Vigna: the library's workhorse generator.
/// Satisfies UniformRandomBitGenerator so it can drive <random> distributions,
/// but the helper members below are preferred (they are platform-stable,
/// unlike libstdc++ distributions).
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Unbiased via rejection.
  std::uint64_t below(std::uint64_t n) noexcept {
    if (n == 0) return 0;
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
      const std::uint64_t r = operator()();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Standard normal via Marsaglia polar method.
  double normal() noexcept {
    for (;;) {
      const double u = uniform(-1.0, 1.0);
      const double v = uniform(-1.0, 1.0);
      const double s = u * u + v * v;
      if (s > 0.0 && s < 1.0) {
        // One draw of the pair is discarded for simplicity; determinism is
        // what matters here, not throughput.
        return u * std::sqrt(-2.0 * std::log(s) / s);
      }
    }
  }

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Geometric-ish draw: number of failures before first success, capped.
  std::uint64_t geometric(double p, std::uint64_t cap) noexcept {
    std::uint64_t k = 0;
    while (k < cap && !bernoulli(p)) ++k;
    return k;
  }

  /// Fisher-Yates shuffle.
  template <typename Container>
  void shuffle(Container& c) noexcept {
    const auto n = c.size();
    if (n < 2) return;
    for (std::size_t i = n - 1; i > 0; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i + 1));
      using std::swap;
      swap(c[i], c[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace rlcr::util
