#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace rlcr::util {

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) / static_cast<double>(v.size());
}

double variance(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return acc / static_cast<double>(v.size());
}

double stddev(const std::vector<double>& v) { return std::sqrt(variance(v)); }

double min_of(const std::vector<double>& v) {
  if (v.empty()) throw std::invalid_argument("min_of: empty");
  return *std::min_element(v.begin(), v.end());
}

double max_of(const std::vector<double>& v) {
  if (v.empty()) throw std::invalid_argument("max_of: empty");
  return *std::max_element(v.begin(), v.end());
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) throw std::invalid_argument("percentile: empty");
  std::sort(v.begin(), v.end());
  if (p <= 0.0) return v.front();
  if (p >= 100.0) return v.back();
  const double idx = p / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const double frac = idx - static_cast<double>(lo);
  if (lo + 1 >= v.size()) return v.back();
  return v[lo] * (1.0 - frac) + v[lo + 1] * frac;
}

double pearson(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> ranks(const std::vector<double>& v) {
  const std::size_t n = v.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });
  std::vector<double> r(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && v[order[j + 1]] == v[order[i]]) ++j;
    // Average rank over the tie group [i, j].
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) r[order[k]] = avg;
    i = j + 1;
  }
  return r;
}

double spearman(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  return pearson(ranks(x), ranks(y));
}

LinearFit linear_fit(const std::vector<double>& x, const std::vector<double>& y) {
  LinearFit fit;
  if (x.size() != y.size() || x.size() < 2) return fit;
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = (syy == 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

}  // namespace rlcr::util
