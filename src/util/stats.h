// Descriptive statistics, correlation, and simple regression used by the
// model-fitting code (LSK table regression, Nss coefficient fitting) and by
// the experiment harnesses when validating model fidelity claims.
#pragma once

#include <cstddef>
#include <vector>

namespace rlcr::util {

double mean(const std::vector<double>& v);
double variance(const std::vector<double>& v);  ///< population variance
double stddev(const std::vector<double>& v);
double min_of(const std::vector<double>& v);
double max_of(const std::vector<double>& v);

/// Linear interpolated percentile, p in [0, 100].
double percentile(std::vector<double> v, double p);

/// Pearson product-moment correlation of two equal-length samples.
/// Returns 0 when either sample is constant.
double pearson(const std::vector<double>& x, const std::vector<double>& y);

/// Spearman rank correlation (ties get average ranks). The LSK fidelity
/// claim is a rank statement ("higher Ki implies higher noise"), so rank
/// correlation is the right check.
double spearman(const std::vector<double>& x, const std::vector<double>& y);

/// Result of a simple linear regression y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};

/// Least-squares line through (x, y) points.
LinearFit linear_fit(const std::vector<double>& x, const std::vector<double>& y);

/// Fractional ranks with average-tie handling; helper exposed for tests.
std::vector<double> ranks(const std::vector<double>& v);

}  // namespace rlcr::util
