// Wall-clock stopwatch for flow-phase timing reports.
#pragma once

#include <chrono>

namespace rlcr::util {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace rlcr::util
