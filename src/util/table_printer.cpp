#include "util/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace rlcr::util {

void TablePrinter::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TablePrinter::add_row(std::vector<std::string> row) {
  rows_.push_back(Row{std::move(row), false});
}

void TablePrinter::add_separator() { rows_.push_back(Row{{}, true}); }

void TablePrinter::print(std::ostream& os) const {
  // Compute column widths over header and all rows.
  std::size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.cells.size());
  std::vector<std::size_t> width(ncols, 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i)
      width[i] = std::max(width[i], cells[i].size());
  };
  widen(header_);
  for (const auto& r : rows_)
    if (!r.separator) widen(r.cells);

  std::size_t total = 0;
  for (std::size_t w : width) total += w + 3;
  if (total > 0) total -= 1;

  const std::string rule(total, '-');
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < ncols; ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      os << cell << std::string(width[i] - cell.size(), ' ');
      if (i + 1 < ncols) os << " | ";
    }
    os << '\n';
  };

  if (!title_.empty()) os << title_ << '\n';
  os << rule << '\n';
  if (!header_.empty()) {
    emit_row(header_);
    os << rule << '\n';
  }
  for (const auto& r : rows_) {
    if (r.separator) {
      os << rule << '\n';
    } else {
      emit_row(r.cells);
    }
  }
  os << rule << '\n';
}

std::string TablePrinter::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

std::string fmt_double(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string fmt_percent(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

std::string fmt_int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", v);
  return buf;
}

}  // namespace rlcr::util
