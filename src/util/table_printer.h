// ASCII table rendering for experiment reports: the bench harnesses print
// the same rows the paper's tables report, so output readability matters.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace rlcr::util {

/// Column-aligned text table with a header row and optional title.
///
/// Usage:
///   TablePrinter t("Table 1: ...");
///   t.set_header({"circuit", "nets", "violations"});
///   t.add_row({"ibm01", "13056", "1907 (14.6%)"});
///   t.print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::string title = "") : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);
  void add_separator();

  /// Render with single-space-padded columns and '-' rules.
  void print(std::ostream& os) const;
  std::string to_string() const;

  std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };
  std::string title_;
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

/// Format helpers shared by report code.
std::string fmt_double(double v, int decimals);
std::string fmt_percent(double fraction, int decimals = 2);  ///< 0.146 -> "14.60%"
std::string fmt_int(long long v);

}  // namespace rlcr::util
