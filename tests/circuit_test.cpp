#include <gtest/gtest.h>

#include <cmath>

#include "circuit/bus.h"
#include "circuit/circuit.h"
#include "circuit/extract.h"
#include "circuit/transient.h"

namespace rlcr::circuit {
namespace {

TEST(Pwl, InterpolatesAndClamps) {
  const Pwl ramp = Pwl::ramp(1.0, 10e-12, 20e-12);
  EXPECT_DOUBLE_EQ(ramp.at(0.0), 0.0);
  EXPECT_DOUBLE_EQ(ramp.at(10e-12), 0.0);
  EXPECT_NEAR(ramp.at(20e-12), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(ramp.at(1.0), 1.0);
  EXPECT_DOUBLE_EQ(Pwl::flat(0.7).at(0.5), 0.7);
}

TEST(Circuit, ValidatesElements) {
  Circuit c;
  const NodeId n1 = c.new_node();
  EXPECT_THROW(c.add_resistor(n1, 99, 10.0), std::invalid_argument);
  EXPECT_THROW(c.add_resistor(n1, kGround, -1.0), std::invalid_argument);
  EXPECT_THROW(c.add_inductor(n1, kGround, 0.0), std::invalid_argument);
  c.add_capacitor(n1, kGround, 0.0);  // zero cap allowed, just dropped
  EXPECT_TRUE(c.capacitors().empty());
  const std::size_t l0 = c.add_inductor(n1, kGround, 1e-9);
  EXPECT_THROW(c.add_mutual(l0, l0, 0.5), std::invalid_argument);
  EXPECT_THROW(c.add_mutual(l0, 5, 0.5), std::invalid_argument);
}

// --------------------------------------------------- analytic benchmarks

TEST(Transient, RcChargingMatchesClosedForm) {
  // V -R- n1 -C- gnd: v(t) = V (1 - exp(-t / RC)).
  Circuit c;
  const NodeId n_in = c.new_node();
  const NodeId n_out = c.new_node();
  const double r = 1000.0, cap = 1e-12;  // tau = 1 ns
  c.add_vsource(n_in, kGround, Pwl::flat(1.0));
  c.add_resistor(n_in, n_out, r);
  c.add_capacitor(n_out, kGround, cap);

  TransientOptions opt;
  opt.t_stop = 3e-9;
  opt.dt = 1e-12;
  const TransientResult res = simulate(c, {n_out}, opt);

  // NOTE: the source jumps to 1 V at t = 0 (flat), so from the quiescent
  // initial state the response is the standard charging curve.
  const double tau = r * cap;
  for (std::size_t i = 10; i < res.time.size(); i += 200) {
    const double expected = 1.0 - std::exp(-res.time[i] / tau);
    EXPECT_NEAR(res.volts[0][i], expected, 0.02) << "t=" << res.time[i];
  }
}

TEST(Transient, ResistiveDividerSettles) {
  Circuit c;
  const NodeId n_in = c.new_node();
  const NodeId n_mid = c.new_node();
  c.add_vsource(n_in, kGround, Pwl::ramp(2.0, 0.0, 1e-12));
  c.add_resistor(n_in, n_mid, 300.0);
  c.add_resistor(n_mid, kGround, 100.0);
  // A tiny capacitor keeps the MNA storage matrix non-trivial.
  c.add_capacitor(n_mid, kGround, 1e-16);
  TransientOptions opt;
  opt.t_stop = 50e-12;
  opt.dt = 0.1e-12;
  const TransientResult res = simulate(c, {n_mid}, opt);
  EXPECT_NEAR(res.volts[0].back(), 2.0 * 100.0 / 400.0, 1e-3);
}

TEST(Transient, LcOscillationFrequency) {
  // Series L-C from a charged step: resonance at f = 1 / (2 pi sqrt(LC)).
  Circuit c;
  const NodeId n_in = c.new_node();
  const NodeId n_mid = c.new_node();
  const double l = 1e-9, cap = 1e-12;  // f ~ 5.03 GHz
  c.add_vsource(n_in, kGround, Pwl::flat(1.0));
  c.add_inductor(n_in, n_mid, l);
  c.add_capacitor(n_mid, kGround, cap);
  TransientOptions opt;
  opt.t_stop = 2e-9;
  opt.dt = 0.2e-12;
  const TransientResult res = simulate(c, {n_mid}, opt);

  // Count zero crossings of (v - 1) to estimate the period.
  int crossings = 0;
  for (std::size_t i = 1; i < res.volts[0].size(); ++i) {
    if ((res.volts[0][i - 1] - 1.0) * (res.volts[0][i] - 1.0) < 0.0) ++crossings;
  }
  const double period_est = 2.0 * opt.t_stop / crossings;
  const double period_true = 2.0 * 3.14159265358979 * std::sqrt(l * cap);
  EXPECT_NEAR(period_est, period_true, period_true * 0.05);
}

TEST(Transient, TrapezoidalConservesLcAmplitude) {
  // Undamped LC must not decay (trapezoidal is non-dissipative): the late
  // peak matches the early peak.
  Circuit c;
  const NodeId n_in = c.new_node();
  const NodeId n_mid = c.new_node();
  c.add_vsource(n_in, kGround, Pwl::flat(1.0));
  c.add_inductor(n_in, n_mid, 1e-9);
  c.add_capacitor(n_mid, kGround, 1e-12);
  TransientOptions opt;
  opt.t_stop = 4e-9;
  opt.dt = 0.2e-12;
  const TransientResult res = simulate(c, {n_mid}, opt);
  double early_peak = 0.0, late_peak = 0.0;
  const std::size_t half = res.volts[0].size() / 2;
  for (std::size_t i = 0; i < half; ++i)
    early_peak = std::max(early_peak, res.volts[0][i]);
  for (std::size_t i = half; i < res.volts[0].size(); ++i)
    late_peak = std::max(late_peak, res.volts[0][i]);
  EXPECT_NEAR(late_peak, early_peak, 0.02);
}

TEST(Transient, EmptyCircuitThrows) {
  const Circuit c;
  EXPECT_THROW(simulate(c, {}), std::invalid_argument);
}

// ----------------------------------------------------------- extraction

TEST(Extractor, ResistanceScalesWithLength) {
  const Extractor ex{Technology{}};
  const double r1 = ex.resistance(100.0);
  EXPECT_GT(r1, 0.0);
  EXPECT_NEAR(ex.resistance(200.0), 2.0 * r1, 1e-9);
}

TEST(Extractor, CapacitancePositiveAndLinearInLength) {
  const Extractor ex{Technology{}};
  EXPECT_GT(ex.ground_capacitance(100.0), 0.0);
  EXPECT_NEAR(ex.ground_capacitance(200.0), 2.0 * ex.ground_capacitance(100.0),
              1e-20);
  EXPECT_GT(ex.coupling_capacitance(100.0, 1), 0.0);
}

TEST(Extractor, CouplingCapFallsWithSeparation) {
  const Extractor ex{Technology{}};
  const double c1 = ex.coupling_capacitance(100.0, 1);
  const double c2 = ex.coupling_capacitance(100.0, 2);
  const double c4 = ex.coupling_capacitance(100.0, 4);
  EXPECT_GT(c1, c2);
  EXPECT_GT(c2, c4);
  EXPECT_DOUBLE_EQ(ex.coupling_capacitance(100.0, 0), 0.0);
}

TEST(Extractor, InductanceGrowsSuperlinearlyWithLength) {
  const Extractor ex{Technology{}};
  const double l1 = ex.self_inductance(100.0);
  const double l2 = ex.self_inductance(200.0);
  EXPECT_GT(l2, 2.0 * l1);  // the log term grows with length
}

TEST(Extractor, MutualBelowSelfAndDecaysWithDistance) {
  const Extractor ex{Technology{}};
  const double self = ex.self_inductance(1000.0);
  const double m1 = ex.mutual_inductance(1000.0, 1.0);
  const double m10 = ex.mutual_inductance(1000.0, 10.0);
  EXPECT_LT(m1, self);
  EXPECT_GT(m1, m10);
  EXPECT_GT(m10, 0.0);
}

TEST(Extractor, CouplingCoefficientInUnitRange) {
  const Extractor ex{Technology{}};
  for (int d = 1; d <= 32; d *= 2) {
    const double k = ex.coupling_coefficient(1000.0, d);
    EXPECT_GT(k, 0.0);
    EXPECT_LT(k, 1.0);
  }
  EXPECT_DOUBLE_EQ(ex.coupling_coefficient(1000.0, 0), 0.0);
}

// ----------------------------------------------------------------- bus

BusSpec pair_bus(double length_um) {
  BusSpec s;
  s.tracks.assign(3, {});
  s.tracks[0] = {TrackKind::kSignal, true};
  s.tracks[1] = {TrackKind::kSignal, false};
  s.tracks[2] = {TrackKind::kEmpty, false};
  s.victim = 1;
  s.length_um = length_um;
  return s;
}

TEST(Bus, AggressorInducesNoise) {
  const double v = simulate_victim_noise(pair_bus(800.0), Technology{});
  EXPECT_GT(v, 0.01);
  EXPECT_LT(v, 1.05);
}

TEST(Bus, NoiseGrowsWithLength) {
  const Technology tech;
  const double v_short = simulate_victim_noise(pair_bus(200.0), tech);
  const double v_long = simulate_victim_noise(pair_bus(800.0), tech);
  EXPECT_GT(v_long, v_short);
}

TEST(Bus, ShieldReducesNoise) {
  const Technology tech;
  BusSpec shielded;
  shielded.tracks.assign(3, {});
  shielded.tracks[0] = {TrackKind::kSignal, true};
  shielded.tracks[1] = {TrackKind::kShield, false};
  shielded.tracks[2] = {TrackKind::kSignal, false};
  shielded.victim = 2;
  shielded.length_um = 800.0;

  BusSpec bare = shielded;
  bare.tracks[1] = {TrackKind::kEmpty, false};

  const double v_shielded = simulate_victim_noise(shielded, tech);
  const double v_bare = simulate_victim_noise(bare, tech);
  EXPECT_LT(v_shielded, 0.6 * v_bare);
}

TEST(Bus, FartherAggressorCouplesLess) {
  const Technology tech;
  auto at_distance = [&](int d) {
    BusSpec s;
    s.tracks.assign(static_cast<std::size_t>(d) + 1, {});
    s.tracks[0] = {TrackKind::kSignal, false};
    s.tracks[static_cast<std::size_t>(d)] = {TrackKind::kSignal, true};
    s.victim = 0;
    s.length_um = 800.0;
    return simulate_victim_noise(s, tech);
  };
  EXPECT_GT(at_distance(1), at_distance(3));
  EXPECT_GT(at_distance(3), at_distance(8));
}

TEST(Bus, TwoAggressorsWorseThanOne) {
  const Technology tech;
  BusSpec two;
  two.tracks.assign(3, {});
  two.tracks[0] = {TrackKind::kSignal, true};
  two.tracks[1] = {TrackKind::kSignal, false};
  two.tracks[2] = {TrackKind::kSignal, true};
  two.victim = 1;
  two.length_um = 600.0;
  const double v_two = simulate_victim_noise(two, tech);
  const double v_one = simulate_victim_noise(pair_bus(600.0), tech);
  EXPECT_GT(v_two, v_one);
}

TEST(Bus, RejectsMalformedSpecs) {
  const Technology tech;
  BusSpec s = pair_bus(500.0);
  s.victim = 7;
  EXPECT_THROW(simulate_victim_noise(s, tech), std::invalid_argument);
  s = pair_bus(500.0);
  s.victim = 0;  // aggressor, not a quiet signal
  EXPECT_THROW(simulate_victim_noise(s, tech), std::invalid_argument);
  s = pair_bus(500.0);
  s.segments = 0;
  EXPECT_THROW(simulate_victim_noise(s, tech), std::invalid_argument);
  s = pair_bus(-1.0);
  EXPECT_THROW(simulate_victim_noise(s, tech), std::invalid_argument);
}

class BusLengthSweep : public ::testing::TestWithParam<double> {};

TEST_P(BusLengthSweep, NoiseIsPhysicalAtEveryLength) {
  const double v = simulate_victim_noise(pair_bus(GetParam()), Technology{});
  EXPECT_GT(v, 0.0);
  EXPECT_LT(v, 1.05);  // below the rail
}

INSTANTIATE_TEST_SUITE_P(Lengths, BusLengthSweep,
                         ::testing::Values(100.0, 250.0, 500.0, 1000.0, 2000.0));

}  // namespace
}  // namespace rlcr::circuit
