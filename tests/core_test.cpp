#include <gtest/gtest.h>

#include <cstdlib>

#include "core/budget.h"
#include "core/experiment.h"
#include "core/flow.h"
#include "core/metrics.h"
#include "core/paths.h"
#include "core/problem.h"

namespace rlcr::gsino {
namespace {

GsinoParams fast_params() {
  GsinoParams p;
  p.lr_max_outer_pass1 = 500;
  p.lr_max_outer_pass2 = 500;
  return p;
}

RoutingProblem tiny_problem(double rate = 0.3, std::uint64_t seed = 7) {
  static netlist::SyntheticSpec spec = netlist::tiny_spec(180, 7);
  static netlist::Netlist design = netlist::generate(spec);
  GsinoParams p = fast_params();
  p.sensitivity_rate = rate;
  p.seed = seed;
  return make_problem(design, spec, p);
}

// --------------------------------------------------------------- budgeter

TEST(Budgeter, MapsBoundThroughTable) {
  const ktable::LskTable table = ktable::LskTable::from_linear(0.05, 0.01);
  const CrosstalkBudgeter b(table, 0.15);
  EXPECT_NEAR(b.lsk_budget(), (0.15 - 0.01) / 0.05, 1e-9);
  // Kth = budget / Le[mm].
  EXPECT_NEAR(b.kth_from_length(500.0), b.lsk_budget() / 0.5, 1e-9);
}

TEST(Budgeter, LongerNetsGetTighterBounds) {
  const ktable::LskTable table = ktable::LskTable::default_table();
  const CrosstalkBudgeter b(table, 0.15);
  EXPECT_GT(b.kth_from_length(200.0), b.kth_from_length(2000.0));
}

TEST(Budgeter, UniformKthCoversAllNets) {
  const RoutingProblem p = tiny_problem();
  const CrosstalkBudgeter b(p.lsk_table(), 0.15);
  const auto kth = b.uniform_kth(p);
  ASSERT_EQ(kth.size(), p.net_count());
  for (double k : kth) EXPECT_GT(k, 0.0);
}

// ------------------------------------------------------------------ paths

TEST(CriticalPath, TwoPinLShape) {
  grid::RegionGridSpec gs;
  gs.cols = 8;
  gs.rows = 8;
  gs.region_w_um = 10;
  gs.region_h_um = 10;
  const grid::RegionGrid g(gs);
  router::RouterNet net;
  net.pins = {{0, 0}, {2, 1}};
  router::NetRoute route;
  route.edges = {router::make_edge({0, 0}, {1, 0}),
                 router::make_edge({1, 0}, {2, 0}),
                 router::make_edge({2, 0}, {2, 1})};
  const CriticalPath cp = critical_path(g, net, route);
  EXPECT_DOUBLE_EQ(cp.length_um, 30.0);
  // Regions on the path: (0,0) h, (1,0) h, (2,0) h+v, (2,1) v.
  EXPECT_EQ(cp.refs.size(), 5u);
}

TEST(CriticalPath, PicksLongestSinkOnTree) {
  grid::RegionGridSpec gs;
  gs.cols = 10;
  gs.rows = 10;
  gs.region_w_um = 10;
  gs.region_h_um = 10;
  const grid::RegionGrid g(gs);
  router::RouterNet net;
  net.pins = {{0, 0}, {1, 0}, {5, 0}};  // source + near sink + far sink
  router::NetRoute route;
  for (std::int32_t x = 0; x < 5; ++x) {
    route.edges.push_back(router::make_edge({x, 0}, {x + 1, 0}));
  }
  const CriticalPath cp = critical_path(g, net, route);
  EXPECT_DOUBLE_EQ(cp.length_um, 50.0);  // to the far sink, not the near one
}

TEST(CriticalPath, BranchesAreExcluded) {
  grid::RegionGridSpec gs;
  gs.cols = 10;
  gs.rows = 10;
  gs.region_w_um = 10;
  gs.region_h_um = 10;
  const grid::RegionGrid g(gs);
  router::RouterNet net;
  net.pins = {{0, 0}, {3, 0}, {1, 2}};
  router::NetRoute route;
  route.edges = {router::make_edge({0, 0}, {1, 0}),
                 router::make_edge({1, 0}, {2, 0}),
                 router::make_edge({2, 0}, {3, 0}),
                 router::make_edge({1, 0}, {1, 1}),
                 router::make_edge({1, 1}, {1, 2})};
  const CriticalPath cp = critical_path(g, net, route);
  // Critical path is to (3,0) (30 um) or (1,2) (10+20=30)... both 30; the
  // result must be one of them, not the sum (50).
  EXPECT_DOUBLE_EQ(cp.length_um, 30.0);
  double sum = 0.0;
  for (const auto& r : cp.refs) sum += r.length_um;
  EXPECT_DOUBLE_EQ(sum, 30.0);
}

TEST(CriticalPath, EmptyForSingletons) {
  grid::RegionGridSpec gs;
  const grid::RegionGrid g(gs);
  router::RouterNet net;
  net.pins = {{0, 0}};
  EXPECT_TRUE(critical_path(g, net, {}).refs.empty());
}

// ------------------------------------------------------------------ flows

TEST(Flow, IdNoLeavesViolationsButOrdersNets) {
  const RoutingProblem p = tiny_problem(0.5);
  const FlowResult fr = FlowRunner(p).run(FlowKind::kIdNo);
  EXPECT_EQ(fr.name, "ID+NO");
  // All region solutions are pure permutations (no shields).
  EXPECT_DOUBLE_EQ(fr.total_shields, 0.0);
  EXPECT_EQ(fr.net_lsk().size(), p.net_count());
}

TEST(Flow, IsinoEliminatesAllViolations) {
  const RoutingProblem p = tiny_problem(0.5);
  const FlowResult fr = FlowRunner(p).run(FlowKind::kIsino);
  EXPECT_EQ(fr.violating, 0u);
}

TEST(Flow, GsinoEliminatesAllViolations) {
  const RoutingProblem p = tiny_problem(0.5);
  const FlowResult fr = FlowRunner(p).run(FlowKind::kGsino);
  EXPECT_EQ(fr.violating, 0u);
  EXPECT_EQ(fr.unfixable, 0u);
}

TEST(Flow, SolutionsSatisfySinoConstraints) {
  const RoutingProblem p = tiny_problem(0.4);
  const FlowResult fr = FlowRunner(p).run(FlowKind::kIsino);
  for (const RegionSolution& sol : fr.solutions()) {
    if (sol.empty()) continue;
    const sino::SinoEvaluator eval(sol.instance, p.keff());
    const sino::SinoCheck c = eval.check(sol.slots);
    EXPECT_TRUE(c.placed_all);
    EXPECT_EQ(c.capacitive_violations, 0);
    EXPECT_EQ(c.inductive_violations, 0);
  }
}

TEST(Flow, LskAccountingIsConsistent) {
  // net_lsk must equal the sum over solutions of path_len * ki.
  const RoutingProblem p = tiny_problem(0.4);
  const FlowResult fr = FlowRunner(p).run(FlowKind::kGsino);
  std::vector<double> recomputed(p.net_count(), 0.0);
  for (const RegionSolution& sol : fr.solutions()) {
    for (std::size_t i = 0; i < sol.net_index.size(); ++i) {
      recomputed[sol.net_index[i]] += sol.path_len_mm[i] * sol.ki[i];
    }
  }
  for (std::size_t n = 0; n < p.net_count(); ++n) {
    EXPECT_NEAR(recomputed[n], fr.net_lsk()[n], 1e-9) << "net " << n;
  }
}

TEST(Flow, CongestionSegmentsMatchOccupancy) {
  const RoutingProblem p = tiny_problem();
  const FlowResult fr = FlowRunner(p).run(FlowKind::kIdNo);
  for (std::size_t r = 0; r < p.grid().region_count(); ++r) {
    for (grid::Dir d : grid::kBothDirs) {
      EXPECT_DOUBLE_EQ(
          fr.congestion->segments(r, d),
          static_cast<double>(fr.occupancy->segments(r, d).size()));
    }
  }
}

TEST(Flow, WirelengthAggregatesAreCoherent) {
  const RoutingProblem p = tiny_problem();
  const FlowResult fr = FlowRunner(p).run(FlowKind::kIdNo);
  EXPECT_NEAR(fr.avg_wirelength_um * static_cast<double>(p.net_count()),
              fr.total_wirelength_um, 1e-6);
  EXPECT_GT(fr.area.width_um, 0.0);
  EXPECT_GT(fr.area.height_um, 0.0);
}

TEST(Flow, DeterministicAcrossRuns) {
  const RoutingProblem p = tiny_problem();
  const FlowResult a = FlowRunner(p).run(FlowKind::kGsino);
  const FlowResult b = FlowRunner(p).run(FlowKind::kGsino);
  EXPECT_EQ(a.violating, b.violating);
  EXPECT_DOUBLE_EQ(a.total_wirelength_um, b.total_wirelength_um);
  EXPECT_DOUBLE_EQ(a.total_shields, b.total_shields);
  EXPECT_DOUBLE_EQ(a.area.width_um, b.area.width_um);
}

TEST(Flow, FlowNames) {
  EXPECT_STREQ(flow_name(FlowKind::kIdNo), "ID+NO");
  EXPECT_STREQ(flow_name(FlowKind::kIsino), "iSINO");
  EXPECT_STREQ(flow_name(FlowKind::kGsino), "GSINO");
}

// ---------------------------------------------------------------- metrics

TEST(Metrics, SummarizeCopiesFields) {
  const RoutingProblem p = tiny_problem();
  const FlowResult fr = FlowRunner(p).run(FlowKind::kIdNo);
  const FlowSummary s = summarize(fr, p);
  EXPECT_EQ(s.name, "ID+NO");
  EXPECT_EQ(s.total_nets, p.net_count());
  EXPECT_EQ(s.violating, fr.violating);
  EXPECT_DOUBLE_EQ(s.avg_wirelength_um, fr.avg_wirelength_um);
  EXPECT_DOUBLE_EQ(s.area_um2(), fr.area.width_um * fr.area.height_um);
}

std::vector<CircuitRun> fake_runs() {
  std::vector<CircuitRun> runs;
  for (double rate : {0.30, 0.50}) {
    CircuitRun r;
    r.circuit = "fake01";
    r.rate = rate;
    r.total_nets = 1000;
    r.idno.name = "ID+NO";
    r.idno.total_nets = 1000;
    r.idno.violating = rate == 0.30 ? 150 : 220;
    r.idno.avg_wirelength_um = 640.0;
    r.idno.area_width_um = 1500.0;
    r.idno.area_height_um = 1800.0;
    r.gsino = r.idno;
    r.gsino.name = "GSINO";
    r.gsino.violating = 0;
    r.gsino.avg_wirelength_um = 680.0;
    r.gsino.area_width_um = 1580.0;
    r.isino = r.gsino;
    r.isino.name = "iSINO";
    r.isino.area_width_um = 1700.0;
    r.has_isino = r.has_gsino = true;
    runs.push_back(r);
  }
  return runs;
}

TEST(Metrics, Table1RendersBothRates) {
  const auto t = render_table1(fake_runs());
  const std::string s = t.to_string();
  EXPECT_NE(s.find("fake01"), std::string::npos);
  EXPECT_NE(s.find("150"), std::string::npos);
  EXPECT_NE(s.find("15.00%"), std::string::npos);
  EXPECT_NE(s.find("220"), std::string::npos);
}

TEST(Metrics, Table2ShowsOverhead) {
  const std::string s = render_table2(fake_runs()).to_string();
  EXPECT_NE(s.find("640"), std::string::npos);
  EXPECT_NE(s.find("680"), std::string::npos);
  EXPECT_NE(s.find("6.25%"), std::string::npos);  // 680/640 - 1
}

TEST(Metrics, Table3ShowsAreas) {
  const std::string s = render_table3(fake_runs()).to_string();
  EXPECT_NE(s.find("1500 x 1800"), std::string::npos);
  EXPECT_NE(s.find("1700 x 1800"), std::string::npos);
}

// -------------------------------------------------------------- experiment

TEST(Experiment, RunOneProducesAllFlows) {
  netlist::SyntheticSpec spec = netlist::tiny_spec(120, 3);
  const CircuitRun run =
      ExperimentRunner::run_one(spec, 0.3, fast_params(), true, true);
  EXPECT_EQ(run.circuit, "tiny");
  EXPECT_EQ(run.total_nets, 120u);
  EXPECT_TRUE(run.has_isino);
  EXPECT_TRUE(run.has_gsino);
  EXPECT_EQ(run.isino.violating, 0u);
  EXPECT_EQ(run.gsino.violating, 0u);
}

TEST(Experiment, ScaleFromEnvParsesAndClamps) {
  ::unsetenv("RLCROUTE_SCALE");
  EXPECT_DOUBLE_EQ(scale_from_env(0.5), 0.5);
  ::setenv("RLCROUTE_SCALE", "0.25", 1);
  EXPECT_DOUBLE_EQ(scale_from_env(0.5), 0.25);
  ::setenv("RLCROUTE_SCALE", "junk", 1);
  EXPECT_DOUBLE_EQ(scale_from_env(0.5), 0.5);
  ::setenv("RLCROUTE_SCALE", "-1", 1);
  EXPECT_DOUBLE_EQ(scale_from_env(0.5), 0.5);
  ::unsetenv("RLCROUTE_SCALE");
}

}  // namespace
}  // namespace rlcr::gsino
