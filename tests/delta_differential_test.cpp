// Differential proof of the incremental netlist-delta engine
// (src/scenario/delta.h): over seeded random delta chains, every
// incremental state — FlowSession::apply_delta() patching cached
// artifacts in place — is bit-identical (route hash + state fingerprint)
// to a from-scratch session built on the mutated problem. The property
// sweep then holds the same chain fixed while varying everything that
// must not matter: thread count, serial vs speculative execution, with
// vs without the persistent store, tiled vs dense region storage.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/session.h"
#include "grid/tiled.h"
#include "netlist/synthetic.h"
#include "scenario/delta.h"
#include "store/artifact_store.h"
#include "util/rng.h"

namespace rlcr::scenario {
namespace {

namespace fs = std::filesystem;

// ------------------------------------------------------------- fixture

struct Pipeline {
  netlist::SyntheticSpec spec;
  netlist::Netlist design;
  gsino::GsinoParams params;

  explicit Pipeline(std::size_t nets = 300, std::uint64_t seed = 12) {
    spec = netlist::tiny_spec(nets, seed);
    spec.grid_cols = 12;
    spec.grid_rows = 12;
    spec.chip_w_um = 600.0;
    spec.chip_h_um = 600.0;
    spec.h_capacity = 12;
    spec.v_capacity = 12;
    spec.local_sigma_regions = 2.0;
    design = netlist::generate(spec);
    params.sensitivity_rate = 0.5;
  }

  gsino::RoutingProblem problem() const {
    return gsino::make_problem(design, spec, params);
  }
};

/// One (route hash, state fingerprint) pair per chain step.
struct StepState {
  std::uint64_t route_hash = 0;
  std::uint64_t fingerprint = 0;

  bool operator==(const StepState& o) const {
    return route_hash == o.route_hash && fingerprint == o.fingerprint;
  }
};

StepState observe(const gsino::FlowResult& fr) {
  return StepState{router::route_hash(fr.routing()),
                   gsino::state_fingerprint(fr)};
}

/// Everything that must NOT change the chain's states.
struct Config {
  int threads = 1;
  int speculate_batch = 1;  ///< 1 = exact serial path, >1 = speculative
  bool with_store = false;
  grid::RegionStorage storage = grid::RegionStorage::kTiled;
};

gsino::GsinoParams configured(gsino::GsinoParams params, const Config& cfg) {
  params.threads = cfg.threads;
  params.router.threads = cfg.threads;
  params.router.speculate_batch = cfg.speculate_batch;
  return params;
}

gsino::Scenario refine_scenario(const Config& cfg) {
  gsino::Scenario scenario;
  scenario.refine.threads = cfg.threads;
  scenario.refine.speculate_batch = cfg.speculate_batch;
  return scenario;
}

/// Pins the process-wide region-storage default for one scope.
struct StorageGuard {
  grid::RegionStorage saved;
  explicit StorageGuard(grid::RegionStorage s)
      : saved(grid::default_region_storage()) {
    grid::set_default_region_storage(s);
  }
  ~StorageGuard() { grid::set_default_region_storage(saved); }
};

std::shared_ptr<store::ArtifactStore> make_store(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / "rlcr_delta" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return std::make_shared<store::ArtifactStore>(dir);
}

constexpr std::uint64_t kChainSeed = 0xD31;

/// The incremental arm: one session, `steps` deltas applied in place,
/// a GSINO run observed after the initial route and after every delta.
/// The delta corpus is regenerated from (net count, chip outline, seed),
/// so every arm sees the identical chain.
std::vector<StepState> run_incremental(const Pipeline& pipe, const Config& cfg,
                                       std::size_t steps, std::size_t changes,
                                       const std::string& store_name,
                                       gsino::StageCounters* counters = nullptr) {
  const StorageGuard guard(cfg.storage);
  const gsino::RoutingProblem p0 =
      gsino::make_problem(pipe.design, pipe.spec, configured(pipe.params, cfg));
  gsino::SessionOptions opts;
  if (cfg.with_store) opts.store = make_store(store_name);
  gsino::FlowSession session(p0, opts);
  const gsino::Scenario scenario = refine_scenario(cfg);

  std::vector<StepState> states;
  states.push_back(observe(session.run(gsino::FlowKind::kGsino, scenario)));
  for (std::size_t i = 0; i < steps; ++i) {
    const NetlistDelta delta =
        random_delta(session.problem(), kChainSeed + i, changes);
    session.apply_delta(delta);
    states.push_back(observe(session.run(gsino::FlowKind::kGsino, scenario)));
  }
  if (counters) *counters = session.counters();
  return states;
}

/// The from-scratch arm: at every step, mutate the problem through the
/// shared slot-preserving transform and run a brand-new session on it.
std::vector<StepState> run_scratch(const Pipeline& pipe, const Config& cfg,
                                   std::size_t steps, std::size_t changes) {
  const StorageGuard guard(cfg.storage);
  gsino::RoutingProblem p =
      gsino::make_problem(pipe.design, pipe.spec, configured(pipe.params, cfg));
  const gsino::Scenario scenario = refine_scenario(cfg);

  std::vector<StepState> states;
  {
    gsino::FlowSession session(p);
    states.push_back(observe(session.run(gsino::FlowKind::kGsino, scenario)));
  }
  for (std::size_t i = 0; i < steps; ++i) {
    const NetlistDelta delta = random_delta(p, kChainSeed + i, changes);
    p = apply_delta(p, delta);
    gsino::FlowSession session(p);
    states.push_back(observe(session.run(gsino::FlowKind::kGsino, scenario)));
  }
  return states;
}

// ------------------------------------------------- the headline contract

// Incremental chain states match from-scratch runs bit for bit, at one
// thread and at eight. The two thread counts also agree with each other
// (the engine's sub-runs and region re-solves inherit the determinism
// contract of the stages they patch).
TEST(DeltaDifferential, ChainMatchesFromScratchAtOneAndEightThreads) {
  const Pipeline pipe;
  const std::size_t kSteps = 4, kChanges = 6;

  Config serial1;  // threads=1, serial
  gsino::StageCounters counters{};
  const auto inc1 =
      run_incremental(pipe, serial1, kSteps, kChanges, "t1", &counters);
  const auto scratch1 = run_scratch(pipe, serial1, kSteps, kChanges);
  ASSERT_EQ(inc1.size(), kSteps + 1);
  for (std::size_t i = 0; i < inc1.size(); ++i) {
    EXPECT_EQ(inc1[i].route_hash, scratch1[i].route_hash) << "step " << i;
    EXPECT_EQ(inc1[i].fingerprint, scratch1[i].fingerprint) << "step " << i;
  }

  // The incremental arm really was incremental: route() executed exactly
  // once (each delta patches through its own sub-run, counted as delta
  // work), and the Phase II patch reused clean regions on every step.
  // Net-level reuse is a property of the design, not the engine: this
  // fixture's pool bbox graph is one connected component (300 local nets
  // over 144 regions percolate), so every delta re-routes the whole pool
  // — see ClusteredDesignReusesRoutes for the block-structured case where
  // the splice pays off.
  EXPECT_EQ(counters.delta_applies, kSteps);
  EXPECT_EQ(counters.route_executed, 1u);
  EXPECT_GT(counters.delta_nets_rerouted, 0u);
  EXPECT_GT(counters.delta_regions_reused, 0u);

  Config parallel8;
  parallel8.threads = 8;
  parallel8.speculate_batch = 8;
  const auto inc8 = run_incremental(pipe, parallel8, kSteps, kChanges, "t8");
  const auto scratch8 = run_scratch(pipe, parallel8, kSteps, kChanges);
  for (std::size_t i = 0; i < inc8.size(); ++i) {
    EXPECT_EQ(inc8[i].route_hash, scratch8[i].route_hash) << "step " << i;
    EXPECT_EQ(inc8[i].fingerprint, scratch8[i].fingerprint) << "step " << i;
    EXPECT_TRUE(inc8[i] == inc1[i]) << "thread-count divergence at " << i;
  }
}

// The two delta application arms agree: mutating the netlist and building
// a fresh problem yields the same fingerprint as the slot-preserving
// problem transform — including appended slots, emptied slots, and the
// rebuilt sensitivity model.
TEST(DeltaDifferential, NetlistArmAndProblemArmAgree) {
  const Pipeline pipe;
  gsino::RoutingProblem p = pipe.problem();
  netlist::Netlist design = pipe.design;

  for (std::size_t i = 0; i < 3; ++i) {
    const NetlistDelta delta = random_delta(p, 77 + i, 8);
    p = apply_delta(p, delta);
    apply_delta(design, delta);
    const gsino::RoutingProblem rebuilt =
        gsino::make_problem(design, pipe.spec, pipe.params);
    ASSERT_EQ(rebuilt.fingerprint(), p.fingerprint()) << "chain step " << i;
    ASSERT_EQ(rebuilt.net_count(), p.net_count());
  }
}

// A post-delta run() executes no stage except Phase III: the patched
// route/budget/solve artifacts are cache hits, refine recomputes (its
// global worst-violator ordering has no regional patch).
TEST(DeltaDifferential, PatchedArtifactsAreCacheHits) {
  const Pipeline pipe;
  const gsino::RoutingProblem p0 = pipe.problem();
  gsino::FlowSession session(p0);
  session.run(gsino::FlowKind::kGsino);
  const gsino::StageCounters before = session.counters();

  const DeltaReport report = session.apply_delta(random_delta(p0, 5, 4));
  EXPECT_EQ(report.changed_nets, 4u);
  EXPECT_EQ(report.routes_patched, 1u);
  EXPECT_GT(report.nets_rerouted, 0u);
  EXPECT_GT(report.regions_reused, 0u);
  session.run(gsino::FlowKind::kGsino);

  const gsino::StageCounters after = session.counters();
  EXPECT_EQ(after.route_executed, before.route_executed);
  EXPECT_EQ(after.budget_executed, before.budget_executed);
  EXPECT_EQ(after.solve_executed, before.solve_executed);
  EXPECT_EQ(after.refine_executed, before.refine_executed + 1);
}

// Removing a net and re-adding the identical pin set converges back to
// the original problem fingerprint only when the slot itself is restored;
// appended slots are new identities. What IS pinned: a delta that touches
// nothing (empty change list) leaves every state untouched.
TEST(DeltaDifferential, EmptyDeltaIsIdentity) {
  const Pipeline pipe(200);
  const gsino::RoutingProblem p0 = pipe.problem();
  gsino::FlowSession session(p0);
  const StepState before = observe(session.run(gsino::FlowKind::kGsino));

  const DeltaReport report = session.apply_delta(NetlistDelta{});
  EXPECT_EQ(report.changed_nets, 0u);
  EXPECT_EQ(report.nets_rerouted, 0u);
  EXPECT_EQ(report.problem->fingerprint(), p0.fingerprint());

  const StepState after = observe(session.run(gsino::FlowKind::kGsino));
  EXPECT_TRUE(before == after);
}

// A block-structured design — nine 3x3-region clusters separated by an
// empty region row/column — keeps the pool's bbox components cluster-
// local, so a clustered ECO re-routes one component and splices every
// other cluster's routes from the old artifact. Percolated designs (see
// the chain test) degrade gracefully to a full re-route, still bit-
// identical; this is the case incrementality was built for.
TEST(DeltaDifferential, ClusteredDesignReusesRoutes) {
  netlist::SyntheticSpec spec = netlist::tiny_spec(0, 5);
  spec.grid_cols = 12;
  spec.grid_rows = 12;
  spec.chip_w_um = 600.0;
  spec.chip_h_um = 600.0;
  spec.h_capacity = 12;
  spec.v_capacity = 12;

  // Cluster (cx, cy) occupies region cols/rows [4*c, 4*c + 2] — 150 um
  // windows with a 50 um (one region) gap between neighbors.
  netlist::Netlist design;
  util::Xoshiro256 rng(42);
  constexpr double kWindow = 150.0, kPitch = 200.0;
  for (int cy = 0; cy < 3; ++cy) {
    for (int cx = 0; cx < 3; ++cx) {
      for (int k = 0; k < 25; ++k) {
        netlist::Net net;
        net.name = "c" + std::to_string(cy * 3 + cx) + "_" + std::to_string(k);
        const std::size_t pins = 2 + static_cast<std::size_t>(k % 3);
        for (std::size_t j = 0; j < pins; ++j) {
          net.pins.push_back(netlist::Pin{
              geom::PointF{cx * kPitch + rng.uniform(0.0, kWindow),
                           cy * kPitch + rng.uniform(0.0, kWindow)},
              netlist::kNoCell});
        }
        design.add_net(std::move(net));
      }
    }
  }

  gsino::GsinoParams params;
  params.sensitivity_rate = 0.5;
  const gsino::RoutingProblem p0 = gsino::make_problem(design, spec, params);

  // A hand-built ECO confined to cluster 0's window: re-pin two of its
  // nets, drop one, add one.
  NetlistDelta delta;
  auto window_pins = [&rng](std::size_t n) {
    std::vector<geom::PointF> pins;
    for (std::size_t j = 0; j < n; ++j) {
      pins.push_back(
          geom::PointF{rng.uniform(0.0, kWindow), rng.uniform(0.0, kWindow)});
    }
    return pins;
  };
  delta.changes.push_back({NetChange::Kind::kRepin, 3, window_pins(3), ""});
  delta.changes.push_back({NetChange::Kind::kRepin, 7, window_pins(2), ""});
  delta.changes.push_back({NetChange::Kind::kRemove, 11, {}, ""});
  delta.changes.push_back({NetChange::Kind::kAdd, 0, window_pins(4), "eco"});

  gsino::FlowSession session(p0);
  const StepState initial = observe(session.run(gsino::FlowKind::kGsino));
  const DeltaReport report = session.apply_delta(delta);

  // The other eight clusters' pool nets spliced; only cluster 0's
  // component re-routed.
  EXPECT_GT(report.nets_reused, 100u);
  EXPECT_GT(report.nets_rerouted, 0u);
  EXPECT_LT(report.nets_rerouted, 50u);
  EXPECT_GT(report.regions_reused, 0u);

  const StepState inc = observe(session.run(gsino::FlowKind::kGsino));
  EXPECT_FALSE(inc == initial);  // the ECO really moved the state

  const gsino::RoutingProblem p1 = apply_delta(p0, delta);
  gsino::FlowSession scratch(p1);
  const StepState want = observe(scratch.run(gsino::FlowKind::kGsino));
  EXPECT_EQ(inc.route_hash, want.route_hash);
  EXPECT_EQ(inc.fingerprint, want.fingerprint);
}

// ------------------------------------------ property sweep (satellite a)

// The same chain converges to the same per-step states under every
// environment the determinism contract covers: with and without the
// persistent store, serial and speculative, tiled and dense region
// storage. The baseline is the serial/no-store/tiled incremental arm.
TEST(DeltaDifferential, PropertySweepConvergesAcrossEnvironments) {
  const Pipeline pipe(250, 21);
  const std::size_t kSteps = 2, kChanges = 5;

  const Config baseline;
  const auto want =
      run_incremental(pipe, baseline, kSteps, kChanges, "base");

  struct Variant {
    const char* name;
    Config cfg;
  };
  std::vector<Variant> variants;
  {
    Variant v{"store", {}};
    v.cfg.with_store = true;
    variants.push_back(v);
  }
  {
    Variant v{"speculative", {}};
    v.cfg.threads = 4;
    v.cfg.speculate_batch = 8;
    variants.push_back(v);
  }
  {
    Variant v{"dense", {}};
    v.cfg.storage = grid::RegionStorage::kDense;
    variants.push_back(v);
  }
  {
    Variant v{"dense+store+speculative", {}};
    v.cfg.with_store = true;
    v.cfg.threads = 4;
    v.cfg.speculate_batch = 8;
    v.cfg.storage = grid::RegionStorage::kDense;
    variants.push_back(v);
  }

  for (const Variant& v : variants) {
    const auto got = run_incremental(pipe, v.cfg, kSteps, kChanges,
                                     std::string("sweep_") + v.name);
    ASSERT_EQ(got.size(), want.size()) << v.name;
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].route_hash, want[i].route_hash)
          << v.name << " step " << i;
      EXPECT_EQ(got[i].fingerprint, want[i].fingerprint)
          << v.name << " step " << i;
    }
  }
}

}  // namespace
}  // namespace rlcr::scenario
