#include <gtest/gtest.h>

#include <unordered_set>

#include "geom/point.h"
#include "geom/rect.h"

namespace rlcr::geom {
namespace {

TEST(Point, ManhattanGrid) {
  EXPECT_EQ(manhattan(Point{0, 0}, Point{0, 0}), 0);
  EXPECT_EQ(manhattan(Point{0, 0}, Point{3, 4}), 7);
  EXPECT_EQ(manhattan(Point{-2, 5}, Point{1, -1}), 9);
}

TEST(Point, ManhattanContinuous) {
  EXPECT_DOUBLE_EQ(manhattan(PointF{0.0, 0.0}, PointF{1.5, 2.5}), 4.0);
}

TEST(Point, OrderingIsLexicographic) {
  EXPECT_LT((Point{0, 1}), (Point{1, 0}));
  EXPECT_LT((Point{1, 0}), (Point{1, 2}));
}

TEST(Point, HashDistributesDistinctPoints) {
  std::unordered_set<Point> s;
  for (int x = 0; x < 50; ++x)
    for (int y = 0; y < 50; ++y) s.insert(Point{x, y});
  EXPECT_EQ(s.size(), 2500u);
}

TEST(Rect, DefaultIsEmpty) {
  Rect r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.width(), 0);
  EXPECT_EQ(r.cell_count(), 0);
  EXPECT_FALSE(r.contains(Point{0, 0}));
}

TEST(Rect, ExpandGrowsToCover) {
  Rect r;
  r.expand(Point{2, 3});
  EXPECT_FALSE(r.empty());
  EXPECT_EQ(r.cell_count(), 1);
  r.expand(Point{-1, 5});
  EXPECT_TRUE(r.contains(Point{0, 4}));
  EXPECT_EQ(r.width(), 4);
  EXPECT_EQ(r.height(), 3);
}

TEST(Rect, HalfPerimeter) {
  Rect r;
  r.expand(Point{0, 0});
  EXPECT_EQ(r.half_perimeter(), 0);
  r.expand(Point{3, 4});
  EXPECT_EQ(r.half_perimeter(), 7);
}

TEST(Rect, InflatedClampsToGrid) {
  Rect r;
  r.expand(Point{0, 0});
  r.expand(Point{2, 2});
  const Rect g = r.inflated(3, 4, 5);
  EXPECT_EQ(g.lo, (Point{0, 0}));
  EXPECT_EQ(g.hi, (Point{3, 4}));
}

TEST(RectF, ExpandAndHalfPerimeter) {
  RectF r;
  EXPECT_TRUE(r.empty());
  r.expand(PointF{1.0, 2.0});
  r.expand(PointF{4.0, 6.0});
  EXPECT_DOUBLE_EQ(r.width(), 3.0);
  EXPECT_DOUBLE_EQ(r.height(), 4.0);
  EXPECT_DOUBLE_EQ(r.half_perimeter(), 7.0);
}

}  // namespace
}  // namespace rlcr::geom
