// Shared helpers for the golden-seed regression tests. The route hash that
// pins exact edges now lives in the library itself (router/route_types.h —
// the persistent artifact store uses it as its load-fidelity oracle), so
// the pinned values here, in the store, and in every test are guaranteed
// to come from the same function. The presence-overflow metric stays
// test-only.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "grid/region_grid.h"
#include "router/route_types.h"

namespace rlcr::router {

/// Presence overflow: one track per (region, dir) a net touches, summed
/// over capacity.
inline double total_overflow(const grid::RegionGrid& g,
                             const RoutingResult& res) {
  std::vector<double> usage[2];
  for (auto& u : usage) u.assign(g.region_count(), 0.0);
  for (const NetRoute& r : res.routes) {
    std::vector<std::uint8_t> seen(g.region_count() * 2, 0);
    for (const GridEdge& e : r.edges) {
      const int d = static_cast<int>(e.dir());
      for (const geom::Point p : {e.a, e.b}) {
        auto& s = seen[g.index(p) * 2 + static_cast<unsigned>(d)];
        if (!s) {
          s = 1;
          usage[d][g.index(p)] += 1.0;
        }
      }
    }
  }
  double over = 0.0;
  for (int d = 0; d < 2; ++d) {
    for (std::size_t r = 0; r < g.region_count(); ++r) {
      over += std::max(0.0, usage[d][r] - g.capacity(static_cast<grid::Dir>(d)));
    }
  }
  return over;
}

}  // namespace rlcr::router
