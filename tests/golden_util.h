// Shared helpers for the golden-seed regression tests: a route hash that
// pins exact edges and a presence-overflow metric. One definition so the
// pinned values in router_test.cpp and integration_test.cpp are guaranteed
// to use the same functions.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "grid/region_grid.h"
#include "router/route_types.h"

namespace rlcr::router {

/// FNV-1a over every net's (id, edge count, sorted edge list).
inline std::uint64_t route_hash(const RoutingResult& res) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  auto mix = [&](std::int64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= static_cast<std::uint8_t>(v >> (8 * i));
      h *= 1099511628211ULL;
    }
  };
  for (const NetRoute& r : res.routes) {
    mix(r.net_id);
    mix(static_cast<std::int64_t>(r.edges.size()));
    for (const GridEdge& e : r.edges) {
      mix(e.a.x);
      mix(e.a.y);
      mix(e.b.x);
      mix(e.b.y);
    }
  }
  return h;
}

/// Presence overflow: one track per (region, dir) a net touches, summed
/// over capacity.
inline double total_overflow(const grid::RegionGrid& g,
                             const RoutingResult& res) {
  std::vector<double> usage[2];
  for (auto& u : usage) u.assign(g.region_count(), 0.0);
  for (const NetRoute& r : res.routes) {
    std::vector<std::uint8_t> seen(g.region_count() * 2, 0);
    for (const GridEdge& e : r.edges) {
      const int d = static_cast<int>(e.dir());
      for (const geom::Point p : {e.a, e.b}) {
        auto& s = seen[g.index(p) * 2 + static_cast<unsigned>(d)];
        if (!s) {
          s = 1;
          usage[d][g.index(p)] += 1.0;
        }
      }
    }
  }
  double over = 0.0;
  for (int d = 0; d < 2; ++d) {
    for (std::size_t r = 0; r < g.region_count(); ++r) {
      over += std::max(0.0, usage[d][r] - g.capacity(static_cast<grid::Dir>(d)));
    }
  }
  return over;
}

}  // namespace rlcr::router
