#include <gtest/gtest.h>

#include "grid/congestion.h"
#include "grid/region_grid.h"

namespace rlcr::grid {
namespace {

RegionGridSpec spec_4x3() {
  RegionGridSpec s;
  s.cols = 4;
  s.rows = 3;
  s.region_w_um = 10.0;
  s.region_h_um = 20.0;
  s.h_capacity = 5;
  s.v_capacity = 4;
  return s;
}

TEST(RegionGrid, BasicGeometry) {
  const RegionGrid g(spec_4x3());
  EXPECT_EQ(g.region_count(), 12u);
  EXPECT_DOUBLE_EQ(g.chip_w_um(), 40.0);
  EXPECT_DOUBLE_EQ(g.chip_h_um(), 60.0);
  EXPECT_EQ(g.capacity(Dir::kHorizontal), 5);
  EXPECT_EQ(g.capacity(Dir::kVertical), 4);
  EXPECT_DOUBLE_EQ(g.span_um(Dir::kHorizontal), 10.0);
  EXPECT_DOUBLE_EQ(g.span_um(Dir::kVertical), 20.0);
}

TEST(RegionGrid, IndexRoundTrip) {
  const RegionGrid g(spec_4x3());
  for (std::int32_t y = 0; y < 3; ++y) {
    for (std::int32_t x = 0; x < 4; ++x) {
      const geom::Point p{x, y};
      EXPECT_EQ(g.at(g.index(p)), p);
    }
  }
}

TEST(RegionGrid, RegionOfMapsAndClamps) {
  const RegionGrid g(spec_4x3());
  EXPECT_EQ(g.region_of({5.0, 5.0}), (geom::Point{0, 0}));
  EXPECT_EQ(g.region_of({15.0, 25.0}), (geom::Point{1, 1}));
  EXPECT_EQ(g.region_of({39.9, 59.9}), (geom::Point{3, 2}));
  // Out-of-chip coordinates clamp to the border regions.
  EXPECT_EQ(g.region_of({-5.0, 1000.0}), (geom::Point{0, 2}));
}

TEST(RegionGrid, RejectsBadSpecs) {
  RegionGridSpec s = spec_4x3();
  s.cols = 0;
  EXPECT_THROW(RegionGrid{s}, std::invalid_argument);
  s = spec_4x3();
  s.region_w_um = 0.0;
  EXPECT_THROW(RegionGrid{s}, std::invalid_argument);
  s = spec_4x3();
  s.h_capacity = 0;
  EXPECT_THROW(RegionGrid{s}, std::invalid_argument);
}

TEST(Congestion, UtilizationDensityOverflow) {
  const RegionGrid g(spec_4x3());
  CongestionMap c(g);
  c.set_segments(0, Dir::kHorizontal, 3.0);
  c.set_shields(0, Dir::kHorizontal, 1.0);
  EXPECT_DOUBLE_EQ(c.utilization(0, Dir::kHorizontal), 4.0);
  EXPECT_DOUBLE_EQ(c.density(0, Dir::kHorizontal), 0.8);
  EXPECT_DOUBLE_EQ(c.relative_overflow(0, Dir::kHorizontal), 0.0);

  c.add_segments(0, Dir::kHorizontal, 3.5);
  EXPECT_DOUBLE_EQ(c.utilization(0, Dir::kHorizontal), 7.5);
  EXPECT_DOUBLE_EQ(c.relative_overflow(0, Dir::kHorizontal), 2.5 / 5.0);
}

TEST(Congestion, Aggregates) {
  const RegionGrid g(spec_4x3());
  CongestionMap c(g);
  c.set_segments(1, Dir::kVertical, 6.0);   // overflow 2 over cap 4
  c.set_shields(2, Dir::kHorizontal, 2.0);
  EXPECT_DOUBLE_EQ(c.max_density(), 1.5);
  EXPECT_DOUBLE_EQ(c.total_overflow(), 2.0);
  EXPECT_DOUBLE_EQ(c.total_shields(), 2.0);
  c.clear();
  EXPECT_DOUBLE_EQ(c.max_density(), 0.0);
}

TEST(RoutingArea, NoOverflowMeansChipSize) {
  const RegionGrid g(spec_4x3());
  CongestionMap c(g);
  for (std::size_t r = 0; r < g.region_count(); ++r) {
    c.set_segments(r, Dir::kHorizontal, 2.0);
    c.set_segments(r, Dir::kVertical, 2.0);
  }
  const RoutingArea a = compute_routing_area(c);
  EXPECT_DOUBLE_EQ(a.width_um, 40.0);
  EXPECT_DOUBLE_EQ(a.height_um, 60.0);
  EXPECT_DOUBLE_EQ(a.area_um2(), 2400.0);
}

TEST(RoutingArea, VerticalOverflowWidensItsRow) {
  const RegionGrid g(spec_4x3());
  CongestionMap c(g);
  // Region (1, 0) needs 8 vertical tracks with capacity 4 -> widens 2x.
  c.set_segments(g.index({1, 0}), Dir::kVertical, 8.0);
  const RoutingArea a = compute_routing_area(c);
  EXPECT_DOUBLE_EQ(a.width_um, 40.0 + 10.0);  // one region doubled
  EXPECT_DOUBLE_EQ(a.height_um, 60.0);        // horizontal unaffected
}

TEST(RoutingArea, HorizontalOverflowGrowsItsColumn) {
  const RegionGrid g(spec_4x3());
  CongestionMap c(g);
  // 7.5 horizontal tracks over capacity 5 -> region 1.5x taller.
  c.set_segments(g.index({2, 1}), Dir::kHorizontal, 7.5);
  const RoutingArea a = compute_routing_area(c);
  EXPECT_DOUBLE_EQ(a.width_um, 40.0);
  EXPECT_DOUBLE_EQ(a.height_um, 60.0 + 10.0);
}

TEST(RoutingArea, MaxRowGovernsWidth) {
  const RegionGrid g(spec_4x3());
  CongestionMap c(g);
  // Two overflows in the SAME row add up; a lone overflow in another row
  // does not change the maximum.
  c.set_segments(g.index({0, 1}), Dir::kVertical, 8.0);
  c.set_segments(g.index({3, 1}), Dir::kVertical, 6.0);
  c.set_segments(g.index({2, 2}), Dir::kVertical, 5.0);
  const RoutingArea a = compute_routing_area(c);
  // Row 1: 10*2 + 10 + 10 + 10*1.5 = 55.
  EXPECT_DOUBLE_EQ(a.width_um, 55.0);
}

TEST(RoutingArea, ShieldsCountTowardExpansion) {
  const RegionGrid g(spec_4x3());
  CongestionMap c(g);
  c.set_segments(g.index({1, 1}), Dir::kVertical, 3.0);
  c.set_shields(g.index({1, 1}), Dir::kVertical, 3.0);  // total 6 over cap 4
  const RoutingArea a = compute_routing_area(c);
  EXPECT_DOUBLE_EQ(a.width_um, 40.0 + 5.0);
}

}  // namespace
}  // namespace rlcr::grid
