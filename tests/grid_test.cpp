#include <gtest/gtest.h>

#include "grid/congestion.h"
#include "grid/region_grid.h"

namespace rlcr::grid {
namespace {

RegionGridSpec spec_4x3() {
  RegionGridSpec s;
  s.cols = 4;
  s.rows = 3;
  s.region_w_um = 10.0;
  s.region_h_um = 20.0;
  s.h_capacity = 5;
  s.v_capacity = 4;
  return s;
}

TEST(RegionGrid, BasicGeometry) {
  const RegionGrid g(spec_4x3());
  EXPECT_EQ(g.region_count(), 12u);
  EXPECT_DOUBLE_EQ(g.chip_w_um(), 40.0);
  EXPECT_DOUBLE_EQ(g.chip_h_um(), 60.0);
  EXPECT_EQ(g.capacity(Dir::kHorizontal), 5);
  EXPECT_EQ(g.capacity(Dir::kVertical), 4);
  EXPECT_DOUBLE_EQ(g.span_um(Dir::kHorizontal), 10.0);
  EXPECT_DOUBLE_EQ(g.span_um(Dir::kVertical), 20.0);
}

TEST(RegionGrid, IndexRoundTrip) {
  const RegionGrid g(spec_4x3());
  for (std::int32_t y = 0; y < 3; ++y) {
    for (std::int32_t x = 0; x < 4; ++x) {
      const geom::Point p{x, y};
      EXPECT_EQ(g.at(g.index(p)), p);
    }
  }
}

TEST(RegionGrid, RegionOfMapsAndClamps) {
  const RegionGrid g(spec_4x3());
  EXPECT_EQ(g.region_of({5.0, 5.0}), (geom::Point{0, 0}));
  EXPECT_EQ(g.region_of({15.0, 25.0}), (geom::Point{1, 1}));
  EXPECT_EQ(g.region_of({39.9, 59.9}), (geom::Point{3, 2}));
  // Out-of-chip coordinates clamp to the border regions.
  EXPECT_EQ(g.region_of({-5.0, 1000.0}), (geom::Point{0, 2}));
}

TEST(RegionGrid, RejectsBadSpecs) {
  RegionGridSpec s = spec_4x3();
  s.cols = 0;
  EXPECT_THROW(RegionGrid{s}, std::invalid_argument);
  s = spec_4x3();
  s.region_w_um = 0.0;
  EXPECT_THROW(RegionGrid{s}, std::invalid_argument);
  s = spec_4x3();
  s.h_capacity = 0;
  EXPECT_THROW(RegionGrid{s}, std::invalid_argument);
}

TEST(Congestion, UtilizationDensityOverflow) {
  const RegionGrid g(spec_4x3());
  CongestionMap c(g);
  c.set_segments(0, Dir::kHorizontal, 3.0);
  c.set_shields(0, Dir::kHorizontal, 1.0);
  EXPECT_DOUBLE_EQ(c.utilization(0, Dir::kHorizontal), 4.0);
  EXPECT_DOUBLE_EQ(c.density(0, Dir::kHorizontal), 0.8);
  EXPECT_DOUBLE_EQ(c.relative_overflow(0, Dir::kHorizontal), 0.0);

  c.add_segments(0, Dir::kHorizontal, 3.5);
  EXPECT_DOUBLE_EQ(c.utilization(0, Dir::kHorizontal), 7.5);
  EXPECT_DOUBLE_EQ(c.relative_overflow(0, Dir::kHorizontal), 2.5 / 5.0);
}

TEST(Congestion, Aggregates) {
  const RegionGrid g(spec_4x3());
  CongestionMap c(g);
  c.set_segments(1, Dir::kVertical, 6.0);   // overflow 2 over cap 4
  c.set_shields(2, Dir::kHorizontal, 2.0);
  EXPECT_DOUBLE_EQ(c.max_density(), 1.5);
  EXPECT_DOUBLE_EQ(c.total_overflow(), 2.0);
  EXPECT_DOUBLE_EQ(c.total_shields(), 2.0);
  c.clear();
  EXPECT_DOUBLE_EQ(c.max_density(), 0.0);
}

TEST(RoutingArea, NoOverflowMeansChipSize) {
  const RegionGrid g(spec_4x3());
  CongestionMap c(g);
  for (std::size_t r = 0; r < g.region_count(); ++r) {
    c.set_segments(r, Dir::kHorizontal, 2.0);
    c.set_segments(r, Dir::kVertical, 2.0);
  }
  const RoutingArea a = compute_routing_area(c);
  EXPECT_DOUBLE_EQ(a.width_um, 40.0);
  EXPECT_DOUBLE_EQ(a.height_um, 60.0);
  EXPECT_DOUBLE_EQ(a.area_um2(), 2400.0);
}

TEST(RoutingArea, VerticalOverflowWidensItsRow) {
  const RegionGrid g(spec_4x3());
  CongestionMap c(g);
  // Region (1, 0) needs 8 vertical tracks with capacity 4 -> widens 2x.
  c.set_segments(g.index({1, 0}), Dir::kVertical, 8.0);
  const RoutingArea a = compute_routing_area(c);
  EXPECT_DOUBLE_EQ(a.width_um, 40.0 + 10.0);  // one region doubled
  EXPECT_DOUBLE_EQ(a.height_um, 60.0);        // horizontal unaffected
}

TEST(RoutingArea, HorizontalOverflowGrowsItsColumn) {
  const RegionGrid g(spec_4x3());
  CongestionMap c(g);
  // 7.5 horizontal tracks over capacity 5 -> region 1.5x taller.
  c.set_segments(g.index({2, 1}), Dir::kHorizontal, 7.5);
  const RoutingArea a = compute_routing_area(c);
  EXPECT_DOUBLE_EQ(a.width_um, 40.0);
  EXPECT_DOUBLE_EQ(a.height_um, 60.0 + 10.0);
}

TEST(RoutingArea, MaxRowGovernsWidth) {
  const RegionGrid g(spec_4x3());
  CongestionMap c(g);
  // Two overflows in the SAME row add up; a lone overflow in another row
  // does not change the maximum.
  c.set_segments(g.index({0, 1}), Dir::kVertical, 8.0);
  c.set_segments(g.index({3, 1}), Dir::kVertical, 6.0);
  c.set_segments(g.index({2, 2}), Dir::kVertical, 5.0);
  const RoutingArea a = compute_routing_area(c);
  // Row 1: 10*2 + 10 + 10 + 10*1.5 = 55.
  EXPECT_DOUBLE_EQ(a.width_um, 55.0);
}

TEST(RoutingArea, ShieldsCountTowardExpansion) {
  const RegionGrid g(spec_4x3());
  CongestionMap c(g);
  c.set_segments(g.index({1, 1}), Dir::kVertical, 3.0);
  c.set_shields(g.index({1, 1}), Dir::kVertical, 3.0);  // total 6 over cap 4
  const RoutingArea a = compute_routing_area(c);
  EXPECT_DOUBLE_EQ(a.width_um, 40.0 + 5.0);
}

TEST(TiledVec, ReadsNeverAllocateWritesFirstTouch) {
  TiledVec<double> v(10 * TiledVec<double>::kTileSize, RegionStorage::kTiled);
  for (std::size_t i = 0; i < v.size(); i += 37) {
    EXPECT_EQ(v[i], 0.0);  // untouched slots read value-initialized
  }
  EXPECT_EQ(v.allocated_tiles(), 0u);
  EXPECT_EQ(v.storage_bytes(), 0u);

  v.ref(3) = 1.5;
  v.ref(3 * TiledVec<double>::kTileSize + 1) = 2.5;
  EXPECT_EQ(v.allocated_tiles(), 2u);
  EXPECT_DOUBLE_EQ(v[3], 1.5);
  EXPECT_DOUBLE_EQ(v[3 * TiledVec<double>::kTileSize + 1], 2.5);
  EXPECT_DOUBLE_EQ(v[4], 0.0);  // same tile, untouched slot

  v.clear();
  EXPECT_EQ(v.allocated_tiles(), 0u);
  EXPECT_DOUBLE_EQ(v[3], 0.0);
}

TEST(TiledVec, DenseModeIsOneAlwaysAllocatedTile) {
  TiledVec<int> v(1000, RegionStorage::kDense);
  EXPECT_EQ(v.tile_count(), 1u);
  EXPECT_TRUE(v.tile_allocated(0));
  EXPECT_EQ(v.tile_begin(0), 0u);
  EXPECT_EQ(v.tile_end(0), 1000u);
  v.ref(999) = 7;
  EXPECT_EQ(v[999], 7);
}

TEST(TiledVec, CopyPreservesValuesAndSparsity) {
  TiledVec<double> v(4 * TiledVec<double>::kTileSize, RegionStorage::kTiled);
  v.ref(5) = 9.0;
  const TiledVec<double> w = v;
  EXPECT_DOUBLE_EQ(w[5], 9.0);
  EXPECT_EQ(w.allocated_tiles(), 1u);
}

TEST(Congestion, TiledAndDenseAggregatesBitIdentical) {
  RegionGridSpec s;
  s.cols = 48;
  s.rows = 40;
  s.h_capacity = 6;
  s.v_capacity = 4;
  const RegionGrid g(s);
  CongestionMap tiled(g, RegionStorage::kTiled);
  CongestionMap dense(g, RegionStorage::kDense);
  // Scattered fractional traffic, including whole-tile gaps.
  std::uint64_t x = 12345;
  for (int k = 0; k < 300; ++k) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    const std::size_t r = (x >> 33) % (g.region_count() / 2);  // lower half only
    const Dir d = (x & 1) ? Dir::kVertical : Dir::kHorizontal;
    const double seg = static_cast<double>((x >> 5) % 13) * 0.75;
    const double sh = static_cast<double>((x >> 9) % 5) * 0.5;
    tiled.add_segments(r, d, seg);
    dense.add_segments(r, d, seg);
    tiled.add_shields(r, d, sh);
    dense.add_shields(r, d, sh);
  }
  // Bit-identical aggregates: the tiled scan skips only exactly-zero tiles.
  EXPECT_EQ(tiled.max_density(), dense.max_density());
  EXPECT_EQ(tiled.total_overflow(), dense.total_overflow());
  EXPECT_EQ(tiled.total_shields(), dense.total_shields());
  const RoutingArea at = compute_routing_area(tiled);
  const RoutingArea ad = compute_routing_area(dense);
  EXPECT_EQ(at.width_um, ad.width_um);
  EXPECT_EQ(at.height_um, ad.height_um);
  // The sparse map holds fewer bytes than the dense one on this grid.
  EXPECT_LT(tiled.storage_bytes(), dense.storage_bytes());
}

}  // namespace
}  // namespace rlcr::grid
