// Cross-module integration tests: the full three-flow pipeline on a small
// synthetic circuit, checked against the paper's qualitative claims and the
// library's internal consistency invariants.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/flow.h"
#include "core/refine.h"

#include "golden_util.h"

namespace rlcr::gsino {
namespace {

struct Pipeline {
  netlist::SyntheticSpec spec;
  netlist::Netlist design;
  GsinoParams params;

  explicit Pipeline(double rate, std::size_t nets = 400, std::uint64_t seed = 12)
      : spec(netlist::tiny_spec(nets, seed)) {
    spec.grid_cols = 12;
    spec.grid_rows = 12;
    spec.chip_w_um = 600.0;
    spec.chip_h_um = 600.0;
    spec.h_capacity = 12;
    spec.v_capacity = 12;
    spec.local_sigma_regions = 2.0;
    design = netlist::generate(spec);
    params.sensitivity_rate = rate;
  }

  RoutingProblem problem() const { return make_problem(design, spec, params); }
};

TEST(Integration, ThreeFlowsReproduceThePaperShape) {
  const Pipeline pipe(0.5);
  const RoutingProblem p = pipe.problem();
  const FlowRunner flows(p);

  const FlowResult idno = flows.run(FlowKind::kIdNo);
  const FlowResult isino = flows.run(FlowKind::kIsino);
  const FlowResult gsino_r = flows.run(FlowKind::kGsino);

  // Paper, Table 1: conventional routing leaves crosstalk violations.
  EXPECT_GT(idno.violating, 0u);
  // Paper, Section 4: both SINO flows eliminate all of them.
  EXPECT_EQ(isino.violating, 0u);
  EXPECT_EQ(gsino_r.violating, 0u);
  // Shields cost area: both SINO flows sit at or above the baseline.
  EXPECT_GE(isino.area.area_um2(), idno.area.area_um2());
  EXPECT_GE(gsino_r.area.area_um2(), idno.area.area_um2());
  // And they actually spent shields.
  EXPECT_GT(isino.total_shields, 0.0);
  EXPECT_GT(gsino_r.total_shields, 0.0);
  // ID+NO and iSINO share the same router configuration, hence wire length
  // (the paper states iSINO's wire length equals ID+NO's).
  EXPECT_DOUBLE_EQ(isino.total_wirelength_um, idno.total_wirelength_um);
}

TEST(Integration, SensitivityRateRaisesViolationsAndShields) {
  const Pipeline lo(0.3), hi(0.5);
  const RoutingProblem p_lo = lo.problem();
  const RoutingProblem p_hi = hi.problem();
  const FlowResult idno_lo = FlowRunner(p_lo).run(FlowKind::kIdNo);
  const FlowResult idno_hi = FlowRunner(p_hi).run(FlowKind::kIdNo);
  EXPECT_GE(idno_hi.violating, idno_lo.violating);
  const FlowResult is_lo = FlowRunner(p_lo).run(FlowKind::kIsino);
  const FlowResult is_hi = FlowRunner(p_hi).run(FlowKind::kIsino);
  EXPECT_GE(is_hi.total_shields, is_lo.total_shields);
}

TEST(Integration, RefinerPassesReportConsistentStats) {
  const Pipeline pipe(0.5);
  const RoutingProblem p = pipe.problem();
  // Run GSINO phases manually to inspect the refiner.
  GsinoParams params = pipe.params;
  const FlowResult before = [&] {
    GsinoParams no_refine = params;
    no_refine.lr_max_outer_pass1 = 0;
    no_refine.lr_max_outer_pass2 = 0;
    const RoutingProblem p2 =
        make_problem(pipe.design, pipe.spec, no_refine);
    return FlowRunner(p2).run(FlowKind::kGsino);
  }();
  // Refinement can only reduce the violation count.
  const FlowResult after = FlowRunner(p).run(FlowKind::kGsino);
  EXPECT_LE(after.violating, before.violating);
  // And pass 2 must not create violations.
  EXPECT_EQ(after.violating, 0u);
}

TEST(Integration, EveryRouteIsConnectedInEveryFlow) {
  const Pipeline pipe(0.3);
  const RoutingProblem p = pipe.problem();
  for (FlowKind kind : {FlowKind::kIdNo, FlowKind::kIsino, FlowKind::kGsino}) {
    const FlowResult fr = FlowRunner(p).run(kind);
    for (std::size_t n = 0; n < p.net_count(); ++n) {
      const auto& pins = p.router_nets()[n].pins;
      if (pins.size() < 2) continue;
      EXPECT_TRUE(fr.routing().routes[n].connects(pins))
          << flow_name(kind) << " net " << n;
    }
  }
}

TEST(Integration, NoiseIsTableLookupOfLsk) {
  const Pipeline pipe(0.4);
  const RoutingProblem p = pipe.problem();
  const FlowResult fr = FlowRunner(p).run(FlowKind::kGsino);
  for (std::size_t n = 0; n < p.net_count(); n += 7) {
    EXPECT_NEAR(fr.net_noise()[n], p.lsk_table().voltage(fr.net_lsk()[n]), 1e-12);
  }
}

TEST(Integration, DeterministicEndToEnd) {
  const Pipeline pipe(0.5);
  const RoutingProblem p1 = pipe.problem();
  const RoutingProblem p2 = pipe.problem();
  const FlowResult a = FlowRunner(p1).run(FlowKind::kGsino);
  const FlowResult b = FlowRunner(p2).run(FlowKind::kGsino);
  EXPECT_DOUBLE_EQ(a.total_shields, b.total_shields);
  EXPECT_DOUBLE_EQ(a.area.width_um, b.area.width_um);
  EXPECT_EQ(a.violating, b.violating);
}

// ---------------------------------------------------- golden regression
//
// End-to-end flow values captured from the pre-incremental (seed) router:
// any change to Phase I deletion order, weights, or tie-breaks shows up
// here as a wirelength/violation/route-hash drift.

TEST(IntegrationGolden, ThreeFlowsPinnedAtRateHalf) {
  const Pipeline pipe(0.5);
  const RoutingProblem p = pipe.problem();
  const FlowRunner flows(p);

  const FlowResult idno = flows.run(FlowKind::kIdNo);
  EXPECT_DOUBLE_EQ(idno.total_wirelength_um, 132650.0);
  EXPECT_EQ(idno.violating, 86u);
  EXPECT_DOUBLE_EQ(idno.total_shields, 0.0);
  EXPECT_NEAR(idno.area.area_um2(), 925295.13888888876, 1e-6);
  EXPECT_EQ(router::route_hash(idno.routing()), 13497901764394341437ULL);

  const FlowResult isino = flows.run(FlowKind::kIsino);
  EXPECT_DOUBLE_EQ(isino.total_wirelength_um, 132650.0);
  EXPECT_EQ(isino.violating, 0u);
  EXPECT_DOUBLE_EQ(isino.total_shields, 1002.0);
  EXPECT_EQ(router::route_hash(isino.routing()), 13497901764394341437ULL);

  const FlowResult gsino_r = flows.run(FlowKind::kGsino);
  EXPECT_DOUBLE_EQ(gsino_r.total_wirelength_um, 134150.0);
  EXPECT_EQ(gsino_r.violating, 0u);
  EXPECT_DOUBLE_EQ(gsino_r.total_shields, 931.0);
  EXPECT_NEAR(gsino_r.area.area_um2(), 1413194.4444444443, 1e-6);
  EXPECT_EQ(router::route_hash(gsino_r.routing()), 12686260652761461465ULL);
}

TEST(Integration, SeedChangesOutcome) {
  Pipeline a(0.5, 400, 1), b(0.5, 400, 2);
  const FlowResult fa = FlowRunner(a.problem()).run(FlowKind::kIdNo);
  const FlowResult fb = FlowRunner(b.problem()).run(FlowKind::kIdNo);
  EXPECT_NE(fa.total_wirelength_um, fb.total_wirelength_um);
}

class RateSweep : public ::testing::TestWithParam<double> {};

TEST_P(RateSweep, GsinoAlwaysMeetsTheBound) {
  Pipeline pipe(GetParam());
  const RoutingProblem p = pipe.problem();
  const FlowResult fr = FlowRunner(p).run(FlowKind::kGsino);
  EXPECT_EQ(fr.violating, 0u) << "rate " << GetParam();
  for (std::size_t n = 0; n < p.net_count(); ++n) {
    EXPECT_LE(fr.net_noise()[n], fr.bound_v + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, RateSweep,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7));

}  // namespace
}  // namespace rlcr::gsino
