// ISPD98-class generator and instance-discovery tests. The full-size
// ibm01-class fingerprint is pinned as a golden so the generator cannot
// drift across PRs (every downstream scaling number is keyed to these
// instances), and the staged flow is checked bit-identical between the
// tiled and dense per-region storage modes.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "core/problem.h"
#include "core/session.h"
#include "grid/tiled.h"
#include "netlist/ispd98_synth.h"
#include "router/route_types.h"

namespace rlcr::netlist {
namespace {

TEST(Ispd98Classes, SixCalibratedClasses) {
  const auto classes = ispd98_classes();
  ASSERT_EQ(classes.size(), 6u);
  EXPECT_EQ(classes.front().name, "ibm01");
  EXPECT_EQ(classes.back().name, "ibm06");
  for (const Ispd98ClassSpec& c : classes) {
    EXPECT_GT(c.nets, 14000u);
    EXPECT_GT(c.modules, c.pads);
    EXPECT_GT(c.mean_degree(), 3.0);
    EXPECT_LT(c.mean_degree(), 5.0);
    const grid::RegionGridSpec g = c.grid_spec();
    EXPECT_GT(g.cols * g.rows, 16000);  // ISPD98-size fabrics
    EXPECT_GT(g.region_w_um, 0.0);
    EXPECT_GT(g.region_h_um, 0.0);
  }
}

TEST(Ispd98Classes, FindByName) {
  const auto classes = ispd98_classes();
  ASSERT_NE(find_ispd98_class(classes, "ibm04"), nullptr);
  EXPECT_EQ(find_ispd98_class(classes, "ibm04")->name, "ibm04");
  EXPECT_EQ(find_ispd98_class(classes, "ibm99"), nullptr);
}

TEST(Ispd98Synth, Ibm01FingerprintGolden) {
  // Golden pinned at introduction: the full-size ibm01-class instance,
  // byte-stable across platforms and PRs. A deliberate generator change
  // must re-pin this value (and expects the scaling trajectory to reset).
  const auto classes = ispd98_classes();
  const Netlist nl = generate_ispd98(classes[0]);
  EXPECT_EQ(nl.net_count(), 14111u);
  EXPECT_EQ(nl.cell_count(), 12752u);
  EXPECT_EQ(netlist_fingerprint(nl), 0x77045ddaf07588eaULL);
}

TEST(Ispd98Synth, DeterministicInSpec) {
  const auto classes = ispd98_classes(0.05);
  const Netlist a = generate_ispd98(classes[1]);
  const Netlist b = generate_ispd98(classes[1]);
  EXPECT_EQ(netlist_fingerprint(a), netlist_fingerprint(b));
}

TEST(Ispd98Synth, MatchesPublishedDistributions) {
  const auto classes = ispd98_classes();
  for (const std::size_t idx : {std::size_t{0}, std::size_t{4}}) {
    const Ispd98ClassSpec& spec = classes[idx];
    const Netlist nl = generate_ispd98(spec);
    // Exact counts: nets, modules, pads.
    EXPECT_EQ(nl.net_count(), spec.nets);
    EXPECT_EQ(nl.cell_count(), spec.modules);
    std::size_t pads = 0;
    for (const Cell& c : nl.cells()) pads += c.is_pad;
    EXPECT_EQ(pads, spec.pads);
    // Mean degree within 3% of the published pins/nets (duplicate-cell
    // rejection trims the tail slightly).
    double pins = 0.0;
    for (const Net& n : nl.nets()) {
      pins += static_cast<double>(n.pins.size());
      EXPECT_GE(n.pins.size(), 2u);
    }
    const double mean = pins / static_cast<double>(nl.net_count());
    EXPECT_NEAR(mean, spec.mean_degree(), 0.03 * spec.mean_degree());
    // Every pin is cell-backed and materialized inside the outline.
    for (const Net& n : nl.nets()) {
      for (const Pin& p : n.pins) {
        ASSERT_NE(p.cell, kNoCell);
        EXPECT_GE(p.pos.x, 0.0);
        EXPECT_LE(p.pos.x, nl.width_um());
        EXPECT_GE(p.pos.y, 0.0);
        EXPECT_LE(p.pos.y, nl.height_um());
      }
    }
  }
}

TEST(Ispd98Synth, ScaledClassKeepsShape) {
  const auto full = ispd98_classes();
  const auto small = ispd98_classes(0.1);
  EXPECT_NEAR(static_cast<double>(small[0].nets),
              0.1 * static_cast<double>(full[0].nets), 2.0);
  EXPECT_NEAR(small[0].mean_degree(), full[0].mean_degree(), 0.01);
  // Grid and chip shrink together (density preserved).
  EXPECT_NEAR(static_cast<double>(small[0].grid_cols),
              std::sqrt(0.1) * full[0].grid_cols, 1.0);
  const Netlist nl = generate_ispd98(small[0]);
  EXPECT_EQ(nl.net_count(), small[0].nets);
}

TEST(Ispd98Instance, SyntheticWhenNoRealFiles) {
  ::unsetenv("RLCR_ISPD98_DIR");
  const auto classes = ispd98_classes(0.02);
  const Ispd98Instance inst = make_ispd98_instance(classes[0]);
  EXPECT_FALSE(inst.real);
  EXPECT_EQ(inst.source, "synthetic");
  EXPECT_EQ(inst.design.net_count(), classes[0].nets);
}

TEST(Ispd98Instance, RealFilesSubstituteWhenDirProvided) {
  // A miniature netD/.are pair standing in for the genuine suite files.
  const std::string dir = ::testing::TempDir() + "rlcr_ispd98";
  ASSERT_EQ(std::system(("mkdir -p " + dir).c_str()), 0);
  {
    std::ofstream net(dir + "/ibm01.netD");
    net << "0\n7\n2\n5\n2\n"
           "a0 s\na1 l\np1 l\n"
           "a2 s\na0 l\na1 l\np2 l\n";
    std::ofstream are(dir + "/ibm01.are");
    are << "a0 4\na1 2\na2 8\np1 1\np2 1\n";
  }
  ::setenv("RLCR_ISPD98_DIR", dir.c_str(), 1);
  const auto classes = ispd98_classes();
  const Ispd98Instance inst = make_ispd98_instance(classes[0]);
  ::unsetenv("RLCR_ISPD98_DIR");

  EXPECT_TRUE(inst.real);
  EXPECT_EQ(inst.source, dir + "/ibm01.netD");
  EXPECT_EQ(inst.design.net_count(), 2u);
  EXPECT_EQ(inst.design.cell_count(), 5u);
  EXPECT_TRUE(inst.parse_stats.counts_match());
  // Placed inside the class outline with pins materialized.
  EXPECT_DOUBLE_EQ(inst.design.width_um(), classes[0].chip_w_um);
  for (const Net& n : inst.design.nets()) {
    for (const Pin& p : n.pins) {
      EXPECT_GE(p.pos.x, 0.0);
      EXPECT_LE(p.pos.x, inst.design.width_um());
    }
  }
  // The .are areas attached.
  for (const Cell& c : inst.design.cells()) {
    if (c.name == "a2") EXPECT_DOUBLE_EQ(c.area_um2, 8.0);
  }
}

TEST(Ispd98Instance, ScaledSpecsNeverSubstituteRealFiles) {
  // A real circuit cannot shrink with the fabric: on a scaled spec the
  // genuine files are ignored even when the directory holds them.
  const std::string dir = ::testing::TempDir() + "rlcr_ispd98_scaled";
  ASSERT_EQ(std::system(("mkdir -p " + dir).c_str()), 0);
  {
    std::ofstream net(dir + "/ibm01.netD");
    net << "0\n3\n1\n2\n0\na0 s\na1 l\na0 l\n";
  }
  ::setenv("RLCR_ISPD98_DIR", dir.c_str(), 1);
  const auto scaled = ispd98_classes(0.05);
  const Ispd98Instance inst = make_ispd98_instance(scaled[0]);
  ::unsetenv("RLCR_ISPD98_DIR");
  EXPECT_FALSE(inst.real);
  EXPECT_EQ(inst.source, "synthetic");
  EXPECT_EQ(inst.design.net_count(), scaled[0].nets);
}

TEST(Ispd98Flow, TiledAndDenseSessionsBitIdentical) {
  // The staged session on an ISPD98-class instance is bit-identical
  // between the tiled and dense per-region storage modes, end to end.
  ::unsetenv("RLCR_ISPD98_DIR");
  const auto classes = ispd98_classes(0.03);
  const Ispd98Instance inst = make_ispd98_instance(classes[0]);
  gsino::GsinoParams params;
  const gsino::RoutingProblem problem(inst.design, inst.gspec, params);

  const grid::RegionStorage before = grid::default_region_storage();
  auto run = [&](grid::RegionStorage mode) {
    grid::set_default_region_storage(mode);
    gsino::FlowSession session(problem);
    return session.run(gsino::FlowKind::kGsino);
  };
  const gsino::FlowResult tiled = run(grid::RegionStorage::kTiled);
  const gsino::FlowResult dense = run(grid::RegionStorage::kDense);
  grid::set_default_region_storage(before);

  EXPECT_EQ(router::route_hash(*tiled.phase1->routing),
            router::route_hash(*dense.phase1->routing));
  EXPECT_EQ(tiled.violating, dense.violating);
  EXPECT_EQ(tiled.total_shields, dense.total_shields);
  EXPECT_EQ(tiled.area.width_um, dense.area.width_um);
  ASSERT_EQ(tiled.net_lsk().size(), dense.net_lsk().size());
  for (std::size_t n = 0; n < tiled.net_lsk().size(); ++n) {
    EXPECT_EQ(tiled.net_lsk()[n], dense.net_lsk()[n]);
    EXPECT_EQ(tiled.net_noise()[n], dense.net_noise()[n]);
  }
}

}  // namespace
}  // namespace rlcr::netlist
