#include <gtest/gtest.h>

#include <sstream>

#include "netlist/ispd98.h"

namespace rlcr::netlist {
namespace {

constexpr const char* kSampleNet =
    "0\n"
    " 7\n"
    " 2\n"
    " 5\n"
    " 1\n"
    "a0 s\n"
    "a1 l\n"
    "p0 l\n"
    "a2 s\n"
    "a0 l\n"
    "a3 l\n"
    "p1 l\n";

TEST(Ispd98, ParsesSampleNetlist) {
  std::istringstream in(kSampleNet);
  Netlist nl;
  const Ispd98Parser parser;
  const Ispd98Stats stats = parser.parse_net(in, nl);

  EXPECT_EQ(stats.declared_pins, 7u);
  EXPECT_EQ(stats.declared_nets, 2u);
  EXPECT_EQ(stats.declared_modules, 5u);
  EXPECT_EQ(stats.parsed_pins, 7u);
  EXPECT_EQ(stats.parsed_nets, 2u);
  EXPECT_EQ(nl.net_count(), 2u);
  EXPECT_EQ(nl.cell_count(), 6u);  // a0..a3, p0, p1

  // First net: a0 (source), a1, p0.
  EXPECT_EQ(nl.net(0).pins.size(), 3u);
  EXPECT_EQ(nl.cell(nl.net(0).pins[0].cell).name, "a0");
  // Second net: a2 (source), a0, a3, p1 — a0 is shared between nets.
  EXPECT_EQ(nl.net(1).pins.size(), 4u);
  EXPECT_EQ(nl.cell(nl.net(1).pins[1].cell).name, "a0");
}

TEST(Ispd98, PadDetectionByPrefix) {
  std::istringstream in(kSampleNet);
  Netlist nl;
  Ispd98Parser().parse_net(in, nl);
  int pads = 0;
  for (const Cell& c : nl.cells()) pads += c.is_pad;
  EXPECT_EQ(pads, 2);
}

TEST(Ispd98, HandlesCrLfAndBlankLines) {
  std::istringstream in("0\r\n3\r\n1\r\n2\r\n0\r\n\r\na0 s\r\na1 l\r\na0 l\r\n");
  Netlist nl;
  const auto stats = Ispd98Parser().parse_net(in, nl);
  EXPECT_EQ(stats.parsed_nets, 1u);
  EXPECT_EQ(stats.parsed_pins, 3u);
}

TEST(Ispd98, ContinuationBeforeStartThrows) {
  std::istringstream in("0\n1\n1\n1\n0\na0 l\n");
  Netlist nl;
  EXPECT_THROW(Ispd98Parser().parse_net(in, nl), std::runtime_error);
}

TEST(Ispd98, UnknownKindThrows) {
  std::istringstream in("0\n1\n1\n1\n0\na0 x\n");
  Netlist nl;
  EXPECT_THROW(Ispd98Parser().parse_net(in, nl), std::runtime_error);
}

TEST(Ispd98, EmptyInputThrows) {
  std::istringstream in("");
  Netlist nl;
  EXPECT_THROW(Ispd98Parser().parse_net(in, nl), std::runtime_error);
}

TEST(Ispd98, BadHeaderCountThrows) {
  std::istringstream in("0\nnotanumber\n");
  Netlist nl;
  EXPECT_THROW(Ispd98Parser().parse_net(in, nl), std::runtime_error);
}

TEST(Ispd98, AreasAttachToKnownModules) {
  std::istringstream in(kSampleNet);
  Netlist nl;
  Ispd98Parser().parse_net(in, nl);

  std::istringstream areas("a0 12.5\na1 3\nunknown 99\n");
  const std::size_t matched = Ispd98Parser().parse_areas(areas, nl);
  EXPECT_EQ(matched, 2u);
  for (const Cell& c : nl.cells()) {
    if (c.name == "a0") EXPECT_DOUBLE_EQ(c.area_um2, 12.5);
    if (c.name == "a1") EXPECT_DOUBLE_EQ(c.area_um2, 3.0);
  }
}

TEST(Ispd98, LoadMissingFileThrows) {
  EXPECT_THROW(Ispd98Parser().load("/nonexistent/file.net"), std::runtime_error);
}

TEST(Ispd98, MatchingCountsReportNothing) {
  // Header consistent with the body: 6 pins, 2 nets, 4 modules.
  std::istringstream in(
      "0\n6\n2\n4\n1\n"
      "a0 s\na1 l\np0 l\n"
      "a2 s\na0 l\na1 l\n");
  Netlist nl;
  const Ispd98Stats stats = Ispd98Parser().parse_net(in, nl);
  EXPECT_TRUE(stats.counts_match());
  EXPECT_EQ(stats.mismatch_report(), "");
}

TEST(Ispd98, MismatchReportNamesEveryDiscrepantField) {
  // Header declares 9 pins / 3 nets / 7 modules; the body holds 7 / 2 / 6.
  std::istringstream in(std::string("0\n9\n3\n7\n1\n") +
                        "a0 s\na1 l\np0 l\n"
                        "a2 s\na0 l\na3 l\np1 l\n");
  Netlist nl;
  const Ispd98Stats stats = Ispd98Parser().parse_net(in, nl);
  EXPECT_FALSE(stats.counts_match());
  const std::string report = stats.mismatch_report();
  EXPECT_NE(report.find("pins"), std::string::npos);
  EXPECT_NE(report.find("declares 9"), std::string::npos);
  EXPECT_NE(report.find("parsed 7"), std::string::npos);
  EXPECT_NE(report.find("nets"), std::string::npos);
  EXPECT_NE(report.find("modules"), std::string::npos);
}

TEST(Ispd98, MismatchIsNotAParseError) {
  // A count mismatch is reported, never thrown — some suite distributions
  // disagree with their own headers.
  std::istringstream in("0\n100\n100\n100\n0\na0 s\na1 l\n");
  Netlist nl;
  Ispd98Stats stats;
  EXPECT_NO_THROW(stats = Ispd98Parser().parse_net(in, nl));
  EXPECT_FALSE(stats.counts_match());
  EXPECT_EQ(nl.net_count(), 1u);
}

TEST(Ispd98, PadOnlyNetsParse) {
  // A net whose every terminal is a pad (feed-through I/O) is legal.
  std::istringstream in("0\n5\n2\n3\n3\np0 s\np1 l\np2 l\np0 s\np2 l\n");
  Netlist nl;
  const Ispd98Stats stats = Ispd98Parser().parse_net(in, nl);
  EXPECT_EQ(stats.parsed_nets, 2u);
  EXPECT_EQ(nl.net_count(), 2u);
  for (const Net& net : nl.nets()) {
    EXPECT_TRUE(net.routable());
    for (const Pin& p : net.pins) EXPECT_TRUE(nl.cell(p.cell).is_pad);
  }
}

}  // namespace
}  // namespace rlcr::netlist
