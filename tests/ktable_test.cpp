#include <gtest/gtest.h>

#include "ktable/keff.h"
#include "ktable/lsk_builder.h"
#include "ktable/lsk_table.h"
#include "util/stats.h"

namespace rlcr::ktable {
namespace {

TEST(Keff, ProfileDecaysMonotonically) {
  const KeffModel m;
  EXPECT_DOUBLE_EQ(m.profile(0), 0.0);
  EXPECT_DOUBLE_EQ(m.profile(1), 1.0);
  for (int d = 2; d < 32; ++d) {
    EXPECT_LT(m.profile(d), m.profile(d - 1)) << "d=" << d;
    EXPECT_GT(m.profile(d), 0.0);
  }
}

TEST(Keff, ProfileClampsAtMaxSeparation) {
  KeffParams p;
  p.max_separation = 8;
  const KeffModel m(p);
  EXPECT_DOUBLE_EQ(m.profile(8), m.profile(100));
}

TEST(Keff, ScaleMultiplies) {
  KeffParams p;
  p.scale = 2.5;
  const KeffModel m(p);
  EXPECT_DOUBLE_EQ(m.profile(1), 2.5);
}

TEST(Keff, PairCouplingSymmetricAndShieldAttenuated) {
  const KeffModel m;
  //               0  1        2  3        4
  const SlotVec slots{0, kEmptySlot, 1, kShieldSlot, 2};
  EXPECT_DOUBLE_EQ(m.pair_coupling(slots, 0, 2), m.pair_coupling(slots, 2, 0));
  EXPECT_DOUBLE_EQ(m.pair_coupling(slots, 0, 2), m.profile(2));
  // One shield between slots 2 and 4.
  EXPECT_NEAR(m.pair_coupling(slots, 2, 4),
              m.profile(2) * m.params().shield_attenuation, 1e-12);
  // Non-signal slots never couple.
  EXPECT_DOUBLE_EQ(m.pair_coupling(slots, 0, 1), 0.0);
  EXPECT_DOUBLE_EQ(m.pair_coupling(slots, 0, 3), 0.0);
  EXPECT_DOUBLE_EQ(m.pair_coupling(slots, 0, 0), 0.0);
}

TEST(Keff, TwoShieldsAttenuateTwice) {
  const KeffModel m;
  const SlotVec slots{0, kShieldSlot, kShieldSlot, 1};
  const double a = m.params().shield_attenuation;
  EXPECT_NEAR(m.pair_coupling(slots, 0, 3), m.profile(3) * a * a, 1e-12);
}

TEST(Keff, TotalCouplingSumsAggressorsOnly) {
  const KeffModel m;
  const SlotVec slots{0, 1, 2, 3};
  // Only nets 1 and 3 attack the victim in slot 0.
  const double ki = m.total_coupling(
      slots, 0, [](Slot net) { return net == 1 || net == 3; });
  EXPECT_NEAR(ki, m.profile(1) + m.profile(3), 1e-12);
}

TEST(Keff, VictimMustBeASignal) {
  const KeffModel m;
  const SlotVec slots{kShieldSlot, 1};
  EXPECT_DOUBLE_EQ(m.total_coupling(slots, 0, [](Slot) { return true; }), 0.0);
}

// ---------------------------------------------------------------- table

TEST(LskTable, FromLinearSpansRequestedBand) {
  const LskTable t = LskTable::from_linear(0.05, 0.01);
  EXPECT_EQ(t.size(), 100u);
  EXPECT_DOUBLE_EQ(t.entries().front().voltage, 0.10);
  EXPECT_DOUBLE_EQ(t.entries().back().voltage, 0.20);
}

TEST(LskTable, EntriesStrictlyIncrease) {
  const LskTable t = LskTable::default_table();
  for (std::size_t i = 1; i < t.size(); ++i) {
    EXPECT_GT(t.entries()[i].lsk, t.entries()[i - 1].lsk);
    EXPECT_GT(t.entries()[i].voltage, t.entries()[i - 1].voltage);
  }
}

TEST(LskTable, LookupInterpolatesLinearSource) {
  const double slope = 0.05, icept = 0.01;
  const LskTable t = LskTable::from_linear(slope, icept);
  for (double lsk : {0.5, 1.5, 2.8}) {
    EXPECT_NEAR(t.voltage(lsk), slope * lsk + icept, 1e-9);
  }
}

TEST(LskTable, InverseRoundTrips) {
  const LskTable t = LskTable::default_table();
  for (double v = 0.11; v < 0.20; v += 0.017) {
    EXPECT_NEAR(t.voltage(t.lsk_budget(v)), v, 1e-9);
  }
}

TEST(LskTable, ExtrapolatesBeyondEnds) {
  const LskTable t = LskTable::from_linear(0.05, 0.01);
  // Far below the band the line continues (clamped at zero).
  EXPECT_NEAR(t.voltage(0.0), 0.01, 1e-9);
  EXPECT_DOUBLE_EQ(t.voltage(-100.0), 0.0);
  // Above the band too.
  EXPECT_NEAR(t.voltage(10.0), 0.05 * 10.0 + 0.01, 1e-9);
}

TEST(LskTable, RejectsBadInputs) {
  EXPECT_THROW(LskTable::from_linear(-1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(LskTable({{0.0, 0.1}}), std::invalid_argument);
  EXPECT_THROW(LskTable({{0.0, 0.1}, {0.0, 0.2}}), std::invalid_argument);
  EXPECT_THROW(LskTable({{0.0, 0.2}, {1.0, 0.1}}), std::invalid_argument);
}

// --------------------------------------------------------------- builder

TEST(LskBuilder, SmallRunFitsPositiveSlope) {
  LskBuilderOptions opt;
  opt.tracks = 6;
  opt.samples_per_length = 6;
  opt.lengths_um = {300.0, 900.0};
  opt.segments = 4;
  opt.sim_dt = 0.5e-12;
  opt.sim_t_stop = 120e-12;
  const LskTableBuilder builder(opt);
  const KeffModel keff;
  const circuit::Technology tech;

  const auto samples = builder.sample(keff, tech);
  ASSERT_GT(samples.size(), 4u);
  const auto fit = builder.fit(samples);
  EXPECT_GT(fit.slope, 0.0);

  const LskTable table = builder.build(keff, tech);
  EXPECT_EQ(table.size(), 100u);
}

TEST(LskBuilder, FidelityRankCorrelation) {
  // The paper's fidelity property: higher LSK implies higher simulated
  // noise. Checked as a rank correlation over a modest sample.
  LskBuilderOptions opt;
  opt.tracks = 8;
  opt.samples_per_length = 10;
  opt.lengths_um = {400.0, 1000.0};
  opt.segments = 4;
  opt.sim_dt = 0.5e-12;
  opt.sim_t_stop = 120e-12;
  const auto samples = LskTableBuilder(opt).sample(KeffModel{}, circuit::Technology{});
  std::vector<double> lsk, noise;
  for (const auto& s : samples) {
    lsk.push_back(s.lsk);
    noise.push_back(s.noise_v);
  }
  EXPECT_GT(util::spearman(lsk, noise), 0.6);
}

TEST(LskBuilder, DeterministicInSeed) {
  LskBuilderOptions opt;
  opt.tracks = 6;
  opt.samples_per_length = 4;
  opt.lengths_um = {500.0};
  opt.segments = 4;
  opt.sim_dt = 0.5e-12;
  opt.sim_t_stop = 100e-12;
  const auto a = LskTableBuilder(opt).sample(KeffModel{}, circuit::Technology{});
  const auto b = LskTableBuilder(opt).sample(KeffModel{}, circuit::Technology{});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].lsk, b[i].lsk);
    EXPECT_DOUBLE_EQ(a[i].noise_v, b[i].noise_v);
  }
}

}  // namespace
}  // namespace rlcr::ktable
