#include <gtest/gtest.h>

#include "netlist/netlist.h"
#include "netlist/sensitivity.h"
#include "netlist/synthetic.h"

namespace rlcr::netlist {
namespace {

TEST(Netlist, AddAndQuery) {
  Netlist nl("t", 100.0, 200.0);
  const CellId c = nl.add_cell(Cell{"c0", 2.0, {1.0, 2.0}, false, true});
  Net n;
  n.name = "n0";
  n.pins = {Pin{{0, 0}, c}, Pin{{5, 5}, kNoCell}};
  nl.add_net(std::move(n));
  EXPECT_EQ(nl.cell_count(), 1u);
  EXPECT_EQ(nl.net_count(), 1u);
  EXPECT_EQ(nl.width_um(), 100.0);
  EXPECT_TRUE(nl.net(0).routable());
  EXPECT_EQ(nl.net(0).sink_count(), 1u);
}

TEST(Netlist, MaterializePinsCopiesCellPositions) {
  Netlist nl("t", 10, 10);
  const CellId c = nl.add_cell(Cell{"c", 1.0, {3.0, 4.0}, false, true});
  Net n;
  n.pins = {Pin{{0, 0}, c}, Pin{{9, 9}, kNoCell}};
  nl.add_net(std::move(n));
  nl.materialize_pins();
  EXPECT_DOUBLE_EQ(nl.net(0).pins[0].pos.x, 3.0);
  EXPECT_DOUBLE_EQ(nl.net(0).pins[0].pos.y, 4.0);
  // Cell-less pins keep their coordinates.
  EXPECT_DOUBLE_EQ(nl.net(0).pins[1].pos.x, 9.0);
}

TEST(Netlist, HpwlOfKnownNet) {
  Net n;
  n.pins = {Pin{{0.0, 0.0}, kNoCell}, Pin{{3.0, 4.0}, kNoCell},
            Pin{{1.0, 6.0}, kNoCell}};
  EXPECT_DOUBLE_EQ(n.hpwl(), 3.0 + 6.0);
}

TEST(Netlist, StatsSkipSingletonNets) {
  Netlist nl("t", 10, 10);
  Net lonely;
  lonely.pins = {Pin{{1, 1}, kNoCell}};
  nl.add_net(std::move(lonely));
  Net pair;
  pair.pins = {Pin{{0, 0}, kNoCell}, Pin{{2, 2}, kNoCell}};
  nl.add_net(std::move(pair));
  EXPECT_EQ(nl.routable_net_count(), 1u);
  EXPECT_DOUBLE_EQ(nl.total_hpwl(), 4.0);
  EXPECT_DOUBLE_EQ(nl.average_degree(), 2.0);
}

// ------------------------------------------------------------- Synthetic

TEST(Synthetic, GeneratesRequestedNetCount) {
  SyntheticSpec spec = tiny_spec(150, 1);
  const Netlist nl = generate(spec);
  EXPECT_EQ(nl.net_count(), 150u);
}

TEST(Synthetic, IsDeterministicInSeed) {
  const SyntheticSpec spec = tiny_spec(100, 9);
  const Netlist a = generate(spec);
  const Netlist b = generate(spec);
  ASSERT_EQ(a.net_count(), b.net_count());
  for (std::size_t i = 0; i < a.net_count(); ++i) {
    ASSERT_EQ(a.net(static_cast<NetId>(i)).pins.size(),
              b.net(static_cast<NetId>(i)).pins.size());
    for (std::size_t p = 0; p < a.net(static_cast<NetId>(i)).pins.size(); ++p) {
      EXPECT_EQ(a.net(static_cast<NetId>(i)).pins[p].pos,
                b.net(static_cast<NetId>(i)).pins[p].pos);
    }
  }
}

TEST(Synthetic, DifferentSeedsDiffer) {
  const Netlist a = generate(tiny_spec(100, 1));
  const Netlist b = generate(tiny_spec(100, 2));
  bool any_diff = false;
  for (std::size_t i = 0; i < a.net_count() && !any_diff; ++i) {
    if (!(a.net(static_cast<NetId>(i)).pins[0].pos ==
          b.net(static_cast<NetId>(i)).pins[0].pos)) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(Synthetic, PinsStayInsideChip) {
  const SyntheticSpec spec = tiny_spec(300, 3);
  const Netlist nl = generate(spec);
  for (const Net& n : nl.nets()) {
    for (const Pin& p : n.pins) {
      EXPECT_GE(p.pos.x, 0.0);
      EXPECT_LT(p.pos.x, spec.chip_w_um);
      EXPECT_GE(p.pos.y, 0.0);
      EXPECT_LT(p.pos.y, spec.chip_h_um);
    }
  }
}

TEST(Synthetic, DegreeDistributionIsHeavyOnTwoPin) {
  const Netlist nl = generate(tiny_spec(2000, 4));
  std::size_t two_pin = 0;
  std::size_t total_pins = 0;
  for (const Net& n : nl.nets()) {
    ASSERT_GE(n.pins.size(), 2u);
    ASSERT_LE(n.pins.size(), 24u);
    two_pin += (n.pins.size() == 2);
    total_pins += n.pins.size();
  }
  const double frac2 = static_cast<double>(two_pin) / 2000.0;
  EXPECT_GT(frac2, 0.45);
  EXPECT_LT(frac2, 0.65);
  const double avg = static_cast<double>(total_pins) / 2000.0;
  EXPECT_GT(avg, 2.8);
  EXPECT_LT(avg, 4.5);
}

TEST(Synthetic, ScaleShrinksNetCount) {
  SyntheticSpec spec = tiny_spec(1000, 5);
  spec.scale = 0.1;
  EXPECT_EQ(generate(spec).net_count(), 100u);
}

TEST(Synthetic, IbmSuiteMatchesPublishedStatistics) {
  const auto suite = ibm_suite();
  ASSERT_EQ(suite.size(), 6u);
  // Net counts back-derived from the paper's Table 1.
  EXPECT_EQ(suite[0].num_nets, 13056u);
  EXPECT_EQ(suite[4].num_nets, 29647u);
  // Chip outlines from Table 3's ID+NO row.
  EXPECT_DOUBLE_EQ(suite[0].chip_w_um, 1533.0);
  EXPECT_DOUBLE_EQ(suite[0].chip_h_um, 1824.0);
  EXPECT_DOUBLE_EQ(suite[4].chip_w_um, 9837.0);
  for (const auto& s : suite) {
    EXPECT_GT(s.grid_cols, 0);
    EXPECT_GT(s.grid_rows, 0);
    EXPECT_GT(s.h_capacity, 0);
    EXPECT_GT(s.v_capacity, 0);
  }
}

// ------------------------------------------------------------ Sensitivity

TEST(Sensitivity, SymmetricAndIrreflexive) {
  const SensitivityModel m(200, 0.3, 11);
  for (NetId i = 0; i < 200; ++i) {
    EXPECT_FALSE(m.sensitive(i, i));
    for (NetId j = 0; j < 200; j += 17) {
      EXPECT_EQ(m.sensitive(i, j), m.sensitive(j, i));
    }
  }
}

TEST(Sensitivity, DeterministicInSeed) {
  const SensitivityModel a(100, 0.3, 5);
  const SensitivityModel b(100, 0.3, 5);
  for (NetId i = 0; i < 100; ++i)
    for (NetId j = 0; j < 100; ++j) EXPECT_EQ(a.sensitive(i, j), b.sensitive(i, j));
}

TEST(Sensitivity, RealizedRateMatchesNominal) {
  const double rate = 0.3;
  const SensitivityModel m(400, rate, 21);
  std::size_t hits = 0, pairs = 0;
  for (NetId i = 0; i < 400; ++i) {
    for (NetId j = static_cast<NetId>(i) + 1; j < 400; ++j) {
      hits += m.sensitive(i, j);
      ++pairs;
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / static_cast<double>(pairs), rate, 0.02);
}

TEST(Sensitivity, PerNetRatePredictsAggressorCount) {
  // The model promises E[aggressor fraction of net i] = s_i.
  const SensitivityModel m(600, 0.4, 33);
  std::vector<NetId> all;
  for (NetId i = 0; i < 600; ++i) all.push_back(i);
  for (NetId i = 0; i < 600; i += 97) {
    const double realized =
        static_cast<double>(m.aggressor_count(i, all)) / 599.0;
    EXPECT_NEAR(realized, m.si(i), 0.08) << "net " << i;
  }
}

TEST(Sensitivity, ZeroRateMeansNoPairs) {
  const SensitivityModel m(50, 0.0, 3);
  for (NetId i = 0; i < 50; ++i)
    for (NetId j = 0; j < 50; ++j) EXPECT_FALSE(m.sensitive(i, j));
}

TEST(Sensitivity, SiStaysWithinHeterogeneityBand) {
  const double rate = 0.3;
  const SensitivityModel m(1000, rate, 7, 0.5);
  for (NetId i = 0; i < 1000; ++i) {
    EXPECT_GE(m.si(i), rate * 0.5 - 1e-12);
    EXPECT_LE(m.si(i), rate * 1.5 + 1e-12);
  }
}

TEST(Sensitivity, OutOfRangeIdsAreInsensitive) {
  const SensitivityModel m(10, 0.5, 1);
  EXPECT_FALSE(m.sensitive(-1, 2));
  EXPECT_FALSE(m.sensitive(2, 100));
}

class SensitivityRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(SensitivityRateSweep, RealizedRateTracksParameter) {
  const double rate = GetParam();
  const SensitivityModel m(300, rate, 99);
  std::size_t hits = 0, pairs = 0;
  for (NetId i = 0; i < 300; ++i) {
    for (NetId j = static_cast<NetId>(i) + 1; j < 300; ++j) {
      hits += m.sensitive(i, j);
      ++pairs;
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / static_cast<double>(pairs), rate,
              0.025);
}

// Rates above ~0.6 are biased slightly low by the min(1, s_i s_j / r) clip
// in the pairwise probability (heterogeneous weights can exceed the unit
// bound); the paper evaluates 0.30 and 0.50, well inside the unbiased band.
INSTANTIATE_TEST_SUITE_P(Rates, SensitivityRateSweep,
                         ::testing::Values(0.1, 0.2, 0.3, 0.4, 0.5, 0.6));

}  // namespace
}  // namespace rlcr::netlist
