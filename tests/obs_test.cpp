// The observability layer (src/obs): tracer ring-buffer wraparound,
// multi-thread interleave, Chrome-trace export shape, the
// tracing-never-perturbs-outputs contract (bit-identical flows with
// tracing on vs off at threads 1 and 8), metrics-registry completeness
// over the five stats structs, and the resource sampler.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/session.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "router/route_types.h"
#include "store/artifact_store.h"

#include "golden_util.h"

namespace rlcr::gsino {
namespace {

// --------------------------------------------------------------- tracer

TEST(Tracer, SpanSitesAreInertWithoutASession) {
  EXPECT_FALSE(obs::trace_enabled());
  obs::ScopedSpan sp("obs_test.inert", "test");
  EXPECT_FALSE(sp.active());
}

TEST(Tracer, RingWrapKeepsNewestSpansAndCountsDrops) {
  obs::TraceOptions topt;
  topt.buffer_capacity = 8;
  obs::TraceSession session(topt);
  for (int i = 0; i < 20; ++i) {
    obs::ScopedSpan sp("obs_test.wrap", "test");
    sp.arg("i", static_cast<double>(i));
  }
  EXPECT_EQ(session.span_count(), 8u);
  EXPECT_EQ(session.dropped(), 12u);

  // Newest win: the retained spans are exactly i = 12..19.
  const std::vector<obs::SpanRecord> spans = session.snapshot();
  ASSERT_EQ(spans.size(), 8u);
  std::vector<double> args;
  for (const obs::SpanRecord& s : spans) {
    EXPECT_STREQ(s.name, "obs_test.wrap");
    args.push_back(s.arg_val);
  }
  std::sort(args.begin(), args.end());
  for (std::size_t j = 0; j < args.size(); ++j) {
    EXPECT_EQ(args[j], static_cast<double>(12 + j)) << "slot " << j;
  }
}

TEST(Tracer, MultiThreadSpansInterleaveWithoutLoss) {
  constexpr int kThreads = 4;
  constexpr int kSpans = 50;
  obs::TraceSession session;
  {
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([] {
        for (int i = 0; i < kSpans; ++i) {
          obs::ScopedSpan sp("obs_test.mt", "test");
          sp.arg("i", static_cast<double>(i));
        }
      });
    }
    for (std::thread& w : workers) w.join();
  }

  // Every span survives (well under capacity), each writer got its own
  // tid, and each thread's spans come back in its own program order.
  std::map<std::uint32_t, std::vector<const obs::SpanRecord*>> by_tid;
  const std::vector<obs::SpanRecord> spans = session.snapshot();
  for (const obs::SpanRecord& s : spans) {
    if (std::strcmp(s.name, "obs_test.mt") == 0) by_tid[s.tid].push_back(&s);
  }
  EXPECT_EQ(session.dropped(), 0u);
  ASSERT_EQ(by_tid.size(), static_cast<std::size_t>(kThreads));
  for (const auto& [tid, recs] : by_tid) {
    ASSERT_EQ(recs.size(), static_cast<std::size_t>(kSpans)) << "tid " << tid;
    std::vector<double> args;
    for (std::size_t i = 0; i < recs.size(); ++i) {
      args.push_back(recs[i]->arg_val);
      if (i > 0) EXPECT_GE(recs[i]->start_ns, recs[i - 1]->start_ns);
    }
    std::sort(args.begin(), args.end());
    for (std::size_t i = 0; i < args.size(); ++i) {
      EXPECT_EQ(args[i], static_cast<double>(i)) << "tid " << tid;
    }
  }
}

TEST(Tracer, SessionEpochRetiresSpansOfEarlierSessions) {
  {
    obs::TraceSession stale;
    obs::ScopedSpan sp("obs_test.stale", "test");
  }
  obs::TraceSession fresh;
  {
    obs::ScopedSpan sp("obs_test.fresh", "test");
  }
  const std::vector<obs::SpanRecord> spans = fresh.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "obs_test.fresh");
}

TEST(Tracer, ChromeTraceExportHasTheExpectedShape) {
  obs::TraceSession session;
  {
    obs::ScopedSpan sp("obs_test.export", "test");
    sp.arg("payload", 3.5);
  }
  std::ostringstream os;
  session.write_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // metadata
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // duration event
  EXPECT_NE(json.find("\"name\":\"obs_test.export\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"test\""), std::string::npos);
  EXPECT_NE(json.find("\"payload\":3.5"), std::string::npos);
  // Well-formed enough to end like a JSON object; tools/check_trace.py
  // does the full parse in CI.
  EXPECT_EQ(json.back(), '\n');
  EXPECT_EQ(json[json.size() - 2], '}');
}

// ------------------------------------------- tracing never perturbs output

struct FlowDigest {
  std::uint64_t route_hash = 0;
  std::vector<double> lsk, noise;
  double shields = 0.0;
  std::size_t violating = 0, unfixable = 0;
};

bool operator==(const FlowDigest& a, const FlowDigest& b) {
  return a.route_hash == b.route_hash && a.lsk == b.lsk && a.noise == b.noise &&
         a.shields == b.shields && a.violating == b.violating &&
         a.unfixable == b.unfixable;
}

/// Full GSINO flow on a small pinned workload with every stage's thread
/// count forced to `threads` (RLCR_THREADS is cached at first read, so
/// explicit options are the only reliable per-run override).
FlowDigest run_flow(int threads) {
  netlist::SyntheticSpec spec = netlist::tiny_spec(200, 12);
  spec.grid_cols = 12;
  spec.grid_rows = 12;
  spec.chip_w_um = 600.0;
  spec.chip_h_um = 600.0;
  spec.h_capacity = 12;
  spec.v_capacity = 12;
  const netlist::Netlist design = netlist::generate(spec);
  GsinoParams params;
  params.sensitivity_rate = 0.5;
  params.threads = threads;
  params.router.threads = threads;
  const RoutingProblem problem = make_problem(design, spec, params);

  FlowSession session(problem);
  Scenario scenario;
  scenario.refine.threads = threads;
  const FlowResult fr = session.run(FlowKind::kGsino, scenario);

  FlowDigest d;
  d.route_hash = router::route_hash(fr.routing());
  d.lsk = fr.net_lsk();
  d.noise = fr.net_noise();
  d.shields = fr.total_shields;
  d.violating = fr.violating;
  d.unfixable = fr.unfixable;
  return d;
}

TEST(Tracer, TracingOnProducesBitIdenticalFlowsAtOneAndEightThreads) {
  for (const int threads : {1, 8}) {
    const FlowDigest off = run_flow(threads);
    FlowDigest on;
    {
      obs::TraceSession trace;
      on = run_flow(threads);
      EXPECT_GT(trace.span_count(), 0u) << "threads " << threads;
    }
    EXPECT_TRUE(on == off) << "threads " << threads;
  }
}

TEST(Tracer, SessionGateSuppressesSessionSpansOnly) {
  netlist::SyntheticSpec spec = netlist::tiny_spec(100, 12);
  spec.grid_cols = 12;
  spec.grid_rows = 12;
  spec.chip_w_um = 600.0;
  spec.chip_h_um = 600.0;
  spec.h_capacity = 12;
  spec.v_capacity = 12;
  const netlist::Netlist design = netlist::generate(spec);
  GsinoParams params;
  params.sensitivity_rate = 0.3;
  const RoutingProblem problem = make_problem(design, spec, params);

  obs::TraceSession trace;
  SessionOptions sopt;
  sopt.trace = false;  // per-session opt-out of the session-stage spans
  FlowSession session(problem, std::move(sopt));
  (void)session.run(FlowKind::kGsino);

  bool saw_session = false, saw_router = false;
  for (const obs::SpanRecord& s : trace.snapshot()) {
    if (std::strcmp(s.cat, "session") == 0) saw_session = true;
    if (std::strcmp(s.cat, "router") == 0) saw_router = true;
  }
  EXPECT_FALSE(saw_session);
  EXPECT_TRUE(saw_router);
}

// ------------------------------------------------------ metrics registry

TEST(Metrics, SnapshotOverwritesByNameAndExportsSortedJson) {
  obs::MetricsSnapshot snap;
  snap.set_counter("b.two", 2.0);
  snap.set_counter("a.one", 1.0);
  snap.set_counter("b.two", 4.0);  // overwrite, not duplicate
  snap.set_gauge("c.three", 0.5);
  ASSERT_EQ(snap.metrics().size(), 3u);
  EXPECT_EQ(snap.value_of("b.two"), 4.0);
  EXPECT_TRUE(snap.has("a.one"));
  EXPECT_FALSE(snap.has("missing"));
  EXPECT_EQ(snap.value_of("missing"), 0.0);

  const std::string json = snap.to_json();
  EXPECT_LT(json.find("\"a.one\""), json.find("\"b.two\""));
  EXPECT_LT(json.find("\"b.two\""), json.find("\"c.three\""));
  EXPECT_NE(json.find("\"kind\":\"gauge\",\"value\":0.5"), std::string::npos);
}

TEST(Metrics, EveryStatsFieldAppearsInTheRegistryExactlyOnce) {
  // Fill every field of the five source structs with a distinct value,
  // adapt them all into one snapshot, and require (a) the total metric
  // count to equal the total field count — no field dropped, no name
  // collision across adapters — and (b) every expected name to carry its
  // struct's value. The sizeof static_asserts in obs/metrics.cpp catch
  // new fields at compile time; this test catches adapter typos.
  StageCounters c;
  std::size_t v = 1;
  c.route_requests = v++;
  c.route_executed = v++;
  c.route_loaded = v++;
  c.budget_requests = v++;
  c.budget_executed = v++;
  c.budget_loaded = v++;
  c.solve_requests = v++;
  c.solve_executed = v++;
  c.solve_loaded = v++;
  c.refine_requests = v++;
  c.refine_executed = v++;
  c.refine_loaded = v++;
  c.route_spec_attempted = v++;
  c.route_spec_committed = v++;
  c.route_spec_replayed = v++;
  c.refine_spec_attempted = v++;
  c.refine_spec_committed = v++;
  c.refine_spec_replayed = v++;
  c.delta_applies = v++;
  c.delta_nets_rerouted = v++;
  c.delta_nets_reused = v++;
  c.delta_regions_solved = v++;
  c.delta_regions_reused = v++;

  router::RoutingStats r;
  r.edges_initial = v++;
  r.edges_deleted = v++;
  r.edges_locked = v++;
  r.reinserts = v++;
  r.prerouted_nets = v++;
  r.rsmt_fallback_nets = v++;
  r.spec_attempted = v++;
  r.spec_committed = v++;
  r.spec_replayed = v++;
  r.runtime_s = 0.25;

  RefineStats f;
  f.pass1_nets_fixed = static_cast<int>(v++);
  f.pass1_resolves = static_cast<int>(v++);
  f.pass1_gave_up = static_cast<int>(v++);
  f.pass2_shields_removed = static_cast<int>(v++);
  f.pass2_accepted = static_cast<int>(v++);
  f.pass2_rejected = static_cast<int>(v++);
  f.batch_sweeps = static_cast<int>(v++);
  f.batch_regions_resolved = static_cast<int>(v++);
  f.spec_attempted = static_cast<int>(v++);
  f.spec_committed = static_cast<int>(v++);
  f.spec_replayed = static_cast<int>(v++);

  store::StoreStats st;
  st.hits = v++;
  st.misses = v++;
  st.stores = v++;
  st.evictions = v++;
  st.rejected = v++;
  st.put_failures = v++;
  st.lock_waits = v++;
  st.bytes_written = v++;
  st.bytes_read = v++;

  parallel::SpecStats sp;
  sp.attempted = v++;
  sp.committed = v++;
  sp.replayed = v++;

  obs::MetricsSnapshot snap;
  obs::append_metrics(snap, c);
  obs::append_metrics(snap, r);
  obs::append_metrics(snap, f);
  obs::append_metrics(snap, st);
  obs::append_metrics(snap, sp);

  // 23 + 10 + 11 + 9 + 3 fields across the five structs.
  EXPECT_EQ(snap.metrics().size(), 56u);

  const std::vector<std::pair<std::string, double>> expected = {
      {"session.route_requests", 1},
      {"session.refine_loaded", 12},
      {"session.refine_spec_replayed", 18},
      {"session.delta_applies", 19},
      {"session.delta_regions_reused", 23},
      {"router.edges_initial", 24},
      {"router.rsmt_fallback_nets", 29},
      {"router.spec_replayed", 32},
      {"router.runtime_s", 0.25},
      {"refine.pass1_nets_fixed", 33},
      {"refine.spec_replayed", 43},
      {"store.hits", 44},
      {"store.lock_waits", 50},
      {"store.bytes_read", 52},
      {"spec.attempted", 53},
      {"spec.replayed", 55},
  };
  for (const auto& [name, want] : expected) {
    EXPECT_TRUE(snap.has(name)) << name;
    EXPECT_EQ(snap.value_of(name), want) << name;
  }
}

TEST(Metrics, SessionMetricsFoldInTheAttachedStoresStats) {
  netlist::SyntheticSpec spec = netlist::tiny_spec(100, 12);
  spec.grid_cols = 12;
  spec.grid_rows = 12;
  spec.chip_w_um = 600.0;
  spec.chip_h_um = 600.0;
  spec.h_capacity = 12;
  spec.v_capacity = 12;
  const netlist::Netlist design = netlist::generate(spec);
  GsinoParams params;
  params.sensitivity_rate = 0.3;
  const RoutingProblem problem = make_problem(design, spec, params);

  {
    FlowSession session(problem);
    (void)session.run(FlowKind::kGsino);
    const obs::MetricsSnapshot snap = session.metrics();
    EXPECT_EQ(snap.value_of("session.route_executed"), 1.0);
    EXPECT_EQ(snap.value_of("session.refine_executed"), 1.0);
    // The most recent routing/refine artifacts' stats fold in too.
    EXPECT_TRUE(snap.has("router.runtime_s"));
    EXPECT_GT(snap.value_of("router.edges_initial"), 0.0);
    EXPECT_TRUE(snap.has("refine.pass1_resolves"));
    EXPECT_FALSE(snap.has("store.hits"));  // no store attached
  }

  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "rlcr_obs_store";
  std::filesystem::remove_all(dir);
  SessionOptions sopt;
  sopt.store = std::make_shared<store::ArtifactStore>(dir);
  FlowSession session(problem, std::move(sopt));
  (void)session.run(FlowKind::kGsino);
  const obs::MetricsSnapshot snap = session.metrics();
  EXPECT_TRUE(snap.has("store.hits"));
  EXPECT_GE(snap.value_of("store.stores"), 1.0);
}

// ------------------------------------------------------ resource sampler

TEST(Metrics, ResourceSamplerRecordsAtLeastOneSampleAndExportsGauges) {
  obs::ResourceSamplerOptions ro;
  ro.period = std::chrono::milliseconds(5);
  obs::ResourceSampler sampler(ro);
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  sampler.stop();

  const std::vector<obs::ResourceSample> samples = sampler.samples();
  ASSERT_GE(samples.size(), 1u);
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].t_s, samples[i - 1].t_s);
  }
#if defined(__linux__)
  EXPECT_GT(samples.front().rss_kb, 0.0);
#endif

  obs::MetricsSnapshot snap;
  sampler.append_gauges(snap);
  for (const char* name :
       {"resource.samples", "resource.rss_peak_kb", "resource.rss_last_kb",
        "resource.store_peak_bytes", "resource.pool_peak_threads"}) {
    EXPECT_TRUE(snap.has(name)) << name;
  }
  EXPECT_EQ(snap.value_of("resource.samples"),
            static_cast<double>(samples.size()));
}

}  // namespace
}  // namespace rlcr::gsino
