// The deterministic parallel runtime: pool lifecycle, the chunked
// algorithms' determinism contract (bit-identical results at any thread
// count), deterministic exception propagation, and cross-thread-count
// golden assertions for the three wired consumers (ID router, SINO batch,
// LSK sampling). threads == 1 is the exact serial path, so agreement with
// it at 2 and 8 threads is the determinism oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "grid/region_grid.h"
#include "ktable/lsk_builder.h"
#include "parallel/parallel_for.h"
#include "parallel/thread_pool.h"
#include "router/id_router.h"
#include "sino/batch.h"
#include "sino/instance.h"
#include "sino/nss.h"
#include "util/rng.h"

#include "golden_util.h"

namespace rlcr {
namespace {

using parallel::ThreadPool;

// ------------------------------------------------------------------- pool

TEST(ThreadPool, LifecycleSpawnsRunsAndJoins) {
  std::mutex mu;
  std::set<int> seen;
  {
    ThreadPool pool;
    EXPECT_EQ(pool.spawned(), 0);
    pool.run(3, [&](int worker) {
      std::lock_guard lock(mu);
      seen.insert(worker);
    });
    EXPECT_EQ(pool.spawned(), 3);
    EXPECT_EQ(seen, (std::set<int>{0, 1, 2, 3}));  // caller is worker 0

    // Grows on demand, reuses existing workers.
    seen.clear();
    pool.run(5, [&](int worker) {
      std::lock_guard lock(mu);
      seen.insert(worker);
    });
    EXPECT_EQ(pool.spawned(), 5);
    EXPECT_EQ(seen.size(), 6u);
  }  // destructor joins all five helpers; reaching here is the assertion
}

TEST(ThreadPool, ZeroHelpersRunsInlineOnCaller) {
  ThreadPool pool;
  int calls = 0;
  pool.run(0, [&](int worker) {
    EXPECT_EQ(worker, 0);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(pool.spawned(), 0);
}

TEST(ThreadPool, WorkerThreadsAreMarked) {
  std::mutex mu;
  std::vector<std::pair<int, bool>> marks;  // (worker, on_worker_thread)
  ThreadPool::global().run(2, [&](int worker) {
    std::lock_guard lock(mu);
    marks.emplace_back(worker, ThreadPool::on_worker_thread());
  });
  ASSERT_EQ(marks.size(), 3u);
  for (const auto& [worker, on_pool] : marks) {
    EXPECT_EQ(on_pool, worker != 0) << "worker " << worker;
  }
}

TEST(ThreadPool, NestedParallelismDegradesToSerialWithoutDeadlock) {
  std::atomic<int> inner_total{0};
  ThreadPool::global().run(2, [&](int) {
    // A chunked algorithm called from a pool worker must run inline
    // instead of re-entering the pool (which this test would deadlock on).
    parallel::parallel_for(10, 2, 8, [&](std::size_t b, std::size_t e, int) {
      inner_total.fetch_add(static_cast<int>(e - b));
    });
  });
  EXPECT_EQ(inner_total.load(), 30);  // 3 participants x 10 items
}

// ------------------------------------------------------------- algorithms

TEST(ParallelFor, EveryIndexExactlyOnceAtAnyThreadCount) {
  for (int threads : {1, 2, 8}) {
    std::vector<std::atomic<int>> hits(1013);
    parallel::parallel_for(hits.size(), 7, threads,
                           [&](std::size_t b, std::size_t e, int) {
                             for (std::size_t i = b; i < e; ++i) {
                               hits[i].fetch_add(1);
                             }
                           });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "i=" << i << " threads=" << threads;
    }
  }
}

TEST(ParallelFor, ChunkBoundariesDependOnlyOnSizeAndGrain) {
  // Record the chunk set at two thread counts; they must be identical.
  auto chunks_at = [](int threads) {
    std::mutex mu;
    std::set<std::pair<std::size_t, std::size_t>> chunks;
    parallel::parallel_for(100, 9, threads,
                           [&](std::size_t b, std::size_t e, int) {
                             std::lock_guard lock(mu);
                             chunks.emplace(b, e);
                           });
    return chunks;
  };
  EXPECT_EQ(chunks_at(1), chunks_at(8));
  EXPECT_EQ(parallel::chunk_count(100, 9), 12u);
}

TEST(OrderedReduce, FloatingPointSumBitIdenticalAcrossThreadCounts) {
  // Values engineered so that any re-association changes the sum.
  std::vector<double> v(997);
  util::Xoshiro256 rng(42);
  for (double& x : v) x = rng.uniform(-1.0, 1.0) * (rng.bernoulli(0.3) ? 1e16 : 1.0);

  auto sum_at = [&](int threads) {
    double acc = 0.0;
    parallel::ordered_reduce<double>(
        v.size(), 16, threads,
        [&](std::size_t b, std::size_t e, int) {
          double s = 0.0;
          for (std::size_t i = b; i < e; ++i) s += v[i];
          return s;
        },
        [&](std::size_t, double&& partial) { acc += partial; });
    return acc;
  };
  const double serial = sum_at(1);
  EXPECT_EQ(serial, sum_at(2));
  EXPECT_EQ(serial, sum_at(8));
}

TEST(OrderedReduce, CombineRunsInChunkOrder) {
  for (int threads : {1, 8}) {
    std::vector<std::size_t> order;
    parallel::ordered_reduce<std::size_t>(
        100, 8, threads,
        [](std::size_t b, std::size_t, int) { return b; },
        [&](std::size_t chunk, std::size_t&& begin) {
          order.push_back(chunk);
          EXPECT_EQ(begin, chunk * 8);
        });
    ASSERT_EQ(order.size(), 13u);
    EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
  }
}

TEST(ParallelMap, MatchesSerialEvaluation) {
  auto fn = [](std::size_t i) { return static_cast<double>(i) * 1.5 - 7.0; };
  const auto a = parallel::parallel_map<double>(513, 10, 1, fn);
  const auto b = parallel::parallel_map<double>(513, 10, 8, fn);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 513u);
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], fn(i));
}

TEST(ParallelFor, LowestChunkExceptionWinsDeterministically) {
  for (int threads : {1, 2, 8}) {
    try {
      parallel::parallel_for(100, 10, threads,
                             [&](std::size_t b, std::size_t, int) {
                               if (b >= 50) {
                                 throw std::runtime_error(std::to_string(b));
                               }
                             });
      FAIL() << "expected a throw at threads=" << threads;
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "50") << "threads=" << threads;
    }
  }
}

TEST(ResolveThreads, PositiveRequestsAreVerbatim) {
  EXPECT_EQ(parallel::resolve_threads(1), 1);
  EXPECT_EQ(parallel::resolve_threads(5), 5);
  EXPECT_GE(parallel::resolve_threads(0), 1);
  EXPECT_GE(parallel::hardware_threads(), 1);
}

// ----------------------------------------- cross-thread-count goldens

grid::RegionGrid det_grid(std::int32_t side = 12, int cap = 8) {
  grid::RegionGridSpec s;
  s.cols = side;
  s.rows = side;
  s.region_w_um = 20.0;
  s.region_h_um = 25.0;
  s.h_capacity = cap;
  s.v_capacity = cap;
  return grid::RegionGrid(s);
}

std::vector<router::RouterNet> det_nets(const grid::RegionGrid& g,
                                        std::size_t count, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<router::RouterNet> nets(count);
  for (std::size_t i = 0; i < count; ++i) {
    nets[i].id = static_cast<std::int32_t>(i);
    nets[i].si = 0.3;
    const auto cx = static_cast<std::int32_t>(rng.below(
        static_cast<std::uint64_t>(g.cols())));
    const auto cy = static_cast<std::int32_t>(rng.below(
        static_cast<std::uint64_t>(g.rows())));
    const std::size_t degree = 2 + rng.below(3);
    for (std::size_t p = 0; p < degree; ++p) {
      geom::Point pt{
          std::clamp(cx + static_cast<std::int32_t>(rng.range(-4, 4)), 0,
                     g.cols() - 1),
          std::clamp(cy + static_cast<std::int32_t>(rng.range(-4, 4)), 0,
                     g.rows() - 1)};
      if (std::find(nets[i].pins.begin(), nets[i].pins.end(), pt) ==
          nets[i].pins.end()) {
        nets[i].pins.push_back(pt);
      }
    }
    if (nets[i].pins.size() < 2) {
      nets[i].pins.push_back(
          geom::Point{(cx + 1) % g.cols(), (cy + 1) % g.rows()});
    }
  }
  return nets;
}

TEST(ParallelDeterminism, IdRouterBitIdenticalAcrossThreadCounts) {
  const grid::RegionGrid g = det_grid();
  const auto nets = det_nets(g, 120, 5);
  const sino::NssModel nss;

  auto run_at = [&](int threads) {
    router::IdRouterOptions opt;
    opt.threads = threads;
    const router::IdRouter router(g, nss, opt);
    return router.route(nets);
  };
  const router::RoutingResult serial = run_at(1);
  const std::uint64_t golden = router::route_hash(serial);
  for (int threads : {2, 8}) {
    const router::RoutingResult res = run_at(threads);
    EXPECT_EQ(router::route_hash(res), golden) << "threads=" << threads;
    EXPECT_EQ(res.total_wirelength_um, serial.total_wirelength_um)
        << "threads=" << threads;
    EXPECT_EQ(res.stats.edges_deleted, serial.stats.edges_deleted);
    EXPECT_EQ(res.stats.edges_locked, serial.stats.edges_locked);
    EXPECT_EQ(res.stats.prerouted_nets, serial.stats.prerouted_nets);
  }
}

TEST(ParallelDeterminism, IdRouterPreRoutePathBitIdentical) {
  // Tiny threshold forces every net through the (stamped-dedup) pre-route
  // path, covering it at every thread count.
  const grid::RegionGrid g = det_grid();
  const auto nets = det_nets(g, 60, 11);
  const sino::NssModel nss;
  auto run_at = [&](int threads) {
    router::IdRouterOptions opt;
    opt.threads = threads;
    opt.huge_net_bbox_threshold = 4;
    const router::IdRouter router(g, nss, opt);
    return router::route_hash(router.route(nets));
  };
  const std::uint64_t golden = run_at(1);
  EXPECT_EQ(run_at(2), golden);
  EXPECT_EQ(run_at(8), golden);
}

std::vector<sino::SinoInstance> det_instances(std::size_t count,
                                              std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<sino::SinoInstance> out;
  out.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    std::vector<sino::SinoNet> nets(4 + rng.below(8));
    for (std::size_t i = 0; i < nets.size(); ++i) {
      nets[i].net_id = static_cast<std::int32_t>(i);
      nets[i].si = rng.uniform(0.1, 0.9);
      // Deliberately near-impossible bounds on some nets so some greedy
      // solutions stay infeasible even after its shield fallback, and the
      // annealing arm (per-item RNG streams) gets exercised.
      nets[i].kth = rng.bernoulli(0.3) ? 1e-6 : rng.uniform(0.05, 0.6);
    }
    sino::SinoInstance inst(std::move(nets));
    for (std::size_t i = 0; i < inst.net_count(); ++i) {
      for (std::size_t j = i + 1; j < inst.net_count(); ++j) {
        if (rng.bernoulli(0.45)) inst.set_sensitive(i, j);
      }
    }
    out.push_back(std::move(inst));
  }
  return out;
}

TEST(ParallelDeterminism, SinoBatchBitIdenticalAcrossThreadCounts) {
  const auto instances = det_instances(24, 77);
  const ktable::KeffModel keff;
  std::vector<sino::SinoBatchItem> items(instances.size());
  bool any_anneal_expected = false;
  for (std::size_t i = 0; i < instances.size(); ++i) {
    items[i].instance = &instances[i];
    items[i].mode = sino::SinoSolveMode::kGreedyAnneal;
    items[i].anneal_seed = sino::stream_seed(2026, i);
    items[i].anneal_iterations = 500;
  }

  auto solve_at = [&](int threads) {
    sino::SinoBatchOptions opt;
    opt.threads = threads;
    return sino::solve_batch(items, keff, opt);
  };
  const auto serial = solve_at(1);
  ASSERT_EQ(serial.size(), items.size());
  for (const auto& r : serial) any_anneal_expected |= r.annealed;
  EXPECT_TRUE(any_anneal_expected) << "test instances never trip the annealer";

  for (int threads : {2, 8}) {
    const auto res = solve_at(threads);
    ASSERT_EQ(res.size(), serial.size());
    for (std::size_t i = 0; i < res.size(); ++i) {
      EXPECT_EQ(res[i].slots, serial[i].slots)
          << "item " << i << " threads=" << threads;
      EXPECT_EQ(res[i].ki, serial[i].ki);
      EXPECT_EQ(res[i].annealed, serial[i].annealed);
      EXPECT_EQ(res[i].feasible, serial[i].feasible);
    }
  }
}

TEST(ParallelDeterminism, LskSamplesBitIdenticalAcrossThreadCounts) {
  ktable::LskBuilderOptions opt;
  opt.tracks = 6;
  opt.samples_per_length = 4;
  opt.lengths_um = {500.0};
  opt.segments = 4;
  opt.sim_dt = 0.5e-12;
  opt.sim_t_stop = 100e-12;
  const ktable::KeffModel keff;
  const circuit::Technology tech;

  auto sample_at = [&](int threads) {
    ktable::LskBuilderOptions o = opt;
    o.threads = threads;
    return ktable::LskTableBuilder(o).sample(keff, tech);
  };
  const auto serial = sample_at(1);
  ASSERT_GT(serial.size(), 0u);
  for (int threads : {2, 8}) {
    const auto res = sample_at(threads);
    ASSERT_EQ(res.size(), serial.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < res.size(); ++i) {
      EXPECT_EQ(res[i].lsk, serial[i].lsk);
      EXPECT_EQ(res[i].noise_v, serial[i].noise_v);
      EXPECT_EQ(res[i].length_um, serial[i].length_um);
      EXPECT_EQ(res[i].ki, serial[i].ki);
    }
  }
}

}  // namespace
}  // namespace rlcr
