#include <gtest/gtest.h>

#include "netlist/placement.h"

namespace rlcr::netlist {
namespace {

/// Two 6-cell cliques joined by a single net: a min-cut placer should put
/// each clique on its own side of the first cut.
Netlist two_cliques() {
  Netlist nl("cliques", 100.0, 100.0);
  for (int i = 0; i < 12; ++i) {
    nl.add_cell(Cell{"c" + std::to_string(i), 1.0, {}, false, false});
  }
  auto add_clique = [&](int base) {
    for (int i = 0; i < 6; ++i) {
      for (int j = i + 1; j < 6; ++j) {
        Net n;
        n.pins = {Pin{{}, base + i}, Pin{{}, base + j}};
        nl.add_net(std::move(n));
      }
    }
  };
  add_clique(0);
  add_clique(6);
  Net bridge;
  bridge.pins = {Pin{{}, 0}, Pin{{}, 6}};
  nl.add_net(std::move(bridge));
  return nl;
}

TEST(Placer, AllCellsInsideOutline) {
  Netlist nl = two_cliques();
  BisectionPlacer placer;
  placer.place(nl);
  for (const Cell& c : nl.cells()) {
    EXPECT_TRUE(c.placed);
    EXPECT_GE(c.pos.x, 0.0);
    EXPECT_LE(c.pos.x, nl.width_um());
    EXPECT_GE(c.pos.y, 0.0);
    EXPECT_LE(c.pos.y, nl.height_um());
  }
}

TEST(Placer, PinsAreMaterialized) {
  Netlist nl = two_cliques();
  BisectionPlacer().place(nl);
  for (const Net& n : nl.nets()) {
    for (const Pin& p : n.pins) {
      const Cell& c = nl.cell(p.cell);
      EXPECT_EQ(p.pos, c.pos);
    }
  }
}

TEST(Placer, CliquesSeparateBetterThanInterleaving) {
  Netlist nl = two_cliques();
  PlacerOptions opts;
  opts.fm_passes = 4;
  opts.seed = 3;
  const PlacementResult r = BisectionPlacer(opts).place(nl);
  // With both cliques split perfectly, total HPWL is far below the value
  // where clique nets span the whole chip (30 clique nets x ~100 um each).
  EXPECT_GT(r.hpwl_um, 0.0);
  EXPECT_LT(r.hpwl_um, 30 * 100.0);
  EXPECT_GE(r.cut_levels, 1u);
}

TEST(Placer, PadsLandOnBoundary) {
  Netlist nl("pads", 50.0, 80.0);
  for (int i = 0; i < 4; ++i) {
    Cell c;
    c.name = "p" + std::to_string(i);
    c.is_pad = true;
    nl.add_cell(std::move(c));
  }
  nl.add_cell(Cell{"a0", 1.0, {}, false, false});
  Net n;
  n.pins = {Pin{{}, 4}, Pin{{}, 0}};
  nl.add_net(std::move(n));
  BisectionPlacer().place(nl);
  for (int i = 0; i < 4; ++i) {
    const Cell& c = nl.cell(i);
    const bool on_edge = c.pos.x == 0.0 || c.pos.y == 0.0 ||
                         c.pos.x == nl.width_um() || c.pos.y == nl.height_um();
    EXPECT_TRUE(on_edge) << c.name << " at " << c.pos.x << "," << c.pos.y;
  }
}

TEST(Placer, EmptyNetlistIsFine) {
  Netlist nl("empty", 10, 10);
  const PlacementResult r = BisectionPlacer().place(nl);
  EXPECT_DOUBLE_EQ(r.hpwl_um, 0.0);
}

TEST(Placer, DeterministicInSeed) {
  Netlist a = two_cliques();
  Netlist b = two_cliques();
  PlacerOptions opts;
  opts.seed = 17;
  BisectionPlacer(opts).place(a);
  BisectionPlacer(opts).place(b);
  for (std::size_t i = 0; i < a.cell_count(); ++i) {
    EXPECT_EQ(a.cell(static_cast<CellId>(i)).pos,
              b.cell(static_cast<CellId>(i)).pos);
  }
}

}  // namespace
}  // namespace rlcr::netlist
