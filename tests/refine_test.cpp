// Focused tests of the Phase III local refiner (the paper's Fig. 2),
// driven through the staged session API: the refiner operates on the
// mutable FlowState a FlowSession builds over a Phase II solve artifact.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/refine.h"
#include "core/session.h"

namespace rlcr::gsino {
namespace {

/// A congested little problem that reliably leaves Phase II with work for
/// the refiner: high sensitivity, long-ish nets, modest capacity.
struct Fixture {
  netlist::SyntheticSpec spec;
  netlist::Netlist design;
  GsinoParams params;

  Fixture() : spec(netlist::tiny_spec(500, 77)) {
    spec.grid_cols = 14;
    spec.grid_rows = 14;
    spec.chip_w_um = 700.0;
    spec.chip_h_um = 700.0;
    spec.h_capacity = 12;
    spec.v_capacity = 12;
    spec.local_sigma_regions = 2.5;
    design = netlist::generate(spec);
    params.sensitivity_rate = 0.5;
  }

  RoutingProblem problem() const { return make_problem(design, spec, params); }
};

/// GSINO through Phase II only (the refiner's input state).
FlowState phase12_state(FlowSession& session) {
  return session.state(FlowKind::kGsino);
}

TEST(Refiner, Pass1EliminatesViolations) {
  const Fixture fx;
  const RoutingProblem problem = fx.problem();
  FlowSession session(problem);
  FlowState fs = phase12_state(session);
  const std::size_t before = fs.violating;

  LocalRefiner refiner(problem);
  RefineStats stats;
  refiner.eliminate_violations(fs, stats);
  fs.refresh_noise();

  EXPECT_LE(fs.violating, before);
  EXPECT_EQ(fs.violating, fs.unfixable);  // anything left was given up on
  if (before > 0) {
    EXPECT_GT(stats.pass1_resolves, 0);
  }
}

TEST(Refiner, Pass2NeverCreatesViolations) {
  const Fixture fx;
  const RoutingProblem problem = fx.problem();
  FlowSession session(problem);
  FlowState fs = phase12_state(session);
  LocalRefiner refiner(problem);
  RefineStats stats;
  refiner.eliminate_violations(fs, stats);
  fs.refresh_noise();
  const std::size_t viol_before = fs.violating;
  const double shields_before = fs.congestion->total_shields();

  refiner.reduce_congestion(fs, stats);
  fs.refresh_noise();

  EXPECT_LE(fs.violating, viol_before);
  // Pass 2 only ever removes shields.
  EXPECT_LE(fs.congestion->total_shields(), shields_before);
  EXPECT_EQ(stats.pass2_shields_removed >= 0, true);
}

TEST(Refiner, StatsAreInternallyConsistent) {
  const Fixture fx;
  const RoutingProblem problem = fx.problem();
  FlowSession session(problem);
  FlowState fs = phase12_state(session);
  const RefineStats stats = LocalRefiner(problem).refine(fs);
  EXPECT_GE(stats.pass1_nets_fixed, 0);
  EXPECT_GE(stats.pass1_resolves, stats.pass1_nets_fixed);
  EXPECT_EQ(fs.unfixable, static_cast<std::size_t>(stats.pass1_gave_up));
  EXPECT_GE(stats.pass2_accepted + stats.pass2_rejected, stats.pass2_accepted);
}

TEST(Refiner, RefineIsIdempotentOnCleanState) {
  // Refining an already-refined state changes nothing structural: no
  // violations appear and shields only go down (pass 2 may still harvest).
  const Fixture fx;
  const RoutingProblem problem = fx.problem();
  FlowSession session(problem);
  FlowState fs = phase12_state(session);
  const LocalRefiner refiner(problem);
  refiner.refine(fs);
  ASSERT_EQ(fs.violating, 0u);
  const double shields1 = fs.congestion->total_shields();
  refiner.refine(fs);
  fs.refresh_noise();
  EXPECT_EQ(fs.violating, 0u);
  EXPECT_LE(fs.congestion->total_shields(), shields1);
}

TEST(Refiner, SolutionsStayFeasibleAfterRefinement) {
  const Fixture fx;
  const RoutingProblem problem = fx.problem();
  FlowSession session(problem);
  const FlowResult fr = session.run(FlowKind::kGsino);
  for (const RegionSolution& sol : fr.solutions()) {
    if (sol.empty()) continue;
    const sino::SinoEvaluator eval(sol.instance, problem.keff());
    const sino::SinoCheck c = eval.check(sol.slots);
    EXPECT_TRUE(c.placed_all);
    EXPECT_EQ(c.capacitive_violations, 0);
  }
}

// ------------------------------------------------- batched pass 2 (Phase
// III region re-solves through sino::solve_batch)

TEST(Refiner, BatchedPass2MeetsTheBound) {
  const Fixture fx;
  const RoutingProblem problem = fx.problem();
  FlowSession session(problem);
  FlowState fs = phase12_state(session);
  RefineOptions opt;
  opt.batch_pass2 = true;
  const RefineStats stats = LocalRefiner(problem).refine(fs, opt);
  EXPECT_EQ(fs.violating, 0u);
  if (stats.pass2_accepted + stats.pass2_rejected > 0) {
    EXPECT_GT(stats.batch_sweeps, 0);
    EXPECT_GE(stats.batch_regions_resolved,
              stats.pass2_accepted + stats.pass2_rejected);
  }
}

TEST(Refiner, BatchedPass2BitIdenticalAcrossThreadCounts) {
  // The determinism oracle of the batched sweep: threads=1 is the exact
  // serial path, so any thread count must reproduce it bit for bit.
  const Fixture fx;
  const RoutingProblem problem = fx.problem();
  FlowSession session(problem);
  FlowState a = phase12_state(session);
  FlowState b = phase12_state(session);
  RefineOptions opt1;
  opt1.batch_pass2 = true;
  opt1.threads = 1;
  RefineOptions opt8 = opt1;
  opt8.threads = 8;
  const RefineStats sa = LocalRefiner(problem).refine(a, opt1);
  const RefineStats sb = LocalRefiner(problem).refine(b, opt8);

  EXPECT_EQ(sa.pass2_accepted, sb.pass2_accepted);
  EXPECT_EQ(sa.pass2_rejected, sb.pass2_rejected);
  EXPECT_EQ(sa.pass2_shields_removed, sb.pass2_shields_removed);
  EXPECT_EQ(a.violating, b.violating);
  EXPECT_DOUBLE_EQ(a.congestion->total_shields(),
                   b.congestion->total_shields());
  ASSERT_EQ(a.net_lsk.size(), b.net_lsk.size());
  for (std::size_t n = 0; n < a.net_lsk.size(); ++n) {
    EXPECT_EQ(a.net_lsk[n], b.net_lsk[n]) << "net " << n;
  }
  ASSERT_EQ(a.solutions.size(), b.solutions.size());
  for (std::size_t si = 0; si < a.solutions.size(); ++si) {
    EXPECT_EQ(a.solutions[si].slots, b.solutions[si].slots) << "sol " << si;
  }
}

}  // namespace
}  // namespace rlcr::gsino
