// Focused tests of the Phase III local refiner (the paper's Fig. 2).
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/flow.h"
#include "core/refine.h"

namespace rlcr::gsino {
namespace {

/// A congested little problem that reliably leaves Phase II with work for
/// the refiner: high sensitivity, long-ish nets, modest capacity.
struct Fixture {
  netlist::SyntheticSpec spec;
  netlist::Netlist design;
  GsinoParams params;

  Fixture() : spec(netlist::tiny_spec(500, 77)) {
    spec.grid_cols = 14;
    spec.grid_rows = 14;
    spec.chip_w_um = 700.0;
    spec.chip_h_um = 700.0;
    spec.h_capacity = 12;
    spec.v_capacity = 12;
    spec.local_sigma_regions = 2.5;
    design = netlist::generate(spec);
    params.sensitivity_rate = 0.5;
  }

  FlowResult phase12_only() const {
    GsinoParams p = params;
    p.lr_max_outer_pass1 = 0;
    p.lr_max_outer_pass2 = 0;
    const RoutingProblem problem = make_problem(design, spec, p);
    return FlowRunner(problem).run(FlowKind::kGsino);
  }
};

TEST(Refiner, Pass1EliminatesViolations) {
  const Fixture fx;
  const RoutingProblem problem = make_problem(fx.design, fx.spec, fx.params);
  FlowResult fr = fx.phase12_only();
  const std::size_t before = fr.violating;

  LocalRefiner refiner(problem);
  RefineStats stats;
  refiner.eliminate_violations(fr, stats);
  refresh_noise(fr, problem);

  EXPECT_LE(fr.violating, before);
  EXPECT_EQ(fr.violating, fr.unfixable);  // anything left was given up on
  if (before > 0) {
    EXPECT_GT(stats.pass1_resolves, 0);
  }
}

TEST(Refiner, Pass2NeverCreatesViolations) {
  const Fixture fx;
  const RoutingProblem problem = make_problem(fx.design, fx.spec, fx.params);
  FlowResult fr = fx.phase12_only();
  LocalRefiner refiner(problem);
  RefineStats stats;
  refiner.eliminate_violations(fr, stats);
  refresh_noise(fr, problem);
  const std::size_t viol_before = fr.violating;
  const double shields_before = fr.congestion->total_shields();

  refiner.reduce_congestion(fr, stats);
  refresh_noise(fr, problem);

  EXPECT_LE(fr.violating, viol_before);
  // Pass 2 only ever removes shields.
  EXPECT_LE(fr.congestion->total_shields(), shields_before);
  EXPECT_EQ(stats.pass2_shields_removed >= 0, true);
}

TEST(Refiner, StatsAreInternallyConsistent) {
  const Fixture fx;
  const RoutingProblem problem = make_problem(fx.design, fx.spec, fx.params);
  FlowResult fr = fx.phase12_only();
  const RefineStats stats = LocalRefiner(problem).refine(fr);
  EXPECT_GE(stats.pass1_nets_fixed, 0);
  EXPECT_GE(stats.pass1_resolves, stats.pass1_nets_fixed);
  EXPECT_EQ(fr.unfixable, static_cast<std::size_t>(stats.pass1_gave_up));
  EXPECT_GE(stats.pass2_accepted + stats.pass2_rejected, stats.pass2_accepted);
}

TEST(Refiner, RefineIsIdempotentOnCleanState) {
  // Refining an already-clean flow changes nothing structural: no
  // violations appear and shields only go down (pass 2 may still harvest).
  const Fixture fx;
  const RoutingProblem problem = make_problem(fx.design, fx.spec, fx.params);
  FlowResult fr = FlowRunner(problem).run(FlowKind::kGsino);
  ASSERT_EQ(fr.violating, 0u);
  const double shields1 = fr.congestion->total_shields();
  LocalRefiner(problem).refine(fr);
  refresh_noise(fr, problem);
  EXPECT_EQ(fr.violating, 0u);
  EXPECT_LE(fr.congestion->total_shields(), shields1);
}

TEST(Refiner, SolutionsStayFeasibleAfterRefinement) {
  const Fixture fx;
  const RoutingProblem problem = make_problem(fx.design, fx.spec, fx.params);
  FlowResult fr = FlowRunner(problem).run(FlowKind::kGsino);
  for (const RegionSolution& sol : fr.solutions) {
    if (sol.empty()) continue;
    const sino::SinoEvaluator eval(sol.instance, problem.keff());
    const sino::SinoCheck c = eval.check(sol.slots);
    EXPECT_TRUE(c.placed_all);
    EXPECT_EQ(c.capacitive_violations, 0);
  }
}

}  // namespace
}  // namespace rlcr::gsino
